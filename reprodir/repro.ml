
module H = Harness
module R = Harness.Resilient

let () =
  let c = Circuits.find "alu" in
  let _, g, w, faults = Circuits.Bench_circuit.instantiate c ~scale:0.06 in
  let journal = Filename.temp_file "repro" ".jsonl" in
  let cfg = { R.default_config with R.batch_size = 7; journal = Some journal } in
  let cold = R.run ~config:cfg g w faults in
  Printf.printf "cold: %d batches\n%!" cold.R.batches_total;
  (* tear the final line: drop its trailing newline and half its bytes *)
  let ic = open_in_bin journal in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' s) in
  let rev = List.rev lines in
  let last = List.hd rev and rest = List.rev (List.tl rev) in
  let torn = String.sub last 0 (String.length last / 2) in
  let oc = open_out_bin journal in
  output_string oc (String.concat "\n" rest ^ "\n" ^ torn);
  close_out oc;
  (* first resume: should work (torn final line tolerated) *)
  let r1 = R.run ~config:{ cfg with R.resume = true } g w faults in
  Printf.printf "resume1: resumed=%d executed=%d\n%!" r1.R.batches_resumed r1.R.batches_executed;
  (* second resume of the now-complete journal: does it survive? *)
  (try
     let r2 = R.run ~config:{ cfg with R.resume = true } g w faults in
     Printf.printf "resume2 OK: resumed=%d executed=%d\n%!" r2.R.batches_resumed r2.R.batches_executed
   with R.Campaign_error e ->
     Printf.printf "resume2 FAILED: %s (exit %d)\n%!" (R.error_message e) (R.exit_code e));
  Sys.remove journal
