(* Builder DSL: every operator constructs the intended IR node and evaluates
   to the Verilog-consistent value; construction errors are reported. *)
open Rtlir
open Sim
module B = Builder
open B.Ops

let check = Alcotest.check
let int64_t = Alcotest.int64
let bool_t = Alcotest.bool

(* evaluate a closed expression over two fixed operands *)
let a8 = Bits.of_int 8 0xC5
let b8 = Bits.of_int 8 0x3A

let eval e =
  let reader =
    {
      Access.get = (fun i -> if i = 0 then a8 else b8);
      get_mem = (fun _ _ -> Bits.zero 8);
    }
  in
  Eval.eval ~mem_size:(fun _ -> 1) reader e

let x = Expr.Sig 0
let y = Expr.Sig 1

let binop_cases =
  [
    ("+:", x +: y, 0xFFL);
    ("-:", x -: y, 0x8BL);
    ("*:", x *: y, 0xA2L (* 0xC5 * 0x3A = 0x2CA2 truncated *));
    ("/:", x /: y, 3L);
    ("%:", x %: y, 0x17L);
    ("&:", x &: y, 0L);
    ("|:", x |: y, 0xFFL);
    ("^:", x ^: y, 0xFFL);
    ("==:", x ==: y, 0L);
    ("<>:", x <>: y, 1L);
    ("<:", x <: y, 0L);
    ("<=:", x <=: y, 0L);
    (">:", x >: y, 1L);
    (">=:", x >=: y, 1L);
    ("<+", x <+ y, 1L (* 0xC5 is negative as signed 8-bit *));
    ("<=+", x <=+ y, 1L);
    (">+", x >+ y, 0L);
    (">=+", x >=+ y, 0L);
    ("<<:", x <<: B.const 3 2, 0x14L);
    (">>:", x >>: B.const 3 2, 0x31L);
    (">>+", x >>+ B.const 3 2, 0xF1L);
  ]

let test_operators () =
  List.iter
    (fun (name, e, expect) ->
      check int64_t name expect (Bits.to_int64 (eval e)))
    binop_cases;
  check int64_t "~:" 0x3AL (Bits.to_int64 (eval ~:x));
  check int64_t "negate" 0x3BL (Bits.to_int64 (eval (B.Ops.negate x)));
  check int64_t "mux t" 0xC5L (Bits.to_int64 (eval (B.mux B.vdd x y)));
  check int64_t "mux f" 0x3AL (Bits.to_int64 (eval (B.mux B.gnd x y)));
  check int64_t "slice" 0xCL (Bits.to_int64 (eval (B.slice x 7 4)));
  check int64_t "bit_" 1L (Bits.to_int64 (eval (B.bit_ x 0)));
  check int64_t "concat" 0xC53AL (Bits.to_int64 (eval (B.concat x y)));
  check int64_t "zext" 0xC5L (Bits.to_int64 (eval (B.zext x 16)));
  check int64_t "sext" 0xFFC5L (Bits.to_int64 (eval (B.sext x 16)));
  check int64_t "reduce_and" 0L (Bits.to_int64 (eval (B.reduce_and x)));
  check int64_t "reduce_or" 1L (Bits.to_int64 (eval (B.reduce_or x)));
  check int64_t "reduce_xor" 0L (Bits.to_int64 (eval (B.reduce_xor x)));
  check int64_t "cases hit" 7L
    (Bits.to_int64
       (eval (B.cases y (B.const 8 1) [ (B.const 8 0x3A, B.const 8 7) ])));
  check int64_t "cases default" 1L
    (Bits.to_int64
       (eval (B.cases y (B.const 8 1) [ (B.const 8 0x99, B.const 8 7) ])))

let test_build_errors () =
  let fails f =
    match f () with
    | exception B.Build_error _ -> ()
    | _ -> Alcotest.fail "expected Build_error"
  in
  fails (fun () -> B.concat_list []);
  fails (fun () ->
      let ctx = B.create "x" in
      B.assign ctx (B.const 1 0) B.vdd);
  fails (fun () ->
      let ctx = B.create "x" in
      let _ = B.rom ctx "r" [||] in
      ());
  (* using a finalized context *)
  fails (fun () ->
      let ctx = B.create "x" in
      let a = B.input ctx "a" 1 in
      let o = B.output ctx "o" 1 in
      B.assign ctx o a;
      let _ = B.finalize ctx in
      B.wire ctx "late" 1)

let test_named_processes () =
  let ctx = B.create "named" in
  let clk = B.input ctx "clk" 1 in
  let q = B.reg ctx "q" 1 in
  B.always_ff ctx ~name:"my_proc" ~clock:clk [ q <-- ~:q ];
  let o = B.output ctx "o" 1 in
  B.assign ctx o q;
  let d = B.finalize ctx in
  check bool_t "proc name kept" true (d.procs.(0).pname = "my_proc")

let test_rng () =
  let open Faultsim in
  let r1 = Rng.create 7L and r2 = Rng.create 7L in
  check bool_t "deterministic" true (Rng.next r1 = Rng.next r2);
  let r = Rng.create 1L in
  let in_range = ref true in
  for _ = 1 to 1000 do
    let v = Rng.int r 13 in
    if v < 0 || v >= 13 then in_range := false
  done;
  check bool_t "int in range" true !in_range;
  let r = Rng.create 2L in
  let widths_ok = ref true in
  for _ = 1 to 100 do
    if Bits.width (Rng.bits r 17) <> 17 then widths_ok := false
  done;
  check bool_t "bits width" true !widths_ok;
  (* shuffle is a permutation *)
  let arr = Array.init 20 (fun i -> i) in
  Rng.shuffle (Rng.create 3L) arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check bool_t "shuffle permutes" true (sorted = Array.init 20 (fun i -> i))

let suite =
  [
    Alcotest.test_case "operators" `Quick test_operators;
    Alcotest.test_case "build errors" `Quick test_build_errors;
    Alcotest.test_case "named processes" `Quick test_named_processes;
    Alcotest.test_case "rng" `Quick test_rng;
  ]
