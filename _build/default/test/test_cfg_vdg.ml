(* CFG construction and the Algorithm-1 redundancy walk. *)
open Rtlir
open Flow

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* a representative body:
     x = a + b;
     if (c) { q <= x; } else { if (d == 2) q <= e; else q <= f; }
     y = x ^ g;                                                     *)
let body =
  Stmt.Block
    [
      Stmt.Assign (10, Expr.Binop (Expr.Add, Expr.Sig 0, Expr.Sig 1));
      Stmt.If
        ( Expr.Sig 2,
          Stmt.Nonblock (11, Expr.Sig 10),
          Stmt.Case
            ( Expr.Sig 3,
              [ (Bits.of_int 4 2, Stmt.Nonblock (11, Expr.Sig 4)) ],
              Stmt.Nonblock (11, Expr.Sig 5) ) );
      Stmt.Assign (12, Expr.Binop (Expr.Xor, Expr.Sig 10, Expr.Sig 6));
    ]

let cfg = Cfg.build body
let vdg = Vdg.build cfg

let test_structure () =
  check int_t "decisions" 2 cfg.Cfg.n_decisions;
  check int_t "statements preserved" 5 (Cfg.statement_count cfg);
  (* entry segment holds the leading assignment *)
  match cfg.Cfg.nodes.(cfg.Cfg.entry) with
  | Cfg.Segment s ->
      check (Alcotest.list int_t) "entry reads" [ 0; 1 ]
        (Array.to_list s.Cfg.reads);
      check (Alcotest.list int_t) "entry blocking" [ 10 ]
        (Array.to_list s.Cfg.blocking)
  | _ -> Alcotest.fail "entry is not a segment"

let test_choose () =
  let find_decision labels_expected =
    let found = ref None in
    Array.iter
      (fun n ->
        match n with
        | Cfg.Decision d
          when (d.Cfg.labels <> None) = labels_expected ->
            found := Some d
        | _ -> ())
      cfg.Cfg.nodes;
    match !found with Some d -> d | None -> Alcotest.fail "decision not found"
  in
  let ifd = find_decision false in
  check int_t "if true arm" 0 (Cfg.choose ifd (Bits.of_int 1 1));
  check int_t "if false arm" 1 (Cfg.choose ifd (Bits.of_int 1 0));
  let cased = find_decision true in
  check int_t "case match" 0 (Cfg.choose cased (Bits.of_int 4 2));
  check int_t "case default" 1 (Cfg.choose cased (Bits.of_int 4 7))

(* Drive the walk with explicit value environments. *)
let walk ~good ~fault =
  let ev env e =
    Sim.Eval.eval
      ~mem_size:(fun _ -> 1)
      { Sim.Access.get = (fun i -> env i); get_mem = (fun _ _ -> Bits.make 8 0L) }
      e
  in
  (* record good choices by walking decisions with good values *)
  let record = Array.make (Array.length cfg.Cfg.nodes) 0 in
  Array.iteri
    (fun i n ->
      match n with
      | Cfg.Decision d -> record.(i) <- Cfg.choose d (ev good d.Cfg.selector)
      | _ -> ())
    cfg.Cfg.nodes;
  Vdg.redundant vdg
    ~good_choice:(fun i -> record.(i))
    ~eval_good:(ev good)
    ~eval_fault:(ev fault)
    ~visible:(fun s -> not (Bits.equal (good s) (fault s)))
    ~mem_word_visible:(fun _ _ -> false)

let base i =
  Bits.make
    (if i = 2 then 1 else if i = 3 then 4 else 16)
    (Int64.of_int (i + 1))

let with_ overrides i =
  match List.assoc_opt i overrides with
  | Some v ->
      Bits.make (if i = 2 then 1 else if i = 3 then 4 else 16) (Int64.of_int v)
  | None -> base i

let test_walk_redundant_offpath () =
  (* good takes the then-branch (c=1); fault differs only on e/f, which the
     then-branch never reads -> redundant *)
  check bool_t "off-path diff is redundant" true
    (walk ~good:(with_ [ (2, 1) ]) ~fault:(with_ [ (2, 1); (4, 99); (5, 77) ]))

let test_walk_onpath () =
  (* fault differs on a, which the entry segment reads -> not redundant *)
  check bool_t "on-path diff is not redundant" false
    (walk ~good:base ~fault:(with_ [ (0, 99) ]))

let test_walk_path_divergence () =
  (* fault flips the branch condition -> not redundant *)
  check bool_t "path divergence detected" false
    (walk ~good:(with_ [ (2, 1) ]) ~fault:(with_ [ (2, 0) ]))

let test_walk_selector_value_change_same_path () =
  (* the case selector differs (3 vs 7) but both fall to the default arm:
     the paper's Fig. 3(b) situation — still redundant provided the taken
     path reads no differing signal *)
  check bool_t "changed selector, same arm" true
    (walk
       ~good:(with_ [ (2, 0); (3, 3) ])
       ~fault:(with_ [ (2, 0); (3, 7) ]))

let test_walk_locals_are_skipped () =
  (* signal 10 is blocking-written before being read: its pre-execution
     visibility must not matter *)
  check bool_t "locally-written reads ignored" true
    (walk ~good:(with_ [ (2, 1) ]) ~fault:(with_ [ (2, 1); (10, 1234) ]))

(* soundness property on random designs: when the walk declares a fault
   redundant, executing the faulty copy writes exactly the good values *)
let test_walk_soundness_random () =
  let checked = ref 0 in
  for seed = 1 to 40 do
    let s = Harness.Rand_design.generate ~seed:(Int64.of_int (9000 + seed)) () in
    let d = s.Harness.Rand_design.design in
    let msz m = d.Design.mems.(m).Design.size in
    let vals =
      Array.init (Design.num_signals d) (fun i ->
          Bits.make (Design.signal_width d i) (Int64.of_int (i * 131)))
    in
    let mems =
      Array.map
        (fun (m : Design.mem) ->
          match m.Design.init with
          | Some a -> Array.copy a
          | None ->
              Array.init m.Design.size (fun a ->
                  Bits.make m.Design.data_width (Int64.of_int (a * 7))))
        d.Design.mems
    in
    (* faulty view: flip one bit of one signal *)
    let rng = Faultsim.Rng.create (Int64.of_int seed) in
    let fsig = Faultsim.Rng.int rng (Design.num_signals d) in
    let fbit = Faultsim.Rng.int rng (Design.signal_width d fsig) in
    let fault_val i =
      if i = fsig then
        Bits.force_bit vals.(i) fbit (not (Bits.bit vals.(i) fbit))
      else vals.(i)
    in
    let good_r =
      { Sim.Access.get = (fun i -> vals.(i)); get_mem = (fun m a -> mems.(m).(a)) }
    in
    let fault_r =
      {
        Sim.Access.get = (fun i -> fault_val i);
        get_mem = (fun m a -> mems.(m).(a));
      }
    in
    Array.iter
      (fun (p : Design.proc) ->
        if p.trigger <> Design.Comb then begin
          let cp = Sim.Compile.proc ~mem_size:msz p.body in
          let record = Array.make (Array.length cp.Sim.Compile.cfg.Cfg.nodes) 0 in
          (* collect good writes *)
          let wr log =
            {
              Sim.Access.set_blocking = (fun _ _ -> assert false);
              set_nonblocking = (fun id v -> log := (`S id, v) :: !log);
              write_mem = (fun m a v -> log := (`M (m, a), v) :: !log);
            }
          in
          let glog = ref [] in
          Sim.Compile.exec cp ~record good_r (wr glog);
          let redundant =
            Vdg.redundant cp.Sim.Compile.vdg
              ~good_choice:(fun i -> record.(i))
              ~eval_good:(fun e -> Sim.Eval.eval ~mem_size:msz good_r e)
              ~eval_fault:(fun e -> Sim.Eval.eval ~mem_size:msz fault_r e)
              ~visible:(fun s -> not (Bits.equal vals.(s) (fault_val s)))
              ~mem_word_visible:(fun _ _ -> false)
          in
          if redundant then begin
            incr checked;
            let flog = ref [] in
            Sim.Compile.exec cp fault_r (wr flog);
            if !glog <> !flog then
              Alcotest.failf
                "seed %d proc %s: walk said redundant but writes differ" seed
                p.pname
          end
        end)
      d.Design.procs
  done;
  check bool_t "some redundant cases exercised" true (!checked > 20)

(* the compiled CFG executor and the tree-walking interpreter perform the
   same writes in the same order, on the behavioral bodies of random
   designs *)
let test_cfg_exec_equals_interp () =
  for seed = 1 to 30 do
    let s = Harness.Rand_design.generate ~seed:(Int64.of_int (60_000 + seed)) () in
    let d = s.Harness.Rand_design.design in
    let msz m = d.Design.mems.(m).Design.size in
    let vals =
      Array.init (Design.num_signals d) (fun i ->
          Bits.make (Design.signal_width d i) (Int64.of_int ((i * 2654435761) lxor seed)))
    in
    let mems =
      Array.map
        (fun (m : Design.mem) ->
          match m.Design.init with
          | Some a -> Array.copy a
          | None ->
              Array.init m.Design.size (fun a ->
                  Bits.make m.Design.data_width (Int64.of_int (a * 97))))
        d.Design.mems
    in
    Array.iter
      (fun (p : Design.proc) ->
        (* blocking writes make the two executions interact with the state
           store, so give each its own copy *)
        let run exec_fn =
          let local_vals = Array.copy vals in
          let log = ref [] in
          let reader =
            {
              Sim.Access.get = (fun i -> local_vals.(i));
              get_mem = (fun m a -> mems.(m).(a));
            }
          in
          let writer =
            {
              Sim.Access.set_blocking =
                (fun id v ->
                  local_vals.(id) <- v;
                  log := (`B id, v) :: !log);
              set_nonblocking = (fun id v -> log := (`N id, v) :: !log);
              write_mem = (fun m a v -> log := (`M (m, a), v) :: !log);
            }
          in
          exec_fn reader writer;
          List.rev !log
        in
        let cp = Sim.Compile.proc ~mem_size:msz p.body in
        let compiled = run (fun r w -> Sim.Compile.exec cp r w) in
        let interp = run (fun r w -> Sim.Interp.exec ~mem_size:msz r w p.body) in
        let bytecode =
          let sp = Sim.Bytecode.compile_stmt ~mem_size:msz p.body in
          run (fun r w -> Sim.Bytecode.exec sp r w)
        in
        if compiled <> interp || compiled <> bytecode then
          Alcotest.failf "seed %d proc %s: executors disagree" seed p.pname)
      d.Design.procs
  done

let test_vdg_compression () =
  (* a body with an empty-read segment between decisions compresses *)
  let b =
    Stmt.Block
      [
        Stmt.Nonblock (0, Expr.Const (Bits.make 4 3L));
        Stmt.If (Expr.Sig 1, Stmt.Skip, Stmt.Skip);
      ]
  in
  let c = Cfg.build b in
  let v = Vdg.build c in
  check bool_t "constant-only segment is boring" true
    (Vdg.dependency_node_count v < c.Cfg.n_segments)

let suite =
  [
    Alcotest.test_case "cfg structure" `Quick test_structure;
    Alcotest.test_case "choose" `Quick test_choose;
    Alcotest.test_case "walk: off-path diff redundant" `Quick
      test_walk_redundant_offpath;
    Alcotest.test_case "walk: on-path diff executes" `Quick test_walk_onpath;
    Alcotest.test_case "walk: path divergence executes" `Quick
      test_walk_path_divergence;
    Alcotest.test_case "walk: changed selector same arm" `Quick
      test_walk_selector_value_change_same_path;
    Alcotest.test_case "walk: locals skipped" `Quick
      test_walk_locals_are_skipped;
    Alcotest.test_case "walk soundness on random procs" `Quick
      test_walk_soundness_random;
    Alcotest.test_case "cfg exec = interp = bytecode" `Quick
      test_cfg_exec_equals_interp;
    Alcotest.test_case "vdg empty-node removal" `Quick test_vdg_compression;
  ]
