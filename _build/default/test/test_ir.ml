(* IR-level tests: expression evaluation/compilation/bytecode agreement,
   statement analyses, design validation, elaboration. *)
open Rtlir
open Sim
module B = Builder
open B.Ops

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let values = [| 0x1234L; 0xFFFFL; 0x7FL; 0x8000000000000000L |]
let widths_tbl = [| 16; 16; 8; 64 |]

let reader =
  {
    Access.get = (fun i -> Bits.make widths_tbl.(i) values.(i));
    get_mem = (fun m a -> Bits.make 8 (Int64.of_int ((m * 100) + a)));
  }

let mem_size _ = 16

(* The three evaluators must agree on any expression. *)
let eval_all e =
  let a = Eval.eval ~mem_size reader e in
  let b = Compile.expr ~mem_size e reader in
  let c = Bytecode.eval (Bytecode.compile ~mem_size e) reader in
  check bool_t "ast=closure" true (Bits.equal a b);
  check bool_t "ast=bytecode" true (Bits.equal a c);
  a

let test_eval_basics () =
  let s i = Expr.Sig i in
  check Alcotest.int64 "add" 0x2468L
    (Bits.to_int64 (eval_all (Expr.Binop (Expr.Add, s 0, s 0))));
  check Alcotest.int64 "xor" 0xEDCBL
    (Bits.to_int64 (eval_all (Expr.Binop (Expr.Xor, s 0, s 1))));
  check Alcotest.int64 "mux taken" 0x1234L
    (Bits.to_int64
       (eval_all (Expr.Mux (Expr.Sig 2, s 0, Expr.Const (Bits.make 16 9L)))));
  check Alcotest.int64 "mem read wraps" 101L
    (Bits.to_int64
       (eval_all (Expr.Mem_read (1, Expr.Const (Bits.make 8 (Int64.of_int 33))))));
  check Alcotest.int64 "slice" 0x23L
    (Bits.to_int64 (eval_all (Expr.Slice (s 0, 11, 4))));
  check Alcotest.int64 "sext" 0x007FL
    (Bits.to_int64 (eval_all (Expr.Sext (Expr.Sig 2, 16))))

(* Differential: random expressions from the generator used by the fuzz
   harness, all three evaluators agree. *)
let test_eval_differential () =
  for seed = 1 to 60 do
    let s = Harness.Rand_design.generate ~seed:(Int64.of_int (7000 + seed)) () in
    let d = s.Harness.Rand_design.design in
    let vals =
      Array.init (Design.num_signals d) (fun i ->
          Bits.make (Design.signal_width d i) (Int64.of_int (i * 0x9E3779B9)))
    in
    let mems =
      Array.map
        (fun (m : Design.mem) ->
          Array.init m.size (fun a -> Bits.make m.data_width (Int64.of_int (a * 37))))
        d.mems
    in
    let r =
      {
        Access.get = (fun i -> vals.(i));
        get_mem = (fun m a -> mems.(m).(a));
      }
    in
    let msz m = d.mems.(m).Design.size in
    Array.iter
      (fun (a : Design.assign) ->
        let x = Eval.eval ~mem_size:msz r a.expr in
        let y = Compile.expr ~mem_size:msz a.expr r in
        let z = Bytecode.eval (Bytecode.compile ~mem_size:msz a.expr) r in
        if not (Bits.equal x y && Bits.equal x z) then
          Alcotest.failf "seed %d: evaluators disagree on %s" seed
            (Format.asprintf "%a" (Expr.pp ~names:(Design.signal_name d)) a.expr))
      d.assigns
  done

let test_stmt_analyses () =
  let body =
    Stmt.Block
      [
        Stmt.Assign (0, Expr.Binop (Expr.Add, Expr.Sig 1, Expr.Sig 2));
        Stmt.If
          ( Expr.Sig 3,
            Stmt.Nonblock (4, Expr.Sig 0),
            Stmt.Block
              [
                Stmt.Nonblock (4, Expr.Sig 5);
                Stmt.Mem_write (0, Expr.Sig 6, Expr.Sig 7);
              ] );
      ]
  in
  check (Alcotest.list int_t) "reads" [ 0; 1; 2; 3; 5; 6; 7 ]
    (Stmt.read_signals body);
  check (Alcotest.list int_t) "writes" [ 0; 4 ] (Stmt.write_signals body);
  check (Alcotest.list int_t) "blocking" [ 0 ] (Stmt.blocking_writes body);
  check (Alcotest.list int_t) "nonblocking" [ 4 ]
    (Stmt.nonblocking_writes body);
  check (Alcotest.list int_t) "write mems" [ 0 ] (Stmt.write_mems body);
  (* 0 assigned always; 4 on both paths; mem write is not a signal *)
  check (Alcotest.list int_t) "always assigned" [ 0; 4 ]
    (Stmt.always_assigned body)

let expect_invalid name build =
  Alcotest.test_case name `Quick (fun () ->
      match build () with
      | exception Design.Invalid _ -> ()
      | _ -> Alcotest.failf "%s: expected Design.Invalid" name)

let validation_cases =
  [
    expect_invalid "two drivers" (fun () ->
        let ctx = B.create "bad" in
        let a = B.input ctx "a" 4 in
        let w = B.wire ctx "w" 4 in
        B.assign ctx w a;
        B.assign ctx w a;
        B.finalize ctx);
    expect_invalid "no driver" (fun () ->
        let ctx = B.create "bad" in
        let _ = B.wire ctx "w" 4 in
        B.finalize ctx);
    expect_invalid "width mismatch" (fun () ->
        let ctx = B.create "bad" in
        let a = B.input ctx "a" 4 in
        let w = B.wire ctx "w" 8 in
        B.assign ctx w a;
        B.finalize ctx);
    expect_invalid "latch in comb" (fun () ->
        let ctx = B.create "bad" in
        let a = B.input ctx "a" 1 in
        let w = B.wire ctx "w" 1 in
        B.always_comb ctx [ B.when_ a [ B.Ops.( =: ) w a ] ];
        B.finalize ctx);
    expect_invalid "blocking write in ff" (fun () ->
        let ctx = B.create "bad" in
        let clk = B.input ctx "clk" 1 in
        let q = B.reg ctx "q" 1 in
        B.always_ff ctx ~clock:clk [ B.Ops.( =: ) q (B.Ops.( ~: ) q) ];
        B.finalize ctx);
    expect_invalid "nonblocking write to wire" (fun () ->
        let ctx = B.create "bad" in
        let clk = B.input ctx "clk" 1 in
        let a = B.input ctx "a" 1 in
        let w = B.wire ctx "w" 1 in
        B.assign ctx w a;
        B.always_ff ctx ~clock:clk [ w <-- a ];
        B.finalize ctx);
    expect_invalid "write to ROM" (fun () ->
        let ctx = B.create "bad" in
        let clk = B.input ctx "clk" 1 in
        let rom = B.rom ctx "r" [| Bits.make 8 1L |] in
        B.always_ff ctx ~clock:clk
          [ B.write_mem rom (B.const 1 0) (B.const 8 0) ];
        B.finalize ctx);
    expect_invalid "case label width" (fun () ->
        let ctx = B.create "bad" in
        let clk = B.input ctx "clk" 1 in
        let a = B.input ctx "a" 2 in
        let q = B.reg ctx "q" 1 in
        B.always_ff ctx ~clock:clk
          [ B.switch a [ (Bits.make 3 0L, [ q <-- B.vdd ]) ] ~default:[] ];
        B.finalize ctx);
  ]

let test_comb_cycle () =
  let ctx = B.create "cyc" in
  let a = B.input ctx "a" 1 in
  let w1 = B.wire ctx "w1" 1 in
  let w2 = B.wire ctx "w2" 1 in
  B.assign ctx w1 (w2 ^: a);
  B.assign ctx w2 (w1 ^: a);
  let d = B.finalize ctx in
  match Elaborate.build d with
  | exception Elaborate.Comb_cycle _ -> ()
  | _ -> Alcotest.fail "expected Comb_cycle"

let test_topo_order () =
  let d = Circuits.Sha256_c2v.circuit.Circuits.Bench_circuit.build () in
  let g = Elaborate.build d in
  (* every comb node's signal reads are produced at earlier positions *)
  let producer = Array.make (Design.num_signals d) (-1) in
  Array.iteri
    (fun pos writes -> Array.iter (fun s -> producer.(s) <- pos) writes)
    g.Elaborate.comb_writes;
  Array.iteri
    (fun pos reads ->
      Array.iter
        (fun s ->
          if producer.(s) >= 0 && producer.(s) > pos then
            Alcotest.failf "position %d reads %s produced later" pos
              (Design.signal_name d s))
        reads)
    g.Elaborate.comb_reads

let test_cell_count () =
  let d = Circuits.Alu64.circuit.Circuits.Bench_circuit.build () in
  check bool_t "cell count positive" true (Design.cell_count d > 50)

let suite =
  [
    Alcotest.test_case "eval basics (3 evaluators)" `Quick test_eval_basics;
    Alcotest.test_case "evaluator differential" `Quick test_eval_differential;
    Alcotest.test_case "stmt analyses" `Quick test_stmt_analyses;
    Alcotest.test_case "comb cycle rejected" `Quick test_comb_cycle;
    Alcotest.test_case "topological order" `Quick test_topo_order;
    Alcotest.test_case "cell count" `Quick test_cell_count;
  ]
  @ validation_cases
