(* Functional tests: every benchmark circuit is checked against an
   independent software model (known SHA-256 vectors, the ISA golden
   machine, exact FPU/ALU references, a convolution mirror). *)
open Rtlir
open Sim
open Faultsim
module C = Circuits

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let sim_of (c : C.Bench_circuit.t) =
  let d = c.build () in
  (d, Simulator.create (Elaborate.build d))

let run_workload sim (w : Workload.t) ~cycles observe =
  let w = { w with cycles } in
  Workload.run w
    ~set_input:(Simulator.set_input sim)
    ~step:(fun () -> Simulator.step sim)
    ~observe:(fun c ->
      observe c;
      true)

let peek_int sim id = Int64.to_int (Bits.to_int64 (Simulator.peek sim id))

let peek_mem_int sim m a =
  Int64.to_int (Bits.to_int64 (Simulator.peek_mem sim m a))

let mem_id d name =
  let rec scan i =
    if i >= Array.length d.Design.mems then raise Not_found
    else if d.Design.mems.(i).Design.mname = name then i
    else scan (i + 1)
  in
  scan 0

(* --- SHA-256 (both variants): known "abc" digest plus random blocks
   against the software compression --- *)

let sha_digests (c : C.Bench_circuit.t) ~seed ~blocks =
  let d, sim = sim_of c in
  let done_id = Design.find_signal d "done" in
  let digest_ids =
    Array.init 8 (fun i -> Design.find_signal d (Printf.sprintf "dig%d" i))
  in
  let results = ref [] in
  let w = C.Sha256_core.workload ~seed d ~cycles:(blocks * C.Sha256_core.period) in
  run_workload sim w ~cycles:(blocks * C.Sha256_core.period) (fun _ ->
      if Bits.is_true (Simulator.peek sim done_id) then
        results := Array.map (peek_int sim) digest_ids :: !results);
  List.rev !results

let test_sha name (c : C.Bench_circuit.t) seed () =
  let digests = sha_digests c ~seed ~blocks:3 in
  check int_t "three digests" 3 (List.length digests);
  List.iteri
    (fun blk digest ->
      let expect =
        if blk = 0 then C.Sha256_core.abc_digest
        else C.Sha256_core.sw_compress (C.Sha256_core.block_words ~seed blk)
      in
      check bool_t
        (Printf.sprintf "%s block %d digest" name blk)
        true
        (digest = expect))
    digests

(* --- ALU: every opcode against the Int64 reference --- *)

let test_alu () =
  let c = C.Alu64.circuit in
  let d, sim = sim_of c in
  let ids = List.map (fun n -> Design.find_signal d n) in
  let[@warning "-8"] [ clk; a; b; op; valid ] =
    ids [ "clk"; "a"; "b"; "op"; "valid" ]
  in
  let out_result = Design.find_signal d "out_result" in
  let rng = Rng.create 0xA1L in
  let all_ops =
    [
      C.Alu64.Add; Sub; And_; Or_; Xor_; Nor; Shl_; Shr; Sar; Slt; Sltu;
      Mul_; Pass_a; Neg_a; Min; Rot;
    ]
  in
  List.iter
    (fun opv ->
      for _ = 1 to 40 do
        let av = Rng.next rng and bv = Rng.next rng in
        Simulator.set_input sim a (Bits.make 64 av);
        Simulator.set_input sim b (Bits.make 64 bv);
        Simulator.set_input sim op (Bits.of_int 4 (C.Alu64.op_code opv));
        Simulator.set_input sim valid (Bits.one 1);
        Simulator.set_input sim clk (Bits.one 1);
        Simulator.step sim;
        Simulator.set_input sim clk (Bits.zero 1);
        Simulator.step sim;
        let got = Bits.to_int64 (Simulator.peek sim out_result) in
        let expect = C.Alu64.reference opv av bv in
        if got <> expect then
          Alcotest.failf "alu op %d: a=%Lx b=%Lx got %Lx expect %Lx"
            (C.Alu64.op_code opv) av bv got expect
      done)
    all_ops

(* --- FPU: exact against the mirrored reference; IEEE-exact spot cases --- *)

let fpu_drive sim d (av, bv, opv) =
  let f n = Design.find_signal d n in
  Simulator.set_input sim (f "in_valid") (Bits.one 1);
  Simulator.set_input sim (f "op") (Bits.of_int 1 opv);
  Simulator.set_input sim (f "a") (Bits.make 32 (Int64.of_int av));
  Simulator.set_input sim (f "b") (Bits.make 32 (Int64.of_int bv));
  Simulator.set_input sim (f "clk") (Bits.one 1);
  Simulator.step sim;
  Simulator.set_input sim (f "clk") (Bits.zero 1);
  Simulator.step sim

let test_fpu_random () =
  let c = C.Fpu32.circuit in
  let d, sim = sim_of c in
  let out_result = Design.find_signal d "out_result" in
  let rng = Rng.create 0xF9L in
  let pending = Queue.create () in
  let checked = ref 0 in
  for _ = 1 to 2000 do
    let av = Int64.to_int (Int64.logand (Rng.next rng) 0xFFFFFFFFL) in
    let bv = Int64.to_int (Int64.logand (Rng.next rng) 0xFFFFFFFFL) in
    let opv = Rng.int rng 2 in
    fpu_drive sim d (av, bv, opv);
    Queue.push (av, bv, opv) pending;
    if Queue.length pending > 1 then begin
      let av, bv, opv = Queue.pop pending in
      let expect =
        if opv = 0 then C.Fpu32.ref_add av bv else C.Fpu32.ref_mul av bv
      in
      incr checked;
      let got = peek_int sim out_result in
      if got <> expect then
        Alcotest.failf "fpu op=%d a=%08x b=%08x got %08x expect %08x" opv av
          bv got expect
    end
  done;
  check bool_t "checked many" true (!checked > 1900)

let float_bits f = Int32.to_int (Int32.bits_of_float f) land 0xFFFFFFFF

let test_fpu_exact_cases () =
  (* cases with exact IEEE results (no rounding): reference must agree with
     the host float arithmetic *)
  let cases =
    [
      (1.0, 2.0, 0, 3.0);
      (1.5, 2.5, 0, 4.0);
      (0.0, 3.25, 0, 3.25);
      (5.0, 0.0, 0, 5.0);
      (-1.0, 1.0, 0, 0.0);
      (2.0, 3.0, 1, 6.0);
      (1.5, 2.0, 1, 3.0);
      (0.0, 7.5, 1, 0.0);
      (-2.0, 4.0, 1, -8.0);
      (0.5, 0.5, 1, 0.25);
    ]
  in
  List.iter
    (fun (a, b, op, expect) ->
      let got =
        if op = 0 then C.Fpu32.ref_add (float_bits a) (float_bits b)
        else C.Fpu32.ref_mul (float_bits a) (float_bits b)
      in
      check int_t
        (Printf.sprintf "%g op%d %g" a op b)
        (float_bits expect) got)
    cases

(* --- processors: lockstep against the golden ISA machine --- *)

let lockstep_vs_machine (c : C.Bench_circuit.t) program ~cycles ~per_retire ()
    =
  let d, sim = sim_of c in
  let m = C.Cpu_isa.machine_create program ~dmem_size:64 in
  let regfile = mem_id d "regfile" and dmem = mem_id d "dmem" in
  let retired_out = Design.find_signal d "retired_out" in
  let w = c.workload d ~cycles in
  let last = ref (-1) in
  run_workload sim w ~cycles (fun cyc ->
      if per_retire then begin
        (* advance the machine to the hardware's retire count; compare
           architectural state only on retire transitions, when no store is
           in flight between pipeline stages *)
        let hw_retired = peek_int sim retired_out in
        while
          m.C.Cpu_isa.retired < hw_retired && not m.C.Cpu_isa.halted
        do
          C.Cpu_isa.machine_step m
        done;
        if m.C.Cpu_isa.retired = hw_retired && hw_retired <> !last then begin
          last := hw_retired;
          for r = 1 to 15 do
            let hw = peek_mem_int sim regfile r in
            if hw <> m.C.Cpu_isa.regs.(r) then
              Alcotest.failf "%s cycle %d: x%d = %x, machine has %x"
                c.C.Bench_circuit.name cyc r hw m.C.Cpu_isa.regs.(r)
          done;
          for a = 0 to 63 do
            let hw = peek_mem_int sim dmem a in
            if hw <> m.C.Cpu_isa.dmem.(a) then
              Alcotest.failf "%s cycle %d: dmem[%d] = %x, machine has %x"
                c.C.Bench_circuit.name cyc a hw m.C.Cpu_isa.dmem.(a)
          done
        end
      end);
  (sim, d, m)

let test_sodor () =
  let sim, d, _ =
    lockstep_vs_machine C.Sodor.circuit C.Cpu_isa.fib_program ~cycles:400
      ~per_retire:true ()
  in
  let dmem = mem_id d "dmem" in
  Array.iteri
    (fun i v -> check int_t (Printf.sprintf "fib[%d]" i) v (peek_mem_int sim dmem i))
    C.Cpu_isa.fib_expected

let test_riscv_mini () =
  let sim, d, _ =
    lockstep_vs_machine C.Riscv_mini.circuit C.Cpu_isa.gcd_program
      ~cycles:2000 ~per_retire:true ()
  in
  (* gcd(270+k, 192) results *)
  let dmem = mem_id d "dmem" in
  let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
  for k = 0 to 5 do
    check int_t
      (Printf.sprintf "gcd slot %d" k)
      (gcd (270 + k) 192)
      (peek_mem_int sim dmem (16 + k))
  done

let test_picorv32 () =
  ignore
    (lockstep_vs_machine C.Picorv32.circuit C.Cpu_isa.xorshift_full
       ~cycles:1500 ~per_retire:true ())

let test_mips () =
  let sim, d, _ =
    lockstep_vs_machine C.Mips_cpu.circuit C.Cpu_isa.sort_program
      ~cycles:2500 ~per_retire:false ()
  in
  let dmem = mem_id d "dmem" in
  Array.iteri
    (fun i v ->
      check int_t (Printf.sprintf "sorted[%d]" i) v (peek_mem_int sim dmem i))
    C.Cpu_isa.sort_expected

(* MIPS register state is also checked in lockstep at retire boundaries,
   ignoring data memory (stores commit one stage before retirement). *)
let test_mips_lockstep_regs () =
  let c = C.Mips_cpu.circuit in
  let d, sim = sim_of c in
  let m = C.Cpu_isa.machine_create C.Cpu_isa.sort_program ~dmem_size:64 in
  let regfile = mem_id d "regfile" in
  let retired_out = Design.find_signal d "retired_out" in
  let w = c.workload d ~cycles:800 in
  run_workload sim w ~cycles:800 (fun cyc ->
      let hw_retired = peek_int sim retired_out in
      while m.C.Cpu_isa.retired < hw_retired && not m.C.Cpu_isa.halted do
        C.Cpu_isa.machine_step m
      done;
      if m.C.Cpu_isa.retired = hw_retired then
        for r = 1 to 15 do
          let hw = peek_mem_int sim regfile r in
          if hw <> m.C.Cpu_isa.regs.(r) then
            Alcotest.failf "mips cycle %d: x%d = %x, machine has %x" cyc r hw
              m.C.Cpu_isa.regs.(r)
        done)

(* --- convolution: exact mirror of the line-buffer datapath --- *)

let test_conv () =
  let c = C.Conv_acc.circuit in
  let d, sim = sim_of c in
  let sw = C.Conv_acc.sw_create () in
  let out_valid = Design.find_signal d "out_valid" in
  let conv_out = Design.find_signal d "conv_out" in
  let checksum_out = Design.find_signal d "checksum_out" in
  let w = c.workload d ~cycles:600 in
  let px_valid = Design.find_signal d "px_valid" in
  let px_in = Design.find_signal d "px_in" in
  run_workload sim { w with drive = w.drive } ~cycles:600 (fun cyc ->
      (* mirror the same stimulus *)
      let drv = w.Workload.drive cyc in
      let v = Bits.is_true (List.assoc px_valid drv) in
      let px = Int64.to_int (Bits.to_int64 (List.assoc px_in drv)) in
      C.Conv_acc.sw_step sw ~px_valid:v ~px;
      check bool_t
        (Printf.sprintf "valid @%d" cyc)
        sw.C.Conv_acc.out_valid
        (Bits.is_true (Simulator.peek sim out_valid));
      if sw.C.Conv_acc.out_valid then
        check int_t
          (Printf.sprintf "conv @%d" cyc)
          sw.C.Conv_acc.out (peek_int sim conv_out);
      check int_t
        (Printf.sprintf "checksum @%d" cyc)
        sw.C.Conv_acc.checksum
        (peek_int sim checksum_out))

(* --- APB: directed write/read-back and error responses --- *)

let test_apb () =
  let c = C.Apb.circuit in
  let d, sim = sim_of c in
  let f n = Design.find_signal d n in
  let clk = f "clk" in
  let cycle inputs =
    List.iter (fun (id, v) -> Simulator.set_input sim id v) inputs;
    Simulator.set_input sim clk (Bits.one 1);
    Simulator.step sim;
    Simulator.set_input sim clk (Bits.zero 1);
    Simulator.step sim
  in
  let idle = [ (f "cmd_valid", Bits.zero 1) ] in
  let issue ~write ~addr ~data =
    cycle
      [
        (f "cmd_valid", Bits.one 1);
        (f "cmd_write", Bits.of_bool write);
        (f "cmd_addr", Bits.of_int 5 addr);
        (f "cmd_wdata", Bits.make 32 (Int64.of_int data));
      ];
    (* wait for the response *)
    let rec wait n =
      if n > 8 then Alcotest.fail "no APB response"
      else if Bits.is_true (Simulator.peek sim (f "rsp_valid")) then ()
      else begin
        cycle idle;
        wait (n + 1)
      end
    in
    wait 0;
    ( peek_int sim (f "rsp_rdata"),
      Bits.is_true (Simulator.peek sim (f "rsp_err")) )
  in
  (* write all registers, read them back (odd addresses add a wait state) *)
  for a = 0 to 15 do
    let _, err = issue ~write:true ~addr:a ~data:(0xC0DE0 + a) in
    check bool_t "write ok" false err
  done;
  for a = 0 to 15 do
    let rdata, err = issue ~write:false ~addr:a ~data:0 in
    check bool_t "read ok" false err;
    check int_t (Printf.sprintf "readback[%d]" a) (0xC0DE0 + a) rdata
  done;
  (* out-of-range: error response, no data corruption *)
  let _, err = issue ~write:true ~addr:20 ~data:0xDEAD in
  check bool_t "error response" true err;
  let rdata, _ = issue ~write:false ~addr:4 ~data:0 in
  check int_t "reg 4 intact" (0xC0DE0 + 4) rdata

let suite =
  [
    Alcotest.test_case "sha256_hv digests" `Quick
      (test_sha "hv" C.Sha256_hv.circuit 0x5AAL);
    Alcotest.test_case "sha256_c2v digests" `Quick
      (test_sha "c2v" C.Sha256_c2v.circuit 0xC2FL);
    Alcotest.test_case "alu vs reference" `Quick test_alu;
    Alcotest.test_case "fpu vs mirrored reference" `Quick test_fpu_random;
    Alcotest.test_case "fpu IEEE-exact cases" `Quick test_fpu_exact_cases;
    Alcotest.test_case "sodor lockstep + fib" `Quick test_sodor;
    Alcotest.test_case "riscv_mini lockstep + gcd" `Quick test_riscv_mini;
    Alcotest.test_case "picorv32 lockstep" `Quick test_picorv32;
    Alcotest.test_case "mips sorts" `Quick test_mips;
    Alcotest.test_case "mips lockstep regs" `Quick test_mips_lockstep_regs;
    Alcotest.test_case "conv_acc mirror" `Quick test_conv;
    Alcotest.test_case "apb readback" `Quick test_apb;
  ]
