(* Verilog frontend round-trip: for every benchmark circuit (and a sample
   of random designs), export to Verilog, parse it back, and require
   behavioural equivalence — identical good-simulation traces of every
   signal, and identical fault verdicts for the name-mapped fault list. *)
open Rtlir
open Sim
open Faultsim

let check = Alcotest.check
let bool_t = Alcotest.bool

let trace g (w : Workload.t) ~cycles names =
  let d = g.Elaborate.design in
  let sim = Simulator.create g in
  let out = ref [] in
  Workload.run { w with cycles }
    ~set_input:(fun id v -> Simulator.set_input sim id v)
    ~step:(fun () -> Simulator.step sim)
    ~observe:(fun _ ->
      out :=
        List.map (fun n -> Simulator.peek sim (Design.find_signal d n)) names
        :: !out;
      true);
  List.rev !out

let workload_by_name src_design (w : Workload.t) dst_design =
  (* re-target a workload's signal ids through names *)
  let map id =
    Design.find_signal dst_design (Design.signal_name src_design id)
  in
  {
    Workload.cycles = w.cycles;
    clock = map w.clock;
    drive =
      (fun c -> List.map (fun (id, v) -> (map id, v)) (w.Workload.drive c));
  }

let roundtrip_equiv name (design : Design.t) (w : Workload.t) ~cycles
    ~with_faults =
  let text = Verilog.to_string design in
  let reparsed =
    try Verilog_parser.parse text
    with Verilog_parser.Parse_error msg ->
      Alcotest.failf "%s: reparse failed: %s" name msg
  in
  let g1 = Elaborate.build design in
  let g2 = Elaborate.build reparsed in
  let w2 = workload_by_name design w reparsed in
  (* identical traces on every original signal *)
  let names =
    Array.to_list (Array.map (fun (s : Design.signal) -> s.name) design.signals)
  in
  let t1 = trace g1 w ~cycles names in
  let t2 = trace g2 w2 ~cycles names in
  if t1 <> t2 then begin
    (* locate the first divergence for the error message *)
    List.iteri
      (fun cyc (r1, r2) ->
        List.iteri
          (fun i (a, b) ->
            if not (Bits.equal a b) then
              Alcotest.failf "%s: cycle %d signal %s: %s vs %s" name cyc
                (List.nth names i) (Bits.to_string a) (Bits.to_string b))
          (List.combine r1 r2))
      (List.combine t1 t2)
  end;
  if with_faults then begin
    let faults1 =
      Fault.generate ~max_faults:60 ~seed:0xBEEFL design
    in
    let faults2 =
      Array.map
        (fun (f : Fault.t) ->
          {
            f with
            Fault.signal =
              Design.find_signal reparsed
                (Design.signal_name design f.signal);
          })
        faults1
    in
    let r1 =
      Engine.Concurrent.run g1 { w with cycles } faults1
    in
    let r2 = Engine.Concurrent.run g2 { w2 with cycles } faults2 in
    check bool_t (name ^ " fault verdicts survive round-trip") true
      (r1.Fault.detected = r2.Fault.detected)
  end

let circuit_case (c : Circuits.Bench_circuit.t) =
  Alcotest.test_case (c.name ^ " round-trips") `Quick (fun () ->
      let design, _, w, _ = Circuits.Bench_circuit.instantiate c ~scale:0.05 in
      roundtrip_equiv c.name design w ~cycles:(min 120 w.Workload.cycles)
        ~with_faults:true)

let test_random_designs () =
  for seed = 1 to 20 do
    let s =
      Harness.Rand_design.generate ~seed:(Int64.of_int (77_000 + seed)) ()
    in
    roundtrip_equiv
      (Printf.sprintf "rand%d" seed)
      s.Harness.Rand_design.design s.Harness.Rand_design.workload ~cycles:80
      ~with_faults:(seed mod 4 = 0)
  done

let test_handwritten_verilog () =
  (* a module written by hand, exercising Verilog-style sizing: the 9-bit
     sum of two 8-bit operands keeps its carry *)
  let src =
    {|
      // adder with carry and a mux
      module handmade(clk, a, b, sel, y, c);
        input clk;
        input [7:0] a, b;
        input sel;
        output [8:0] y;
        output c;
        reg [8:0] acc;
        wire [8:0] sum;
        assign sum = a + b;     /* context-extended to 9 bits */
        assign y = acc;
        assign c = acc[8];
        always @(posedge clk)
          if (sel)
            acc <= sum;
          else
            acc <= acc - 9'd1;
      endmodule
    |}
  in
  let d = Verilog_parser.parse src in
  let g = Elaborate.build d in
  let sim = Simulator.create g in
  let f n = Design.find_signal d n in
  let cycle a b sel =
    Simulator.set_input sim (f "a") (Bits.of_int 8 a);
    Simulator.set_input sim (f "b") (Bits.of_int 8 b);
    Simulator.set_input sim (f "sel") (Bits.of_int 1 sel);
    Simulator.set_input sim (f "clk") (Bits.one 1);
    Simulator.step sim;
    Simulator.set_input sim (f "clk") (Bits.zero 1);
    Simulator.step sim
  in
  cycle 200 100 1;
  check Alcotest.int "carry kept" 300
    (Int64.to_int (Bits.to_int64 (Simulator.peek sim (f "y"))));
  check bool_t "carry bit" true (Bits.is_true (Simulator.peek sim (f "c")));
  cycle 0 0 0;
  check Alcotest.int "decrement" 299
    (Int64.to_int (Bits.to_int64 (Simulator.peek sim (f "y"))))

let test_parse_errors () =
  let reject src =
    match Verilog_parser.parse src with
    | exception Verilog_parser.Parse_error _ -> ()
    | exception Verilog_lexer.Lex_error _ -> ()
    | _ -> Alcotest.failf "accepted bad source: %s" src
  in
  reject "module m(; endmodule";
  reject "module m(); input [3:1] a; endmodule";
  reject "module m(); wire w; assign w = unknown_name; endmodule";
  reject
    "module m(); input clk; reg q; always @(posedge clk) q = 1'b1; endmodule";
  reject "module m(); wire w; assign w = 1'b0; assign w = 1'b1; endmodule"

let suite =
  List.map circuit_case Circuits.all
  @ [
      Alcotest.test_case "round-trip random designs" `Quick
        test_random_designs;
      Alcotest.test_case "handwritten module" `Quick test_handwritten_verilog;
      Alcotest.test_case "rejects bad source" `Quick test_parse_errors;
    ]
