(* Verilog exporter and VCD dumper. *)
open Rtlir

let check = Alcotest.check
let bool_t = Alcotest.bool

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec scan i =
    if i + nl > hl then false
    else if String.sub hay i nl = needle then true
    else scan (i + 1)
  in
  scan 0

let test_verilog_all_circuits () =
  List.iter
    (fun (c : Circuits.Bench_circuit.t) ->
      let d = c.build () in
      let v = Verilog.to_string d in
      let want needle =
        if not (contains v needle) then
          Alcotest.failf "%s: emitted Verilog lacks %S" c.name needle
      in
      want (Printf.sprintf "module %s(" d.dname);
      want "endmodule";
      want "input clk;";
      (* every port appears in the module declaration *)
      List.iter
        (fun id -> want (Design.signal_name d id))
        (d.inputs @ d.outputs);
      (* edge-triggered processes appear *)
      Array.iter
        (fun (p : Design.proc) ->
          match p.trigger with
          | Design.Edges _ -> want ("// " ^ p.pname)
          | Design.Comb -> want "always @*")
        d.procs;
      (* deterministic *)
      check bool_t "deterministic" true (String.equal v (Verilog.to_string d)))
    Circuits.all

let test_verilog_constructs () =
  let module B = Builder in
  let open B.Ops in
  let ctx = B.create "constructs" in
  let clk = B.input ctx "clk" 1 in
  let a = B.input ctx "a" 8 in
  let q = B.reg ctx "q" 8 in
  let w = B.wire ctx "w" 4 in
  (* slice of a compound expression forces shift-and-mask lowering *)
  B.assign ctx w (B.slice (a +: q) 5 2);
  let o = B.output ctx "o" 4 in
  B.assign ctx o w;
  let m = B.ram ctx "m" ~width:8 ~size:4 in
  B.always_ff ctx ~clock:clk
    [
      B.if_ (a <+ q)
        [ q <-- B.sext w 8 ]
        [ B.write_mem m (B.slice w 1 0) a ];
    ];
  let v = Verilog.to_string (B.finalize ctx) in
  List.iter
    (fun needle ->
      if not (contains v needle) then
        Alcotest.failf "missing %S in:\n%s" needle v)
    [
      "_eraser_t";  (* hoisted compound slice *)
      "[5:2]";
      "$signed(a) < $signed(q)";  (* signed compare *)
      "reg [7:0] m [0:3];";  (* memory *)
      "m[";  (* memory write *)
      "always @(posedge clk)";
    ]

let test_vcd () =
  let c = Circuits.find "apb" in
  let d = c.build () in
  let g = Elaborate.build d in
  let w = c.workload d ~cycles:30 in
  let path = Filename.temp_file "eraser" ".vcd" in
  Sim.Vcd.dump_drive ~path g ~clock:w.Faultsim.Workload.clock ~cycles:30
    ~drive:w.Faultsim.Workload.drive;
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  Sys.remove path;
  List.iter
    (fun needle ->
      if not (contains text needle) then
        Alcotest.failf "VCD lacks %S" needle)
    [
      "$enddefinitions $end"; "$dumpvars"; "$var wire 32 "; "#0"; "#3";
      "$scope module apb $end";
    ];
  (* the clock toggles: both polarities appear after timestamps *)
  check bool_t "has samples" true (String.length text > 500)

let suite =
  [
    Alcotest.test_case "verilog for every circuit" `Quick
      test_verilog_all_circuits;
    Alcotest.test_case "verilog constructs" `Quick test_verilog_constructs;
    Alcotest.test_case "vcd dump" `Quick test_vcd;
  ]
