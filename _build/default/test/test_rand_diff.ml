(* Differential property test: on randomly generated designs, every engine
   produces the serial oracle's detected-fault set. This is the strongest
   soundness check of the concurrent engine and of Algorithm 1 (an unsound
   skip shows up as a verdict mismatch). The standalone fuzz harness in
   examples/ runs the same property over thousands of seeds. *)
open Faultsim
module H = Harness

let engines_agree seed =
  let s = H.Rand_design.generate ~cycles:100 ~max_faults:40 ~seed () in
  let g = s.H.Rand_design.graph in
  let w = s.H.Rand_design.workload in
  let faults = s.H.Rand_design.faults in
  let oracle = Baselines.Serial.ifsim g w faults in
  List.for_all
    (fun e -> Fault.same_verdict oracle (H.Campaign.run e g w faults))
    [
      H.Campaign.Vfsim; H.Campaign.Eraser_mm; H.Campaign.Eraser_m;
      H.Campaign.Eraser;
    ]

let qcheck =
  QCheck2.Test.make ~count:60 ~name:"random-design engine equivalence"
    (QCheck2.Gen.map Int64.of_int (QCheck2.Gen.int_range 20_000 1_000_000))
    engines_agree

(* Coverage sanity across engines on random designs: the Eraser result is
   byte-identical to the Eraser- and Eraser-- results, so coverage numbers
   in the tables can never drift between ablation modes. *)
let test_ablation_equal_verdicts () =
  for seed = 1 to 15 do
    let s =
      H.Rand_design.generate ~cycles:80 ~max_faults:30
        ~seed:(Int64.of_int (31_000 + seed))
        ()
    in
    let g = s.H.Rand_design.graph in
    let w = s.H.Rand_design.workload in
    let faults = s.H.Rand_design.faults in
    let r1 = H.Campaign.run H.Campaign.Eraser_mm g w faults in
    let r2 = H.Campaign.run H.Campaign.Eraser g w faults in
    if not (Fault.same_verdict r1 r2) then
      Alcotest.failf "seed %d: ablation modes disagree" seed
  done

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck;
    Alcotest.test_case "ablation verdict equality" `Quick
      test_ablation_equal_verdicts;
  ]
