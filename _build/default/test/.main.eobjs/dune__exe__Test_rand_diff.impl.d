test/test_rand_diff.ml: Alcotest Baselines Fault Faultsim Harness Int64 List QCheck2 QCheck_alcotest
