test/test_circuits.ml: Alcotest Array Bits Circuits Design Elaborate Faultsim Int32 Int64 List Printf Queue Rng Rtlir Sim Simulator Workload
