test/test_classify.ml: Alcotest Array Bits Builder Circuits Classify Design Elaborate Engine Fault Faultsim Harness Int64 List Printf Rtlir Stats
