test/test_builder.ml: Access Alcotest Array Bits Builder Eval Expr Faultsim List Rng Rtlir Sim
