test/test_transient.ml: Alcotest Array Baselines Builder Circuits Design Elaborate Engine Fault Faultsim Harness Int64 List Rtlir Workload
