test/main.mli:
