test/test_samples.ml: Alcotest Array Baselines Buffer Circuits Classify Elaborate Engine Fault Faultsim Filename Format Harness List Rtlir String Sys Verilog_parser
