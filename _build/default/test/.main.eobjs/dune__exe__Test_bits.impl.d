test/test_bits.ml: Alcotest Bits Int64 List QCheck2 QCheck_alcotest Rtlir
