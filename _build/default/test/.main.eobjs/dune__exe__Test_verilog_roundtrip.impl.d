test/test_verilog_roundtrip.ml: Alcotest Array Bits Circuits Design Elaborate Engine Fault Faultsim Harness Int64 List Printf Rtlir Sim Simulator Verilog Verilog_lexer Verilog_parser Workload
