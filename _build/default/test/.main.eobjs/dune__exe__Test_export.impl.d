test/test_export.ml: Alcotest Array Builder Circuits Design Elaborate Faultsim Filename List Printf Rtlir Sim String Sys Verilog
