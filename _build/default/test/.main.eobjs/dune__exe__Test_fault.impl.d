test/test_fault.ml: Alcotest Array Bits Builder Fault Faultsim List Printf Rtlir Stats Workload
