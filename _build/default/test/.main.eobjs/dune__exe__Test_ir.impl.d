test/test_ir.ml: Access Alcotest Array Bits Builder Bytecode Circuits Compile Design Elaborate Eval Expr Format Harness Int64 Rtlir Sim Stmt
