test/test_simulator.ml: Alcotest Baselines Bits Builder Design Elaborate Harness Int64 List Rtlir Sim Simulator
