test/test_engines.ml: Alcotest Array Baselines Builder Circuits Design Elaborate Engine Fault Faultsim Harness List Rtlir Seq Stats Workload
