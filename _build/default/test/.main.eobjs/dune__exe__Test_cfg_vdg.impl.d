test/test_cfg_vdg.ml: Alcotest Array Bits Cfg Design Expr Faultsim Flow Harness Int64 List Rtlir Sim Stmt Vdg
