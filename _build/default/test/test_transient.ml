(* Transient (SEU) fault extension: engine agreement and basic semantics. *)
open Rtlir
open Faultsim
module H = Harness

let check = Alcotest.check
let bool_t = Alcotest.bool

(* a 1-bit flip in an isolated counter is detected exactly once and the
   corrupted count persists *)
let test_seu_semantics () =
  let module B = Builder in
  let open B.Ops in
  let ctx = B.create "seu_counter" in
  let clk = B.input ctx "clk" 1 in
  let q = B.reg ctx "q" 8 in
  B.always_ff ctx ~clock:clk [ q <-- (q +: B.const 8 1) ];
  let o = B.output ctx "o" 8 in
  B.assign ctx o q;
  let d = B.finalize ctx in
  let g = Elaborate.build d in
  let w =
    {
      Workload.cycles = 30;
      clock = Design.find_signal d "clk";
      drive = (fun _ -> []);
    }
  in
  let faults =
    [|
      { Fault.fid = 0; signal = Design.find_signal d "q"; bit = 7;
        stuck = Fault.Flip_at 10 };
      (* a flip on a bit that the counter rewrites next cycle in the same
         way: bit 0 flips, then increments diverge *)
      { Fault.fid = 1; signal = Design.find_signal d "q"; bit = 0;
        stuck = Fault.Flip_at 5 };
    |]
  in
  let oracle = Baselines.Serial.ifsim g w faults in
  check bool_t "flip detected" true oracle.Fault.detected.(0);
  check bool_t "flip 2 detected" true oracle.Fault.detected.(1);
  check bool_t "detected at its cycle" true
    (oracle.Fault.detection_cycle.(0) = 10);
  let r = Engine.Concurrent.run g w faults in
  check bool_t "concurrent agrees" true (Fault.same_verdict oracle r);
  check bool_t "same detection cycles" true
    (oracle.Fault.detection_cycle = r.Fault.detection_cycle)

let seu_circuit_case name =
  Alcotest.test_case (name ^ " seu engines agree") `Quick (fun () ->
      let c = Circuits.find name in
      let d, g, w, _ = Circuits.Bench_circuit.instantiate c ~scale:0.06 in
      let faults =
        Fault.generate_transients ~seed:11L ~count:40
          ~max_cycle:(w.Workload.cycles / 2)
          d
      in
      let oracle = Baselines.Serial.ifsim g w faults in
      List.iter
        (fun e ->
          let r = H.Campaign.run e g w faults in
          if not (Fault.same_verdict oracle r) then
            Alcotest.failf "%s: %s disagrees on transients" name
              (H.Campaign.engine_name e))
        [ H.Campaign.Vfsim; H.Campaign.Eraser_m; H.Campaign.Eraser ])

let test_seu_random_designs () =
  for seed = 1 to 25 do
    let s =
      H.Rand_design.generate ~cycles:80 ~seed:(Int64.of_int (50_000 + seed)) ()
    in
    let d = s.H.Rand_design.design in
    let g = s.H.Rand_design.graph in
    let w = s.H.Rand_design.workload in
    let faults =
      Fault.generate_transients ~seed:(Int64.of_int seed) ~count:25
        ~max_cycle:60 d
    in
    if Array.length faults > 0 then begin
      let oracle = Baselines.Serial.ifsim g w faults in
      let r = Engine.Concurrent.run g w faults in
      if not (Fault.same_verdict oracle r) then
        Alcotest.failf "seed %d: transient verdicts differ" seed
    end
  done

(* mixed campaigns: stuck-at and transient faults in one fault list *)
let test_mixed_campaign () =
  let c = Circuits.find "alu" in
  let d, g, w, stuck = Circuits.Bench_circuit.instantiate c ~scale:0.06 in
  let transients =
    Fault.generate_transients ~seed:3L ~count:30 ~max_cycle:50 d
  in
  let faults =
    Array.mapi
      (fun i f -> { f with Fault.fid = i })
      (Array.append stuck transients)
  in
  let oracle = Baselines.Serial.ifsim g w faults in
  let r = Engine.Concurrent.run g w faults in
  check bool_t "mixed campaign agrees" true (Fault.same_verdict oracle r)

let suite =
  [ Alcotest.test_case "seu semantics" `Quick test_seu_semantics ]
  @ List.map seu_circuit_case [ "apb"; "sodor"; "sha256_hv"; "conv_acc";
                                "riscv_mini"; "picorv32"; "mips"; "fpu" ]
  @ [
      Alcotest.test_case "seu on random designs" `Quick
        test_seu_random_designs;
      Alcotest.test_case "mixed stuck+transient campaign" `Quick
        test_mixed_campaign;
    ]
