type kind = Input | Output | Wire | Reg

type signal = { id : int; name : string; width : int; kind : kind }

type mem = {
  mid : int;
  mname : string;
  data_width : int;
  size : int;
  init : Bits.t array option;
  rom : bool;
}

type edge = Posedge | Negedge

type trigger = Edges of (edge * int) list | Comb

type proc = { pid : int; pname : string; trigger : trigger; body : Stmt.t }

type assign = { aid : int; target : int; expr : Expr.t }

type t = {
  dname : string;
  signals : signal array;
  mems : mem array;
  assigns : assign array;
  procs : proc array;
  inputs : int list;
  outputs : int list;
}

exception Invalid of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid s)) fmt

let signal_width d id = d.signals.(id).width
let mem_width d m = d.mems.(m).data_width
let signal_name d id = d.signals.(id).name
let num_signals d = Array.length d.signals

let mem_name_exn d m = d.mems.(m).mname

let find_signal d name =
  match Array.find_opt (fun s -> s.name = name) d.signals with
  | Some s -> s.id
  | None -> raise Not_found

let cell_count d =
  let rtl =
    Array.fold_left (fun acc a -> acc + Expr.size a.expr) 0 d.assigns
  in
  Array.fold_left (fun acc p -> acc + Stmt.size p.body) rtl d.procs

let check_expr d ctx e =
  try
    ignore
      (Expr.width ~sig_width:(signal_width d) ~mem_width:(mem_width d) e)
  with Expr.Type_error msg -> invalid "%s: %s" ctx msg

let check_assign_widths d ctx target e =
  check_expr d ctx e;
  let we =
    Expr.width ~sig_width:(signal_width d) ~mem_width:(mem_width d) e
  in
  let wt = signal_width d target in
  if we <> wt then
    invalid "%s: assignment to %s: width %d vs target width %d" ctx
      (signal_name d target) we wt

let rec check_stmt d ctx ~in_comb = function
  | Stmt.Block l -> List.iter (check_stmt d ctx ~in_comb) l
  | Stmt.If (c, a, b) ->
      check_expr d ctx c;
      check_stmt d ctx ~in_comb a;
      check_stmt d ctx ~in_comb b
  | Stmt.Case (scrut, arms, dflt) ->
      check_expr d ctx scrut;
      let wscrut =
        Expr.width ~sig_width:(signal_width d) ~mem_width:(mem_width d) scrut
      in
      List.iter
        (fun (label, arm) ->
          if Bits.width label <> wscrut then
            invalid "%s: case label %s has width %d, scrutinee has %d" ctx
              (Bits.to_string label) (Bits.width label) wscrut;
          check_stmt d ctx ~in_comb arm)
        arms;
      check_stmt d ctx ~in_comb dflt
  | Stmt.Assign (id, e) ->
      if not in_comb then
        invalid "%s: blocking assignment to %s in an edge-triggered process"
          ctx (signal_name d id);
      check_assign_widths d ctx id e
  | Stmt.Nonblock (id, e) ->
      if in_comb then
        invalid
          "%s: nonblocking assignment to %s in a combinational process" ctx
          (signal_name d id);
      check_assign_widths d ctx id e
  | Stmt.Mem_write (m, addr, data) ->
      if in_comb then
        invalid "%s: memory write in a combinational process" ctx;
      if m < 0 || m >= Array.length d.mems then
        invalid "%s: unknown memory %d" ctx m;
      if d.mems.(m).rom then
        invalid "%s: write to ROM %s" ctx d.mems.(m).mname;
      check_expr d ctx addr;
      check_expr d ctx data;
      let wd =
        Expr.width ~sig_width:(signal_width d) ~mem_width:(mem_width d) data
      in
      if wd <> d.mems.(m).data_width then
        invalid "%s: memory %s write data width %d vs %d" ctx d.mems.(m).mname
          wd d.mems.(m).data_width
  | Stmt.Skip -> ()

let validate d =
  Array.iteri
    (fun i s ->
      if s.id <> i then invalid "signal %s has id %d at index %d" s.name s.id i;
      if s.width < 1 || s.width > 64 then
        invalid "signal %s has width %d" s.name s.width)
    d.signals;
  Array.iteri
    (fun i m ->
      if m.mid <> i then invalid "memory %s has id %d at index %d" m.mname m.mid i;
      if m.size < 1 then invalid "memory %s has size %d" m.mname m.size;
      match m.init with
      | Some a when Array.length a <> m.size ->
          invalid "memory %s: init length %d vs size %d" m.mname
            (Array.length a) m.size
      | Some a ->
          Array.iter
            (fun b ->
              if Bits.width b <> m.data_width then
                invalid "memory %s: init word width %d vs %d" m.mname
                  (Bits.width b) m.data_width)
            a
      | None -> ())
    d.mems;
  let drivers = Array.make (Array.length d.signals) 0 in
  Array.iter
    (fun (a : assign) ->
      let ctx = Printf.sprintf "assign %d" a.aid in
      (match d.signals.(a.target).kind with
      | Wire | Output -> ()
      | Input -> invalid "%s: drives input %s" ctx (signal_name d a.target)
      | Reg ->
          invalid "%s: continuous assign drives reg %s" ctx
            (signal_name d a.target));
      drivers.(a.target) <- drivers.(a.target) + 1;
      check_assign_widths d ctx a.target a.expr)
    d.assigns;
  Array.iter
    (fun (p : proc) ->
      let ctx = Printf.sprintf "process %s" p.pname in
      match p.trigger with
      | Comb ->
          check_stmt d ctx ~in_comb:true p.body;
          let written = Stmt.write_signals p.body in
          let covered = Stmt.always_assigned p.body in
          List.iter
            (fun id ->
              (match d.signals.(id).kind with
              | Wire | Output -> ()
              | Input | Reg ->
                  invalid "%s: combinational write to non-wire %s" ctx
                    (signal_name d id));
              drivers.(id) <- drivers.(id) + 1;
              if not (List.mem id covered) then
                invalid "%s: %s is not assigned on every path (latch)" ctx
                  (signal_name d id))
            written
      | Edges edges ->
          if edges = [] then invalid "%s: empty sensitivity list" ctx;
          List.iter
            (fun (_, clk) ->
              if clk < 0 || clk >= Array.length d.signals then
                invalid "%s: unknown clock signal %d" ctx clk)
            edges;
          check_stmt d ctx ~in_comb:false p.body;
          List.iter
            (fun id ->
              (match d.signals.(id).kind with
              | Reg -> ()
              | Input | Output | Wire ->
                  invalid "%s: nonblocking write to non-reg %s" ctx
                    (signal_name d id));
              drivers.(id) <- drivers.(id) + 1)
            (Stmt.nonblocking_writes p.body))
    d.procs;
  Array.iter
    (fun s ->
      match s.kind with
      | Input ->
          if drivers.(s.id) > 0 then invalid "input %s is driven" s.name
      | Wire | Output ->
          if drivers.(s.id) = 0 then invalid "%s has no driver" s.name;
          if drivers.(s.id) > 1 then
            invalid "%s has %d drivers" s.name drivers.(s.id)
      | Reg ->
          if drivers.(s.id) > 1 then
            invalid "reg %s is written by %d processes" s.name drivers.(s.id))
    d.signals;
  List.iter
    (fun id ->
      if d.signals.(id).kind <> Input then
        invalid "input list entry %s is not an input" (signal_name d id))
    d.inputs;
  List.iter
    (fun id ->
      if d.signals.(id).kind <> Output then
        invalid "output list entry %s is not an output" (signal_name d id))
    d.outputs
