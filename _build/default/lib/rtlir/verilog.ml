let pf = Format.fprintf

let sig_ref d id = Design.signal_name d id

(* Verilog has no part selects on compound expressions, and the inline
   shift-and-mask lowering is wider than the slice (self-determined sizing),
   which corrupts concatenations. Hoist every compound slice into a helper
   wire first. Slices whose operand reads a signal blocking-written by the
   enclosing combinational process cannot be hoisted (the helper wire would
   not see the in-flight value) and keep the inline lowering; the parser
   recognises that exact pattern. *)
let hoist_slices (d : Design.t) : Design.t =
  let extra_sigs = ref [] in
  let extra_assigns = ref [] in
  let next_sig = ref (Array.length d.signals) in
  let next_assign = ref (Array.length d.assigns) in
  let widths = Hashtbl.create 16 in
  let sig_width id =
    match Hashtbl.find_opt widths id with
    | Some w -> w
    | None -> Design.signal_width d id
  in
  let width_of e =
    Expr.width ~sig_width ~mem_width:(Design.mem_width d) e
  in
  let fresh w e =
    let id = !next_sig in
    incr next_sig;
    Hashtbl.replace widths id w;
    extra_sigs :=
      { Design.id; name = Printf.sprintf "_eraser_t%d" id; width = w;
        kind = Design.Wire }
      :: !extra_sigs;
    let aid = !next_assign in
    incr next_assign;
    extra_assigns := { Design.aid; target = id; expr = e } :: !extra_assigns;
    id
  in
  let rec rw locals e =
    match e with
    | Expr.Const _ | Expr.Sig _ -> e
    | Expr.Slice ((Expr.Sig _ as a), hi, lo) -> Expr.Slice (a, hi, lo)
    | Expr.Slice (a, hi, lo) ->
        let a' = rw locals a in
        if List.exists (fun r -> List.mem r locals) (Expr.read_signals a')
        then Expr.Slice (a', hi, lo)
        else Expr.Slice (Expr.Sig (fresh (width_of a') a'), hi, lo)
    | Expr.Unop (op, a) -> Expr.Unop (op, rw locals a)
    | Expr.Binop (op, a, b) -> Expr.Binop (op, rw locals a, rw locals b)
    | Expr.Mux (s, a, b) -> Expr.Mux (rw locals s, rw locals a, rw locals b)
    | Expr.Concat (a, b) -> Expr.Concat (rw locals a, rw locals b)
    | Expr.Zext (a, w) -> Expr.Zext (rw locals a, w)
    | Expr.Sext (a, w) -> Expr.Sext (rw locals a, w)
    | Expr.Mem_read (m, a) -> Expr.Mem_read (m, rw locals a)
  in
  let rec rw_stmt locals s =
    match s with
    | Stmt.Block l -> Stmt.Block (List.map (rw_stmt locals) l)
    | Stmt.If (c, a, b) ->
        Stmt.If (rw locals c, rw_stmt locals a, rw_stmt locals b)
    | Stmt.Case (scrut, arms, dflt) ->
        Stmt.Case
          ( rw locals scrut,
            List.map (fun (l, arm) -> (l, rw_stmt locals arm)) arms,
            rw_stmt locals dflt )
    | Stmt.Assign (id, e) -> Stmt.Assign (id, rw locals e)
    | Stmt.Nonblock (id, e) -> Stmt.Nonblock (id, rw locals e)
    | Stmt.Mem_write (m, a, v) -> Stmt.Mem_write (m, rw locals a, rw locals v)
    | Stmt.Skip -> Stmt.Skip
  in
  let assigns =
    Array.map
      (fun (a : Design.assign) -> { a with Design.expr = rw [] a.expr })
      d.assigns
  in
  let procs =
    Array.map
      (fun (p : Design.proc) ->
        let locals =
          match p.trigger with
          | Design.Comb -> Stmt.blocking_writes p.body
          | Design.Edges _ -> []
        in
        { p with Design.body = rw_stmt locals p.body })
      d.procs
  in
  {
    d with
    Design.signals =
      Array.append d.signals (Array.of_list (List.rev !extra_sigs));
    assigns = Array.append assigns (Array.of_list (List.rev !extra_assigns));
    procs;
  }

(* Expressions are emitted fully parenthesised. Widths are made explicit
   where Verilog's context-determined sizing could differ from the IR's
   fixed-width semantics: extensions use concatenation, slices of compound
   expressions use shift-and-mask. *)
let rec expr d ppf (e : Expr.t) =
  let width =
    Expr.width
      ~sig_width:(Design.signal_width d)
      ~mem_width:(Design.mem_width d)
  in
  match e with
  | Expr.Const b ->
      pf ppf "%d'h%Lx" (Bits.width b) (Bits.to_int64 b)
  | Expr.Sig id -> pf ppf "%s" (sig_ref d id)
  | Expr.Unop (op, a) -> (
      match op with
      | Expr.Not -> pf ppf "(~%a)" (expr d) a
      | Expr.Neg -> pf ppf "(-%a)" (expr d) a
      | Expr.Red_and -> pf ppf "(&%a)" (expr d) a
      | Expr.Red_or -> pf ppf "(|%a)" (expr d) a
      | Expr.Red_xor -> pf ppf "(^%a)" (expr d) a)
  | Expr.Binop (op, a, b) -> (
      let bin s = pf ppf "(%a %s %a)" (expr d) a s (expr d) b in
      let signed s =
        pf ppf "($signed(%a) %s $signed(%a))" (expr d) a s (expr d) b
      in
      match op with
      | Expr.Add -> bin "+"
      | Expr.Sub -> bin "-"
      | Expr.Mul -> bin "*"
      | Expr.Divu -> bin "/"
      | Expr.Modu -> bin "%"
      | Expr.And -> bin "&"
      | Expr.Or -> bin "|"
      | Expr.Xor -> bin "^"
      | Expr.Shl -> bin "<<"
      | Expr.Shru -> bin ">>"
      | Expr.Shra ->
          pf ppf "($signed(%a) >>> %a)" (expr d) a (expr d) b
      | Expr.Eq -> bin "=="
      | Expr.Neq -> bin "!="
      | Expr.Ltu -> bin "<"
      | Expr.Leu -> bin "<="
      | Expr.Gtu -> bin ">"
      | Expr.Geu -> bin ">="
      | Expr.Lts -> signed "<"
      | Expr.Les -> signed "<="
      | Expr.Gts -> signed ">"
      | Expr.Ges -> signed ">=")
  | Expr.Mux (s, a, b) ->
      (* the truthiness test must not context-extend the selector (a ~ on a
         narrow operand would otherwise see extra one bits) *)
      pf ppf "((%a != %d'h0) ? %a : %a)" (expr d) s (width s) (expr d) a
        (expr d) b
  | Expr.Slice (a, hi, lo) -> (
      match a with
      | Expr.Sig id -> pf ppf "%s[%d:%d]" (sig_ref d id) hi lo
      | _ ->
          (* bit selects are only legal on identifiers *)
          pf ppf "((%a >> %d) & {%d{1'b1}})" (expr d) a lo (hi - lo + 1))
  | Expr.Concat (a, b) -> pf ppf "{%a, %a}" (expr d) a (expr d) b
  | Expr.Zext (a, w) ->
      let wa = width a in
      if w = wa then expr d ppf a
      else pf ppf "{{%d{1'b0}}, %a}" (w - wa) (expr d) a
  | Expr.Sext (a, w) ->
      let wa = width a in
      if w = wa then expr d ppf a
      else (
        match a with
        | Expr.Sig id ->
            pf ppf "{{%d{%s[%d]}}, %s}" (w - wa) (sig_ref d id) (wa - 1)
              (sig_ref d id)
        | _ ->
            (* general sign extension: shift into the top, arithmetic shift
               back down *)
            pf ppf
              "(($signed({%a, {%d{1'b0}}}) >>> %d) | {%d{1'b0}})"
              (expr d) a (64 - wa) (64 - wa) w)
  | Expr.Mem_read (m, addr) ->
      pf ppf "%s[%a]" (Design.mem_name_exn d m) (expr d) addr

let rec stmt d indent ppf (s : Stmt.t) =
  let ind = String.make indent ' ' in
  match s with
  | Stmt.Block l ->
      pf ppf "%sbegin\n" ind;
      List.iter (stmt d (indent + 2) ppf) l;
      pf ppf "%send\n" ind
  | Stmt.If (c, a, b) ->
      let cw =
        Expr.width
          ~sig_width:(Design.signal_width d)
          ~mem_width:(Design.mem_width d)
          c
      in
      pf ppf "%sif (%a != %d'h0)\n" ind (expr d) c cw;
      stmt d (indent + 2) ppf a;
      pf ppf "%selse\n" ind;
      stmt d (indent + 2) ppf b
  | Stmt.Case (scrut, arms, dflt) ->
      pf ppf "%scase (%a)\n" ind (expr d) scrut;
      List.iter
        (fun (label, arm) ->
          pf ppf "%s  %d'h%Lx:\n" ind (Bits.width label) (Bits.to_int64 label);
          stmt d (indent + 4) ppf arm)
        arms;
      pf ppf "%s  default:\n" ind;
      stmt d (indent + 4) ppf dflt;
      pf ppf "%sendcase\n" ind
  | Stmt.Assign (id, e) ->
      pf ppf "%s%s = %a;\n" ind (sig_ref d id) (expr d) e
  | Stmt.Nonblock (id, e) ->
      pf ppf "%s%s <= %a;\n" ind (sig_ref d id) (expr d) e
  | Stmt.Mem_write (m, addr, data) ->
      pf ppf "%s%s[%a] <= %a;\n" ind
        (Design.mem_name_exn d m)
        (expr d) addr (expr d) data
  | Stmt.Skip -> pf ppf "%s;\n" ind

let emit ppf (d : Design.t) =
  let d = hoist_slices d in
  pf ppf "// Generated by eraser from design %S.\n" d.dname;
  pf ppf
    "// 2-state semantics caveats: this library defines x/0 = all-ones and\n";
  pf ppf
    "// x %% 0 = x, and never produces X; Verilog yields X for both.\n";
  let ports =
    List.map (fun id -> sig_ref d id) (d.inputs @ d.outputs)
  in
  pf ppf "module %s(%s);\n" d.dname (String.concat ", " ports);
  let range w = if w = 1 then "" else Printf.sprintf " [%d:0]" (w - 1) in
  Array.iter
    (fun (s : Design.signal) ->
      match s.kind with
      | Design.Input -> pf ppf "  input%s %s;\n" (range s.width) s.name
      | Design.Output ->
          pf ppf "  output%s %s;\n" (range s.width) s.name
      | Design.Wire -> ()
      | Design.Reg -> ())
    d.signals;
  (* comb-process targets are written procedurally, so they must be declared
     reg even though they are architectural wires *)
  let comb_written = Hashtbl.create 16 in
  Array.iter
    (fun (p : Design.proc) ->
      if p.trigger = Design.Comb then
        List.iter
          (fun id -> Hashtbl.replace comb_written id ())
          (Stmt.write_signals p.body))
    d.procs;
  Array.iter
    (fun (s : Design.signal) ->
      let decl =
        match s.kind with
        | Design.Input -> None
        | Design.Output | Design.Wire ->
            Some (if Hashtbl.mem comb_written s.id then "reg" else "wire")
        | Design.Reg -> Some "reg"
      in
      match decl with
      | Some kw -> pf ppf "  %s%s %s;\n" kw (range s.width) s.name
      | None -> ())
    d.signals;
  Array.iter
    (fun (m : Design.mem) ->
      pf ppf "  reg%s %s [0:%d];\n" (range m.data_width) m.mname (m.size - 1))
    d.mems;
  (* ROM initial contents; RAMs start at 0 in this library's 2-state
     semantics (in 4-state Verilog they would start at X) *)
  let any_init = Array.exists (fun (m : Design.mem) -> m.init <> None) d.mems in
  if any_init then begin
    pf ppf "  initial begin\n";
    Array.iter
      (fun (m : Design.mem) ->
        match m.init with
        | Some a ->
            Array.iteri
              (fun i v ->
                pf ppf "    %s[%d] = %d'h%Lx;\n" m.mname i m.data_width
                  (Bits.to_int64 v))
              a
        | None -> ())
      d.mems;
    pf ppf "  end\n"
  end;
  Array.iter
    (fun (a : Design.assign) ->
      (* comb-proc targets must not collide; plain assigns only drive
         wires *)
      pf ppf "  assign %s = %a;\n" (sig_ref d a.target) (expr d) a.expr)
    d.assigns;
  Array.iter
    (fun (p : Design.proc) ->
      (match p.trigger with
      | Design.Comb -> pf ppf "  always @* // %s\n" p.pname
      | Design.Edges edges ->
          let ev =
            String.concat " or "
              (List.map
                 (fun (edge, clk) ->
                   Printf.sprintf "%s %s"
                     (match edge with
                     | Design.Posedge -> "posedge"
                     | Design.Negedge -> "negedge")
                     (sig_ref d clk))
                 edges)
          in
          pf ppf "  always @(%s) // %s\n" ev p.pname);
      stmt d 2 ppf p.body)
    d.procs;
  pf ppf "endmodule\n"

let to_string d = Format.asprintf "%a" emit d
