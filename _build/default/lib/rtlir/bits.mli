(** Two-state bit vectors of width 1..64.

    Values are stored masked: bits at positions >= [width] are always zero.
    All arithmetic is modular in the vector width, matching Verilog 2-state
    semantics for [wire]/[reg] arithmetic on equal-width operands. *)

type t = private { width : int; v : int64 }

exception Width_error of string

(** [make width v] masks [v] to [width] bits. Raises {!Width_error} unless
    [1 <= width <= 64]. *)
val make : int -> int64 -> t

(** [of_int width n] is [make width (Int64.of_int n)]. *)
val of_int : int -> int -> t

(** [zero width] / [one width] / [ones width] are the all-zero, value-1 and
    all-one vectors. *)
val zero : int -> t

val one : int -> t
val ones : int -> t

(** [of_bool b] is a 1-bit vector, 1 when [b]. *)
val of_bool : bool -> t

(** Raw (zero-extended) payload. *)
val to_int64 : t -> int64

(** Zero-extended value as [int]. Raises {!Width_error} if it does not fit in
    a non-negative OCaml [int]. *)
val to_int : t -> int

(** Sign-extended value of the vector interpreted as signed [width]-bit. *)
val to_signed : t -> int64

val width : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int

(** [is_true b] is [true] iff any bit is set (Verilog truthiness). *)
val is_true : t -> bool

(** [bit b i] is bit [i] as a [bool]. Raises {!Width_error} when out of
    range. *)
val bit : t -> int -> bool

(** [force_bit b i value] returns [b] with bit [i] forced to [value]
    (stuck-at injection primitive). *)
val force_bit : t -> int -> bool -> t

(* Arithmetic; operands must have equal widths (raises {!Width_error}). *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** Unsigned division; division by zero yields the all-ones vector (the
    2-state projection of Verilog's X result). *)
val divu : t -> t -> t

(** Unsigned remainder; remainder by zero yields the dividend. *)
val modu : t -> t -> t

val neg : t -> t

(* Bitwise. *)

val lognot : t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t

(* Shifts: the shift amount is an arbitrary-width vector; amounts >= width
   give zero (or all sign bits for [shift_right_arith]). *)

val shift_left : t -> t -> t
val shift_right : t -> t -> t
val shift_right_arith : t -> t -> t

(* Comparisons return 1-bit vectors. *)

val eq : t -> t -> t
val neq : t -> t -> t
val ltu : t -> t -> t
val leu : t -> t -> t
val gtu : t -> t -> t
val geu : t -> t -> t
val lts : t -> t -> t
val les : t -> t -> t
val gts : t -> t -> t
val ges : t -> t -> t

(* Reductions return 1-bit vectors. *)

val reduce_and : t -> t
val reduce_or : t -> t
val reduce_xor : t -> t

(** [concat hi lo] has width [width hi + width lo], [hi] in the upper bits. *)
val concat : t -> t -> t

(** [slice b ~hi ~lo] extracts bits [hi..lo] inclusive. *)
val slice : t -> hi:int -> lo:int -> t

(** [zext b w] / [sext b w] extend to width [w] (>= current width). *)
val zext : t -> int -> t

val sext : t -> int -> t

(** [resize b w] truncates or zero-extends to exactly [w] bits. *)
val resize : t -> int -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
