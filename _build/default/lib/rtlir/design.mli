(** Elaborated RTL designs.

    A design is the flat netlist form of Fig. 2 in the paper: {e RTL nodes}
    (continuous assignments over word-level operators) plus {e behavioral
    nodes} (always processes), connected through signals and memories. *)

type kind = Input | Output | Wire | Reg

type signal = { id : int; name : string; width : int; kind : kind }

type mem = {
  mid : int;
  mname : string;
  data_width : int;
  size : int;
  init : Bits.t array option;  (** initial contents; length [size] *)
  rom : bool;  (** read-only memories reject writes at validation *)
}

type edge = Posedge | Negedge

type trigger =
  | Edges of (edge * int) list  (** edge-sensitive: (edge, clock signal) *)
  | Comb  (** level-sensitive on the inferred read set *)

(** A behavioral node. *)
type proc = { pid : int; pname : string; trigger : trigger; body : Stmt.t }

(** An RTL node: continuous assignment [target = expr]. *)
type assign = { aid : int; target : int; expr : Expr.t }

type t = {
  dname : string;
  signals : signal array;
  mems : mem array;
  assigns : assign array;
  procs : proc array;
  inputs : int list;
  outputs : int list;
}

exception Invalid of string

val signal_width : t -> int -> int
val mem_width : t -> int -> int
val signal_name : t -> int -> string
val num_signals : t -> int

(** Look a signal up by name. Raises [Not_found]. *)
val find_signal : t -> string -> int

(** Name of a memory by id. *)
val mem_name_exn : t -> int -> string

(** A size proxy comparable to the paper's "#Cells": total AST nodes across
    RTL nodes and behavioral bodies. *)
val cell_count : t -> int

(** Validate structural invariants:
    - every expression/statement type-checks;
    - every wire/output has exactly one driver (a continuous assign or a
      combinational process), and inputs/regs have none;
    - regs are written only by edge-triggered processes, wires/outputs only
      by continuous assigns or combinational processes;
    - combinational processes use blocking assignments only and assign each
      driven signal on every path (latch freedom);
    - edge-triggered processes use nonblocking assignments to registers only
      (plus blocking assignments to process-local wires are rejected: local
      temporaries must be expressed as wires driven combinationally);
    - ROMs are never written; memory addresses/data type-check.
    Raises {!Invalid} with a diagnostic on violation. *)
val validate : t -> unit
