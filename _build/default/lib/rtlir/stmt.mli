(** Behavioral statements — the bodies of always blocks (behavioral nodes).

    The statement language is loop-free (Verilog generate/for loops are
    assumed unrolled at construction time, as an elaborating compiler would),
    so every behavioral body has a finite acyclic control-flow graph. *)

type t =
  | Block of t list
  | If of Expr.t * t * t
  | Case of Expr.t * (Bits.t * t) list * t
      (** scrutinee, (label, arm) list, default arm *)
  | Assign of int * Expr.t  (** blocking assignment to a signal *)
  | Nonblock of int * Expr.t  (** nonblocking assignment to a signal *)
  | Mem_write of int * Expr.t * Expr.t
      (** memory id, address, data; commits with nonblocking semantics *)
  | Skip

(** Signals read anywhere in the statement, including branch conditions and
    memory addresses (sorted, deduplicated). *)
val read_signals : t -> int list

(** Memories read anywhere in the statement (sorted, deduplicated). *)
val read_mems : t -> int list

(** All memory-read sites (memory id, address expression) anywhere in the
    statement, in evaluation order. *)
val mem_read_sites : t -> (int * Expr.t) list

(** Signals written (blocking or nonblocking) anywhere in the statement. *)
val write_signals : t -> int list

(** Signals written by blocking assignments only. *)
val blocking_writes : t -> int list

(** Signals written by nonblocking assignments only. *)
val nonblocking_writes : t -> int list

(** Memories written anywhere in the statement. *)
val write_mems : t -> int list

(** Signals assigned on {e every} control path (used for latch-freedom
    checking of combinational processes). Memory writes are ignored. *)
val always_assigned : t -> int list

(** Number of statement + expression AST nodes. *)
val size : t -> int

val pp : names:(int -> string) -> Format.formatter -> t -> unit
