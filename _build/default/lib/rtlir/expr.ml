type unop = Not | Neg | Red_and | Red_or | Red_xor

type binop =
  | Add
  | Sub
  | Mul
  | Divu
  | Modu
  | And
  | Or
  | Xor
  | Shl
  | Shru
  | Shra
  | Eq
  | Neq
  | Ltu
  | Leu
  | Gtu
  | Geu
  | Lts
  | Les
  | Gts
  | Ges

type t =
  | Const of Bits.t
  | Sig of int
  | Unop of unop * t
  | Binop of binop * t * t
  | Mux of t * t * t
  | Slice of t * int * int
  | Concat of t * t
  | Zext of t * int
  | Sext of t * int
  | Mem_read of int * t

exception Type_error of string

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

let rec width ~sig_width ~mem_width e =
  let w = width ~sig_width ~mem_width in
  match e with
  | Const b -> Bits.width b
  | Sig id -> sig_width id
  | Unop ((Red_and | Red_or | Red_xor), a) ->
      let _ = w a in
      1
  | Unop ((Not | Neg), a) -> w a
  | Binop (op, a, b) -> (
      let wa = w a and wb = w b in
      match op with
      | Shl | Shru | Shra -> wa
      | Add | Sub | Mul | Divu | Modu | And | Or | Xor ->
          if wa <> wb then
            type_error "operand width mismatch %d vs %d" wa wb;
          wa
      | Eq | Neq | Ltu | Leu | Gtu | Geu | Lts | Les | Gts | Ges ->
          if wa <> wb then
            type_error "comparison width mismatch %d vs %d" wa wb;
          1)
  | Mux (sel, a, b) ->
      let _ = w sel in
      let wa = w a and wb = w b in
      if wa <> wb then type_error "mux arm width mismatch %d vs %d" wa wb;
      wa
  | Slice (a, hi, lo) ->
      let wa = w a in
      if lo < 0 || hi < lo || hi >= wa then
        type_error "slice [%d:%d] out of range for width %d" hi lo wa;
      hi - lo + 1
  | Concat (a, b) ->
      let wr = w a + w b in
      if wr > 64 then type_error "concat result width %d > 64" wr;
      wr
  | Zext (a, n) | Sext (a, n) ->
      let wa = w a in
      if n < wa then type_error "extension target %d < width %d" n wa;
      n
  | Mem_read (m, addr) ->
      let _ = w addr in
      mem_width m

let rec fold_reads f_sig f_mem acc e =
  let recur = fold_reads f_sig f_mem in
  match e with
  | Const _ -> acc
  | Sig id -> f_sig acc id
  | Unop (_, a) | Slice (a, _, _) | Zext (a, _) | Sext (a, _) -> recur acc a
  | Binop (_, a, b) | Concat (a, b) -> recur (recur acc a) b
  | Mux (s, a, b) -> recur (recur (recur acc s) a) b
  | Mem_read (m, addr) -> recur (f_mem acc m) addr

let sort_uniq l = List.sort_uniq Stdlib.compare l

let read_signals e =
  sort_uniq (fold_reads (fun acc id -> id :: acc) (fun acc _ -> acc) [] e)

let read_mems e =
  sort_uniq (fold_reads (fun acc _ -> acc) (fun acc m -> m :: acc) [] e)

let mem_read_sites e =
  let rec go acc e =
    match e with
    | Const _ | Sig _ -> acc
    | Unop (_, a) | Slice (a, _, _) | Zext (a, _) | Sext (a, _) -> go acc a
    | Binop (_, a, b) | Concat (a, b) -> go (go acc a) b
    | Mux (s, a, b) -> go (go (go acc s) a) b
    | Mem_read (m, addr) -> (m, addr) :: go acc addr
  in
  List.rev (go [] e)

let rec size = function
  | Const _ | Sig _ -> 1
  | Unop (_, a) | Slice (a, _, _) | Zext (a, _) | Sext (a, _) -> 1 + size a
  | Binop (_, a, b) | Concat (a, b) -> 1 + size a + size b
  | Mux (s, a, b) -> 1 + size s + size a + size b
  | Mem_read (_, addr) -> 1 + size addr

let unop_name = function
  | Not -> "~"
  | Neg -> "-"
  | Red_and -> "&"
  | Red_or -> "|"
  | Red_xor -> "^"

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Divu -> "/"
  | Modu -> "%"
  | And -> "&"
  | Or -> "|"
  | Xor -> "^"
  | Shl -> "<<"
  | Shru -> ">>"
  | Shra -> ">>>"
  | Eq -> "=="
  | Neq -> "!="
  | Ltu -> "<"
  | Leu -> "<="
  | Gtu -> ">"
  | Geu -> ">="
  | Lts -> "<s"
  | Les -> "<=s"
  | Gts -> ">s"
  | Ges -> ">=s"

let rec pp ~names ppf e =
  let p = pp ~names in
  match e with
  | Const b -> Bits.pp ppf b
  | Sig id -> Format.pp_print_string ppf (names id)
  | Unop (op, a) -> Format.fprintf ppf "%s(%a)" (unop_name op) p a
  | Binop (op, a, b) ->
      Format.fprintf ppf "(%a %s %a)" p a (binop_name op) p b
  | Mux (s, a, b) -> Format.fprintf ppf "(%a ? %a : %a)" p s p a p b
  | Slice (a, hi, lo) -> Format.fprintf ppf "%a[%d:%d]" p a hi lo
  | Concat (a, b) -> Format.fprintf ppf "{%a, %a}" p a p b
  | Zext (a, n) -> Format.fprintf ppf "zext(%a, %d)" p a n
  | Sext (a, n) -> Format.fprintf ppf "sext(%a, %d)" p a n
  | Mem_read (m, addr) -> Format.fprintf ppf "mem%d[%a]" m p addr
