type t =
  | Block of t list
  | If of Expr.t * t * t
  | Case of Expr.t * (Bits.t * t) list * t
  | Assign of int * Expr.t
  | Nonblock of int * Expr.t
  | Mem_write of int * Expr.t * Expr.t
  | Skip

let rec fold_exprs f acc = function
  | Block l -> List.fold_left (fold_exprs f) acc l
  | If (c, a, b) -> fold_exprs f (fold_exprs f (f acc c) a) b
  | Case (scrut, arms, dflt) ->
      let acc = f acc scrut in
      let acc =
        List.fold_left (fun acc (_, arm) -> fold_exprs f acc arm) acc arms
      in
      fold_exprs f acc dflt
  | Assign (_, e) | Nonblock (_, e) -> f acc e
  | Mem_write (_, addr, data) -> f (f acc addr) data
  | Skip -> acc

let sort_uniq l = List.sort_uniq Stdlib.compare l

let read_signals s =
  sort_uniq
    (fold_exprs (fun acc e -> List.rev_append (Expr.read_signals e) acc) [] s)

let read_mems s =
  sort_uniq
    (fold_exprs (fun acc e -> List.rev_append (Expr.read_mems e) acc) [] s)

let mem_read_sites s =
  List.rev
    (fold_exprs
       (fun acc e -> List.rev_append (Expr.mem_read_sites e) acc)
       [] s)

let rec fold_writes f acc = function
  | Block l -> List.fold_left (fold_writes f) acc l
  | If (_, a, b) -> fold_writes f (fold_writes f acc a) b
  | Case (_, arms, dflt) ->
      let acc =
        List.fold_left (fun acc (_, arm) -> fold_writes f acc arm) acc arms
      in
      fold_writes f acc dflt
  | Assign (id, _) -> f acc (`Blocking id)
  | Nonblock (id, _) -> f acc (`Nonblocking id)
  | Mem_write (m, _, _) -> f acc (`Mem m)
  | Skip -> acc

let write_signals s =
  sort_uniq
    (fold_writes
       (fun acc w ->
         match w with
         | `Blocking id | `Nonblocking id -> id :: acc
         | `Mem _ -> acc)
       [] s)

let blocking_writes s =
  sort_uniq
    (fold_writes
       (fun acc w -> match w with `Blocking id -> id :: acc | _ -> acc)
       [] s)

let nonblocking_writes s =
  sort_uniq
    (fold_writes
       (fun acc w -> match w with `Nonblocking id -> id :: acc | _ -> acc)
       [] s)

let write_mems s =
  sort_uniq
    (fold_writes
       (fun acc w -> match w with `Mem m -> m :: acc | _ -> acc)
       [] s)

module Iset = Set.Make (Int)

let always_assigned s =
  let rec go = function
    | Block l -> List.fold_left (fun acc st -> Iset.union acc (go st)) Iset.empty l
    | If (_, a, b) -> Iset.inter (go a) (go b)
    | Case (_, arms, dflt) ->
        List.fold_left
          (fun acc (_, arm) -> Iset.inter acc (go arm))
          (go dflt) arms
    | Assign (id, _) | Nonblock (id, _) -> Iset.singleton id
    | Mem_write _ | Skip -> Iset.empty
  in
  Iset.elements (go s)

let rec pp ~names ppf s =
  let pe = Expr.pp ~names in
  match s with
  | Block l ->
      Format.fprintf ppf "@[<v 2>begin@,%a@]@,end"
        (Format.pp_print_list (pp ~names))
        l
  | If (c, a, b) ->
      Format.fprintf ppf "@[<v 2>if (%a)@,%a@]@,@[<v 2>else@,%a@]" pe c
        (pp ~names) a (pp ~names) b
  | Case (scrut, arms, dflt) ->
      Format.fprintf ppf "@[<v 2>case (%a)@,%a@,@[<v 2>default:@,%a@]@]@,endcase"
        pe scrut
        (Format.pp_print_list (fun ppf (label, arm) ->
             Format.fprintf ppf "@[<v 2>%a:@,%a@]" Bits.pp label (pp ~names) arm))
        arms (pp ~names) dflt
  | Assign (id, e) -> Format.fprintf ppf "%s = %a;" (names id) pe e
  | Nonblock (id, e) -> Format.fprintf ppf "%s <= %a;" (names id) pe e
  | Mem_write (m, addr, data) ->
      Format.fprintf ppf "mem%d[%a] <= %a;" m pe addr pe data
  | Skip -> Format.pp_print_string ppf ";"

let rec size = function
  | Block l -> List.fold_left (fun acc st -> acc + size st) 1 l
  | If (c, a, b) -> 1 + Expr.size c + size a + size b
  | Case (scrut, arms, dflt) ->
      let arm_size = List.fold_left (fun acc (_, arm) -> acc + size arm) 0 arms in
      1 + Expr.size scrut + arm_size + size dflt
  | Assign (_, e) | Nonblock (_, e) -> 1 + Expr.size e
  | Mem_write (_, addr, data) -> 1 + Expr.size addr + Expr.size data
  | Skip -> 1
