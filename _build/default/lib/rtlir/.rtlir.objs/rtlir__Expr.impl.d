lib/rtlir/expr.ml: Bits Format List Stdlib
