lib/rtlir/bits.mli: Format
