lib/rtlir/expr.mli: Bits Format
