lib/rtlir/builder.mli: Bits Design Expr Stmt
