lib/rtlir/design.ml: Array Bits Expr Format List Printf Stmt
