lib/rtlir/verilog_parser.ml: Array Bits Design Expr Format Hashtbl Int64 List Option Printf Stmt Verilog_lexer
