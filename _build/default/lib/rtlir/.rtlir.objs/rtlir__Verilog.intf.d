lib/rtlir/verilog.mli: Design Format
