lib/rtlir/stmt.mli: Bits Expr Format
