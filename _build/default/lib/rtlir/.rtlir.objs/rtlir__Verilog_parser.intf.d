lib/rtlir/verilog_parser.mli: Design
