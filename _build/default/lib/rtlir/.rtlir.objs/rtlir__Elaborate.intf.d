lib/rtlir/elaborate.mli: Design
