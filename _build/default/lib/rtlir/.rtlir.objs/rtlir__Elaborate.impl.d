lib/rtlir/elaborate.ml: Array Design Expr List Printf Stmt
