lib/rtlir/verilog.ml: Array Bits Design Expr Format Hashtbl List Printf Stmt String
