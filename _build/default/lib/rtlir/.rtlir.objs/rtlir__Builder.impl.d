lib/rtlir/builder.ml: Array Bits Design Expr Format List Printf Stmt
