lib/rtlir/bits.ml: Format Int64 Stdlib
