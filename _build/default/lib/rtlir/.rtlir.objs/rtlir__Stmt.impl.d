lib/rtlir/stmt.ml: Bits Expr Format Int List Set Stdlib
