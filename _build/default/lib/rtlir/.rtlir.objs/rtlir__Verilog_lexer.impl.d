lib/rtlir/verilog_lexer.ml: Char Format Int64 Printf String
