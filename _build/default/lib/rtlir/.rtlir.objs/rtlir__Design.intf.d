lib/rtlir/design.mli: Bits Expr Stmt
