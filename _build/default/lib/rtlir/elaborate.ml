type comb_node = Cassign of int | Cproc of int

type t = {
  design : Design.t;
  comb_nodes : comb_node array;
  comb_reads : int array array;
  comb_read_mems : int array array;
  comb_writes : int array array;
  fanout_comb : int array array;
  fanout_mem : int array array;
  ff_procs : int array;
  ff_of_clock : (int * Design.edge) list array;
  clocks : int array;
  proc_reads : int array array;
  proc_read_mems : int array array;
  proc_write_mems : int array array;
  proc_nb_writes : int array array;
  outputs : int array;
}

exception Comb_cycle of string

let node_name d = function
  | Cassign i ->
      Printf.sprintf "assign -> %s"
        (Design.signal_name d d.Design.assigns.(i).target)
  | Cproc i -> d.Design.procs.(i).pname

(* Topological order by depth-first search over the producer -> consumer
   relation; a back edge is a combinational cycle. *)
let topo_sort d nodes reads writes =
  let n = Array.length nodes in
  let producer = Array.make (Design.num_signals d) (-1) in
  Array.iteri
    (fun i _ -> Array.iter (fun s -> producer.(s) <- i) writes.(i))
    nodes;
  let state = Array.make n 0 (* 0 unvisited, 1 on stack, 2 done *) in
  let order = ref [] in
  let rec visit i =
    match state.(i) with
    | 2 -> ()
    | 1 ->
        raise
          (Comb_cycle
             (Printf.sprintf "combinational cycle through %s"
                (node_name d nodes.(i))))
    | _ ->
        state.(i) <- 1;
        (* A self-edge (a combinational process reading a wire it also
           writes) is allowed: with the defaults-first discipline the body's
           result does not depend on the target's previous value, so one
           ordered evaluation per settle is a fixpoint. *)
        Array.iter
          (fun s ->
            if producer.(s) >= 0 && producer.(s) <> i then visit producer.(s))
          reads.(i);
        state.(i) <- 2;
        order := i :: !order
  in
  for i = 0 to n - 1 do
    visit i
  done;
  (* [order] holds nodes in reverse completion order; reverse completion
     order of this DFS lists consumers before producers, so reverse again. *)
  Array.of_list (List.rev !order)

let build design =
  Design.validate design;
  let nsig = Design.num_signals design in
  let nmem = Array.length design.mems in
  let nproc = Array.length design.procs in
  let comb_list = ref [] in
  Array.iteri
    (fun i (p : Design.proc) ->
      if p.trigger = Design.Comb then comb_list := Cproc i :: !comb_list)
    design.procs;
  Array.iteri (fun i _ -> comb_list := Cassign i :: !comb_list) design.assigns;
  let nodes = Array.of_list (List.rev !comb_list) in
  let reads_of = function
    | Cassign i -> Array.of_list (Expr.read_signals design.assigns.(i).expr)
    | Cproc i -> Array.of_list (Stmt.read_signals design.procs.(i).body)
  in
  let read_mems_of = function
    | Cassign i -> Array.of_list (Expr.read_mems design.assigns.(i).expr)
    | Cproc i -> Array.of_list (Stmt.read_mems design.procs.(i).body)
  in
  let writes_of = function
    | Cassign i -> [| design.assigns.(i).target |]
    | Cproc i -> Array.of_list (Stmt.write_signals design.procs.(i).body)
  in
  let reads = Array.map reads_of nodes in
  let writes = Array.map writes_of nodes in
  let perm = topo_sort design nodes reads writes in
  let comb_nodes = Array.map (fun i -> nodes.(i)) perm in
  let comb_reads = Array.map (fun i -> reads.(i)) perm in
  let comb_writes = Array.map (fun i -> writes.(i)) perm in
  let comb_read_mems = Array.map (fun i -> read_mems_of nodes.(i)) perm in
  let fanout_comb = Array.make nsig [] in
  let fanout_mem = Array.make nmem [] in
  let n = Array.length comb_nodes in
  for pos = n - 1 downto 0 do
    Array.iter (fun s -> fanout_comb.(s) <- pos :: fanout_comb.(s))
      comb_reads.(pos);
    Array.iter (fun m -> fanout_mem.(m) <- pos :: fanout_mem.(m))
      comb_read_mems.(pos)
  done;
  let ff_procs = ref [] in
  let ff_of_clock = Array.make nsig [] in
  Array.iteri
    (fun i (p : Design.proc) ->
      match p.trigger with
      | Design.Comb -> ()
      | Design.Edges edges ->
          ff_procs := i :: !ff_procs;
          List.iter
            (fun (edge, clk) ->
              ff_of_clock.(clk) <- (i, edge) :: ff_of_clock.(clk))
            edges)
    design.procs;
  let clocks = ref [] in
  Array.iteri
    (fun s l -> if l <> [] then clocks := s :: !clocks)
    ff_of_clock;
  let proc_reads = Array.make nproc [||] in
  let proc_read_mems = Array.make nproc [||] in
  let proc_write_mems = Array.make nproc [||] in
  let proc_nb_writes = Array.make nproc [||] in
  Array.iteri
    (fun i (p : Design.proc) ->
      proc_reads.(i) <- Array.of_list (Stmt.read_signals p.body);
      proc_read_mems.(i) <- Array.of_list (Stmt.read_mems p.body);
      proc_write_mems.(i) <- Array.of_list (Stmt.write_mems p.body);
      proc_nb_writes.(i) <- Array.of_list (Stmt.nonblocking_writes p.body))
    design.procs;
  {
    design;
    comb_nodes;
    comb_reads;
    comb_read_mems;
    comb_writes;
    fanout_comb = Array.map Array.of_list fanout_comb;
    fanout_mem = Array.map Array.of_list fanout_mem;
    ff_procs = Array.of_list (List.rev !ff_procs);
    ff_of_clock = Array.map List.rev ff_of_clock;
    clocks = Array.of_list (List.rev !clocks);
    proc_reads;
    proc_read_mems;
    proc_write_mems;
    proc_nb_writes;
    outputs = Array.of_list design.outputs;
  }

let rtl_node_count g = Array.length g.design.assigns
let behavioral_node_count g = Array.length g.design.procs
