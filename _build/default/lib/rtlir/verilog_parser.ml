exception Parse_error of string

let parse_error fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

module L = Verilog_lexer

(* ---------- untyped AST ---------- *)

type vexpr =
  | VNum of int
  | VSized of int * int64
  | VId of string
  | VIndex of string * vexpr  (* memory read or dynamic bit select *)
  | VPart of string * int * int
  | VUn of string * vexpr
  | VBin of string * vexpr * vexpr
  | VTern of vexpr * vexpr * vexpr
  | VConcat of vexpr list
  | VRepl of int * vexpr
  | VSigned of vexpr

type vlvalue = LId of string | LIndex of string * vexpr

type vstmt =
  | SBlock of vstmt list
  | SIf of vexpr * vstmt * vstmt option
  | SCase of vexpr * (vexpr * vstmt) list * vstmt option
  | SBlocking of vlvalue * vexpr
  | SNonblock of vlvalue * vexpr
  | SNull

type vdecl_kind = Dinput | Doutput | Dwire | Dreg

(* ---------- parser ---------- *)

type p = { lx : L.t }

let expect p tok =
  let got = L.next p.lx in
  if got <> tok then
    parse_error "expected %s, got %s" (L.token_name tok) (L.token_name got)

let expect_ident p =
  match L.next p.lx with
  | L.IDENT s -> s
  | t -> parse_error "expected identifier, got %s" (L.token_name t)

let expect_number p =
  match L.next p.lx with
  | L.NUMBER n -> n
  | t -> parse_error "expected number, got %s" (L.token_name t)

let accept p tok = if L.peek p.lx = tok then (ignore (L.next p.lx); true) else false

(* Expression grammar, precedence climbing, loosest first:
   ternary; logical or/and; bitwise or/xor/and; equality; relational;
   shifts; additive; multiplicative; unary. *)

let rec parse_expr p = parse_ternary p

and parse_ternary p =
  let c = parse_logor p in
  if accept p L.QUESTION then begin
    let a = parse_expr p in
    expect p L.COLON;
    let b = parse_ternary p in
    VTern (c, a, b)
  end
  else c

and binlevel p ops sub =
  let rec loop acc =
    match L.peek p.lx with
    | L.OP o when List.mem o ops ->
        ignore (L.next p.lx);
        loop (VBin (o, acc, sub p))
    | L.LE_ASSIGN when List.mem "<=" ops ->
        ignore (L.next p.lx);
        loop (VBin ("<=", acc, sub p))
    | _ -> acc
  in
  loop (sub p)

and parse_logor p = binlevel p [ "||" ] parse_logand
and parse_logand p = binlevel p [ "&&" ] parse_bitor
and parse_bitor p = binlevel p [ "|" ] parse_bitxor
and parse_bitxor p = binlevel p [ "^" ] parse_bitand
and parse_bitand p = binlevel p [ "&" ] parse_equality
and parse_equality p = binlevel p [ "=="; "!=" ] parse_relational
and parse_relational p = binlevel p [ "<"; "<="; ">"; ">=" ] parse_shift
and parse_shift p = binlevel p [ "<<"; ">>"; ">>>" ] parse_additive
and parse_additive p = binlevel p [ "+"; "-" ] parse_multiplicative
and parse_multiplicative p = binlevel p [ "*"; "/"; "%" ] parse_unary

and parse_unary p =
  match L.peek p.lx with
  | L.OP (("~" | "-" | "&" | "|" | "^") as o) ->
      ignore (L.next p.lx);
      VUn (o, parse_unary p)
  | _ -> parse_primary p

and parse_primary p =
  match L.next p.lx with
  | L.NUMBER n -> VNum n
  | L.SIZED (w, v) -> VSized (w, v)
  | L.LPAREN ->
      let e = parse_expr p in
      expect p L.RPAREN;
      e
  | L.LBRACE -> parse_concat_or_repl p
  | L.IDENT "$signed" ->
      expect p L.LPAREN;
      let e = parse_expr p in
      expect p L.RPAREN;
      VSigned e
  | L.IDENT id -> parse_postfix p id
  | t -> parse_error "unexpected %s in expression" (L.token_name t)

and parse_postfix p id =
  if accept p L.LBRACKET then begin
    let e = parse_expr p in
    if accept p L.COLON then begin
      let lo =
        match parse_expr p with
        | VNum n -> n
        | _ -> parse_error "part select bounds must be constants"
      in
      let hi =
        match e with
        | VNum n -> n
        | _ -> parse_error "part select bounds must be constants"
      in
      expect p L.RBRACKET;
      VPart (id, hi, lo)
    end
    else begin
      expect p L.RBRACKET;
      VIndex (id, e)
    end
  end
  else VId id

and parse_concat_or_repl p =
  (* '{' already consumed: either {n{expr}} or {e, e, ...} *)
  let first = parse_expr p in
  match (first, L.peek p.lx) with
  | VNum n, L.LBRACE ->
      ignore (L.next p.lx);
      let e = parse_expr p in
      expect p L.RBRACE;
      expect p L.RBRACE;
      VRepl (n, e)
  | _ ->
      let items = ref [ first ] in
      while accept p L.COMMA do
        items := parse_expr p :: !items
      done;
      expect p L.RBRACE;
      VConcat (List.rev !items)

(* ---------- statements ---------- *)

let parse_lvalue p =
  let id = expect_ident p in
  if accept p L.LBRACKET then begin
    let e = parse_expr p in
    expect p L.RBRACKET;
    LIndex (id, e)
  end
  else LId id

let rec parse_stmt p =
  match L.peek p.lx with
  | L.IDENT "begin" ->
      ignore (L.next p.lx);
      let items = ref [] in
      while L.peek p.lx <> L.IDENT "end" do
        items := parse_stmt p :: !items
      done;
      ignore (L.next p.lx);
      SBlock (List.rev !items)
  | L.IDENT "if" ->
      ignore (L.next p.lx);
      expect p L.LPAREN;
      let c = parse_expr p in
      expect p L.RPAREN;
      let t = parse_stmt p in
      if L.peek p.lx = L.IDENT "else" then begin
        ignore (L.next p.lx);
        SIf (c, t, Some (parse_stmt p))
      end
      else SIf (c, t, None)
  | L.IDENT "case" ->
      ignore (L.next p.lx);
      expect p L.LPAREN;
      let scrut = parse_expr p in
      expect p L.RPAREN;
      let arms = ref [] in
      let dflt = ref None in
      let rec arms_loop () =
        match L.peek p.lx with
        | L.IDENT "endcase" -> ignore (L.next p.lx)
        | L.IDENT "default" ->
            ignore (L.next p.lx);
            expect p L.COLON;
            dflt := Some (parse_stmt p);
            arms_loop ()
        | _ ->
            let label = parse_expr p in
            expect p L.COLON;
            arms := (label, parse_stmt p) :: !arms;
            arms_loop ()
      in
      arms_loop ();
      SCase (scrut, List.rev !arms, !dflt)
  | L.SEMI ->
      ignore (L.next p.lx);
      SNull
  | _ ->
      let lv = parse_lvalue p in
      let tok = L.next p.lx in
      let rhs = parse_expr p in
      expect p L.SEMI;
      (match tok with
      | L.EQ -> SBlocking (lv, rhs)
      | L.LE_ASSIGN -> SNonblock (lv, rhs)
      | t -> parse_error "expected assignment, got %s" (L.token_name t))

(* ---------- module items ---------- *)

let parse_range p =
  (* optional [msb:0] *)
  if accept p L.LBRACKET then begin
    let msb = expect_number p in
    expect p L.COLON;
    let lsb = expect_number p in
    expect p L.RBRACKET;
    if lsb <> 0 then parse_error "only [msb:0] ranges are supported";
    msb + 1
  end
  else 1

let parse_sensitivity p =
  expect p L.AT;
  match L.next p.lx with
  | L.OP "*" -> `Comb
  | L.LPAREN ->
      if L.peek p.lx = L.OP "*" then begin
        ignore (L.next p.lx);
        expect p L.RPAREN;
        `Comb
      end
      else begin
        let edges = ref [] in
        let rec loop () =
          let edge =
            match expect_ident p with
            | "posedge" -> Design.Posedge
            | "negedge" -> Design.Negedge
            | s -> parse_error "expected posedge/negedge, got %s" s
          in
          let clk = expect_ident p in
          edges := (edge, clk) :: !edges;
          match L.next p.lx with
          | L.IDENT "or" -> loop ()
          | L.COMMA -> loop ()
          | L.RPAREN -> ()
          | t -> parse_error "bad sensitivity list: %s" (L.token_name t)
        in
        loop ();
        `Edges (List.rev !edges)
      end
  | t -> parse_error "bad sensitivity: %s" (L.token_name t)

type raw_module = {
  rname : string;
  mutable rdecls : (string * int * vdecl_kind) list;
  mutable rmems : (string * int * int) list;
  mutable rinits : (string * int * Bits.t) list;
  mutable rassigns : (string * vexpr) list;
  mutable rprocs :
    ([ `Comb | `Edges of (Design.edge * string) list ] * vstmt) list;
}

let parse_initial p m =
  (* initial begin m[0] = 8'h12; ... end — ROM contents *)
  expect p (L.IDENT "begin");
  let rec loop () =
    if L.peek p.lx = L.IDENT "end" then ignore (L.next p.lx)
    else begin
      let id = expect_ident p in
      expect p L.LBRACKET;
      let addr = expect_number p in
      expect p L.RBRACKET;
      expect p L.EQ;
      let v =
        match L.next p.lx with
        | L.SIZED (w, v) -> Bits.make w v
        | L.NUMBER n -> (
            match List.assoc_opt id (List.map (fun (n, w, _) -> (n, w)) m.rmems) with
            | Some w -> Bits.make w (Int64.of_int n)
            | None -> parse_error "initial write to unknown memory %s" id)
        | t -> parse_error "expected literal, got %s" (L.token_name t)
      in
      expect p L.SEMI;
      m.rinits <- (id, addr, v) :: m.rinits;
      loop ()
    end
  in
  loop ()

let parse_module p =
  expect p (L.IDENT "module");
  let rname = expect_ident p in
  let m =
    { rname; rdecls = []; rmems = []; rinits = []; rassigns = []; rprocs = [] }
  in
  (* non-ANSI port list: names only *)
  if accept p L.LPAREN then begin
    if L.peek p.lx <> L.RPAREN then begin
      let rec ports () =
        ignore (expect_ident p);
        if accept p L.COMMA then ports ()
      in
      ports ()
    end;
    expect p L.RPAREN
  end;
  expect p L.SEMI;
  let decl kind =
    let width = parse_range p in
    let add_net name =
      (* Verilog permits re-declaration pairs such as "output x; wire x;"
         or "output y; reg y;": merge them, keeping the port direction. *)
      match List.assoc_opt name (List.map (fun (n, w, k) -> (n, (w, k))) m.rdecls) with
      | Some (w0, k0) ->
          if w0 <> width then
            parse_error "%s re-declared with width %d (was %d)" name width w0;
          let merged =
            match (k0, kind) with
            | (Dinput | Doutput), (Dwire | Dreg) -> k0
            | (Dwire | Dreg), (Dinput | Doutput) -> kind
            | _ -> parse_error "duplicate declaration of %s" name
          in
          m.rdecls <-
            List.map
              (fun (n, w, k) -> if n = name then (n, w, merged) else (n, w, k))
              m.rdecls
      | None -> m.rdecls <- (name, width, kind) :: m.rdecls
    in
    let rec names () =
      let name = expect_ident p in
      (* memory? *)
      if L.peek p.lx = L.LBRACKET then begin
        ignore (L.next p.lx);
        let lo = expect_number p in
        expect p L.COLON;
        let hi = expect_number p in
        expect p L.RBRACKET;
        if lo <> 0 then parse_error "memory %s must start at 0" name;
        if kind <> Dreg then parse_error "memory %s must be a reg" name;
        m.rmems <- (name, width, hi + 1) :: m.rmems
      end
      else add_net name;
      if accept p L.COMMA then names ()
    in
    names ();
    expect p L.SEMI
  in
  let rec items () =
    match L.next p.lx with
    | L.IDENT "endmodule" -> ()
    | L.IDENT "input" ->
        decl Dinput;
        items ()
    | L.IDENT "output" ->
        decl Doutput;
        items ()
    | L.IDENT "wire" ->
        decl Dwire;
        items ()
    | L.IDENT "reg" ->
        decl Dreg;
        items ()
    | L.IDENT "assign" ->
        let target = expect_ident p in
        expect p L.EQ;
        let e = parse_expr p in
        expect p L.SEMI;
        m.rassigns <- (target, e) :: m.rassigns;
        items ()
    | L.IDENT "always" ->
        let trig = parse_sensitivity p in
        let body = parse_stmt p in
        m.rprocs <- (trig, body) :: m.rprocs;
        items ()
    | L.IDENT "initial" ->
        parse_initial p m;
        items ()
    | t -> parse_error "unexpected module item: %s" (L.token_name t)
  in
  items ();
  (match L.next p.lx with
  | L.EOF -> ()
  | t -> parse_error "trailing input after endmodule: %s" (L.token_name t));
  m.rdecls <- List.rev m.rdecls;
  m.rmems <- List.rev m.rmems;
  m.rinits <- List.rev m.rinits;
  m.rassigns <- List.rev m.rassigns;
  m.rprocs <- List.rev m.rprocs;
  m

(* ---------- elaboration: widths and IR construction ---------- *)

type env = {
  sig_of : (string, int) Hashtbl.t;
  width_of : (string, int) Hashtbl.t;
  mem_of : (string, int * int) Hashtbl.t;  (* name -> (mid, data width) *)
}

let rec self_size env e =
  match e with
  | VNum _ -> 32
  | VSized (w, _) -> w
  | VId id -> (
      match Hashtbl.find_opt env.width_of id with
      | Some w -> w
      | None -> parse_error "unknown identifier %s" id)
  | VIndex (id, _) -> (
      match Hashtbl.find_opt env.mem_of id with
      | Some (_, w) -> w
      | None ->
          if Hashtbl.mem env.width_of id then 1
          else parse_error "unknown identifier %s" id)
  | VPart (_, hi, lo) -> hi - lo + 1
  | VUn (("~" | "-"), a) -> self_size env a
  | VUn _ -> 1
  | VBin (("+" | "-" | "*" | "/" | "%" | "&" | "|" | "^"), a, b) ->
      max (self_size env a) (self_size env b)
  | VBin (("<<" | ">>" | ">>>"), a, _) -> self_size env a
  | VBin _ -> 1 (* comparisons and logical connectives *)
  | VTern (_, a, b) -> max (self_size env a) (self_size env b)
  | VConcat l -> List.fold_left (fun acc e -> acc + self_size env e) 0 l
  | VRepl (n, e) -> n * self_size env e
  | VSigned e -> self_size env e

let pad_to w e we =
  if we = w then e
  else if we < w then Expr.Zext (e, w)
  else Expr.Slice (e, w - 1, 0)

(* [elab env e ctx] returns an IR expression of width [max ctx (self e)] for
   context-determined operators, and of self width padded/truncated to at
   least ctx for self-determined ones (the caller re-pads as needed). *)
let rec elab env e ctx : Expr.t * int =
  let s = self_size env e in
  let size = max ctx s in
  match e with
  | VNum n ->
      if n < 0 then parse_error "negative literal";
      (Expr.Const (Bits.make size (Int64.of_int n)), size)
  | VSized (w, v) -> pad_result size (Expr.Const (Bits.make w v)) w
  | VId id -> pad_result size (Expr.Sig (sig_id env id)) s
  | VIndex (id, addr) -> (
      match Hashtbl.find_opt env.mem_of id with
      | Some (mid, w) ->
          let ea, _ = elab env addr (self_size env addr) in
          pad_result size (Expr.Mem_read (mid, ea)) w
      | None ->
          (* dynamic bit select: (x >> i) truncated to 1 bit *)
          let ea, _ = elab env addr (self_size env addr) in
          pad_result size
            (Expr.Slice (Expr.Binop (Expr.Shru, Expr.Sig (sig_id env id), ea), 0, 0))
            1)
  | VPart (id, hi, lo) ->
      let xw =
        match Hashtbl.find_opt env.width_of id with
        | Some w -> w
        | None -> parse_error "unknown identifier %s" id
      in
      if hi >= xw then parse_error "part select %s[%d:%d] out of range" id hi lo;
      pad_result size (Expr.Slice (Expr.Sig (sig_id env id), hi, lo)) (hi - lo + 1)
  | VUn ("~", a) ->
      let ea, w = elab env a size in
      (Expr.Unop (Expr.Not, ea), w)
  | VUn ("-", a) ->
      let ea, w = elab env a size in
      (Expr.Unop (Expr.Neg, ea), w)
  | VUn ("&", a) -> red env size Expr.Red_and a
  | VUn ("|", a) -> red env size Expr.Red_or a
  | VUn ("^", a) -> red env size Expr.Red_xor a
  | VUn (o, _) -> parse_error "unsupported unary %s" o
  | VBin ("&", VBin (">>", a, VNum lo), VRepl (w, VSized (1, 1L))) ->
      (* the exporter's inline slice lowering: exact width w *)
      let ea, _ = elab env a (self_size env a) in
      pad_result size (Expr.Slice (ea, lo + w - 1, lo)) w
  | VBin (("+" | "-" | "*" | "/" | "%" | "&" | "|" | "^") as o, a, b) ->
      let ea, _ = elab env a size in
      let eb, _ = elab env b size in
      let op =
        match o with
        | "+" -> Expr.Add
        | "-" -> Expr.Sub
        | "*" -> Expr.Mul
        | "/" -> Expr.Divu
        | "%" -> Expr.Modu
        | "&" -> Expr.And
        | "|" -> Expr.Or
        | "^" -> Expr.Xor
        | _ -> assert false
      in
      (Expr.Binop (op, ea, eb), size)
  | VBin (("<<" | ">>") as o, a, b) ->
      let ea, _ = elab env a size in
      let eb, _ = elab env b (self_size env b) in
      ( Expr.Binop ((if o = "<<" then Expr.Shl else Expr.Shru), ea, eb),
        size )
  | VBin (">>>", a, b) -> (
      match a with
      | VSigned a ->
          let ea, w = elab env a (max ctx (self_size env a)) in
          let eb, _ = elab env b (self_size env b) in
          (Expr.Binop (Expr.Shra, ea, eb), w)
      | _ ->
          (* >>> on an unsigned operand behaves as >> *)
          let ea, w = elab env a size in
          let eb, _ = elab env b (self_size env b) in
          (Expr.Binop (Expr.Shru, ea, eb), w))
  | VBin (("==" | "!=" | "<" | "<=" | ">" | ">=") as o, a, b) ->
      let signed, a, b =
        match (a, b) with
        | VSigned a, VSigned b -> (true, a, b)
        | VSigned _, _ | _, VSigned _ ->
            parse_error "mixed signed/unsigned comparison"
        | _ -> (false, a, b)
      in
      let w = max (self_size env a) (self_size env b) in
      let ea, _ = elab env a w in
      let eb, _ = elab env b w in
      let op =
        match (o, signed) with
        | "==", _ -> Expr.Eq
        | "!=", _ -> Expr.Neq
        | "<", false -> Expr.Ltu
        | "<=", false -> Expr.Leu
        | ">", false -> Expr.Gtu
        | ">=", false -> Expr.Geu
        | "<", true -> Expr.Lts
        | "<=", true -> Expr.Les
        | ">", true -> Expr.Gts
        | ">=", true -> Expr.Ges
        | _ -> assert false
      in
      pad_result size (Expr.Binop (op, ea, eb)) 1
  | VBin (("&&" | "||") as o, a, b) ->
      let ta = truthy env a and tb = truthy env b in
      pad_result size
        (Expr.Binop ((if o = "&&" then Expr.And else Expr.Or), ta, tb))
        1
  | VBin (o, _, _) -> parse_error "unsupported operator %s" o
  | VTern (c, a, b) ->
      let ec = truthy env c in
      let ea, _ = elab env a size in
      let eb, _ = elab env b size in
      (Expr.Mux (ec, ea, eb), size)
  | VConcat l ->
      let parts =
        List.map (fun e -> fst (elab env e (self_size env e))) l
      in
      let con =
        match parts with
        | [] -> parse_error "empty concatenation"
        | x :: rest -> List.fold_left (fun acc e -> Expr.Concat (acc, e)) x rest
      in
      pad_result size con s
  | VRepl (n, e) ->
      if n < 1 then parse_error "replication count %d" n;
      let part = fst (elab env e (self_size env e)) in
      let rec build k acc =
        if k = 0 then acc else build (k - 1) (Expr.Concat (acc, part))
      in
      pad_result size (build (n - 1) part) s
  | VSigned e ->
      (* $signed outside a comparison / >>> context: value-preserving *)
      elab env e ctx

and pad_result size e we = (pad_to size e we, size)

and red env size op a =
  let ea, _ = elab env a (self_size env a) in
  pad_result size (Expr.Unop (op, ea)) 1

and truthy env e =
  (* a 1-bit-ish condition: IR If/Mux treat any nonzero as true *)
  fst (elab env e (self_size env e))

and sig_id env id =
  match Hashtbl.find_opt env.sig_of id with
  | Some i -> i
  | None -> parse_error "unknown identifier %s" id

let elab_assign env target e =
  let w = Hashtbl.find env.width_of target in
  let ee, we = elab env e w in
  pad_to w ee we

let rec elab_stmt env ~in_comb s : Stmt.t =
  match s with
  | SBlock l -> Stmt.Block (List.map (elab_stmt env ~in_comb) l)
  | SNull -> Stmt.Skip
  | SIf (c, t, e) ->
      Stmt.If
        ( truthy env c,
          elab_stmt env ~in_comb t,
          match e with
          | Some e -> elab_stmt env ~in_comb e
          | None -> Stmt.Skip )
  | SCase (scrut, arms, dflt) ->
      let sw = self_size env scrut in
      let es, _ = elab env scrut sw in
      Stmt.Case
        ( es,
          List.map
            (fun (label, arm) ->
              let bits =
                match label with
                | VSized (_, v) -> Bits.make sw v
                | VNum n -> Bits.make sw (Int64.of_int n)
                | _ -> parse_error "case labels must be literals"
              in
              (bits, elab_stmt env ~in_comb arm))
            arms,
          match dflt with
          | Some s -> elab_stmt env ~in_comb s
          | None -> Stmt.Skip )
  | SBlocking (lv, e) -> (
      match lv with
      | LId id ->
          if not in_comb then
            parse_error
              "blocking assignment to %s in an edge-triggered process (not \
               supported by the IR)"
              id;
          Stmt.Assign (sig_id env id, elab_assign env id e)
      | LIndex (id, _) ->
          parse_error "blocking memory write to %s not supported" id)
  | SNonblock (lv, e) -> (
      match lv with
      | LId id ->
          if in_comb then
            parse_error "nonblocking assignment to %s in always @*" id;
          Stmt.Nonblock (sig_id env id, elab_assign env id e)
      | LIndex (id, addr) -> (
          match Hashtbl.find_opt env.mem_of id with
          | Some (mid, w) ->
              let ea, _ = elab env addr (self_size env addr) in
              let ed, we = elab env e w in
              Stmt.Mem_write (mid, ea, pad_to w ed we)
          | None -> parse_error "write to unknown memory %s" id))

(* write sets of the untyped AST, for driver classification *)
let rec vstmt_writes s acc =
  match s with
  | SBlock l -> List.fold_right vstmt_writes l acc
  | SNull -> acc
  | SIf (_, t, e) ->
      vstmt_writes t (match e with Some e -> vstmt_writes e acc | None -> acc)
  | SCase (_, arms, dflt) ->
      let acc =
        List.fold_right (fun (_, arm) acc -> vstmt_writes arm acc) arms acc
      in
      (match dflt with Some s -> vstmt_writes s acc | None -> acc)
  | SBlocking (LId id, _) | SNonblock (LId id, _) -> id :: acc
  | SBlocking (LIndex _, _) | SNonblock (LIndex _, _) -> acc

let parse src =
  let p = { lx = L.create src } in
  let m = parse_module p in
  (* classify: regs written by always @* become IR wires *)
  let comb_written = Hashtbl.create 16 in
  List.iter
    (fun (trig, body) ->
      if trig = `Comb then
        List.iter
          (fun id -> Hashtbl.replace comb_written id ())
          (vstmt_writes body []))
    m.rprocs;
  let env =
    {
      sig_of = Hashtbl.create 64;
      width_of = Hashtbl.create 64;
      mem_of = Hashtbl.create 8;
    }
  in
  let signals =
    Array.of_list
      (List.mapi
         (fun i (name, width, kind) ->
           Hashtbl.replace env.sig_of name i;
           Hashtbl.replace env.width_of name width;
           let kind =
             match kind with
             | Dinput -> Design.Input
             | Doutput -> Design.Output
             | Dwire -> Design.Wire
             | Dreg ->
                 if Hashtbl.mem comb_written name then Design.Wire
                 else Design.Reg
           in
           { Design.id = i; name; width; kind })
         m.rdecls)
  in
  let written_mems = Hashtbl.create 8 in
  let rec scan_mem_writes s =
    match s with
    | SBlock l -> List.iter scan_mem_writes l
    | SIf (_, t, e) ->
        scan_mem_writes t;
        Option.iter scan_mem_writes e
    | SCase (_, arms, dflt) ->
        List.iter (fun (_, arm) -> scan_mem_writes arm) arms;
        Option.iter scan_mem_writes dflt
    | SNonblock (LIndex (id, _), _) | SBlocking (LIndex (id, _), _) ->
        Hashtbl.replace written_mems id ()
    | _ -> ()
  in
  List.iter (fun (_, body) -> scan_mem_writes body) m.rprocs;
  let mems =
    Array.of_list
      (List.mapi
         (fun i (name, data_width, size) ->
           Hashtbl.replace env.mem_of name (i, data_width);
           let init_entries =
             List.filter (fun (n, _, _) -> n = name) m.rinits
           in
           let init =
             if init_entries = [] then None
             else begin
               let a = Array.make size (Bits.make data_width 0L) in
               List.iter
                 (fun (_, addr, v) ->
                   if addr >= size then
                     parse_error "initial %s[%d] out of range" name addr;
                   if Bits.width v <> data_width then
                     parse_error "initial %s[%d]: width %d vs %d" name addr
                       (Bits.width v) data_width;
                   a.(addr) <- v)
                 init_entries;
               Some a
             end
           in
           {
             Design.mid = i;
             mname = name;
             data_width;
             size;
             init;
             rom = init <> None && not (Hashtbl.mem written_mems name);
           })
         m.rmems)
  in
  (* placeholder env is complete: elaborate assigns and processes *)
  let assigns =
    Array.of_list
      (List.mapi
         (fun aid (target, e) ->
           {
             Design.aid;
             target = sig_id env target;
             expr = elab_assign env target e;
           })
         m.rassigns)
  in
  let procs =
    Array.of_list
      (List.mapi
         (fun pid (trig, body) ->
           match trig with
           | `Comb ->
               {
                 Design.pid;
                 pname = Printf.sprintf "proc%d" pid;
                 trigger = Design.Comb;
                 body = elab_stmt env ~in_comb:true body;
               }
           | `Edges edges ->
               {
                 Design.pid;
                 pname = Printf.sprintf "proc%d" pid;
                 trigger =
                   Design.Edges
                     (List.map (fun (e, clk) -> (e, sig_id env clk)) edges);
                 body = elab_stmt env ~in_comb:false body;
               })
         m.rprocs)
  in
  let inputs =
    List.filter_map
      (fun (name, _, kind) ->
        if kind = Dinput then Some (sig_id env name) else None)
      m.rdecls
  in
  let outputs =
    List.filter_map
      (fun (name, _, kind) ->
        if kind = Doutput then Some (sig_id env name) else None)
      m.rdecls
  in
  let d =
    { Design.dname = m.rname; signals; mems; assigns; procs; inputs; outputs }
  in
  (try Design.validate d
   with Design.Invalid msg -> parse_error "invalid design: %s" msg);
  d
