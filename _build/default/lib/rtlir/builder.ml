type ctx = {
  name : string;
  mutable signals : Design.signal list;  (* reversed *)
  mutable mems : Design.mem list;  (* reversed *)
  mutable assigns : Design.assign list;  (* reversed *)
  mutable procs : Design.proc list;  (* reversed *)
  mutable nsignals : int;
  mutable nmems : int;
  mutable nassigns : int;
  mutable nprocs : int;
  mutable frozen : bool;
}

exception Build_error of string

let build_error fmt = Format.kasprintf (fun s -> raise (Build_error s)) fmt

let create name =
  {
    name;
    signals = [];
    mems = [];
    assigns = [];
    procs = [];
    nsignals = 0;
    nmems = 0;
    nassigns = 0;
    nprocs = 0;
    frozen = false;
  }

let check_open ctx = if ctx.frozen then build_error "%s: finalized" ctx.name

let add_signal ctx name width kind =
  check_open ctx;
  let id = ctx.nsignals in
  ctx.nsignals <- id + 1;
  ctx.signals <- { Design.id; name; width; kind } :: ctx.signals;
  Expr.Sig id

let input ctx name width = add_signal ctx name width Design.Input
let output ctx name width = add_signal ctx name width Design.Output
let wire ctx name width = add_signal ctx name width Design.Wire
let reg ctx name width = add_signal ctx name width Design.Reg

type memh = { mid : int; data_width : int; size : int }

let add_mem ctx mname data_width size init rom =
  check_open ctx;
  let mid = ctx.nmems in
  ctx.nmems <- mid + 1;
  ctx.mems <- { Design.mid; mname; data_width; size; init; rom } :: ctx.mems;
  { mid; data_width; size }

let rom ctx name contents =
  if Array.length contents = 0 then build_error "rom %s: empty" name;
  let data_width = Bits.width contents.(0) in
  add_mem ctx name data_width (Array.length contents) (Some contents) true

let ram ctx name ~width ~size = add_mem ctx name width size None false

let target_id = function
  | Expr.Sig id -> id
  | _ -> build_error "assignment target must be a signal"

let assign ctx target expr =
  check_open ctx;
  let aid = ctx.nassigns in
  ctx.nassigns <- aid + 1;
  ctx.assigns <- { Design.aid; target = target_id target; expr } :: ctx.assigns

let add_proc ctx name trigger body =
  check_open ctx;
  let pid = ctx.nprocs in
  ctx.nprocs <- pid + 1;
  let pname =
    match name with Some n -> n | None -> Printf.sprintf "proc%d" pid
  in
  ctx.procs <- { Design.pid; pname; trigger; body } :: ctx.procs

let always_ff ctx ?name ?(edge = Design.Posedge) ~clock stmts =
  add_proc ctx name
    (Design.Edges [ (edge, target_id clock) ])
    (Stmt.Block stmts)

let always_comb ctx ?name stmts = add_proc ctx name Design.Comb (Stmt.Block stmts)

let finalize ctx =
  check_open ctx;
  ctx.frozen <- true;
  let d =
    {
      Design.dname = ctx.name;
      signals = Array.of_list (List.rev ctx.signals);
      mems = Array.of_list (List.rev ctx.mems);
      assigns = Array.of_list (List.rev ctx.assigns);
      procs = Array.of_list (List.rev ctx.procs);
      inputs =
        List.rev_map
          (fun (s : Design.signal) -> s.id)
          (List.filter
             (fun (s : Design.signal) -> s.kind = Design.Input)
             ctx.signals);
      outputs =
        List.rev_map
          (fun (s : Design.signal) -> s.id)
          (List.filter
             (fun (s : Design.signal) -> s.kind = Design.Output)
             ctx.signals);
    }
  in
  Design.validate d;
  d

let width_of ctx e =
  let sig_width id =
    match
      List.find_opt (fun (s : Design.signal) -> s.id = id) ctx.signals
    with
    | Some s -> s.width
    | None -> build_error "unknown signal %d" id
  in
  let mem_width m =
    match List.find_opt (fun (mm : Design.mem) -> mm.mid = m) ctx.mems with
    | Some mm -> mm.data_width
    | None -> build_error "unknown memory %d" m
  in
  Expr.width ~sig_width ~mem_width e

let const w n = Expr.Const (Bits.of_int w n)
let constb b = Expr.Const b
let vdd = const 1 1
let gnd = const 1 0
let mux sel a b = Expr.Mux (sel, a, b)

let cases scrut default arms =
  List.fold_right
    (fun (label, value) rest ->
      Expr.Mux (Expr.Binop (Expr.Eq, scrut, label), value, rest))
    arms default

let slice e hi lo = Expr.Slice (e, hi, lo)
let bit_ e i = Expr.Slice (e, i, i)
let zext e w = Expr.Zext (e, w)
let sext e w = Expr.Sext (e, w)
let concat hi lo = Expr.Concat (hi, lo)

let concat_list = function
  | [] -> build_error "concat_list: empty"
  | e :: rest -> List.fold_left (fun acc x -> Expr.Concat (acc, x)) e rest

let reduce_and e = Expr.Unop (Expr.Red_and, e)
let reduce_or e = Expr.Unop (Expr.Red_or, e)
let reduce_xor e = Expr.Unop (Expr.Red_xor, e)
let read_mem (m : memh) addr = Expr.Mem_read (m.mid, addr)
let if_ c t e = Stmt.If (c, Stmt.Block t, Stmt.Block e)
let when_ c t = if_ c t []

let switch scrut arms ~default =
  Stmt.Case
    ( scrut,
      List.map (fun (label, stmts) -> (label, Stmt.Block stmts)) arms,
      Stmt.Block default )

let write_mem (m : memh) addr data = Stmt.Mem_write (m.mid, addr, data)

module Ops = struct
  let binop op a b = Expr.Binop (op, a, b)
  let ( +: ) a b = binop Expr.Add a b
  let ( -: ) a b = binop Expr.Sub a b
  let ( *: ) a b = binop Expr.Mul a b
  let ( /: ) a b = binop Expr.Divu a b
  let ( %: ) a b = binop Expr.Modu a b
  let ( &: ) a b = binop Expr.And a b
  let ( |: ) a b = binop Expr.Or a b
  let ( ^: ) a b = binop Expr.Xor a b
  let ( ~: ) a = Expr.Unop (Expr.Not, a)
  let negate a = Expr.Unop (Expr.Neg, a)
  let ( ==: ) a b = binop Expr.Eq a b
  let ( <>: ) a b = binop Expr.Neq a b
  let ( <: ) a b = binop Expr.Ltu a b
  let ( <=: ) a b = binop Expr.Leu a b
  let ( >: ) a b = binop Expr.Gtu a b
  let ( >=: ) a b = binop Expr.Geu a b
  let ( <+ ) a b = binop Expr.Lts a b
  let ( <=+ ) a b = binop Expr.Les a b
  let ( >+ ) a b = binop Expr.Gts a b
  let ( >=+ ) a b = binop Expr.Ges a b
  let ( <<: ) a b = binop Expr.Shl a b
  let ( >>: ) a b = binop Expr.Shru a b
  let ( >>+ ) a b = binop Expr.Shra a b
  let ( <-- ) target e = Stmt.Nonblock (target_id target, e)
  let ( =: ) target e = Stmt.Assign (target_id target, e)
end
