type t = { width : int; v : int64 }

exception Width_error of string

let width_error fmt = Format.kasprintf (fun s -> raise (Width_error s)) fmt

let mask w =
  if w = 64 then -1L else Int64.sub (Int64.shift_left 1L w) 1L

let make w v =
  if w < 1 || w > 64 then width_error "Bits.make: width %d out of [1,64]" w;
  { width = w; v = Int64.logand v (mask w) }

let of_int w n = make w (Int64.of_int n)
let zero w = make w 0L
let one w = make w 1L
let ones w = make w (-1L)
let of_bool b = { width = 1; v = (if b then 1L else 0L) }
let to_int64 b = b.v

let to_int b =
  if Int64.compare b.v (Int64.of_int max_int) > 0 || Int64.compare b.v 0L < 0
  then width_error "Bits.to_int: %Ld does not fit" b.v
  else Int64.to_int b.v

let to_signed b =
  if b.width = 64 then b.v
  else if Int64.logand b.v (Int64.shift_left 1L (b.width - 1)) <> 0L then
    Int64.logor b.v (Int64.lognot (mask b.width))
  else b.v

let width b = b.width
let equal a b = a.width = b.width && Int64.equal a.v b.v

let compare a b =
  match Stdlib.compare a.width b.width with
  | 0 -> Int64.unsigned_compare a.v b.v
  | c -> c

let is_true b = b.v <> 0L

let check_bit b i =
  if i < 0 || i >= b.width then
    width_error "Bits: bit %d out of range for width %d" i b.width

let bit b i =
  check_bit b i;
  Int64.logand (Int64.shift_right_logical b.v i) 1L = 1L

let force_bit b i value =
  check_bit b i;
  let m = Int64.shift_left 1L i in
  if value then { b with v = Int64.logor b.v m }
  else { b with v = Int64.logand b.v (Int64.lognot m) }

let same_width op a b =
  if a.width <> b.width then
    width_error "Bits.%s: width mismatch %d vs %d" op a.width b.width

let add a b = same_width "add" a b; make a.width (Int64.add a.v b.v)
let sub a b = same_width "sub" a b; make a.width (Int64.sub a.v b.v)
let mul a b = same_width "mul" a b; make a.width (Int64.mul a.v b.v)

let divu a b =
  same_width "divu" a b;
  if b.v = 0L then ones a.width else make a.width (Int64.unsigned_div a.v b.v)

let modu a b =
  same_width "modu" a b;
  if b.v = 0L then a else make a.width (Int64.unsigned_rem a.v b.v)

let neg a = make a.width (Int64.neg a.v)
let lognot a = make a.width (Int64.lognot a.v)
let logand a b = same_width "logand" a b; { a with v = Int64.logand a.v b.v }
let logor a b = same_width "logor" a b; { a with v = Int64.logor a.v b.v }
let logxor a b = same_width "logxor" a b; { a with v = Int64.logxor a.v b.v }

let shift_amount b =
  (* Shift amounts are small in practice; anything >= 64 saturates. *)
  if Int64.unsigned_compare b.v 64L >= 0 then 64 else Int64.to_int b.v

let shift_left a b =
  let n = shift_amount b in
  if n >= a.width then zero a.width else make a.width (Int64.shift_left a.v n)

let shift_right a b =
  let n = shift_amount b in
  if n >= a.width then zero a.width
  else { a with v = Int64.shift_right_logical a.v n }

let shift_right_arith a b =
  let n = shift_amount b in
  let signed = to_signed a in
  if n >= 64 then make a.width (Int64.shift_right signed 63)
  else make a.width (Int64.shift_right signed n)

let eq a b = same_width "eq" a b; of_bool (Int64.equal a.v b.v)
let neq a b = same_width "neq" a b; of_bool (not (Int64.equal a.v b.v))

let ltu a b =
  same_width "ltu" a b;
  of_bool (Int64.unsigned_compare a.v b.v < 0)

let leu a b =
  same_width "leu" a b;
  of_bool (Int64.unsigned_compare a.v b.v <= 0)

let gtu a b = ltu b a
let geu a b = leu b a

let lts a b =
  same_width "lts" a b;
  of_bool (Int64.compare (to_signed a) (to_signed b) < 0)

let les a b =
  same_width "les" a b;
  of_bool (Int64.compare (to_signed a) (to_signed b) <= 0)

let gts a b = lts b a
let ges a b = les b a
let reduce_and a = of_bool (Int64.equal a.v (mask a.width))
let reduce_or a = of_bool (a.v <> 0L)

let reduce_xor a =
  let rec popcount acc v =
    if v = 0L then acc
    else popcount (acc + 1) (Int64.logand v (Int64.sub v 1L))
  in
  of_bool (popcount 0 a.v land 1 = 1)

let concat hi lo =
  let w = hi.width + lo.width in
  if w > 64 then width_error "Bits.concat: result width %d > 64" w;
  { width = w; v = Int64.logor (Int64.shift_left hi.v lo.width) lo.v }

let slice b ~hi ~lo =
  if lo < 0 || hi < lo || hi >= b.width then
    width_error "Bits.slice: [%d:%d] out of range for width %d" hi lo b.width;
  make (hi - lo + 1) (Int64.shift_right_logical b.v lo)

let zext b w =
  if w < b.width then
    width_error "Bits.zext: target %d < width %d" w b.width;
  make w b.v

let sext b w =
  if w < b.width then
    width_error "Bits.sext: target %d < width %d" w b.width;
  make w (to_signed b)

let resize b w = if w <= b.width then make w b.v else zext b w
let pp ppf b = Format.fprintf ppf "%d'h%Lx" b.width b.v
let to_string b = Format.asprintf "%a" pp b
