(** Verilog-2001 export of a design.

    Emits synthesizable-style Verilog so designs authored with the builder
    DSL can be cross-checked in standard simulators and synthesis tools.
    Slices of compound expressions are lowered to shift-and-mask form (bit
    selects are only legal on identifiers); two divergences from this
    library's 2-state semantics are flagged in the emitted header comment
    (division by zero and X-propagation, which cannot occur in 2-state
    runs). *)



val emit : Format.formatter -> Design.t -> unit

val to_string : Design.t -> string
