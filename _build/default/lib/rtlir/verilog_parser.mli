(** Frontend for a synthesizable Verilog-2001 subset.

    Accepts one module in the non-ANSI port style with: input/output/wire/reg
    declarations (vectors up to 64 bits), memories
    ([reg [w-1:0] m [0:n-1];]) with optional [initial] contents,
    [assign]s, [always @*] and [always @(pos|negedge ...)] processes with
    begin/end, if/else, case and (non)blocking assignments, and the usual
    expression grammar (ternary, logical/bitwise/relational/shift/arith
    operators, concatenation, replication, part/bit selects, [$signed] for
    comparisons and [>>>]).

    Width semantics follow the IEEE 1364 self-determined /
    context-determined sizing rules, lowered to this library's fixed-width
    IR by inserting explicit extensions and truncations. Everything
    {!Verilog.emit} produces round-trips.

    Limits (rejected with {!Parse_error}): multiple modules, instances,
    tasks/functions, generate, delays, strengths, real/integer variables,
    outputs driven from edge-triggered processes (declare an internal reg
    and [assign] the output instead — the form the exporter emits). *)

exception Parse_error of string

(** Parse and elaborate Verilog source into a validated design. *)
val parse : string -> Design.t
