(** Word-level RTL expressions.

    Expressions are the right-hand sides of continuous assignments (RTL nodes)
    and of assignments inside behavioral code. Signals and memories are
    referenced by their integer ids in the enclosing {!Design.t}. *)

type unop = Not | Neg | Red_and | Red_or | Red_xor

type binop =
  | Add
  | Sub
  | Mul
  | Divu
  | Modu
  | And
  | Or
  | Xor
  | Shl
  | Shru
  | Shra
  | Eq
  | Neq
  | Ltu
  | Leu
  | Gtu
  | Geu
  | Lts
  | Les
  | Gts
  | Ges

type t =
  | Const of Bits.t
  | Sig of int  (** signal id *)
  | Unop of unop * t
  | Binop of binop * t * t
  | Mux of t * t * t  (** [Mux (sel, on_true, on_false)]; sel is truthy *)
  | Slice of t * int * int  (** [Slice (e, hi, lo)] *)
  | Concat of t * t  (** left operand forms the upper bits *)
  | Zext of t * int
  | Sext of t * int
  | Mem_read of int * t  (** memory id, address *)

exception Type_error of string

(** [width ~sig_width ~mem_width e] computes and checks the width of [e].
    Raises {!Type_error} on operand-width mismatches. *)
val width : sig_width:(int -> int) -> mem_width:(int -> int) -> t -> int

(** Signal ids read anywhere in the expression (sorted, deduplicated). *)
val read_signals : t -> int list

(** Memory ids read anywhere in the expression (sorted, deduplicated). *)
val read_mems : t -> int list

(** All [Mem_read] sites as (memory id, address expression), in post-order
    (inner reads before the reads whose addresses consume them). *)
val mem_read_sites : t -> (int * t) list

(** Number of AST nodes; used as the size measure for RTL-node statistics. *)
val size : t -> int

val pp : names:(int -> string) -> Format.formatter -> t -> unit
