(* Hand-written lexer for the synthesizable Verilog subset accepted by
   {!Verilog_parser}. *)

type token =
  | IDENT of string
  | NUMBER of int  (* unsized decimal *)
  | SIZED of int * int64  (* width, value *)
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | SEMI
  | COLON
  | COMMA
  | QUESTION
  | AT
  | EQ  (* = *)
  | LE_ASSIGN  (* <= in statement position; also less-equal in expressions *)
  | OP of string  (* multi-char and single-char operators *)
  | EOF

exception Lex_error of string

let lex_error fmt = Format.kasprintf (fun s -> raise (Lex_error s)) fmt

type t = { src : string; mutable pos : int; mutable peeked : token option }

let create src = { src; pos = 0; peeked = None }

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let is_hex_digit c =
  is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let rec skip_ws t =
  let n = String.length t.src in
  if t.pos < n then
    match t.src.[t.pos] with
    | ' ' | '\t' | '\n' | '\r' ->
        t.pos <- t.pos + 1;
        skip_ws t
    | '/' when t.pos + 1 < n && t.src.[t.pos + 1] = '/' ->
        while t.pos < n && t.src.[t.pos] <> '\n' do
          t.pos <- t.pos + 1
        done;
        skip_ws t
    | '/' when t.pos + 1 < n && t.src.[t.pos + 1] = '*' ->
        t.pos <- t.pos + 2;
        let rec close () =
          if t.pos + 1 >= n then lex_error "unterminated comment"
          else if t.src.[t.pos] = '*' && t.src.[t.pos + 1] = '/' then
            t.pos <- t.pos + 2
          else begin
            t.pos <- t.pos + 1;
            close ()
          end
        in
        close ();
        skip_ws t
    | _ -> ()

let read_while t pred =
  let start = t.pos in
  let n = String.length t.src in
  while t.pos < n && pred t.src.[t.pos] do
    t.pos <- t.pos + 1
  done;
  String.sub t.src start (t.pos - start)

let digits_value ~base s =
  let v = ref 0L in
  String.iter
    (fun c ->
      if c <> '_' then begin
        let d =
          if is_digit c then Char.code c - Char.code '0'
          else if c >= 'a' && c <= 'f' then Char.code c - Char.code 'a' + 10
          else if c >= 'A' && c <= 'F' then Char.code c - Char.code 'A' + 10
          else lex_error "bad digit %c" c
        in
        if d >= base then lex_error "digit %c out of base %d" c base;
        v := Int64.add (Int64.mul !v (Int64.of_int base)) (Int64.of_int d)
      end)
    s;
  !v

let next t =
  match t.peeked with
  | Some tok ->
      t.peeked <- None;
      tok
  | None ->
      skip_ws t;
      let n = String.length t.src in
      if t.pos >= n then EOF
      else begin
        let c = t.src.[t.pos] in
        if is_ident_start c then IDENT (read_while t is_ident_char)
        else if is_digit c then begin
          let digits = read_while t (fun c -> is_digit c || c = '_') in
          skip_ws t;
          if t.pos < n && t.src.[t.pos] = '\'' then begin
            (* sized literal: <width>'<base><digits> *)
            t.pos <- t.pos + 1;
            let base =
              match t.src.[t.pos] with
              | 'h' | 'H' -> 16
              | 'd' | 'D' -> 10
              | 'b' | 'B' -> 2
              | 'o' | 'O' -> 8
              | c -> lex_error "unknown base %c" c
            in
            t.pos <- t.pos + 1;
            let value_digits = read_while t (fun c -> is_hex_digit c || c = '_') in
            SIZED
              (int_of_string (String.concat "" (String.split_on_char '_' digits)),
               digits_value ~base value_digits)
          end
          else
            NUMBER
              (int_of_string (String.concat "" (String.split_on_char '_' digits)))
        end
        else begin
          let two =
            if t.pos + 1 < n then String.sub t.src t.pos 2 else ""
          in
          let three =
            if t.pos + 2 < n then String.sub t.src t.pos 3 else ""
          in
          match (c, two, three) with
          | _, _, ">>>" ->
              t.pos <- t.pos + 3;
              OP ">>>"
          | _, ("<<" | ">>" | "==" | "!=" | "&&" | "||"), _ ->
              t.pos <- t.pos + 2;
              OP two
          | _, ">=", _ ->
              t.pos <- t.pos + 2;
              OP ">="
          | _, "<=", _ ->
              t.pos <- t.pos + 2;
              LE_ASSIGN
          | '(', _, _ -> t.pos <- t.pos + 1; LPAREN
          | ')', _, _ -> t.pos <- t.pos + 1; RPAREN
          | '[', _, _ -> t.pos <- t.pos + 1; LBRACKET
          | ']', _, _ -> t.pos <- t.pos + 1; RBRACKET
          | '{', _, _ -> t.pos <- t.pos + 1; LBRACE
          | '}', _, _ -> t.pos <- t.pos + 1; RBRACE
          | ';', _, _ -> t.pos <- t.pos + 1; SEMI
          | ':', _, _ -> t.pos <- t.pos + 1; COLON
          | ',', _, _ -> t.pos <- t.pos + 1; COMMA
          | '?', _, _ -> t.pos <- t.pos + 1; QUESTION
          | '@', _, _ -> t.pos <- t.pos + 1; AT
          | '=', _, _ -> t.pos <- t.pos + 1; EQ
          | ('+' | '-' | '*' | '/' | '%' | '&' | '|' | '^' | '~' | '<' | '>'), _, _
            ->
              t.pos <- t.pos + 1;
              OP (String.make 1 c)
          | _ -> lex_error "unexpected character %C at offset %d" c t.pos
        end
      end

let peek t =
  match t.peeked with
  | Some tok -> tok
  | None ->
      let tok = next t in
      t.peeked <- Some tok;
      tok

let token_name = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | NUMBER n -> Printf.sprintf "number %d" n
  | SIZED (w, v) -> Printf.sprintf "literal %d'h%Lx" w v
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | SEMI -> "';'"
  | COLON -> "':'"
  | COMMA -> "','"
  | QUESTION -> "'?'"
  | AT -> "'@'"
  | EQ -> "'='"
  | LE_ASSIGN -> "'<='"
  | OP s -> Printf.sprintf "operator %S" s
  | EOF -> "end of input"
