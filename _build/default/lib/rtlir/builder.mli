(** Hardcaml-flavoured construction DSL for {!Design.t}.

    Signals are created against a mutable context and referenced directly as
    expressions; assignment operators pattern-match on [Expr.Sig] targets.
    [finalize] freezes the context into a validated design.

    {[
      let ctx = Builder.create "adder" in
      let clk = Builder.input ctx "clk" 1 in
      let a = Builder.input ctx "a" 8 in
      let q = Builder.reg ctx "q" 8 in
      let y = Builder.output ctx "y" 8 in
      Builder.assign ctx y (q +: a);
      Builder.always_ff ctx ~clock:clk [ q <-- (a +: a) ];
      let design = Builder.finalize ctx
    ]} *)

type ctx

exception Build_error of string

val create : string -> ctx

(** Declare ports and nets. Each returns the signal as an expression
    ([Expr.Sig id]). *)
val input : ctx -> string -> int -> Expr.t

val output : ctx -> string -> int -> Expr.t
val wire : ctx -> string -> int -> Expr.t
val reg : ctx -> string -> int -> Expr.t

type memh = { mid : int; data_width : int; size : int }

(** [rom ctx name contents] declares a read-only memory; word width is taken
    from the first element. *)
val rom : ctx -> string -> Bits.t array -> memh

(** [ram ctx name ~width ~size] declares a zero-initialised writable memory. *)
val ram : ctx -> string -> width:int -> size:int -> memh

(** Continuous assignment (an RTL node). Target must be a plain signal. *)
val assign : ctx -> Expr.t -> Expr.t -> unit

(** Edge-triggered behavioral node. *)
val always_ff :
  ctx ->
  ?name:string ->
  ?edge:Design.edge ->
  clock:Expr.t ->
  Stmt.t list ->
  unit

(** Level-sensitive (combinational) behavioral node. *)
val always_comb : ctx -> ?name:string -> Stmt.t list -> unit

(** Freeze and validate. Raises {!Design.Invalid} on structural errors. *)
val finalize : ctx -> Design.t

(** Width of an already-declared signal expression. *)
val width_of : ctx -> Expr.t -> int

(* Expression constructors. *)

val const : int -> int -> Expr.t  (** [const width value] *)

val constb : Bits.t -> Expr.t
val vdd : Expr.t  (** 1-bit constant 1 *)

val gnd : Expr.t  (** 1-bit constant 0 *)

val mux : Expr.t -> Expr.t -> Expr.t -> Expr.t  (** [mux sel on_true on_false] *)

(** [cases scrutinee default arms] builds a right-nested mux chain comparing
    the scrutinee against each arm label. *)
val cases : Expr.t -> Expr.t -> (Expr.t * Expr.t) list -> Expr.t

val slice : Expr.t -> int -> int -> Expr.t  (** [slice e hi lo] *)

val bit_ : Expr.t -> int -> Expr.t
val zext : Expr.t -> int -> Expr.t
val sext : Expr.t -> int -> Expr.t
val concat : Expr.t -> Expr.t -> Expr.t  (** high, low *)

val concat_list : Expr.t list -> Expr.t  (** head forms the highest bits *)

val reduce_and : Expr.t -> Expr.t
val reduce_or : Expr.t -> Expr.t
val reduce_xor : Expr.t -> Expr.t
val read_mem : memh -> Expr.t -> Expr.t

(* Statement constructors. *)

val if_ : Expr.t -> Stmt.t list -> Stmt.t list -> Stmt.t
val when_ : Expr.t -> Stmt.t list -> Stmt.t

(** [switch scrut arms ~default]; labels are (width, value) pairs. *)
val switch :
  Expr.t -> (Bits.t * Stmt.t list) list -> default:Stmt.t list -> Stmt.t

val write_mem : memh -> Expr.t -> Expr.t -> Stmt.t

module Ops : sig
  val ( +: ) : Expr.t -> Expr.t -> Expr.t
  val ( -: ) : Expr.t -> Expr.t -> Expr.t
  val ( *: ) : Expr.t -> Expr.t -> Expr.t
  val ( /: ) : Expr.t -> Expr.t -> Expr.t
  val ( %: ) : Expr.t -> Expr.t -> Expr.t
  val ( &: ) : Expr.t -> Expr.t -> Expr.t
  val ( |: ) : Expr.t -> Expr.t -> Expr.t
  val ( ^: ) : Expr.t -> Expr.t -> Expr.t
  val ( ~: ) : Expr.t -> Expr.t
  val negate : Expr.t -> Expr.t
  val ( ==: ) : Expr.t -> Expr.t -> Expr.t
  val ( <>: ) : Expr.t -> Expr.t -> Expr.t
  val ( <: ) : Expr.t -> Expr.t -> Expr.t
  val ( <=: ) : Expr.t -> Expr.t -> Expr.t
  val ( >: ) : Expr.t -> Expr.t -> Expr.t
  val ( >=: ) : Expr.t -> Expr.t -> Expr.t
  val ( <+ ) : Expr.t -> Expr.t -> Expr.t
  val ( <=+ ) : Expr.t -> Expr.t -> Expr.t
  val ( >+ ) : Expr.t -> Expr.t -> Expr.t
  val ( >=+ ) : Expr.t -> Expr.t -> Expr.t
  val ( <<: ) : Expr.t -> Expr.t -> Expr.t
  val ( >>: ) : Expr.t -> Expr.t -> Expr.t
  val ( >>+ ) : Expr.t -> Expr.t -> Expr.t

  (** Nonblocking assignment. *)
  val ( <-- ) : Expr.t -> Expr.t -> Stmt.t

  (** Blocking assignment. *)
  val ( =: ) : Expr.t -> Expr.t -> Stmt.t
end
