(** Elaboration: from a validated {!Design.t} to the RTL graph all simulation
    engines consume (paper Fig. 2 / framework step 1).

    Combinational work — continuous assigns (RTL nodes) and level-sensitive
    behavioral nodes — is sorted topologically so that a single ordered sweep
    over dirty nodes reaches a fixpoint. Edge-triggered behavioral nodes are
    grouped by clock signal. *)

type comb_node =
  | Cassign of int  (** index into [design.assigns] *)
  | Cproc of int  (** index into [design.procs]; a [Comb]-triggered process *)

type t = {
  design : Design.t;
  comb_nodes : comb_node array;  (** in dependency (topological) order *)
  comb_reads : int array array;  (** signals read, per topo position *)
  comb_read_mems : int array array;  (** memories read, per topo position *)
  comb_writes : int array array;  (** signals written, per topo position *)
  fanout_comb : int array array;
      (** signal id -> topo positions of combinational readers (ascending) *)
  fanout_mem : int array array;
      (** memory id -> topo positions of combinational readers (ascending) *)
  ff_procs : int array;  (** proc ids of edge-triggered processes *)
  ff_of_clock : (int * Design.edge) list array;
      (** signal id -> edge-triggered (proc id, edge) sensitive to it *)
  clocks : int array;  (** signals appearing in edge sensitivity lists *)
  proc_reads : int array array;  (** per proc id: signals read by the body *)
  proc_read_mems : int array array;
  proc_write_mems : int array array;
  proc_nb_writes : int array array;  (** per proc id: nonblocking targets *)
  outputs : int array;
}

exception Comb_cycle of string

(** Build the RTL graph. Raises {!Design.Invalid} (via validation) or
    {!Comb_cycle} when continuous assignments / combinational processes form
    a dependency cycle. *)
val build : Design.t -> t

(** Number of RTL nodes / behavioral nodes, as the paper counts them. *)
val rtl_node_count : t -> int

val behavioral_node_count : t -> int
