lib/cfg/cfg.mli: Bits Expr Rtlir Stmt
