lib/cfg/vdg.ml: Array Cfg Expr Int List Rtlir Set
