lib/cfg/vdg.mli: Bits Cfg Expr Rtlir
