lib/cfg/cfg.ml: Array Bits Expr List Rtlir Stmt
