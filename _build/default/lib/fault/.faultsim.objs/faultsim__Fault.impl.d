lib/fault/fault.ml: Array Bits Design List Printf Rng Rtlir Stats
