lib/fault/stats.mli: Format
