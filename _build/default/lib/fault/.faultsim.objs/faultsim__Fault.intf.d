lib/fault/fault.mli: Bits Design Rtlir Stats
