lib/fault/rng.mli: Rtlir
