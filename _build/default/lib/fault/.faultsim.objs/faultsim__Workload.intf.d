lib/fault/workload.mli: Bits Rtlir
