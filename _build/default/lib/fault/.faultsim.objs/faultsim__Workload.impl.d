lib/fault/workload.ml: Array Bits Int64 List Rng Rtlir
