lib/fault/rng.ml: Array Int64 Rtlir
