lib/fault/classify.ml: Array Bits Design Elaborate Expr Fault List Queue Rtlir Sim Stmt
