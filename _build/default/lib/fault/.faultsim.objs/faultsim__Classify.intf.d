lib/fault/classify.mli: Bits Elaborate Fault Rtlir
