lib/fault/stats.ml: Array Format
