(** Testbench protocol shared by every engine.

    A workload drives one clock input and, per cycle, a set of data inputs.
    Every engine runs the identical protocol so that detected-fault sets are
    comparable:

    cycle k:  apply [drive k] and raise the clock, step (registers capture),
              lower the clock, step, observe the output ports. *)

open Rtlir

type t = {
  cycles : int;
  clock : int;  (** signal id of the clock input *)
  drive : int -> (int * Bits.t) list;
      (** cycle number -> input assignments (the clock must not appear) *)
}

(** [run w ~set_input ~step ~observe] executes the protocol against an
    engine. [observe cycle] is called once per cycle, after the falling
    edge, when outputs are stable; it returns [true] to continue and [false]
    to stop early (e.g. all faults detected). *)
val run :
  ?on_cycle_start:(int -> unit) ->
  t ->
  set_input:(int -> Bits.t -> unit) ->
  step:(unit -> unit) ->
  observe:(int -> bool) ->
  unit

(** Convenience: build a [drive] function from a per-cycle random vector
    generator over the given (signal, width) inputs, with a fixed prefix of
    directed vectors. *)
val random_drive :
  seed:int64 ->
  inputs:(int * int) list ->
  ?directed:(int * Bits.t) list array ->
  unit ->
  int -> (int * Bits.t) list
