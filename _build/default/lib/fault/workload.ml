open Rtlir

type t = {
  cycles : int;
  clock : int;
  drive : int -> (int * Bits.t) list;
}

let run ?(on_cycle_start = fun _ -> ()) w ~set_input ~step ~observe =
  let continue = ref true in
  let cycle = ref 0 in
  while !continue && !cycle < w.cycles do
    on_cycle_start !cycle;
    List.iter (fun (id, v) -> set_input id v) (w.drive !cycle);
    set_input w.clock (Bits.one 1);
    step ();
    set_input w.clock (Bits.zero 1);
    step ();
    continue := observe !cycle;
    incr cycle
  done

let random_drive ~seed ~inputs ?(directed = [||]) () =
  (* Cycle-indexed determinism: each cycle reseeds from (seed, cycle) so
     the drive function is a pure function of the cycle number, no matter
     in which order engines query it. *)
  let n_directed = Array.length directed in
  fun cycle ->
    if cycle < n_directed then directed.(cycle)
    else begin
      let rng = Rng.create (Int64.add seed (Int64.of_int (cycle * 2654435761))) in
      List.map (fun (id, width) -> (id, Rng.bits rng width)) inputs
    end
