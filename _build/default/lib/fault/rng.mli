(** Deterministic splitmix64 PRNG.

    Used for fault-list sampling and stimulus generation so campaigns are
    reproducible across engines and runs. *)

type t

val create : int64 -> t

(** Next raw 64-bit value. *)
val next : t -> int64

(** [int t bound] draws uniformly from [0 .. bound-1]; [bound > 0]. *)
val int : t -> int -> int

(** [bits t width] draws a uniform bit vector of the given width. *)
val bits : t -> int -> Rtlir.Bits.t

val bool : t -> bool

(** Fisher-Yates shuffle (in place). *)
val shuffle : t -> 'a array -> unit
