(* A compact 32-bit load/store ISA shared by the processor benchmarks.

   The paper evaluates on Sodor, RISCV-Mini, PicoRV32 and a MIPS CPU; what
   matters for fault simulation is the microarchitectural variety
   (single-stage, pipelined, multicycle-FSM), not the exact RISC-V/MIPS
   encodings. This ISA keeps decode realistic (register file, ALU, loads,
   stores, branches, jumps, halt) while staying compact.

   Encoding: [31:28] opcode | [27:24] rd | [23:20] rs1 | [19:16] rs2 |
             [15:0] imm (sign-extended where used; ALU funct in imm[3:0]). *)
open Rtlir

let op_alu = 0
let op_addi = 1
let op_andi = 2
let op_ori = 3
let op_xori = 4
let op_lui = 5
let op_lw = 6
let op_sw = 7
let op_beq = 8
let op_bne = 9
let op_blt = 10
let op_jal = 11
let op_halt = 15

let f_add = 0
let f_sub = 1
let f_and = 2
let f_or = 3
let f_xor = 4
let f_slt = 5
let f_sltu = 6
let f_sll = 7
let f_srl = 8
let f_sra = 9
let f_mul = 10

let encode ~op ~rd ~rs1 ~rs2 ~imm =
  ((op land 0xF) lsl 28)
  lor ((rd land 0xF) lsl 24)
  lor ((rs1 land 0xF) lsl 20)
  lor ((rs2 land 0xF) lsl 16)
  lor (imm land 0xFFFF)

let alu f rd rs1 rs2 = encode ~op:op_alu ~rd ~rs1 ~rs2 ~imm:f
let addi rd rs1 imm = encode ~op:op_addi ~rd ~rs1 ~rs2:0 ~imm
let andi rd rs1 imm = encode ~op:op_andi ~rd ~rs1 ~rs2:0 ~imm
let ori rd rs1 imm = encode ~op:op_ori ~rd ~rs1 ~rs2:0 ~imm
let xori rd rs1 imm = encode ~op:op_xori ~rd ~rs1 ~rs2:0 ~imm
let lui rd imm = encode ~op:op_lui ~rd ~rs1:0 ~rs2:0 ~imm
let lw rd rs1 imm = encode ~op:op_lw ~rd ~rs1 ~rs2:0 ~imm
let sw rs2 rs1 imm = encode ~op:op_sw ~rd:0 ~rs1 ~rs2 ~imm
let beq rs1 rs2 imm = encode ~op:op_beq ~rd:0 ~rs1 ~rs2 ~imm
let bne rs1 rs2 imm = encode ~op:op_bne ~rd:0 ~rs1 ~rs2 ~imm
let blt rs1 rs2 imm = encode ~op:op_blt ~rd:0 ~rs1 ~rs2 ~imm
let jal rd imm = encode ~op:op_jal ~rd ~rs1:0 ~rs2:0 ~imm
let halt = encode ~op:op_halt ~rd:0 ~rs1:0 ~rs2:0 ~imm:0
let nop = addi 0 0 0

let rom_of_program prog imem_size =
  let contents =
    Array.init imem_size (fun i ->
        if i < Array.length prog then
          Bits.make 32 (Int64.of_int prog.(i))
        else Bits.make 32 (Int64.of_int halt))
  in
  contents

(* Fibonacci: mem[i] <- fib(i) for i in 0..14, then restart forever.
   x1=i, x2=fib(i), x3=fib(i+1), x4=limit, x5=tmp *)
let fib_program =
  [|
    (* 0 *) addi 1 0 0;
    (* 1 *) addi 2 0 0;
    (* 2 *) addi 3 0 1;
    (* 3 *) addi 4 0 15;
    (* loop: 4 *) sw 2 1 0;
    (* 5 *) alu f_add 5 2 3;
    (* 6 *) alu f_add 2 3 0;
    (* 7 *) alu f_add 3 5 0;
    (* 8 *) addi 1 1 1;
    (* 9 *) bne 1 4 (-5 land 0xFFFF);
    (* 10 *) jal 0 (-10 land 0xFFFF);
  |]

(* Reference fib values the tests check in data memory. *)
let fib_expected =
  let a = Array.make 15 0 in
  let x = ref 0 and y = ref 1 in
  for i = 0 to 14 do
    a.(i) <- !x land 0xFFFFFFFF;
    let t = !x + !y in
    x := !y;
    y := t
  done;
  a

(* GCD of constant pairs, results stored at mem[16+k], repeated forever.
   x1=a, x2=b, x3=k, x6=base addr. Subtraction-based GCD. *)
let gcd_program =
  [|
    (* 0 *) addi 3 0 0;
    (* restart: 1 *) addi 1 0 270;
    (* 2 *) addi 2 0 192;
    (* 3 *) alu f_add 1 1 3;
    (* gcd loop: 4 *) beq 1 2 6;
    (* 5 *) blt 1 2 3;
    (* 6 *) alu f_sub 1 1 2;
    (* 7 *) jal 0 (-3 land 0xFFFF);
    (* swap-ish: 8 *) alu f_sub 2 2 1;
    (* 9 *) jal 0 (-5 land 0xFFFF);
    (* done: 10 *) addi 6 0 16;
    (* 11 *) alu f_add 6 6 3;
    (* 12 *) sw 1 6 0;
    (* 13 *) addi 3 3 1;
    (* 14 *) andi 3 3 7;
    (* 15 *) jal 0 (-14 land 0xFFFF);
  |]

(* Memory/logic stress: xorshift PRNG stored in a sliding window, plus
   read-back accumulation. x1=state, x2=i, x3=tmp, x4=acc *)
let xorshift_program =
  [|
    (* 0 *) lui 1 0x1234;
    (* 1 *) ori 1 1 0x5678;
    (* 2 *) addi 2 0 0;
    (* 3 *) addi 4 0 0;
    (* loop: 4 *) alu f_sll 3 1 10;
    (* imm f=sll uses rs2 value; use shift-by-register: set x10 *)
    (* 5 *) alu f_xor 1 1 3;
    (* 6 *) alu f_srl 3 1 11;
    (* 7 *) alu f_xor 1 1 3;
    (* 8 *) andi 5 2 31;
    (* 9 *) sw 1 5 32;
    (* 10 *) lw 6 5 32;
    (* 11 *) alu f_add 4 4 6;
    (* 12 *) addi 2 2 1;
    (* 13 *) sw 4 0 30;
    (* 14 *) jal 0 (-10 land 0xFFFF);
  |]

(* Register setup executed before xorshift: x10=13, x11=17 (shift counts). *)
let xorshift_prelude = [| addi 10 0 13; addi 11 0 7 |]

let xorshift_full =
  Array.append xorshift_prelude
    (Array.map
       (fun i ->
         (* shift the jump targets: prelude added 2 instructions, but all
            branches here are relative so no fixup is needed *)
         i)
       xorshift_program)

(* Bubble sort: initialise mem[0..7] with constants, sort ascending, then
   keep re-sorting forever (a stable final memory state for end checks).
   x1=j, x2/x3=elements, x4=7, x5=pass, x6=scratch *)
let sort_init_values = [| 42; 7; 99; 3; 77; 1; 55; 23 |]

let sort_expected =
  let a = Array.copy sort_init_values in
  Array.sort compare a;
  a

let sort_program =
  let init =
    Array.concat
      (Array.to_list
         (Array.mapi
            (fun i v -> [| addi 6 0 v; sw 6 0 i |])
            sort_init_values))
  in
  let body =
    [|
      (* 16 *) addi 4 0 7;
      (* 17 *) addi 5 0 0;
      (* pass: 18 *) addi 1 0 0;
      (* loop: 19 *) lw 2 1 0;
      (* 20 *) lw 3 1 1;
      (* 21 *) blt 3 2 2;
      (* 22 *) jal 0 3;
      (* swap: 23 *) sw 3 1 0;
      (* 24 *) sw 2 1 1;
      (* next: 25 *) addi 1 1 1;
      (* 26 *) bne 1 4 (-7 land 0xFFFF);
      (* 27 *) addi 5 5 1;
      (* 28 *) bne 5 4 (-10 land 0xFFFF);
      (* 29 *) jal 0 (-12 land 0xFFFF);
    |]
  in
  Array.append init body

(* Software golden model for the ISA, used by processor functional tests. *)
type machine = {
  regs : int array;  (* 16 registers, values masked to 32 bits *)
  mutable pc : int;
  dmem : int array;
  imem : int array;
  mutable halted : bool;
  mutable retired : int;
}

let machine_create prog ~dmem_size =
  { regs = Array.make 16 0; pc = 0; dmem = Array.make dmem_size 0;
    imem = prog; halted = false; retired = 0 }

let m32 = 0xFFFFFFFF

let sext16 v = if v land 0x8000 <> 0 then v lor lnot 0xFFFF else v

let to_signed32 v = if v land 0x80000000 <> 0 then v - (1 lsl 32) else v

let machine_step m =
  if not m.halted then begin
    let instr = if m.pc < Array.length m.imem then m.imem.(m.pc) else halt in
    let op = (instr lsr 28) land 0xF in
    let rd = (instr lsr 24) land 0xF in
    let rs1 = (instr lsr 20) land 0xF in
    let rs2 = (instr lsr 16) land 0xF in
    let imm = instr land 0xFFFF in
    let simm = sext16 imm in
    let v1 = m.regs.(rs1) and v2 = m.regs.(rs2) in
    let wr rd v = if rd <> 0 then m.regs.(rd) <- v land m32 in
    let next = ref ((m.pc + 1) land 0xFF) in
    (match op with
    | o when o = op_alu -> (
        let sh = v2 land 31 in
        match imm land 0xF with
        | f when f = f_add -> wr rd (v1 + v2)
        | f when f = f_sub -> wr rd (v1 - v2)
        | f when f = f_and -> wr rd (v1 land v2)
        | f when f = f_or -> wr rd (v1 lor v2)
        | f when f = f_xor -> wr rd (v1 lxor v2)
        | f when f = f_slt ->
            wr rd (if to_signed32 v1 < to_signed32 v2 then 1 else 0)
        | f when f = f_sltu -> wr rd (if v1 < v2 then 1 else 0)
        | f when f = f_sll -> wr rd (v1 lsl sh)
        | f when f = f_srl -> wr rd (v1 lsr sh)
        | f when f = f_sra -> wr rd (to_signed32 v1 asr sh)
        | f when f = f_mul -> wr rd (v1 * v2)
        | _ -> ())
    | o when o = op_addi -> wr rd (v1 + simm)
    | o when o = op_andi -> wr rd (v1 land (imm land 0xFFFF))
    | o when o = op_ori -> wr rd (v1 lor (imm land 0xFFFF))
    | o when o = op_xori -> wr rd (v1 lxor (imm land 0xFFFF))
    | o when o = op_lui -> wr rd (imm lsl 16)
    | o when o = op_lw ->
        wr rd m.dmem.((v1 + simm) land (Array.length m.dmem - 1))
    | o when o = op_sw ->
        m.dmem.((v1 + simm) land (Array.length m.dmem - 1)) <- v2
    | o when o = op_beq -> if v1 = v2 then next := (m.pc + simm) land 0xFF
    | o when o = op_bne -> if v1 <> v2 then next := (m.pc + simm) land 0xFF
    | o when o = op_blt ->
        if to_signed32 v1 < to_signed32 v2 then next := (m.pc + simm) land 0xFF
    | o when o = op_jal ->
        wr rd (m.pc + 1);
        next := (m.pc + simm) land 0xFF
    | o when o = op_halt ->
        m.halted <- true;
        next := m.pc
    | _ -> ());
    m.pc <- !next;
    m.retired <- m.retired + 1
  end
