(* SHA-256, Chisel-generated style (paper benchmark "SHA256_C2V").

   Functionally identical to {!Sha256_hv}, but the whole round datapath and
   the FSM next-state logic are flattened into word-level RTL nodes
   (continuous assignments), and each register gets its own trivial
   one-assignment behavioral node — the shape Chisel emits. Behavioral-node
   time is a tiny share of the total (paper: ~1%), which is the regime where
   implicit-redundancy elimination stops paying. *)
open Rtlir
module B = Builder
open B.Ops
module C = Sha256_core

let build () =
  let ctx = B.create "sha256_c2v" in
  let clk = B.input ctx "clk" 1 in
  let start = B.input ctx "start" 1 in
  let word_valid = B.input ctx "word_valid" 1 in
  let word_in = B.input ctx "word_in" 32 in
  let read_addr = B.input ctx "read_addr" 5 in
  let state = B.reg ctx "state" 3 in
  let t = B.reg ctx "t" 7 in
  let regs =
    Array.init 8 (fun i -> B.reg ctx (Printf.sprintf "r%c" (Char.chr (97 + i))) 32)
  in
  let hh = Array.init 8 (fun i -> B.reg ctx (Printf.sprintf "hh%d" i) 32) in
  let dig = Array.init 8 (fun i -> B.reg ctx (Printf.sprintf "dig%d" i) 32) in
  let done_r = B.reg ctx "done_r" 1 in
  let w_mem = B.ram ctx "w_mem" ~width:32 ~size:16 in
  let k_rom = B.rom ctx "k_rom" (C.k_rom ()) in
  let st n = B.const 3 n in
  let in_idle = B.wire ctx "in_idle" 1 in
  let in_load = B.wire ctx "in_load" 1 in
  let in_rounds = B.wire ctx "in_rounds" 1 in
  let in_final = B.wire ctx "in_final" 1 in
  let in_done = B.wire ctx "in_done" 1 in
  B.assign ctx in_idle (state ==: st C.s_idle);
  B.assign ctx in_load (state ==: st C.s_load);
  B.assign ctx in_rounds (state ==: st C.s_rounds);
  B.assign ctx in_final (state ==: st C.s_final);
  B.assign ctx in_done (state ==: st C.s_done);
  (* Flat datapath: every intermediate is an RTL node. *)
  let wire_eq name w e =
    let s = B.wire ctx name w in
    B.assign ctx s e;
    s
  in
  let rdw i name = wire_eq name 32 (B.read_mem w_mem (t +: B.const 7 i)) in
  let w14 = rdw 14 "w14" in
  let w9 = rdw 9 "w9" in
  let w1 = rdw 1 "w1" in
  let w0 = rdw 0 "w0" in
  let ss1 = wire_eq "ss1" 32 (C.small_sigma1 w14) in
  let ss0 = wire_eq "ss0" 32 (C.small_sigma0 w1) in
  let w_sched = wire_eq "w_sched" 32 (ss1 +: w9 +: ss0 +: w0) in
  let w_t = wire_eq "w_t" 32 (B.mux (t <: B.const 7 16) w0 w_sched) in
  let k_t = wire_eq "k_t" 32 (B.read_mem k_rom (B.slice t 5 0)) in
  let ra = regs.(0)
  and rb = regs.(1)
  and rc = regs.(2)
  and rd = regs.(3)
  and re_ = regs.(4)
  and rf = regs.(5)
  and rg = regs.(6)
  and rh = regs.(7) in
  let bs1 = wire_eq "bs1" 32 (C.big_sigma1 re_) in
  let bs0 = wire_eq "bs0" 32 (C.big_sigma0 ra) in
  let ch_w = wire_eq "ch_w" 32 (C.ch re_ rf rg) in
  let maj_w = wire_eq "maj_w" 32 (C.maj ra rb rc) in
  let t1 = wire_eq "t1" 32 (rh +: bs1 +: ch_w +: k_t +: w_t) in
  let t2 = wire_eq "t2" 32 (bs0 +: maj_w) in
  let last_load = wire_eq "last_load" 1 (word_valid &: (t ==: B.const 7 15)) in
  let last_round = wire_eq "last_round" 1 (t ==: B.const 7 63) in
  let next_state =
    wire_eq "next_state" 3
      (B.cases state (st C.s_idle)
         [
           (st C.s_idle, B.mux start (st C.s_load) (st C.s_idle));
           (st C.s_load, B.mux last_load (st C.s_rounds) (st C.s_load));
           ( st C.s_rounds,
             B.mux last_round (st C.s_final) (st C.s_rounds) );
           (st C.s_final, st C.s_done);
           (st C.s_done, st C.s_idle);
         ])
  in
  let t_plus1 = wire_eq "t_plus1" 7 (t +: B.const 7 1) in
  let next_t =
    wire_eq "next_t" 7
      (B.cases state (B.const 7 0)
         [
           (st C.s_load,
            B.mux last_load (B.const 7 0)
              (B.mux word_valid t_plus1 t));
           (st C.s_rounds, B.mux last_round t t_plus1);
         ])
  in
  let round_en = in_rounds in
  (* Per-register next-value RTL nodes and one-liner register processes. *)
  let next_of name cur round_v =
    wire_eq name 32
      (B.mux round_en round_v cur)
  in
  let start_load = wire_eq "start_load" 1 (in_idle &: start) in
  let reg_next i cur round_v =
    let n =
      next_of (Printf.sprintf "next_r%d" i) cur round_v
    in
    wire_eq
      (Printf.sprintf "next_r%d_i" i)
      32
      (B.mux start_load (B.const 32 C.h_init.(i)) n)
  in
  let nexts =
    [|
      reg_next 0 ra (t1 +: t2);
      reg_next 1 rb ra;
      reg_next 2 rc rb;
      reg_next 3 rd rc;
      reg_next 4 re_ (rd +: t1);
      reg_next 5 rf re_;
      reg_next 6 rg rf;
      reg_next 7 rh rg;
    |]
  in
  Array.iteri
    (fun i r ->
      B.always_ff ctx ~name:(Printf.sprintf "reg_r%d" i) ~clock:clk
        [ r <-- nexts.(i) ])
    regs;
  Array.iteri
    (fun i h ->
      let n =
        wire_eq (Printf.sprintf "next_hh%d" i) 32
          (B.mux start_load
             (B.const 32 C.h_init.(i))
             (B.mux in_final (h +: regs.(i)) h))
      in
      B.always_ff ctx ~name:(Printf.sprintf "reg_hh%d" i) ~clock:clk
        [ h <-- n ])
    hh;
  Array.iteri
    (fun i dg ->
      let n =
        wire_eq (Printf.sprintf "next_dig%d" i) 32
          (B.mux in_final (hh.(i) +: regs.(i)) dg)
      in
      B.always_ff ctx ~name:(Printf.sprintf "reg_dig%d" i) ~clock:clk
        [ dg <-- n ])
    dig;
  B.always_ff ctx ~name:"reg_state" ~clock:clk [ state <-- next_state ];
  B.always_ff ctx ~name:"reg_t" ~clock:clk [ t <-- next_t ];
  B.always_ff ctx ~name:"reg_done" ~clock:clk [ done_r <-- in_done ];
  (* The W memory keeps a (tiny) behavioral node with a branch, as Chisel
     emits for Mem write ports. *)
  let w_addr = wire_eq "w_addr" 7 (B.zext (B.slice t 3 0) 7) in
  B.always_ff ctx ~name:"w_port" ~clock:clk
    [
      B.if_
        (in_load &: word_valid)
        [ B.write_mem w_mem w_addr word_in ]
        [ B.when_ in_rounds [ B.write_mem w_mem w_addr w_t ] ];
    ];
  (* flattened API read mux (a Chisel-emitted priority chain of RTL nodes) *)
  let dig_mux =
    wire_eq "dig_mux" 32
      (B.cases
         (B.slice read_addr 2 0)
         (B.const 32 0)
         (List.init 8 (fun i -> (B.const 3 i, dig.(i)))))
  in
  let status =
    wire_eq "status" 32
      (B.concat_list
         [ B.const 29 0; done_r; ~:in_idle; B.reduce_or t ])
  in
  let w_word =
    wire_eq "w_word" 32
      (B.read_mem w_mem (B.zext (B.slice read_addr 3 0) 7))
  in
  let api_rdata =
    wire_eq "api_rdata" 32
      (B.mux (B.bit_ read_addr 4) w_word
         (B.mux (B.bit_ read_addr 3) status dig_mux))
  in
  let done_o = B.output ctx "done" 1 in
  B.assign ctx done_o done_r;
  let rdata_o = B.output ctx "rdata" 32 in
  B.assign ctx rdata_o api_rdata;
  let busy = B.output ctx "busy" 1 in
  B.assign ctx busy (~:in_idle);
  B.finalize ctx

let circuit =
  {
    Bench_circuit.name = "sha256_c2v";
    paper_name = "SHA256_C2V";
    build;
    paper_cycles = 4000;
    paper_faults = 2174;
    workload = (fun design ~cycles -> C.workload ~seed:0xC2FL design ~cycles);
  }
