(* Main module of the circuits library: re-exports each benchmark circuit
   and the registry of all Table II rows. *)

(** Registry entry type and workload helpers. *)
module Bench_circuit = Bench_circuit

(** SHA-256 primitives, software reference and the shared API testbench. *)
module Sha256_core = Sha256_core

(** The compact load/store ISA, assembler helpers, test programs and the
    golden machine model shared by the processor benchmarks. *)
module Cpu_isa = Cpu_isa

(** CSR / exception side-unit added to each processor (the
    dynamically-quiescent logic real cores carry). *)
module Csr_unit = Csr_unit

(** 64-bit ALU — arithmetic core, behavioral-heavy. *)
module Alu64 = Alu64

(** FP32 add/multiply pipeline with op-gated dual-path capture registers. *)
module Fpu32 = Fpu32

(** SHA-256, handwritten style: big behavioral nodes, API read mux. *)
module Sha256_hv = Sha256_hv

(** SHA-256, Chisel-generated style: flat RTL nodes, one-liner registers. *)
module Sha256_c2v = Sha256_c2v

(** APB register-file bus controller. *)
module Apb = Apb

(** Single-stage CPU (ucb-bar sodor style). *)
module Sodor = Sodor

(** Three-stage pipelined CPU with bypassing (riscv-mini style). *)
module Riscv_mini = Riscv_mini

(** Multicycle FSM CPU (PicoRV32 style). *)
module Picorv32 = Picorv32

(** 3x3 convolution accelerator with line buffers and a MAC array. *)
module Conv_acc = Conv_acc

(** Five-stage pipelined CPU with forwarding and load-use stalls. *)
module Mips_cpu = Mips_cpu

(** All ten benchmarks, in the paper's Table II order. *)
let all : Bench_circuit.t list =
  [
    Alu64.circuit;
    Fpu32.circuit;
    Sha256_hv.circuit;
    Apb.circuit;
    Sodor.circuit;
    Riscv_mini.circuit;
    Picorv32.circuit;
    Conv_acc.circuit;
    Sha256_c2v.circuit;
    Mips_cpu.circuit;
  ]

(** Look a circuit up by its short name. Raises [Not_found]. *)
let find name : Bench_circuit.t =
  List.find (fun (c : Bench_circuit.t) -> c.name = name) all
