(* 32-bit floating-point unit (paper benchmark "FPU (32)").

   Two-stage pipeline: unpack/capture, then add/multiply datapaths built
   from branchy combinational behavioral nodes (alignment, normalization by
   binary leading-zero steps, packing with under/overflow cases). Truncating
   arithmetic, flush-to-zero denormals — the reference model below mirrors
   the hardware bit-for-bit and exact cases (x+0, powers of two) also match
   IEEE. *)
open Rtlir
module B = Builder
open B.Ops

(* --- software reference, mirroring the RTL algorithm exactly --- *)

let mask n = (1 lsl n) - 1

let unpack x =
  let s = (x lsr 31) land 1 in
  let e = (x lsr 23) land 0xFF in
  let m = if e = 0 then 0 else (1 lsl 23) lor (x land mask 23) in
  (s, e, m)

let pack_result sign e m =
  (* e is a 10-bit two's-complement quantity; m a 24-bit mantissa. *)
  if m = 0 then 0
  else if e land 0x200 <> 0 || e = 0 then 0 (* underflow / denormal: flush *)
  else if e >= 255 then (sign lsl 31) lor (0xFF lsl 23) (* overflow: inf *)
  else (sign lsl 31) lor ((e land 0xFF) lsl 23) lor (m land mask 23)

let normalize m e =
  (* m: 25-bit sum; e: 10-bit; returns 24-bit mantissa and exponent. *)
  let m = ref m and e = ref e in
  if !m land (1 lsl 24) <> 0 then begin
    m := !m lsr 1;
    e := (!e + 1) land 0x3FF
  end
  else begin
    if !m land 0xFFFF00 = 0 then begin
      m := (!m lsl 16) land mask 25;
      e := (!e - 16) land 0x3FF
    end;
    if !m land 0xFF0000 = 0 then begin
      m := (!m lsl 8) land mask 25;
      e := (!e - 8) land 0x3FF
    end;
    if !m land 0xF00000 = 0 then begin
      m := (!m lsl 4) land mask 25;
      e := (!e - 4) land 0x3FF
    end;
    if !m land 0xC00000 = 0 then begin
      m := (!m lsl 2) land mask 25;
      e := (!e - 2) land 0x3FF
    end;
    if !m land 0x800000 = 0 then begin
      m := (!m lsl 1) land mask 25;
      e := (!e - 1) land 0x3FF
    end
  end;
  (!m land mask 24, !e)

let ref_add a b =
  let sa, ea, ma = unpack a and sb, eb, mb = unpack b in
  let a_ge = (ea lsl 24) lor ma >= (eb lsl 24) lor mb in
  let el, ml, es, ms, sign =
    if a_ge then (ea, ma, eb, mb, sa) else (eb, mb, ea, ma, sb)
  in
  let d = el - es in
  let msh = if d >= 26 then 0 else ms lsr d in
  let m =
    if sa = sb then (ml + msh) land mask 25
    else (ml - msh) land mask 25
  in
  let m, e = normalize m el in
  pack_result sign e m

let ref_mul a b =
  let sa, ea, ma = unpack a and sb, eb, mb = unpack b in
  let sign = sa lxor sb in
  if ma = 0 || mb = 0 then 0
  else begin
    let p = ma * mb in
    let m, e =
      if p land (1 lsl 47) <> 0 then
        ((p lsr 24) land mask 24, (ea + eb - 126) land 0x3FF)
      else ((p lsr 23) land mask 24, (ea + eb - 127) land 0x3FF)
    in
    pack_result sign e m
  end

(* --- hardware --- *)

let build () =
  let ctx = B.create "fpu32" in
  let clk = B.input ctx "clk" 1 in
  let in_valid = B.input ctx "in_valid" 1 in
  let op = B.input ctx "op" 1 in
  let a = B.input ctx "a" 32 in
  let b = B.input ctx "b" 32 in
  (* unpack (RTL nodes) *)
  let upk name x =
    let s = B.wire ctx (name ^ "_s") 1 in
    let e = B.wire ctx (name ^ "_e") 8 in
    let m = B.wire ctx (name ^ "_m") 24 in
    B.assign ctx s (B.bit_ x 31);
    B.assign ctx e (B.slice x 30 23);
    B.assign ctx m
      (B.mux
         (B.slice x 30 23 ==: B.const 8 0)
         (B.const 24 0)
         (B.concat B.vdd (B.slice x 22 0)));
    (s, e, m)
  in
  let ua_s, ua_e, ua_m = upk "ua" a in
  let ub_s, ub_e, ub_m = upk "ub" b in
  (* Stage 1 registers. The two datapaths have separate, op-gated capture
     registers (as in a clock-gated FPU): the inactive path's pipeline
     registers hold their previous operands. *)
  let r1 name w = B.reg ctx ("s1_" ^ name) w in
  let s1_valid = r1 "valid" 1
  and s1_op = r1 "op" 1 in
  let ra name w = B.reg ctx ("s1a_" ^ name) w in
  let s1_sa = ra "sa" 1
  and s1_sb = ra "sb" 1
  and s1_ea = ra "ea" 8
  and s1_eb = ra "eb" 8
  and s1_ma = ra "ma" 24
  and s1_mb = ra "mb" 24 in
  let rm name w = B.reg ctx ("s1m_" ^ name) w in
  let m1_sa = rm "sa" 1
  and m1_sb = rm "sb" 1
  and m1_ea = rm "ea" 8
  and m1_eb = rm "eb" 8
  and m1_ma = rm "ma" 24
  and m1_mb = rm "mb" 24 in
  B.always_ff ctx ~name:"stage1" ~clock:clk
    [
      s1_valid <-- in_valid;
      B.when_ in_valid
        [
          s1_op <-- op;
          B.if_
            (op ==: B.const 1 0)
            [
              s1_sa <-- ua_s;
              s1_sb <-- ub_s;
              s1_ea <-- ua_e;
              s1_eb <-- ub_e;
              s1_ma <-- ua_m;
              s1_mb <-- ub_m;
            ]
            [
              m1_sa <-- ua_s;
              m1_sb <-- ub_s;
              m1_ea <-- ua_e;
              m1_eb <-- ub_e;
              m1_ma <-- ua_m;
              m1_mb <-- ub_m;
            ];
        ];
    ];
  (* add path: pick larger operand, align, add/sub *)
  let a_ge = B.wire ctx "a_ge" 1 in
  B.assign ctx a_ge (B.concat s1_ea s1_ma >=: B.concat s1_eb s1_mb);
  let add_sign = B.wire ctx "add_sign" 1 in
  let add_m = B.wire ctx "add_m" 25 in
  let add_e = B.wire ctx "add_e" 10 in
  let el = B.wire ctx "el" 8 in
  let ml = B.wire ctx "ml" 24 in
  let msh = B.wire ctx "msh" 24 in
  B.always_comb ctx ~name:"align_add"
    [
      el =: B.mux a_ge s1_ea s1_eb;
      ml =: B.mux a_ge s1_ma s1_mb;
      add_sign =: B.mux a_ge s1_sa s1_sb;
      (let es = B.mux a_ge s1_eb s1_ea in
       let ms = B.mux a_ge s1_mb s1_ma in
       let d = el -: es in
       B.if_
         (d >=: B.const 8 26)
         [ msh =: B.const 24 0 ]
         [ msh =: (ms >>: d) ]);
      B.if_ (s1_sa ==: s1_sb)
        [ add_m =: (B.zext ml 25 +: B.zext msh 25) ]
        [ add_m =: (B.zext ml 25 -: B.zext msh 25) ];
      add_e =: B.zext el 10;
    ];
  (* normalization: carry shift then binary leading-zero steps *)
  let norm_m = B.wire ctx "norm_m" 25 in
  let norm_e = B.wire ctx "norm_e" 10 in
  B.always_comb ctx ~name:"normalize"
    [
      norm_m =: add_m;
      norm_e =: add_e;
      B.if_ (B.bit_ norm_m 24)
        [
          norm_m =: (norm_m >>: B.const 1 1);
          norm_e =: (norm_e +: B.const 10 1);
        ]
        [
          B.when_
            (B.slice norm_m 23 8 ==: B.const 16 0)
            [
              norm_m =: (norm_m <<: B.const 5 16);
              norm_e =: (norm_e -: B.const 10 16);
            ];
          B.when_
            (B.slice norm_m 23 16 ==: B.const 8 0)
            [
              norm_m =: (norm_m <<: B.const 4 8);
              norm_e =: (norm_e -: B.const 10 8);
            ];
          B.when_
            (B.slice norm_m 23 20 ==: B.const 4 0)
            [
              norm_m =: (norm_m <<: B.const 3 4);
              norm_e =: (norm_e -: B.const 10 4);
            ];
          B.when_
            (B.slice norm_m 23 22 ==: B.const 2 0)
            [
              norm_m =: (norm_m <<: B.const 2 2);
              norm_e =: (norm_e -: B.const 10 2);
            ];
          B.when_
            (~:(B.bit_ norm_m 23))
            [
              norm_m =: (norm_m <<: B.const 1 1);
              norm_e =: (norm_e -: B.const 10 1);
            ];
        ];
    ];
  (* multiply path *)
  let mul_sign = B.wire ctx "mul_sign" 1 in
  let mul_m = B.wire ctx "mul_m" 24 in
  let mul_e = B.wire ctx "mul_e" 10 in
  let mul_zero = B.wire ctx "mul_zero" 1 in
  B.always_comb ctx ~name:"mulpath"
    [
      mul_sign =: (m1_sa ^: m1_sb);
      mul_zero
      =: ((m1_ma ==: B.const 24 0) |: (m1_mb ==: B.const 24 0));
      (let p = B.zext m1_ma 48 *: B.zext m1_mb 48 in
       let esum = B.zext m1_ea 10 +: B.zext m1_eb 10 in
       B.if_ (B.bit_ p 47)
         [
           mul_m =: B.slice p 47 24;
           mul_e =: (esum -: B.const 10 126);
         ]
         [
           mul_m =: B.slice p 46 23;
           mul_e =: (esum -: B.const 10 127);
         ]);
    ];
  (* stage 2: select path and pack, with special cases *)
  let out_valid = B.reg ctx "out_valid_r" 1 in
  let out_res = B.reg ctx "out_res_r" 32 in
  let pack sign e m zero_cond =
    [
      B.if_
        (zero_cond
        |: (B.bit_ e 9)
        |: (e ==: B.const 10 0))
        [ out_res <-- B.const 32 0 ]
        [
          B.if_
            (e >=: B.const 10 255)
            [
              out_res
              <-- B.concat_list [ sign; B.const 8 0xFF; B.const 23 0 ];
            ]
            [
              out_res
              <-- B.concat_list [ sign; B.slice e 7 0; B.slice m 22 0 ];
            ];
        ];
    ]
  in
  B.always_ff ctx ~name:"stage2" ~clock:clk
    [
      out_valid <-- s1_valid;
      B.when_ s1_valid
        [
          B.if_
            (s1_op ==: B.const 1 0)
            (pack add_sign norm_e (B.slice norm_m 23 0)
               (B.slice norm_m 23 0 ==: B.const 24 0))
            (pack mul_sign mul_e mul_m mul_zero);
        ];
    ];
  let ov = B.output ctx "out_valid" 1 in
  let orr = B.output ctx "out_result" 32 in
  B.assign ctx ov out_valid;
  B.assign ctx orr out_res;
  B.finalize ctx

let workload design ~cycles =
  Bench_circuit.random_workload ~seed:0xF9032L design ~cycles

let circuit =
  {
    Bench_circuit.name = "fpu";
    paper_name = "FPU (32)";
    build;
    paper_cycles = 9000;
    paper_faults = 1256;
    workload;
  }
