(* Multicycle FSM CPU (paper benchmark "PicoRV32", YosysHQ's
   size-optimised core): one instruction walks through
   FETCH / DECODE / EXEC / MEM / WB states, latching operands along the
   way. The state register changes every cycle, so most fault activity at
   the big behavioral node is explicit (paper Table III: 86% explicit). *)
open Rtlir
module B = Builder
open B.Ops
module I = Cpu_isa

let imem_size = 256
let dmem_size = 64
let s_fetch = 0
let s_decode = 1
let s_exec = 2
let s_mem = 3
let s_wb = 4

let build_with ~name ~program () =
  let ctx = B.create name in
  let clk = B.input ctx "clk" 1 in
  let state = B.reg ctx "state" 3 in
  let pc = B.reg ctx "pc" 8 in
  let instr = B.reg ctx "instr" 32 in
  let v1 = B.reg ctx "v1" 32 in
  let v2 = B.reg ctx "v2" 32 in
  let alu_r = B.reg ctx "alu_r" 32 in
  let wb_en_r = B.reg ctx "wb_en_r" 1 in
  let next_pc_r = B.reg ctx "next_pc_r" 8 in
  let mem_rdata = B.reg ctx "mem_rdata" 32 in
  let halted = B.reg ctx "halted" 1 in
  let retired = B.reg ctx "retired" 32 in
  let regfile = B.ram ctx "regfile" ~width:32 ~size:16 in
  let dmem = B.ram ctx "dmem" ~width:32 ~size:dmem_size in
  let imem = B.rom ctx "imem" (I.rom_of_program program imem_size) in
  (* decode-field RTL nodes *)
  let opcode = B.wire ctx "opcode" 4 in
  let rd = B.wire ctx "rd" 4 in
  let rs1 = B.wire ctx "rs1" 4 in
  let rs2 = B.wire ctx "rs2" 4 in
  let imm = B.wire ctx "imm" 16 in
  let simm = B.wire ctx "simm" 32 in
  B.assign ctx opcode (B.slice instr 31 28);
  B.assign ctx rd (B.slice instr 27 24);
  B.assign ctx rs1 (B.slice instr 23 20);
  B.assign ctx rs2 (B.slice instr 19 16);
  B.assign ctx imm (B.slice instr 15 0);
  B.assign ctx simm (B.sext imm 32);
  let is_load = B.wire ctx "is_load" 1 in
  let is_store = B.wire ctx "is_store" 1 in
  let is_branch = B.wire ctx "is_branch" 1 in
  B.assign ctx is_load (opcode ==: B.const 4 I.op_lw);
  B.assign ctx is_store (opcode ==: B.const 4 I.op_sw);
  B.assign ctx is_branch
    ((opcode ==: B.const 4 I.op_beq)
    |: (opcode ==: B.const 4 I.op_bne)
    |: (opcode ==: B.const 4 I.op_blt));
  let mem_addr = B.wire ctx "mem_addr" 6 in
  B.assign ctx mem_addr (B.slice (v1 +: simm) 5 0);
  let pc_br = B.wire ctx "pc_br" 8 in
  B.assign ctx pc_br (B.slice (B.zext pc 32 +: simm) 7 0);
  let pc_plus1 = B.wire ctx "pc_plus1" 8 in
  B.assign ctx pc_plus1 (pc +: B.const 8 1);
  let st n = B.const 3 n in
  let opc n = Bits.of_int 4 n in
  let sh = B.wire ctx "sh" 6 in
  B.assign ctx sh (B.zext (B.slice v2 4 0) 6);
  B.always_ff ctx ~name:"cpu_fsm" ~clock:clk
    [
      B.when_ (~:halted)
        [
          B.switch state
            [
              ( Bits.of_int 3 s_fetch,
                [
                  instr <-- B.read_mem imem pc;
                  state <-- st s_decode;
                ] );
              ( Bits.of_int 3 s_decode,
                [
                  v1
                  <-- B.mux (rs1 ==: B.const 4 0) (B.const 32 0)
                        (B.read_mem regfile (B.zext rs1 5));
                  v2
                  <-- B.mux (rs2 ==: B.const 4 0) (B.const 32 0)
                        (B.read_mem regfile (B.zext rs2 5));
                  state <-- st s_exec;
                ] );
              ( Bits.of_int 3 s_exec,
                [
                  wb_en_r <-- B.gnd;
                  next_pc_r <-- pc_plus1;
                  B.switch opcode
                    [
                      ( opc I.op_alu,
                        [
                          wb_en_r <-- B.vdd;
                          B.switch (B.slice imm 3 0)
                            [
                              (Bits.of_int 4 I.f_add, [ alu_r <-- (v1 +: v2) ]);
                              (Bits.of_int 4 I.f_sub, [ alu_r <-- (v1 -: v2) ]);
                              (Bits.of_int 4 I.f_and, [ alu_r <-- (v1 &: v2) ]);
                              (Bits.of_int 4 I.f_or, [ alu_r <-- (v1 |: v2) ]);
                              (Bits.of_int 4 I.f_xor, [ alu_r <-- (v1 ^: v2) ]);
                              ( Bits.of_int 4 I.f_slt,
                                [ alu_r <-- B.zext (v1 <+ v2) 32 ] );
                              ( Bits.of_int 4 I.f_sltu,
                                [ alu_r <-- B.zext (v1 <: v2) 32 ] );
                              (Bits.of_int 4 I.f_sll, [ alu_r <-- (v1 <<: sh) ]);
                              (Bits.of_int 4 I.f_srl, [ alu_r <-- (v1 >>: sh) ]);
                              (Bits.of_int 4 I.f_sra, [ alu_r <-- (v1 >>+ sh) ]);
                              (Bits.of_int 4 I.f_mul, [ alu_r <-- (v1 *: v2) ]);
                            ]
                            ~default:[ wb_en_r <-- B.gnd ];
                        ] );
                      ( opc I.op_addi,
                        [ wb_en_r <-- B.vdd; alu_r <-- (v1 +: simm) ] );
                      ( opc I.op_andi,
                        [ wb_en_r <-- B.vdd; alu_r <-- (v1 &: B.zext imm 32) ] );
                      ( opc I.op_ori,
                        [ wb_en_r <-- B.vdd; alu_r <-- (v1 |: B.zext imm 32) ] );
                      ( opc I.op_xori,
                        [ wb_en_r <-- B.vdd; alu_r <-- (v1 ^: B.zext imm 32) ] );
                      ( opc I.op_lui,
                        [
                          wb_en_r <-- B.vdd;
                          alu_r <-- (B.zext imm 32 <<: B.const 5 16);
                        ] );
                      (opc I.op_lw, []);
                      (opc I.op_sw, []);
                      ( opc I.op_beq,
                        [ B.when_ (v1 ==: v2) [ next_pc_r <-- pc_br ] ] );
                      ( opc I.op_bne,
                        [ B.when_ (v1 <>: v2) [ next_pc_r <-- pc_br ] ] );
                      ( opc I.op_blt,
                        [ B.when_ (v1 <+ v2) [ next_pc_r <-- pc_br ] ] );
                      ( opc I.op_jal,
                        [
                          wb_en_r <-- B.vdd;
                          alu_r <-- B.zext pc_plus1 32;
                          next_pc_r <-- pc_br;
                        ] );
                      (opc I.op_halt, [ halted <-- B.vdd ]);
                    ]
                    ~default:[];
                  B.if_
                    (is_load |: is_store)
                    [ state <-- st s_mem ]
                    [ state <-- st s_wb ];
                ] );
              ( Bits.of_int 3 s_mem,
                [
                  B.if_ is_load
                    [
                      mem_rdata <-- B.read_mem dmem (B.zext mem_addr 6);
                      wb_en_r <-- B.vdd;
                    ]
                    [ B.write_mem dmem (B.zext mem_addr 6) v2 ];
                  state <-- st s_wb;
                ] );
              ( Bits.of_int 3 s_wb,
                [
                  B.when_
                    (wb_en_r &: (rd <>: B.const 4 0))
                    [
                      B.write_mem regfile (B.zext rd 5)
                        (B.mux is_load mem_rdata alu_r);
                    ];
                  retired <-- (retired +: B.const 32 1);
                  pc <-- next_pc_r;
                  state <-- st s_fetch;
                ] );
            ]
            ~default:[ state <-- st s_fetch ];
        ];
    ];
  let out name e w =
    let o = B.output ctx name w in
    B.assign ctx o e
  in
  let probe =
    Csr_unit.add ctx ~clock:clk ~pc
      ~bus_valid:((state ==: B.const 3 s_mem) &: is_store &: ~:halted)
      ~bus_addr:mem_addr ~bus_data:v2
  in
  out "pc_out" pc 8;
  out "state_out" state 3;
  out "retired_out" (B.slice retired 15 0) 16;
  out "mem_bus"
    (B.concat_list
       [
         (state ==: B.const 3 s_mem) &: is_store &: ~:halted;
         mem_addr;
         v2;
       ])
    39;
  out "csr_probe_out" probe 32;
  out "halted_out" halted 1;
  B.finalize ctx

let build () = build_with ~name:"picorv32" ~program:I.xorshift_full ()

let circuit =
  {
    Bench_circuit.name = "picorv32";
    paper_name = "PicoRV32";
    build;
    paper_cycles = 4000;
    paper_faults = 1040;
    workload =
      (fun design ~cycles ->
        Bench_circuit.random_workload ~seed:0x91C0L design ~cycles);
  }
