(* 3x3 convolution accelerator (paper benchmark "Conv_acc", a PE-array
   LeNet accelerator): two line buffers, a 3x3 sliding window, nine
   signed multiply-accumulate RTL nodes and a ReLU/saturation stage.
   Datapath-heavy — most nodes are word-level RTL nodes, with small
   behavioral control. *)
open Rtlir
module B = Builder
open B.Ops

let width = 8 (* image width in pixels *)

let kernel = [| 8; -16; 24; -32; 40; -48; 56; -64; 8 |]

(* software mirror used by the functional tests *)
type sw = {
  mutable win : int array;  (* 9 entries, row-major, w.(8) = newest *)
  lb0 : int array;
  lb1 : int array;
  mutable col : int;
  mutable row : int;
  mutable out_valid : bool;
  mutable out : int;
  mutable checksum : int;
}

let sw_create () =
  {
    win = Array.make 9 0;
    lb0 = Array.make width 0;
    lb1 = Array.make width 0;
    col = 0;
    row = 0;
    out_valid = false;
    out = 0;
    checksum = 0;
  }

let sw_step s ~px_valid ~px =
  if px_valid then begin
    let top = s.lb1.(s.col) and mid = s.lb0.(s.col) in
    let w = s.win in
    let nw =
      [| w.(1); w.(2); top; w.(4); w.(5); mid; w.(7); w.(8); px |]
    in
    (* the accumulation uses the post-shift window *)
    let acc = ref 0 in
    Array.iteri (fun i v -> acc := !acc + (v * kernel.(i))) nw;
    let relu =
      if !acc < 0 then 0 else if !acc > 0xFFFF then 0xFFFF else !acc
    in
    let valid = s.col >= 2 && s.row >= 2 in
    s.win <- nw;
    s.lb1.(s.col) <- mid;
    s.lb0.(s.col) <- px;
    s.out_valid <- valid;
    if valid then begin
      s.out <- relu;
      s.checksum <- (s.checksum + relu + (s.checksum lsl 3)) land 0xFFFFFFFF
    end;
    if s.col = width - 1 then begin
      s.col <- 0;
      s.row <- (s.row + 1) land 15
    end
    else s.col <- s.col + 1
  end
  else s.out_valid <- false

let build () =
  let ctx = B.create "conv_acc" in
  let clk = B.input ctx "clk" 1 in
  let px_valid = B.input ctx "px_valid" 1 in
  let px_in = B.input ctx "px_in" 8 in
  let win = Array.init 9 (fun i -> B.reg ctx (Printf.sprintf "w%d%d" (i / 3) (i mod 3)) 8) in
  let lb0 = B.ram ctx "lb0" ~width:8 ~size:width in
  let lb1 = B.ram ctx "lb1" ~width:8 ~size:width in
  let col = B.reg ctx "col" 3 in
  let row = B.reg ctx "row" 4 in
  let out_valid_r = B.reg ctx "out_valid_r" 1 in
  let conv_out_r = B.reg ctx "conv_out_r" 16 in
  let checksum = B.reg ctx "checksum" 32 in
  let top = B.wire ctx "top" 8 in
  let mid = B.wire ctx "mid" 8 in
  B.assign ctx top (B.read_mem lb1 col);
  B.assign ctx mid (B.read_mem lb0 col);
  (* post-shift window taps as wires *)
  let tap = Array.make 9 B.gnd in
  for i = 0 to 8 do
    let src =
      match i with
      | 2 -> top
      | 5 -> mid
      | 8 -> px_in
      | _ -> win.(i + 1)
    in
    let w = B.wire ctx (Printf.sprintf "tap%d" i) 8 in
    B.assign ctx w src;
    tap.(i) <- w
  done;
  (* nine signed products and an adder tree, all RTL nodes *)
  let prod =
    Array.init 9 (fun i ->
        let p = B.wire ctx (Printf.sprintf "prod%d" i) 20 in
        B.assign ctx p
          (B.zext tap.(i) 20 *: B.constb (Bits.make 20 (Int64.of_int kernel.(i))));
        p)
  in
  let sum01 = B.wire ctx "sum01" 20 in
  let sum23 = B.wire ctx "sum23" 20 in
  let sum45 = B.wire ctx "sum45" 20 in
  let sum67 = B.wire ctx "sum67" 20 in
  B.assign ctx sum01 (prod.(0) +: prod.(1));
  B.assign ctx sum23 (prod.(2) +: prod.(3));
  B.assign ctx sum45 (prod.(4) +: prod.(5));
  B.assign ctx sum67 (prod.(6) +: prod.(7));
  let sum0123 = B.wire ctx "sum0123" 20 in
  let sum4567 = B.wire ctx "sum4567" 20 in
  B.assign ctx sum0123 (sum01 +: sum23);
  B.assign ctx sum4567 (sum45 +: sum67);
  let acc = B.wire ctx "acc" 20 in
  B.assign ctx acc (sum0123 +: sum4567 +: prod.(8));
  (* ReLU / saturation: a small branchy behavioral node *)
  let relu = B.wire ctx "relu" 16 in
  B.always_comb ctx ~name:"relu_clamp"
    [
      B.if_ (B.bit_ acc 19)
        [ relu =: B.const 16 0 ]
        [
          B.if_
            (B.slice acc 18 16 <>: B.const 3 0)
            [ relu =: B.const 16 0xFFFF ]
            [ relu =: B.slice acc 15 0 ];
        ];
    ];
  let window_full = B.wire ctx "window_full" 1 in
  B.assign ctx window_full
    ((col >=: B.const 3 2) &: (row >=: B.const 4 2));
  (* control behavioral node *)
  B.always_ff ctx ~name:"conv_ctrl" ~clock:clk
    [
      B.if_ px_valid
        [
          win.(0) <-- win.(1);
          win.(1) <-- win.(2);
          win.(2) <-- top;
          win.(3) <-- win.(4);
          win.(4) <-- win.(5);
          win.(5) <-- mid;
          win.(6) <-- win.(7);
          win.(7) <-- win.(8);
          win.(8) <-- px_in;
          B.write_mem lb1 col mid;
          B.write_mem lb0 col px_in;
          out_valid_r <-- window_full;
          B.when_ window_full
            [
              conv_out_r <-- relu;
              checksum
              <-- (checksum +: B.zext relu 32
                  +: (checksum <<: B.const 2 3));
            ];
          B.if_
            (col ==: B.const 3 (width - 1))
            [ col <-- B.const 3 0; row <-- (row +: B.const 4 1) ]
            [ col <-- (col +: B.const 3 1) ];
        ]
        [ out_valid_r <-- B.gnd ];
    ];
  let out name e w =
    let o = B.output ctx name w in
    B.assign ctx o e
  in
  out "out_valid" out_valid_r 1;
  out "conv_out" conv_out_r 16;
  out "checksum_out" checksum 32;
  B.finalize ctx

(* Pixels arrive on ~3 of every 4 cycles, values seeded per cycle. *)
let workload design ~cycles =
  let clock = Design.find_signal design "clk" in
  let px_valid = Design.find_signal design "px_valid" in
  let px_in = Design.find_signal design "px_in" in
  let drive cycle =
    let rng = Faultsim.Rng.create (Int64.of_int (0xC04 + (cycle * 2654435761))) in
    let valid = cycle mod 4 <> 3 in
    [
      (px_valid, Bits.of_bool valid);
      (px_in, Faultsim.Rng.bits rng 8);
    ]
  in
  { Faultsim.Workload.cycles; clock; drive }

let circuit =
  {
    Bench_circuit.name = "conv_acc";
    paper_name = "Conv_acc";
    build;
    paper_cycles = 4000;
    paper_faults = 1032;
    workload;
  }
