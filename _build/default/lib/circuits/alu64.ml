(* 64-bit ALU (paper benchmark "ALU (64)", an arithmetic core).

   Behavioral-heavy: one large edge-triggered case over the opcode with
   nested conditions (saturation, pass-through ops that ignore one operand —
   the source of implicit redundancy), plus flag and counter processes. *)
open Rtlir
module B = Builder
open B.Ops

type op =
  | Add
  | Sub
  | And_
  | Or_
  | Xor_
  | Nor
  | Shl_
  | Shr
  | Sar
  | Slt
  | Sltu
  | Mul_
  | Pass_a
  | Neg_a
  | Min
  | Rot

let op_code = function
  | Add -> 0
  | Sub -> 1
  | And_ -> 2
  | Or_ -> 3
  | Xor_ -> 4
  | Nor -> 5
  | Shl_ -> 6
  | Shr -> 7
  | Sar -> 8
  | Slt -> 9
  | Sltu -> 10
  | Mul_ -> 11
  | Pass_a -> 12
  | Neg_a -> 13
  | Min -> 14
  | Rot -> 15

(* Reference semantics used by the functional tests. *)
let reference op a b =
  let open Int64 in
  let sh = to_int (logand b 0x3FL) in
  match op with
  | Add -> add a b
  | Sub -> sub a b
  | And_ -> logand a b
  | Or_ -> logor a b
  | Xor_ -> logxor a b
  | Nor -> lognot (logor a b)
  | Shl_ -> shift_left a sh
  | Shr -> shift_right_logical a sh
  | Sar -> shift_right a sh
  | Slt -> if compare a b < 0 then 1L else 0L
  | Sltu -> if unsigned_compare a b < 0 then 1L else 0L
  | Mul_ -> mul a b
  | Pass_a -> a
  | Neg_a -> neg a
  | Min -> if compare a b < 0 then a else b
  | Rot -> if sh = 0 then a else logor (shift_left a sh) (shift_right_logical a (64 - sh))

let build () =
  let ctx = B.create "alu64" in
  let clk = B.input ctx "clk" 1 in
  let a = B.input ctx "a" 64 in
  let b = B.input ctx "b" 64 in
  let op = B.input ctx "op" 4 in
  let valid = B.input ctx "valid" 1 in
  let result = B.reg ctx "result" 64 in
  let ovf = B.reg ctx "ovf" 1 in
  let count = B.reg ctx "count" 16 in
  let shamt = B.wire ctx "shamt" 7 in
  B.assign ctx shamt (B.zext (B.slice b 5 0) 7);
  let sum = B.wire ctx "sum" 64 in
  B.assign ctx sum (a +: b);
  let diff = B.wire ctx "diff" 64 in
  B.assign ctx diff (a -: b);
  let arm o stmts = (Bits.of_int 4 (op_code o), stmts) in
  B.always_ff ctx ~name:"alu_main" ~clock:clk
    [
      B.when_ valid
        [
          B.switch op
            [
              arm Add
                [
                  result <-- sum;
                  ovf
                  <-- ((B.bit_ a 63 ==: B.bit_ b 63)
                      &: (B.bit_ sum 63 <>: B.bit_ a 63));
                ];
              arm Sub
                [
                  result <-- diff;
                  ovf
                  <-- ((B.bit_ a 63 <>: B.bit_ b 63)
                      &: (B.bit_ diff 63 <>: B.bit_ a 63));
                ];
              arm And_ [ result <-- (a &: b); ovf <-- B.gnd ];
              arm Or_ [ result <-- (a |: b); ovf <-- B.gnd ];
              arm Xor_ [ result <-- (a ^: b); ovf <-- B.gnd ];
              arm Nor [ result <-- ~:(a |: b); ovf <-- B.gnd ];
              arm Shl_ [ result <-- (a <<: shamt); ovf <-- B.gnd ];
              arm Shr [ result <-- (a >>: shamt); ovf <-- B.gnd ];
              arm Sar [ result <-- (a >>+ shamt); ovf <-- B.gnd ];
              arm Slt
                [ result <-- B.zext (a <+ b) 64; ovf <-- B.gnd ];
              arm Sltu
                [ result <-- B.zext (a <: b) 64; ovf <-- B.gnd ];
              arm Mul_ [ result <-- (a *: b); ovf <-- B.gnd ];
              arm Pass_a [ result <-- a; ovf <-- B.gnd ];
              arm Neg_a [ result <-- B.Ops.negate a; ovf <-- B.gnd ];
              arm Min
                [
                  B.if_ (a <+ b) [ result <-- a ] [ result <-- b ];
                  ovf <-- B.gnd;
                ];
            ]
            ~default:
              [
                B.if_ (shamt ==: B.const 7 0)
                  [ result <-- a ]
                  [
                    result
                    <-- ((a <<: shamt) |: (a >>: (B.const 7 64 -: shamt)));
                  ];
                ovf <-- B.gnd;
              ];
          count <-- (count +: B.const 16 1);
        ];
    ];
  (* Result-status process: a second behavioral node tracking flags. *)
  let zero_f = B.wire ctx "zero_f" 1 in
  let neg_f = B.wire ctx "neg_f" 1 in
  B.always_comb ctx ~name:"alu_flags"
    [
      B.Ops.( =: ) zero_f (~:(B.reduce_or result));
      B.Ops.( =: ) neg_f (B.bit_ result 63);
    ];
  let out_result = B.output ctx "out_result" 64 in
  let out_flags = B.output ctx "out_flags" 4 in
  let out_count = B.output ctx "out_count" 16 in
  B.assign ctx out_result result;
  B.assign ctx out_flags
    (B.concat_list [ B.bit_ count 0; ovf; neg_f; zero_f ]);
  B.assign ctx out_count count;
  B.finalize ctx

let workload design ~cycles =
  Bench_circuit.random_workload ~seed:0xA10_64L design ~cycles

let circuit =
  {
    Bench_circuit.name = "alu";
    paper_name = "ALU (64)";
    build;
    paper_cycles = 1500;
    paper_faults = 1182;
    workload;
  }
