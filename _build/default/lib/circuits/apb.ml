(* APB register-file controller (paper benchmark "APB", a communication
   controller from OpenCores).

   An APB master FSM (IDLE/SETUP/ACCESS) driven by a command port, and an
   APB slave with a 16-word register file, one wait state on odd-address
   reads, and a slave-error response for out-of-range addresses.
   Control-dominated: paper Table III reports 74% behavioral-node time and
   70% implicit redundancy. *)
open Rtlir
module B = Builder
open B.Ops

let m_idle = 0
let m_setup = 1
let m_access = 2

let build () =
  let ctx = B.create "apb" in
  let clk = B.input ctx "clk" 1 in
  let cmd_valid = B.input ctx "cmd_valid" 1 in
  let cmd_write = B.input ctx "cmd_write" 1 in
  let cmd_addr = B.input ctx "cmd_addr" 5 in
  let cmd_wdata = B.input ctx "cmd_wdata" 32 in
  (* master state *)
  let mstate = B.reg ctx "mstate" 2 in
  let paddr = B.reg ctx "paddr" 5 in
  let pwrite = B.reg ctx "pwrite" 1 in
  let pwdata = B.reg ctx "pwdata" 32 in
  (* response *)
  let rsp_valid_r = B.reg ctx "rsp_valid_r" 1 in
  let rsp_rdata_r = B.reg ctx "rsp_rdata_r" 32 in
  let rsp_err_r = B.reg ctx "rsp_err_r" 1 in
  (* slave *)
  let regfile = B.ram ctx "regfile" ~width:32 ~size:16 in
  let wait_done = B.reg ctx "wait_done" 1 in
  let st n = B.const 2 n in
  let psel = B.wire ctx "psel" 1 in
  let penable = B.wire ctx "penable" 1 in
  B.assign ctx psel (mstate <>: st m_idle);
  B.assign ctx penable (mstate ==: st m_access);
  let addr_err = B.wire ctx "addr_err" 1 in
  B.assign ctx addr_err (B.bit_ paddr 4);
  (* pready: writes and even-address reads complete immediately; odd-address
     reads take one wait state *)
  let pready = B.wire ctx "pready" 1 in
  B.always_comb ctx ~name:"ready_logic"
    [
      pready =: B.vdd;
      B.when_ (penable &: ~:pwrite)
        [ B.when_ (B.bit_ paddr 0) [ pready =: wait_done ] ];
    ];
  (* slave read mux: a behavioral node that statically depends on the whole
     register file but dynamically reads one word *)
  let prdata = B.wire ctx "prdata" 32 in
  B.always_comb ctx ~name:"slave_read"
    [
      prdata =: B.const 32 0;
      B.when_ (psel &: ~:pwrite)
        [ prdata =: B.read_mem regfile (B.zext (B.slice paddr 3 0) 5) ];
    ];
  (* master FSM *)
  B.always_ff ctx ~name:"master_fsm" ~clock:clk
    [
      rsp_valid_r <-- B.gnd;
      B.switch mstate
        [
          ( Bits.of_int 2 m_idle,
            [
              B.when_ cmd_valid
                [
                  paddr <-- cmd_addr;
                  pwrite <-- cmd_write;
                  pwdata <-- cmd_wdata;
                  mstate <-- st m_setup;
                ];
            ] );
          (Bits.of_int 2 m_setup, [ mstate <-- st m_access ]);
          ( Bits.of_int 2 m_access,
            [
              B.when_ pready
                [
                  rsp_valid_r <-- B.vdd;
                  rsp_err_r <-- addr_err;
                  B.if_ pwrite
                    [ rsp_rdata_r <-- B.const 32 0 ]
                    [ rsp_rdata_r <-- prdata ];
                  mstate <-- st m_idle;
                ];
            ] );
        ]
        ~default:[ mstate <-- st m_idle ];
    ];
  (* slave: register-file write port and wait-state tracking *)
  B.always_ff ctx ~name:"slave" ~clock:clk
    [
      B.if_ (psel &: penable)
        [
          B.when_ (pwrite &: ~:addr_err &: pready)
            [
              B.write_mem regfile (B.zext (B.slice paddr 3 0) 5) pwdata;
            ];
          wait_done <-- B.vdd;
        ]
        [ wait_done <-- B.gnd ];
    ];
  let rsp_valid = B.output ctx "rsp_valid" 1 in
  let rsp_rdata = B.output ctx "rsp_rdata" 32 in
  let rsp_err = B.output ctx "rsp_err" 1 in
  let bus_state = B.output ctx "bus_state" 2 in
  B.assign ctx rsp_valid rsp_valid_r;
  B.assign ctx rsp_rdata rsp_rdata_r;
  B.assign ctx rsp_err rsp_err_r;
  B.assign ctx bus_state mstate;
  B.finalize ctx

(* Commands are issued every 4 cycles: writes fill the register file, reads
   verify it, with occasional out-of-range accesses exercising pslverr. *)
let workload design ~cycles =
  let clock = Design.find_signal design "clk" in
  let cmd_valid = Design.find_signal design "cmd_valid" in
  let cmd_write = Design.find_signal design "cmd_write" in
  let cmd_addr = Design.find_signal design "cmd_addr" in
  let cmd_wdata = Design.find_signal design "cmd_wdata" in
  let drive cycle =
    let phase = cycle mod 4 and n = cycle / 4 in
    if phase = 0 then begin
      let rng = Faultsim.Rng.create (Int64.of_int (0xA9B + (n * 7919))) in
      let write = n mod 3 <> 2 in
      let addr =
        if n mod 11 = 10 then 16 + Faultsim.Rng.int rng 16
        else Faultsim.Rng.int rng 16
      in
      [
        (cmd_valid, Bits.one 1);
        (cmd_write, Bits.of_bool write);
        (cmd_addr, Bits.of_int 5 addr);
        (cmd_wdata, Faultsim.Rng.bits rng 32);
      ]
    end
    else [ (cmd_valid, Bits.zero 1) ]
  in
  { Faultsim.Workload.cycles; clock; drive }

let circuit =
  {
    Bench_circuit.name = "apb";
    paper_name = "APB";
    build;
    paper_cycles = 1200;
    paper_faults = 98;
    workload;
  }
