(* Five-stage pipelined CPU (paper benchmark "MIPS CPU", jmahler's
   mips-cpu): IF | ID | EX | MEM | WB with operand forwarding from EX, MEM
   and WB, a load-use stall, and branches resolved in EX with a two-cycle
   flush. The forwarding units are branchy combinational behavioral nodes. *)
open Rtlir
module B = Builder
open B.Ops
module I = Cpu_isa

let imem_size = 256
let dmem_size = 64

let build_with ~name ~program () =
  let ctx = B.create name in
  let clk = B.input ctx "clk" 1 in
  let pc = B.reg ctx "pc" 8 in
  let halted = B.reg ctx "halted" 1 in
  let retired = B.reg ctx "retired" 32 in
  (* IF/ID *)
  let ifid_valid = B.reg ctx "ifid_valid" 1 in
  let ifid_pc = B.reg ctx "ifid_pc" 8 in
  let ifid_instr = B.reg ctx "ifid_instr" 32 in
  (* ID/EX *)
  let idex_valid = B.reg ctx "idex_valid" 1 in
  let idex_pc = B.reg ctx "idex_pc" 8 in
  let idex_op = B.reg ctx "idex_op" 4 in
  let idex_rd = B.reg ctx "idex_rd" 4 in
  let idex_funct = B.reg ctx "idex_funct" 4 in
  let idex_imm = B.reg ctx "idex_imm" 16 in
  let idex_v1 = B.reg ctx "idex_v1" 32 in
  let idex_v2 = B.reg ctx "idex_v2" 32 in
  (* EX/MEM *)
  let exmem_valid = B.reg ctx "exmem_valid" 1 in
  let exmem_wb_en = B.reg ctx "exmem_wb_en" 1 in
  let exmem_rd = B.reg ctx "exmem_rd" 4 in
  let exmem_alu = B.reg ctx "exmem_alu" 32 in
  let exmem_is_load = B.reg ctx "exmem_is_load" 1 in
  let exmem_mem_we = B.reg ctx "exmem_mem_we" 1 in
  let exmem_addr = B.reg ctx "exmem_addr" 6 in
  let exmem_sdata = B.reg ctx "exmem_sdata" 32 in
  (* MEM/WB *)
  let memwb_valid = B.reg ctx "memwb_valid" 1 in
  let memwb_wb_en = B.reg ctx "memwb_wb_en" 1 in
  let memwb_rd = B.reg ctx "memwb_rd" 4 in
  let memwb_data = B.reg ctx "memwb_data" 32 in
  let regfile = B.ram ctx "regfile" ~width:32 ~size:16 in
  let dmem = B.ram ctx "dmem" ~width:32 ~size:dmem_size in
  let imem = B.rom ctx "imem" (I.rom_of_program program imem_size) in
  (* ID decode fields *)
  let opcode = B.wire ctx "opcode" 4 in
  let rd = B.wire ctx "rd" 4 in
  let rs1 = B.wire ctx "rs1" 4 in
  let rs2 = B.wire ctx "rs2" 4 in
  let imm = B.wire ctx "imm" 16 in
  B.assign ctx opcode (B.slice ifid_instr 31 28);
  B.assign ctx rd (B.slice ifid_instr 27 24);
  B.assign ctx rs1 (B.slice ifid_instr 23 20);
  B.assign ctx rs2 (B.slice ifid_instr 19 16);
  B.assign ctx imm (B.slice ifid_instr 15 0);
  let idex_is_load = B.wire ctx "idex_is_load" 1 in
  let idex_is_store = B.wire ctx "idex_is_store" 1 in
  let idex_wb_en = B.wire ctx "idex_wb_en" 1 in
  B.assign ctx idex_is_load (idex_op ==: B.const 4 I.op_lw);
  B.assign ctx idex_is_store (idex_op ==: B.const 4 I.op_sw);
  B.assign ctx idex_wb_en
    ((idex_op ==: B.const 4 I.op_alu)
    |: ((idex_op <=: B.const 4 I.op_lw) &: (idex_op >=: B.const 4 I.op_addi))
    |: (idex_op ==: B.const 4 I.op_jal));
  (* EX ALU (combinational on ID/EX) *)
  let simm_ex = B.wire ctx "simm_ex" 32 in
  B.assign ctx simm_ex (B.sext idex_imm 32);
  let ex_result = B.wire ctx "ex_result" 32 in
  let ex_taken = B.wire ctx "ex_taken" 1 in
  let ex_halt = B.wire ctx "ex_halt" 1 in
  let sh = B.wire ctx "sh" 6 in
  B.assign ctx sh (B.zext (B.slice idex_v2 4 0) 6);
  let opc n = Bits.of_int 4 n in
  B.always_comb ctx ~name:"ex_alu"
    [
      ex_result =: B.const 32 0;
      ex_taken =: B.gnd;
      ex_halt =: B.gnd;
      B.when_ idex_valid
        [
          B.switch idex_op
            [
              ( opc I.op_alu,
                [
                  B.switch idex_funct
                    [
                      ( Bits.of_int 4 I.f_add,
                        [ ex_result =: (idex_v1 +: idex_v2) ] );
                      ( Bits.of_int 4 I.f_sub,
                        [ ex_result =: (idex_v1 -: idex_v2) ] );
                      ( Bits.of_int 4 I.f_and,
                        [ ex_result =: (idex_v1 &: idex_v2) ] );
                      ( Bits.of_int 4 I.f_or,
                        [ ex_result =: (idex_v1 |: idex_v2) ] );
                      ( Bits.of_int 4 I.f_xor,
                        [ ex_result =: (idex_v1 ^: idex_v2) ] );
                      ( Bits.of_int 4 I.f_slt,
                        [ ex_result =: B.zext (idex_v1 <+ idex_v2) 32 ] );
                      ( Bits.of_int 4 I.f_sltu,
                        [ ex_result =: B.zext (idex_v1 <: idex_v2) 32 ] );
                      ( Bits.of_int 4 I.f_sll,
                        [ ex_result =: (idex_v1 <<: sh) ] );
                      ( Bits.of_int 4 I.f_srl,
                        [ ex_result =: (idex_v1 >>: sh) ] );
                      ( Bits.of_int 4 I.f_sra,
                        [ ex_result =: (idex_v1 >>+ sh) ] );
                      ( Bits.of_int 4 I.f_mul,
                        [ ex_result =: (idex_v1 *: idex_v2) ] );
                    ]
                    ~default:[];
                ] );
              (opc I.op_addi, [ ex_result =: (idex_v1 +: simm_ex) ]);
              ( opc I.op_andi,
                [ ex_result =: (idex_v1 &: B.zext idex_imm 32) ] );
              (opc I.op_ori, [ ex_result =: (idex_v1 |: B.zext idex_imm 32) ]);
              ( opc I.op_xori,
                [ ex_result =: (idex_v1 ^: B.zext idex_imm 32) ] );
              ( opc I.op_lui,
                [ ex_result =: (B.zext idex_imm 32 <<: B.const 5 16) ] );
              (opc I.op_lw, [ ex_result =: (idex_v1 +: simm_ex) ]);
              (opc I.op_sw, [ ex_result =: (idex_v1 +: simm_ex) ]);
              ( opc I.op_beq,
                [ B.when_ (idex_v1 ==: idex_v2) [ ex_taken =: B.vdd ] ] );
              ( opc I.op_bne,
                [ B.when_ (idex_v1 <>: idex_v2) [ ex_taken =: B.vdd ] ] );
              ( opc I.op_blt,
                [ B.when_ (idex_v1 <+ idex_v2) [ ex_taken =: B.vdd ] ] );
              ( opc I.op_jal,
                [
                  ex_result =: B.zext (idex_pc +: B.const 8 1) 32;
                  ex_taken =: B.vdd;
                ] );
              (opc I.op_halt, [ ex_halt =: B.vdd ]);
            ]
            ~default:[];
        ];
    ];
  let br_target = B.wire ctx "br_target" 8 in
  B.assign ctx br_target (B.slice (B.zext idex_pc 32 +: simm_ex) 7 0);
  (* MEM stage combinational read *)
  let mem_rdata = B.wire ctx "mem_rdata" 32 in
  B.assign ctx mem_rdata (B.read_mem dmem (B.zext exmem_addr 6));
  let mem_result = B.wire ctx "mem_result" 32 in
  B.assign ctx mem_result (B.mux exmem_is_load mem_rdata exmem_alu);
  (* forwarding at ID read time: EX > MEM > WB > regfile *)
  let forward name rs =
    let v = B.wire ctx name 32 in
    B.always_comb ctx ~name:(name ^ "_fw")
      [
        v =: B.read_mem regfile (B.zext rs 5);
        B.when_
          (memwb_valid &: memwb_wb_en &: (memwb_rd ==: rs))
          [ v =: memwb_data ];
        B.when_
          (exmem_valid &: exmem_wb_en &: (exmem_rd ==: rs))
          [ v =: mem_result ];
        B.when_
          (idex_valid &: idex_wb_en &: (idex_rd ==: rs)
          &: ~:idex_is_load)
          [ v =: ex_result ];
        B.when_ (rs ==: B.const 4 0) [ v =: B.const 32 0 ];
      ];
    v
  in
  let id_v1 = forward "id_v1" rs1 in
  let id_v2 = forward "id_v2" rs2 in
  (* load-use stall *)
  let stall = B.wire ctx "stall" 1 in
  B.assign ctx stall
    (ifid_valid &: idex_valid &: idex_is_load
    &: (idex_rd <>: B.const 4 0)
    &: ((idex_rd ==: rs1) |: (idex_rd ==: rs2)));
  let flush = B.wire ctx "flush" 1 in
  B.assign ctx flush ex_taken;
  (* IF stage *)
  B.always_ff ctx ~name:"if_stage" ~clock:clk
    [
      B.when_ ex_halt [ halted <-- B.vdd ];
      B.if_
        (halted |: ex_halt)
        [ ifid_valid <-- B.gnd ]
        [
          B.if_ flush
            [ pc <-- br_target; ifid_valid <-- B.gnd ]
            [
              B.when_ (~:stall)
                [
                  pc <-- (pc +: B.const 8 1);
                  ifid_valid <-- B.vdd;
                  ifid_pc <-- pc;
                  ifid_instr <-- B.read_mem imem pc;
                ];
            ];
        ];
    ];
  (* ID stage *)
  B.always_ff ctx ~name:"id_stage" ~clock:clk
    [
      B.if_
        (flush |: stall |: ~:ifid_valid |: halted)
        [ idex_valid <-- B.gnd ]
        [
          idex_valid <-- B.vdd;
          idex_pc <-- ifid_pc;
          idex_op <-- opcode;
          idex_rd <-- rd;
          idex_funct <-- B.slice imm 3 0;
          idex_imm <-- imm;
          idex_v1 <-- id_v1;
          idex_v2 <-- id_v2;
        ];
    ];
  (* EX stage *)
  B.always_ff ctx ~name:"ex_stage" ~clock:clk
    [
      exmem_valid <-- (idex_valid &: ~:ex_halt);
      exmem_wb_en <-- idex_wb_en;
      exmem_rd <-- idex_rd;
      exmem_alu <-- ex_result;
      exmem_is_load <-- idex_is_load;
      exmem_mem_we <-- idex_is_store;
      exmem_addr <-- B.slice (idex_v1 +: simm_ex) 5 0;
      exmem_sdata <-- idex_v2;
    ];
  (* MEM stage: data-memory write and MEM/WB capture *)
  B.always_ff ctx ~name:"mem_stage" ~clock:clk
    [
      memwb_valid <-- exmem_valid;
      memwb_wb_en <-- exmem_wb_en;
      memwb_rd <-- exmem_rd;
      memwb_data <-- mem_result;
      B.when_ (exmem_valid &: exmem_mem_we)
        [ B.write_mem dmem (B.zext exmem_addr 6) exmem_sdata ];
    ];
  (* WB stage *)
  B.always_ff ctx ~name:"wb_stage" ~clock:clk
    [
      B.when_ memwb_valid
        [
          retired <-- (retired +: B.const 32 1);
          B.when_
            (memwb_wb_en &: (memwb_rd <>: B.const 4 0))
            [ B.write_mem regfile (B.zext memwb_rd 5) memwb_data ];
        ];
    ];
  let out name e w =
    let o = B.output ctx name w in
    B.assign ctx o e
  in
  let probe =
    Csr_unit.add ctx ~clock:clk ~pc
      ~bus_valid:(exmem_valid &: exmem_mem_we)
      ~bus_addr:exmem_addr ~bus_data:exmem_sdata
  in
  out "pc_out" pc 8;
  out "retired_out" (B.slice retired 15 0) 16;
  out "mem_bus"
    (B.concat_list
       [ exmem_valid &: exmem_mem_we; exmem_addr; exmem_sdata ])
    39;
  out "csr_probe_out" probe 32;
  out "halted_out" halted 1;
  B.finalize ctx

let build () = build_with ~name:"mips_cpu" ~program:I.sort_program ()

let circuit =
  {
    Bench_circuit.name = "mips";
    paper_name = "MIPS CPU";
    build;
    paper_cycles = 1200;
    paper_faults = 1346;
    workload =
      (fun design ~cycles ->
        Bench_circuit.random_workload ~seed:0x3195L design ~cycles);
  }
