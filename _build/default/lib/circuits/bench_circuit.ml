open Rtlir
open Faultsim

type t = {
  name : string;
  paper_name : string;
  build : unit -> Design.t;
  paper_cycles : int;
  paper_faults : int;
  workload : Design.t -> cycles:int -> Workload.t;
}

let cycles_of c ~scale =
  max 50 (int_of_float (float_of_int c.paper_cycles *. scale))

let faults_of c ~scale =
  max 20 (int_of_float (float_of_int c.paper_faults *. scale))

let random_workload ?(directed = [||]) ~seed design ~cycles =
  let clock = Design.find_signal design "clk" in
  let inputs =
    List.filter_map
      (fun id ->
        if id = clock then None
        else Some (id, Design.signal_width design id))
      design.Design.inputs
  in
  {
    Workload.cycles;
    clock;
    drive = Workload.random_drive ~seed ~inputs ~directed ();
  }

let instantiate c ~scale =
  let design = c.build () in
  let graph = Elaborate.build design in
  let workload = c.workload design ~cycles:(cycles_of c ~scale) in
  let faults =
    Fault.generate ~max_faults:(faults_of c ~scale) ~seed:0x5EEDL design
  in
  (design, graph, workload, faults)
