lib/circuits/alu64.ml: Bench_circuit Bits Builder Int64 Rtlir
