lib/circuits/bench_circuit.ml: Design Elaborate Fault Faultsim List Rtlir Workload
