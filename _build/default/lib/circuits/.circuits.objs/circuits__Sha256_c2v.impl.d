lib/circuits/sha256_c2v.ml: Array Bench_circuit Builder Char List Printf Rtlir Sha256_core
