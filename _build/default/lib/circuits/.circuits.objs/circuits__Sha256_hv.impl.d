lib/circuits/sha256_hv.ml: Array Bench_circuit Bits Builder Char List Printf Rtlir Sha256_core
