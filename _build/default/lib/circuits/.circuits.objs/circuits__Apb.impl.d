lib/circuits/apb.ml: Bench_circuit Bits Builder Design Faultsim Int64 Rtlir
