lib/circuits/fpu32.ml: Bench_circuit Builder Rtlir
