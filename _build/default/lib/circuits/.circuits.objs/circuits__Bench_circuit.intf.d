lib/circuits/bench_circuit.mli: Bits Design Elaborate Fault Faultsim Rtlir Workload
