lib/circuits/mips_cpu.ml: Bench_circuit Bits Builder Cpu_isa Csr_unit Rtlir
