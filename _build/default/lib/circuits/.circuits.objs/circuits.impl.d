lib/circuits/circuits.ml: Alu64 Apb Bench_circuit Conv_acc Cpu_isa Csr_unit Fpu32 List Mips_cpu Picorv32 Riscv_mini Sha256_c2v Sha256_core Sha256_hv Sodor
