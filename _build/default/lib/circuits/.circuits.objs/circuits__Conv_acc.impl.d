lib/circuits/conv_acc.ml: Array Bench_circuit Bits Builder Design Faultsim Int64 Printf Rtlir
