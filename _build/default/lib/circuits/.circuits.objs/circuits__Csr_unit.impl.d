lib/circuits/csr_unit.ml: Bits Builder Rtlir
