lib/circuits/riscv_mini.ml: Bench_circuit Bits Builder Cpu_isa Csr_unit Rtlir
