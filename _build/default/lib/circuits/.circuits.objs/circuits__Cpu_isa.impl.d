lib/circuits/cpu_isa.ml: Array Bits Int64 Rtlir
