lib/circuits/sha256_core.ml: Array Bits Builder Design Faultsim Int64 Rtlir
