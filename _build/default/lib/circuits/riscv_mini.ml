(* Three-stage pipelined CPU (paper benchmark "RISCV Mini", ucb-bar's
   riscv-mini): Fetch | Execute | Writeback with full bypassing, branch
   resolution in X (one-cycle flush), and store commit in W so that all
   architectural state retires in order. *)
open Rtlir
module B = Builder
open B.Ops
module I = Cpu_isa

let imem_size = 256
let dmem_size = 64

let build_with ~name ~program () =
  let ctx = B.create name in
  let clk = B.input ctx "clk" 1 in
  (* fetch *)
  let pc = B.reg ctx "pc" 8 in
  let fx_valid = B.reg ctx "fx_valid" 1 in
  let fx_pc = B.reg ctx "fx_pc" 8 in
  let fx_instr = B.reg ctx "fx_instr" 32 in
  (* execute/writeback pipeline register *)
  let xw_valid = B.reg ctx "xw_valid" 1 in
  let xw_wb_en = B.reg ctx "xw_wb_en" 1 in
  let xw_rd = B.reg ctx "xw_rd" 4 in
  let xw_data = B.reg ctx "xw_data" 32 in
  let xw_mem_we = B.reg ctx "xw_mem_we" 1 in
  let xw_mem_addr = B.reg ctx "xw_mem_addr" 6 in
  let xw_mem_data = B.reg ctx "xw_mem_data" 32 in
  let halted = B.reg ctx "halted" 1 in
  let retired = B.reg ctx "retired" 32 in
  let regfile = B.ram ctx "regfile" ~width:32 ~size:16 in
  let dmem = B.ram ctx "dmem" ~width:32 ~size:dmem_size in
  let imem = B.rom ctx "imem" (I.rom_of_program program imem_size) in
  (* decode fields of the instruction in X *)
  let opcode = B.wire ctx "opcode" 4 in
  let rd = B.wire ctx "rd" 4 in
  let rs1 = B.wire ctx "rs1" 4 in
  let rs2 = B.wire ctx "rs2" 4 in
  let imm = B.wire ctx "imm" 16 in
  let simm = B.wire ctx "simm" 32 in
  B.assign ctx opcode (B.slice fx_instr 31 28);
  B.assign ctx rd (B.slice fx_instr 27 24);
  B.assign ctx rs1 (B.slice fx_instr 23 20);
  B.assign ctx rs2 (B.slice fx_instr 19 16);
  B.assign ctx imm (B.slice fx_instr 15 0);
  B.assign ctx simm (B.sext imm 32);
  (* register read with bypass from the instruction in W *)
  let bypass name rs =
    let v = B.wire ctx name 32 in
    B.always_comb ctx ~name:(name ^ "_bp")
      [
        v =: B.read_mem regfile (B.zext rs 5);
        B.when_ (rs ==: B.const 4 0) [ v =: B.const 32 0 ];
        B.when_
          (xw_valid &: xw_wb_en &: (xw_rd ==: rs) &: (rs <>: B.const 4 0))
          [ v =: xw_data ];
      ];
    v
  in
  let rs1val = bypass "rs1val" rs1 in
  let rs2val = bypass "rs2val" rs2 in
  let pc_plus1 = B.wire ctx "pc_plus1" 8 in
  B.assign ctx pc_plus1 (pc +: B.const 8 1);
  let br_target = B.wire ctx "br_target" 8 in
  B.assign ctx br_target (B.slice (B.zext fx_pc 32 +: simm) 7 0);
  let mem_addr = B.wire ctx "mem_addr" 6 in
  B.assign ctx mem_addr (B.slice (rs1val +: simm) 5 0);
  (* load value with store-to-load bypass from W *)
  let load_val = B.wire ctx "load_val" 32 in
  B.always_comb ctx ~name:"load_bp"
    [
      load_val =: B.read_mem dmem (B.zext mem_addr 6);
      B.when_
        (xw_valid &: xw_mem_we &: (xw_mem_addr ==: mem_addr))
        [ load_val =: xw_mem_data ];
    ];
  (* execute *)
  let x_wb_en = B.wire ctx "x_wb_en" 1 in
  let x_data = B.wire ctx "x_data" 32 in
  let x_mem_we = B.wire ctx "x_mem_we" 1 in
  let x_taken = B.wire ctx "x_taken" 1 in
  let x_halt = B.wire ctx "x_halt" 1 in
  let opc n = Bits.of_int 4 n in
  let sh = B.wire ctx "sh" 6 in
  B.always_comb ctx ~name:"execute"
    [
      x_wb_en =: B.gnd;
      x_data =: B.const 32 0;
      x_mem_we =: B.gnd;
      x_taken =: B.gnd;
      x_halt =: B.gnd;
      sh =: B.zext (B.slice rs2val 4 0) 6;
      B.when_ fx_valid
        [
          B.switch opcode
            [
              ( opc I.op_alu,
                [
                  x_wb_en =: B.vdd;
                  B.switch (B.slice imm 3 0)
                    [
                      (Bits.of_int 4 I.f_add, [ x_data =: (rs1val +: rs2val) ]);
                      (Bits.of_int 4 I.f_sub, [ x_data =: (rs1val -: rs2val) ]);
                      (Bits.of_int 4 I.f_and, [ x_data =: (rs1val &: rs2val) ]);
                      (Bits.of_int 4 I.f_or, [ x_data =: (rs1val |: rs2val) ]);
                      (Bits.of_int 4 I.f_xor, [ x_data =: (rs1val ^: rs2val) ]);
                      ( Bits.of_int 4 I.f_slt,
                        [ x_data =: B.zext (rs1val <+ rs2val) 32 ] );
                      ( Bits.of_int 4 I.f_sltu,
                        [ x_data =: B.zext (rs1val <: rs2val) 32 ] );
                      (Bits.of_int 4 I.f_sll, [ x_data =: (rs1val <<: sh) ]);
                      (Bits.of_int 4 I.f_srl, [ x_data =: (rs1val >>: sh) ]);
                      (Bits.of_int 4 I.f_sra, [ x_data =: (rs1val >>+ sh) ]);
                      (Bits.of_int 4 I.f_mul, [ x_data =: (rs1val *: rs2val) ]);
                    ]
                    ~default:[ x_wb_en =: B.gnd ];
                ] );
              (opc I.op_addi, [ x_wb_en =: B.vdd; x_data =: (rs1val +: simm) ]);
              ( opc I.op_andi,
                [ x_wb_en =: B.vdd; x_data =: (rs1val &: B.zext imm 32) ] );
              ( opc I.op_ori,
                [ x_wb_en =: B.vdd; x_data =: (rs1val |: B.zext imm 32) ] );
              ( opc I.op_xori,
                [ x_wb_en =: B.vdd; x_data =: (rs1val ^: B.zext imm 32) ] );
              ( opc I.op_lui,
                [
                  x_wb_en =: B.vdd;
                  x_data =: (B.zext imm 32 <<: B.const 5 16);
                ] );
              (opc I.op_lw, [ x_wb_en =: B.vdd; x_data =: load_val ]);
              (opc I.op_sw, [ x_mem_we =: B.vdd ]);
              ( opc I.op_beq,
                [ B.when_ (rs1val ==: rs2val) [ x_taken =: B.vdd ] ] );
              ( opc I.op_bne,
                [ B.when_ (rs1val <>: rs2val) [ x_taken =: B.vdd ] ] );
              ( opc I.op_blt,
                [ B.when_ (rs1val <+ rs2val) [ x_taken =: B.vdd ] ] );
              ( opc I.op_jal,
                [
                  x_wb_en =: B.vdd;
                  x_data =: B.zext (fx_pc +: B.const 8 1) 32;
                  x_taken =: B.vdd;
                ] );
              (opc I.op_halt, [ x_halt =: B.vdd ]);
            ]
            ~default:[];
        ];
    ];
  (* fetch stage: pc update and F/X capture, with branch flush *)
  B.always_ff ctx ~name:"fetch" ~clock:clk
    [
      B.if_
        (halted |: x_halt)
        [ fx_valid <-- B.gnd ]
        [
          B.if_ x_taken
            [ pc <-- br_target; fx_valid <-- B.gnd ]
            [
              pc <-- pc_plus1;
              fx_valid <-- B.vdd;
              fx_pc <-- pc;
              fx_instr <-- B.read_mem imem pc;
            ];
        ];
      B.when_ x_halt [ halted <-- B.vdd ];
    ];
  (* X/W capture *)
  B.always_ff ctx ~name:"xstage" ~clock:clk
    [
      xw_valid <-- (fx_valid &: ~:x_halt);
      xw_wb_en <-- x_wb_en;
      xw_rd <-- rd;
      xw_data <-- x_data;
      xw_mem_we <-- x_mem_we;
      xw_mem_addr <-- mem_addr;
      xw_mem_data <-- rs2val;
    ];
  (* writeback: commits registers, stores and the retire counter *)
  B.always_ff ctx ~name:"writeback" ~clock:clk
    [
      B.when_ xw_valid
        [
          retired <-- (retired +: B.const 32 1);
          B.when_
            (xw_wb_en &: (xw_rd <>: B.const 4 0))
            [ B.write_mem regfile (B.zext xw_rd 5) xw_data ];
          B.when_ xw_mem_we
            [ B.write_mem dmem (B.zext xw_mem_addr 6) xw_mem_data ];
        ];
    ];
  let out name e w =
    let o = B.output ctx name w in
    B.assign ctx o e
  in
  let probe =
    Csr_unit.add ctx ~clock:clk ~pc
      ~bus_valid:(xw_valid &: xw_mem_we)
      ~bus_addr:xw_mem_addr ~bus_data:xw_mem_data
  in
  out "pc_out" pc 8;
  out "retired_out" (B.slice retired 15 0) 16;
  out "mem_bus"
    (B.concat_list
       [ xw_valid &: xw_mem_we; xw_mem_addr; xw_mem_data ])
    39;
  out "csr_probe_out" probe 32;
  out "halted_out" halted 1;
  B.finalize ctx

let build () = build_with ~name:"riscv_mini" ~program:I.gcd_program ()

let circuit =
  {
    Bench_circuit.name = "riscv_mini";
    paper_name = "RISCV Mini";
    build;
    paper_cycles = 6000;
    paper_faults = 526;
    workload =
      (fun design ~cycles ->
        Bench_circuit.random_workload ~seed:0x3157L design ~cycles);
  }
