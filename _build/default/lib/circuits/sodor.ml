(* Single-stage CPU (paper benchmark "Sodor Core", ucb-bar's 1-stage).

   Fetch, decode, execute and writeback all happen in one cycle: a big
   combinational behavioral node computes the ALU result, branch target and
   memory controls; an edge-triggered node commits architectural state and
   drives trace outputs (the observation points). *)
open Rtlir
module B = Builder
open B.Ops
module I = Cpu_isa

let imem_size = 256
let dmem_size = 64

let build_with ~name ~program () =
  let ctx = B.create name in
  let clk = B.input ctx "clk" 1 in
  let pc = B.reg ctx "pc" 8 in
  let halted = B.reg ctx "halted" 1 in
  let retired = B.reg ctx "retired" 32 in
  let regfile = B.ram ctx "regfile" ~width:32 ~size:16 in
  let dmem = B.ram ctx "dmem" ~width:32 ~size:dmem_size in
  let imem = B.rom ctx "imem" (I.rom_of_program program imem_size) in
  let instr = B.wire ctx "instr" 32 in
  B.assign ctx instr (B.read_mem imem pc);
  let opcode = B.wire ctx "opcode" 4 in
  let rd = B.wire ctx "rd" 4 in
  let rs1 = B.wire ctx "rs1" 4 in
  let rs2 = B.wire ctx "rs2" 4 in
  let imm = B.wire ctx "imm" 16 in
  B.assign ctx opcode (B.slice instr 31 28);
  B.assign ctx rd (B.slice instr 27 24);
  B.assign ctx rs1 (B.slice instr 23 20);
  B.assign ctx rs2 (B.slice instr 19 16);
  B.assign ctx imm (B.slice instr 15 0);
  let simm = B.wire ctx "simm" 32 in
  B.assign ctx simm (B.sext imm 32);
  let rs1val = B.wire ctx "rs1val" 32 in
  let rs2val = B.wire ctx "rs2val" 32 in
  B.assign ctx rs1val
    (B.mux (rs1 ==: B.const 4 0) (B.const 32 0)
       (B.read_mem regfile (B.zext rs1 5)));
  B.assign ctx rs2val
    (B.mux (rs2 ==: B.const 4 0) (B.const 32 0)
       (B.read_mem regfile (B.zext rs2 5)));
  let pc_plus1 = B.wire ctx "pc_plus1" 8 in
  B.assign ctx pc_plus1 (pc +: B.const 8 1);
  let pc_br = B.wire ctx "pc_br" 8 in
  B.assign ctx pc_br (B.slice (B.zext pc 32 +: simm) 7 0);
  let mem_addr = B.wire ctx "mem_addr" 6 in
  B.assign ctx mem_addr (B.slice (rs1val +: simm) 5 0);
  let load_val = B.wire ctx "load_val" 32 in
  B.assign ctx load_val (B.read_mem dmem (B.zext mem_addr 6));
  (* decode + execute *)
  let wb_en = B.wire ctx "wb_en" 1 in
  let wb_data = B.wire ctx "wb_data" 32 in
  let next_pc = B.wire ctx "next_pc" 8 in
  let mem_we = B.wire ctx "mem_we" 1 in
  let do_halt = B.wire ctx "do_halt" 1 in
  let opc n = Bits.of_int 4 n in
  let sh = B.wire ctx "sh" 6 in
  B.always_comb ctx ~name:"execute"
    [
      wb_en =: B.gnd;
      wb_data =: B.const 32 0;
      next_pc =: pc_plus1;
      mem_we =: B.gnd;
      do_halt =: B.gnd;
      sh =: B.zext (B.slice rs2val 4 0) 6;
      B.switch opcode
        [
          ( opc I.op_alu,
            [
              wb_en =: B.vdd;
              B.switch (B.slice imm 3 0)
                [
                  (Bits.of_int 4 I.f_add, [ wb_data =: (rs1val +: rs2val) ]);
                  (Bits.of_int 4 I.f_sub, [ wb_data =: (rs1val -: rs2val) ]);
                  (Bits.of_int 4 I.f_and, [ wb_data =: (rs1val &: rs2val) ]);
                  (Bits.of_int 4 I.f_or, [ wb_data =: (rs1val |: rs2val) ]);
                  (Bits.of_int 4 I.f_xor, [ wb_data =: (rs1val ^: rs2val) ]);
                  ( Bits.of_int 4 I.f_slt,
                    [ wb_data =: B.zext (rs1val <+ rs2val) 32 ] );
                  ( Bits.of_int 4 I.f_sltu,
                    [ wb_data =: B.zext (rs1val <: rs2val) 32 ] );
                  (Bits.of_int 4 I.f_sll, [ wb_data =: (rs1val <<: sh) ]);
                  (Bits.of_int 4 I.f_srl, [ wb_data =: (rs1val >>: sh) ]);
                  (Bits.of_int 4 I.f_sra, [ wb_data =: (rs1val >>+ sh) ]);
                  (Bits.of_int 4 I.f_mul, [ wb_data =: (rs1val *: rs2val) ]);
                ]
                ~default:[ wb_en =: B.gnd ];
            ] );
          (opc I.op_addi, [ wb_en =: B.vdd; wb_data =: (rs1val +: simm) ]);
          ( opc I.op_andi,
            [ wb_en =: B.vdd; wb_data =: (rs1val &: B.zext imm 32) ] );
          ( opc I.op_ori,
            [ wb_en =: B.vdd; wb_data =: (rs1val |: B.zext imm 32) ] );
          ( opc I.op_xori,
            [ wb_en =: B.vdd; wb_data =: (rs1val ^: B.zext imm 32) ] );
          ( opc I.op_lui,
            [ wb_en =: B.vdd; wb_data =: (B.zext imm 32 <<: B.const 5 16) ] );
          (opc I.op_lw, [ wb_en =: B.vdd; wb_data =: load_val ]);
          (opc I.op_sw, [ mem_we =: B.vdd ]);
          ( opc I.op_beq,
            [ B.when_ (rs1val ==: rs2val) [ next_pc =: pc_br ] ] );
          ( opc I.op_bne,
            [ B.when_ (rs1val <>: rs2val) [ next_pc =: pc_br ] ] );
          ( opc I.op_blt,
            [ B.when_ (rs1val <+ rs2val) [ next_pc =: pc_br ] ] );
          ( opc I.op_jal,
            [
              wb_en =: B.vdd;
              wb_data =: B.zext pc_plus1 32;
              next_pc =: pc_br;
            ] );
          (opc I.op_halt, [ do_halt =: B.vdd; next_pc =: pc ]);
        ]
        ~default:[];
    ];
  (* commit *)
  B.always_ff ctx ~name:"commit" ~clock:clk
    [
      B.when_ (~:halted)
        [
          pc <-- next_pc;
          halted <-- do_halt;
          retired <-- (retired +: B.const 32 1);
          B.when_
            (wb_en &: (rd <>: B.const 4 0))
            [ B.write_mem regfile (B.zext rd 5) wb_data ];
          B.when_ mem_we [ B.write_mem dmem (B.zext mem_addr 6) rs2val ];
        ];
    ];
  let out name e w =
    let o = B.output ctx name w in
    B.assign ctx o e
  in
  (* Observation points model the core's real interface: program counter,
     the data-memory bus, and the halt line — register writebacks are not
     directly observable, as on the original cores. *)
  let probe =
    Csr_unit.add ctx ~clock:clk ~pc
      ~bus_valid:(mem_we &: ~:halted)
      ~bus_addr:mem_addr ~bus_data:rs2val
  in
  out "pc_out" (B.zext pc 8) 8;
  out "retired_out" (B.slice retired 15 0) 16;
  out "mem_bus" (B.concat_list [ mem_we &: ~:halted; mem_addr; rs2val ]) 39;
  out "csr_probe_out" probe 32;
  out "halted_out" halted 1;
  B.finalize ctx

let build () = build_with ~name:"sodor" ~program:I.fib_program ()

let circuit =
  {
    Bench_circuit.name = "sodor";
    paper_name = "Sodor Core";
    build;
    paper_cycles = 3000;
    paper_faults = 1252;
    workload =
      (fun design ~cycles ->
        Bench_circuit.random_workload ~seed:0x50D0L design ~cycles);
  }
