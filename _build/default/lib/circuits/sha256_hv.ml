(* SHA-256, handwritten-Verilog style (paper benchmark "SHA256_HV").

   The round datapath lives in one big combinational behavioral node and the
   state machine in one edge-triggered behavioral node — the style of
   secworks/sha256. Behavioral-node time dominates, and most redundancy is
   implicit (paper Table III: 86% implicit). *)
open Rtlir
module B = Builder
open B.Ops
module C = Sha256_core

let build () =
  let ctx = B.create "sha256_hv" in
  let clk = B.input ctx "clk" 1 in
  let start = B.input ctx "start" 1 in
  let word_valid = B.input ctx "word_valid" 1 in
  let word_in = B.input ctx "word_in" 32 in
  let read_addr = B.input ctx "read_addr" 5 in
  let state = B.reg ctx "state" 3 in
  let t = B.reg ctx "t" 7 in
  let regs = Array.init 8 (fun i -> B.reg ctx (Printf.sprintf "r%c" (Char.chr (97 + i))) 32) in
  let hh = Array.init 8 (fun i -> B.reg ctx (Printf.sprintf "hh%d" i) 32) in
  let dig = Array.init 8 (fun i -> B.reg ctx (Printf.sprintf "dig%d" i) 32) in
  let done_r = B.reg ctx "done_r" 1 in
  let w_mem = B.ram ctx "w_mem" ~width:32 ~size:16 in
  let k_rom = B.rom ctx "k_rom" (C.k_rom ()) in
  let ra = regs.(0)
  and rb = regs.(1)
  and rc = regs.(2)
  and rd = regs.(3)
  and re_ = regs.(4)
  and rf = regs.(5)
  and rg = regs.(6)
  and rh = regs.(7) in
  (* Handwritten-style combinational behavioral node: the whole round
     datapath with branches, computed with blocking assignments. *)
  let w_t = B.wire ctx "w_t" 32 in
  let t1 = B.wire ctx "t1" 32 in
  let t2 = B.wire ctx "t2" 32 in
  let rdw i = B.read_mem w_mem (t +: B.const 7 i) in
  B.always_comb ctx ~name:"round_comb"
    [
      w_t
      =: (C.small_sigma1 (rdw 14) +: rdw 9 +: C.small_sigma0 (rdw 1) +: rdw 0);
      B.if_
        (t <: B.const 7 16)
        [ w_t =: rdw 0 ]
        [];
      t1
      =: (rh +: C.big_sigma1 re_ +: C.ch re_ rf rg
          +: B.read_mem k_rom (B.slice t 5 0)
          +: w_t);
      t2 =: (C.big_sigma0 ra +: C.maj ra rb rc);
    ];
  let st n = Bits.of_int 3 n in
  B.always_ff ctx ~name:"sha_fsm" ~clock:clk
    [
      B.switch state
        [
          ( st C.s_idle,
            [
              done_r <-- B.gnd;
              B.when_ start
                ([
                   state <-- B.constb (st C.s_load);
                   t <-- B.const 7 0;
                 ]
                @ List.concat
                    (List.init 8 (fun i ->
                         [
                           regs.(i) <-- B.const 32 C.h_init.(i);
                           hh.(i) <-- B.const 32 C.h_init.(i);
                         ])));
            ] );
          ( st C.s_load,
            [
              B.when_ word_valid
                [
                  B.write_mem w_mem (B.zext (B.slice t 3 0) 7) word_in;
                  B.if_
                    (t ==: B.const 7 15)
                    [ state <-- B.constb (st C.s_rounds); t <-- B.const 7 0 ]
                    [ t <-- (t +: B.const 7 1) ];
                ];
            ] );
          ( st C.s_rounds,
            [
              rh <-- rg;
              rg <-- rf;
              rf <-- re_;
              re_ <-- (rd +: t1);
              rd <-- rc;
              rc <-- rb;
              rb <-- ra;
              ra <-- (t1 +: t2);
              B.write_mem w_mem (B.zext (B.slice t 3 0) 7) w_t;
              B.if_
                (t ==: B.const 7 63)
                [ state <-- B.constb (st C.s_final) ]
                [ t <-- (t +: B.const 7 1) ];
            ] );
          ( st C.s_final,
            List.init 8 (fun i -> hh.(i) <-- (hh.(i) +: regs.(i)))
            @ List.init 8 (fun i -> dig.(i) <-- (hh.(i) +: regs.(i)))
            @ [ state <-- B.constb (st C.s_done) ] );
          (st C.s_done, [ done_r <-- B.vdd; state <-- B.constb (st C.s_idle) ]);
        ]
        ~default:[ state <-- B.constb (st C.s_idle) ];
    ];
  (* API read mux, as on the secworks core: one behavioral node statically
     reads the whole register map but dynamically only the polled word. *)
  let api_rdata = B.wire ctx "api_rdata" 32 in
  B.always_comb ctx ~name:"api_read"
    [
      B.switch (B.slice read_addr 4 3)
        [
          ( Bits.of_int 2 0,
            [
              B.switch (B.slice read_addr 2 0)
                (List.init 8 (fun i ->
                     (Bits.of_int 3 i, [ api_rdata =: dig.(i) ])))
                ~default:[ api_rdata =: B.const 32 0 ];
            ] );
          ( Bits.of_int 2 1,
            [
              api_rdata
              =: B.concat_list
                   [
                     B.const 29 0;
                     done_r;
                     state <>: B.constb (st C.s_idle);
                     B.reduce_or t;
                   ];
            ] );
        ]
        ~default:
          [ api_rdata =: B.read_mem w_mem (B.zext (B.slice read_addr 3 0) 7) ];
    ];
  let done_o = B.output ctx "done" 1 in
  B.assign ctx done_o done_r;
  let rdata_o = B.output ctx "rdata" 32 in
  B.assign ctx rdata_o api_rdata;
  let busy = B.output ctx "busy" 1 in
  B.assign ctx busy (state <>: B.constb (st C.s_idle));
  B.finalize ctx

let circuit =
  {
    Bench_circuit.name = "sha256_hv";
    paper_name = "SHA256_HV";
    build;
    paper_cycles = 2600;
    paper_faults = 660;
    workload = (fun design ~cycles -> C.workload ~seed:0x5AAL design ~cycles);
  }
