(** Registry entry for one benchmark circuit (paper Table II row).

    Each circuit provides its design, its testbench (the paper uses
    developer-provided or hand-written stimuli; ours are directed sequences
    plus seeded random vectors), and the paper's stimulus/fault-count
    parameters so campaigns can be scaled relative to them. *)

open Rtlir
open Faultsim

type t = {
  name : string;  (** short identifier used on the CLI *)
  paper_name : string;  (** the row label in Table II *)
  build : unit -> Design.t;
  paper_cycles : int;  (** #Stimulus from Table II *)
  paper_faults : int;  (** #Faults from Table II *)
  workload : Design.t -> cycles:int -> Workload.t;
}

(** [scaled c ~scale] — cycle and fault budgets scaled from the paper's
    values (at least 50 cycles / 20 faults). *)
val cycles_of : t -> scale:float -> int

val faults_of : t -> scale:float -> int

(** Build design + graph + workload + fault list in one go. *)
val instantiate :
  t -> scale:float -> Design.t * Elaborate.t * Workload.t * Fault.t array

(** Workload from seeded random vectors over all non-clock inputs, with an
    optional directed prefix. The clock input must be named "clk". *)
val random_workload :
  ?directed:(int * Bits.t) list array ->
  seed:int64 ->
  Design.t ->
  cycles:int ->
  Workload.t
