(* Small CSR / exception side-unit shared by the processor benchmarks.

   Real cores carry control/status logic that statically reads wide buses
   but is dynamically quiescent — exception captures, counters, scratch
   CSRs. Fault effects that reach these data inputs without triggering the
   enabling conditions are exactly the implicit redundancy the paper
   measures. The unit watches a memory bus: misaligned-ish accesses (an
   address whose low two bits are 11) capture an "exception" record. *)
open Rtlir
module B = Builder
open B.Ops

(* [add ctx ~clock ~pc ~bus_valid ~bus_addr ~bus_data] returns the signal to
   expose as the csr probe output. *)
let add ctx ~clock ~pc ~bus_valid ~bus_addr ~bus_data =
  let cycle_csr = B.reg ctx "csr_cycle" 16 in
  let instret = B.reg ctx "csr_instret" 16 in
  let mepc = B.reg ctx "csr_mepc" 8 in
  let mcause = B.reg ctx "csr_mcause" 4 in
  let mtval = B.reg ctx "csr_mtval" 32 in
  let mscratch = B.reg ctx "csr_mscratch" 32 in
  let mtvec = B.reg ctx "csr_mtvec" 32 in
  let mstatus = B.reg ctx "csr_mstatus" 8 in
  let excnt = B.reg ctx "csr_excnt" 8 in
  let dump_r = B.reg ctx "csr_dump" 32 in
  let exc = B.wire ctx "csr_exc" 1 in
  B.assign ctx exc
    (bus_valid &: (B.slice bus_addr 1 0 ==: B.const 2 3));
  (* CSR writes are driven by stores into a small magic window, as the test
     programs rarely do *)
  let csr_we = B.wire ctx "csr_we" 1 in
  B.assign ctx csr_we
    (bus_valid &: (B.slice bus_addr 5 2 ==: B.const 4 0xE));
  let dump = B.wire ctx "csr_dump_en" 1 in
  B.assign ctx dump
    (bus_valid &: (B.slice bus_addr 5 0 ==: B.const 6 0x3D));
  B.always_ff ctx ~name:"csr_unit" ~clock
    [
      cycle_csr <-- (cycle_csr +: B.const 16 1);
      B.when_ bus_valid [ instret <-- (instret +: B.const 16 1) ];
      B.when_ exc
        [
          mepc <-- pc;
          mcause <-- B.slice bus_addr 3 0;
          mtval <-- bus_data;
          excnt <-- (excnt +: B.const 8 1);
          mstatus <-- (mstatus |: B.const 8 0x80);
        ];
      B.when_ csr_we
        [
          B.switch (B.slice bus_addr 1 0)
            [
              (Bits.of_int 2 0, [ mscratch <-- bus_data ]);
              (Bits.of_int 2 1, [ mtvec <-- bus_data ]);
              (Bits.of_int 2 2, [ mstatus <-- B.slice bus_data 7 0 ]);
            ]
            ~default:[ mepc <-- B.slice bus_data 7 0 ];
        ];
      B.when_ dump
        [
          dump_r
          <-- (mtval ^: mscratch ^: mtvec
              ^: B.concat_list
                   [ mstatus; excnt; mepc; B.concat mcause (B.slice instret 3 0) ]
              ^: B.zext cycle_csr 32);
        ];
    ];
  (* only the dump register is observable: CSR state is detectable only
     when software actually reads it out *)
  dump_r
