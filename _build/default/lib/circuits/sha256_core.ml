(* SHA-256 primitives shared by the handwritten-Verilog-style (HV) and
   Chisel-generated-style (C2V) benchmark circuits, plus a pure-software
   compression used as the functional-test reference. *)
open Rtlir
module B = Builder
open B.Ops

let k_table =
  [|
    0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
    0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
    0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
    0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
    0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
    0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
    0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
    0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
    0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
    0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
    0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2;
  |]

let h_init =
  [|
    0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f; 0x9b05688c;
    0x1f83d9ab; 0x5be0cd19;
  |]

let k_rom () = Array.map (fun k -> Bits.make 32 (Int64.of_int k)) k_table

(* Expression-level primitives (operands are 32-bit expressions). *)

let rotr e n =
  (e >>: B.const 6 n) |: (e <<: B.const 6 (32 - n))

let big_sigma0 a = rotr a 2 ^: rotr a 13 ^: rotr a 22
let big_sigma1 e = rotr e 6 ^: rotr e 11 ^: rotr e 25
let small_sigma0 x = rotr x 7 ^: rotr x 18 ^: (x >>: B.const 6 3)
let small_sigma1 x = rotr x 17 ^: rotr x 19 ^: (x >>: B.const 6 10)
let ch e f g = (e &: f) ^: (~:e &: g)
let maj a b c = (a &: b) ^: (a &: c) ^: (b &: c)

(* Software reference: compress one 16-word block from the standard initial
   hash, returning the 8 digest words. All arithmetic on int masked to 32
   bits. *)
let sw_compress block =
  assert (Array.length block = 16);
  let m = 0xFFFFFFFF in
  let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land m in
  let w = Array.make 64 0 in
  Array.blit block 0 w 0 16;
  for t = 16 to 63 do
    let s0 = rotr w.(t - 15) 7 lxor rotr w.(t - 15) 18 lxor (w.(t - 15) lsr 3) in
    let s1 = rotr w.(t - 2) 17 lxor rotr w.(t - 2) 19 lxor (w.(t - 2) lsr 10) in
    w.(t) <- (w.(t - 16) + s0 + w.(t - 7) + s1) land m
  done;
  let a = ref h_init.(0)
  and b = ref h_init.(1)
  and c = ref h_init.(2)
  and d = ref h_init.(3)
  and e = ref h_init.(4)
  and f = ref h_init.(5)
  and g = ref h_init.(6)
  and h = ref h_init.(7) in
  for t = 0 to 63 do
    let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
    let ch = !e land !f lxor (lnot !e land !g) land m in
    let t1 = (!h + s1 + (ch land m) + k_table.(t) + w.(t)) land m in
    let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
    let mj = !a land !b lxor (!a land !c) lxor (!b land !c) in
    let t2 = (s0 + mj) land m in
    h := !g;
    g := !f;
    f := !e;
    e := (!d + t1) land m;
    d := !c;
    c := !b;
    b := !a;
    a := (t1 + t2) land m
  done;
  [|
    (h_init.(0) + !a) land m;
    (h_init.(1) + !b) land m;
    (h_init.(2) + !c) land m;
    (h_init.(3) + !d) land m;
    (h_init.(4) + !e) land m;
    (h_init.(5) + !f) land m;
    (h_init.(6) + !g) land m;
    (h_init.(7) + !h) land m;
  |]

(* The padded single-block message for "abc". *)
let abc_block =
  [|
    0x61626380; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0x18;
  |]

(* Known digest of "abc" (FIPS 180-2 test vector). *)
let abc_digest =
  [|
    0xba7816bf; 0x8f01cfea; 0x414140de; 0x5dae2223; 0xb00361a3; 0x96177a9c;
    0xb410ff61; 0xf20015ad;
  |]

(* Shared testbench: a block every [period] cycles — start pulse, 16 load
   cycles, then idle while the core runs its 64 rounds. Block 0 is "abc";
   later blocks are seeded random. *)
let period = 84

let block_words ~seed blk =
  if blk = 0 then abc_block
  else begin
    let rng = Faultsim.Rng.create (Int64.add seed (Int64.of_int blk)) in
    Array.init 16 (fun _ -> Int64.to_int (Int64.logand (Faultsim.Rng.next rng) 0xFFFFFFFFL))
  end

let workload ~seed design ~cycles =
  let clock = Design.find_signal design "clk" in
  let start = Design.find_signal design "start" in
  let word_valid = Design.find_signal design "word_valid" in
  let word_in = Design.find_signal design "word_in" in
  let read_addr = Design.find_signal design "read_addr" in
  let drive cycle =
    let blk = cycle / period and phase = cycle mod period in
    (* the verification environment polls status while the core is busy and
       reads the digest words out near the end of each block *)
    let ra =
      if phase >= 70 then phase mod 8 (* digest readout *)
      else if cycle mod 7 = 0 then 16 + (cycle * 5 mod 16) (* message words *)
      else 8 (* status *)
    in
    let common =
      [ (read_addr, Bits.of_int 5 ra) ]
    in
    if phase = 0 then
      (start, Bits.one 1)
      :: (word_valid, Bits.zero 1)
      :: (word_in, Bits.zero 32)
      :: common
    else if phase >= 1 && phase <= 16 then
      (start, Bits.zero 1)
      :: (word_valid, Bits.one 1)
      :: ( word_in,
           Bits.make 32 (Int64.of_int (block_words ~seed blk).(phase - 1)) )
      :: common
    else
      (start, Bits.zero 1)
      :: (word_valid, Bits.zero 1)
      :: (word_in, Bits.zero 32)
      :: common
  in
  { Faultsim.Workload.cycles; clock; drive }

(* FSM state encoding shared by both variants. *)
let s_idle = 0
let s_load = 1
let s_rounds = 2
let s_final = 3
let s_done = 4
