lib/core/concurrent.ml: Access Array Bits Cfg Compile Design Elaborate Eval Fault Faultsim Flow Format Hashtbl List Rtlir Sim Stats Sys Unix Vdg Workload
