lib/core/concurrent.mli: Bits Elaborate Fault Faultsim Rtlir Workload
