lib/sim/compile.ml: Access Array Bits Cfg Eval Expr Flow Hashtbl List Rtlir Stmt Vdg
