lib/sim/interp.ml: Access Bits Eval List Rtlir Stmt
