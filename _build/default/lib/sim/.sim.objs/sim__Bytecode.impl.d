lib/sim/bytecode.ml: Access Array Bits Eval Expr Int64 List Rtlir Stmt
