lib/sim/access.ml: Bits Rtlir
