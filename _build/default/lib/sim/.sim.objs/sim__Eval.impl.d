lib/sim/eval.ml: Access Bits Expr Int64 Rtlir
