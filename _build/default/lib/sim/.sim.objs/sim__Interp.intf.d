lib/sim/interp.mli: Access Rtlir Stmt
