lib/sim/access.mli: Bits Rtlir
