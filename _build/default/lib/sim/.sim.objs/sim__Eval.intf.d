lib/sim/eval.mli: Access Bits Expr Rtlir
