lib/sim/simulator.ml: Access Array Bits Bytecode Compile Design Elaborate Eval Interp List Printf Queue Rtlir
