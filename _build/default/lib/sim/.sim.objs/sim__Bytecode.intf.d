lib/sim/bytecode.mli: Access Bits Expr Rtlir Stmt
