lib/sim/simulator.mli: Bits Elaborate Rtlir
