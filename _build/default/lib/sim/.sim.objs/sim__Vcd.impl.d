lib/sim/vcd.ml: Array Bits Buffer Char Design Elaborate List Printf Rtlir Simulator
