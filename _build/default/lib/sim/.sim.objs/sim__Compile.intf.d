lib/sim/compile.mli: Access Bits Cfg Expr Flow Rtlir Stmt Vdg
