lib/sim/vcd.mli: Bits Elaborate Rtlir Simulator
