open Rtlir

type t = {
  out : out_channel;
  graph : Elaborate.t;
  codes : string array;
  mutable last : Bits.t array option;
}

(* VCD identifier codes: printable ASCII 33..126, little-endian digits. *)
let code_of_index i =
  let b = Buffer.create 4 in
  let rec go i =
    Buffer.add_char b (Char.chr (33 + (i mod 94)));
    if i >= 94 then go ((i / 94) - 1)
  in
  go i;
  Buffer.contents b

let create ~out (g : Elaborate.t) =
  let d = g.design in
  let nsig = Design.num_signals d in
  let codes = Array.init nsig code_of_index in
  output_string out "$version eraser VCD dump $end\n";
  output_string out "$timescale 1ns $end\n";
  Printf.fprintf out "$scope module %s $end\n" d.dname;
  Array.iter
    (fun (s : Design.signal) ->
      Printf.fprintf out "$var wire %d %s %s %s $end\n" s.width codes.(s.id)
        s.name
        (if s.width = 1 then "" else Printf.sprintf "[%d:0]" (s.width - 1)))
    d.signals;
  output_string out "$upscope $end\n$enddefinitions $end\n";
  { out; graph = g; codes; last = None }

let emit_value t id v =
  let w = Bits.width v in
  if w = 1 then
    Printf.fprintf t.out "%c%s\n"
      (if Bits.is_true v then '1' else '0')
      t.codes.(id)
  else begin
    let buf = Buffer.create (w + 8) in
    Buffer.add_char buf 'b';
    let started = ref false in
    for i = w - 1 downto 0 do
      let bit = Bits.bit v i in
      if bit || !started || i = 0 then begin
        started := true;
        Buffer.add_char buf (if bit then '1' else '0')
      end
    done;
    Buffer.add_char buf ' ';
    Buffer.add_string buf t.codes.(id);
    Buffer.add_char buf '\n';
    Buffer.output_buffer t.out buf
  end

let sample t ~time sim =
  let d = t.graph.Elaborate.design in
  let nsig = Design.num_signals d in
  let current = Array.init nsig (Simulator.peek sim) in
  (match t.last with
  | None ->
      Printf.fprintf t.out "#%d\n$dumpvars\n" time;
      Array.iteri (emit_value t) current;
      output_string t.out "$end\n"
  | Some prev ->
      let changed = ref [] in
      for id = nsig - 1 downto 0 do
        if not (Bits.equal prev.(id) current.(id)) then
          changed := id :: !changed
      done;
      if !changed <> [] then begin
        Printf.fprintf t.out "#%d\n" time;
        List.iter (fun id -> emit_value t id current.(id)) !changed
      end);
  t.last <- Some current

let finish t = flush t.out

let dump_drive ~path g ~clock ~cycles ~drive =
  let out = open_out path in
  let vcd = create ~out g in
  let sim = Simulator.create g in
  let time = ref 0 in
  let half v =
    Simulator.set_input sim clock (Bits.make 1 v);
    Simulator.step sim;
    sample vcd ~time:!time sim;
    incr time
  in
  (try
     for cycle = 0 to cycles - 1 do
       List.iter (fun (id, v) -> Simulator.set_input sim id v) (drive cycle);
       half 1L;
       half 0L
     done
   with e ->
     close_out out;
     raise e);
  finish vcd;
  close_out out
