(** vvp-flavoured bytecode interpreter.

    Icarus Verilog compiles designs to vvp bytecode executed on a stack
    machine; the IFsim baseline mirrors that execution model. Expressions
    compile once into flat instruction vectors evaluated on an explicit
    operand stack; behavioral statements keep their tree shape with
    bytecode right-hand sides. *)

open Rtlir

type program

(** Compile an expression. [mem_size] gives each memory's word count (for
    address wrapping). *)
val compile : mem_size:(int -> int) -> Expr.t -> program

(** Evaluate against a reader. *)
val eval : program -> Access.reader -> Bits.t

type stmt_program

val compile_stmt : mem_size:(int -> int) -> Stmt.t -> stmt_program

(** Execute a compiled behavioral body. *)
val exec : stmt_program -> Access.reader -> Access.writer -> unit
