open Rtlir

type scheduler = Levelized | Fifo | Cycle_based

type eval_style = Closures | Ast | Bytecode

type config = { eval : eval_style; scheduler : scheduler }

let default_config = { eval = Closures; scheduler = Levelized }

exception Unstable of string

type t = {
  graph : Elaborate.t;
  config : config;
  values : Bits.t array;
  mems : Bits.t array array;
  force : (int * int * bool) option;
  (* Dirty tracking over topological positions of combinational nodes. *)
  dirty : bool array;
  mutable dirty_hi : int;  (* highest dirty position, -1 when clean *)
  mutable dirty_lo : int;
  (* FIFO event wheel (the Iverilog-style dynamic scheduler): pending node
     positions in arrival order; [dirty] doubles as the queued flag. *)
  fifo : int Queue.t;
  mutable current_pos : int;
      (* combinational node being evaluated right now: a process does not
         re-trigger on its own blocking writes (it is not waiting while it
         runs), so self-marks are suppressed *)
  (* Pending nonblocking updates, in execution order. *)
  mutable nba : (int * Bits.t) list;
  mutable nba_mem : (int * int * Bits.t) list;
  prev_clock : Bits.t array;  (* indexed like values; valid for clocks *)
  comb_eval : (unit -> unit) array;  (* per topological position *)
  ff_run : (unit -> unit) array;  (* per proc id; no-op for comb procs *)
  mutable executions : int;
}

let graph t = t.graph

let apply_force t id v =
  match t.force with
  | Some (fid, bit, value) when fid = id -> Bits.force_bit v bit value
  | Some _ | None -> v

(* Marking must update the sweep bounds even when the flag is already set:
   a self-reading comb process leaves its own flag set after the sweep
   passes it, and a later mark must still re-arm the bounds. In FIFO mode
   the flag instead means "queued". *)
let mark_pos t pos =
  if pos = t.current_pos then ()
  else
  match t.config.scheduler with
  | Fifo ->
      if not t.dirty.(pos) then begin
        t.dirty.(pos) <- true;
        Queue.push pos t.fifo
      end
  | Levelized | Cycle_based ->
      t.dirty.(pos) <- true;
      if pos > t.dirty_hi then t.dirty_hi <- pos;
      if pos < t.dirty_lo then t.dirty_lo <- pos

let mark_fanout t id =
  let fanout = t.graph.fanout_comb.(id) in
  for i = 0 to Array.length fanout - 1 do
    mark_pos t fanout.(i)
  done

let mark_mem_fanout t m =
  let fanout = t.graph.fanout_mem.(m) in
  for i = 0 to Array.length fanout - 1 do
    mark_pos t fanout.(i)
  done

let write_signal t id v =
  let v = apply_force t id v in
  if not (Bits.equal t.values.(id) v) then begin
    t.values.(id) <- v;
    mark_fanout t id
  end

let write_mem_now t m addr v =
  if not (Bits.equal t.mems.(m).(addr) v) then begin
    t.mems.(m).(addr) <- v;
    mark_mem_fanout t m
  end

let create ?(config = default_config) ?force g =
  let d = g.Elaborate.design in
  let nsig = Design.num_signals d in
  let values =
    Array.init nsig (fun i -> Bits.zero d.Design.signals.(i).width)
  in
  let mems =
    Array.map
      (fun (m : Design.mem) ->
        match m.init with
        | Some init -> Array.copy init
        | None -> Array.make m.size (Bits.zero m.data_width))
      d.Design.mems
  in
  let ncomb = Array.length g.Elaborate.comb_nodes in
  let t =
    {
      graph = g;
      config;
      values;
      mems;
      force;
      dirty = Array.make ncomb false;
      dirty_hi = -1;
      dirty_lo = ncomb;
      fifo = Queue.create ();
      current_pos = -1;
      nba = [];
      nba_mem = [];
      prev_clock = Array.copy values;
      comb_eval = Array.make ncomb (fun () -> ());
      ff_run = Array.make (Array.length d.Design.procs) (fun () -> ());
      executions = 0;
    }
  in
  (match force with
  | Some (id, bit, value) ->
      t.values.(id) <- Bits.force_bit t.values.(id) bit value
  | None -> ());
  let mem_size m = d.Design.mems.(m).size in
  let reader =
    {
      Access.get = (fun id -> t.values.(id));
      get_mem = (fun m a -> t.mems.(m).(a));
    }
  in
  let comb_writer =
    {
      Access.set_blocking = (fun id v -> write_signal t id v);
      set_nonblocking =
        (fun id _ ->
          raise
            (Unstable
               (Printf.sprintf "nonblocking write to %s in comb process"
                  (Design.signal_name d id))));
      write_mem =
        (fun _ _ _ -> raise (Unstable "memory write in comb process"));
    }
  in
  let ff_writer =
    {
      Access.set_blocking =
        (fun id _ ->
          raise
            (Unstable
               (Printf.sprintf "blocking write to %s in ff process"
                  (Design.signal_name d id))));
      set_nonblocking = (fun id v -> t.nba <- (id, v) :: t.nba);
      write_mem = (fun m a v -> t.nba_mem <- (m, a, v) :: t.nba_mem);
    }
  in
  (* Evaluation closures for combinational nodes (both styles expose the
     same [unit -> unit] interface; the interpreted style walks the tree on
     each call). *)
  Array.iteri
    (fun pos node ->
      match node with
      | Elaborate.Cassign i -> (
          let a = d.Design.assigns.(i) in
          match config.eval with
          | Closures ->
              let ce = Compile.expr ~mem_size a.expr in
              t.comb_eval.(pos) <-
                (fun () -> write_signal t a.target (ce reader))
          | Ast ->
              t.comb_eval.(pos) <-
                (fun () ->
                  write_signal t a.target (Eval.eval ~mem_size reader a.expr))
          | Bytecode ->
              let prog = Bytecode.compile ~mem_size a.expr in
              t.comb_eval.(pos) <-
                (fun () -> write_signal t a.target (Bytecode.eval prog reader))
          )
      | Elaborate.Cproc i -> (
          let p = d.Design.procs.(i) in
          match config.eval with
          | Closures ->
              let cp = Compile.proc ~mem_size p.body in
              t.comb_eval.(pos) <-
                (fun () ->
                  t.executions <- t.executions + 1;
                  Compile.exec cp reader comb_writer)
          | Ast ->
              t.comb_eval.(pos) <-
                (fun () ->
                  t.executions <- t.executions + 1;
                  Interp.exec ~mem_size reader comb_writer p.body)
          | Bytecode ->
              let sp = Bytecode.compile_stmt ~mem_size p.body in
              t.comb_eval.(pos) <-
                (fun () ->
                  t.executions <- t.executions + 1;
                  Bytecode.exec sp reader comb_writer)))
    g.Elaborate.comb_nodes;
  Array.iter
    (fun i ->
      let p = d.Design.procs.(i) in
      match config.eval with
      | Closures ->
          let cp = Compile.proc ~mem_size p.body in
          t.ff_run.(i) <-
            (fun () ->
              t.executions <- t.executions + 1;
              Compile.exec cp reader ff_writer)
      | Ast ->
          t.ff_run.(i) <-
            (fun () ->
              t.executions <- t.executions + 1;
              Interp.exec ~mem_size reader ff_writer p.body)
      | Bytecode ->
          let sp = Bytecode.compile_stmt ~mem_size p.body in
          t.ff_run.(i) <-
            (fun () ->
              t.executions <- t.executions + 1;
              Bytecode.exec sp reader ff_writer))
    g.Elaborate.ff_procs;
  (* Initial settle: evaluate everything once. *)
  for pos = 0 to ncomb - 1 do
    t.current_pos <- pos;
    t.comb_eval.(pos) ();
    t.current_pos <- -1
  done;
  t.dirty_hi <- -1;
  t.dirty_lo <- ncomb;
  Array.fill t.dirty 0 ncomb false;
  Queue.clear t.fifo;
  Array.iter (fun c -> t.prev_clock.(c) <- t.values.(c)) g.Elaborate.clocks;
  t

let settle t =
  let ncomb = Array.length t.comb_eval in
  match t.config.scheduler with
  | Levelized ->
      let pos = ref t.dirty_lo in
      while !pos <= t.dirty_hi do
        if t.dirty.(!pos) then begin
          t.dirty.(!pos) <- false;
          t.current_pos <- !pos;
          t.comb_eval.(!pos) ();
          t.current_pos <- -1
        end;
        incr pos
      done;
      t.dirty_hi <- -1;
      t.dirty_lo <- ncomb
  | Fifo ->
      (* Arrival-order processing without levelization: reconvergent fanout
         makes nodes re-evaluate on glitches, as in a classic event wheel.
         Terminates on acyclic logic; bounded by depth * nodes. *)
      let budget = ref (64 * (ncomb + 1) * (ncomb + 1)) in
      while not (Queue.is_empty t.fifo) do
        decr budget;
        if !budget < 0 then raise (Unstable "event wheel did not settle");
        let pos = Queue.pop t.fifo in
        t.dirty.(pos) <- false;
        t.current_pos <- pos;
        t.comb_eval.(pos) ();
        t.current_pos <- -1
      done
  | Cycle_based ->
      for pos = 0 to ncomb - 1 do
        t.current_pos <- pos;
        t.comb_eval.(pos) ();
        t.current_pos <- -1
      done;
      t.dirty_hi <- -1;
      t.dirty_lo <- ncomb;
      Array.fill t.dirty 0 ncomb false;
      Queue.clear t.fifo

let edge_fired edge ~old_b ~new_b =
  match edge with
  | Design.Posedge -> (not (Bits.bit old_b 0)) && Bits.bit new_b 0
  | Design.Negedge -> Bits.bit old_b 0 && not (Bits.bit new_b 0)

let commit_nba t =
  let writes = List.rev t.nba in
  t.nba <- [];
  List.iter (fun (id, v) -> write_signal t id v) writes;
  let mem_writes = List.rev t.nba_mem in
  t.nba_mem <- [];
  List.iter (fun (m, a, v) -> write_mem_now t m a v) mem_writes

let set_input t id v = write_signal t id v

let flip_bit t id bit =
  let cur = t.values.(id) in
  write_signal t id (Bits.force_bit cur bit (not (Bits.bit cur bit)))

let step t =
  settle t;
  let g = t.graph in
  let rounds = ref 0 in
  let continue = ref true in
  while !continue do
    incr rounds;
    if !rounds > 16 then raise (Unstable "clock edge cascade did not settle");
    let fired = ref [] in
    Array.iter
      (fun c ->
        let old_b = t.prev_clock.(c) and new_b = t.values.(c) in
        if not (Bits.equal old_b new_b) then begin
          List.iter
            (fun (pidx, edge) ->
              if edge_fired edge ~old_b ~new_b then fired := pidx :: !fired)
            g.Elaborate.ff_of_clock.(c);
          t.prev_clock.(c) <- new_b
        end)
      g.Elaborate.clocks;
    match !fired with
    | [] -> continue := false
    | l ->
        List.iter (fun pidx -> t.ff_run.(pidx) ()) (List.sort_uniq compare l);
        commit_nba t;
        settle t
  done

let peek t id = t.values.(id)
let peek_mem t m a = t.mems.(m).(a)
let outputs t = Array.map (fun id -> t.values.(id)) t.graph.Elaborate.outputs
let proc_executions t = t.executions
