open Rtlir

let wrap_address addr size =
  Int64.to_int (Int64.unsigned_rem (Bits.to_int64 addr) (Int64.of_int size))

let apply_unop op a =
  match op with
  | Expr.Not -> Bits.lognot a
  | Expr.Neg -> Bits.neg a
  | Expr.Red_and -> Bits.reduce_and a
  | Expr.Red_or -> Bits.reduce_or a
  | Expr.Red_xor -> Bits.reduce_xor a

let apply_binop op a b =
  match op with
  | Expr.Add -> Bits.add a b
  | Expr.Sub -> Bits.sub a b
  | Expr.Mul -> Bits.mul a b
  | Expr.Divu -> Bits.divu a b
  | Expr.Modu -> Bits.modu a b
  | Expr.And -> Bits.logand a b
  | Expr.Or -> Bits.logor a b
  | Expr.Xor -> Bits.logxor a b
  | Expr.Shl -> Bits.shift_left a b
  | Expr.Shru -> Bits.shift_right a b
  | Expr.Shra -> Bits.shift_right_arith a b
  | Expr.Eq -> Bits.eq a b
  | Expr.Neq -> Bits.neq a b
  | Expr.Ltu -> Bits.ltu a b
  | Expr.Leu -> Bits.leu a b
  | Expr.Gtu -> Bits.gtu a b
  | Expr.Geu -> Bits.geu a b
  | Expr.Lts -> Bits.lts a b
  | Expr.Les -> Bits.les a b
  | Expr.Gts -> Bits.gts a b
  | Expr.Ges -> Bits.ges a b

let eval ~mem_size (r : Access.reader) e =
  let rec go = function
    | Expr.Const b -> b
    | Expr.Sig id -> r.get id
    | Expr.Unop (op, a) -> apply_unop op (go a)
    | Expr.Binop (op, a, b) -> apply_binop op (go a) (go b)
    | Expr.Mux (sel, a, b) -> if Bits.is_true (go sel) then go a else go b
    | Expr.Slice (a, hi, lo) -> Bits.slice (go a) ~hi ~lo
    | Expr.Concat (a, b) -> Bits.concat (go a) (go b)
    | Expr.Zext (a, w) -> Bits.zext (go a) w
    | Expr.Sext (a, w) -> Bits.sext (go a) w
    | Expr.Mem_read (m, addr) ->
        r.get_mem m (wrap_address (go addr) (mem_size m))
  in
  go e
