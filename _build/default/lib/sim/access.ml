open Rtlir

type reader = { get : int -> Bits.t; get_mem : int -> int -> Bits.t }

type writer = {
  set_blocking : int -> Bits.t -> unit;
  set_nonblocking : int -> Bits.t -> unit;
  write_mem : int -> int -> Bits.t -> unit;
}
