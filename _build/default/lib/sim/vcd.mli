(** VCD (value change dump) waveform recording for the single-network
    simulator — debugging support for designs authored with the DSL.

    {[
      let sim = Simulator.create graph in
      let vcd = Vcd.create ~out graph in
      (* per time slot *)
      Simulator.step sim;
      Vcd.sample vcd ~time sim;
      ...
      Vcd.finish vcd
    ]} *)

open Rtlir

type t

(** Write the VCD header (all signals of the design, one scope). *)
val create : out:out_channel -> Elaborate.t -> t

(** Emit a timestamp and the value changes since the previous sample. *)
val sample : t -> time:int -> Simulator.t -> unit

val finish : t -> unit

(** Convenience: drive a fresh simulator with the standard clocked protocol
    (inputs, rising edge, falling edge per cycle), sampling after every
    half-cycle, writing to [path]. [drive] maps a cycle number to input
    assignments; [clock] is the clock input's signal id. *)
val dump_drive :
  path:string ->
  Elaborate.t ->
  clock:int ->
  cycles:int ->
  drive:(int -> (int * Bits.t) list) ->
  unit
