(** Value access interfaces shared by the evaluators and interpreters.

    Engines provide readers/writers over their own state representation:
    the good simulator reads plain arrays, the concurrent engine overlays a
    fault's diffs on the good state. Memory addresses are pre-wrapped to
    [0..size-1] by the evaluators. *)

open Rtlir

type reader = {
  get : int -> Bits.t;  (** current value of a signal *)
  get_mem : int -> int -> Bits.t;  (** memory id, wrapped address *)
}

type writer = {
  set_blocking : int -> Bits.t -> unit;
      (** immediate write; later reads in the same execution observe it *)
  set_nonblocking : int -> Bits.t -> unit;
      (** deferred write; committed by the engine at the NBA phase *)
  write_mem : int -> int -> Bits.t -> unit;
      (** deferred memory write (nonblocking semantics), wrapped address *)
}
