


type engine = Ifsim | Vfsim | Z01x_proxy | Eraser_mm | Eraser_m | Eraser

let engine_name = function
  | Ifsim -> "IFsim"
  | Vfsim -> "VFsim"
  | Z01x_proxy -> "Z01X*"
  | Eraser_mm -> "Eraser--"
  | Eraser_m -> "Eraser-"
  | Eraser -> "Eraser"

let all_engines = [ Ifsim; Vfsim; Z01x_proxy; Eraser_mm; Eraser_m; Eraser ]

let concurrent_mode = function
  | Z01x_proxy | Eraser_m -> Engine.Concurrent.Explicit_only
  | Eraser_mm -> Engine.Concurrent.No_redundancy
  | Eraser -> Engine.Concurrent.Full
  | Ifsim | Vfsim -> invalid_arg "concurrent_mode"

let run ?(instrument = false) engine (g : Rtlir.Elaborate.t) w faults =
  match engine with
  | Ifsim -> Baselines.Serial.ifsim g w faults
  | Vfsim -> Baselines.Serial.vfsim g w faults
  | Z01x_proxy | Eraser_mm | Eraser_m | Eraser ->
      let config =
        {
          Engine.Concurrent.default_config with
          mode = concurrent_mode engine;
          instrument;
        }
      in
      Engine.Concurrent.run ~config g w faults

let run_circuit ?instrument engine (c : Circuits.Bench_circuit.t) ~scale =
  let _, g, w, faults = Circuits.Bench_circuit.instantiate c ~scale in
  run ?instrument engine g w faults
