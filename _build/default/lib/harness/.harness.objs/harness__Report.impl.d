lib/harness/report.ml: Campaign Experiments Format List String Sys
