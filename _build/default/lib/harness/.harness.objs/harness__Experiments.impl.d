lib/harness/experiments.ml: Array Campaign Circuits Engine Fault Faultsim List Rtlir Stats Workload
