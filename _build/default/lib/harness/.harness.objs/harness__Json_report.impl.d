lib/harness/json_report.ml: Array Buffer Char Classify Fault Faultsim Format Printf Rtlir Stats String
