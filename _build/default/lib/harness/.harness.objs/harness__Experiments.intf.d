lib/harness/experiments.mli: Campaign
