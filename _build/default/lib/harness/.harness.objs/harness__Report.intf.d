lib/harness/report.mli: Experiments Format
