lib/harness/rand_design.ml: Array Bits Builder Design Elaborate Expr Fault Faultsim Int64 List Printf Rng Rtlir Stmt Workload
