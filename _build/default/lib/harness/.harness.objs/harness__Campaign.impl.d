lib/harness/campaign.ml: Baselines Circuits Engine Rtlir
