lib/harness/campaign.mli: Circuits Faultsim Rtlir
