lib/harness/rand_design.mli: Design Elaborate Fault Faultsim Rtlir Workload
