lib/harness/json_report.mli: Faultsim Format Rtlir
