(** Random design generation for differential testing.

    Generates structurally valid designs — layered combinational logic (so
    the RTL graph is acyclic by construction), combinational processes with
    latch-free bodies, edge-triggered processes with nested if/case control,
    ROMs and RAMs — paired with a random workload. Differential tests run
    every engine on the same (design, workload, faults) triple and require
    identical detected-fault sets. *)

open Rtlir
open Faultsim

type t = {
  design : Design.t;
  graph : Elaborate.t;
  workload : Workload.t;
  faults : Fault.t array;
}

(** [generate ~seed] builds a random scenario. Deterministic in [seed]. *)
val generate : ?cycles:int -> ?max_faults:int -> seed:int64 -> unit -> t
