lib/baselines/serial.mli: Bits Elaborate Fault Faultsim Rtlir Sim Simulator Workload
