lib/baselines/serial.ml: Array Bits Fault Faultsim Rtlir Sim Simulator Stats Unix Workload
