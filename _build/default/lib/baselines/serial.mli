(** Serial (one-full-simulation-per-fault) baseline engines.

    Both run a golden simulation to record the per-cycle output trace, then
    re-simulate the whole design once per fault with the stuck-at bit
    forced, comparing outputs against the trace each cycle and dropping the
    fault at first divergence.

    - {!ifsim} mirrors Iverilog + [force]: AST-interpreted, event-driven;
    - {!vfsim} mirrors a Verilator-based fault simulator: closure-compiled,
      cycle-based (every node evaluated every cycle). *)

open Rtlir
open Sim
open Faultsim

(** Run a campaign with an explicit simulator configuration. *)
val run :
  config:Simulator.config ->
  Elaborate.t ->
  Workload.t ->
  Fault.t array ->
  Fault.result

val ifsim : Elaborate.t -> Workload.t -> Fault.t array -> Fault.result
val vfsim : Elaborate.t -> Workload.t -> Fault.t array -> Fault.result

(** The golden per-cycle output trace (used by tests). *)
val golden_trace :
  config:Simulator.config -> Elaborate.t -> Workload.t -> Bits.t array array
