examples/safety_signoff.mli:
