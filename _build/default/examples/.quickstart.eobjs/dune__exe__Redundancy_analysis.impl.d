examples/redundancy_analysis.ml: Array Circuits Fault Faultsim Harness List Printf Stats Sys Workload
