examples/fuzz.mli:
