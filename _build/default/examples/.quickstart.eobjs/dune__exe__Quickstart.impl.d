examples/quickstart.ml: Array Baselines Builder Circuits Design Elaborate Engine Fault Faultsim Printf Rtlir Stats
