examples/quickstart.mli:
