examples/redundancy_analysis.mli:
