examples/fuzz.ml: Array Baselines Engine Fault Faultsim Harness Int64 List Printf Sys
