examples/custom_circuit.ml: Array Bits Builder Design Elaborate Fault Faultsim Harness Int64 List Printf Rng Rtlir Workload
