examples/safety_signoff.ml: Array Circuits Classify Fault Faultsim Harness List Printf Sys Unix
