(* Bringing your own design: author a circuit with the builder DSL (here, a
   small synchronous FIFO with status logic), write a directed + random
   workload, and compare all the engines on it — the complete downstream
   workflow.

     dune exec examples/custom_circuit.exe *)

open Rtlir
open Faultsim
module B = Builder
open B.Ops
module H = Harness

let depth_bits = 3 (* 8-deep FIFO *)

let build_fifo () =
  let ctx = B.create "sync_fifo" in
  let clk = B.input ctx "clk" 1 in
  let push = B.input ctx "push" 1 in
  let pop = B.input ctx "pop" 1 in
  let din = B.input ctx "din" 8 in
  let mem = B.ram ctx "mem" ~width:8 ~size:(1 lsl depth_bits) in
  let wp = B.reg ctx "wp" (depth_bits + 1) in
  let rp = B.reg ctx "rp" (depth_bits + 1) in
  let count = B.wire ctx "count" (depth_bits + 1) in
  B.assign ctx count (wp -: rp);
  let full = B.wire ctx "full" 1 in
  let empty = B.wire ctx "empty" 1 in
  B.assign ctx full (count ==: B.const (depth_bits + 1) (1 lsl depth_bits));
  B.assign ctx empty (count ==: B.const (depth_bits + 1) 0);
  let do_push = B.wire ctx "do_push" 1 in
  let do_pop = B.wire ctx "do_pop" 1 in
  B.assign ctx do_push (push &: ~:full);
  B.assign ctx do_pop (pop &: ~:empty);
  B.always_ff ctx ~name:"pointers" ~clock:clk
    [
      B.when_ do_push
        [
          B.write_mem mem (B.zext (B.slice wp (depth_bits - 1) 0) 4) din;
          wp <-- (wp +: B.const (depth_bits + 1) 1);
        ];
      B.when_ do_pop [ rp <-- (rp +: B.const (depth_bits + 1) 1) ];
    ];
  let dout = B.output ctx "dout" 8 in
  B.assign ctx dout (B.read_mem mem (B.zext (B.slice rp (depth_bits - 1) 0) 4));
  let status = B.output ctx "status" 2 in
  B.assign ctx status (B.concat full empty);
  let level = B.output ctx "level" (depth_bits + 1) in
  B.assign ctx level count;
  B.finalize ctx

let () =
  let design = build_fifo () in
  let graph = Elaborate.build design in
  (* a bursty workload: fill phases, drain phases, mixed traffic *)
  let push = Design.find_signal design "push" in
  let pop = Design.find_signal design "pop" in
  let din = Design.find_signal design "din" in
  let drive cycle =
    let rng = Rng.create (Int64.of_int (cycle * 2654435761)) in
    let phase = cycle / 16 mod 3 in
    let p_push, p_pop =
      match phase with 0 -> (3, 1) | 1 -> (1, 3) | _ -> (2, 2)
    in
    [
      (push, Bits.of_bool (Rng.int rng 4 < p_push));
      (pop, Bits.of_bool (Rng.int rng 4 < p_pop));
      (din, Rng.bits rng 8);
    ]
  in
  let workload =
    { Workload.cycles = 600; clock = Design.find_signal design "clk"; drive }
  in
  let faults = Fault.generate ~seed:7L design in
  Printf.printf "sync_fifo: %d fault sites\n\n" (Array.length faults);
  let oracle = ref None in
  List.iter
    (fun e ->
      let r = H.Campaign.run e graph workload faults in
      let verdict =
        match !oracle with
        | None ->
            oracle := Some r;
            "(reference)"
        | Some o ->
            if Fault.same_verdict o r then "= oracle" else "MISMATCH"
      in
      Printf.printf "%-9s %6.2f%% coverage  %8.3f s  %s\n"
        (H.Campaign.engine_name e) r.Fault.coverage_pct r.Fault.wall_time
        verdict)
    H.Campaign.all_engines
