(* Differential fuzz harness: all engines must produce the oracle's
   detected-fault set on random designs. *)
open Faultsim

let () =
  let n = try int_of_string Sys.argv.(1) with _ -> 100 in
  let first = try int_of_string Sys.argv.(2) with _ -> 1 in
  let failures = ref 0 in
  for seed = first to first + n - 1 do
    let s = Harness.Rand_design.generate ~seed:(Int64.of_int seed) () in
    let g = s.Harness.Rand_design.graph in
    let w = s.Harness.Rand_design.workload in
    let faults = s.Harness.Rand_design.faults in
    let oracle = Baselines.Serial.ifsim g w faults in
    let check name r =
      if not (Fault.same_verdict oracle r) then begin
        incr failures;
        Printf.printf "seed %d: %s MISMATCH\n%!" seed name
      end
    in
    check "vfsim" (Baselines.Serial.vfsim g w faults);
    List.iter
      (fun mode ->
        let cfg = { Engine.Concurrent.default_config with mode } in
        check
          (Engine.Concurrent.mode_name mode)
          (Engine.Concurrent.run ~config:cfg g w faults))
      [
        Engine.Concurrent.No_redundancy;
        Engine.Concurrent.Explicit_only;
        Engine.Concurrent.Full;
      ];
    if seed mod 100 = 0 then Printf.printf "... %d seeds done\n%!" seed
  done;
  Printf.printf "fuzz: %d seeds, %d failures\n" n !failures;
  exit (if !failures = 0 then 0 else 1)
