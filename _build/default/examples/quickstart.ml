(* Quickstart: build a small design with the DSL, generate a stuck-at fault
   list, run the Eraser engine, and inspect coverage and the redundancy
   statistics.

     dune exec examples/quickstart.exe *)

open Rtlir
open Faultsim
module B = Builder
open B.Ops

(* A toy accumulator: on every valid beat, add or xor the input into a
   register depending on the mode; expose the register and a parity flag. *)
let build_design () =
  let ctx = B.create "accumulator" in
  let clk = B.input ctx "clk" 1 in
  let valid = B.input ctx "valid" 1 in
  let mode = B.input ctx "mode" 1 in
  let data = B.input ctx "data" 16 in
  let acc = B.reg ctx "acc" 16 in
  (* an RTL node *)
  let parity = B.wire ctx "parity" 1 in
  B.assign ctx parity (B.reduce_xor acc);
  (* a behavioral node with two execution paths *)
  B.always_ff ctx ~name:"accumulate" ~clock:clk
    [
      B.when_ valid
        [
          B.if_ mode
            [ acc <-- (acc ^: data) ]
            [ acc <-- (acc +: data) ];
        ];
    ];
  let out = B.output ctx "out" 16 in
  let out_parity = B.output ctx "out_parity" 1 in
  B.assign ctx out acc;
  B.assign ctx out_parity parity;
  B.finalize ctx

let () =
  let design = build_design () in
  let graph = Elaborate.build design in
  (* a workload: 500 cycles of random stimulus over the non-clock inputs *)
  let workload =
    Circuits.Bench_circuit.random_workload ~seed:1L design ~cycles:500
  in
  (* every single-bit stuck-at site in the design *)
  let faults = Fault.generate ~seed:1L design in
  Printf.printf "design %S: %d signals, %d fault sites\n" design.dname
    (Design.num_signals design) (Array.length faults);
  (* run the full Eraser engine (explicit + implicit elimination) *)
  let result = Engine.Concurrent.run graph workload faults in
  Printf.printf "coverage: %.2f%% (%d of %d faults detected) in %.3f s\n"
    result.Fault.coverage_pct
    (Fault.count_detected result)
    (Array.length faults) result.Fault.wall_time;
  let s = result.Fault.stats in
  Printf.printf
    "behavioral executions: %d good, %d faulty; eliminated %d (explicit %d, \
     implicit %d)\n"
    s.Stats.bn_good s.Stats.bn_fault_exec (Stats.eliminated s)
    s.Stats.bn_skipped_explicit s.Stats.bn_skipped_implicit;
  (* cross-check against the serial per-fault oracle *)
  let oracle = Baselines.Serial.ifsim graph workload faults in
  assert (Fault.same_verdict oracle result);
  Printf.printf "verdict identical to the per-fault serial oracle \
                 (%.3f s -> %.1fx faster)\n"
    oracle.Fault.wall_time
    (oracle.Fault.wall_time /. result.Fault.wall_time);
  (* the undetected faults, by site *)
  Array.iteri
    (fun i detected ->
      if not detected then
        Printf.printf "undetected: %s\n" (Fault.describe design faults.(i)))
    result.Fault.detected
