// A hand-written example for `eraser run-verilog`:
//   dune exec bin/eraser_cli.exe -- run-verilog -f examples/sample_designs/gray_counter.v
// An 8-bit Gray-code counter with enable, a binary decoder and a parity
// tracker. The dbg register bank is deliberately quiescent (captured only
// on a rare trigger) - the implicit-redundancy population.
module gray_counter(clk, en, capture, gray, binary, parity, snapshot);
  input clk;
  input en;
  input capture;
  output [7:0] gray;
  output [7:0] binary;
  output parity;
  output [7:0] snapshot;

  reg [7:0] count;
  reg par;
  reg [7:0] snap;

  wire [7:0] next_count;
  wire [7:0] gray_w;
  wire [7:0] bin_w;

  assign next_count = count + 8'd1;
  assign gray_w = count ^ (count >> 1);
  // Gray-to-binary decoder (prefix xor)
  assign bin_w = gray_w ^ (gray_w >> 1) ^ (gray_w >> 2) ^ (gray_w >> 3)
               ^ (gray_w >> 4) ^ (gray_w >> 5) ^ (gray_w >> 6) ^ (gray_w >> 7);

  assign gray = gray_w;
  assign binary = bin_w;
  assign parity = par;
  assign snapshot = snap;

  always @(posedge clk)
  begin
    if (en)
    begin
      count <= next_count;
      par <= par ^ (^(gray_w ^ (next_count ^ (next_count >> 1))));
    end
    if (capture & en)
      snap <= bin_w;
  end
endmodule
