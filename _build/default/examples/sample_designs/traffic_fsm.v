// Traffic-light controller: a classic Mealy/Moore FSM with a timer, a
// pedestrian request latch, and a rarely-exercised fault-injection test
// port. Used by the frontend regression tests and `eraser run-verilog`.
module traffic_fsm(clk, ped_req, tick, lights, walk, state_dbg);
  input clk;
  input ped_req;
  input tick;
  output [2:0] lights;   // {red, yellow, green}
  output walk;
  output [1:0] state_dbg;

  reg [1:0] state;       // 0 green, 1 yellow, 2 red, 3 red+walk
  reg [3:0] timer;
  reg ped_latch;
  reg walk_r;

  wire timer_done;
  assign timer_done = timer == 4'd0;
  assign state_dbg = state;
  assign walk = walk_r;
  assign lights = (state == 2'd0) ? 3'b001 :
                  (state == 2'd1) ? 3'b010 : 3'b100;

  always @(posedge clk)
  begin
    if (ped_req)
      ped_latch <= 1'b1;
    if (tick)
    begin
      if (timer_done)
      begin
        case (state)
          2'd0: begin state <= 2'd1; timer <= 4'd2; end
          2'd1: begin
            if (ped_latch)
            begin
              state <= 2'd3;
              walk_r <= 1'b1;
              ped_latch <= 1'b0;
              timer <= 4'd6;
            end
            else
            begin
              state <= 2'd2;
              timer <= 4'd4;
            end
          end
          2'd2: begin state <= 2'd0; timer <= 4'd8; end
          default: begin state <= 2'd2; walk_r <= 1'b0; timer <= 4'd4; end
        endcase
      end
      else
        timer <= timer - 4'd1;
    end
  end
endmodule
