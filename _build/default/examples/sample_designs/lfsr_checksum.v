// A 16-bit Fibonacci LFSR feeding a rotating checksum over an input byte
// stream, with a shadow register bank captured on a rare trigger word.
module lfsr_checksum(clk, in_valid, in_byte, csum, lfsr_out);
  input clk;
  input in_valid;
  input [7:0] in_byte;
  output [15:0] csum;
  output [15:0] lfsr_out;

  reg [15:0] lfsr;
  reg [15:0] acc;
  reg [15:0] shadow;

  wire feedback;
  assign feedback = lfsr[15] ^ lfsr[13] ^ lfsr[12] ^ lfsr[10];
  assign lfsr_out = lfsr;
  assign csum = acc ^ shadow;

  always @(posedge clk)
  begin
    lfsr <= {lfsr[14:0], ~feedback};
    if (in_valid)
    begin
      acc <= {acc[14:0], acc[15]} ^ {8'h00, in_byte} ^ lfsr;
      if (in_byte == 8'hA5)
        shadow <= acc;
    end
  end
endmodule
