(* eraser — command-line front end.

     eraser list
     eraser describe -c sha256_hv
     eraser run -c alu -e eraser --scale 0.5 --instrument
     eraser faults -c apb -n 20 *)

open Cmdliner
open Rtlir
open Faultsim
module H = Harness

let circuit_names =
  List.map (fun (c : Circuits.Bench_circuit.t) -> c.name) Circuits.all

let circuit_conv =
  let parse s =
    match Circuits.find s with
    | c -> Ok c
    | exception Not_found ->
        Error
          (`Msg
             (Printf.sprintf "unknown circuit %S (try: %s)" s
                (String.concat ", " circuit_names)))
  in
  Arg.conv (parse, fun ppf (c : Circuits.Bench_circuit.t) ->
      Format.pp_print_string ppf c.name)

let engine_conv =
  let table =
    [
      ("ifsim", H.Campaign.Ifsim);
      ("vfsim", H.Campaign.Vfsim);
      ("z01x", H.Campaign.Z01x_proxy);
      ("eraser--", H.Campaign.Eraser_mm);
      ("eraser-", H.Campaign.Eraser_m);
      ("eraser", H.Campaign.Eraser);
    ]
  in
  let parse s =
    match List.assoc_opt (String.lowercase_ascii s) table with
    | Some e -> Ok e
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown engine %S (try: %s)" s
                (String.concat ", " (List.map fst table))))
  in
  Arg.conv (parse, fun ppf e ->
      Format.pp_print_string ppf (H.Campaign.engine_name e))

let circuit_arg =
  Arg.(
    required
    & opt (some circuit_conv) None
    & info [ "c"; "circuit" ] ~docv:"CIRCUIT" ~doc:"Benchmark circuit name.")

(* Map the structured campaign errors to one-line stderr messages and
   distinct exit codes (divergence 3, timeout 4, corrupt journal 5, bad
   workload 6); everything else keeps cmdliner's conventions. *)
let guard f =
  try f () with
  | H.Resilient.Campaign_error e ->
      Format.eprintf "eraser: %s@." (H.Resilient.error_message e);
      H.Resilient.exit_code e
  | Workload.Invalid_workload msg ->
      Format.eprintf "eraser: bad workload: %s@." msg;
      H.Resilient.exit_code (H.Resilient.Bad_workload msg)

let scale_arg =
  Arg.(
    value & opt float 0.25
    & info [ "scale" ] ~docv:"S"
        ~doc:
          "Scale stimulus length and fault count relative to the paper's \
           Table II parameters.")

(* --- observability flags (run + campaign) --- *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Profile the campaign and write a Chrome trace_event JSON file \
           to $(docv) (open in chrome://tracing or Perfetto): spans for \
           engine runs, batches, good simulation, behavioral-node \
           evaluations and VDG walks, one track per worker domain.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Record named engine metrics (execution/skip counters per \
           behavioral node, VDG walk depth and detection-latency \
           histograms) and write them as JSON to $(docv).")

(* Enable the requested instrumentation around [f] and export on a normal
   return. Exports are skipped when [f] raises — a partial trace of a
   failed campaign would be mistaken for a complete one. *)
let with_obs ~trace ~metrics f =
  if trace <> None then Obs.Trace.enable ();
  if metrics <> None then Obs.Metrics.enable ();
  let code = f () in
  (match trace with
  | Some path ->
      Obs.Trace.disable ();
      let oc = open_out path in
      Obs.Trace.export_chrome oc;
      close_out oc;
      Format.printf "  trace      %s@." path
  | None -> ());
  (match metrics with
  | Some path ->
      Obs.Metrics.disable ();
      let oc = open_out path in
      Obs.Metrics.export_json oc;
      close_out oc;
      Format.printf "  metrics    %s@." path
  | None -> ());
  code

(* --- list --- *)

let list_cmd =
  let run () =
    Format.printf "%-12s %-12s %10s %8s@." "name" "paper name" "#stimulus"
      "#faults";
    List.iter
      (fun (c : Circuits.Bench_circuit.t) ->
        Format.printf "%-12s %-12s %10d %8d@." c.name c.paper_name
          c.paper_cycles c.paper_faults)
      Circuits.all;
    0
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the benchmark circuits (paper Table II).")
    Term.(const run $ const ())

(* --- describe --- *)

let describe_cmd =
  let run (c : Circuits.Bench_circuit.t) =
    let d = c.build () in
    let g = Elaborate.build d in
    Format.printf "%s (%s)@." c.name c.paper_name;
    Format.printf "  signals            %d@." (Design.num_signals d);
    Format.printf "  memories           %d@." (Array.length d.mems);
    Format.printf "  RTL nodes          %d@." (Elaborate.rtl_node_count g);
    Format.printf "  behavioral nodes   %d@."
      (Elaborate.behavioral_node_count g);
    Format.printf "  cells (AST size)   %d@." (Design.cell_count d);
    Format.printf "  fault sites        %d@."
      (Array.length (Fault.generate ~seed:0L d));
    Array.iter
      (fun (p : Design.proc) ->
        let cfg = Flow.Cfg.build p.body in
        Format.printf "  proc %-14s %s, %d decisions, %d segments@." p.pname
          (match p.trigger with
          | Design.Comb -> "comb"
          | Design.Edges _ -> "ff  ")
          cfg.Flow.Cfg.n_decisions cfg.Flow.Cfg.n_segments)
      d.procs;
    0
  in
  Cmd.v
    (Cmd.info "describe"
       ~doc:"Show a circuit's elaborated structure and CFG statistics.")
    Term.(const run $ circuit_arg)

(* --- run --- *)

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains. Faults are partitioned across $(docv) parallel \
           engine instances; verdicts and reports are identical for any \
           $(docv).")

let schedule_conv =
  let parse s =
    match H.Schedule.policy_of_string (String.lowercase_ascii s) with
    | Some p -> Ok p
    | None ->
        Error
          (`Msg
             (Printf.sprintf
                "unknown schedule policy %S (try: fixed, activation, adaptive)"
                s))
  in
  Arg.conv (parse, fun ppf p ->
      Format.pp_print_string ppf (H.Schedule.policy_name p))

let schedule_arg =
  Arg.(
    value
    & opt (some schedule_conv) None
    & info [ "schedule" ] ~docv:"POLICY"
        ~doc:
          "Fault-schedule planner policy: $(b,fixed) (ascending fault ids, \
           capture-grid snapshots — reproduces the historical batching \
           byte-for-byte), $(b,activation) (batches grouped by activation \
           window, capture-grid snapshots), or $(b,adaptive) (activation \
           batches plus replanned snapshot placement at each batch's exact \
           activation boundary, within the capture's snapshot budget). \
           Default: adaptive for $(b,--warmstart) runs, fixed cold. \
           Verdicts are byte-identical across policies.")

let capture_mem_limit_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "capture-mem-limit" ] ~docv:"BYTES"
        ~doc:
          "Spill the $(b,--warmstart) good-trace capture to a disk-backed \
           memory map when its in-memory footprint exceeds $(docv) bytes. \
           Replay and reports are unchanged. Default: never spill.")

let run_cmd =
  let engine_arg =
    Arg.(
      value
      & opt engine_conv H.Campaign.Eraser
      & info [ "e"; "engine" ] ~docv:"ENGINE"
          ~doc:
            "Engine: ifsim, vfsim, z01x (explicit-only proxy), eraser--, \
             eraser-, eraser.")
  in
  let instrument_arg =
    Arg.(
      value & flag
      & info [ "instrument" ]
          ~doc:"Measure behavioral-node time (Table III instrumentation).")
  in
  let verify_arg =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:
            "Also run the serial oracle and check the detected-fault sets \
             are identical.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the full campaign result as JSON.")
  in
  let warmstart_arg =
    Arg.(
      value & flag
      & info [ "warmstart" ]
          ~doc:
            "Capture the good network's trace once and warm-start every \
             batch from snapshots at each fault's activation window instead \
             of re-simulating the good network; faults the cone-of-influence \
             analysis proves statically undetectable are reported without \
             being simulated. Verdicts are identical to the cold path. \
             Concurrent engines only; ignored for ifsim and vfsim.")
  in
  let snapshot_every_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "snapshot-every" ] ~docv:"N"
          ~doc:
            "Snapshot interval (cycles) for the $(b,--warmstart) capture; \
             smaller intervals skip dead prefixes more precisely at a \
             linear memory cost. Default: max(8, cycles/16).")
  in
  let lanes_arg =
    Arg.(
      value & flag
      & info [ "lanes" ]
          ~doc:
            "Lane-packed fault batching: pack the batch into 64-wide lane \
             groups and drive each behavior-network round from per-signal \
             lane masks, with per-node validity skip and identical-overlay \
             execution sharing. Verdicts are identical to scalar mode; \
             execution counters differ. Concurrent engines only; ignored \
             for ifsim and vfsim.")
  in
  let run (c : Circuits.Bench_circuit.t) engine scale instrument verify json
      jobs warmstart lanes snapshot_every schedule capture_mem_limit trace
      metrics =
   guard @@ fun () ->
   with_obs ~trace ~metrics @@ fun () ->
    if jobs < 1 then
      raise
        (H.Resilient.Campaign_error
           (H.Resilient.Bad_workload
              (Printf.sprintf "jobs must be positive, got %d" jobs)));
    let design, g, w, faults = Circuits.Bench_circuit.instantiate c ~scale in
    Format.printf "%s on %s: %d cycles, %d faults@."
      (H.Campaign.engine_name engine) c.name w.Workload.cycles
      (Array.length faults);
    let r =
      H.Campaign.run ~instrument ~lanes ~jobs ~warmstart ?snapshot_every
        ?schedule ?capture_mem_limit engine g w faults
    in
    Format.printf "  coverage   %.2f%% (%d/%d)@." r.Fault.coverage_pct
      (Fault.count_detected r) (Array.length faults);
    Format.printf "  wall time  %.3f s@." r.Fault.wall_time;
    let s = r.Fault.stats in
    Format.printf "  behavioral good=%d exec=%d skip_explicit=%d \
                   skip_implicit=%d@."
      s.Stats.bn_good s.Stats.bn_fault_exec s.Stats.bn_skipped_explicit
      s.Stats.bn_skipped_implicit;
    if s.Stats.cone_pruned > 0 then
      Format.printf "  cone       %d fault(s) statically pruned@."
        s.Stats.cone_pruned;
    if s.Stats.plan_batches > 0 then
      Format.printf "  schedule   %d planned batch(es), %d snapshot(s)@."
        s.Stats.plan_batches s.Stats.plan_snapshots;
    if s.Stats.lane_groups > 0 then
      Format.printf
        "  lanes      %d group(s), %.1f mean occupancy, %d scalar \
         fallback(s)@."
        s.Stats.lane_groups
        (Stats.lane_occupancy_mean s)
        s.Stats.scalar_fallbacks;
    if instrument then
      Format.printf "  behavioral-node time %.0f%%@." (Stats.bn_time_pct s);
    let verdicts = Classify.classify g faults in
    (match Classify.adjusted_coverage verdicts r with
    | Some adj ->
        Format.printf "  adjusted   %.2f%% over %d testable faults@." adj
          (Array.fold_left
             (fun acc v -> if v = Classify.Testable then acc + 1 else acc)
             0 verdicts)
    | None -> Format.printf "  adjusted   n/a (no testable faults)@.");
    (match json with
    | Some path ->
        let oc = open_out path in
        let ppf = Format.formatter_of_out_channel oc in
        H.Json_report.campaign ppf ~design
          ~engine:(H.Campaign.engine_name engine)
          ~faults ~verdicts r;
        Format.pp_print_flush ppf ();
        close_out oc;
        Format.printf "  json       %s@." path
    | None -> ());
    if verify then begin
      let oracle = H.Campaign.run H.Campaign.Ifsim g w faults in
      if Fault.same_verdict oracle r then
        Format.printf "  verdict    identical to the serial oracle@."
      else begin
        let divergences = ref [] in
        Array.iteri
          (fun i (f : Fault.t) ->
            if r.Fault.detected.(i) <> oracle.Fault.detected.(i) then
              divergences :=
                {
                  H.Resilient.div_fault = f.fid;
                  div_batch = 0;
                  engine_detected = r.Fault.detected.(i);
                  engine_cycle = r.Fault.detection_cycle.(i);
                  oracle_detected = oracle.Fault.detected.(i);
                  oracle_cycle = oracle.Fault.detection_cycle.(i);
                }
                :: !divergences)
          faults;
        raise
          (H.Resilient.Campaign_error
             (H.Resilient.Engine_divergence (List.rev !divergences)))
      end
    end;
    0
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a fault-simulation campaign on one circuit.")
    Term.(
      const run $ circuit_arg $ engine_arg $ scale_arg $ instrument_arg
      $ verify_arg $ json_arg $ jobs_arg $ warmstart_arg $ lanes_arg
      $ snapshot_every_arg $ schedule_arg $ capture_mem_limit_arg $ trace_arg
      $ metrics_arg)

(* --- campaign (resilient runner) --- *)

(* render the canonical verdicts-only report to a string *)
let verdicts_report ~design ~engine ~faults r =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  H.Json_report.verdicts ppf ~design ~engine:(H.Campaign.engine_name engine)
    ~faults r;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let campaign_cmd =
  let engine_arg =
    Arg.(
      value
      & opt engine_conv H.Campaign.Eraser
      & info [ "e"; "engine" ] ~docv:"ENGINE"
          ~doc:
            "Engine: ifsim, vfsim, z01x (explicit-only proxy), eraser--, \
             eraser-, eraser.")
  in
  let batch_arg =
    Arg.(
      value & opt int 64
      & info [ "batch" ] ~docv:"N" ~doc:"Faults per batch.")
  in
  let journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Append each completed batch to this JSONL checkpoint file; an \
             interrupted campaign resumes from it with $(b,--resume).")
  in
  let resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Replay completed batches from the journal instead of \
             truncating it and starting over.")
  in
  let oracle_sample_arg =
    Arg.(
      value & opt float 0.0
      & info [ "oracle-sample" ] ~docv:"P"
          ~doc:
            "Probability (0..1) that a batch is re-checked online against \
             the serial per-fault oracle; diverging faults are quarantined \
             and re-simulated serially.")
  in
  let batch_timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "batch-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Per-batch wall-clock watchdog; a tripped batch is split in \
             half and retried with a fresh budget.")
  in
  let cycle_budget_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "cycle-budget" ] ~docv:"N"
          ~doc:"Per-batch simulated-cycle watchdog.")
  in
  let max_retries_arg =
    Arg.(
      value & opt int 2
      & info [ "max-retries" ] ~docv:"N"
          ~doc:"Batch-split generations allowed after a watchdog trip.")
  in
  let no_quarantine_arg =
    Arg.(
      value & flag
      & info [ "no-quarantine" ]
          ~doc:
            "Abort the campaign on the first engine divergence instead of \
             quarantining the fault.")
  in
  let inject_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "inject-divergence" ] ~docv:"FAULT"
          ~doc:
            "Debug: corrupt this fault's verdict inside the concurrent \
             engine to exercise the quarantine path.")
  in
  let progress_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "progress" ] ~docv:"SECONDS"
          ~doc:
            "Print a progress heartbeat (faults/sec, ETA, live coverage) \
             to stderr every $(docv) seconds, and append it to the journal \
             when one is in use.")
  in
  let supervise_arg =
    Arg.(
      value & flag
      & info [ "supervise" ]
          ~doc:
            "Fault-tolerant mode: a crashed batch task is retried on a \
             fresh engine instance (up to $(b,--max-retries) times), and a \
             batch that exhausts its watchdog budget even as a single \
             fault is abandoned (reported undetected) instead of aborting \
             the campaign.")
  in
  let repro_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "repro-dir" ] ~docv:"DIR"
          ~doc:
            "Shrink every quarantined divergence to a minimal reproducer \
             and write it as $(i,repro-<fault>.json) into $(docv) (replay \
             with $(b,eraser repro)).")
  in
  let snapshot_every_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "snapshot-every" ] ~docv:"N"
          ~doc:
            "Snapshot interval (cycles) for the $(b,--warmstart) capture; \
             smaller intervals skip dead prefixes more precisely at a \
             linear memory cost. Default: max(8, cycles/16).")
  in
  let run (c : Circuits.Bench_circuit.t) engine scale batch journal resume
      oracle_sample batch_timeout cycle_budget max_retries no_quarantine
      inject json jobs warmstart lanes snapshot_every schedule
      capture_mem_limit verdicts_out trace metrics progress supervise
      repro_dir =
   guard @@ fun () ->
   with_obs ~trace ~metrics @@ fun () ->
    let design, g, w, faults = Circuits.Bench_circuit.instantiate c ~scale in
    let config =
      {
        H.Resilient.default_config with
        H.Resilient.engine;
        jobs;
        batch_size = batch;
        journal;
        resume;
        oracle_sample;
        max_batch_seconds = batch_timeout;
        max_batch_cycles = cycle_budget;
        max_retries;
        quarantine = not no_quarantine;
        inject_divergence = inject;
        progress;
        supervise;
        repro_dir;
        repro_meta = Some (c.name, scale);
        warmstart;
        lanes;
        snapshot_every;
        schedule;
        capture_mem_limit;
      }
    in
    Format.printf "resilient %s on %s: %d cycles, %d faults, batches of %d@."
      (H.Campaign.engine_name engine)
      c.name w.Workload.cycles (Array.length faults) batch;
    let s = H.Resilient.run ~config g w faults in
    let r = s.H.Resilient.result in
    Format.printf "  coverage   %.2f%% (%d/%d)@." r.Fault.coverage_pct
      (Fault.count_detected r) (Array.length faults);
    Format.printf "  batches    %d total, %d resumed from the journal, %d \
                   executed@."
      s.H.Resilient.batches_total s.H.Resilient.batches_resumed
      s.H.Resilient.batches_executed;
    if s.H.Resilient.retries > 0 then
      Format.printf "  watchdog   %d batch split(s)@." s.H.Resilient.retries;
    if s.H.Resilient.restarts > 0 then
      Format.printf "  supervisor %d task restart(s)@." s.H.Resilient.restarts;
    if s.H.Resilient.failed_faults <> [] then
      Format.printf "  abandoned  %d fault(s): %s@."
        (List.length s.H.Resilient.failed_faults)
        (String.concat ", "
           (List.map string_of_int s.H.Resilient.failed_faults));
    if s.H.Resilient.pruned_faults <> [] then
      Format.printf "  cone       %d fault(s) statically pruned@."
        (List.length s.H.Resilient.pruned_faults);
    List.iter
      (fun f -> Format.printf "  repro      %s@." f)
      s.H.Resilient.repros;
    if s.H.Resilient.oracle_checked > 0 then
      Format.printf "  oracle     %d batch(es) re-checked, %d divergence(s)@."
        s.H.Resilient.oracle_checked
        (List.length s.H.Resilient.divergences);
    List.iter
      (fun (d : H.Resilient.divergence) ->
        Format.printf
          "  quarantine fault %d (%s): engine said %s, serial oracle says \
           %s@."
          d.H.Resilient.div_fault
          (Fault.describe design faults.(d.H.Resilient.div_fault))
          (if d.H.Resilient.engine_detected then "detected" else "live")
          (if d.H.Resilient.oracle_detected then "detected" else "live"))
      s.H.Resilient.divergences;
    Format.printf "  wall time  %.3f s@." r.Fault.wall_time;
    (* keyed off the summary, not the flag: --resume adopts the journal's
       warm/cold regime, which may differ from this invocation's flags *)
    if r.Fault.stats.Stats.goodtrace_captures > 0 then
      Format.printf "  warm-start %d good cycle(s) skipped, capture %d B@."
        r.Fault.stats.Stats.good_cycles_skipped s.H.Resilient.capture_bytes;
    if r.Fault.stats.Stats.plan_batches > 0 then
      Format.printf "  schedule   %d planned batch(es), %d snapshot(s)@."
        r.Fault.stats.Stats.plan_batches r.Fault.stats.Stats.plan_snapshots;
    if r.Fault.stats.Stats.lane_groups > 0 then
      Format.printf
        "  lanes      %d group(s), %.1f mean occupancy, %d scalar \
         fallback(s)@."
        r.Fault.stats.Stats.lane_groups
        (Stats.lane_occupancy_mean r.Fault.stats)
        r.Fault.stats.Stats.scalar_fallbacks;
    (match json with
    | Some path ->
        let verdicts = Classify.classify g faults in
        H.Resilient.write_atomic path (fun oc ->
            let ppf = Format.formatter_of_out_channel oc in
            H.Json_report.resilient ppf ~design
              ~engine:(H.Campaign.engine_name engine)
              ~faults ~verdicts s;
            Format.pp_print_flush ppf ());
        Format.printf "  json       %s@." path
    | None -> ());
    (match verdicts_out with
    | Some path ->
        let text = verdicts_report ~design ~engine ~faults r in
        H.Resilient.write_atomic path (fun oc -> output_string oc text);
        Format.printf "  verdicts   %s@." path
    | None -> ());
    0
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the campaign report as JSON (atomically: temp file + \
             rename).")
  in
  let warmstart_arg =
    Arg.(
      value & flag
      & info [ "warmstart" ]
          ~doc:
            "Capture the good network's trace once, then warm-start every \
             batch from the snapshot at its earliest fault activation and \
             replay the recorded good deltas instead of re-simulating the \
             good network. Batches are regrouped by activation window and \
             faults the cone-of-influence analysis proves statically \
             undetectable are reported without being simulated; verdicts \
             are identical to the cold path. Concurrent engines only; \
             ignored for ifsim and vfsim. $(b,--resume) adopts the \
             journal's own warm/cold regime regardless of this flag.")
  in
  let verdicts_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "verdicts" ] ~docv:"FILE"
          ~doc:
            "Write the stats-free verdicts-only JSON report (atomically). \
             Byte-identical across engines, $(b,--jobs) values, \
             $(b,--warmstart) and $(b,--lanes), so it can be diffed \
             directly.")
  in
  let lanes_arg =
    Arg.(
      value & flag
      & info [ "lanes" ]
          ~doc:
            "Lane-packed fault batching (see $(b,eraser run --lanes)). \
             Verdicts and the $(b,--verdicts) report are identical to \
             scalar mode. The journal records the mode; $(b,--resume) \
             adopts the journal's own mode regardless of this flag.")
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Run a fault campaign through the resilient runner: batched \
          execution with a JSONL journal for checkpoint/resume, per-batch \
          watchdog budgets, and online divergence quarantine against the \
          serial oracle.")
    Term.(
      const run $ circuit_arg $ engine_arg $ scale_arg $ batch_arg
      $ journal_arg $ resume_arg $ oracle_sample_arg $ batch_timeout_arg
      $ cycle_budget_arg $ max_retries_arg $ no_quarantine_arg $ inject_arg
      $ json_arg $ jobs_arg $ warmstart_arg $ lanes_arg $ snapshot_every_arg
      $ schedule_arg $ capture_mem_limit_arg $ verdicts_arg $ trace_arg
      $ metrics_arg $ progress_arg $ supervise_arg $ repro_dir_arg)

(* --- chaos --- *)

let chaos_cmd =
  let seed_arg =
    Arg.(
      value & opt int64 0xC4A05L
      & info [ "seed" ] ~docv:"S"
          ~doc:"Chaos seed; the whole failure schedule derives from it.")
  in
  let rate_arg =
    Arg.(
      value & opt float 0.5
      & info [ "rate" ] ~docv:"P"
          ~doc:"Per-(kind, batch) injection probability in [0, 1].")
  in
  let kinds_arg =
    let kind_conv =
      let parse s =
        match H.Chaos.kind_of_name s with
        | Some k -> Ok k
        | None ->
            Error
              (`Msg
                 (Printf.sprintf "unknown chaos kind %S (try: %s)" s
                    (String.concat ", "
                       (List.map H.Chaos.kind_name H.Chaos.all_kinds))))
      in
      Arg.conv (parse, fun ppf k ->
          Format.pp_print_string ppf (H.Chaos.kind_name k))
    in
    Arg.(
      value
      & opt (list kind_conv) H.Chaos.all_kinds
      & info [ "kinds" ] ~docv:"KINDS"
          ~doc:
            "Comma-separated injection kinds: raise, stall, corrupt, \
             torn-journal. Default: all four.")
  in
  let batch_arg =
    Arg.(
      value & opt int 8
      & info [ "batch" ] ~docv:"N" ~doc:"Faults per batch.")
  in
  let timeout_arg =
    Arg.(
      value & opt float 0.5
      & info [ "batch-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Per-batch watchdog budget; the stall injection sleeps past it \
             so the watchdog, not the harness, kills the batch.")
  in
  let journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Journal path for the chaos run (a temp file by default). The \
             torn-journal injection kills the campaign mid-write; the \
             driver resumes it from this journal.")
  in
  let run (c : Circuits.Bench_circuit.t) scale seed rate kinds batch timeout
      journal jobs =
   guard @@ fun () ->
    let design, g, w, faults = Circuits.Bench_circuit.instantiate c ~scale in
    let engine = H.Campaign.Eraser in
    let base =
      {
        H.Resilient.default_config with
        H.Resilient.engine;
        jobs;
        batch_size = batch;
        max_batch_seconds = Some timeout;
        oracle_sample = 1.0;
        supervise = true;
        repro_meta = Some (c.name, scale);
      }
    in
    Format.printf
      "chaos %s on %s: %d cycles, %d faults, seed %Ld, rate %g, kinds %s@."
      (H.Campaign.engine_name engine)
      c.name w.Workload.cycles (Array.length faults) seed rate
      (String.concat "," (List.map H.Chaos.kind_name kinds));
    (* clean reference run: same campaign, no injection *)
    let clean = H.Resilient.run ~config:base g w faults in
    let clean_report =
      verdicts_report ~design ~engine ~faults clean.H.Resilient.result
    in
    let path, temp =
      match journal with
      | Some p -> (p, false)
      | None -> (Filename.temp_file "eraser-chaos" ".jsonl", true)
    in
    let plan = { H.Chaos.seed; kinds; rate } in
    (* The chaos campaign: install the plan and run with a journal. A
       torn-journal injection kills the run mid-write ([Chaos.Killed]); the
       driver resumes from the journal exactly as an operator would — the
       fired-once tables make the retry succeed. *)
    let summary =
      Fun.protect
        ~finally:(fun () ->
          H.Chaos.uninstall ();
          if temp then try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          H.Chaos.install plan;
          let rec attempt n resume =
            let config =
              { base with H.Resilient.journal = Some path; resume }
            in
            try H.Resilient.run ~config g w faults
            with H.Chaos.Killed msg when n < 4 ->
              Format.printf "  killed     %s — resuming from the journal@."
                msg;
              attempt (n + 1) true
          in
          attempt 0 false)
    in
    List.iter
      (fun (k, n) ->
        if n > 0 then
          Format.printf "  injected   %-12s %d@." (H.Chaos.kind_name k) n)
      (H.Chaos.counts ());
    Format.printf "  batches    %d total, %d resumed, %d executed@."
      summary.H.Resilient.batches_total summary.H.Resilient.batches_resumed
      summary.H.Resilient.batches_executed;
    Format.printf "  recovery   %d split(s), %d restart(s), %d divergence(s) \
                   quarantined, %d abandoned@."
      summary.H.Resilient.retries summary.H.Resilient.restarts
      (List.length summary.H.Resilient.divergences)
      (List.length summary.H.Resilient.failed_faults);
    let chaos_report =
      verdicts_report ~design ~engine ~faults summary.H.Resilient.result
    in
    if String.equal chaos_report clean_report then begin
      Format.printf "  verdicts   byte-identical to the clean run@.";
      0
    end
    else begin
      Format.eprintf
        "eraser: chaos verdicts diverge from the clean run's@.";
      7
    end
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run a supervised campaign under seeded deterministic fault \
          injection (task crashes, stalls past the watchdog, diff-store \
          corruption, torn journal writes) and assert that the recovered \
          campaign's verdicts are byte-identical to a clean run's. Exit \
          code 7 on mismatch.")
    Term.(
      const run $ circuit_arg $ scale_arg $ seed_arg $ rate_arg $ kinds_arg
      $ batch_arg $ timeout_arg $ journal_arg $ jobs_arg)

(* --- repro --- *)

let repro_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"REPRO.json"
          ~doc:"Reproducer file written by a campaign with --repro-dir.")
  in
  let engine_of_name s =
    List.find_opt
      (fun e -> H.Campaign.engine_name e = s)
      [
        H.Campaign.Ifsim; H.Campaign.Vfsim; H.Campaign.Z01x_proxy;
        H.Campaign.Eraser_mm; H.Campaign.Eraser_m; H.Campaign.Eraser;
      ]
  in
  let run file =
   guard @@ fun () ->
    let ic = open_in_bin file in
    let src =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let j =
      try H.Jsonl.parse (String.trim src)
      with H.Jsonl.Parse_error m ->
        raise
          (H.Resilient.Campaign_error
             (H.Resilient.Bad_workload
                (Printf.sprintf "unreadable repro file %s: %s" file m)))
    in
    let bad msg =
      raise
        (H.Resilient.Campaign_error
           (H.Resilient.Bad_workload
              (Printf.sprintf "repro file %s: %s" file msg)))
    in
    if
      (match H.Jsonl.member "type" j with
      | Some (H.Jsonl.String "repro") -> false
      | _ -> true)
      || H.Jsonl.get_int "version" j <> 1
    then bad "not a version-1 repro record";
    let circuit =
      match H.Jsonl.member "circuit" j with
      | Some (H.Jsonl.Obj _ as cj) ->
          (H.Jsonl.get_string "name" cj, H.Jsonl.get_float "scale" cj)
      | _ -> bad "no circuit metadata (campaign ran without a bench circuit)"
    in
    let cname, scale = circuit in
    let c =
      match Circuits.find cname with
      | c -> c
      | exception Not_found -> bad (Printf.sprintf "unknown circuit %S" cname)
    in
    let engine =
      match engine_of_name (H.Jsonl.get_string "engine" j) with
      | Some e -> e
      | None ->
          bad (Printf.sprintf "unknown engine %S" (H.Jsonl.get_string "engine" j))
    in
    let fault_id = H.Jsonl.get_int "id" (Option.get (H.Jsonl.member "fault" j)) in
    let ids =
      Array.of_list (List.map H.Jsonl.to_int (H.Jsonl.get_list "ids" j))
    in
    let cycles = H.Jsonl.get_int "cycles" j in
    let inject =
      match H.Jsonl.member "inject" j with
      | Some (H.Jsonl.Int i) -> Some i
      | _ -> None
    in
    let design, g, w, faults = Circuits.Bench_circuit.instantiate c ~scale in
    if Array.exists (fun id -> id < 0 || id >= Array.length faults) ids then
      bad "fault ids out of range for this circuit and scale";
    let w = { w with Workload.cycles } in
    let renumber ids =
      Array.mapi (fun i id -> { faults.(id) with Fault.fid = i }) ids
    in
    let k =
      match
        Array.to_seqi ids
        |> Seq.find_map (fun (i, id) -> if id = fault_id then Some i else None)
      with
      | Some k -> k
      | None -> bad "divergent fault is not part of the reproducer set"
    in
    Format.printf "replaying %s: fault %d (%s) among %d fault(s), %d cycles@."
      file fault_id
      (Fault.describe design faults.(fault_id))
      (Array.length ids) cycles;
    let er =
      match engine with
      | H.Campaign.Ifsim -> Baselines.Serial.ifsim g w (renumber ids)
      | H.Campaign.Vfsim -> Baselines.Serial.vfsim g w (renumber ids)
      | e ->
          let cc =
            {
              Engine.Concurrent.default_config with
              mode = H.Campaign.concurrent_mode e;
              corrupt_verdict =
                Option.bind inject (fun f ->
                    Array.to_seqi ids
                    |> Seq.find_map (fun (i, id) ->
                           if id = f then Some i else None));
            }
          in
          Engine.Concurrent.run_batch ~config:cc g w faults ~ids
    in
    let oracle = Baselines.Serial.ifsim g w (renumber [| fault_id |]) in
    let ed = er.Fault.detected.(k)
    and ec = er.Fault.detection_cycle.(k)
    and od = oracle.Fault.detected.(0)
    and oc = oracle.Fault.detection_cycle.(0) in
    let verdict d cyc =
      if d then Printf.sprintf "detected@%d" cyc else "live"
    in
    Format.printf "  engine     %s (recorded %s)@." (verdict ed ec)
      (verdict
         (H.Jsonl.get_bool "engine_detected" j)
         (H.Jsonl.get_int "engine_cycle" j));
    Format.printf "  oracle     %s (recorded %s)@." (verdict od oc)
      (verdict
         (H.Jsonl.get_bool "oracle_detected" j)
         (H.Jsonl.get_int "oracle_cycle" j));
    let matches =
      ed = H.Jsonl.get_bool "engine_detected" j
      && ec = H.Jsonl.get_int "engine_cycle" j
      && od = H.Jsonl.get_bool "oracle_detected" j
      && oc = H.Jsonl.get_int "oracle_cycle" j
    in
    let diverges = ed <> od || (ed && ec <> oc) in
    if matches && diverges then begin
      Format.printf "  reproduced the divergence@.";
      0
    end
    else begin
      Format.eprintf
        "eraser: reproducer did not replay: %s@."
        (if not diverges then "engine and oracle now agree"
         else "verdicts differ from the recorded ones");
      8
    end
  in
  Cmd.v
    (Cmd.info "repro"
       ~doc:
         "Replay a repro-<fault>.json reproducer (written by eraser \
          campaign --repro-dir): re-run the engine on the minimal fault \
          set and cycle window and check both verdicts against the \
          recorded ones. Exit code 8 when the divergence does not \
          reproduce.")
    Term.(const run $ file_arg)

(* --- faults --- *)

let faults_cmd =
  let count_arg =
    Arg.(
      value & opt int 9999999
      & info [ "n" ] ~docv:"N" ~doc:"Show at most N faults.")
  in
  let run (c : Circuits.Bench_circuit.t) scale n =
    let d, g, w, faults = Circuits.Bench_circuit.instantiate c ~scale in
    let verdicts = Classify.classify g faults in
    let r = H.Campaign.run H.Campaign.Eraser g w faults in
    Array.iteri
      (fun i f ->
        if i < n then
          Format.printf "%4d  %-30s %-10s %s@." i
            (Fault.describe d f)
            (if r.Fault.detected.(i) then
               Printf.sprintf "DT@%d" r.Fault.detection_cycle.(i)
             else "live")
            (match verdicts.(i) with
            | Classify.Testable -> ""
            | v -> Classify.verdict_name v))
      faults;
    Format.printf "raw coverage %.2f%%, adjusted (testable only) %s@."
      r.Fault.coverage_pct
      (match Classify.adjusted_coverage verdicts r with
      | Some adj -> Printf.sprintf "%.2f%%" adj
      | None -> "n/a (no testable faults)");
    0
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:"List the fault sites of a campaign with their verdicts.")
    Term.(const run $ circuit_arg $ scale_arg $ count_arg)

(* --- export --- *)

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (default stdout).")

let export_cmd =
  let run (c : Circuits.Bench_circuit.t) output =
    let text = Verilog.to_string (c.build ()) in
    (match output with
    | None -> print_string text
    | Some path ->
        let oc = open_out path in
        output_string oc text;
        close_out oc;
        Format.printf "wrote %s@." path);
    0
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Export a benchmark circuit as Verilog-2001.")
    Term.(const run $ circuit_arg $ output_arg)

(* --- run-verilog --- *)

let run_verilog_cmd =
  let file_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "f"; "file" ] ~docv:"FILE" ~doc:"Verilog source file.")
  in
  let clock_arg =
    Arg.(
      value & opt string "clk"
      & info [ "clock" ] ~docv:"NAME" ~doc:"Clock input name.")
  in
  let cycles_arg =
    Arg.(
      value & opt int 1000
      & info [ "cycles" ] ~docv:"N" ~doc:"Random stimulus length.")
  in
  let max_faults_arg =
    Arg.(
      value & opt int 2000
      & info [ "max-faults" ] ~docv:"N" ~doc:"Fault-list cap.")
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"S" ~doc:"Stimulus / sampling seed.")
  in
  let run file clock cycles max_faults seed =
    let ic = open_in file in
    let src = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Verilog_parser.parse src with
    | exception Verilog_parser.Parse_error msg ->
        Format.eprintf "parse error: %s@." msg;
        1
    | exception Verilog_lexer.Lex_error msg ->
        Format.eprintf "lex error: %s@." msg;
        1
    | design -> (
        match Design.find_signal design clock with
        | exception Not_found ->
            Format.eprintf "no input named %S (use --clock)@." clock;
            1
        | _ ->
            let g = Elaborate.build design in
            let w =
              Circuits.Bench_circuit.random_workload
                ~seed:(Int64.of_int seed) design ~cycles
            in
            let w =
              { w with Workload.clock = Design.find_signal design clock }
            in
            let faults =
              Fault.generate ~max_faults ~seed:(Int64.of_int seed) design
            in
            Format.printf "%s: %d signals, %d faults, %d cycles@."
              design.Design.dname
              (Design.num_signals design)
              (Array.length faults) cycles;
            let r = H.Campaign.run H.Campaign.Eraser g w faults in
            Format.printf "  coverage   %.2f%% (%d/%d)@." r.Fault.coverage_pct
              (Fault.count_detected r) (Array.length faults);
            Format.printf "  wall time  %.3f s@." r.Fault.wall_time;
            Format.printf "  mean detection latency %.1f cycles@."
              (Fault.mean_detection_latency r);
            0)
  in
  Cmd.v
    (Cmd.info "run-verilog"
       ~doc:
         "Parse a Verilog file and run an Eraser fault campaign with random           stimulus.")
    Term.(
      const run $ file_arg $ clock_arg $ cycles_arg $ max_faults_arg
      $ seed_arg)

(* --- vcd --- *)

let vcd_cmd =
  let cycles_arg =
    Arg.(
      value & opt int 200
      & info [ "cycles" ] ~docv:"N" ~doc:"Cycles of stimulus to record.")
  in
  let run (c : Circuits.Bench_circuit.t) output cycles =
    let path = Option.value output ~default:(c.name ^ ".vcd") in
    let d = c.build () in
    let g = Elaborate.build d in
    let w = c.workload d ~cycles in
    Sim.Vcd.dump_drive ~path g ~clock:w.Workload.clock ~cycles
      ~drive:w.Workload.drive;
    Format.printf "wrote %s (%d cycles)@." path cycles;
    0
  in
  Cmd.v
    (Cmd.info "vcd"
       ~doc:"Record a fault-free waveform of a circuit's testbench as VCD.")
    Term.(const run $ circuit_arg $ output_arg $ cycles_arg)

let () =
  let doc = "efficient RTL fault simulation with trimmed execution redundancy" in
  let info = Cmd.info "eraser" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            list_cmd; describe_cmd; run_cmd; campaign_cmd; chaos_cmd;
            repro_cmd; faults_cmd; export_cmd; run_verilog_cmd; vcd_cmd;
          ]))
