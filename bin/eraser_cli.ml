(* eraser — command-line front end.

     eraser list
     eraser describe -c sha256_hv
     eraser run -c alu -e eraser --scale 0.5 --instrument
     eraser faults -c apb -n 20 *)

open Cmdliner
open Rtlir
open Faultsim
module H = Harness

let circuit_names =
  List.map (fun (c : Circuits.Bench_circuit.t) -> c.name) Circuits.all

let circuit_conv =
  let parse s =
    match Circuits.find s with
    | c -> Ok c
    | exception Not_found ->
        Error
          (`Msg
             (Printf.sprintf "unknown circuit %S (try: %s)" s
                (String.concat ", " circuit_names)))
  in
  Arg.conv (parse, fun ppf (c : Circuits.Bench_circuit.t) ->
      Format.pp_print_string ppf c.name)

let engine_conv =
  let table =
    [
      ("ifsim", H.Campaign.Ifsim);
      ("vfsim", H.Campaign.Vfsim);
      ("z01x", H.Campaign.Z01x_proxy);
      ("eraser--", H.Campaign.Eraser_mm);
      ("eraser-", H.Campaign.Eraser_m);
      ("eraser", H.Campaign.Eraser);
    ]
  in
  let parse s =
    match List.assoc_opt (String.lowercase_ascii s) table with
    | Some e -> Ok e
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown engine %S (try: %s)" s
                (String.concat ", " (List.map fst table))))
  in
  Arg.conv (parse, fun ppf e ->
      Format.pp_print_string ppf (H.Campaign.engine_name e))

let circuit_arg =
  Arg.(
    required
    & opt (some circuit_conv) None
    & info [ "c"; "circuit" ] ~docv:"CIRCUIT" ~doc:"Benchmark circuit name.")

(* Map the structured campaign errors to one-line stderr messages and
   distinct exit codes (divergence 3, timeout 4, corrupt journal 5, bad
   workload 6); everything else keeps cmdliner's conventions. *)
let guard f =
  try f () with
  | H.Resilient.Campaign_error e ->
      Format.eprintf "eraser: %s@." (H.Resilient.error_message e);
      H.Resilient.exit_code e
  | Workload.Invalid_workload msg ->
      Format.eprintf "eraser: bad workload: %s@." msg;
      H.Resilient.exit_code (H.Resilient.Bad_workload msg)

let scale_arg =
  Arg.(
    value & opt float 0.25
    & info [ "scale" ] ~docv:"S"
        ~doc:
          "Scale stimulus length and fault count relative to the paper's \
           Table II parameters.")

(* --- observability flags (run + campaign) --- *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Profile the campaign and write a Chrome trace_event JSON file \
           to $(docv) (open in chrome://tracing or Perfetto): spans for \
           engine runs, batches, good simulation, behavioral-node \
           evaluations and VDG walks, one track per worker domain.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Record named engine metrics (execution/skip counters per \
           behavioral node, VDG walk depth and detection-latency \
           histograms) and write them as JSON to $(docv).")

(* Enable the requested instrumentation around [f] and export on a normal
   return. Exports are skipped when [f] raises — a partial trace of a
   failed campaign would be mistaken for a complete one. *)
let with_obs ~trace ~metrics f =
  if trace <> None then Obs.Trace.enable ();
  if metrics <> None then Obs.Metrics.enable ();
  let code = f () in
  (match trace with
  | Some path ->
      Obs.Trace.disable ();
      let oc = open_out path in
      Obs.Trace.export_chrome oc;
      close_out oc;
      Format.printf "  trace      %s@." path
  | None -> ());
  (match metrics with
  | Some path ->
      Obs.Metrics.disable ();
      let oc = open_out path in
      Obs.Metrics.export_json oc;
      close_out oc;
      Format.printf "  metrics    %s@." path
  | None -> ());
  code

(* --- list --- *)

let list_cmd =
  let run () =
    Format.printf "%-12s %-12s %10s %8s@." "name" "paper name" "#stimulus"
      "#faults";
    List.iter
      (fun (c : Circuits.Bench_circuit.t) ->
        Format.printf "%-12s %-12s %10d %8d@." c.name c.paper_name
          c.paper_cycles c.paper_faults)
      Circuits.all;
    0
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the benchmark circuits (paper Table II).")
    Term.(const run $ const ())

(* --- describe --- *)

let describe_cmd =
  let run (c : Circuits.Bench_circuit.t) =
    let d = c.build () in
    let g = Elaborate.build d in
    Format.printf "%s (%s)@." c.name c.paper_name;
    Format.printf "  signals            %d@." (Design.num_signals d);
    Format.printf "  memories           %d@." (Array.length d.mems);
    Format.printf "  RTL nodes          %d@." (Elaborate.rtl_node_count g);
    Format.printf "  behavioral nodes   %d@."
      (Elaborate.behavioral_node_count g);
    Format.printf "  cells (AST size)   %d@." (Design.cell_count d);
    Format.printf "  fault sites        %d@."
      (Array.length (Fault.generate ~seed:0L d));
    Array.iter
      (fun (p : Design.proc) ->
        let cfg = Flow.Cfg.build p.body in
        Format.printf "  proc %-14s %s, %d decisions, %d segments@." p.pname
          (match p.trigger with
          | Design.Comb -> "comb"
          | Design.Edges _ -> "ff  ")
          cfg.Flow.Cfg.n_decisions cfg.Flow.Cfg.n_segments)
      d.procs;
    0
  in
  Cmd.v
    (Cmd.info "describe"
       ~doc:"Show a circuit's elaborated structure and CFG statistics.")
    Term.(const run $ circuit_arg)

(* --- run --- *)

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains. Faults are partitioned across $(docv) parallel \
           engine instances; verdicts and reports are identical for any \
           $(docv).")

let run_cmd =
  let engine_arg =
    Arg.(
      value
      & opt engine_conv H.Campaign.Eraser
      & info [ "e"; "engine" ] ~docv:"ENGINE"
          ~doc:
            "Engine: ifsim, vfsim, z01x (explicit-only proxy), eraser--, \
             eraser-, eraser.")
  in
  let instrument_arg =
    Arg.(
      value & flag
      & info [ "instrument" ]
          ~doc:"Measure behavioral-node time (Table III instrumentation).")
  in
  let verify_arg =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:
            "Also run the serial oracle and check the detected-fault sets \
             are identical.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the full campaign result as JSON.")
  in
  let run (c : Circuits.Bench_circuit.t) engine scale instrument verify json
      jobs trace metrics =
   guard @@ fun () ->
   with_obs ~trace ~metrics @@ fun () ->
    if jobs < 1 then
      raise
        (H.Resilient.Campaign_error
           (H.Resilient.Bad_workload
              (Printf.sprintf "jobs must be positive, got %d" jobs)));
    let design, g, w, faults = Circuits.Bench_circuit.instantiate c ~scale in
    Format.printf "%s on %s: %d cycles, %d faults@."
      (H.Campaign.engine_name engine) c.name w.Workload.cycles
      (Array.length faults);
    let r = H.Campaign.run ~instrument ~jobs engine g w faults in
    Format.printf "  coverage   %.2f%% (%d/%d)@." r.Fault.coverage_pct
      (Fault.count_detected r) (Array.length faults);
    Format.printf "  wall time  %.3f s@." r.Fault.wall_time;
    let s = r.Fault.stats in
    Format.printf "  behavioral good=%d exec=%d skip_explicit=%d \
                   skip_implicit=%d@."
      s.Stats.bn_good s.Stats.bn_fault_exec s.Stats.bn_skipped_explicit
      s.Stats.bn_skipped_implicit;
    if instrument then
      Format.printf "  behavioral-node time %.0f%%@." (Stats.bn_time_pct s);
    let verdicts = Classify.classify g faults in
    (match Classify.adjusted_coverage verdicts r with
    | Some adj ->
        Format.printf "  adjusted   %.2f%% over %d testable faults@." adj
          (Array.fold_left
             (fun acc v -> if v = Classify.Testable then acc + 1 else acc)
             0 verdicts)
    | None -> Format.printf "  adjusted   n/a (no testable faults)@.");
    (match json with
    | Some path ->
        let oc = open_out path in
        let ppf = Format.formatter_of_out_channel oc in
        H.Json_report.campaign ppf ~design
          ~engine:(H.Campaign.engine_name engine)
          ~faults ~verdicts r;
        Format.pp_print_flush ppf ();
        close_out oc;
        Format.printf "  json       %s@." path
    | None -> ());
    if verify then begin
      let oracle = H.Campaign.run H.Campaign.Ifsim g w faults in
      if Fault.same_verdict oracle r then
        Format.printf "  verdict    identical to the serial oracle@."
      else begin
        let divergences = ref [] in
        Array.iteri
          (fun i (f : Fault.t) ->
            if r.Fault.detected.(i) <> oracle.Fault.detected.(i) then
              divergences :=
                {
                  H.Resilient.div_fault = f.fid;
                  div_batch = 0;
                  engine_detected = r.Fault.detected.(i);
                  engine_cycle = r.Fault.detection_cycle.(i);
                  oracle_detected = oracle.Fault.detected.(i);
                  oracle_cycle = oracle.Fault.detection_cycle.(i);
                }
                :: !divergences)
          faults;
        raise
          (H.Resilient.Campaign_error
             (H.Resilient.Engine_divergence (List.rev !divergences)))
      end
    end;
    0
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a fault-simulation campaign on one circuit.")
    Term.(
      const run $ circuit_arg $ engine_arg $ scale_arg $ instrument_arg
      $ verify_arg $ json_arg $ jobs_arg $ trace_arg $ metrics_arg)

(* --- campaign (resilient runner) --- *)

let campaign_cmd =
  let engine_arg =
    Arg.(
      value
      & opt engine_conv H.Campaign.Eraser
      & info [ "e"; "engine" ] ~docv:"ENGINE"
          ~doc:
            "Engine: ifsim, vfsim, z01x (explicit-only proxy), eraser--, \
             eraser-, eraser.")
  in
  let batch_arg =
    Arg.(
      value & opt int 64
      & info [ "batch" ] ~docv:"N" ~doc:"Faults per batch.")
  in
  let journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Append each completed batch to this JSONL checkpoint file; an \
             interrupted campaign resumes from it with $(b,--resume).")
  in
  let resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Replay completed batches from the journal instead of \
             truncating it and starting over.")
  in
  let oracle_sample_arg =
    Arg.(
      value & opt float 0.0
      & info [ "oracle-sample" ] ~docv:"P"
          ~doc:
            "Probability (0..1) that a batch is re-checked online against \
             the serial per-fault oracle; diverging faults are quarantined \
             and re-simulated serially.")
  in
  let batch_timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "batch-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Per-batch wall-clock watchdog; a tripped batch is split in \
             half and retried with a fresh budget.")
  in
  let cycle_budget_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "cycle-budget" ] ~docv:"N"
          ~doc:"Per-batch simulated-cycle watchdog.")
  in
  let max_retries_arg =
    Arg.(
      value & opt int 2
      & info [ "max-retries" ] ~docv:"N"
          ~doc:"Batch-split generations allowed after a watchdog trip.")
  in
  let no_quarantine_arg =
    Arg.(
      value & flag
      & info [ "no-quarantine" ]
          ~doc:
            "Abort the campaign on the first engine divergence instead of \
             quarantining the fault.")
  in
  let inject_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "inject-divergence" ] ~docv:"FAULT"
          ~doc:
            "Debug: corrupt this fault's verdict inside the concurrent \
             engine to exercise the quarantine path.")
  in
  let progress_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "progress" ] ~docv:"SECONDS"
          ~doc:
            "Print a progress heartbeat (faults/sec, ETA, live coverage) \
             to stderr every $(docv) seconds, and append it to the journal \
             when one is in use.")
  in
  let run (c : Circuits.Bench_circuit.t) engine scale batch journal resume
      oracle_sample batch_timeout cycle_budget max_retries no_quarantine
      inject json jobs trace metrics progress =
   guard @@ fun () ->
   with_obs ~trace ~metrics @@ fun () ->
    let design, g, w, faults = Circuits.Bench_circuit.instantiate c ~scale in
    let config =
      {
        H.Resilient.default_config with
        H.Resilient.engine;
        jobs;
        batch_size = batch;
        journal;
        resume;
        oracle_sample;
        max_batch_seconds = batch_timeout;
        max_batch_cycles = cycle_budget;
        max_retries;
        quarantine = not no_quarantine;
        inject_divergence = inject;
        progress;
      }
    in
    Format.printf "resilient %s on %s: %d cycles, %d faults, batches of %d@."
      (H.Campaign.engine_name engine)
      c.name w.Workload.cycles (Array.length faults) batch;
    let s = H.Resilient.run ~config g w faults in
    let r = s.H.Resilient.result in
    Format.printf "  coverage   %.2f%% (%d/%d)@." r.Fault.coverage_pct
      (Fault.count_detected r) (Array.length faults);
    Format.printf "  batches    %d total, %d resumed from the journal, %d \
                   executed@."
      s.H.Resilient.batches_total s.H.Resilient.batches_resumed
      s.H.Resilient.batches_executed;
    if s.H.Resilient.retries > 0 then
      Format.printf "  watchdog   %d batch split(s)@." s.H.Resilient.retries;
    if s.H.Resilient.oracle_checked > 0 then
      Format.printf "  oracle     %d batch(es) re-checked, %d divergence(s)@."
        s.H.Resilient.oracle_checked
        (List.length s.H.Resilient.divergences);
    List.iter
      (fun (d : H.Resilient.divergence) ->
        Format.printf
          "  quarantine fault %d (%s): engine said %s, serial oracle says \
           %s@."
          d.H.Resilient.div_fault
          (Fault.describe design faults.(d.H.Resilient.div_fault))
          (if d.H.Resilient.engine_detected then "detected" else "live")
          (if d.H.Resilient.oracle_detected then "detected" else "live"))
      s.H.Resilient.divergences;
    Format.printf "  wall time  %.3f s@." r.Fault.wall_time;
    (match json with
    | Some path ->
        let verdicts = Classify.classify g faults in
        H.Resilient.write_atomic path (fun oc ->
            let ppf = Format.formatter_of_out_channel oc in
            H.Json_report.resilient ppf ~design
              ~engine:(H.Campaign.engine_name engine)
              ~faults ~verdicts s;
            Format.pp_print_flush ppf ());
        Format.printf "  json       %s@." path
    | None -> ());
    0
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the campaign report as JSON (atomically: temp file + \
             rename).")
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Run a fault campaign through the resilient runner: batched \
          execution with a JSONL journal for checkpoint/resume, per-batch \
          watchdog budgets, and online divergence quarantine against the \
          serial oracle.")
    Term.(
      const run $ circuit_arg $ engine_arg $ scale_arg $ batch_arg
      $ journal_arg $ resume_arg $ oracle_sample_arg $ batch_timeout_arg
      $ cycle_budget_arg $ max_retries_arg $ no_quarantine_arg $ inject_arg
      $ json_arg $ jobs_arg $ trace_arg $ metrics_arg $ progress_arg)

(* --- faults --- *)

let faults_cmd =
  let count_arg =
    Arg.(
      value & opt int 9999999
      & info [ "n" ] ~docv:"N" ~doc:"Show at most N faults.")
  in
  let run (c : Circuits.Bench_circuit.t) scale n =
    let d, g, w, faults = Circuits.Bench_circuit.instantiate c ~scale in
    let verdicts = Classify.classify g faults in
    let r = H.Campaign.run H.Campaign.Eraser g w faults in
    Array.iteri
      (fun i f ->
        if i < n then
          Format.printf "%4d  %-30s %-10s %s@." i
            (Fault.describe d f)
            (if r.Fault.detected.(i) then
               Printf.sprintf "DT@%d" r.Fault.detection_cycle.(i)
             else "live")
            (match verdicts.(i) with
            | Classify.Testable -> ""
            | v -> Classify.verdict_name v))
      faults;
    Format.printf "raw coverage %.2f%%, adjusted (testable only) %s@."
      r.Fault.coverage_pct
      (match Classify.adjusted_coverage verdicts r with
      | Some adj -> Printf.sprintf "%.2f%%" adj
      | None -> "n/a (no testable faults)");
    0
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:"List the fault sites of a campaign with their verdicts.")
    Term.(const run $ circuit_arg $ scale_arg $ count_arg)

(* --- export --- *)

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (default stdout).")

let export_cmd =
  let run (c : Circuits.Bench_circuit.t) output =
    let text = Verilog.to_string (c.build ()) in
    (match output with
    | None -> print_string text
    | Some path ->
        let oc = open_out path in
        output_string oc text;
        close_out oc;
        Format.printf "wrote %s@." path);
    0
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Export a benchmark circuit as Verilog-2001.")
    Term.(const run $ circuit_arg $ output_arg)

(* --- run-verilog --- *)

let run_verilog_cmd =
  let file_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "f"; "file" ] ~docv:"FILE" ~doc:"Verilog source file.")
  in
  let clock_arg =
    Arg.(
      value & opt string "clk"
      & info [ "clock" ] ~docv:"NAME" ~doc:"Clock input name.")
  in
  let cycles_arg =
    Arg.(
      value & opt int 1000
      & info [ "cycles" ] ~docv:"N" ~doc:"Random stimulus length.")
  in
  let max_faults_arg =
    Arg.(
      value & opt int 2000
      & info [ "max-faults" ] ~docv:"N" ~doc:"Fault-list cap.")
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"S" ~doc:"Stimulus / sampling seed.")
  in
  let run file clock cycles max_faults seed =
    let ic = open_in file in
    let src = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Verilog_parser.parse src with
    | exception Verilog_parser.Parse_error msg ->
        Format.eprintf "parse error: %s@." msg;
        1
    | exception Verilog_lexer.Lex_error msg ->
        Format.eprintf "lex error: %s@." msg;
        1
    | design -> (
        match Design.find_signal design clock with
        | exception Not_found ->
            Format.eprintf "no input named %S (use --clock)@." clock;
            1
        | _ ->
            let g = Elaborate.build design in
            let w =
              Circuits.Bench_circuit.random_workload
                ~seed:(Int64.of_int seed) design ~cycles
            in
            let w =
              { w with Workload.clock = Design.find_signal design clock }
            in
            let faults =
              Fault.generate ~max_faults ~seed:(Int64.of_int seed) design
            in
            Format.printf "%s: %d signals, %d faults, %d cycles@."
              design.Design.dname
              (Design.num_signals design)
              (Array.length faults) cycles;
            let r = H.Campaign.run H.Campaign.Eraser g w faults in
            Format.printf "  coverage   %.2f%% (%d/%d)@." r.Fault.coverage_pct
              (Fault.count_detected r) (Array.length faults);
            Format.printf "  wall time  %.3f s@." r.Fault.wall_time;
            Format.printf "  mean detection latency %.1f cycles@."
              (Fault.mean_detection_latency r);
            0)
  in
  Cmd.v
    (Cmd.info "run-verilog"
       ~doc:
         "Parse a Verilog file and run an Eraser fault campaign with random           stimulus.")
    Term.(
      const run $ file_arg $ clock_arg $ cycles_arg $ max_faults_arg
      $ seed_arg)

(* --- vcd --- *)

let vcd_cmd =
  let cycles_arg =
    Arg.(
      value & opt int 200
      & info [ "cycles" ] ~docv:"N" ~doc:"Cycles of stimulus to record.")
  in
  let run (c : Circuits.Bench_circuit.t) output cycles =
    let path = Option.value output ~default:(c.name ^ ".vcd") in
    let d = c.build () in
    let g = Elaborate.build d in
    let w = c.workload d ~cycles in
    Sim.Vcd.dump_drive ~path g ~clock:w.Workload.clock ~cycles
      ~drive:w.Workload.drive;
    Format.printf "wrote %s (%d cycles)@." path cycles;
    0
  in
  Cmd.v
    (Cmd.info "vcd"
       ~doc:"Record a fault-free waveform of a circuit's testbench as VCD.")
    Term.(const run $ circuit_arg $ output_arg $ cycles_arg)

let () =
  let doc = "efficient RTL fault simulation with trimmed execution redundancy" in
  let info = Cmd.info "eraser" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            list_cmd; describe_cmd; run_cmd; campaign_cmd; faults_cmd;
            export_cmd; run_verilog_cmd; vcd_cmd;
          ]))
