type policy = Fixed | Activation | Adaptive

let policy_name = function
  | Fixed -> "fixed"
  | Activation -> "activation"
  | Adaptive -> "adaptive"

let policy_of_string = function
  | "fixed" -> Some Fixed
  | "activation" -> Some Activation
  | "adaptive" -> Some Adaptive
  | _ -> None

type granularity = Size of int | Chunks of int | Lanes of int

type batch = {
  sb_index : int;
  sb_ids : int array;
  sb_start : int;
  sb_cost : float;
}

type warm_input = {
  wi_trace : Sim.Goodtrace.t;
  wi_acts : int array;
  wi_pruned : bool array;
}

type t = {
  sp_policy : policy;
  sp_batches : batch array;
  sp_pruned : int array;
  sp_trace : Sim.Goodtrace.t option;
  sp_acts : int array option;
}

(* Order-preserving decomposition of [order] into batch id arrays. *)
let slice ~granularity order =
  let nlive = Array.length order in
  if nlive = 0 then [||]
  else
    match granularity with
    | Size s ->
        let s = max 1 s in
        let nb = (nlive + s - 1) / s in
        Array.init nb (fun i ->
            let lo = i * s in
            Array.sub order lo (min nlive (lo + s) - lo))
    | Chunks k ->
        let k = max 1 (min k nlive) in
        Array.init k (fun i ->
            let lo = i * nlive / k and hi = (i + 1) * nlive / k in
            Array.sub order lo (hi - lo))
    | Lanes k ->
        (* [Chunks k] with every interior cut snapped down to a lane-group
           boundary (64), so each batch but the last covers whole lane
           groups and the engine's lane masks stay fully occupied. Snapping
           can collapse a chunk to nothing; empty batches are dropped. *)
        let k = max 1 (min k nlive) in
        let cuts = Array.init (k + 1) (fun i -> i * nlive / k) in
        for i = 1 to k - 1 do
          cuts.(i) <- cuts.(i) / 64 * 64
        done;
        let bs = ref [] in
        for i = k - 1 downto 0 do
          let lo = cuts.(i) and hi = cuts.(i + 1) in
          if hi > lo then bs := Array.sub order lo (hi - lo) :: !bs
        done;
        Array.of_list !bs

let min_act acts ids =
  Array.fold_left (fun m id -> min m acts.(id)) max_int ids

(* Adaptive snapshot placement: ask for each batch's exact earliest
   activation boundary, under a budget of as many snapshots as the capture
   already holds. Over budget, the closest adjacent pair merges into its
   earlier member — batches that wanted the later point fall back to a
   cycle still at or before their activation, so soundness is untouched
   and only some skipped prefix is given back. *)
let adapt_snapshots (design : Rtlir.Elaborate.t) trace slices acts =
  let cycles = trace.Sim.Goodtrace.cycles in
  let desired =
    Array.to_list slices
    |> List.filter_map (fun ids ->
           if Array.length ids = 0 then None
           else
             let a = min (min_act acts ids) cycles in
             if a < 1 then None else Some a)
    |> List.sort_uniq compare
  in
  let budget = max 1 (Array.length trace.Sim.Goodtrace.snapshots) in
  let rec trim l =
    let arr = Array.of_list l in
    let nl = Array.length arr in
    if nl <= budget then l
    else begin
      let bi = ref 1 and bg = ref max_int in
      for i = 1 to nl - 1 do
        let gap = arr.(i) - arr.(i - 1) in
        if gap < !bg then begin
          bg := gap;
          bi := i
        end
      done;
      trim (List.filteri (fun i _ -> i <> !bi) l)
    end
  in
  let at = trim desired in
  if at = [] then trace
  else
    Sim.Goodtrace.with_snapshots trace
      ~base:(Sim.State.create design.Rtlir.Elaborate.design)
      ~at

let plan ~policy ~granularity ?capture_mem_limit ?warm
    ~(design : Rtlir.Elaborate.t) ~n () =
  let pruned_mask =
    match warm with Some wi -> wi.wi_pruned | None -> Array.make n false
  in
  let live = ref [] and pruned = ref [] in
  for i = n - 1 downto 0 do
    if pruned_mask.(i) then pruned := i :: !pruned else live := i :: !live
  done;
  let live = Array.of_list !live in
  let pruned = Array.of_list !pruned in
  (* without a capture there are no activation windows: every policy means
     the same thing, so the plan degrades to Fixed *)
  let policy = match warm with None -> Fixed | Some _ -> policy in
  let order =
    match (policy, warm) with
    | Fixed, _ | _, None -> live
    | (Activation | Adaptive), Some wi ->
        let o = Array.copy live in
        Array.sort
          (fun a b ->
            match compare wi.wi_acts.(a) wi.wi_acts.(b) with
            | 0 -> compare a b
            | c -> c)
          o;
        o
  in
  let slices = slice ~granularity order in
  match warm with
  | None ->
      {
        sp_policy = policy;
        sp_batches =
          Array.mapi
            (fun i ids ->
              {
                sb_index = i;
                sb_ids = ids;
                sb_start = 0;
                sb_cost = float_of_int (Array.length ids);
              })
            slices;
        sp_pruned = pruned;
        sp_trace = None;
        sp_acts = None;
      }
  | Some wi ->
      let trace =
        if policy = Adaptive then
          adapt_snapshots design wi.wi_trace slices wi.wi_acts
        else wi.wi_trace
      in
      let trace =
        match capture_mem_limit with
        | Some lim when trace.Sim.Goodtrace.capture_bytes > lim ->
            Sim.Goodtrace.spill trace
        | _ -> trace
      in
      let ev_total = Array.length trace.Sim.Goodtrace.code in
      let batches =
        Array.mapi
          (fun i ids ->
            let start =
              if Array.length ids = 0 then 0
              else
                Sim.Goodtrace.start_for trace
                  ~activation:(min_act wi.wi_acts ids)
            in
            (* cost hint: live faults × good-trace events still to replay *)
            let remaining =
              ev_total - trace.Sim.Goodtrace.cycle_code.(start)
            in
            {
              sb_index = i;
              sb_ids = ids;
              sb_start = start;
              sb_cost = float_of_int (Array.length ids * (remaining + 1));
            })
          slices
      in
      {
        sp_policy = policy;
        sp_batches = batches;
        sp_pruned = pruned;
        sp_trace = Some trace;
        sp_acts = Some wi.wi_acts;
      }

let warm_for p ids =
  match (p.sp_trace, p.sp_acts) with
  | Some trace, Some acts when Array.length ids > 0 ->
      let a = min_act acts ids in
      Some
        { Sim.Goodtrace.trace; start = Sim.Goodtrace.start_for trace ~activation:a }
  | _ -> None

let halve ids =
  let n = Array.length ids in
  if n <= 1 then None
  else
    let h = n / 2 in
    Some (Array.sub ids 0 h, Array.sub ids h (n - h))

let singletons ids = Array.map (fun id -> [| id |]) ids

let to_json p =
  Jsonl.Obj
    [
      ("type", Jsonl.String "plan");
      ("policy", Jsonl.String (policy_name p.sp_policy));
      ("batches", Jsonl.Int (Array.length p.sp_batches));
      ( "starts",
        Jsonl.List
          (Array.to_list
             (Array.map (fun b -> Jsonl.Int b.sb_start) p.sp_batches)) );
    ]
