(** Paper-formatted rendering of experiment results. *)

val environment : Format.formatter -> unit -> unit
(** Table I: the actual evaluation environment of this run. *)

val table2 : Format.formatter -> Experiments.table2_row list -> unit
val table3 : Format.formatter -> Experiments.redundancy_row list -> unit
val fig1b : Format.formatter -> (string * float * float) list -> unit

(** Fig. 6 / Fig. 7: times plus speedups relative to the first engine of
    each row. *)
val perf : title:string -> Format.formatter -> Experiments.perf_row list -> unit

val mem_ablation :
  Format.formatter -> Experiments.mem_ablation_row list -> unit

val resilience : Format.formatter -> Experiments.resilience_row list -> unit

(** Text table for the multicore scaling sweep. *)
val scaling : Format.formatter -> Experiments.scaling_row list -> unit

(** Text table for the good-trace warm-start benchmark. *)
val warmstart : Format.formatter -> Experiments.warmstart_row list -> unit

(** Text table for the cone-refined activation benchmark. *)
val activation : Format.formatter -> Experiments.activation_row list -> unit

(** Text table for the schedule-policy benchmark. *)
val schedule : Format.formatter -> Experiments.schedule_row list -> unit

(** Text table for the lane-packing benchmark. *)
val lanes : Format.formatter -> Experiments.lane_row list -> unit
