(** Campaign runner: one entry point over every engine in the evaluation.

    Engines (paper Section V-A):
    - [Ifsim] — Iverilog-force-style baseline: interpreted, event-driven,
      one full simulation per fault;
    - [Vfsim] — Verilator-based fault simulator: compiled, cycle-based, one
      simulation per fault;
    - [Z01x_proxy] — stand-in for the commercial Z01X: the concurrent
      engine with explicit (input-comparison) redundancy elimination only
      (see DESIGN.md for why this proxy is faithful);
    - [Eraser_mm] ("Eraser--") — concurrent, no redundancy elimination;
    - [Eraser_m] ("Eraser-") — concurrent, explicit elimination;
    - [Eraser] — concurrent, explicit + implicit (Algorithm 1). *)




type engine = Ifsim | Vfsim | Z01x_proxy | Eraser_mm | Eraser_m | Eraser

val engine_name : engine -> string
val all_engines : engine list

(** Redundancy-elimination mode of a concurrent engine; raises
    [Invalid_argument] for the serial baselines [Ifsim] and [Vfsim]. *)
val concurrent_mode : engine -> Engine.Concurrent.mode

(** The one engine-dispatch point: run [engine] over the fault-id subset
    [ids]. The serial baselines get the subset renumbered; concurrent
    engines go through {!Engine.Concurrent.run_batch} with the optional
    config / divergence probe / warm-start trace / precompiled instance
    passed straight through (all ignored by the serial baselines).
    {!Resilient} and every planned batch here share this function — the
    engine match must exist exactly once. *)
val dispatch :
  ?instrument:bool ->
  ?lanes:bool ->
  ?config:Engine.Concurrent.config ->
  ?probe:(int -> (int -> int -> Rtlir.Bits.t) -> (int -> int -> int -> Rtlir.Bits.t) -> unit) ->
  ?goodtrace:Sim.Goodtrace.warm ->
  ?instance:Engine.Concurrent.instance ->
  engine ->
  Rtlir.Elaborate.t ->
  Faultsim.Workload.t ->
  Faultsim.Fault.t array ->
  ids:int array ->
  Faultsim.Fault.result

(** [run ?jobs engine g w faults] — with [jobs > 1] (default 1) the fault
    list is partitioned into [jobs] contiguous chunks simulated by a
    {!Pool} of worker domains. Verdicts and detection cycles are identical
    to the monolithic run for any [jobs] (faulty networks never interact);
    counters tied to the partitioning differ — each worker re-simulates
    the good network ([bn_good], [rtl_good_eval] scale with the partition
    count) and faulty RTL-evaluation sharing is per-partition. For
    byte-identical reports at any [jobs], use {!Resilient.run}, whose
    batch decomposition is independent of the worker count.

    [?warmstart] (default [false], concurrent engines only — the serial
    baselines ignore it) captures the good trace once
    ({!Engine.Concurrent.capture}), drops faults the cone-of-influence
    analysis proves statically undetectable (counted in
    [stats.cone_pruned]; their verdict is reported undetected without
    simulating them), sorts the remaining fault list by activation window
    ({!Engine.Concurrent.activations}) and warm-starts every chunk from
    the latest good-state snapshot at or before its earliest activation.
    Verdicts and detection cycles are identical to the cold run for any
    [jobs]; [bn_good] and [rtl_good_eval] drop to zero for every batch
    (the one capture run is counted in [stats.goodtrace_captures]).
    [?snapshot_every] overrides the capture's snapshot interval (see
    {!Engine.Concurrent.capture}); it only affects warm-started runs.

    [?lanes] (default [false], concurrent engines only) switches every
    dispatched batch to the engine's lane-packed execution mode and the
    plan's granularity to [Lanes jobs] (batch cuts snap to 64-fault
    lane-group boundaries). Verdicts and detection cycles are identical to
    scalar mode; execution counters differ (lane-mode runs also fill the
    [lane_groups] / [scalar_fallbacks] / occupancy stats).

    Whatever the options, execution is "plan, then execute plan": the
    fault set is decomposed by {!Schedule.plan} (granularity
    [Chunks jobs], or [Lanes jobs] under [?lanes]), every batch is
    dispatched through {!dispatch} with the
    plan's warm start, and results merge in plan order. [?schedule] picks
    the planner policy (default [Adaptive] for warm runs; cold runs always
    degrade to [Fixed], which reproduces the historical contiguous-chunk
    partition). [?capture_mem_limit] spills the planned trace to a
    disk-backed mmap when [capture_bytes] exceeds it. Verdicts are
    byte-identical across policies — batches never interact. *)
val run :
  ?instrument:bool ->
  ?lanes:bool ->
  ?jobs:int ->
  ?warmstart:bool ->
  ?snapshot_every:int ->
  ?schedule:Schedule.policy ->
  ?capture_mem_limit:int ->
  engine ->
  Rtlir.Elaborate.t ->
  Faultsim.Workload.t ->
  Faultsim.Fault.t array ->
  Faultsim.Fault.result

(** Instantiate a registered circuit and run it on one engine. *)
val run_circuit :
  ?instrument:bool ->
  ?lanes:bool ->
  ?jobs:int ->
  ?warmstart:bool ->
  ?snapshot_every:int ->
  ?schedule:Schedule.policy ->
  ?capture_mem_limit:int ->
  engine ->
  Circuits.Bench_circuit.t ->
  scale:float ->
  Faultsim.Fault.result
