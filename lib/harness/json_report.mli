(** Machine-readable campaign results (JSON), for CI dashboards and
    post-processing. Hand-rolled emitter — no external dependency. *)

(** [campaign ppf ~design ~engine ~faults ~verdicts result] writes one JSON
    object: campaign metadata, the redundancy statistics, and one record per
    fault (site, kind, static classification, detection verdict and cycle). *)
val campaign :
  Format.formatter ->
  design:Rtlir.Design.t ->
  engine:string ->
  faults:Faultsim.Fault.t array ->
  verdicts:Faultsim.Classify.verdict array ->
  Faultsim.Fault.result ->
  unit

(** [verdicts ppf ~design ~engine ~faults result] — the canonical
    verdicts-only report: per-fault detection verdicts and the coverage
    they imply, nothing else. Two campaigns that converged to the same
    verdicts render byte-identically regardless of retries, quarantines or
    divergences along the way — [eraser chaos] diffs this report between a
    chaos run and a clean run. *)
val verdicts :
  Format.formatter ->
  design:Rtlir.Design.t ->
  engine:string ->
  faults:Faultsim.Fault.t array ->
  Faultsim.Fault.result ->
  unit

(** [resilient ppf ... summary] — report of a {!Resilient} campaign: the
    campaign fields above plus batch counts, the divergence records and a
    per-fault quarantine flag. Contains {e no} timing, so the report of a
    resumed campaign is byte-identical to the uninterrupted one (pair it
    with {!Resilient.write_atomic} for crash-safe emission). *)
val resilient :
  Format.formatter ->
  design:Rtlir.Design.t ->
  engine:string ->
  faults:Faultsim.Fault.t array ->
  verdicts:Faultsim.Classify.verdict array ->
  Resilient.summary ->
  unit
