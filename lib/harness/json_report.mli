(** Machine-readable campaign results (JSON), for CI dashboards and
    post-processing. Hand-rolled emitter — no external dependency. *)

(** [campaign ppf ~design ~engine ~faults ~verdicts result] writes one JSON
    object: campaign metadata, the redundancy statistics, and one record per
    fault (site, kind, static classification, detection verdict and cycle). *)
val campaign :
  Format.formatter ->
  design:Rtlir.Design.t ->
  engine:string ->
  faults:Faultsim.Fault.t array ->
  verdicts:Faultsim.Classify.verdict array ->
  Faultsim.Fault.result ->
  unit

(** [resilient ppf ... summary] — report of a {!Resilient} campaign: the
    campaign fields above plus batch counts, the divergence records and a
    per-fault quarantine flag. Contains {e no} timing, so the report of a
    resumed campaign is byte-identical to the uninterrupted one (pair it
    with {!Resilient.write_atomic} for crash-safe emission). *)
val resilient :
  Format.formatter ->
  design:Rtlir.Design.t ->
  engine:string ->
  faults:Faultsim.Fault.t array ->
  verdicts:Faultsim.Classify.verdict array ->
  Resilient.summary ->
  unit
