open Faultsim

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* JSON has no NaN/Infinity: a non-finite value (and an undefined one,
   carried as [None]) renders as [null] rather than a literal the parser
   chokes on. *)
let opt_float fmt = function
  | Some v when Float.is_finite v -> Printf.sprintf fmt v
  | Some _ | None -> "null"

let kind_name (f : Fault.t) =
  match f.stuck with
  | Fault.Stuck_at_0 -> "stuck-at-0"
  | Fault.Stuck_at_1 -> "stuck-at-1"
  | Fault.Flip_at c -> Printf.sprintf "flip@%d" c

let verdict_key = function
  | Classify.Testable -> "testable"
  | Classify.Untestable_constant -> "untestable-constant"
  | Classify.Untestable_unobservable -> "untestable-unobservable"

let campaign ppf ~design ~engine ~faults ~verdicts (r : Fault.result) =
  let s = r.Fault.stats in
  Format.fprintf ppf "{@.";
  Format.fprintf ppf "  \"design\": \"%s\",@."
    (escape design.Rtlir.Design.dname);
  Format.fprintf ppf "  \"engine\": \"%s\",@." (escape engine);
  Format.fprintf ppf "  \"faults\": %d,@." (Array.length faults);
  Format.fprintf ppf "  \"detected\": %d,@." (Fault.count_detected r);
  Format.fprintf ppf "  \"coverage_pct\": %.4f,@." r.Fault.coverage_pct;
  Format.fprintf ppf "  \"adjusted_coverage_pct\": %s,@."
    (opt_float "%.4f" (Classify.adjusted_coverage verdicts r));
  Format.fprintf ppf "  \"wall_time_s\": %.6f,@." r.Fault.wall_time;
  Format.fprintf ppf "  \"mean_detection_latency\": %s,@."
    (opt_float "%.2f" (Fault.mean_detection_latency_opt r));
  Format.fprintf ppf
    "  \"stats\": { \"bn_good\": %d, \"bn_fault_exec\": %d, \
     \"bn_skipped_explicit\": %d, \"bn_skipped_implicit\": %d, \
     \"rtl_good_eval\": %d, \"rtl_fault_eval\": %d, \"eliminated\": %d, \
     \"explicit_pct\": %.4f, \"implicit_pct\": %.4f, \
     \"good_cycles_skipped\": %d, \"goodtrace_captures\": %d, "
    s.Stats.bn_good s.Stats.bn_fault_exec s.Stats.bn_skipped_explicit
    s.Stats.bn_skipped_implicit s.Stats.rtl_good_eval s.Stats.rtl_fault_eval
    (Stats.eliminated s) (Stats.explicit_pct s) (Stats.implicit_pct s)
    s.Stats.good_cycles_skipped s.Stats.goodtrace_captures;
  (* plan fields only when a schedule plan ran (warm campaigns), so cold
     reports keep their historical byte format *)
  if s.Stats.plan_batches > 0 then
    Format.fprintf ppf "\"plan_batches\": %d, \"plan_snapshots\": %d, "
      s.Stats.plan_batches s.Stats.plan_snapshots;
  (* lane fields only when lane mode ran, so scalar reports keep their
     historical byte format *)
  if s.Stats.lane_groups > 0 then
    Format.fprintf ppf
      "\"lane_groups\": %d, \"lane_occupancy_mean\": %.4f, \
       \"scalar_fallbacks\": %d, "
      s.Stats.lane_groups
      (Stats.lane_occupancy_mean s)
      s.Stats.scalar_fallbacks;
  Format.fprintf ppf "\"bn_seconds\": %.6f, \"cpu_seconds\": %.6f },@."
    s.Stats.bn_seconds s.Stats.cpu_seconds;
  Format.fprintf ppf "  \"per_proc\": [@.";
  Array.iteri
    (fun i (row : Stats.proc_row) ->
      Format.fprintf ppf
        "    { \"name\": \"%s\", \"exec\": %d, \"skip_implicit\": %d, \
         \"skip_explicit\": %d }%s@."
        (escape row.Stats.pr_name) row.Stats.pr_exec row.Stats.pr_impl
        row.Stats.pr_expl
        (if i = Array.length s.Stats.per_proc - 1 then "" else ","))
    s.Stats.per_proc;
  Format.fprintf ppf "  ],@.";
  Format.fprintf ppf "  \"fault_list\": [@.";
  Array.iteri
    (fun i (f : Fault.t) ->
      Format.fprintf ppf
        "    { \"id\": %d, \"signal\": \"%s\", \"bit\": %d, \"kind\": \
         \"%s\", \"class\": \"%s\", \"detected\": %b, \"cycle\": %d }%s@."
        f.fid
        (escape (Rtlir.Design.signal_name design f.signal))
        f.bit (kind_name f)
        (verdict_key verdicts.(i))
        r.Fault.detected.(i) r.Fault.detection_cycle.(i)
        (if i = Array.length faults - 1 then "" else ","))
    faults;
  Format.fprintf ppf "  ]@.";
  Format.fprintf ppf "}@."

(* The canonical verdicts-only report: nothing but the final per-fault
   verdicts and the coverage they imply. Execution texture — stats,
   retries, divergences, quarantine — is deliberately absent, so two
   campaigns that converged to the same verdicts render byte-identically
   no matter how differently they got there. This is the report `eraser
   chaos` diffs against a clean run. *)
let verdicts ppf ~design ~engine ~faults (r : Fault.result) =
  Format.fprintf ppf "{@.";
  Format.fprintf ppf "  \"design\": \"%s\",@."
    (escape design.Rtlir.Design.dname);
  Format.fprintf ppf "  \"engine\": \"%s\",@." (escape engine);
  Format.fprintf ppf "  \"faults\": %d,@." (Array.length faults);
  Format.fprintf ppf "  \"detected\": %d,@." (Fault.count_detected r);
  Format.fprintf ppf "  \"coverage_pct\": %.4f,@." r.Fault.coverage_pct;
  Format.fprintf ppf "  \"verdicts\": [@.";
  Array.iteri
    (fun i (f : Fault.t) ->
      Format.fprintf ppf
        "    { \"id\": %d, \"signal\": \"%s\", \"bit\": %d, \"kind\": \
         \"%s\", \"detected\": %b, \"cycle\": %d }%s@."
        f.fid
        (escape (Rtlir.Design.signal_name design f.signal))
        f.bit (kind_name f) r.Fault.detected.(i) r.Fault.detection_cycle.(i)
        (if i = Array.length faults - 1 then "" else ","))
    faults;
  Format.fprintf ppf "  ]@.";
  Format.fprintf ppf "}@."

(* The resilient report deliberately contains no timing: it must be
   byte-identical between a cold run and a journal resume of the same
   campaign (the smoke test diffs the two), and every field below is a
   deterministic function of (design, engine, workload, fault list,
   batching). *)
let resilient ppf ~design ~engine ~faults ~verdicts (s : Resilient.summary) =
  let r = s.Resilient.result in
  let st = r.Fault.stats in
  let quarantined = Hashtbl.create 8 in
  List.iter
    (fun f -> Hashtbl.replace quarantined f ())
    s.Resilient.quarantined;
  Format.fprintf ppf "{@.";
  Format.fprintf ppf "  \"design\": \"%s\",@."
    (escape design.Rtlir.Design.dname);
  Format.fprintf ppf "  \"engine\": \"%s\",@." (escape engine);
  Format.fprintf ppf "  \"faults\": %d,@." (Array.length faults);
  Format.fprintf ppf "  \"detected\": %d,@." (Fault.count_detected r);
  Format.fprintf ppf "  \"coverage_pct\": %.4f,@." r.Fault.coverage_pct;
  Format.fprintf ppf "  \"adjusted_coverage_pct\": %s,@."
    (opt_float "%.4f" (Classify.adjusted_coverage verdicts r));
  Format.fprintf ppf "  \"batches\": %d,@." s.Resilient.batches_total;
  Format.fprintf ppf "  \"oracle_checked_batches\": %d,@."
    s.Resilient.oracle_checked;
  (* emitted only when the cone analysis pruned something, so cold reports
     keep their historical byte format (and cold-vs-resume stays
     byte-identical: the pruned set is deterministic in the design) *)
  if s.Resilient.pruned_faults <> [] then
    Format.fprintf ppf "  \"statically_pruned\": %d,@."
      (List.length s.Resilient.pruned_faults);
  Format.fprintf ppf
    "  \"stats\": { \"bn_good\": %d, \"bn_fault_exec\": %d, \
     \"bn_skipped_explicit\": %d, \"bn_skipped_implicit\": %d, \
     \"rtl_good_eval\": %d, \"rtl_fault_eval\": %d },@."
    st.Stats.bn_good st.Stats.bn_fault_exec st.Stats.bn_skipped_explicit
    st.Stats.bn_skipped_implicit st.Stats.rtl_good_eval
    st.Stats.rtl_fault_eval;
  Format.fprintf ppf "  \"divergences\": [@.";
  List.iteri
    (fun i (d : Resilient.divergence) ->
      Format.fprintf ppf
        "    { \"fault\": %d, \"batch\": %d, \"engine_detected\": %b, \
         \"engine_cycle\": %d, \"oracle_detected\": %b, \"oracle_cycle\": \
         %d }%s@."
        d.Resilient.div_fault d.Resilient.div_batch d.Resilient.engine_detected
        d.Resilient.engine_cycle d.Resilient.oracle_detected
        d.Resilient.oracle_cycle
        (if i = List.length s.Resilient.divergences - 1 then "" else ","))
    s.Resilient.divergences;
  Format.fprintf ppf "  ],@.";
  Format.fprintf ppf "  \"fault_list\": [@.";
  Array.iteri
    (fun i (f : Fault.t) ->
      Format.fprintf ppf
        "    { \"id\": %d, \"signal\": \"%s\", \"bit\": %d, \"kind\": \
         \"%s\", \"class\": \"%s\", \"detected\": %b, \"cycle\": %d, \
         \"quarantined\": %b }%s@."
        f.fid
        (escape (Rtlir.Design.signal_name design f.signal))
        f.bit (kind_name f)
        (verdict_key verdicts.(i))
        r.Fault.detected.(i) r.Fault.detection_cycle.(i)
        (Hashtbl.mem quarantined f.fid)
        (if i = Array.length faults - 1 then "" else ","))
    faults;
  Format.fprintf ppf "  ]@.";
  Format.fprintf ppf "}@."
