let read_first_line path =
  try
    let ic = open_in path in
    let line = try input_line ic with End_of_file -> "" in
    close_in ic;
    Some line
  with Sys_error _ -> None

let cpu_model () =
  let model = ref "unknown CPU" in
  (try
     let ic = open_in "/proc/cpuinfo" in
     (try
        while true do
          let line = input_line ic in
          if String.length line > 10 && String.sub line 0 10 = "model name"
          then begin
            (match String.index_opt line ':' with
            | Some i ->
                model :=
                  String.trim (String.sub line (i + 1) (String.length line - i - 1))
            | None -> ());
            raise Exit
          end
        done
      with End_of_file | Exit -> ());
     close_in ic
   with Sys_error _ -> ());
  !model

let environment ppf () =
  Format.fprintf ppf "TABLE I: Evaluation Environment@.";
  Format.fprintf ppf "  CPU      | %s@." (cpu_model ());
  let os =
    match read_first_line "/etc/os-release" with
    | Some line -> line
    | None -> Sys.os_type
  in
  Format.fprintf ppf "  OS       | %s@." os;
  Format.fprintf ppf "  Compiler | OCaml %s (native)@." Sys.ocaml_version;
  Format.fprintf ppf
    "  Simulator| Eraser (this repo); IFsim / VFsim / Z01X-proxy (built-in \
     baselines)@."

let table2 ppf rows =
  Format.fprintf ppf "TABLE II: Benchmark Information@.";
  Format.fprintf ppf "  %-12s %9s %7s %7s | %16s@." "Benchmark" "#Stimulus"
    "#Cells" "#Faults" "Fault coverage(%)";
  Format.fprintf ppf "  %-12s %9s %7s %7s | %8s %8s@." "" "" "" "" "Eraser"
    "Oracle";
  List.iter
    (fun (r : Experiments.table2_row) ->
      Format.fprintf ppf "  %-12s %9d %7d %7d | %8.2f %8.2f%s@." r.t2_name
        r.t2_stimulus r.t2_cells r.t2_faults r.t2_cov_eraser r.t2_cov_oracle
        (if r.t2_cov_eraser = r.t2_cov_oracle then "" else "  <-- MISMATCH"))
    rows

let table3 ppf rows =
  Format.fprintf ppf
    "TABLE III: Proportion of Redundant Behavioral Node Executions@.";
  Format.fprintf ppf "  %-12s %11s %12s %12s %11s %11s@." "Benchmark"
    "TimeForBN(%)" "#TotalBNExec" "#Elimination" "Explicit(%)" "Implicit(%)";
  let avg_e = ref 0.0 and avg_i = ref 0.0 and n = ref 0 in
  List.iter
    (fun (r : Experiments.redundancy_row) ->
      avg_e := !avg_e +. r.r_explicit_pct;
      avg_i := !avg_i +. r.r_implicit_pct;
      incr n;
      Format.fprintf ppf "  %-12s %11.0f %12d %12d %11.0f %11.0f@." r.r_name
        r.r_bn_time_pct r.r_total_bn r.r_eliminated r.r_explicit_pct
        r.r_implicit_pct)
    rows;
  if !n > 0 then
    Format.fprintf ppf "  %-12s %11s %12s %12s %11.0f %11.0f@." "Average" "-"
      "-" "-"
      (!avg_e /. float_of_int !n)
      (!avg_i /. float_of_int !n)

let fig1b ppf rows =
  Format.fprintf ppf
    "Fig. 1(b): explicit vs implicit redundancy (share of faulty behavioral \
     executions)@.";
  List.iter
    (fun (name, e, i) ->
      Format.fprintf ppf "  %-12s explicit %5.1f%%  implicit %5.1f%%  \
                          (executed %5.1f%%)@."
        name e i
        (100.0 -. e -. i))
    rows

let perf ~title ppf rows =
  Format.fprintf ppf "%s@." title;
  match rows with
  | [] -> ()
  | first :: _ ->
      let engines = List.map fst first.Experiments.p_times in
      let base = List.hd engines in
      Format.fprintf ppf "  %-12s" "Benchmark";
      List.iter
        (fun e -> Format.fprintf ppf " %9s(s) %7s" (Campaign.engine_name e) "x")
        engines;
      Format.fprintf ppf "@.";
      List.iter
        (fun (r : Experiments.perf_row) ->
          Format.fprintf ppf "  %-12s" r.p_name;
          let tb = List.assoc base r.p_times in
          List.iter
            (fun e ->
              let t = List.assoc e r.p_times in
              Format.fprintf ppf " %12.3f %6.1fx" t (tb /. t))
            engines;
          Format.fprintf ppf "@.")
        rows;
      List.iter
        (fun e ->
          if e <> base then
            Format.fprintf ppf "  geomean speedup %s vs %s: %.1fx@."
              (Campaign.engine_name e)
              (Campaign.engine_name base)
              (Experiments.mean_speedup rows ~num:e ~den:base))
        engines

let mem_ablation ppf rows =
  Format.fprintf ppf
    "Ablation: per-word vs whole-memory visibility in the Algorithm 1 walk@.";
  Format.fprintf ppf "  %-12s %14s %14s %10s %10s@." "Benchmark"
    "impl(exact)" "impl(whole)" "t(exact)" "t(whole)";
  List.iter
    (fun (r : Experiments.mem_ablation_row) ->
      Format.fprintf ppf "  %-12s %14d %14d %9.3fs %9.3fs@." r.m_name
        r.m_implicit_exact r.m_implicit_conservative r.m_time_exact
        r.m_time_conservative)
    rows

let scaling ppf rows =
  Format.fprintf ppf
    "Scaling: fault-partition parallelism over worker domains@.";
  Format.fprintf ppf "  %-12s %7s %7s | %s@." "Benchmark" "#Faults" "#Cycles"
    "per jobs: wall(s) faults/s speedup";
  List.iter
    (fun (r : Experiments.scaling_row) ->
      Format.fprintf ppf "  %-12s %7d %7d |" r.sc_name r.sc_faults r.sc_cycles;
      List.iter
        (fun (p : Experiments.scaling_point) ->
          Format.fprintf ppf "  j%d: %.3f %.0f %.2fx" p.sp_jobs p.sp_wall
            p.sp_faults_per_sec p.sp_speedup)
        r.sc_points;
      Format.fprintf ppf "@.")
    rows

let warmstart ppf rows =
  Format.fprintf ppf
    "Warm start: good-trace capture + activation-window snapshots vs cold@.";
  Format.fprintf ppf "  %-12s %7s %7s %8s %9s %9s %8s %9s %8s %10s %8s@."
    "Benchmark" "#Faults" "#Cycles" "#Batches" "cold(s)" "warm(s)" "speedup"
    "bn_good" "skipped" "capture(B)" "verdicts";
  List.iter
    (fun (r : Experiments.warmstart_row) ->
      Format.fprintf ppf
        "  %-12s %7d %7d %8d %9.3f %9.3f %7.2fx %4d/%-4d %8d %10d %8s@."
        r.ws_name r.ws_faults r.ws_cycles r.ws_batches r.ws_cold_wall
        r.ws_warm_wall r.ws_speedup r.ws_warm_bn_good r.ws_cold_bn_good
        r.ws_cycles_skipped r.ws_capture_bytes
        (if r.ws_verdicts_equal then "equal" else "DIFFER"))
    rows

let activation ppf rows =
  Format.fprintf ppf
    "Cone activation: legacy vs cone-refined windows and skipped prefixes@.";
  Format.fprintf ppf "  %-12s %7s %7s %8s %7s %10s %10s %9s %9s %8s@."
    "Benchmark" "#Faults" "#Cycles" "#Batches" "pruned" "win(leg)" "win(cone)"
    "skip(leg)" "skip(cone)" "verdicts";
  List.iter
    (fun (r : Experiments.activation_row) ->
      Format.fprintf ppf
        "  %-12s %7d %7d %8d %7d %10d %10d %9d %9d %8s@." r.act_name
        r.act_faults r.act_cycles r.act_batches r.act_pruned
        r.act_legacy_window_sum r.act_cone_window_sum r.act_legacy_skipped
        r.act_cone_skipped
        (if r.act_verdicts_equal then "equal" else "DIFFER"))
    rows

let schedule ppf rows =
  Format.fprintf ppf
    "Schedule: planner policies over one shared good-trace capture@.";
  Format.fprintf ppf "  %-12s %7s %7s %9s %10s | %s@." "Benchmark" "#Faults"
    "#Cycles" "cold(s)" "capture(s)"
    "per policy: skipped batches snapshots wall(s) verdicts";
  List.iter
    (fun (r : Experiments.schedule_row) ->
      Format.fprintf ppf "  %-12s %7d %7d %9.3f %10.3f |" r.sch_name
        r.sch_faults r.sch_cycles r.sch_cold_wall r.sch_capture_wall;
      List.iter
        (fun (p : Experiments.schedule_point) ->
          Format.fprintf ppf "  %s: %d %d %d %.3f %s" p.sch_policy
            p.sch_skipped p.sch_batches p.sch_snapshots p.sch_wall
            (if p.sch_verdicts_equal then "equal" else "DIFFER"))
        r.sch_points;
      Format.fprintf ppf "@.")
    rows

let lanes ppf rows =
  Format.fprintf ppf
    "Lanes: scalar vs 64-wide lane-packed execution (one shared capture)@.";
  Format.fprintf ppf "  %-12s %7s %7s %10s %10s %10s %10s %6s %6s %5s %8s@."
    "Benchmark" "#Faults" "#Cycles" "scalar(s)" "packed(s)" "scalar_bn"
    "packed_bn" "groups" "occ" "fb" "verdicts";
  List.iter
    (fun (r : Experiments.lane_row) ->
      Format.fprintf ppf
        "  %-12s %7d %7d %10.3f %10.3f %10d %10d %6d %6.1f %5d %8s@."
        r.ln_name r.ln_faults r.ln_cycles r.ln_scalar_wall r.ln_packed_wall
        r.ln_scalar_bn r.ln_packed_bn r.ln_groups r.ln_occupancy_mean
        r.ln_fallbacks
        (if r.ln_verdicts_equal then "equal" else "DIFFER"))
    rows

let resilience ppf rows =
  Format.fprintf ppf
    "Resilient runner: batched / resumed coverage parity and divergence \
     quarantine@.";
  Format.fprintf ppf "  %-12s %8s %10s %10s %10s %6s %11s@." "Benchmark"
    "#Batches" "cov(mono)" "cov(batch)" "cov(resume)" "#Div" "quarantine";
  List.iter
    (fun (r : Experiments.resilience_row) ->
      Format.fprintf ppf "  %-12s %8d %9.2f%% %9.2f%% %9.2f%% %6d %11s@."
        r.res_name r.res_batches r.res_cov_monolithic r.res_cov_batched
        r.res_cov_resumed r.res_divergences
        (if r.res_quarantine_ok then "ok" else "FAILED"))
    rows
