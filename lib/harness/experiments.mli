(** Reproduction of every table and figure in the paper's evaluation
    (Section V). Each function runs the necessary campaigns and returns
    structured rows; {!Report} renders them in the paper's format.

    [scale] scales both the stimulus length and the fault-list size
    relative to the paper's Table II parameters (1.0 = full size). *)

type table2_row = {
  t2_name : string;
  t2_stimulus : int;
  t2_cells : int;
  t2_faults : int;
  t2_cov_eraser : float;
  t2_cov_oracle : float;  (** per-fault serial oracle (the Z01X column) *)
}

(** Table II: benchmark information and fault-coverage parity. *)
val table2 : scale:float -> table2_row list

type redundancy_row = {
  r_name : string;
  r_bn_time_pct : float;  (** share of runtime spent in behavioral nodes *)
  r_total_bn : int;  (** faulty behavioral executions without elimination *)
  r_eliminated : int;
  r_explicit_pct : float;
  r_implicit_pct : float;
}

(** Table III (and the data behind Fig. 1(b)): proportion of redundant
    behavioral-node executions, from an instrumented Eraser run. *)
val table3 : scale:float -> redundancy_row list

(** Fig. 1(b): explicit/implicit shares of all behavioral executions for the
    five circuits shown in the paper. *)
val fig1b : scale:float -> (string * float * float) list

type perf_row = {
  p_name : string;
  p_times : (Campaign.engine * float) list;  (** seconds *)
}

(** Fig. 6: execution time of IFsim, VFsim, Z01X-proxy and Eraser; IFsim is
    the speedup baseline. *)
val fig6 : scale:float -> perf_row list

(** Fig. 7: ablation — Eraser--, Eraser-, Eraser. *)
val fig7 : scale:float -> perf_row list

(** Geometric-mean speedup of [num] over [den] across rows. *)
val mean_speedup :
  perf_row list -> num:Campaign.engine -> den:Campaign.engine -> float

type mem_ablation_row = {
  m_name : string;
  m_implicit_exact : int;  (** implicit skips with per-word mem checks *)
  m_implicit_conservative : int;  (** with the whole-memory rule *)
  m_time_exact : float;
  m_time_conservative : float;
}

(** Ablation of the per-word memory-visibility refinement (DESIGN.md §6) on
    the memory-heavy circuits. *)
val mem_ablation : scale:float -> mem_ablation_row list

type resilience_row = {
  res_name : string;
  res_batches : int;
  res_cov_monolithic : float;  (** one Campaign.run over the whole list *)
  res_cov_batched : float;  (** journaled Resilient.run, cold *)
  res_cov_resumed : float;  (** after dropping the journal's last record *)
  res_divergences : int;  (** quarantines under an injected engine bug *)
  res_quarantine_ok : bool;
      (** the injected divergence was caught and the final verdicts still
          match the monolithic run *)
}

(** Exercise the resilient runner end to end (DESIGN.md §8): batched ==
    monolithic coverage, crash/resume equivalence through the journal, and
    quarantine of an injected engine divergence. *)
val resilience : scale:float -> resilience_row list

type scaling_point = {
  sp_jobs : int;
  sp_wall : float;  (** whole-campaign wall time at this worker count *)
  sp_faults_per_sec : float;
  sp_speedup : float;  (** vs the row's first point (jobs = 1) *)
  sp_stats : Faultsim.Stats.t;
      (** redundancy-hit counters — identical across the row's points, a
          built-in check that parallelism changed no simulation work *)
}

type scaling_row = {
  sc_name : string;
  sc_faults : int;
  sc_cycles : int;
  sc_points : scaling_point list;
}

(** Multicore scaling sweep (DESIGN.md §9): every Table II circuit through
    the resilient runner at each worker count in [jobs] (default
    [1; 2; 4; 8]). Speedups are relative to the first point; real gains of
    course require as many hardware cores as workers. *)
val scaling : ?jobs:int list -> scale:float -> unit -> scaling_row list

(** One-line JSON document for [BENCH_scaling.json] (parse it back with
    {!Jsonl.parse}): [{experiment, scale, circuits: [{name, faults, cycles,
    points: [{jobs, wall_s, faults_per_sec, speedup, stats}]}]}]. *)
val scaling_json : scale:float -> scaling_row list -> Jsonl.t

type warmstart_row = {
  ws_name : string;
  ws_faults : int;
  ws_cycles : int;
  ws_batches : int;
  ws_cold_wall : float;  (** cold resilient campaign *)
  ws_warm_wall : float;  (** warm campaign, capture run included *)
  ws_speedup : float;  (** cold / warm *)
  ws_cold_bn_good : int;  (** good executions summed over cold batches *)
  ws_warm_bn_good : int;  (** must be 0: every batch replays the trace *)
  ws_cycles_skipped : int;  (** dead-prefix cycles skipped, all batches *)
  ws_captures : int;  (** good-trace capture runs (always 1) *)
  ws_capture_bytes : int;  (** heap footprint of the capture *)
  ws_verdicts_equal : bool;
      (** warm detected sets and detection cycles match cold exactly *)
}

(** Good-network checkpointing benchmark (DESIGN.md §13): the same
    resilient campaign cold and warm-started, on the circuits where the
    good network dominates. *)
val warmstart : ?jobs:int -> scale:float -> unit -> warmstart_row list

(** One-line JSON document for [BENCH_warmstart.json]: [{experiment,
    scale, circuits: [{name, faults, cycles, batches, cold_wall_s,
    warm_wall_s, speedup, cold_bn_good, warm_bn_good,
    good_cycles_skipped, goodtrace_captures, capture_bytes,
    verdicts_equal}]}]. *)
val warmstart_json : scale:float -> warmstart_row list -> Jsonl.t

type activation_row = {
  act_name : string;
  act_faults : int;
  act_cycles : int;
  act_batches : int;
  act_pruned : int;  (** faults the cone analysis excluded from simulation *)
  act_legacy_window_sum : int;
      (** sum of per-fault activation windows under the pre-cone
          first-divergence rule *)
  act_cone_window_sum : int;  (** same, under the cone-refined rule *)
  act_legacy_skipped : int;
      (** prefix cycles the legacy windows would have skipped under the
          identical trace / batching policy (offline replay) *)
  act_cone_skipped : int;
      (** [good_cycles_skipped] actually measured on the warm campaign *)
  act_cold_wall : float;
  act_cone_wall : float;
  act_verdicts_equal : bool;
}

(** Cone-refined activation benchmark (DESIGN.md §14): cold vs cone-warm
    resilient campaigns on the comb-heavy circuits, with an offline replay
    of the legacy (pre-cone) activation rule over the same trace and
    batching so the two skipped-prefix numbers are directly comparable. *)
val activation :
  ?jobs:int -> ?snapshot_every:int -> scale:float -> unit -> activation_row list

(** One-line JSON document for [BENCH_activation.json]: [{experiment,
    scale, circuits: [{name, faults, cycles, batches, statically_pruned,
    legacy_window_sum, cone_window_sum, legacy_cycles_skipped,
    good_cycles_skipped, cold_wall_s, cone_wall_s, verdicts_equal}]}]. *)
val activation_json : scale:float -> activation_row list -> Jsonl.t

type schedule_point = {
  sch_policy : string;  (** {!Schedule.policy_name} *)
  sch_skipped : int;  (** [good_cycles_skipped] under this policy *)
  sch_wall : float;  (** warm campaign wall time (capture excluded) *)
  sch_batches : int;  (** plan batches executed *)
  sch_snapshots : int;  (** snapshots held by the planned trace *)
  sch_verdicts_equal : bool;  (** verdicts match the cold baseline *)
}

type schedule_row = {
  sch_name : string;
  sch_faults : int;
  sch_cycles : int;
  sch_cold_wall : float;  (** cold resilient baseline *)
  sch_capture_wall : float;  (** the one shared capture run *)
  sch_points : schedule_point list;  (** fixed, activation, adaptive *)
}

(** Schedule-policy benchmark (DESIGN.md §15): the same warm resilient
    campaign under each planner policy, sharing one good-trace capture
    through [config.capture], against one cold baseline. Every policy must
    reproduce the cold verdicts exactly. *)
val schedule : ?jobs:int -> scale:float -> unit -> schedule_row list

(** One-line JSON document for [BENCH_schedule.json]: [{experiment, scale,
    circuits: [{name, faults, cycles, cold_wall_s, capture_wall_s,
    policies: [{policy, good_cycles_skipped, wall_s, plan_batches,
    plan_snapshots, verdicts_equal}]}]}]. *)
val schedule_json : scale:float -> schedule_row list -> Jsonl.t

type lane_row = {
  ln_name : string;
  ln_faults : int;
  ln_cycles : int;
  ln_capture_wall : float;  (** the one shared capture run *)
  ln_scalar_wall : float;  (** warm scalar campaign, best of [reps] *)
  ln_packed_wall : float;  (** warm lane-packed campaign, best of [reps] *)
  ln_scalar_bn : int;  (** [bn_fault_exec] of the scalar run *)
  ln_packed_bn : int;  (** [bn_fault_exec] of the lane-packed run *)
  ln_groups : int;
  ln_occupancy_mean : float;
  ln_fallbacks : int;
  ln_verdicts_equal : bool;  (** packed verdicts match the scalar run *)
}

(** Lane-packing benchmark (DESIGN.md §16): the same warm resilient
    campaign scalar and lane-packed, sharing one good-trace capture per
    circuit through [config.capture]. The packed run must reproduce the
    scalar verdicts exactly while executing strictly fewer faulty
    behavior-network passes. *)
val lanes : ?jobs:int -> ?reps:int -> scale:float -> unit -> lane_row list

(** One-line JSON document for [BENCH_lanes.json]: [{experiment, scale,
    circuits: [{name, faults, cycles, capture_wall_s, scalar_wall_s,
    packed_wall_s, scalar_bn_fault_exec, packed_bn_fault_exec,
    lane_groups, lane_occupancy_mean, scalar_fallbacks,
    verdicts_equal}]}]. *)
val lanes_json : scale:float -> lane_row list -> Jsonl.t
