(** The fault-schedule planner: one cost-model-driven batching layer shared
    by every execution path ({!Campaign}, {!Resilient}, the pool workers,
    and — through {!halve} — the retry/quarantine/shrink refinements).

    A {!t} ("plan") fixes, before any fault simulation runs, how the fault
    set is decomposed into ordered batches, which good-trace snapshot each
    batch warm-starts from, and a relative cost hint per batch (used to
    submit long batches to the pool first). Planning is deterministic: the
    same inputs always produce the same plan, which is what lets
    {!Resilient} journal the plan as a typed record and validate it on
    resume, and what makes reports byte-identical across [--jobs] values.

    Because batches never interact — each fault's verdict depends only on
    its own injected run against the shared good network — any plan is
    sound: stats-free verdict reports are byte-identical for {e any}
    permutation partition of the fault set. Policies only trade how much
    redundant good-network prefix the engine gets to skip. *)

(** How faults are grouped and warm-started:

    - [Fixed] — batches cut from ascending fault ids, snapshots on the
      capture's fixed grid. On a cold run this reproduces the historical
      contiguous-chunk decomposition byte-for-byte.
    - [Activation] — faults sorted by activation window (ties by id) so
      batches share dead prefixes; snapshots stay on the capture grid and
      each batch starts from the latest grid snapshot at or before its
      earliest activation.
    - [Adaptive] — activation-sorted batches, but the snapshot set itself
      is replanned: each batch's exact earliest-activation boundary is
      reconstructed post hoc ({!Sim.Goodtrace.with_snapshots}) under a
      budget of at most as many snapshots as the capture already held, so
      the skipped prefix is maximal at unchanged snapshot memory. Densely
      clustered activation boundaries are merged (closest pair first,
      keeping the earlier — hence still sound — cycle) until the budget
      holds.

    Without a warm capture every policy degrades to [Fixed]. *)
type policy = Fixed | Activation | Adaptive

val policy_name : policy -> string
val policy_of_string : string -> policy option

(** Batch decomposition grain: [Size s] cuts batches of at most [s] faults
    ({!Resilient}'s [batch_size] — independent of worker count, so plans
    resume across [--jobs]); [Chunks k] cuts at most [k] near-equal chunks
    ({!Campaign}'s one-chunk-per-job split); [Lanes k] is [Chunks k] with
    every interior cut snapped down to a 64-fault lane-group boundary, so a
    lane-mode engine sees fully occupied lane groups in every batch but the
    last (empty chunks produced by snapping are dropped). *)
type granularity = Size of int | Chunks of int | Lanes of int

type batch = {
  sb_index : int;  (** position in the plan; reports merge in this order *)
  sb_ids : int array;  (** original fault ids, in planned execution order *)
  sb_start : int;
      (** warm-start snapshot cycle ([0] = cold start from reset) *)
  sb_cost : float;
      (** relative cost hint: live faults × good-trace events remaining
          after [sb_start] (uniform per-fault on cold plans) *)
}

(** Everything the planner consumes about a warm capture. *)
type warm_input = {
  wi_trace : Sim.Goodtrace.t;
  wi_acts : int array;  (** per fault id: activation window start *)
  wi_pruned : bool array;  (** per fault id: statically undetectable *)
}

type t = {
  sp_policy : policy;  (** effective policy ([Fixed] when planned cold) *)
  sp_batches : batch array;
  sp_pruned : int array;  (** ascending pruned fault ids (empty when cold) *)
  sp_trace : Sim.Goodtrace.t option;
      (** the trace consumers must replay from — under [Adaptive] this is
          the re-snapshotted (and possibly spilled) trace, not the one
          passed in via [warm_input] *)
  sp_acts : int array option;
      (** retained activation windows, so refinements of a batch can
          recompute their own warm starts via {!warm_for} *)
}

(** [plan ~policy ~granularity ~design ~n ()] decomposes fault ids
    [0..n-1] into a plan. With [?warm] absent the plan is cold: no
    pruning, identity order, every batch starts at cycle 0. With [?warm]
    present, statically-undetectable faults are pruned into [sp_pruned],
    live faults are ordered per [policy], and each batch gets the best
    warm start its policy allows. [?capture_mem_limit] spills the planned
    trace to a disk-backed mmap ({!Sim.Goodtrace.spill}) when its
    [capture_bytes] exceeds the limit. *)
val plan :
  policy:policy ->
  granularity:granularity ->
  ?capture_mem_limit:int ->
  ?warm:warm_input ->
  design:Rtlir.Elaborate.t ->
  n:int ->
  unit ->
  t

(** The warm start for any subset of a plan's fault ids (a whole planned
    batch, or a refinement of one): latest snapshot at or before the
    subset's earliest activation. [None] on cold plans. *)
val warm_for : t -> int array -> Sim.Goodtrace.warm option

(** Split a batch's id array into its two order-preserving halves — the
    planner's refinement step, shared by retry-by-halving ({!Resilient})
    and divergence shrinking ({!Shrink}). [None] when the batch cannot be
    split further (fewer than two faults). *)
val halve : int array -> (int array * int array) option

(** Refine a batch into single-fault batches (quarantine grain). *)
val singletons : int array -> int array array

(** The typed journal record ([{"type":"plan",...}]) {!Resilient} writes
    after the header and validates for exact equality on resume: policy,
    batch count, and per-batch warm-start cycles. Batch id membership is
    already validated per batch record, so ids are not repeated here. *)
val to_json : t -> Jsonl.t
