open Faultsim

type kind =
  | Raise_in_batch
  | Stall_past_deadline
  | Corrupt_diffstore
  | Torn_journal_write

let all_kinds =
  [ Raise_in_batch; Stall_past_deadline; Corrupt_diffstore; Torn_journal_write ]

let kind_name = function
  | Raise_in_batch -> "raise"
  | Stall_past_deadline -> "stall"
  | Corrupt_diffstore -> "corrupt"
  | Torn_journal_write -> "torn-journal"

let kind_of_name s = List.find_opt (fun k -> kind_name k = s) all_kinds

let kind_tag = function
  | Raise_in_batch -> 0
  | Stall_past_deadline -> 1
  | Corrupt_diffstore -> 2
  | Torn_journal_write -> 3

type plan = { seed : int64; kinds : kind list; rate : float }

let default_plan = { seed = 0xC4A05L; kinds = all_kinds; rate = 0.5 }

exception Injected of string
exception Killed of string

(* Firing is a pure function of (seed, kind, batch): a fresh RNG keyed by
   the triple draws one coin. Uses the same golden-ratio / Murmur mixing
   constants as the resilient runner's oracle sampler. *)
let targets plan kind ~batch =
  List.mem kind plan.kinds
  && (plan.rate >= 1.0
     ||
     plan.rate > 0.0
     &&
     let key =
       ((batch + 1) * 0x9E3779B9) lxor ((kind_tag kind + 1) * 0x85EBCA6B)
     in
     let rng = Rng.create (Int64.logxor plan.seed (Int64.of_int key)) in
     Rng.int rng 1_000_000 < int_of_float (plan.rate *. 1e6))

(* Installed state. [fired] dedupes per (kind, batch) so a retried batch
   succeeds; [torn_done] dedupes the simulated crash per installation so an
   in-process resume survives. The mutex serialises workers that race on
   the same batch's first attempt (e.g. split halves). *)
type state = {
  plan : plan;
  mu : Mutex.t;
  fired : (int * int, unit) Hashtbl.t;
  counts : int array;
  mutable torn_done : bool;
}

let st : state option Atomic.t = Atomic.make None
let active () = Atomic.get st <> None

(* true iff this (kind, batch) had not fired yet; bumps the count once. *)
let fire s kind batch =
  let key = (kind_tag kind, batch) in
  Mutex.lock s.mu;
  let fresh = not (Hashtbl.mem s.fired key) in
  if fresh then begin
    Hashtbl.replace s.fired key ();
    s.counts.(kind_tag kind) <- s.counts.(kind_tag kind) + 1
  end;
  Mutex.unlock s.mu;
  fresh

let batch_start ~batch =
  match Atomic.get st with
  | None -> ()
  | Some s ->
      if targets s.plan Raise_in_batch ~batch && fire s Raise_in_batch batch
      then
        raise
          (Injected (Printf.sprintf "chaos: injected crash in batch %d" batch))

let stall ~batch =
  match Atomic.get st with
  | None -> false
  | Some s ->
      targets s.plan Stall_past_deadline ~batch
      && fire s Stall_past_deadline batch

let torn_write ~batch line =
  match Atomic.get st with
  | None -> None
  | Some s ->
      if
        (not s.torn_done)
        && targets s.plan Torn_journal_write ~batch
        && String.length line > 1
      then begin
        Mutex.lock s.mu;
        let fresh = not s.torn_done in
        if fresh then begin
          s.torn_done <- true;
          s.counts.(kind_tag Torn_journal_write) <-
            s.counts.(kind_tag Torn_journal_write) + 1
        end;
        Mutex.unlock s.mu;
        if fresh then Some (String.length line / 2) else None
      end
      else None

(* The engine-side hook: flip one fault's output-port view at a fixed
   cycle of every run. The cycle and target are pure functions of the
   seed (and the batch width), so a given batch corrupts identically on
   any worker and on every replay — which is exactly what lets the
   shrinker reproduce the divergence it is minimising. *)
let corrupt_for s ~cycle ~nfaults =
  if nfaults = 0 || not (List.mem Corrupt_diffstore s.plan.kinds) then None
  else
    let c0 = Int64.to_int (Int64.rem (Int64.abs s.plan.seed) 16L) in
    if cycle <> c0 then None
    else begin
      Mutex.lock s.mu;
      s.counts.(kind_tag Corrupt_diffstore) <-
        s.counts.(kind_tag Corrupt_diffstore) + 1;
      Mutex.unlock s.mu;
      let rng = Rng.create (Int64.logxor s.plan.seed 0x5EEDF00DL) in
      Some (Rng.int rng nfaults)
    end

let install plan =
  let s =
    {
      plan;
      mu = Mutex.create ();
      fired = Hashtbl.create 64;
      counts = Array.make 4 0;
      torn_done = false;
    }
  in
  Atomic.set st (Some s);
  Atomic.set Pool.chaos_hook
    (Some
       (fun ~label ->
         match label with Some b -> batch_start ~batch:b | None -> ()));
  Atomic.set Engine.Concurrent.chaos_corrupt_diff (Some (corrupt_for s))

let uninstall () =
  Atomic.set Engine.Concurrent.chaos_corrupt_diff None;
  Atomic.set Pool.chaos_hook None;
  Atomic.set st None

let counts () =
  match Atomic.get st with
  | None -> List.map (fun k -> (k, 0)) all_kinds
  | Some s -> List.map (fun k -> (k, s.counts.(kind_tag k))) all_kinds
