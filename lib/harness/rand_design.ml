open Rtlir
open Faultsim
module B = Builder

type t = {
  design : Design.t;
  graph : Elaborate.t;
  workload : Workload.t;
  faults : Fault.t array;
}

let widths = [| 1; 2; 3; 4; 7; 8; 13; 16; 24; 32 |]

let pick rng arr = arr.(Rng.int rng (Array.length arr))

(* Adapt an expression of width [w] to width [target]. *)
let coerce e w target =
  if w = target then e
  else if w > target then Expr.Slice (e, target - 1, 0)
  else Expr.Zext (e, target)

(* Random expression of the requested width over the (expr, width) pool. *)
let rec gen_expr rng pool mems depth target =
  let leaf () =
    if Rng.int rng 4 = 0 || pool = [||] then Expr.Const (Rng.bits rng target)
    else
      let e, w = pick rng pool in
      coerce e w target
  in
  if depth <= 0 || Rng.int rng 5 = 0 then leaf ()
  else
    let sub d w = gen_expr rng pool mems d w in
    match Rng.int rng 10 with
    | 0 ->
        let op =
          pick rng
            [|
              Expr.Add; Expr.Sub; Expr.Mul; Expr.And; Expr.Or; Expr.Xor;
              Expr.Divu; Expr.Modu;
            |]
        in
        Expr.Binop (op, sub (depth - 1) target, sub (depth - 1) target)
    | 1 ->
        let op = pick rng [| Expr.Shl; Expr.Shru; Expr.Shra |] in
        Expr.Binop (op, sub (depth - 1) target, sub (depth - 1) 3)
    | 2 ->
        let w = pick rng widths in
        let op =
          pick rng
            [|
              Expr.Eq; Expr.Neq; Expr.Ltu; Expr.Leu; Expr.Gtu; Expr.Geu;
              Expr.Lts; Expr.Les; Expr.Gts; Expr.Ges;
            |]
        in
        coerce (Expr.Binop (op, sub (depth - 1) w, sub (depth - 1) w)) 1 target
    | 3 ->
        Expr.Mux
          ( sub (depth - 1) (pick rng [| 1; 2; 4 |]),
            sub (depth - 1) target,
            sub (depth - 1) target )
    | 4 ->
        let op = pick rng [| Expr.Not; Expr.Neg |] in
        Expr.Unop (op, sub (depth - 1) target)
    | 5 ->
        let op = pick rng [| Expr.Red_and; Expr.Red_or; Expr.Red_xor |] in
        coerce (Expr.Unop (op, sub (depth - 1) (pick rng widths))) 1 target
    | 6 when target >= 2 ->
        let lo_w = 1 + Rng.int rng (target - 1) in
        Expr.Concat (sub (depth - 1) (target - lo_w), sub (depth - 1) lo_w)
    | 7 when target + 4 <= 64 ->
        let w = target + 1 + Rng.int rng 3 in
        let lo = Rng.int rng (w - target) in
        Expr.Slice (sub (depth - 1) w, lo + target - 1, lo)
    | 8 when mems <> [||] ->
        let m, dw = pick rng mems in
        coerce (Expr.Mem_read (m, sub (depth - 1) 4)) dw target
    | _ -> leaf ()

(* Random body for an edge-triggered process owning [regs]; statements only
   write the owned registers (single-driver rule) and optionally a RAM. *)
let rec gen_ff_stmt rng pool mems ram regs depth =
  let assign () =
    let q, w = pick rng regs in
    Stmt.Nonblock (q, gen_expr rng pool mems 3 w)
  in
  if depth <= 0 then assign ()
  else
    match Rng.int rng 6 with
    | 0 | 1 -> assign ()
    | 2 ->
        Stmt.If
          ( gen_expr rng pool mems 2 (pick rng [| 1; 2; 4 |]),
            gen_ff_stmt rng pool mems ram regs (depth - 1),
            if Rng.bool rng then gen_ff_stmt rng pool mems ram regs (depth - 1)
            else Stmt.Skip )
    | 3 ->
        let scrut_w = 2 in
        let arms =
          List.init (1 + Rng.int rng 3) (fun i ->
              ( Bits.of_int scrut_w i,
                gen_ff_stmt rng pool mems ram regs (depth - 1) ))
        in
        Stmt.Case
          ( gen_expr rng pool mems 2 scrut_w,
            arms,
            gen_ff_stmt rng pool mems ram regs (depth - 1) )
    | 4 -> (
        match ram with
        | Some (m, dw) ->
            Stmt.Mem_write
              (m, gen_expr rng pool mems 2 4, gen_expr rng pool mems 2 dw)
        | None -> assign ())
    | _ ->
        Stmt.Block
          [
            gen_ff_stmt rng pool mems ram regs (depth - 1);
            gen_ff_stmt rng pool mems ram regs (depth - 1);
          ]

(* Control statement for a combinational process: blocking writes to the
   owned wires only. Defaults are emitted first by the caller, so partial
   assignment inside the control tree is fine (and later statements may read
   the already-assigned targets). *)
let rec gen_comb_stmt rng pool mems targets depth =
  let assign () =
    let t, w = pick rng targets in
    Stmt.Assign (t, gen_expr rng pool mems 2 w)
  in
  if depth <= 0 then assign ()
  else
    match Rng.int rng 4 with
    | 0 | 1 -> assign ()
    | 2 ->
        Stmt.If
          ( gen_expr rng pool mems 2 (pick rng [| 1; 2 |]),
            gen_comb_stmt rng pool mems targets (depth - 1),
            gen_comb_stmt rng pool mems targets (depth - 1) )
    | _ ->
        Stmt.Block
          [
            gen_comb_stmt rng pool mems targets (depth - 1);
            gen_comb_stmt rng pool mems targets (depth - 1);
          ]

let generate ?(cycles = 150) ?(max_faults = 60) ~seed () =
  (* The structure stream is seeded directly; workload and fault sampling
     get independent streams split from an auxiliary parent, so the
     stimulus and fault list do not depend on how many draws the structure
     generator happened to consume. *)
  let rng = Rng.create seed in
  let streams = Rng.split (Rng.create (Int64.lognot seed)) 2 in
  let workload_seed = Rng.seed streams.(0) in
  let fault_seed = Rng.seed streams.(1) in
  let ctx = B.create (Printf.sprintf "rand_%Ld" seed) in
  let clk = B.input ctx "clk" 1 in
  let n_in = 2 + Rng.int rng 4 in
  let data_inputs =
    List.init n_in (fun i ->
        let w = pick rng widths in
        (B.input ctx (Printf.sprintf "in%d" i) w, w))
  in
  let pool = ref (Array.of_list data_inputs) in
  let add_pool e w = pool := Array.append !pool [| (e, w) |] in
  (* memories *)
  let mems = ref [||] in
  let ram = ref None in
  if Rng.bool rng then begin
    let contents = Array.init 16 (fun _ -> Rng.bits rng 8) in
    let h = B.rom ctx "rom0" contents in
    mems := Array.append !mems [| (h.B.mid, 8) |]
  end;
  if Rng.bool rng then begin
    let h = B.ram ctx "ram0" ~width:8 ~size:16 in
    ram := Some (h.B.mid, 8);
    mems := Array.append !mems [| (h.B.mid, 8) |]
  end;
  (* registers, declared up-front so combinational logic can read them *)
  let n_reg = 2 + Rng.int rng 5 in
  let regs =
    Array.init n_reg (fun i ->
        let w = pick rng widths in
        let q = B.reg ctx (Printf.sprintf "q%d" i) w in
        (q, w))
  in
  Array.iter (fun (q, w) -> add_pool q w) regs;
  (* layered combinational wires *)
  let n_wire = 4 + Rng.int rng 10 in
  for i = 0 to n_wire - 1 do
    let w = pick rng widths in
    let wire = B.wire ctx (Printf.sprintf "w%d" i) w in
    B.assign ctx wire (gen_expr rng !pool !mems 3 w);
    add_pool wire w
  done;
  (* combinational processes *)
  let n_comb = Rng.int rng 3 in
  for i = 0 to n_comb - 1 do
    let n_targets = 1 + Rng.int rng 2 in
    let targets =
      Array.init n_targets (fun j ->
          let w = pick rng widths in
          let t = B.wire ctx (Printf.sprintf "cw%d_%d" i j) w in
          (t, w))
    in
    let target_ids =
      Array.map
        (fun (t, w) ->
          match t with Expr.Sig id -> (id, w) | _ -> assert false)
        targets
    in
    let defaults =
      Array.to_list
        (Array.map
           (fun (id, w) -> Stmt.Assign (id, gen_expr rng !pool !mems 2 w))
           target_ids)
    in
    (* After the defaults every target is assigned, so the control tree may
       also read them (exercises the locally-written tracking of the walk). *)
    let pool_with_targets = Array.append !pool targets in
    let ctrl =
      gen_comb_stmt rng pool_with_targets !mems target_ids (1 + Rng.int rng 2)
    in
    B.always_comb ctx ~name:(Printf.sprintf "comb%d" i) (defaults @ [ ctrl ]);
    Array.iter (fun (t, w) -> add_pool t w) targets
  done;
  (* edge-triggered processes: partition the registers *)
  let reg_ids =
    Array.map
      (fun (q, w) -> match q with Expr.Sig id -> (id, w) | _ -> assert false)
      regs
  in
  let n_ff = 1 + Rng.int rng 2 in
  let groups = Array.make n_ff [] in
  Array.iteri
    (fun i r -> groups.(i mod n_ff) <- r :: groups.(i mod n_ff))
    reg_ids;
  Array.iteri
    (fun i group ->
      match group with
      | [] -> ()
      | _ ->
          let owned = Array.of_list group in
          let body =
            List.init
              (1 + Rng.int rng 3)
              (fun _ -> gen_ff_stmt rng !pool !mems !ram owned (1 + Rng.int rng 2))
          in
          B.always_ff ctx ~name:(Printf.sprintf "ff%d" i) ~clock:clk body)
    groups;
  (* outputs *)
  let n_out = 1 + Rng.int rng 3 in
  for i = 0 to n_out - 1 do
    let w = pick rng widths in
    let o = B.output ctx (Printf.sprintf "out%d" i) w in
    B.assign ctx o (gen_expr rng !pool !mems 2 w)
  done;
  let design = B.finalize ctx in
  let graph = Elaborate.build design in
  let clk_id = match clk with Expr.Sig id -> id | _ -> assert false in
  let inputs =
    List.map
      (fun (e, w) ->
        match e with Expr.Sig id -> (id, w) | _ -> assert false)
      data_inputs
  in
  let workload =
    {
      Workload.cycles;
      clock = clk_id;
      drive = Workload.random_drive ~seed:workload_seed ~inputs ();
    }
  in
  let faults = Fault.generate ~max_faults ~seed:fault_seed design in
  { design; graph; workload; faults }
