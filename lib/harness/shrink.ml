open Faultsim

type outcome = {
  sh_fault : int;
  sh_ids : int array;
  sh_cycles : int;
  sh_attempts : int;
  sh_engine_detected : bool;
  sh_engine_cycle : int;
  sh_oracle_detected : bool;
  sh_oracle_cycle : int;
  sh_outputs : (string * string * string) list;
}

(* Hard cap on engine replays: ddmin is O(n^2) in the worst case and the
   shrinker runs inside a live campaign — a pathological divergence must
   not stall the batch that found it. *)
let max_attempts = 256

let shrink ~run_engine ~run_oracle ?refine ?observe ~fault ~ids ~cycles () =
  let attempts = ref 0 in
  (* the oracle is per-fault and per-window only — cache by window *)
  let oracle_cache = Hashtbl.create 8 in
  let oracle c =
    match Hashtbl.find_opt oracle_cache c with
    | Some v -> v
    | None ->
        let v = run_oracle ~id:fault ~cycles:c in
        Hashtbl.add oracle_cache c v;
        v
  in
  let index_of set =
    let found = ref (-1) in
    Array.iteri (fun i id -> if id = fault then found := i) set;
    !found
  in
  (* A (set, window) probe diverges when the batched engine's verdict for
     [fault] differs from the lone oracle's over the same window — either
     in detection or, when both detect, in detection cycle. *)
  let diverges set c =
    incr attempts;
    let r = run_engine ~ids:set ~cycles:c in
    let k = index_of set in
    let ed = r.Fault.detected.(k) and ec = r.Fault.detection_cycle.(k) in
    let od, oc = oracle c in
    if ed <> od || (ed && ec <> oc) then Some (ed, ec, od, oc) else None
  in
  let mk companions =
    let a = Array.append [| fault |] companions in
    Array.sort compare a;
    a
  in
  match diverges ids cycles with
  | None -> None
  | Some _ ->
      (* Plan-refinement descent before ddmin: repeatedly split the id set
         the way the campaign's planner would (e.g. {!Schedule.halve}),
         keep the half holding the divergent fault while it still
         reproduces. O(log n) probes that mirror the runner's own
         retry-by-halving, so ddmin starts from a campaign-realistic
         sub-batch instead of the full one. *)
      let ids =
        match refine with
        | None -> ids
        | Some split ->
            let rec descend set =
              if !attempts >= max_attempts then set
              else
                match split set with
                | None -> set
                | Some (l, r) ->
                    let half =
                      if Array.exists (fun id -> id = fault) l then l else r
                    in
                    if
                      Array.length half < Array.length set
                      && diverges half cycles <> None
                    then descend half
                    else set
            in
            descend ids
      in
      let comp =
        ref
          (Array.of_seq
             (Seq.filter (fun id -> id <> fault) (Array.to_seq ids)))
      in
      (* ddmin over the companions; the divergent fault itself always
         stays. Fast path first: most divergences reproduce solo. *)
      if Array.length !comp > 0 && diverges (mk [||]) cycles <> None then
        comp := [||]
      else begin
        let n = ref 2 in
        let continue = ref (Array.length !comp > 1) in
        while !continue && !attempts < max_attempts do
          let len = Array.length !comp in
          let chunk = max 1 (len / !n) in
          let rec try_remove i =
            if i * chunk >= len then None
            else
              let hi = min len ((i + 1) * chunk) in
              let keep =
                Array.append
                  (Array.sub !comp 0 (i * chunk))
                  (Array.sub !comp hi (len - hi))
              in
              if diverges (mk keep) cycles <> None then Some keep
              else try_remove (i + 1)
          in
          match try_remove 0 with
          | Some keep ->
              comp := keep;
              n := max 2 (!n - 1);
              if Array.length keep <= 1 then continue := false
          | None -> if chunk >= len then continue := false else n := min len (!n * 2)
        done
      end;
      let set = mk !comp in
      (* minimal window by binary search; divergence is monotone in the
         window for deterministic engines (a longer run extends a shorter
         one), and the final verification below catches it if not *)
      let rec bisect lo hi =
        if lo >= hi || !attempts >= max_attempts then hi
        else
          let mid = lo + ((hi - lo) / 2) in
          if diverges set mid <> None then bisect lo mid else bisect (mid + 1) hi
      in
      let c = bisect 1 cycles in
      (match diverges set c with
      | None -> None (* non-monotone flake: no reproducer is better than a wrong one *)
      | Some (ed, ec, od, oc) ->
          let outputs =
            match observe with None -> [] | Some f -> f ~ids:set ~cycles:c
          in
          if Obs.Metrics.on () then begin
            Obs.Metrics.add "shrink.runs" 1;
            Obs.Metrics.add "shrink.attempts" !attempts;
            Obs.Metrics.observe "shrink.final_faults"
              (float_of_int (Array.length set));
            Obs.Metrics.observe "shrink.final_cycles" (float_of_int c)
          end;
          Some
            {
              sh_fault = fault;
              sh_ids = set;
              sh_cycles = c;
              sh_attempts = !attempts;
              sh_engine_detected = ed;
              sh_engine_cycle = ec;
              sh_oracle_detected = od;
              sh_oracle_cycle = oc;
              sh_outputs = outputs;
            })

let kind_name (f : Fault.t) =
  match f.Fault.stuck with
  | Fault.Stuck_at_0 -> "stuck-at-0"
  | Fault.Stuck_at_1 -> "stuck-at-1"
  | Fault.Flip_at c -> Printf.sprintf "flip@%d" c

let repro_to_json ~design ~engine ?circuit ?inject ~(fault : Fault.t)
    ~fault_name (o : outcome) =
  Jsonl.Obj
    [
      ("type", Jsonl.String "repro");
      ("version", Jsonl.Int 1);
      ("design", Jsonl.String design);
      ("engine", Jsonl.String engine);
      ( "circuit",
        match circuit with
        | Some (name, scale) ->
            Jsonl.Obj
              [ ("name", Jsonl.String name); ("scale", Jsonl.Float scale) ]
        | None -> Jsonl.Null );
      ( "fault",
        Jsonl.Obj
          [
            ("id", Jsonl.Int o.sh_fault);
            ("signal", Jsonl.Int fault.Fault.signal);
            ("name", Jsonl.String fault_name);
            ("bit", Jsonl.Int fault.Fault.bit);
            ("kind", Jsonl.String (kind_name fault));
          ] );
      ( "ids",
        Jsonl.List (Array.to_list (Array.map (fun i -> Jsonl.Int i) o.sh_ids))
      );
      ("cycles", Jsonl.Int o.sh_cycles);
      ("inject", match inject with Some i -> Jsonl.Int i | None -> Jsonl.Null);
      ("engine_detected", Jsonl.Bool o.sh_engine_detected);
      ("engine_cycle", Jsonl.Int o.sh_engine_cycle);
      ("oracle_detected", Jsonl.Bool o.sh_oracle_detected);
      ("oracle_cycle", Jsonl.Int o.sh_oracle_cycle);
      ("attempts", Jsonl.Int o.sh_attempts);
      ( "outputs",
        Jsonl.List
          (List.map
             (fun (port, expected, observed) ->
               Jsonl.Obj
                 [
                   ("port", Jsonl.String port);
                   ("expected", Jsonl.String expected);
                   ("observed", Jsonl.String observed);
                 ])
             o.sh_outputs) );
    ]
