open Faultsim
module Ivec = Engine.Ivec

type ctx = { worker : int; jobs : int; rng : Rng.t }

exception Shutdown

(* Chaos seam (installed by {!Chaos}): consulted by the claiming worker
   immediately before a task's body runs, with the task's [?label]. A raise
   from the hook fails the task's future exactly as if the body had raised —
   the body itself never starts. The disabled path is one [Atomic.get]. *)
let chaos_hook : (label:int option -> unit) option Atomic.t = Atomic.make None

type 'a fstate =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a future = {
  mutable st : 'a fstate;
  fm : Mutex.t;  (* the pool's lock — completion is signalled on [fc] *)
  fc : Condition.t;
}

(* A queued task: [run] executes it and records the outcome in its future;
   [cancel] completes the future with [Shutdown]. [cancel] is called with
   the pool lock held, so it must not lock. *)
type task = { run : ctx -> unit; cancel : unit -> unit }

(* Elements [head, length) are live; the owner pops from the back, thieves
   advance [head]. Resetting [head] when the deque empties keeps the
   backing storage bounded by the peak queue depth. *)
type deque = { iv : Ivec.t; mutable head : int }

(* Per-worker utilization accounting, mutated only by the owning worker
   under the pool lock (idle time around [Condition.wait], counts at task
   claim), read by {!worker_stats} under the same lock. *)
type worker_stat = {
  mutable ws_tasks : int;
  mutable ws_steals : int;
  mutable ws_idle_s : float;
}

type t = {
  m : Mutex.t;
  cond : Condition.t;
  deques : deque array;  (* one per worker, task ids *)
  mutable tasks : task option array;  (* slot emptied once claimed *)
  mutable ntasks : int;
  mutable closed : bool;
  mutable next : int;  (* round-robin submission cursor *)
  rngs : Rng.t array;
  mutable domains : unit Domain.t array;
  njobs : int;
  wstats : worker_stat array;
}

let jobs t = t.njobs

let deque_empty d =
  if d.head = Ivec.length d.iv then begin
    Ivec.clear d.iv;
    d.head <- 0;
    true
  end
  else false

let take_back d =
  if deque_empty d then None
  else begin
    let id = Ivec.pop d.iv in
    ignore (deque_empty d);
    Some id
  end

let steal_front d =
  if deque_empty d then None
  else begin
    let id = Ivec.get d.iv d.head in
    d.head <- d.head + 1;
    ignore (deque_empty d);
    Some id
  end

(* Own deque first (LIFO keeps caches warm), then scan siblings from the
   next index so thieves spread out. Caller holds the lock. The flag says
   whether the task came from a sibling's deque (a steal). *)
let find_work t w =
  match take_back t.deques.(w) with
  | Some id -> Some (id, false)
  | None ->
      let rec scan i =
        if i = t.njobs then None
        else
          match steal_front t.deques.((w + i) mod t.njobs) with
          | Some id -> Some (id, true)
          | None -> scan (i + 1)
      in
      scan 1

let worker_loop t w =
  let ctx = { worker = w; jobs = t.njobs; rng = t.rngs.(w) } in
  let ws = t.wstats.(w) in
  Mutex.lock t.m;
  let rec loop () =
    match find_work t w with
    | Some (id, stolen) ->
        let task =
          match t.tasks.(id) with Some k -> k | None -> assert false
        in
        t.tasks.(id) <- None;
        ws.ws_tasks <- ws.ws_tasks + 1;
        if stolen then ws.ws_steals <- ws.ws_steals + 1;
        Mutex.unlock t.m;
        let t0 = Obs.Trace.span_begin "pool.task" in
        task.run ctx;
        Obs.Trace.span_end "pool.task" t0;
        Mutex.lock t.m;
        loop ()
    | None ->
        if t.closed then Mutex.unlock t.m
        else begin
          (* waiting is already the slow path: always time it *)
          let idle0 = Unix.gettimeofday () in
          Condition.wait t.cond t.m;
          ws.ws_idle_s <- ws.ws_idle_s +. (Unix.gettimeofday () -. idle0);
          loop ()
        end
  in
  loop ();
  (* Each worker stamps its own utilization totals into its domain's ring
     on exit, so the Chrome trace shows one counter track per worker. *)
  if Obs.Trace.on () then begin
    Obs.Trace.counter "pool.worker_tasks" (float_of_int ws.ws_tasks);
    Obs.Trace.counter "pool.worker_steals" (float_of_int ws.ws_steals);
    Obs.Trace.counter "pool.worker_idle_s" ws.ws_idle_s
  end

let create ?(seed = 0x51CA5EEDL) ~jobs () =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      m = Mutex.create ();
      cond = Condition.create ();
      deques =
        Array.init jobs (fun _ -> { iv = Ivec.create ~capacity:16 (); head = 0 });
      tasks = Array.make 64 None;
      ntasks = 0;
      closed = false;
      next = 0;
      rngs = Rng.split (Rng.create seed) jobs;
      domains = [||];
      njobs = jobs;
      wstats =
        Array.init jobs (fun _ ->
            { ws_tasks = 0; ws_steals = 0; ws_idle_s = 0.0 });
    }
  in
  t.domains <- Array.init jobs (fun w -> Domain.spawn (fun () -> worker_loop t w));
  t

(* The only legal [st] transitions are Pending -> Done / Pending -> Failed,
   and they happen under the future's lock: [cancel] and a worker finishing
   the same task both funnel through here, and whichever arrives second
   finds the future settled and drops its result. Caller holds [fut.fm]. *)
let complete fut r cond =
  match fut.st with
  | Pending ->
      fut.st <- r;
      Condition.broadcast cond
  | Done _ | Failed _ -> ()

let submit ?label t f =
  let fut = { st = Pending; fm = t.m; fc = t.cond } in
  let run ctx =
    Mutex.lock t.m;
    let cancelled = fut.st <> Pending in
    Mutex.unlock t.m;
    if not cancelled then begin
      let r =
        try
          (match Atomic.get chaos_hook with
          | None -> ()
          | Some hook -> hook ~label);
          Done (f ctx)
        with e -> Failed (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock t.m;
      complete fut r t.cond;
      Mutex.unlock t.m
    end
  in
  let cancel () =
    complete fut (Failed (Shutdown, Printexc.get_callstack 0)) t.cond
  in
  Mutex.lock t.m;
  if t.closed then begin
    Mutex.unlock t.m;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  let id = t.ntasks in
  if id = Array.length t.tasks then begin
    let a = Array.make (2 * id) None in
    Array.blit t.tasks 0 a 0 id;
    t.tasks <- a
  end;
  t.tasks.(id) <- Some { run; cancel };
  t.ntasks <- id + 1;
  Ivec.push t.deques.(t.next).iv id;
  t.next <- (t.next + 1) mod t.njobs;
  Condition.broadcast t.cond;
  Mutex.unlock t.m;
  fut

let await_result fut =
  Mutex.lock fut.fm;
  let rec wait () =
    match fut.st with
    | Pending ->
        Condition.wait fut.fc fut.fm;
        wait ()
    | Done v ->
        Mutex.unlock fut.fm;
        Ok v
    | Failed (e, bt) ->
        Mutex.unlock fut.fm;
        Error (e, bt)
  in
  wait ()

let await fut =
  match await_result fut with
  | Ok v -> v
  | Error (e, bt) -> Printexc.raise_with_backtrace e bt

let cancel fut =
  Mutex.lock fut.fm;
  let won = fut.st = Pending in
  if won then begin
    fut.st <- Failed (Shutdown, Printexc.get_callstack 0);
    Condition.broadcast fut.fc
  end;
  Mutex.unlock fut.fm;
  won

let shutdown ?(discard = false) t =
  Mutex.lock t.m;
  if t.closed then Mutex.unlock t.m
  else begin
    t.closed <- true;
    if discard then
      Array.iter
        (fun d ->
          while not (deque_empty d) do
            let id = Ivec.get d.iv d.head in
            d.head <- d.head + 1;
            match t.tasks.(id) with
            | Some task ->
                t.tasks.(id) <- None;
                task.cancel ()
            | None -> ()
          done)
        t.deques;
    Condition.broadcast t.cond;
    Mutex.unlock t.m;
    Array.iter Domain.join t.domains
  end

let worker_stats t =
  Mutex.lock t.m;
  let r =
    Array.map (fun ws -> (ws.ws_tasks, ws.ws_steals, ws.ws_idle_s)) t.wstats
  in
  Mutex.unlock t.m;
  r

let with_pool ?seed ~jobs f =
  let t = create ?seed ~jobs () in
  match f t with
  | v ->
      shutdown t;
      v
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      shutdown ~discard:true t;
      Printexc.raise_with_backtrace e bt
