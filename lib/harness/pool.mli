(** Work-stealing domain pool for fault-partition parallelism.

    Fault partitions never interact — every faulty network is an
    independent perturbation of the shared good trace — so batches can be
    dispatched to worker domains freely. The pool is deliberately simple
    and dependency-free: one mutex and condition guard per-worker deques of
    task ids ([Engine.Ivec]-backed); a worker pops from the back of its own
    deque and steals from the front of a sibling's when idle. Tasks are
    coarse (whole fault batches), so the single lock is never contended
    enough to matter.

    Determinism contract: the pool itself guarantees nothing about
    execution order — callers get determinism by merging results in
    submission order ([await] on the futures in the order they were
    created), which is how {!Resilient} produces byte-identical reports for
    any [jobs]. *)

type t

(** Passed to every task: the executing worker's index in [0, jobs), the
    pool width, and a deterministic per-worker RNG ([Rng.split] of the pool
    seed — the same worker always holds the same stream, whatever tasks it
    ends up running). *)
type ctx = { worker : int; jobs : int; rng : Faultsim.Rng.t }

(** Result handle for a submitted task. *)
type 'a future

(** Raised by {!await} when the task was discarded by
    [shutdown ~discard:true] before a worker picked it up. *)
exception Shutdown

(** [create ~jobs ()] spawns [jobs] worker domains ([jobs >= 1]). [seed]
    roots the per-worker RNG streams. *)
val create : ?seed:int64 -> jobs:int -> unit -> t

val jobs : t -> int

(** Queue a task (round-robin over the workers; idle workers steal).
    Raises [Invalid_argument] after {!shutdown}. Tasks must not [await]
    futures of the same pool — workers executing tasks are the only threads
    that complete them. [?label] is an opaque caller tag (the resilient
    runner passes the batch index) handed to the chaos seam; it has no
    effect outside chaos testing. *)
val submit : ?label:int -> t -> (ctx -> 'a) -> 'a future

(** Block until the task finishes. Re-raises the task's exception with its
    original backtrace if it failed, or {!Shutdown} if it was discarded. *)
val await : 'a future -> 'a

(** Block until the task finishes, returning the outcome as a value instead
    of re-raising — the supervision entry point: a coordinator inspects the
    error and decides to re-dispatch rather than unwind. *)
val await_result : 'a future -> ('a, exn * Printexc.raw_backtrace) result

(** Cancel a future: if it is still [Pending] the future completes with
    {!Shutdown} and [cancel] returns [true]; if a worker has already settled
    it (or another cancel won), returns [false] and the existing outcome
    stands. The transition is atomic with respect to worker completion — a
    task body that finishes after a successful cancel has its result
    discarded, and a task not yet claimed never runs its body. Cancelling
    does not remove the task id from its deque; the claiming worker skips
    the body when it finds the future settled. *)
val cancel : 'a future -> bool

(** Chaos seam, installed (and uninstalled) by {!Chaos}: called by the
    claiming worker right before a task body starts, with the task's
    submission [?label]; a raise fails the future as if the body had
    raised. One [Atomic.get] when disabled; leave at [None] except under
    chaos testing. *)
val chaos_hook : (label:int option -> unit) option Atomic.t

(** Per-worker utilization snapshot: [(tasks_run, tasks_stolen,
    idle_seconds)] for each worker index. Steals count tasks claimed from a
    sibling's deque; idle time is the cumulative wait for work. When
    tracing is enabled ({!Obs.Trace}), every task additionally records a
    ["pool.task"] span on its worker's timeline and each worker stamps
    these totals as counters on exit. *)
val worker_stats : t -> (int * int * float) array

(** Close the pool and join every worker. With [discard = false] (the
    default) queued tasks are drained first; with [discard = true] tasks no
    worker has started are dropped and their futures complete with
    {!Shutdown} (so a blocked [await] never hangs). Idempotent. *)
val shutdown : ?discard:bool -> t -> unit

(** [with_pool ~jobs f] runs [f] over a fresh pool, draining it on normal
    return and discarding queued work when [f] raises. *)
val with_pool : ?seed:int64 -> jobs:int -> (t -> 'a) -> 'a
