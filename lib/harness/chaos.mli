(** Deterministic chaos injection for supervised campaigns.

    A {!plan} is a pure function of its seed: whether a given injection
    kind fires in a given batch is decided by hashing [(seed, kind, batch)]
    — never by wall clock or scheduling — so a chaos campaign's failure
    schedule is reproducible, and the supervised runner's recovery path can
    be asserted to converge to the clean-run report byte-for-byte.

    Injection happens through three explicit seams, each a process-global
    hook whose disabled path costs one [Atomic.get] (pinned by the
    zero-alloc test alongside the {!Obs} hooks):

    - {!Pool.chaos_hook} — raises {!Injected} before a labelled batch task
      body starts ([Raise_in_batch], [jobs > 1]);
    - [Resilient]'s drive wrapper — consults {!stall} to sleep past the
      batch deadline ([Stall_past_deadline]) and calls {!batch_start}
      directly on the [jobs = 1] path;
    - {!Engine.Concurrent.chaos_corrupt_diff} — flips one diff-store entry
      at an observation point ([Corrupt_diffstore]);
    - [Resilient]'s journal writer — consults {!torn_write} to truncate one
      record mid-write and raises {!Killed} ([Torn_journal_write]),
      simulating a crash for the resume path.

    Every injection fires {e at most once} per (kind, batch) per
    {!install}, so a retried batch succeeds and the campaign converges. *)

type kind =
  | Raise_in_batch  (** task body raises before the engine runs *)
  | Stall_past_deadline  (** drive sleeps past [max_batch_seconds] *)
  | Corrupt_diffstore  (** one diff-store entry flipped at observe *)
  | Torn_journal_write  (** journal record cut mid-write, then {!Killed} *)

val all_kinds : kind list
val kind_name : kind -> string

(** Inverse of {!kind_name}; [None] for unknown names. *)
val kind_of_name : string -> kind option

type plan = {
  seed : int64;  (** roots every injection decision *)
  kinds : kind list;  (** enabled injection kinds *)
  rate : float;  (** per-(kind, batch) firing probability in [0, 1] *)
}

(** All four kinds at rate 0.5, seed [0xC4A05]. *)
val default_plan : plan

(** Raised into a batch task by [Raise_in_batch]. *)
exception Injected of string

(** Raised by the journal writer after a torn write: the simulated hard
    crash. Campaign drivers treat it as fatal and resume from the journal. *)
exception Killed of string

(** [targets plan kind ~batch] — the pure firing decision, independent of
    any installed state (used by tests to pin determinism). *)
val targets : plan -> kind -> batch:int -> bool

(** Install [plan] into every seam. Overwrites any previous installation
    (the fired-once tables reset). Not reference counted. *)
val install : plan -> unit

(** Clear every seam; idempotent. *)
val uninstall : unit -> unit

(** A plan is installed. One [Atomic.get]. *)
val active : unit -> bool

(** [batch_start ~batch] raises {!Injected} if [Raise_in_batch] fires for
    this batch (first call only). No-op when inactive. The pool seam calls
    this via {!Pool.chaos_hook} for [jobs > 1]; the serial loop calls it
    directly. *)
val batch_start : batch:int -> unit

(** [stall ~batch] — [true] exactly once per batch when
    [Stall_past_deadline] fires; the caller sleeps past its deadline. *)
val stall : batch:int -> bool

(** [torn_write ~batch line] — [Some n] at most once per installation when
    [Torn_journal_write] fires for this batch: the caller must write only
    the first [n] bytes of [line] (no newline) and raise {!Killed}.
    Firing once per install, not per batch, lets an in-process resume
    complete instead of dying on every attempt. *)
val torn_write : batch:int -> string -> int option

(** Injection counts per kind since {!install}, in {!all_kinds} order. *)
val counts : unit -> (kind * int) list
