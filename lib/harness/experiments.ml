open Faultsim

type table2_row = {
  t2_name : string;
  t2_stimulus : int;
  t2_cells : int;
  t2_faults : int;
  t2_cov_eraser : float;
  t2_cov_oracle : float;
}

let table2 ~scale =
  List.map
    (fun (c : Circuits.Bench_circuit.t) ->
      let design, g, w, faults = Circuits.Bench_circuit.instantiate c ~scale in
      let eraser = Campaign.run Campaign.Eraser g w faults in
      let oracle = Campaign.run Campaign.Ifsim g w faults in
      {
        t2_name = c.paper_name;
        t2_stimulus = w.Workload.cycles;
        t2_cells = Rtlir.Design.cell_count design;
        t2_faults = Array.length faults;
        t2_cov_eraser = eraser.Fault.coverage_pct;
        t2_cov_oracle = oracle.Fault.coverage_pct;
      })
    Circuits.all

type redundancy_row = {
  r_name : string;
  r_bn_time_pct : float;
  r_total_bn : int;
  r_eliminated : int;
  r_explicit_pct : float;
  r_implicit_pct : float;
}

(* The paper's Table III benchmarks (it omits Sodor, Conv_acc and MIPS). *)
let table3_names =
  [ "alu"; "fpu"; "sha256_hv"; "apb"; "riscv_mini"; "picorv32"; "sha256_c2v" ]

let redundancy_row (c : Circuits.Bench_circuit.t) ~scale =
  let _, g, w, faults = Circuits.Bench_circuit.instantiate c ~scale in
  let r = Campaign.run ~instrument:true Campaign.Eraser g w faults in
  let s = r.Fault.stats in
  {
    r_name = c.paper_name;
    r_bn_time_pct = Stats.bn_time_pct s;
    r_total_bn = Stats.total_bn_executions s;
    r_eliminated = Stats.eliminated s;
    r_explicit_pct = Stats.explicit_pct s;
    r_implicit_pct = Stats.implicit_pct s;
  }

let table3 ~scale =
  List.map
    (fun name -> redundancy_row (Circuits.find name) ~scale)
    table3_names

let fig1b_names = [ "alu"; "fpu"; "sha256_hv"; "apb"; "riscv_mini" ]

let fig1b ~scale =
  List.map
    (fun name ->
      let r = redundancy_row (Circuits.find name) ~scale in
      (r.r_name, r.r_explicit_pct, r.r_implicit_pct))
    fig1b_names

type perf_row = { p_name : string; p_times : (Campaign.engine * float) list }

let time_engines engines ~scale (c : Circuits.Bench_circuit.t) =
  let _, g, w, faults = Circuits.Bench_circuit.instantiate c ~scale in
  {
    p_name = c.paper_name;
    p_times =
      List.map
        (fun e ->
          let r = Campaign.run e g w faults in
          (e, r.Fault.wall_time))
        engines;
  }

let fig6 ~scale =
  List.map
    (time_engines
       [ Campaign.Ifsim; Campaign.Vfsim; Campaign.Z01x_proxy; Campaign.Eraser ]
       ~scale)
    Circuits.all

let fig7 ~scale =
  List.map
    (time_engines
       [ Campaign.Eraser_mm; Campaign.Eraser_m; Campaign.Eraser ]
       ~scale)
    Circuits.all

type mem_ablation_row = {
  m_name : string;
  m_implicit_exact : int;
  m_implicit_conservative : int;
  m_time_exact : float;
  m_time_conservative : float;
}

let mem_ablation_names = [ "sha256_hv"; "riscv_mini"; "picorv32"; "apb" ]

let mem_ablation ~scale =
  List.map
    (fun name ->
      let c = Circuits.find name in
      let _, g, w, faults = Circuits.Bench_circuit.instantiate c ~scale in
      let run exact =
        Engine.Concurrent.run
          ~config:
            { Engine.Concurrent.default_config with exact_mem_check = exact }
          g w faults
      in
      let exact = run true in
      let conservative = run false in
      {
        m_name = c.paper_name;
        m_implicit_exact = exact.Fault.stats.Stats.bn_skipped_implicit;
        m_implicit_conservative =
          conservative.Fault.stats.Stats.bn_skipped_implicit;
        m_time_exact = exact.Fault.wall_time;
        m_time_conservative = conservative.Fault.wall_time;
      })
    mem_ablation_names

type resilience_row = {
  res_name : string;
  res_batches : int;
  res_cov_monolithic : float;
  res_cov_batched : float;
  res_cov_resumed : float;
  res_divergences : int;
  res_quarantine_ok : bool;
}

let resilience_names = [ "alu"; "apb" ]

(* Simulate a mid-campaign crash: drop the journal's final record. *)
let drop_last_line path =
  let ic = open_in_bin path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  let kept = List.rev (match !lines with _ :: tl -> tl | [] -> []) in
  let oc = open_out_bin path in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    kept;
  close_out oc

let resilience ~scale =
  List.map
    (fun name ->
      let c = Circuits.find name in
      let _, g, w, faults = Circuits.Bench_circuit.instantiate c ~scale in
      let mono = Campaign.run Campaign.Eraser g w faults in
      let journal = Filename.temp_file "eraser_resilience" ".jsonl" in
      let cfg =
        {
          Resilient.default_config with
          batch_size = max 1 (Array.length faults / 4);
          journal = Some journal;
        }
      in
      let cold = Resilient.run ~config:cfg g w faults in
      drop_last_line journal;
      let resumed =
        Resilient.run ~config:{ cfg with Resilient.resume = true } g w faults
      in
      Sys.remove journal;
      (* inject an engine bug; the online oracle must quarantine it *)
      let injected =
        Resilient.run
          ~config:
            {
              cfg with
              Resilient.journal = None;
              oracle_sample = 1.0;
              inject_divergence = Some 0;
            }
          g w faults
      in
      {
        res_name = c.paper_name;
        res_batches = cold.Resilient.batches_total;
        res_cov_monolithic = mono.Fault.coverage_pct;
        res_cov_batched = cold.Resilient.result.Fault.coverage_pct;
        res_cov_resumed = resumed.Resilient.result.Fault.coverage_pct;
        res_divergences = List.length injected.Resilient.divergences;
        res_quarantine_ok =
          injected.Resilient.divergences <> []
          && Fault.same_verdict injected.Resilient.result mono;
      })
    resilience_names

type scaling_point = {
  sp_jobs : int;
  sp_wall : float;
  sp_faults_per_sec : float;
  sp_speedup : float;  (* vs the first (jobs = 1) point of the same row *)
  sp_stats : Stats.t;
}

type scaling_row = {
  sc_name : string;
  sc_faults : int;
  sc_cycles : int;
  sc_points : scaling_point list;
}

(* Multicore scaling sweep: the same resilient campaign at several worker
   counts. The batch decomposition (and therefore every verdict and
   counter) is fixed by the fault count alone — only wall time responds to
   [jobs] — so the sweep isolates the parallel speedup. *)
let scaling ?(jobs = [ 1; 2; 4; 8 ]) ~scale () =
  List.map
    (fun (c : Circuits.Bench_circuit.t) ->
      let _, g, w, faults = Circuits.Bench_circuit.instantiate c ~scale in
      let n = Array.length faults in
      let base_wall = ref 0.0 in
      let points =
        List.map
          (fun j ->
            let config =
              {
                Resilient.default_config with
                Resilient.jobs = j;
                batch_size = max 1 (n / 16);
              }
            in
            let s = Resilient.run ~config g w faults in
            let wall = s.Resilient.result.Fault.wall_time in
            if !base_wall = 0.0 then base_wall := wall;
            {
              sp_jobs = j;
              sp_wall = wall;
              sp_faults_per_sec =
                (if wall > 0.0 then float_of_int n /. wall else 0.0);
              sp_speedup = (if wall > 0.0 then !base_wall /. wall else 1.0);
              sp_stats = s.Resilient.result.Fault.stats;
            })
          jobs
      in
      {
        sc_name = c.paper_name;
        sc_faults = n;
        sc_cycles = w.Workload.cycles;
        sc_points = points;
      })
    Circuits.all

let scaling_json ~scale rows =
  let stats_json (s : Stats.t) =
    Jsonl.Obj
      [
        ("bn_good", Jsonl.Int s.Stats.bn_good);
        ("bn_fault_exec", Jsonl.Int s.Stats.bn_fault_exec);
        ("bn_skipped_explicit", Jsonl.Int s.Stats.bn_skipped_explicit);
        ("bn_skipped_implicit", Jsonl.Int s.Stats.bn_skipped_implicit);
        ("rtl_good_eval", Jsonl.Int s.Stats.rtl_good_eval);
        ("rtl_fault_eval", Jsonl.Int s.Stats.rtl_fault_eval);
        ("good_cycles_skipped", Jsonl.Int s.Stats.good_cycles_skipped);
        ("goodtrace_captures", Jsonl.Int s.Stats.goodtrace_captures);
      ]
  in
  let point_json p =
    Jsonl.Obj
      [
        ("jobs", Jsonl.Int p.sp_jobs);
        ("wall_s", Jsonl.Float p.sp_wall);
        ("faults_per_sec", Jsonl.Float p.sp_faults_per_sec);
        ("speedup", Jsonl.Float p.sp_speedup);
        ("stats", stats_json p.sp_stats);
      ]
  in
  let row_json r =
    Jsonl.Obj
      [
        ("name", Jsonl.String r.sc_name);
        ("faults", Jsonl.Int r.sc_faults);
        ("cycles", Jsonl.Int r.sc_cycles);
        ("points", Jsonl.List (List.map point_json r.sc_points));
      ]
  in
  Jsonl.Obj
    [
      ("experiment", Jsonl.String "scaling");
      ("scale", Jsonl.Float scale);
      ("circuits", Jsonl.List (List.map row_json rows));
    ]

type warmstart_row = {
  ws_name : string;
  ws_faults : int;
  ws_cycles : int;
  ws_batches : int;
  ws_cold_wall : float;
  ws_warm_wall : float;
  ws_speedup : float;
  ws_cold_bn_good : int;
  ws_warm_bn_good : int;
  ws_cycles_skipped : int;
  ws_captures : int;
  ws_capture_bytes : int;
  ws_verdicts_equal : bool;
}

let warmstart_names = [ "alu"; "sha256_hv" ]

(* Good-network checkpointing benchmark: the same resilient campaign cold
   (every batch re-simulates the good network) and warm (one capture,
   every batch replays it from its activation-window snapshot). The
   capture runs once out here and is handed to the campaign through
   [config.capture] — the same sharing seam the bench sweeps use — and its
   wall time is added back to the warm number, so the speedup stays
   end-to-end; the verdict check is the experiment's correctness gate. *)
let warmstart ?(jobs = 4) ~scale () =
  List.map
    (fun name ->
      let c = Circuits.find name in
      let _, g, w, faults = Circuits.Bench_circuit.instantiate c ~scale in
      let n = Array.length faults in
      let base =
        {
          Resilient.default_config with
          Resilient.jobs;
          batch_size = max 1 (n / 8);
        }
      in
      let cold = Resilient.run ~config:base g w faults in
      let t0 = Stats.now () in
      let cap = Engine.Concurrent.capture g w in
      let capture_wall = Stats.now () -. t0 in
      let warm =
        Resilient.run
          ~config:
            { base with Resilient.warmstart = true; capture = Some cap }
          g w faults
      in
      let cr = cold.Resilient.result and wr = warm.Resilient.result in
      let cw = cr.Fault.wall_time
      and ww = capture_wall +. wr.Fault.wall_time in
      {
        ws_name = c.paper_name;
        ws_faults = n;
        ws_cycles = w.Workload.cycles;
        ws_batches = cold.Resilient.batches_total;
        ws_cold_wall = cw;
        ws_warm_wall = ww;
        ws_speedup = (if ww > 0.0 then cw /. ww else 1.0);
        ws_cold_bn_good = cr.Fault.stats.Stats.bn_good;
        ws_warm_bn_good = wr.Fault.stats.Stats.bn_good;
        ws_cycles_skipped = wr.Fault.stats.Stats.good_cycles_skipped;
        ws_captures = wr.Fault.stats.Stats.goodtrace_captures;
        ws_capture_bytes = warm.Resilient.capture_bytes;
        ws_verdicts_equal =
          cr.Fault.detected = wr.Fault.detected
          && cr.Fault.detection_cycle = wr.Fault.detection_cycle;
      })
    warmstart_names

let warmstart_json ~scale rows =
  let row_json r =
    Jsonl.Obj
      [
        ("name", Jsonl.String r.ws_name);
        ("faults", Jsonl.Int r.ws_faults);
        ("cycles", Jsonl.Int r.ws_cycles);
        ("batches", Jsonl.Int r.ws_batches);
        ("cold_wall_s", Jsonl.Float r.ws_cold_wall);
        ("warm_wall_s", Jsonl.Float r.ws_warm_wall);
        ("speedup", Jsonl.Float r.ws_speedup);
        ("cold_bn_good", Jsonl.Int r.ws_cold_bn_good);
        ("warm_bn_good", Jsonl.Int r.ws_warm_bn_good);
        ("good_cycles_skipped", Jsonl.Int r.ws_cycles_skipped);
        ("goodtrace_captures", Jsonl.Int r.ws_captures);
        ("capture_bytes", Jsonl.Int r.ws_capture_bytes);
        ("verdicts_equal", Jsonl.Bool r.ws_verdicts_equal);
      ]
  in
  Jsonl.Obj
    [
      ("experiment", Jsonl.String "warmstart");
      ("scale", Jsonl.Float scale);
      ("circuits", Jsonl.List (List.map row_json rows));
    ]

type activation_row = {
  act_name : string;
  act_faults : int;
  act_cycles : int;
  act_batches : int;
  act_pruned : int;
  act_legacy_window_sum : int;
  act_cone_window_sum : int;
  act_legacy_skipped : int;
  act_cone_skipped : int;
  act_cold_wall : float;
  act_cone_wall : float;
  act_verdicts_equal : bool;
}

(* Comb-heavy circuits: the ones where the legacy first-divergence rule
   pinned every comb-driven site to activation 0 and the cone-refined rule
   has room to move windows later. *)
let activation_names = [ "alu"; "fpu" ]

(* Cone-refined activation benchmark (DESIGN.md §14): the same resilient
   campaign cold and warm, plus an offline replay of the pre-cone (legacy
   first-divergence) activation rule over the identical trace and batching
   policy, so the JSON records exactly how many good-network prefix cycles
   the cone analysis unlocked on top of what PR 6 could already skip. *)
let activation ?(jobs = 4) ?(snapshot_every = 1) ~scale () =
  List.map
    (fun name ->
      let c = Circuits.find name in
      let _, g, w, faults = Circuits.Bench_circuit.instantiate c ~scale in
      let n = Array.length faults in
      (* per-fault batches + a snapshot at every cycle: each fault then
         skips exactly its own activation window, so the cone-vs-legacy
         comparison is not flattened by batch minima or snapshot
         alignment *)
      let base =
        {
          Resilient.default_config with
          Resilient.jobs;
          batch_size = 1;
          snapshot_every = Some snapshot_every;
        }
      in
      let cold = Resilient.run ~config:base g w faults in
      (* one capture serves both the warm campaign (through
         [config.capture]) and the offline window analysis below — the
         duplicate capture run this experiment historically paid is gone *)
      let trace = Engine.Concurrent.capture ~snapshot_every g w in
      let warm =
        Resilient.run
          ~config:
            { base with Resilient.warmstart = true; capture = Some trace }
          g w faults
      in
      (* offline replica of the runner's batching over a given activation
         array: sort live ids by (window, id), cut into batch_size chunks,
         and charge each chunk the snapshot-aligned prefix it replays past *)
      let cone = Flow.Cone.build g in
      let legacy = Engine.Concurrent.legacy_activations trace g faults in
      let refined = Engine.Concurrent.activations ~cone trace g faults in
      let skipped_under acts ids =
        let order = Array.of_list ids in
        Array.sort
          (fun a b ->
            match compare acts.(a) acts.(b) with 0 -> compare a b | d -> d)
          order;
        let nk = Array.length order in
        let total = ref 0 in
        let lo = ref 0 in
        while !lo < nk do
          let hi = min nk (!lo + base.Resilient.batch_size) in
          let m = ref max_int in
          for j = !lo to hi - 1 do
            m := min !m acts.(order.(j))
          done;
          total := !total + Sim.Goodtrace.start_for trace ~activation:!m;
          lo := hi
        done;
        !total
      in
      let all_ids = List.init n Fun.id in
      let sum acts ids = List.fold_left (fun s i -> s + acts.(i)) 0 ids in
      let cr = cold.Resilient.result and wr = warm.Resilient.result in
      {
        act_name = c.paper_name;
        act_faults = n;
        act_cycles = w.Workload.cycles;
        act_batches = warm.Resilient.batches_total;
        act_pruned = List.length warm.Resilient.pruned_faults;
        act_legacy_window_sum = sum legacy all_ids;
        act_cone_window_sum = sum refined all_ids;
        act_legacy_skipped = skipped_under legacy all_ids;
        act_cone_skipped = wr.Fault.stats.Stats.good_cycles_skipped;
        act_cold_wall = cr.Fault.wall_time;
        act_cone_wall = wr.Fault.wall_time;
        act_verdicts_equal =
          cr.Fault.detected = wr.Fault.detected
          && cr.Fault.detection_cycle = wr.Fault.detection_cycle;
      })
    activation_names

let activation_json ~scale rows =
  let row_json r =
    Jsonl.Obj
      [
        ("name", Jsonl.String r.act_name);
        ("faults", Jsonl.Int r.act_faults);
        ("cycles", Jsonl.Int r.act_cycles);
        ("batches", Jsonl.Int r.act_batches);
        ("statically_pruned", Jsonl.Int r.act_pruned);
        ("legacy_window_sum", Jsonl.Int r.act_legacy_window_sum);
        ("cone_window_sum", Jsonl.Int r.act_cone_window_sum);
        ("legacy_cycles_skipped", Jsonl.Int r.act_legacy_skipped);
        ("good_cycles_skipped", Jsonl.Int r.act_cone_skipped);
        ("cold_wall_s", Jsonl.Float r.act_cold_wall);
        ("cone_wall_s", Jsonl.Float r.act_cone_wall);
        ("verdicts_equal", Jsonl.Bool r.act_verdicts_equal);
      ]
  in
  Jsonl.Obj
    [
      ("experiment", Jsonl.String "activation");
      ("scale", Jsonl.Float scale);
      ("circuits", Jsonl.List (List.map row_json rows));
    ]

type schedule_point = {
  sch_policy : string;
  sch_skipped : int;
  sch_wall : float;
  sch_batches : int;
  sch_snapshots : int;
  sch_verdicts_equal : bool;
}

type schedule_row = {
  sch_name : string;
  sch_faults : int;
  sch_cycles : int;
  sch_cold_wall : float;
  sch_capture_wall : float;
  sch_points : schedule_point list;
}

let schedule_names = [ "alu"; "sha256_hv" ]

(* Schedule-policy benchmark: one cold baseline, one good-trace capture,
   then the same warm resilient campaign under each planner policy — the
   capture is shared across all three runs through [config.capture], so
   the sweep isolates what the policy alone buys. [Fixed] keeps ascending
   fault ids (batch minima pin most warm starts to cycle 0), [Activation]
   groups by window on the capture grid, [Adaptive] additionally replans
   the snapshot set at each batch's exact activation boundary. Verdicts
   must match the cold baseline under every policy — that equality is the
   planner's soundness gate. *)
let schedule ?(jobs = 4) ~scale () =
  List.map
    (fun name ->
      let c = Circuits.find name in
      let _, g, w, faults = Circuits.Bench_circuit.instantiate c ~scale in
      let n = Array.length faults in
      let base =
        {
          Resilient.default_config with
          Resilient.jobs;
          batch_size = max 1 (n / 8);
        }
      in
      let cold = Resilient.run ~config:base g w faults in
      let cr = cold.Resilient.result in
      let t0 = Stats.now () in
      let cap = Engine.Concurrent.capture g w in
      let capture_wall = Stats.now () -. t0 in
      let points =
        List.map
          (fun policy ->
            let warm =
              Resilient.run
                ~config:
                  {
                    base with
                    Resilient.warmstart = true;
                    capture = Some cap;
                    schedule = Some policy;
                  }
                g w faults
            in
            let wr = warm.Resilient.result in
            let s = wr.Fault.stats in
            {
              sch_policy = Schedule.policy_name policy;
              sch_skipped = s.Stats.good_cycles_skipped;
              sch_wall = wr.Fault.wall_time;
              sch_batches = s.Stats.plan_batches;
              sch_snapshots = s.Stats.plan_snapshots;
              sch_verdicts_equal =
                cr.Fault.detected = wr.Fault.detected
                && cr.Fault.detection_cycle = wr.Fault.detection_cycle;
            })
          [ Schedule.Fixed; Schedule.Activation; Schedule.Adaptive ]
      in
      {
        sch_name = c.paper_name;
        sch_faults = n;
        sch_cycles = w.Workload.cycles;
        sch_cold_wall = cr.Fault.wall_time;
        sch_capture_wall = capture_wall;
        sch_points = points;
      })
    schedule_names

let schedule_json ~scale rows =
  let point_json p =
    Jsonl.Obj
      [
        ("policy", Jsonl.String p.sch_policy);
        ("good_cycles_skipped", Jsonl.Int p.sch_skipped);
        ("wall_s", Jsonl.Float p.sch_wall);
        ("plan_batches", Jsonl.Int p.sch_batches);
        ("plan_snapshots", Jsonl.Int p.sch_snapshots);
        ("verdicts_equal", Jsonl.Bool p.sch_verdicts_equal);
      ]
  in
  let row_json r =
    Jsonl.Obj
      [
        ("name", Jsonl.String r.sch_name);
        ("faults", Jsonl.Int r.sch_faults);
        ("cycles", Jsonl.Int r.sch_cycles);
        ("cold_wall_s", Jsonl.Float r.sch_cold_wall);
        ("capture_wall_s", Jsonl.Float r.sch_capture_wall);
        ("policies", Jsonl.List (List.map point_json r.sch_points));
      ]
  in
  Jsonl.Obj
    [
      ("experiment", Jsonl.String "schedule");
      ("scale", Jsonl.Float scale);
      ("circuits", Jsonl.List (List.map row_json rows));
    ]

type lane_row = {
  ln_name : string;
  ln_faults : int;
  ln_cycles : int;
  ln_capture_wall : float;
  ln_scalar_wall : float;
  ln_packed_wall : float;
  ln_scalar_bn : int;
  ln_packed_bn : int;
  ln_groups : int;
  ln_occupancy_mean : float;
  ln_fallbacks : int;
  ln_verdicts_equal : bool;
}

let lanes_names = [ "alu"; "sha256_hv"; "fpu" ]

(* Lane-packing benchmark (DESIGN.md §16): the same warm resilient campaign
   scalar and lane-packed, sharing one good-trace capture through
   [config.capture] so the comparison isolates the execution mode. The
   packed run must strictly reduce faulty behavior-network executions —
   identical-overlay lanes share one pass — while reporting the exact
   scalar verdicts. Wall times are best-of-[reps]: the campaigns are short
   at bench-smoke scale and a single sample is at the mercy of the
   scheduler, but the bn counters are deterministic and come from the
   first run. *)
let lanes ?(jobs = 1) ?(reps = 3) ~scale () =
  List.map
    (fun name ->
      let c = Circuits.find name in
      let _, g, w, faults = Circuits.Bench_circuit.instantiate c ~scale in
      let n = Array.length faults in
      let t0 = Stats.now () in
      let cap = Engine.Concurrent.capture g w in
      let capture_wall = Stats.now () -. t0 in
      let base =
        {
          Resilient.default_config with
          Resilient.jobs;
          batch_size = n;
          warmstart = true;
          capture = Some cap;
        }
      in
      let measure lanes =
        let first =
          Resilient.run ~config:{ base with Resilient.lanes } g w faults
        in
        let best = ref first.Resilient.result.Fault.wall_time in
        for _ = 2 to reps do
          let again =
            Resilient.run ~config:{ base with Resilient.lanes } g w faults
          in
          let wt = again.Resilient.result.Fault.wall_time in
          if wt < !best then best := wt
        done;
        (first.Resilient.result, !best)
      in
      let sr, scalar_wall = measure false in
      let pr, packed_wall = measure true in
      let ps = pr.Fault.stats in
      {
        ln_name = c.paper_name;
        ln_faults = n;
        ln_cycles = w.Workload.cycles;
        ln_capture_wall = capture_wall;
        ln_scalar_wall = scalar_wall;
        ln_packed_wall = packed_wall;
        ln_scalar_bn = sr.Fault.stats.Stats.bn_fault_exec;
        ln_packed_bn = ps.Stats.bn_fault_exec;
        ln_groups = ps.Stats.lane_groups;
        ln_occupancy_mean = Stats.lane_occupancy_mean ps;
        ln_fallbacks = ps.Stats.scalar_fallbacks;
        ln_verdicts_equal =
          sr.Fault.detected = pr.Fault.detected
          && sr.Fault.detection_cycle = pr.Fault.detection_cycle;
      })
    lanes_names

let lanes_json ~scale rows =
  let row_json r =
    Jsonl.Obj
      [
        ("name", Jsonl.String r.ln_name);
        ("faults", Jsonl.Int r.ln_faults);
        ("cycles", Jsonl.Int r.ln_cycles);
        ("capture_wall_s", Jsonl.Float r.ln_capture_wall);
        ("scalar_wall_s", Jsonl.Float r.ln_scalar_wall);
        ("packed_wall_s", Jsonl.Float r.ln_packed_wall);
        ("scalar_bn_fault_exec", Jsonl.Int r.ln_scalar_bn);
        ("packed_bn_fault_exec", Jsonl.Int r.ln_packed_bn);
        ("lane_groups", Jsonl.Int r.ln_groups);
        ("lane_occupancy_mean", Jsonl.Float r.ln_occupancy_mean);
        ("scalar_fallbacks", Jsonl.Int r.ln_fallbacks);
        ("verdicts_equal", Jsonl.Bool r.ln_verdicts_equal);
      ]
  in
  Jsonl.Obj
    [
      ("experiment", Jsonl.String "lanes");
      ("scale", Jsonl.Float scale);
      ("circuits", Jsonl.List (List.map row_json rows));
    ]

let mean_speedup rows ~num ~den =
  let log_sum, n =
    List.fold_left
      (fun (acc, n) row ->
        let t e = List.assoc e row.p_times in
        let ratio = t den /. t num in
        if ratio > 0.0 then (acc +. log ratio, n + 1) else (acc, n))
      (0.0, 0) rows
  in
  if n = 0 then 1.0 else exp (log_sum /. float_of_int n)
