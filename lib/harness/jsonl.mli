(** Minimal JSON values for the resilient runner's journal records: one
    complete JSON object per line (JSON Lines). Hand-rolled parser and
    printer — the project deliberately carries no external JSON dependency
    (see {!Json_report}). Not a general-purpose JSON library: no streaming,
    surrogate pairs unsupported. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(** Compact single-line rendering (no trailing newline); [parse (to_string v)]
    round-trips. *)
val to_string : t -> string

(** Parse one complete JSON value; trailing garbage is an error.
    Raises {!Parse_error}. *)
val parse : string -> t

val member : string -> t -> t option

(** Field accessors over an [Obj]; raise {!Parse_error} with the field name
    when absent or of the wrong shape ([get_float] accepts integers). *)
val get_int : string -> t -> int

val get_string : string -> t -> string
val get_float : string -> t -> float
val get_bool : string -> t -> bool
val get_list : string -> t -> t list
val to_int : t -> int
val to_bool : t -> bool

(** A journal file split into newline-terminated records and, when the final
    write was torn by a crash, the unterminated tail bytes. A record is only
    [complete] once its ['\n'] hit the file, so [torn] is the (at most one)
    partial record a crashed writer left behind. *)
type journal = { complete : string list; torn : string option }

(** Read a journal file whole and split it on ['\n']. Never raises
    {!Parse_error}: tearing is reported structurally via [torn] so the caller
    can resume from the last complete record. Raises [Sys_error] if the file
    cannot be read. *)
val read_journal : string -> journal
