(** Resilient campaign runner: batching, checkpoint/resume, watchdogs, and
    online cross-engine divergence quarantine.

    A campaign's fault list is decomposed into fixed batches of
    [config.batch_size] consecutive fault ids; each batch runs through the
    chosen engine independently. Because faulty networks never interact,
    every fault's verdict in a batched run is identical to its verdict in a
    monolithic {!Campaign.run} — batching changes only the failure domain.
    On top of that decomposition the runner provides:

    - {b Journal / resume}: with [config.journal], every completed batch is
      appended to a JSON-Lines file (header line first, then one complete
      JSON object per batch: fault ids, verdicts, detection cycles, stats).
      A campaign killed at any point resumes with [config.resume]: journaled
      batches are replayed, the rest are simulated, and the final coverage
      is bit-identical to an uninterrupted run. A torn final line (the crash
      window) is dropped silently; any other damage or a parameter mismatch
      raises {!Campaign_error} [Journal_corrupt].
    - {b Watchdog}: [max_batch_seconds] / [max_batch_cycles] install a
      per-batch budget via {!Faultsim.Workload.with_budget}. A tripped batch
      is split in half and each half retried with a fresh budget, down to
      single-fault batches or [max_retries] split generations; after that a
      structured [Batch_timeout] is raised (completed batches stay in the
      journal, so even a timed-out campaign resumes).
    - {b Divergence quarantine}: [oracle_sample] is the probability
      (deterministic in [sample_seed] and the batch index) that a batch is
      re-checked against the serial per-fault oracle
      ({!Baselines.Serial.ifsim}). A fault whose verdict disagrees is
      quarantined: re-simulated alone serially, the serial verdict becomes
      final, and a {!divergence} record is reported instead of poisoning
      the campaign. A detection-cycle mismatch between two detections
      counts as a divergence too. [quarantine = false] turns a divergence
      into the fatal [Engine_divergence] error instead.
    - {b Supervision} ([supervise = true]): a batch task that raises a
      non-fatal exception marks only that batch as failed — the worker's
      engine instance is discarded and rebuilt, and the batch is
      re-dispatched up to [max_retries] times. A batch that still trips its
      budget after halving bottoms out in {e per-fault quarantine}: each
      fault runs alone with a fresh budget, and a fault that still fails is
      abandoned (reported undetected and listed in [failed_faults]) rather
      than aborting the campaign. Every retry, restart and quarantine is
      journaled as a typed [{"type":"retry",...}] record just before its
      batch record, so a resumed summary counts the whole campaign.
      Recovery happens in batch-index order on the coordinator, so the
      final report is deterministic given the failure schedule — and
      byte-identical to a [jobs = 1] run when nothing fails.
    - {b Divergence shrinking} ([repro_dir = Some dir]): each quarantined
      divergence is delta-debugged ({!Shrink}) to a minimal co-batched
      fault set and cycle window, and a standalone [repro-<fault>.json]
      file is written (atomically) into [dir] for [eraser repro] to
      replay. *)

open Faultsim

(** One quarantined fault: what the engine claimed vs. what the per-fault
    serial re-simulation established (the final verdict). *)
type divergence = {
  div_fault : int;  (** campaign-global fault id *)
  div_batch : int;
  engine_detected : bool;
  engine_cycle : int;
  oracle_detected : bool;
  oracle_cycle : int;
}

type campaign_error =
  | Engine_divergence of divergence list
      (** online oracle check failed and quarantine is disabled (or a
          [run --verify] style check failed) *)
  | Batch_timeout of {
      batch : int;
      ids : int array;
      cycle : int;
      reason : string;
    }  (** watchdog budget exhausted even after retry-with-smaller-batch *)
  | Journal_corrupt of string
      (** unreadable journal record (other than a torn final line) or a
          journal recorded under different campaign parameters *)
  | Bad_workload of string
      (** structurally invalid workload or runner configuration *)

exception Campaign_error of campaign_error

(** One-line human-readable rendering, for stderr. *)
val error_message : campaign_error -> string

(** Distinct process exit code per variant: divergence 3, timeout 4,
    corrupt journal 5, bad workload 6 (0 is success, 1/2 are generic CLI
    failures). *)
val exit_code : campaign_error -> int

type config = {
  engine : Campaign.engine;
  jobs : int;
      (** worker domains, >= 1. With [jobs > 1] batches are dispatched to a
          {!Pool} of domains, each owning an independent engine instance;
          the coordinator journals and merges outcomes in batch-index
          order, so the final report is byte-identical for any [jobs] (and
          a journal written at one [jobs] resumes at another). *)
  batch_size : int;  (** faults per batch, >= 1 *)
  max_batch_seconds : float option;  (** per-batch wall-clock budget *)
  max_batch_cycles : int option;  (** per-batch cycle budget *)
  max_retries : int;  (** split generations after a watchdog trip *)
  oracle_sample : float;  (** per-batch oracle re-check probability, 0..1 *)
  sample_seed : int64;
  journal : string option;  (** JSONL checkpoint path *)
  resume : bool;  (** replay an existing journal instead of truncating it *)
  quarantine : bool;  (** false: any divergence aborts the campaign *)
  inject_divergence : int option;
      (** debug: corrupt this fault's verdict inside the concurrent engine
          (see {!Engine.Concurrent.config}), to exercise the quarantine *)
  progress : float option;
      (** heartbeat interval in seconds: every interval the coordinator
          prints a progress line (faults/sec, ETA, live coverage) to stderr
          and appends a [{"type":"heartbeat",...}] record to the journal
          (heartbeats are skipped on resume — they never affect replay).
          [None] disables the heartbeat. *)
  supervise : bool;
      (** fault-tolerant mode: crashed batch tasks are retried on a fresh
          engine instance and budget-exhausted single-fault batches are
          abandoned instead of fatal (see the overview above). Off by
          default: an unexpected exception then propagates, and a bottomed
          -out budget raises [Batch_timeout]. *)
  repro_dir : string option;
      (** write a shrunk [repro-<fault>.json] for every quarantined
          divergence into this directory (created if missing) *)
  repro_meta : (string * float) option;
      (** bench-circuit (name, scale) recorded inside repro files so
          [eraser repro] can re-instantiate the design *)
  warmstart : bool;
      (** capture the good trace once ({!Engine.Concurrent.capture}) and
          warm-start every batch: batches are composed of
          activation-sorted fault ids and each starts from the latest
          good-state snapshot at or before its earliest fault activation,
          replaying recorded good writes instead of re-simulating the good
          network. Verdicts, detection cycles and the final report are
          byte-identical to a cold run at any [jobs]; only the redundancy
          counters change ([bn_good] drops to zero per batch,
          [good_cycles_skipped] counts the skipped prefixes,
          [cone_pruned] counts the statically-undetectable faults the
          cone analysis excluded from simulation — see
          [summary.pruned_faults]). Concurrent engines only —
          [Ifsim]/[Vfsim] ignore the flag. A warm journal records a
          ["warmstart"] header field; on [resume] the runner adopts the
          journal's flag (re-capturing the good trace for a warm journal,
          running cold for a cold one) regardless of this field's value,
          so a campaign always resumes in the regime it was started
          under. Off by default. *)
  lanes : bool;
      (** lane-packed execution mode for the concurrent engine (see
          {!Engine.Concurrent.config}): verdicts, detection cycles and the
          verdicts report are byte-identical to scalar mode; execution
          counters differ (lane-mode batches also journal the
          [lane_groups] / [scalar_fallbacks] / occupancy stats fields). A
          lane-mode journal records a ["lanes"] header field; on [resume]
          the runner adopts the journal's flag like [warmstart], so a
          campaign always resumes in the mode it was started under.
          Concurrent engines only — [Ifsim]/[Vfsim] ignore the flag. Off
          by default. *)
  snapshot_every : int option;
      (** snapshot interval for the warm-start capture, in cycles
          ([None]: [max 8 (cycles / 16)]). Smaller intervals skip dead
          prefixes more precisely at a linear memory cost. The [Adaptive]
          schedule replans snapshot placement after capture either way
          (within the captured snapshot count as its budget). *)
  schedule : Schedule.policy option;
      (** planner policy for the batch decomposition ([None]: [Adaptive]
          when warm, degrades to [Fixed] cold — which reproduces the
          historical contiguous-chunk decomposition byte-for-byte).
          Journaled in a warm header's ["schedule"] field and in the
          typed [{"type":"plan",...}] record; on [resume] the journal's
          policy is adopted like [warmstart]. Verdicts are byte-identical
          across policies — batches never interact. *)
  capture : Sim.Goodtrace.t option;
      (** pre-captured good trace to plan from instead of capturing one
          here ([warmstart] runs only). The capture runs zero faults, so
          a trace is valid for every engine mode — this is how the bench
          sweeps share one capture across engines, jobs and schedule
          policies. [goodtrace_captures] still reports 1: one capture run
          stands behind the result. *)
  capture_mem_limit : int option;
      (** spill the planned trace's int64 payloads to a disk-backed mmap
          ({!Sim.Goodtrace.spill}) when its [capture_bytes] exceeds this
          many bytes ([None]: never spill). Replay — and the report's
          bytes — are unchanged. *)
}

(** Eraser engine, batches of 64, no watchdog, no journal, no sampling. *)
val default_config : config

type summary = {
  result : Fault.result;  (** oracle verdicts win for quarantined faults *)
  batches_total : int;
  batches_resumed : int;  (** replayed from the journal *)
  batches_executed : int;  (** simulated by this invocation *)
  retries : int;
      (** batch splits forced by the watchdog (includes journal-replayed
          splits on resume) *)
  restarts : int;
      (** supervised task re-dispatches after a crash (includes
          journal-replayed restarts on resume) *)
  oracle_checked : int;  (** batches re-checked against the serial oracle *)
  divergences : divergence list;
  quarantined : int list;  (** fault ids re-simulated serially *)
  failed_faults : int list;
      (** fault ids abandoned by supervision; their verdicts read
          undetected in [result] and must not be trusted *)
  pruned_faults : int list;
      (** fault ids the cone-of-influence analysis proved statically
          undetectable ({!Engine.Concurrent.statically_undetectable}):
          reported undetected in [result] without being simulated, and
          journaled as one [{"type":"pruned",...}] record right after the
          header. Warm campaigns only; always empty under
          [inject_divergence]. *)
  repros : string list;
      (** repro file names written into [repro_dir], in batch order *)
  capture_bytes : int;
      (** heap footprint of the good-trace capture (0 on a cold run) *)
}

(** Run (or resume) a campaign. Raises {!Campaign_error} only — engine-level
    [Workload.Invalid_workload] is mapped to [Bad_workload], budget trips
    that survive retries to [Batch_timeout]. *)
val run :
  ?config:config ->
  Rtlir.Elaborate.t ->
  Workload.t ->
  Fault.t array ->
  summary

(** [write_atomic path f] — crash-safe file write: [f] streams to
    [path ^ ".tmp"], which is renamed over [path] only after a clean close.
    Used for the JSON reports so a killed campaign never leaves a torn
    report behind. *)
val write_atomic : string -> (out_channel -> unit) -> unit
