


type engine = Ifsim | Vfsim | Z01x_proxy | Eraser_mm | Eraser_m | Eraser

let engine_name = function
  | Ifsim -> "IFsim"
  | Vfsim -> "VFsim"
  | Z01x_proxy -> "Z01X*"
  | Eraser_mm -> "Eraser--"
  | Eraser_m -> "Eraser-"
  | Eraser -> "Eraser"

let all_engines = [ Ifsim; Vfsim; Z01x_proxy; Eraser_mm; Eraser_m; Eraser ]

let concurrent_mode = function
  | Z01x_proxy | Eraser_m -> Engine.Concurrent.Explicit_only
  | Eraser_mm -> Engine.Concurrent.No_redundancy
  | Eraser -> Engine.Concurrent.Full
  | Ifsim | Vfsim -> invalid_arg "concurrent_mode"

let config_of ~instrument engine =
  { Engine.Concurrent.default_config with mode = concurrent_mode engine; instrument }

let run_mono ~instrument engine (g : Rtlir.Elaborate.t) w faults =
  match engine with
  | Ifsim -> Baselines.Serial.ifsim g w faults
  | Vfsim -> Baselines.Serial.vfsim g w faults
  | Z01x_proxy | Eraser_mm | Eraser_m | Eraser ->
      Engine.Concurrent.run ~config:(config_of ~instrument engine) g w faults

(* Fault-partition parallel run: the fault list is cut into [jobs]
   contiguous chunks, one per worker domain. Faulty networks never
   interact, so each chunk's verdicts equal the monolithic run's; the merge
   walks chunks in index order, so verdicts and merged stats are
   deterministic whatever order the workers finish in. *)
let merge_chunks ~t0 ~n chunks results =
  let open Faultsim in
  let detected = Array.make n false in
  let detection_cycle = Array.make n (-1) in
  let stats = ref (Stats.create ()) in
  Array.iteri
    (fun ci (r : Fault.result) ->
      Array.iteri
        (fun j id ->
          detected.(id) <- r.Fault.detected.(j);
          detection_cycle.(id) <- r.Fault.detection_cycle.(j))
        chunks.(ci);
      stats := Stats.add !stats r.Fault.stats)
    results;
  let wall = Stats.now () -. t0 in
  !stats.Stats.total_seconds <- wall;
  Fault.make_result ~detected ~detection_cycle ~stats:!stats ~wall_time:wall ()

let run_partitioned ~instrument ~jobs engine (g : Rtlir.Elaborate.t) w faults =
  let open Faultsim in
  let t0 = Stats.now () in
  let n = Array.length faults in
  let k = min jobs n in
  if k <= 1 then run_mono ~instrument engine g w faults
  else begin
    let chunks =
      Array.init k (fun i ->
          let lo = i * n / k and hi = (i + 1) * n / k in
          Array.init (hi - lo) (fun j -> lo + j))
    in
    let renumber ids =
      Array.mapi (fun i id -> { faults.(id) with Fault.fid = i }) ids
    in
    let results =
      Pool.with_pool ~jobs:k (fun pool ->
          let futures =
            Array.map
              (fun ids ->
                Pool.submit pool (fun (_ : Pool.ctx) ->
                    match engine with
                    | Ifsim -> Baselines.Serial.ifsim g w (renumber ids)
                    | Vfsim -> Baselines.Serial.vfsim g w (renumber ids)
                    | e ->
                        let config = config_of ~instrument e in
                        Engine.Concurrent.run_batch ~config g w faults ~ids))
              chunks
          in
          Array.map Pool.await futures)
    in
    merge_chunks ~t0 ~n chunks results
  end

(* Warm-started campaign: capture the good trace once, compute the
   cone-of-influence analysis, drop faults the cone proves statically
   undetectable (their verdict — undetected — is known without simulating
   a cycle), sort the remaining fault ids by activation window so each
   chunk's faults share a dead prefix, and start every chunk from the
   latest snapshot at or before its earliest activation. Verdicts are
   identical to the cold run's — before its activation cycle a fault's
   network is bit-identical to the good network (see DESIGN.md sections 13
   and 14) — only the redundancy counters change (bn_good and
   rtl_good_eval drop to zero for every batch, cone_pruned counts the
   faults never simulated). *)
let run_warm ~instrument ~jobs ?snapshot_every engine (g : Rtlir.Elaborate.t)
    w faults =
  let open Faultsim in
  let t0 = Stats.now () in
  let n = Array.length faults in
  let config = config_of ~instrument engine in
  let cone = Flow.Cone.build g in
  let trace = Engine.Concurrent.capture ~config ?snapshot_every g w in
  let acts = Engine.Concurrent.activations ~cone trace g faults in
  let pruned = Engine.Concurrent.statically_undetectable ~cone g faults in
  let order =
    Array.of_list (List.filter (fun i -> not pruned.(i)) (List.init n Fun.id))
  in
  let npruned = n - Array.length order in
  if npruned > 0 then Obs.Metrics.add "cone.pruned" npruned;
  Array.sort
    (fun a b ->
      match compare acts.(a) acts.(b) with 0 -> compare a b | c -> c)
    order;
  let nk = Array.length order in
  let k = min jobs nk in
  let chunks =
    Array.init k (fun i ->
        let lo = i * nk / k and hi = (i + 1) * nk / k in
        Array.init (hi - lo) (fun j -> order.(lo + j)))
  in
  let warm_of ids =
    let a = Array.fold_left (fun m id -> min m acts.(id)) max_int ids in
    { Sim.Goodtrace.trace; start = Sim.Goodtrace.start_for trace ~activation:a }
  in
  let run_chunk ids =
    Engine.Concurrent.run_batch ~config ~goodtrace:(warm_of ids) g w faults
      ~ids
  in
  let results =
    if k <= 1 then Array.map run_chunk chunks
    else
      Pool.with_pool ~jobs:k (fun pool ->
          let futures =
            Array.map
              (fun ids -> Pool.submit pool (fun (_ : Pool.ctx) -> run_chunk ids))
              chunks
          in
          Array.map Pool.await futures)
  in
  (* pruned faults fall through to the merge defaults: undetected, -1 *)
  let r = merge_chunks ~t0 ~n chunks results in
  r.Fault.stats.Stats.goodtrace_captures <- 1;
  r.Fault.stats.Stats.cone_pruned <- npruned;
  r

let run ?(instrument = false) ?(jobs = 1) ?(warmstart = false) ?snapshot_every
    engine (g : Rtlir.Elaborate.t) w faults =
  if jobs < 1 then invalid_arg "Campaign.run: jobs must be >= 1";
  match engine with
  | Z01x_proxy | Eraser_mm | Eraser_m | Eraser
    when warmstart && Array.length faults > 0 ->
      run_warm ~instrument ~jobs ?snapshot_every engine g w faults
  | _ ->
      if jobs = 1 || Array.length faults = 0 then
        run_mono ~instrument engine g w faults
      else run_partitioned ~instrument ~jobs engine g w faults

let run_circuit ?instrument ?jobs ?warmstart ?snapshot_every engine
    (c : Circuits.Bench_circuit.t) ~scale =
  let _, g, w, faults = Circuits.Bench_circuit.instantiate c ~scale in
  run ?instrument ?jobs ?warmstart ?snapshot_every engine g w faults
