type engine = Ifsim | Vfsim | Z01x_proxy | Eraser_mm | Eraser_m | Eraser

let engine_name = function
  | Ifsim -> "IFsim"
  | Vfsim -> "VFsim"
  | Z01x_proxy -> "Z01X*"
  | Eraser_mm -> "Eraser--"
  | Eraser_m -> "Eraser-"
  | Eraser -> "Eraser"

let all_engines = [ Ifsim; Vfsim; Z01x_proxy; Eraser_mm; Eraser_m; Eraser ]

let concurrent_mode = function
  | Z01x_proxy | Eraser_m -> Engine.Concurrent.Explicit_only
  | Eraser_mm -> Engine.Concurrent.No_redundancy
  | Eraser -> Engine.Concurrent.Full
  | Ifsim | Vfsim -> invalid_arg "concurrent_mode"

let config_of ?(lanes = false) ~instrument engine =
  {
    Engine.Concurrent.default_config with
    mode = concurrent_mode engine;
    instrument;
    lanes;
  }

let renumber faults ids =
  Array.mapi (fun i id -> { faults.(id) with Faultsim.Fault.fid = i }) ids

(* The one engine-dispatch point: every execution path — mono/partitioned
   campaigns, resilient batches, retries, quarantine singletons — routes an
   (engine, fault-id subset) through here. Serial baselines renumber the
   subset themselves; concurrent engines go through [run_batch], whose
   renumbering keeps verdict indexes aligned with [ids]. *)
let dispatch ?(instrument = false) ?(lanes = false) ?config ?probe ?goodtrace
    ?instance engine (g : Rtlir.Elaborate.t) w faults ~ids =
  match engine with
  | Ifsim -> Baselines.Serial.ifsim g w (renumber faults ids)
  | Vfsim -> Baselines.Serial.vfsim g w (renumber faults ids)
  | e ->
      let config =
        match config with Some c -> c | None -> config_of ~lanes ~instrument e
      in
      Engine.Concurrent.run_batch ~config ?probe ?goodtrace ?instance g w
        faults ~ids

(* Merge planned-batch results back into fault-id order. Faulty networks
   never interact, so each batch's verdicts equal the monolithic run's; the
   merge walks batches in plan order, so verdicts and merged stats are
   deterministic whatever order the workers finish in. Pruned faults fall
   through to the defaults: undetected, -1. *)
let merge_batches ~t0 ~n batch_ids results =
  let open Faultsim in
  let detected = Array.make n false in
  let detection_cycle = Array.make n (-1) in
  let stats = ref (Stats.create ()) in
  Array.iteri
    (fun bi (r : Fault.result) ->
      Array.iteri
        (fun j id ->
          detected.(id) <- r.Fault.detected.(j);
          detection_cycle.(id) <- r.Fault.detection_cycle.(j))
        batch_ids.(bi);
      stats := Stats.add !stats r.Fault.stats)
    results;
  let wall = Stats.now () -. t0 in
  !stats.Stats.total_seconds <- wall;
  Fault.make_result ~detected ~detection_cycle ~stats:!stats ~wall_time:wall ()

let run ?(instrument = false) ?(lanes = false) ?(jobs = 1) ?(warmstart = false)
    ?snapshot_every ?schedule ?capture_mem_limit engine
    (g : Rtlir.Elaborate.t) w faults =
  if jobs < 1 then invalid_arg "Campaign.run: jobs must be >= 1";
  let open Faultsim in
  let n = Array.length faults in
  if n = 0 then dispatch ~instrument ~lanes engine g w faults ~ids:[||]
  else begin
    let t0 = Stats.now () in
    let warm =
      match engine with
      | Z01x_proxy | Eraser_mm | Eraser_m | Eraser when warmstart ->
          let config = config_of ~lanes ~instrument engine in
          let cone = Flow.Cone.build g in
          let trace = Engine.Concurrent.capture ~config ?snapshot_every g w in
          let acts = Engine.Concurrent.activations ~cone trace g faults in
          let pruned =
            Engine.Concurrent.statically_undetectable ~cone g faults
          in
          Some { Schedule.wi_trace = trace; wi_acts = acts; wi_pruned = pruned }
      | _ -> None
    in
    let policy =
      match (schedule, warm) with
      | Some p, _ -> p
      | None, Some _ -> Schedule.Adaptive
      | None, None -> Schedule.Fixed
    in
    let granularity =
      if lanes then Schedule.Lanes jobs else Schedule.Chunks jobs
    in
    let plan =
      Schedule.plan ~policy ~granularity ?capture_mem_limit ?warm ~design:g ~n
        ()
    in
    let npruned = Array.length plan.Schedule.sp_pruned in
    if npruned > 0 then Obs.Metrics.add "cone.pruned" npruned;
    let batches = plan.Schedule.sp_batches in
    let nb = Array.length batches in
    let run_b (b : Schedule.batch) =
      dispatch ~instrument ~lanes
        ?goodtrace:(Schedule.warm_for plan b.Schedule.sb_ids)
        engine g w faults ~ids:b.Schedule.sb_ids
    in
    let results =
      if jobs = 1 || nb <= 1 then Array.map run_b batches
      else
        Pool.with_pool ~jobs:(min jobs nb) (fun pool ->
            (* submit costliest batches first so the long pole starts
               immediately; await — and therefore merge — in plan order *)
            let order = Array.init nb (fun i -> i) in
            Array.sort
              (fun a b ->
                match
                  compare batches.(b).Schedule.sb_cost
                    batches.(a).Schedule.sb_cost
                with
                | 0 -> compare a b
                | c -> c)
              order;
            let futures = Array.make nb None in
            Array.iter
              (fun i ->
                futures.(i) <-
                  Some
                    (Pool.submit pool (fun (_ : Pool.ctx) ->
                         run_b batches.(i))))
              order;
            Array.map
              (function Some f -> Pool.await f | None -> assert false)
              futures)
    in
    let r =
      merge_batches ~t0 ~n
        (Array.map (fun b -> b.Schedule.sb_ids) batches)
        results
    in
    (match warm with
    | Some _ ->
        let stats = r.Fault.stats in
        stats.Stats.goodtrace_captures <- 1;
        stats.Stats.cone_pruned <- npruned;
        stats.Stats.plan_batches <- nb;
        stats.Stats.plan_snapshots <-
          (match plan.Schedule.sp_trace with
          | Some t -> Array.length t.Sim.Goodtrace.snapshots
          | None -> 0)
    | None -> ());
    r
  end

let run_circuit ?instrument ?lanes ?jobs ?warmstart ?snapshot_every ?schedule
    ?capture_mem_limit engine (c : Circuits.Bench_circuit.t) ~scale =
  let _, g, w, faults = Circuits.Bench_circuit.instantiate c ~scale in
  run ?instrument ?lanes ?jobs ?warmstart ?snapshot_every ?schedule
    ?capture_mem_limit engine g w faults
