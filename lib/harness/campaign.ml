


type engine = Ifsim | Vfsim | Z01x_proxy | Eraser_mm | Eraser_m | Eraser

let engine_name = function
  | Ifsim -> "IFsim"
  | Vfsim -> "VFsim"
  | Z01x_proxy -> "Z01X*"
  | Eraser_mm -> "Eraser--"
  | Eraser_m -> "Eraser-"
  | Eraser -> "Eraser"

let all_engines = [ Ifsim; Vfsim; Z01x_proxy; Eraser_mm; Eraser_m; Eraser ]

let concurrent_mode = function
  | Z01x_proxy | Eraser_m -> Engine.Concurrent.Explicit_only
  | Eraser_mm -> Engine.Concurrent.No_redundancy
  | Eraser -> Engine.Concurrent.Full
  | Ifsim | Vfsim -> invalid_arg "concurrent_mode"

let run_mono ~instrument engine (g : Rtlir.Elaborate.t) w faults =
  match engine with
  | Ifsim -> Baselines.Serial.ifsim g w faults
  | Vfsim -> Baselines.Serial.vfsim g w faults
  | Z01x_proxy | Eraser_mm | Eraser_m | Eraser ->
      let config =
        {
          Engine.Concurrent.default_config with
          mode = concurrent_mode engine;
          instrument;
        }
      in
      Engine.Concurrent.run ~config g w faults

(* Fault-partition parallel run: the fault list is cut into [jobs]
   contiguous chunks, one per worker domain. Faulty networks never
   interact, so each chunk's verdicts equal the monolithic run's; the merge
   walks chunks in index order, so verdicts and merged stats are
   deterministic whatever order the workers finish in. *)
let run_partitioned ~instrument ~jobs engine (g : Rtlir.Elaborate.t) w faults =
  let open Faultsim in
  let t0 = Stats.now () in
  let n = Array.length faults in
  let k = min jobs n in
  let chunks =
    Array.init k (fun i ->
        let lo = i * n / k and hi = (i + 1) * n / k in
        Array.init (hi - lo) (fun j -> lo + j))
  in
  let renumber ids = Array.mapi (fun i id -> { faults.(id) with Fault.fid = i }) ids in
  let results =
    Pool.with_pool ~jobs:k (fun pool ->
        let futures =
          Array.map
            (fun ids ->
              Pool.submit pool (fun (_ : Pool.ctx) ->
                  match engine with
                  | Ifsim -> Baselines.Serial.ifsim g w (renumber ids)
                  | Vfsim -> Baselines.Serial.vfsim g w (renumber ids)
                  | e ->
                      let config =
                        {
                          Engine.Concurrent.default_config with
                          mode = concurrent_mode e;
                          instrument;
                        }
                      in
                      Engine.Concurrent.run_batch ~config g w faults ~ids))
            chunks
        in
        Array.map Pool.await futures)
  in
  let detected = Array.make n false in
  let detection_cycle = Array.make n (-1) in
  let stats = ref (Stats.create ()) in
  Array.iteri
    (fun ci (r : Fault.result) ->
      Array.iteri
        (fun j id ->
          detected.(id) <- r.Fault.detected.(j);
          detection_cycle.(id) <- r.Fault.detection_cycle.(j))
        chunks.(ci);
      stats := Stats.add !stats r.Fault.stats)
    results;
  let wall = Stats.now () -. t0 in
  !stats.Stats.total_seconds <- wall;
  Fault.make_result ~detected ~detection_cycle ~stats:!stats ~wall_time:wall ()

let run ?(instrument = false) ?(jobs = 1) engine (g : Rtlir.Elaborate.t) w
    faults =
  if jobs < 1 then invalid_arg "Campaign.run: jobs must be >= 1";
  if jobs = 1 || Array.length faults = 0 then run_mono ~instrument engine g w faults
  else run_partitioned ~instrument ~jobs engine g w faults

let run_circuit ?instrument ?jobs engine (c : Circuits.Bench_circuit.t) ~scale
    =
  let _, g, w, faults = Circuits.Bench_circuit.instantiate c ~scale in
  run ?instrument ?jobs engine g w faults
