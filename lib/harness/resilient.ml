open Faultsim

(* ---- error taxonomy ---- *)

type divergence = {
  div_fault : int;
  div_batch : int;
  engine_detected : bool;
  engine_cycle : int;
  oracle_detected : bool;
  oracle_cycle : int;
}

type campaign_error =
  | Engine_divergence of divergence list
  | Batch_timeout of {
      batch : int;
      ids : int array;
      cycle : int;
      reason : string;
    }
  | Journal_corrupt of string
  | Bad_workload of string

exception Campaign_error of campaign_error

let err e = raise (Campaign_error e)

let error_message = function
  | Engine_divergence ds ->
      Printf.sprintf "engine divergence on %d fault(s): %s" (List.length ds)
        (String.concat ", "
           (List.map (fun d -> string_of_int d.div_fault) ds))
  | Batch_timeout { batch; ids; cycle; reason } ->
      Printf.sprintf
        "batch %d (%d fault(s)) exceeded its watchdog budget at cycle %d \
         (%s) and could not be split further"
        batch (Array.length ids) cycle reason
  | Journal_corrupt msg -> "corrupt journal: " ^ msg
  | Bad_workload msg -> "bad workload: " ^ msg

let exit_code = function
  | Engine_divergence _ -> 3
  | Batch_timeout _ -> 4
  | Journal_corrupt _ -> 5
  | Bad_workload _ -> 6

(* ---- configuration ---- *)

type config = {
  engine : Campaign.engine;
  jobs : int;
  batch_size : int;
  max_batch_seconds : float option;
  max_batch_cycles : int option;
  max_retries : int;
  oracle_sample : float;
  sample_seed : int64;
  journal : string option;
  resume : bool;
  quarantine : bool;
  inject_divergence : int option;
  progress : float option;
  supervise : bool;
  repro_dir : string option;
  repro_meta : (string * float) option;
  warmstart : bool;
  lanes : bool;
  snapshot_every : int option;
  schedule : Schedule.policy option;
  capture : Sim.Goodtrace.t option;
  capture_mem_limit : int option;
}

let default_config =
  {
    engine = Campaign.Eraser;
    jobs = 1;
    batch_size = 64;
    max_batch_seconds = None;
    max_batch_cycles = None;
    max_retries = 2;
    oracle_sample = 0.0;
    sample_seed = 0x5EED_CAFEL;
    journal = None;
    resume = false;
    quarantine = true;
    inject_divergence = None;
    progress = None;
    supervise = false;
    repro_dir = None;
    repro_meta = None;
    warmstart = false;
    lanes = false;
    snapshot_every = None;
    schedule = None;
    capture = None;
    capture_mem_limit = None;
  }

type summary = {
  result : Fault.result;
  batches_total : int;
  batches_resumed : int;
  batches_executed : int;
  retries : int;
  restarts : int;
  oracle_checked : int;
  divergences : divergence list;
  quarantined : int list;
  failed_faults : int list;
  pruned_faults : int list;
      (* fault ids the cone analysis proved statically undetectable;
         reported undetected without being simulated *)
  repros : string list;
  capture_bytes : int;
}

(* ---- journal records ---- *)

type batch_outcome = {
  b_index : int;
  b_ids : int array;
  b_detected : bool array;
  b_cycles : int array;
  b_stats : Stats.t;
  b_wall : float;
  b_oracle_checked : bool;
  b_divergences : divergence list;
  b_failed : int array;
      (* fault ids abandoned by supervision (reported undetected) *)
  b_repros : string list;  (* repro files emitted for this batch *)
}

let header_json ~design_name ?schedule cfg (w : Workload.t) nfaults =
  Jsonl.Obj
    ([
       ("type", Jsonl.String "header");
       ("version", Jsonl.Int 1);
       ("design", Jsonl.String design_name);
       ("engine", Jsonl.String (Campaign.engine_name cfg.engine));
       ("cycles", Jsonl.Int w.Workload.cycles);
       ("clock", Jsonl.Int w.Workload.clock);
       ("faults", Jsonl.Int nfaults);
       ("batch_size", Jsonl.Int cfg.batch_size);
       ("oracle_sample", Jsonl.Float cfg.oracle_sample);
       ("sample_seed", Jsonl.String (Int64.to_string cfg.sample_seed));
     ]
    (* only present on warm campaigns: the batch decomposition is
       planner-ordered there, so a warm journal is incompatible with a
       cold campaign's decomposition (and vice versa). [run] reads the
       flag and the schedule policy back from an existing journal on
       resume and adopts both, so a resume continues in the journal's own
       regime regardless of the resuming invocation's flags. Cold
       journals keep their historical byte format. *)
    @ (if cfg.warmstart then
         ("warmstart", Jsonl.Bool true)
         ::
         (match schedule with
         | Some s -> [ ("schedule", Jsonl.String s) ]
         | None -> [])
       else [])
    (* only present on lane-mode campaigns, so every pre-lane journal
       keeps its bytes; resume adopts it like ["warmstart"] *)
    @
    if cfg.lanes then [ ("lanes", Jsonl.Bool true) ] else [])

let stats_to_json (s : Stats.t) =
  Jsonl.Obj
    ([
       ("bn_good", Jsonl.Int s.Stats.bn_good);
       ("bn_fault_exec", Jsonl.Int s.Stats.bn_fault_exec);
       ("bn_skipped_explicit", Jsonl.Int s.Stats.bn_skipped_explicit);
       ("bn_skipped_implicit", Jsonl.Int s.Stats.bn_skipped_implicit);
       ("rtl_good_eval", Jsonl.Int s.Stats.rtl_good_eval);
       ("rtl_fault_eval", Jsonl.Int s.Stats.rtl_fault_eval);
     ]
    (* warm-started batches only, so cold journals keep their historical
       byte format *)
    @
    (if s.Stats.good_cycles_skipped = 0 then []
     else [ ("good_cycles_skipped", Jsonl.Int s.Stats.good_cycles_skipped) ])
    (* lane-mode batches only, so scalar journals keep their bytes *)
    @
    if s.Stats.lane_groups = 0 then []
    else
      [
        ("lane_groups", Jsonl.Int s.Stats.lane_groups);
        ("lane_occ_sum", Jsonl.Int s.Stats.lane_occ_sum);
        ("lane_occ_rounds", Jsonl.Int s.Stats.lane_occ_rounds);
        ("scalar_fallbacks", Jsonl.Int s.Stats.scalar_fallbacks);
      ])

let stats_of_json j =
  let s = Stats.create () in
  s.Stats.bn_good <- Jsonl.get_int "bn_good" j;
  s.Stats.bn_fault_exec <- Jsonl.get_int "bn_fault_exec" j;
  s.Stats.bn_skipped_explicit <- Jsonl.get_int "bn_skipped_explicit" j;
  s.Stats.bn_skipped_implicit <- Jsonl.get_int "bn_skipped_implicit" j;
  s.Stats.rtl_good_eval <- Jsonl.get_int "rtl_good_eval" j;
  s.Stats.rtl_fault_eval <- Jsonl.get_int "rtl_fault_eval" j;
  (match Jsonl.member "good_cycles_skipped" j with
  | Some (Jsonl.Int k) -> s.Stats.good_cycles_skipped <- k
  | _ -> ());
  (match Jsonl.member "lane_groups" j with
  | Some (Jsonl.Int k) -> s.Stats.lane_groups <- k
  | _ -> ());
  (match Jsonl.member "lane_occ_sum" j with
  | Some (Jsonl.Int k) -> s.Stats.lane_occ_sum <- k
  | _ -> ());
  (match Jsonl.member "lane_occ_rounds" j with
  | Some (Jsonl.Int k) -> s.Stats.lane_occ_rounds <- k
  | _ -> ());
  (match Jsonl.member "scalar_fallbacks" j with
  | Some (Jsonl.Int k) -> s.Stats.scalar_fallbacks <- k
  | _ -> ());
  s

let divergence_to_json d =
  Jsonl.Obj
    [
      ("fault", Jsonl.Int d.div_fault);
      ("batch", Jsonl.Int d.div_batch);
      ("engine_detected", Jsonl.Bool d.engine_detected);
      ("engine_cycle", Jsonl.Int d.engine_cycle);
      ("oracle_detected", Jsonl.Bool d.oracle_detected);
      ("oracle_cycle", Jsonl.Int d.oracle_cycle);
    ]

let divergence_of_json j =
  {
    div_fault = Jsonl.get_int "fault" j;
    div_batch = Jsonl.get_int "batch" j;
    engine_detected = Jsonl.get_bool "engine_detected" j;
    engine_cycle = Jsonl.get_int "engine_cycle" j;
    oracle_detected = Jsonl.get_bool "oracle_detected" j;
    oracle_cycle = Jsonl.get_int "oracle_cycle" j;
  }

let batch_to_json b =
  Jsonl.Obj
    ([
       ("type", Jsonl.String "batch");
       ("index", Jsonl.Int b.b_index);
       ( "ids",
         Jsonl.List (Array.to_list (Array.map (fun i -> Jsonl.Int i) b.b_ids))
       );
       ( "detected",
         Jsonl.List
           (Array.to_list (Array.map (fun d -> Jsonl.Bool d) b.b_detected)) );
       ( "cycles",
         Jsonl.List
           (Array.to_list (Array.map (fun c -> Jsonl.Int c) b.b_cycles)) );
       ("oracle_checked", Jsonl.Bool b.b_oracle_checked);
       ( "divergences",
         Jsonl.List (List.map divergence_to_json b.b_divergences) );
       ("stats", stats_to_json b.b_stats);
       ("wall_s", Jsonl.Float b.b_wall);
     ]
    (* only present when supervision abandoned or shrank something, so
       unsupervised journals keep their historical byte format *)
    @ (if Array.length b.b_failed = 0 then []
       else
         [
           ( "failed",
             Jsonl.List
               (Array.to_list (Array.map (fun i -> Jsonl.Int i) b.b_failed))
           );
         ])
    @
    if b.b_repros = [] then []
    else [ ("repros", Jsonl.List (List.map (fun r -> Jsonl.String r) b.b_repros)) ]
    )

let batch_of_json j =
  if Jsonl.get_string "type" j <> "batch" then
    raise (Jsonl.Parse_error "record is not a batch");
  {
    b_index = Jsonl.get_int "index" j;
    b_ids = Array.of_list (List.map Jsonl.to_int (Jsonl.get_list "ids" j));
    b_detected =
      Array.of_list (List.map Jsonl.to_bool (Jsonl.get_list "detected" j));
    b_cycles =
      Array.of_list (List.map Jsonl.to_int (Jsonl.get_list "cycles" j));
    b_oracle_checked = Jsonl.get_bool "oracle_checked" j;
    b_divergences =
      List.map divergence_of_json (Jsonl.get_list "divergences" j);
    b_stats =
      (match Jsonl.member "stats" j with
      | Some s -> stats_of_json s
      | None -> raise (Jsonl.Parse_error "missing field \"stats\""));
    b_wall = Jsonl.get_float "wall_s" j;
    b_failed =
      (match Jsonl.member "failed" j with
      | Some (Jsonl.List l) -> Array.of_list (List.map Jsonl.to_int l)
      | Some _ -> raise (Jsonl.Parse_error "non-array field \"failed\"")
      | None -> [||]);
    b_repros =
      (match Jsonl.member "repros" j with
      | Some (Jsonl.List l) ->
          List.map
            (function
              | Jsonl.String s -> s
              | _ -> raise (Jsonl.Parse_error "non-string repro entry"))
            l
      | Some _ -> raise (Jsonl.Parse_error "non-array field \"repros\"")
      | None -> []);
  }

(* ---- journal I/O ---- *)

(* What a resume recovers from a journal: the completed batch outcomes,
   the retry/restart events recorded for those batches (so a resumed
   summary counts the whole campaign, not just this invocation), and the
   byte length of the valid prefix. Everything past [clean_bytes] — a torn
   tail or an unparseable final record — must be truncated away before
   appending, or the next record lands mid-garbage and the journal is
   corrupt on the second resume. *)
type replay = {
  rp_outcomes : batch_outcome list;
  rp_retries : int;
  rp_restarts : int;
  rp_clean_bytes : int;
}

let empty_replay =
  { rp_outcomes = []; rp_retries = 0; rp_restarts = 0; rp_clean_bytes = 0 }

(* Replay a journal: validate the header against the campaign at hand and
   collect the completed batch records. A torn final line and an
   unparseable final record (the crash window the journal exists to
   survive) are dropped; any other malformed line or a parameter mismatch
   is a {!Journal_corrupt} error. [expected_pruned] is the
   [{"type":"pruned",...}] record this campaign would write (None when it
   prunes nothing): a journaled pruned record must match it exactly — the
   cone analysis is a deterministic function of the design, so a mismatch
   means the journal belongs to a different campaign. [expected_plan] is
   the [{"type":"plan",...}] record likewise: the planner is
   deterministic, so the journaled plan must equal the one this campaign
   recomputed (batch id membership is validated per batch record). *)
let load_journal path ~expected_header ~expected_pruned ~expected_plan
    ~expected_ids =
  let { Jsonl.complete; torn = _ } = Jsonl.read_journal path in
  match complete with
  | [] -> empty_replay
  | header_line :: records ->
      let header =
        try Jsonl.parse header_line
        with Jsonl.Parse_error m ->
          err (Journal_corrupt (Printf.sprintf "unreadable header (%s)" m))
      in
      if header <> expected_header then
        err
          (Journal_corrupt
             (Printf.sprintf
                "parameter mismatch: journal was recorded by %s but this \
                 campaign is %s"
                (Jsonl.to_string header)
                (Jsonl.to_string expected_header)));
      let nbatches = Array.length expected_ids in
      let seen = Hashtbl.create 16 in
      let total = List.length records in
      let outcomes = ref [] in
      let retry_events = ref [] in
      (* The valid prefix ends at the last completed batch record: retry
         events and heartbeats past it belong to a batch whose record never
         landed — re-execution regenerates them, so resume truncates there
         rather than double-journal them. *)
      let offset = ref (String.length header_line + 1) in
      let clean = ref !offset in
      List.iteri
        (fun i line ->
          let last = i = total - 1 in
          let record_no = i + 1 in
          offset := !offset + String.length line + 1;
          match Jsonl.parse line with
          | exception Jsonl.Parse_error m ->
              (* mid-line crash can only tear the final record *)
              if not last then
                err
                  (Journal_corrupt
                     (Printf.sprintf "record %d unreadable (%s)" record_no m))
          | j when
              (match Jsonl.member "type" j with
              | Some (Jsonl.String "heartbeat") -> true
              | _ -> false) ->
              (* progress heartbeats are informational — replay ignores them *)
              ()
          | j when
              (match Jsonl.member "type" j with
              | Some (Jsonl.String "pruned") -> true
              | _ -> false) ->
              (* the statically-undetectable verdicts journaled right after
                 the header; replay only validates them (the resuming
                 campaign recomputes the same set from the design) *)
              if Some j <> expected_pruned then
                err
                  (Journal_corrupt
                     (Printf.sprintf
                        "record %d: pruned-fault record does not match this \
                         campaign's cone analysis"
                        record_no))
          | j when
              (match Jsonl.member "type" j with
              | Some (Jsonl.String "plan") -> true
              | _ -> false) ->
              (* the schedule plan journaled right after the header; replay
                 only validates it (planning is deterministic, so the
                 resuming campaign recomputes the identical plan) *)
              if Some j <> expected_plan then
                err
                  (Journal_corrupt
                     (Printf.sprintf
                        "record %d: plan record does not match this \
                         campaign's schedule"
                        record_no))
          | j when
              (match Jsonl.member "type" j with
              | Some (Jsonl.String "retry") -> true
              | _ -> false) -> (
              match (Jsonl.member "batch" j, Jsonl.member "kind" j) with
              | Some (Jsonl.Int b), Some (Jsonl.String k) ->
                  retry_events := (b, k) :: !retry_events
              | _ ->
                  if not last then
                    err
                      (Journal_corrupt
                         (Printf.sprintf "record %d: malformed retry record"
                            record_no)))
          | j ->
          match batch_of_json j with
          | exception Jsonl.Parse_error m ->
              if not last then
                err
                  (Journal_corrupt
                     (Printf.sprintf "record %d unreadable (%s)" record_no m))
          | b ->
              if b.b_index < 0 || b.b_index >= nbatches then
                err
                  (Journal_corrupt
                     (Printf.sprintf "record %d: batch index %d out of range"
                        record_no b.b_index));
              if Hashtbl.mem seen b.b_index then
                err
                  (Journal_corrupt
                     (Printf.sprintf "record %d: duplicate batch %d" record_no
                        b.b_index));
              if b.b_ids <> expected_ids.(b.b_index) then
                err
                  (Journal_corrupt
                     (Printf.sprintf
                        "record %d: fault ids of batch %d do not match the \
                         campaign's decomposition"
                        record_no b.b_index));
              if
                Array.length b.b_detected <> Array.length b.b_ids
                || Array.length b.b_cycles <> Array.length b.b_ids
              then
                err
                  (Journal_corrupt
                     (Printf.sprintf "record %d: verdict arrays truncated"
                        record_no));
              Hashtbl.replace seen b.b_index ();
              outcomes := b :: !outcomes;
              clean := !offset)
        records;
      (* count only events whose batch record landed: the rest are being
         truncated away and will be regenerated *)
      let rp_retries = ref 0 and rp_restarts = ref 0 in
      List.iter
        (fun (b, k) ->
          if Hashtbl.mem seen b then
            match k with
            | "split" -> incr rp_retries
            | "restart" -> incr rp_restarts
            | _ -> ())
        !retry_events;
      {
        rp_outcomes = List.rev !outcomes;
        rp_retries = !rp_retries;
        rp_restarts = !rp_restarts;
        rp_clean_bytes = !clean;
      }

let append_record ?chaos_batch oc json =
  let line = Jsonl.to_string json in
  let torn =
    match chaos_batch with
    | Some b when Chaos.active () -> Chaos.torn_write ~batch:b line
    | _ -> None
  in
  match torn with
  | Some k ->
      (* simulated crash: leave the record torn mid-write and die *)
      output_string oc (String.sub line 0 k);
      flush oc;
      raise (Chaos.Killed "chaos: journal write torn mid-record")
  | None ->
      output_string oc line;
      output_char oc '\n';
      flush oc

(* ---- crash-safe file writes ---- *)

let write_atomic path f =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (try f oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  close_out oc;
  Sys.rename tmp path

(* ---- the runner ---- *)

let renumber faults ids =
  Array.mapi (fun i id -> { faults.(id) with Fault.fid = i }) ids

let index_of ids x =
  let found = ref None in
  Array.iteri (fun i id -> if id = x then found := Some i) ids;
  !found

let run ?(config = default_config) (g : Rtlir.Elaborate.t) (w : Workload.t)
    faults =
  let t0 = Stats.now () in
  if config.batch_size < 1 then
    err
      (Bad_workload
         (Printf.sprintf "batch size must be positive, got %d"
            config.batch_size));
  if config.jobs < 1 then
    err
      (Bad_workload
         (Printf.sprintf "jobs must be positive, got %d" config.jobs));
  if config.oracle_sample < 0.0 || config.oracle_sample > 1.0 then
    err
      (Bad_workload
         (Printf.sprintf "oracle sampling rate must be within [0, 1], got %g"
            config.oracle_sample));
  if w.Workload.cycles < 0 then
    err
      (Bad_workload
         (Printf.sprintf "negative cycle count %d" w.Workload.cycles));
  (* Resume adopts the journal's own regime: warm and cold campaigns use
     different batch decompositions (planner-ordered vs contiguous), so
     the journal records ["warmstart"] and ["schedule"] header fields and
     a resume must continue in the regime the journal was written under —
     re-capturing the good trace and re-planning under the journal's
     policy even when the resuming invocation's flags differ, and running
     cold for a cold journal even when they don't. Only those fields are
     adopted; every other header parameter is still validated strictly by
     [load_journal]. An unreadable header falls through untouched and
     fails there with the proper error. *)
  let config =
    match config.journal with
    | Some path when config.resume && Sys.file_exists path -> (
        match (Jsonl.read_journal path).Jsonl.complete with
        | header_line :: _ -> (
            match Jsonl.parse header_line with
            | exception Jsonl.Parse_error _ -> config
            | j ->
                let journal_warm =
                  match Jsonl.member "warmstart" j with
                  | Some (Jsonl.Bool b) -> b
                  | _ -> false
                in
                let journal_sched =
                  match Jsonl.member "schedule" j with
                  | Some (Jsonl.String s) -> Schedule.policy_of_string s
                  | _ -> None
                in
                let journal_lanes =
                  match Jsonl.member "lanes" j with
                  | Some (Jsonl.Bool b) -> b
                  | _ -> false
                in
                {
                  config with
                  warmstart = journal_warm;
                  schedule = journal_sched;
                  lanes = journal_lanes;
                })
        | [] -> config)
    | _ -> config
  in
  let n = Array.length faults in
  (* Per-worker engine instance: the compiled design is immutable once
     built, but each worker gets its own so instances are never shared
     across domains, and reuse across a worker's batches amortises
     compilation. Each slot is touched only by its owning worker (slot 0 by
     the jobs = 1 serial loop; the coordinator borrows it sequentially for
     the good-trace capture, before the pool exists). *)
  let instances = Array.make config.jobs None in
  let instance_for worker =
    match instances.(worker) with
    | Some inst -> inst
    | None ->
        let inst = Engine.Concurrent.instance g in
        instances.(worker) <- Some inst;
        inst
  in
  (* Good-trace warm start: the coordinator captures the good network once
     (before any worker starts — the finished trace is immutable and
     shared read-only; a pre-captured trace supplied via [config.capture]
     is reused instead, the bench sweeps' one-capture-many-runs seam) and
     computes each fault's activation window and the cone's
     statically-undetectable set. Pruning is disabled under
     [inject_divergence] so the injected fault is guaranteed to execute.
     Serial engines have no replay seam and ignore the flag. Everything
     else — ordering, batch decomposition, snapshot placement, warm-start
     cycles — is the planner's job. *)
  let warm_input =
    match config.engine with
    | Campaign.Ifsim | Campaign.Vfsim -> None
    | e when config.warmstart && n > 0 ->
        let trace =
          match config.capture with
          | Some t -> t
          | None -> (
              let cc =
                {
                  Engine.Concurrent.default_config with
                  mode = Campaign.concurrent_mode e;
                }
              in
              try
                Engine.Concurrent.capture ~config:cc
                  ?snapshot_every:config.snapshot_every
                  ~instance:(instance_for 0) g w
              with Workload.Invalid_workload msg -> err (Bad_workload msg))
        in
        let cone = Flow.Cone.build g in
        let acts = Engine.Concurrent.activations ~cone trace g faults in
        let pruned =
          if config.inject_divergence = None then
            Engine.Concurrent.statically_undetectable ~cone g faults
          else Array.make n false
        in
        Some { Schedule.wi_trace = trace; wi_acts = acts; wi_pruned = pruned }
    | _ -> None
  in
  let policy =
    match (config.schedule, warm_input) with
    | Some p, _ -> p
    | None, Some _ -> Schedule.Adaptive
    | None, None -> Schedule.Fixed
  in
  let plan =
    Schedule.plan ~policy ~granularity:(Schedule.Size config.batch_size)
      ?capture_mem_limit:config.capture_mem_limit ?warm:warm_input ~design:g
      ~n ()
  in
  let npruned = Array.length plan.Schedule.sp_pruned in
  let nlive = n - npruned in
  if npruned > 0 then Obs.Metrics.add "cone.pruned" npruned;
  let batches = plan.Schedule.sp_batches in
  let nbatches = Array.length batches in
  let expected_ids = Array.map (fun b -> b.Schedule.sb_ids) batches in
  let pruned_record =
    if npruned = 0 then None
    else
      Some
        (Jsonl.Obj
           [
             ("type", Jsonl.String "pruned");
             ( "ids",
               Jsonl.List
                 (Array.to_list
                    (Array.map (fun i -> Jsonl.Int i) plan.Schedule.sp_pruned))
             );
           ])
  in
  (* The plan itself is journaled on warm campaigns (cold journals keep
     their historical byte format — a cold plan is the trivial contiguous
     one and carries no information the header lacks). *)
  let plan_record =
    match warm_input with
    | Some _ -> Some (Schedule.to_json plan)
    | None -> None
  in
  let design_name = g.Rtlir.Elaborate.design.Rtlir.Design.dname in
  let expected_header =
    header_json ~design_name
      ?schedule:
        (if config.warmstart then Some (Schedule.policy_name plan.Schedule.sp_policy)
         else None)
      config w n
  in
  let replay =
    match config.journal with
    | Some path when config.resume && Sys.file_exists path ->
        load_journal path ~expected_header ~expected_pruned:pruned_record
          ~expected_plan:plan_record ~expected_ids
    | _ -> empty_replay
  in
  let resumed = replay.rp_outcomes in
  let outcomes = Array.make nbatches None in
  List.iter (fun b -> outcomes.(b.b_index) <- Some b) resumed;
  let jout =
    match config.journal with
    | None -> None
    | Some path ->
        if resumed = [] then begin
          (* fresh journal: truncate any stale file and write the header,
             followed by the statically-pruned verdicts when there are any *)
          let oc = open_out path in
          append_record oc expected_header;
          Option.iter (append_record oc) pruned_record;
          Option.iter (append_record oc) plan_record;
          Some oc
        end
        else begin
          (* Drop the crashed suffix (a torn line, an unreadable final
             record, orphaned retry events) before appending: writing after
             torn bytes would corrupt the journal for the *next* resume. *)
          let len = (Unix.stat path).Unix.st_size in
          if replay.rp_clean_bytes < len then begin
            let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
            Fun.protect
              ~finally:(fun () -> Unix.close fd)
              (fun () -> Unix.ftruncate fd replay.rp_clean_bytes)
          end;
          Some (open_out_gen [ Open_append; Open_wronly ] 0o644 path)
        end
  in
  (* serial per-fault oracle over a fault-id subset *)
  let serial_sub ids =
    try Baselines.Serial.ifsim g w (renumber faults ids)
    with Workload.Invalid_workload msg -> err (Bad_workload msg)
  in
  (* run the configured engine over [ids] with an explicit workload (the
     budget-wrapped one for batch execution, a narrowed window for shrinker
     replays), through the one shared {!Campaign.dispatch} point; [probe]
     reaches the concurrent engine only. Warm starts are the plan's — any
     subset of a batch gets the latest snapshot at or before its own
     earliest activation — and apply only at the captured workload length:
     the shrinker's narrowed windows run cold. *)
  let engine_with ?probe ~worker wk ids =
    let cc, inst =
      match config.engine with
      | Campaign.Ifsim | Campaign.Vfsim -> (None, None)
      | e ->
          let corrupt_verdict =
            match config.inject_divergence with
            | Some f -> index_of ids f
            | None -> None
          in
          ( Some
              {
                Engine.Concurrent.default_config with
                mode = Campaign.concurrent_mode e;
                corrupt_verdict;
                lanes = config.lanes;
              },
            Some (instance_for worker) )
    in
    let goodtrace =
      if wk.Workload.cycles = w.Workload.cycles then
        Schedule.warm_for plan ids
      else None
    in
    Campaign.dispatch ?config:cc ?probe ?goodtrace ?instance:inst
      config.engine g wk faults ~ids
  in
  (* budget- and chaos-free engine entry for the shrinker: replays must be
     pure functions of (ids, cycles) *)
  let engine_raw ?probe ?cycles ~worker ids =
    let wk =
      match cycles with None -> w | Some c -> { w with Workload.cycles = c }
    in
    engine_with ?probe ~worker wk ids
  in
  let engine_on ~worker ~batch ids =
    let deadline =
      Option.map (fun s -> Stats.now () +. s) config.max_batch_seconds
    in
    let wb =
      Workload.with_budget ?max_cycles:config.max_batch_cycles ?deadline w
    in
    let wb =
      (* chaos: stall the first drive call past the deadline, once per
         batch, so the watchdog (not the chaos harness) kills the batch *)
      if Chaos.active () && Chaos.stall ~batch then
        let drive c =
          if c = 0 then
            Unix.sleepf
              (match config.max_batch_seconds with
              | Some s -> (2.0 *. s) +. 0.01
              | None -> 0.05);
          wb.Workload.drive c
        in
        { wb with Workload.drive }
      else wb
    in
    engine_with ~worker wb ids
  in
  let retries = Atomic.make 0 in
  let restarts = Atomic.make 0 in
  let ids_json ids =
    Jsonl.List (Array.to_list (Array.map (fun i -> Jsonl.Int i) ids))
  in
  let split_event b ids cycle reason =
    Jsonl.Obj
      [
        ("type", Jsonl.String "retry");
        ("kind", Jsonl.String "split");
        ("batch", Jsonl.Int b);
        ("ids", ids_json ids);
        ("cycle", Jsonl.Int cycle);
        ("reason", Jsonl.String reason);
      ]
  in
  let restart_event b attempt error =
    Jsonl.Obj
      [
        ("type", Jsonl.String "retry");
        ("kind", Jsonl.String "restart");
        ("batch", Jsonl.Int b);
        ("attempt", Jsonl.Int attempt);
        ("error", Jsonl.String error);
      ]
  in
  let quarantine_event b ids =
    Jsonl.Obj
      [
        ("type", Jsonl.String "retry");
        ("kind", Jsonl.String "quarantine");
        ("batch", Jsonl.Int b);
        ("ids", ids_json ids);
      ]
  in
  (* Errors supervision must never swallow: structured campaign failures,
     the chaos harness's simulated crash, and pool teardown. *)
  let fatal = function
    | Campaign_error _ | Chaos.Killed _ | Pool.Shutdown -> true
    | _ -> false
  in
  (* Per-fault quarantine, the supervisor's last resort once halving and
     restarts are exhausted: each fault runs alone with a fresh budget, and
     a fault that still fails is abandoned — reported undetected and listed
     in [b_failed] — instead of looping or aborting the campaign. *)
  let quarantine_pieces ~worker ~events b_index ids =
    events := quarantine_event b_index ids :: !events;
    Array.to_list (Schedule.singletons ids)
    |> List.map (fun piece ->
           match engine_on ~worker ~batch:b_index piece with
           | r -> (piece, Some r)
           | exception Workload.Budget_exceeded _ -> (piece, None)
           | exception Workload.Invalid_workload msg -> err (Bad_workload msg)
           | exception e when not (fatal e) ->
               instances.(worker) <- None;
               (piece, None))
  in
  (* Run one batch under the watchdog. A budget trip refines the plan:
     {!Schedule.halve} splits the batch into its two order-preserving
     halves, each retried with a fresh budget (and, being a smaller fault
     set, a warm start at or past the parent's), down to unsplittable
     single-fault batches or [max_retries] split generations — whichever
     comes first — then reports a structured timeout (or, supervised,
     falls back to per-fault quarantine, the singleton refinement). A
     crash inside the engine discards the worker's instance so the retry
     runs on a freshly built one. *)
  let rec exec_pieces ~worker ~events b_index depth ids =
    match engine_on ~worker ~batch:b_index ids with
    | r -> [ (ids, Some r) ]
    | exception Workload.Budget_exceeded { cycle; reason } -> (
        match Schedule.halve ids with
        | Some (left, right) when depth < config.max_retries ->
            Atomic.incr retries;
            events := split_event b_index ids cycle reason :: !events;
            exec_pieces ~worker ~events b_index (depth + 1) left
            @ exec_pieces ~worker ~events b_index (depth + 1) right
        | _ ->
            if config.supervise then
              quarantine_pieces ~worker ~events b_index ids
            else err (Batch_timeout { batch = b_index; ids; cycle; reason }))
    | exception Workload.Invalid_workload msg -> err (Bad_workload msg)
    | exception e when config.supervise && not (fatal e) ->
        instances.(worker) <- None;
        Atomic.incr restarts;
        events := restart_event b_index depth (Printexc.to_string e) :: !events;
        if depth < config.max_retries then
          exec_pieces ~worker ~events b_index (depth + 1) ids
        else quarantine_pieces ~worker ~events b_index ids
  in
  let oracle_sampled b_index =
    config.oracle_sample > 0.0
    && (config.oracle_sample >= 1.0
       ||
       let rng =
         Rng.create
           (Int64.logxor config.sample_seed
              (Int64.of_int ((b_index + 1) * 0x9E3779B9)))
       in
       Rng.int rng 1_000_000
       < int_of_float (config.oracle_sample *. 1_000_000.))
  in
  (* ---- shrinker support ---- *)
  let nout = Array.length g.Rtlir.Elaborate.outputs in
  let out_name i =
    Rtlir.Design.signal_name g.Rtlir.Elaborate.design
      g.Rtlir.Elaborate.outputs.(i)
  in
  (* Expected (oracle-side) output-port values of one faulty network at
     cycle [at] over window [cycles] — a lone boxed-Bytecode simulator, the
     same configuration the serial oracle pins. *)
  let oracle_outputs fault_id ~cycles ~at =
    let f = faults.(fault_id) in
    let sconfig =
      {
        Sim.Simulator.eval = Sim.Simulator.Bytecode;
        scheduler = Sim.Simulator.Fifo;
        repr = Sim.Simulator.Boxed;
      }
    in
    let force =
      match f.Fault.stuck with
      | Fault.Stuck_at_0 -> Some (f.Fault.signal, f.Fault.bit, false)
      | Fault.Stuck_at_1 -> Some (f.Fault.signal, f.Fault.bit, true)
      | Fault.Flip_at _ -> None
    in
    let sim = Sim.Simulator.create ~config:sconfig ?force g in
    let on_cycle_start cyc =
      match f.Fault.stuck with
      | Fault.Flip_at at when at = cyc ->
          Sim.Simulator.flip_bit sim f.Fault.signal f.Fault.bit
      | _ -> ()
    in
    let wc =
      Workload.checked
        ~num_signals:(Rtlir.Design.num_signals g.Rtlir.Elaborate.design)
        { w with Workload.cycles }
    in
    let vals = Array.make nout "" in
    Workload.run ~on_cycle_start wc
      ~set_input:(Sim.Simulator.set_input sim)
      ~step:(fun () -> Sim.Simulator.step sim)
      ~observe:(fun c ->
        if c = at then begin
          Array.iteri
            (fun i b -> vals.(i) <- Rtlir.Bits.to_string b)
            (Sim.Simulator.outputs sim);
          false
        end
        else true);
    vals
  in
  (* Observed (engine-side) output-port values for [fault_id] inside the
     co-batched set [ids] at cycle [at], via the concurrent engine's probe.
     [None] for serial engines, which have no probe seam. *)
  let engine_outputs ~worker ids fault_id ~cycles ~at =
    match config.engine with
    | Campaign.Ifsim | Campaign.Vfsim -> None
    | _ ->
        let k = match index_of ids fault_id with Some k -> k | None -> 0 in
        let vals = Array.make nout "" in
        let probe c view _mem =
          if c = at then
            for i = 0 to nout - 1 do
              vals.(i) <-
                Rtlir.Bits.to_string (view k g.Rtlir.Elaborate.outputs.(i))
            done
        in
        ignore (engine_raw ~probe ~cycles ~worker ids);
        Some vals
  in
  (* Shrink one confirmed divergence to a minimal reproducer and write the
     [repro-<fault>.json] file. [None] when the divergence does not
     reproduce from the batch starting point (flake) or no repro dir is
     configured. *)
  let shrink_one ~worker ids (d : divergence) =
    match config.repro_dir with
    | None -> None
    | Some dir ->
        let run_engine ~ids ~cycles = engine_raw ~cycles ~worker ids in
        let run_oracle ~id ~cycles =
          let r =
            try
              Baselines.Serial.ifsim g
                { w with Workload.cycles }
                (renumber faults [| id |])
            with Workload.Invalid_workload msg -> err (Bad_workload msg)
          in
          (r.Fault.detected.(0), r.Fault.detection_cycle.(0))
        in
        let observe ~ids ~cycles =
          let od, oc = run_oracle ~id:d.div_fault ~cycles in
          let at = if od && oc >= 0 then oc else cycles - 1 in
          if at < 0 then []
          else
            let expected = oracle_outputs d.div_fault ~cycles ~at in
            match engine_outputs ~worker ids d.div_fault ~cycles ~at with
            | None -> []
            | Some observed ->
                List.init nout (fun i ->
                    (out_name i, expected.(i), observed.(i)))
        in
        (match
           Shrink.shrink ~run_engine ~run_oracle ~refine:Schedule.halve
             ~observe ~fault:d.div_fault
             ~ids ~cycles:w.Workload.cycles ()
         with
        | None -> None
        | Some o ->
            if not (Sys.file_exists dir) then (
              try Unix.mkdir dir 0o755 with Unix.Unix_error _ -> ());
            let file = Printf.sprintf "repro-%d.json" o.Shrink.sh_fault in
            let json =
              Shrink.repro_to_json ~design:design_name
                ~engine:(Campaign.engine_name config.engine)
                ?circuit:config.repro_meta ?inject:config.inject_divergence
                ~fault:faults.(o.Shrink.sh_fault)
                ~fault_name:
                  (Fault.describe g.Rtlir.Elaborate.design
                     faults.(o.Shrink.sh_fault))
                o
            in
            write_atomic (Filename.concat dir file) (fun oc ->
                output_string oc (Jsonl.to_string json);
                output_char oc '\n');
            Some file)
  in
  let run_one_batch ~worker ~events b_index ids =
    let t = Stats.now () in
    let span_t0 = Obs.Trace.span_begin "batch" in
    let pieces = exec_pieces ~worker ~events b_index 0 ids in
    let nb = Array.length ids in
    let detected = Array.make nb false in
    let cycles = Array.make nb (-1) in
    let failed = Array.make nb false in
    let stats = ref (Stats.create ()) in
    let pos = ref 0 in
    List.iter
      (fun (pids, r) ->
        (match r with
        | Some (r : Fault.result) ->
            Array.iteri
              (fun k _ ->
                detected.(!pos + k) <- r.Fault.detected.(k);
                cycles.(!pos + k) <- r.Fault.detection_cycle.(k))
              pids;
            stats := Stats.add !stats r.Fault.stats
        | None ->
            (* abandoned by quarantine: verdict unknown, reported
               undetected and listed in [b_failed] *)
            Array.iteri (fun k _ -> failed.(!pos + k) <- true) pids);
        pos := !pos + Array.length pids)
      pieces;
    let divergences = ref [] in
    let sampled = oracle_sampled b_index in
    if sampled then begin
      let oracle = serial_sub ids in
      Array.iteri
        (fun k id ->
          if
            (not failed.(k))
            && (oracle.Fault.detected.(k) <> detected.(k)
               || (oracle.Fault.detected.(k)
                  && oracle.Fault.detection_cycle.(k) <> cycles.(k)))
          then begin
            (* quarantine: the fault is re-simulated alone, serially; that
               verdict is final and the engine's is reported as divergent.
               A detection-cycle mismatch between two detections counts —
               it is the same engine bug caught one observation later. *)
            let lone = serial_sub [| id |] in
            let d =
              {
                div_fault = id;
                div_batch = b_index;
                engine_detected = detected.(k);
                engine_cycle = cycles.(k);
                oracle_detected = lone.Fault.detected.(0);
                oracle_cycle = lone.Fault.detection_cycle.(0);
              }
            in
            divergences := d :: !divergences;
            detected.(k) <- d.oracle_detected;
            cycles.(k) <- d.oracle_cycle
          end)
        ids;
      if !divergences <> [] && not config.quarantine then
        err (Engine_divergence (List.rev !divergences))
    end;
    let divergences = List.rev !divergences in
    let repros =
      if config.repro_dir = None then []
      else
        List.filter_map (fun d -> shrink_one ~worker ids d) divergences
    in
    Obs.Trace.span_end "batch" span_t0;
    let b_failed =
      let l = ref [] in
      Array.iteri (fun k id -> if failed.(k) then l := id :: !l) ids;
      Array.of_list (List.rev !l)
    in
    {
      b_index;
      b_ids = ids;
      b_detected = detected;
      b_cycles = cycles;
      b_stats = !stats;
      b_wall = Stats.now () -. t;
      b_oracle_checked = sampled;
      b_divergences = divergences;
      b_failed;
      b_repros = repros;
    }
  in
  (* A batch whose task crashed [max_retries + 1] times even under
     supervision: every fault abandoned, nothing executed. *)
  let abandoned_outcome ~events i ids =
    events := quarantine_event i ids :: !events;
    {
      b_index = i;
      b_ids = ids;
      b_detected = Array.make (Array.length ids) false;
      b_cycles = Array.make (Array.length ids) (-1);
      b_stats = Stats.create ();
      b_wall = 0.0;
      b_oracle_checked = false;
      b_divergences = [];
      b_failed = Array.copy ids;
      b_repros = [];
    }
  in
  let executed = ref 0 in
  (* Heartbeat bookkeeping starts from the resumed batches so a resumed
     campaign reports true completion, not just this invocation's share. *)
  let done_faults = ref 0 in
  let det_faults = ref 0 in
  let count_batch b =
    done_faults := !done_faults + Array.length b.b_ids;
    Array.iter (fun d -> if d then incr det_faults) b.b_detected
  in
  List.iter count_batch resumed;
  let hb =
    Option.map
      (fun interval -> Obs.Heartbeat.create ~interval ~total:nlive ())
      config.progress
  in
  (* The coordinator is the only domain that touches [outcomes] and the
     journal: workers hand finished batches back through futures, and the
     coordinator records them in batch-index order. The journal therefore
     always holds an index-ordered prefix (plus resumed records), and the
     final merge below is independent of which worker ran which batch — the
     report is byte-identical for any [jobs]. *)
  let record i (b, events) =
    outcomes.(i) <- Some b;
    incr executed;
    count_batch b;
    (match jout with
    | Some oc ->
        (* retry/restart/quarantine events land just before their batch
           record, so the journal's clean prefix always ends at a batch
           record and resume counts exactly the events it keeps *)
        List.iter (fun e -> append_record ~chaos_batch:i oc e) events;
        append_record ~chaos_batch:i oc (batch_to_json b)
    | None -> ());
    match hb with
    | None -> ()
    | Some hb -> (
        match
          Obs.Heartbeat.update hb ~done_:!done_faults ~detected:!det_faults
        with
        | None -> ()
        | Some tick ->
            prerr_endline (Obs.Heartbeat.to_line hb tick);
            (match jout with
            | Some oc ->
                output_string oc (Obs.Heartbeat.to_json hb tick);
                output_char oc '\n';
                flush oc
            | None -> ()))
  in
  Fun.protect
    ~finally:(fun () ->
      match jout with Some oc -> close_out_noerr oc | None -> ())
    (fun () ->
      if config.jobs = 1 then
        for i = 0 to nbatches - 1 do
          match outcomes.(i) with
          | Some _ -> ()
          | None ->
              let events = ref [] in
              (* Supervised: a task-level crash (chaos injection, or a bug
                 outside exec_pieces's own recovery) discards the worker's
                 engine and re-runs the whole batch, up to [max_retries]
                 attempts, then abandons it. *)
              let rec go attempt =
                match
                  Chaos.batch_start ~batch:i;
                  run_one_batch ~worker:0 ~events i expected_ids.(i)
                with
                | b -> b
                | exception e when config.supervise && not (fatal e) ->
                    instances.(0) <- None;
                    Atomic.incr restarts;
                    events :=
                      restart_event i attempt (Printexc.to_string e)
                      :: !events;
                    if attempt < config.max_retries then go (attempt + 1)
                    else abandoned_outcome ~events i expected_ids.(i)
              in
              let b = go 0 in
              record i (b, List.rev !events)
        done
      else
        Pool.with_pool ~jobs:config.jobs (fun pool ->
            let submit events i =
              (* the label routes the batch index to the pool's chaos seam *)
              Pool.submit ~label:i pool (fun (ctx : Pool.ctx) ->
                  run_one_batch ~worker:ctx.Pool.worker ~events i
                    expected_ids.(i))
            in
            (* Submit outstanding batches costliest-first (the plan's cost
               hint) so the long pole starts before the pool fills with
               short batches; await — and therefore journal and merge — in
               batch-index order below, so reports and journals keep their
               bytes for any submission order. *)
            let futures = Array.make nbatches None in
            let order = Array.init nbatches (fun i -> i) in
            Array.sort
              (fun a b ->
                match
                  compare batches.(b).Schedule.sb_cost
                    batches.(a).Schedule.sb_cost
                with
                | 0 -> compare a b
                | c -> c)
              order;
            Array.iter
              (fun i ->
                match outcomes.(i) with
                | Some _ -> ()
                | None ->
                    let events = ref [] in
                    futures.(i) <- Some (events, submit events i))
              order;
            Array.iteri
              (fun i slot ->
                match slot with
                | None -> ()
                | Some (events, fut) ->
                    (* The coordinator, not the worker, supervises task
                       failures for jobs > 1: a failed future is
                       re-dispatched as a fresh task (any worker may pick
                       it up — the crashed worker already discarded its own
                       engine where it could; the pool chaos seam fails
                       before any engine is touched). Re-dispatch happens
                       in batch-index order, so recovery is deterministic
                       given the failure schedule. *)
                    let rec obtain fut attempt =
                      match Pool.await_result fut with
                      | Ok b -> record i (b, List.rev !events)
                      | Error (e, bt) ->
                          if (not config.supervise) || fatal e then
                            Printexc.raise_with_backtrace e bt
                          else begin
                            Atomic.incr restarts;
                            events :=
                              restart_event i attempt (Printexc.to_string e)
                              :: !events;
                            if attempt < config.max_retries then
                              obtain (submit events i) (attempt + 1)
                            else begin
                              let b =
                                abandoned_outcome ~events i expected_ids.(i)
                              in
                              record i (b, List.rev !events)
                            end
                          end
                    in
                    obtain fut 0)
              futures));
  let detected = Array.make n false in
  let detection_cycle = Array.make n (-1) in
  let stats = ref (Stats.create ()) in
  let divergences = ref [] in
  let oracle_checked = ref 0 in
  let failed_faults = ref [] in
  let repro_files = ref [] in
  Array.iter
    (function
      | None -> assert false (* every index was filled above *)
      | Some b ->
          Array.iteri
            (fun k id ->
              detected.(id) <- b.b_detected.(k);
              detection_cycle.(id) <- b.b_cycles.(k))
            b.b_ids;
          stats := Stats.add !stats b.b_stats;
          if b.b_oracle_checked then incr oracle_checked;
          divergences := !divergences @ b.b_divergences;
          Array.iter (fun id -> failed_faults := id :: !failed_faults)
            b.b_failed;
          repro_files := !repro_files @ b.b_repros)
    outcomes;
  let wall = Stats.now () -. t0 in
  !stats.Stats.total_seconds <- wall;
  (match warm_input with
  | Some _ ->
      (* one capture run behind this result, whether this invocation ran
         it or reused a shared one via [config.capture] *)
      !stats.Stats.goodtrace_captures <- 1;
      !stats.Stats.plan_batches <- nbatches;
      !stats.Stats.plan_snapshots <-
        (match plan.Schedule.sp_trace with
        | Some t -> Array.length t.Sim.Goodtrace.snapshots
        | None -> 0)
  | None -> ());
  !stats.Stats.cone_pruned <- npruned;
  let result =
    Fault.make_result ~detected ~detection_cycle ~stats:!stats
      ~wall_time:wall ()
  in
  {
    result;
    batches_total = nbatches;
    batches_resumed = List.length resumed;
    batches_executed = !executed;
    retries = replay.rp_retries + Atomic.get retries;
    restarts = replay.rp_restarts + Atomic.get restarts;
    oracle_checked = !oracle_checked;
    divergences = !divergences;
    quarantined = List.map (fun d -> d.div_fault) !divergences;
    failed_faults = List.rev !failed_faults;
    pruned_faults = Array.to_list plan.Schedule.sp_pruned;
    repros = !repro_files;
    capture_bytes =
      (match plan.Schedule.sp_trace with
      | Some t -> t.Sim.Goodtrace.capture_bytes
      | None -> 0);
  }
