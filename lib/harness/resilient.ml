open Faultsim

(* ---- error taxonomy ---- *)

type divergence = {
  div_fault : int;
  div_batch : int;
  engine_detected : bool;
  engine_cycle : int;
  oracle_detected : bool;
  oracle_cycle : int;
}

type campaign_error =
  | Engine_divergence of divergence list
  | Batch_timeout of {
      batch : int;
      ids : int array;
      cycle : int;
      reason : string;
    }
  | Journal_corrupt of string
  | Bad_workload of string

exception Campaign_error of campaign_error

let err e = raise (Campaign_error e)

let error_message = function
  | Engine_divergence ds ->
      Printf.sprintf "engine divergence on %d fault(s): %s" (List.length ds)
        (String.concat ", "
           (List.map (fun d -> string_of_int d.div_fault) ds))
  | Batch_timeout { batch; ids; cycle; reason } ->
      Printf.sprintf
        "batch %d (%d fault(s)) exceeded its watchdog budget at cycle %d \
         (%s) and could not be split further"
        batch (Array.length ids) cycle reason
  | Journal_corrupt msg -> "corrupt journal: " ^ msg
  | Bad_workload msg -> "bad workload: " ^ msg

let exit_code = function
  | Engine_divergence _ -> 3
  | Batch_timeout _ -> 4
  | Journal_corrupt _ -> 5
  | Bad_workload _ -> 6

(* ---- configuration ---- *)

type config = {
  engine : Campaign.engine;
  jobs : int;
  batch_size : int;
  max_batch_seconds : float option;
  max_batch_cycles : int option;
  max_retries : int;
  oracle_sample : float;
  sample_seed : int64;
  journal : string option;
  resume : bool;
  quarantine : bool;
  inject_divergence : int option;
  progress : float option;
}

let default_config =
  {
    engine = Campaign.Eraser;
    jobs = 1;
    batch_size = 64;
    max_batch_seconds = None;
    max_batch_cycles = None;
    max_retries = 2;
    oracle_sample = 0.0;
    sample_seed = 0x5EED_CAFEL;
    journal = None;
    resume = false;
    quarantine = true;
    inject_divergence = None;
    progress = None;
  }

type summary = {
  result : Fault.result;
  batches_total : int;
  batches_resumed : int;
  batches_executed : int;
  retries : int;
  oracle_checked : int;
  divergences : divergence list;
  quarantined : int list;
}

(* ---- journal records ---- *)

type batch_outcome = {
  b_index : int;
  b_ids : int array;
  b_detected : bool array;
  b_cycles : int array;
  b_stats : Stats.t;
  b_wall : float;
  b_oracle_checked : bool;
  b_divergences : divergence list;
}

let header_json ~design_name cfg (w : Workload.t) nfaults =
  Jsonl.Obj
    [
      ("type", Jsonl.String "header");
      ("version", Jsonl.Int 1);
      ("design", Jsonl.String design_name);
      ("engine", Jsonl.String (Campaign.engine_name cfg.engine));
      ("cycles", Jsonl.Int w.Workload.cycles);
      ("clock", Jsonl.Int w.Workload.clock);
      ("faults", Jsonl.Int nfaults);
      ("batch_size", Jsonl.Int cfg.batch_size);
      ("oracle_sample", Jsonl.Float cfg.oracle_sample);
      ("sample_seed", Jsonl.String (Int64.to_string cfg.sample_seed));
    ]

let stats_to_json (s : Stats.t) =
  Jsonl.Obj
    [
      ("bn_good", Jsonl.Int s.Stats.bn_good);
      ("bn_fault_exec", Jsonl.Int s.Stats.bn_fault_exec);
      ("bn_skipped_explicit", Jsonl.Int s.Stats.bn_skipped_explicit);
      ("bn_skipped_implicit", Jsonl.Int s.Stats.bn_skipped_implicit);
      ("rtl_good_eval", Jsonl.Int s.Stats.rtl_good_eval);
      ("rtl_fault_eval", Jsonl.Int s.Stats.rtl_fault_eval);
    ]

let stats_of_json j =
  let s = Stats.create () in
  s.Stats.bn_good <- Jsonl.get_int "bn_good" j;
  s.Stats.bn_fault_exec <- Jsonl.get_int "bn_fault_exec" j;
  s.Stats.bn_skipped_explicit <- Jsonl.get_int "bn_skipped_explicit" j;
  s.Stats.bn_skipped_implicit <- Jsonl.get_int "bn_skipped_implicit" j;
  s.Stats.rtl_good_eval <- Jsonl.get_int "rtl_good_eval" j;
  s.Stats.rtl_fault_eval <- Jsonl.get_int "rtl_fault_eval" j;
  s

let divergence_to_json d =
  Jsonl.Obj
    [
      ("fault", Jsonl.Int d.div_fault);
      ("batch", Jsonl.Int d.div_batch);
      ("engine_detected", Jsonl.Bool d.engine_detected);
      ("engine_cycle", Jsonl.Int d.engine_cycle);
      ("oracle_detected", Jsonl.Bool d.oracle_detected);
      ("oracle_cycle", Jsonl.Int d.oracle_cycle);
    ]

let divergence_of_json j =
  {
    div_fault = Jsonl.get_int "fault" j;
    div_batch = Jsonl.get_int "batch" j;
    engine_detected = Jsonl.get_bool "engine_detected" j;
    engine_cycle = Jsonl.get_int "engine_cycle" j;
    oracle_detected = Jsonl.get_bool "oracle_detected" j;
    oracle_cycle = Jsonl.get_int "oracle_cycle" j;
  }

let batch_to_json b =
  Jsonl.Obj
    [
      ("type", Jsonl.String "batch");
      ("index", Jsonl.Int b.b_index);
      ( "ids",
        Jsonl.List (Array.to_list (Array.map (fun i -> Jsonl.Int i) b.b_ids))
      );
      ( "detected",
        Jsonl.List
          (Array.to_list (Array.map (fun d -> Jsonl.Bool d) b.b_detected)) );
      ( "cycles",
        Jsonl.List
          (Array.to_list (Array.map (fun c -> Jsonl.Int c) b.b_cycles)) );
      ("oracle_checked", Jsonl.Bool b.b_oracle_checked);
      ("divergences", Jsonl.List (List.map divergence_to_json b.b_divergences));
      ("stats", stats_to_json b.b_stats);
      ("wall_s", Jsonl.Float b.b_wall);
    ]

let batch_of_json j =
  if Jsonl.get_string "type" j <> "batch" then
    raise (Jsonl.Parse_error "record is not a batch");
  {
    b_index = Jsonl.get_int "index" j;
    b_ids = Array.of_list (List.map Jsonl.to_int (Jsonl.get_list "ids" j));
    b_detected =
      Array.of_list (List.map Jsonl.to_bool (Jsonl.get_list "detected" j));
    b_cycles =
      Array.of_list (List.map Jsonl.to_int (Jsonl.get_list "cycles" j));
    b_oracle_checked = Jsonl.get_bool "oracle_checked" j;
    b_divergences =
      List.map divergence_of_json (Jsonl.get_list "divergences" j);
    b_stats =
      (match Jsonl.member "stats" j with
      | Some s -> stats_of_json s
      | None -> raise (Jsonl.Parse_error "missing field \"stats\""));
    b_wall = Jsonl.get_float "wall_s" j;
  }

(* ---- journal I/O ---- *)

let read_lines path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      List.rev !lines)

(* Replay a journal: validate the header against the campaign at hand and
   collect the completed batch records. A torn final line (the crash the
   journal exists to survive) is silently dropped; any other malformed line
   or parameter mismatch is a {!Journal_corrupt} error. *)
let load_journal path ~expected_header ~expected_ids =
  match read_lines path with
  | [] -> []
  | header_line :: records ->
      let header =
        try Jsonl.parse header_line
        with Jsonl.Parse_error m ->
          err (Journal_corrupt (Printf.sprintf "unreadable header (%s)" m))
      in
      if header <> expected_header then
        err
          (Journal_corrupt
             (Printf.sprintf
                "parameter mismatch: journal was recorded by %s but this \
                 campaign is %s"
                (Jsonl.to_string header)
                (Jsonl.to_string expected_header)));
      let nbatches = Array.length expected_ids in
      let seen = Hashtbl.create 16 in
      let total = List.length records in
      let outcomes = ref [] in
      List.iteri
        (fun i line ->
          let last = i = total - 1 in
          let record_no = i + 1 in
          match Jsonl.parse line with
          | exception Jsonl.Parse_error m ->
              (* mid-line crash can only tear the final record *)
              if not last then
                err
                  (Journal_corrupt
                     (Printf.sprintf "record %d unreadable (%s)" record_no m))
          | j when
              (match Jsonl.member "type" j with
              | Some (Jsonl.String "heartbeat") -> true
              | _ -> false) ->
              (* progress heartbeats are informational — replay ignores them *)
              ()
          | j ->
          match batch_of_json j with
          | exception Jsonl.Parse_error m ->
              if not last then
                err
                  (Journal_corrupt
                     (Printf.sprintf "record %d unreadable (%s)" record_no m))
          | b ->
              if b.b_index < 0 || b.b_index >= nbatches then
                err
                  (Journal_corrupt
                     (Printf.sprintf "record %d: batch index %d out of range"
                        record_no b.b_index));
              if Hashtbl.mem seen b.b_index then
                err
                  (Journal_corrupt
                     (Printf.sprintf "record %d: duplicate batch %d" record_no
                        b.b_index));
              if b.b_ids <> expected_ids.(b.b_index) then
                err
                  (Journal_corrupt
                     (Printf.sprintf
                        "record %d: fault ids of batch %d do not match the \
                         campaign's decomposition"
                        record_no b.b_index));
              if
                Array.length b.b_detected <> Array.length b.b_ids
                || Array.length b.b_cycles <> Array.length b.b_ids
              then
                err
                  (Journal_corrupt
                     (Printf.sprintf "record %d: verdict arrays truncated"
                        record_no));
              Hashtbl.replace seen b.b_index ();
              outcomes := b :: !outcomes)
        records;
      List.rev !outcomes

let append_record oc json =
  output_string oc (Jsonl.to_string json);
  output_char oc '\n';
  flush oc

(* ---- crash-safe file writes ---- *)

let write_atomic path f =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (try f oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  close_out oc;
  Sys.rename tmp path

(* ---- the runner ---- *)

let renumber faults ids =
  Array.mapi (fun i id -> { faults.(id) with Fault.fid = i }) ids

let index_of ids x =
  let found = ref None in
  Array.iteri (fun i id -> if id = x then found := Some i) ids;
  !found

let run ?(config = default_config) (g : Rtlir.Elaborate.t) (w : Workload.t)
    faults =
  let t0 = Stats.now () in
  if config.batch_size < 1 then
    err
      (Bad_workload
         (Printf.sprintf "batch size must be positive, got %d"
            config.batch_size));
  if config.jobs < 1 then
    err
      (Bad_workload
         (Printf.sprintf "jobs must be positive, got %d" config.jobs));
  if config.oracle_sample < 0.0 || config.oracle_sample > 1.0 then
    err
      (Bad_workload
         (Printf.sprintf "oracle sampling rate must be within [0, 1], got %g"
            config.oracle_sample));
  if w.Workload.cycles < 0 then
    err
      (Bad_workload
         (Printf.sprintf "negative cycle count %d" w.Workload.cycles));
  let n = Array.length faults in
  let nbatches =
    if n = 0 then 0 else (n + config.batch_size - 1) / config.batch_size
  in
  let expected_ids =
    Array.init nbatches (fun i ->
        let lo = i * config.batch_size in
        let hi = min n (lo + config.batch_size) in
        Array.init (hi - lo) (fun k -> lo + k))
  in
  let design_name = g.Rtlir.Elaborate.design.Rtlir.Design.dname in
  let expected_header = header_json ~design_name config w n in
  let resumed =
    match config.journal with
    | Some path when config.resume && Sys.file_exists path ->
        load_journal path ~expected_header ~expected_ids
    | _ -> []
  in
  let outcomes = Array.make nbatches None in
  List.iter (fun b -> outcomes.(b.b_index) <- Some b) resumed;
  let jout =
    match config.journal with
    | None -> None
    | Some path ->
        if resumed = [] then begin
          (* fresh journal: truncate any stale file and write the header *)
          let oc = open_out path in
          append_record oc expected_header;
          Some oc
        end
        else Some (open_out_gen [ Open_append; Open_wronly ] 0o644 path)
  in
  (* serial per-fault oracle over a fault-id subset *)
  let serial_sub ids =
    try Baselines.Serial.ifsim g w (renumber faults ids)
    with Workload.Invalid_workload msg -> err (Bad_workload msg)
  in
  (* Per-worker engine instance: the compiled design is immutable once
     built, but each worker gets its own so instances are never shared
     across domains, and reuse across a worker's batches amortises
     compilation. Each slot is touched only by its owning worker (slot 0 by
     the jobs = 1 serial loop). *)
  let instances = Array.make config.jobs None in
  let instance_for worker =
    match instances.(worker) with
    | Some inst -> inst
    | None ->
        let inst = Engine.Concurrent.instance g in
        instances.(worker) <- Some inst;
        inst
  in
  let engine_on ~worker ids =
    let deadline =
      Option.map (fun s -> Stats.now () +. s) config.max_batch_seconds
    in
    let wb =
      Workload.with_budget ?max_cycles:config.max_batch_cycles ?deadline w
    in
    match config.engine with
    | Campaign.Ifsim -> Baselines.Serial.ifsim g wb (renumber faults ids)
    | Campaign.Vfsim -> Baselines.Serial.vfsim g wb (renumber faults ids)
    | e ->
        let corrupt_verdict =
          match config.inject_divergence with
          | Some f -> index_of ids f
          | None -> None
        in
        let cc =
          {
            Engine.Concurrent.default_config with
            mode = Campaign.concurrent_mode e;
            corrupt_verdict;
          }
        in
        Engine.Concurrent.run_batch ~config:cc
          ~instance:(instance_for worker) g wb faults ~ids
  in
  let retries = Atomic.make 0 in
  (* Run one batch under the watchdog. A budget trip splits the batch in
     half and retries both halves with a fresh budget, down to single-fault
     batches or [max_retries] split generations — whichever comes first —
     then reports a structured timeout. *)
  let rec exec_pieces ~worker b_index depth ids =
    match engine_on ~worker ids with
    | r -> [ (ids, r) ]
    | exception Workload.Budget_exceeded { cycle; reason } ->
        if Array.length ids <= 1 || depth >= config.max_retries then
          err (Batch_timeout { batch = b_index; ids; cycle; reason })
        else begin
          Atomic.incr retries;
          let half = Array.length ids / 2 in
          let left = Array.sub ids 0 half in
          let right = Array.sub ids half (Array.length ids - half) in
          exec_pieces ~worker b_index (depth + 1) left
          @ exec_pieces ~worker b_index (depth + 1) right
        end
    | exception Workload.Invalid_workload msg -> err (Bad_workload msg)
  in
  let oracle_sampled b_index =
    config.oracle_sample > 0.0
    && (config.oracle_sample >= 1.0
       ||
       let rng =
         Rng.create
           (Int64.logxor config.sample_seed
              (Int64.of_int ((b_index + 1) * 0x9E3779B9)))
       in
       Rng.int rng 1_000_000
       < int_of_float (config.oracle_sample *. 1_000_000.))
  in
  let run_one_batch ~worker b_index ids =
    let t = Stats.now () in
    let span_t0 = Obs.Trace.span_begin "batch" in
    let pieces = exec_pieces ~worker b_index 0 ids in
    let nb = Array.length ids in
    let detected = Array.make nb false in
    let cycles = Array.make nb (-1) in
    let stats = ref (Stats.create ()) in
    let pos = ref 0 in
    List.iter
      (fun (pids, (r : Fault.result)) ->
        Array.iteri
          (fun k _ ->
            detected.(!pos + k) <- r.Fault.detected.(k);
            cycles.(!pos + k) <- r.Fault.detection_cycle.(k))
          pids;
        pos := !pos + Array.length pids;
        stats := Stats.add !stats r.Fault.stats)
      pieces;
    let divergences = ref [] in
    let sampled = oracle_sampled b_index in
    if sampled then begin
      let oracle = serial_sub ids in
      Array.iteri
        (fun k id ->
          if oracle.Fault.detected.(k) <> detected.(k) then begin
            (* quarantine: the fault is re-simulated alone, serially; that
               verdict is final and the engine's is reported as divergent *)
            let lone = serial_sub [| id |] in
            let d =
              {
                div_fault = id;
                div_batch = b_index;
                engine_detected = detected.(k);
                engine_cycle = cycles.(k);
                oracle_detected = lone.Fault.detected.(0);
                oracle_cycle = lone.Fault.detection_cycle.(0);
              }
            in
            divergences := d :: !divergences;
            detected.(k) <- d.oracle_detected;
            cycles.(k) <- d.oracle_cycle
          end)
        ids;
      if !divergences <> [] && not config.quarantine then
        err (Engine_divergence (List.rev !divergences))
    end;
    Obs.Trace.span_end "batch" span_t0;
    {
      b_index;
      b_ids = ids;
      b_detected = detected;
      b_cycles = cycles;
      b_stats = !stats;
      b_wall = Stats.now () -. t;
      b_oracle_checked = sampled;
      b_divergences = List.rev !divergences;
    }
  in
  let executed = ref 0 in
  (* Heartbeat bookkeeping starts from the resumed batches so a resumed
     campaign reports true completion, not just this invocation's share. *)
  let done_faults = ref 0 in
  let det_faults = ref 0 in
  let count_batch b =
    done_faults := !done_faults + Array.length b.b_ids;
    Array.iter (fun d -> if d then incr det_faults) b.b_detected
  in
  List.iter count_batch resumed;
  let hb =
    Option.map
      (fun interval -> Obs.Heartbeat.create ~interval ~total:n ())
      config.progress
  in
  (* The coordinator is the only domain that touches [outcomes] and the
     journal: workers hand finished batches back through futures, and the
     coordinator records them in batch-index order. The journal therefore
     always holds an index-ordered prefix (plus resumed records), and the
     final merge below is independent of which worker ran which batch — the
     report is byte-identical for any [jobs]. *)
  let record i b =
    outcomes.(i) <- Some b;
    incr executed;
    count_batch b;
    (match jout with
    | Some oc -> append_record oc (batch_to_json b)
    | None -> ());
    match hb with
    | None -> ()
    | Some hb -> (
        match
          Obs.Heartbeat.update hb ~done_:!done_faults ~detected:!det_faults
        with
        | None -> ()
        | Some tick ->
            prerr_endline (Obs.Heartbeat.to_line hb tick);
            (match jout with
            | Some oc ->
                output_string oc (Obs.Heartbeat.to_json hb tick);
                output_char oc '\n';
                flush oc
            | None -> ()))
  in
  Fun.protect
    ~finally:(fun () ->
      match jout with Some oc -> close_out_noerr oc | None -> ())
    (fun () ->
      if config.jobs = 1 then
        for i = 0 to nbatches - 1 do
          match outcomes.(i) with
          | Some _ -> ()
          | None -> record i (run_one_batch ~worker:0 i expected_ids.(i))
        done
      else
        Pool.with_pool ~jobs:config.jobs (fun pool ->
            let futures =
              Array.init nbatches (fun i ->
                  match outcomes.(i) with
                  | Some _ -> None
                  | None ->
                      Some
                        (Pool.submit pool (fun (ctx : Pool.ctx) ->
                             run_one_batch ~worker:ctx.Pool.worker i
                               expected_ids.(i))))
            in
            Array.iteri
              (fun i fut ->
                match fut with
                | None -> ()
                | Some fut -> record i (Pool.await fut))
              futures));
  let detected = Array.make n false in
  let detection_cycle = Array.make n (-1) in
  let stats = ref (Stats.create ()) in
  let divergences = ref [] in
  let oracle_checked = ref 0 in
  Array.iter
    (function
      | None -> assert false (* every index was filled above *)
      | Some b ->
          Array.iteri
            (fun k id ->
              detected.(id) <- b.b_detected.(k);
              detection_cycle.(id) <- b.b_cycles.(k))
            b.b_ids;
          stats := Stats.add !stats b.b_stats;
          if b.b_oracle_checked then incr oracle_checked;
          divergences := !divergences @ b.b_divergences)
    outcomes;
  let wall = Stats.now () -. t0 in
  !stats.Stats.total_seconds <- wall;
  let result =
    Fault.make_result ~detected ~detection_cycle ~stats:!stats
      ~wall_time:wall ()
  in
  {
    result;
    batches_total = nbatches;
    batches_resumed = List.length resumed;
    batches_executed = !executed;
    retries = Atomic.get retries;
    oracle_checked = !oracle_checked;
    divergences = !divergences;
    quarantined = List.map (fun d -> d.div_fault) !divergences;
  }
