(** Divergence shrinker: delta-debug a confirmed engine/oracle divergence
    down to a minimal reproducer.

    When the resilient runner's quarantine confirms that a fault's verdict
    under the batched concurrent engine differs from the lone serial
    oracle, the interesting question is {e which co-batched faults and how
    many cycles} are needed to trigger the disagreement. {!shrink} answers
    it with the classic ddmin loop over the companion fault set (the
    divergent fault itself always stays) followed by a binary search on the
    cycle window, re-running the engine closure at every probe. Both
    dimensions only ever shrink, so the result is a (locally) minimal
    [(fault set, cycle window)] pair that still reproduces the divergence.

    The caller supplies the execution closures, so the shrinker is
    independent of engine configuration, budgets and chaos seams; the
    closures must be deterministic for the minimisation to converge (the
    resilient runner guarantees this by re-applying its corruption knobs on
    every subset). Shrink statistics land in {!Obs.Metrics} under
    [shrink.runs], [shrink.attempts], [shrink.final_faults] and
    [shrink.final_cycles]. *)

open Faultsim

type outcome = {
  sh_fault : int;  (** campaign-global id of the divergent fault *)
  sh_ids : int array;
      (** minimal co-batched fault set (sorted, includes [sh_fault]) *)
  sh_cycles : int;  (** minimal cycle window that still diverges *)
  sh_attempts : int;  (** engine replays spent minimising *)
  sh_engine_detected : bool;
  sh_engine_cycle : int;
  sh_oracle_detected : bool;
  sh_oracle_cycle : int;
  sh_outputs : (string * string * string) list;
      (** per output port: (name, expected = oracle view, observed =
          engine view) at the divergence cycle; empty when the engine
          cannot be probed *)
}

(** [shrink ~run_engine ~run_oracle ~fault ~ids ~cycles ()] minimises the
    starting point [(ids, cycles)] — which must contain [fault] — and
    returns [None] when the divergence does not reproduce there (a flaky
    quarantine: better no reproducer than a wrong one). [run_engine] runs
    the campaign engine over a fault-id subset and window; [run_oracle]
    runs the lone serial oracle for one fault. [?refine] is a planner-style
    splitter (e.g. {!Schedule.halve}): before ddmin, the id set is
    repeatedly split and the half holding [fault] kept while the divergence
    still reproduces — O(log n) probes that mirror the resilient runner's
    retry-by-halving, so ddmin starts from a campaign-realistic sub-batch.
    [?observe] captures the expected-vs-observed output values of the final
    minimal reproducer. Work is bounded: at most ~256 engine replays. *)
val shrink :
  run_engine:(ids:int array -> cycles:int -> Fault.result) ->
  run_oracle:(id:int -> cycles:int -> bool * int) ->
  ?refine:(int array -> (int array * int array) option) ->
  ?observe:(ids:int array -> cycles:int -> (string * string * string) list) ->
  fault:int ->
  ids:int array ->
  cycles:int ->
  unit ->
  outcome option

(** [repro_to_json] renders a standalone reproducer record (the
    [repro-<fault>.json] schema, [version 1]) that [eraser repro] can
    replay: design and circuit identity, the fault descriptor, the minimal
    fault set and cycle window, both verdicts, and the expected-vs-observed
    port values. [circuit] is the bench-circuit name and scale when the
    campaign knows them (replay needs them to re-instantiate); [inject] is
    the campaign's [inject_divergence] knob, re-armed on replay so a forced
    divergence reproduces. *)
val repro_to_json :
  design:string ->
  engine:string ->
  ?circuit:string * float ->
  ?inject:int ->
  fault:Fault.t ->
  fault_name:string ->
  outcome ->
  Jsonl.t
