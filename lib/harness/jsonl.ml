type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* ---- printing ---- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          write buf v)
        l;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ---- parsing (recursive descent over a string) ---- *)

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> fail "expected %c at offset %d, found %c" c st.pos c'
  | None -> fail "expected %c at offset %d, found end of input" c st.pos

let parse_literal st lit value =
  let n = String.length lit in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = lit
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail "invalid literal at offset %d" st.pos

let parse_string_body st =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail "unterminated string at offset %d" st.pos
    | Some '"' ->
        advance st;
        Buffer.contents buf
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> fail "unterminated escape at offset %d" st.pos
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                if st.pos + 4 > String.length st.src then
                  fail "truncated \\u escape at offset %d" st.pos;
                let hex = String.sub st.src st.pos 4 in
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail "bad \\u escape at offset %d" st.pos
                in
                st.pos <- st.pos + 4;
                (* BMP only; journal strings are ASCII in practice *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf
                    (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
            | c -> fail "bad escape \\%c at offset %d" c st.pos);
            go ())
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while match peek st with Some c when is_num_char c -> true | _ -> false do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  match int_of_string_opt text with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number %S at offset %d" text start)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail "unexpected end of input at offset %d" st.pos
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws st;
          expect st '"';
          let key = parse_string_body st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          fields := (key, v) :: !fields;
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              members ()
          | Some '}' -> advance st
          | _ -> fail "expected , or } at offset %d" st.pos
        in
        members ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value st in
          items := v :: !items;
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              elements ()
          | Some ']' -> advance st
          | _ -> fail "expected , or ] at offset %d" st.pos
        in
        elements ();
        List (List.rev !items)
      end
  | Some '"' ->
      advance st;
      String (parse_string_body st)
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail "unexpected character %c at offset %d" c st.pos

let parse s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then
    fail "trailing garbage at offset %d" st.pos;
  v

(* ---- accessors ---- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let get_int name v =
  match member name v with
  | Some (Int i) -> i
  | _ -> fail "missing or non-integer field %S" name

let get_string name v =
  match member name v with
  | Some (String s) -> s
  | _ -> fail "missing or non-string field %S" name

let get_float name v =
  match member name v with
  | Some (Float f) -> f
  | Some (Int i) -> float_of_int i
  | _ -> fail "missing or non-number field %S" name

let get_bool name v =
  match member name v with
  | Some (Bool b) -> b
  | _ -> fail "missing or non-boolean field %S" name

let get_list name v =
  match member name v with
  | Some (List l) -> l
  | _ -> fail "missing or non-array field %S" name

let to_int = function
  | Int i -> i
  | v -> fail "expected integer, found %s" (to_string v)

(* ---- journal files ---- *)

type journal = { complete : string list; torn : string option }

let read_journal path =
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let n = String.length s in
  let rec split acc start =
    match String.index_from_opt s start '\n' with
    | Some i -> split (String.sub s start (i - start) :: acc) (i + 1)
    | None ->
        let torn = if start >= n then None else Some (String.sub s start (n - start)) in
        { complete = List.rev acc; torn }
  in
  split [] 0

let to_bool = function
  | Bool b -> b
  | v -> fail "expected boolean, found %s" (to_string v)
