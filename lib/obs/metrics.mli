(** Named metrics registry: monotonic counters and power-of-two-bucket
    histograms, replacing ad-hoc stats mutation for everything that is not
    a paper table. The registry is global and mutex-protected — it is meant
    for {e coarse} recording (per run, per batch, or merged from a local
    accumulator at end of run), not per-event hot paths. Hot loops should
    accumulate into a local [int array] and hand it to {!merge_histogram}
    once.

    Like {!Trace}, the disabled path is one atomic load and allocates
    nothing. Counts are deterministic for a deterministic workload whatever
    the domain interleaving: counters are sums, histogram buckets are sums,
    and {!to_json_string} emits entries sorted by name. *)

val on : unit -> bool

val enable : unit -> unit

val disable : unit -> unit

(** Drop every registered metric. *)
val reset : unit -> unit

(** [add name n] bumps the counter [name] by [n] (created at 0 on first
    use). *)
val add : string -> int -> unit

(** [observe name v] records one histogram sample. Bucket upper bounds are
    1, 2, 4, … 2{^30}, +inf; the histogram also tracks count, sum and max. *)
val observe : string -> float -> unit

(** [bucket_of v] — index of the histogram bucket [v] falls into, for local
    accumulation arrays of size {!nbuckets}. *)
val bucket_of : float -> int

val nbuckets : int

(** [merge_histogram name buckets ~count ~sum ~max] folds a locally
    accumulated histogram ([buckets] indexed by {!bucket_of}, length ≤
    {!nbuckets}) into the registry in one registry operation. *)
val merge_histogram :
  string -> int array -> count:int -> sum:float -> max:float -> unit

(** Current counter value, if [name] is a counter (for tests). *)
val counter_value : string -> int option

(** Histogram (count, sum, max), if [name] is a histogram (for tests). *)
val histogram_stats : string -> (int * float * float) option

(** One JSON object: [{"metrics": {name: {...}, ...}}], names sorted.
    Counters render as [{"type":"counter","value":n}]; histograms as
    [{"type":"histogram","count":n,"sum":s,"max":m,"buckets":[{"le":b,
    "count":n}, ...]}] with only non-empty buckets listed. *)
val to_json_string : unit -> string

val export_json : out_channel -> unit
