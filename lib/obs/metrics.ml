type counter = { mutable c_value : int }

type hist = {
  h_buckets : int array;  (* upper bound of bucket i is 2^i; last +inf *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_max : float;
}

type metric = Counter of counter | Hist of hist

let on_flag = Atomic.make false
let on () = Atomic.get on_flag
let enable () = Atomic.set on_flag true
let disable () = Atomic.set on_flag false

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let mu = Mutex.create ()

let reset () =
  Mutex.lock mu;
  Hashtbl.reset registry;
  Mutex.unlock mu

let nbuckets = 32

let bucket_of v =
  if Float.is_nan v || v <= 1.0 then 0
  else if v >= 1073741824.0 (* 2^30 *) then nbuckets - 1
  else begin
    (* smallest i with v <= 2^i *)
    let rec find i bound =
      if v <= bound then i else find (i + 1) (bound *. 2.0)
    in
    find 0 1.0
  end

let bucket_bound i = if i >= nbuckets - 1 then infinity else Float.of_int (1 lsl i)

let with_counter name f =
  Mutex.lock mu;
  (match Hashtbl.find_opt registry name with
  | Some (Counter c) -> f c
  | Some (Hist _) -> ()  (* name clash: first registration wins *)
  | None ->
      let c = { c_value = 0 } in
      Hashtbl.add registry name (Counter c);
      f c);
  Mutex.unlock mu

let with_hist name f =
  Mutex.lock mu;
  (match Hashtbl.find_opt registry name with
  | Some (Hist h) -> f h
  | Some (Counter _) -> ()
  | None ->
      let h =
        {
          h_buckets = Array.make nbuckets 0;
          h_count = 0;
          h_sum = 0.0;
          h_max = neg_infinity;
        }
      in
      Hashtbl.add registry name (Hist h);
      f h);
  Mutex.unlock mu

let add name n =
  if Atomic.get on_flag then with_counter name (fun c -> c.c_value <- c.c_value + n)

let observe name v =
  if Atomic.get on_flag then
    with_hist name (fun h ->
        let b = bucket_of v in
        h.h_buckets.(b) <- h.h_buckets.(b) + 1;
        h.h_count <- h.h_count + 1;
        h.h_sum <- h.h_sum +. v;
        if v > h.h_max then h.h_max <- v)

let merge_histogram name buckets ~count ~sum ~max =
  if Atomic.get on_flag && count > 0 then
    with_hist name (fun h ->
        Array.iteri
          (fun i n -> if i < nbuckets then h.h_buckets.(i) <- h.h_buckets.(i) + n)
          buckets;
        h.h_count <- h.h_count + count;
        h.h_sum <- h.h_sum +. sum;
        if max > h.h_max then h.h_max <- max)

let counter_value name =
  Mutex.lock mu;
  let r =
    match Hashtbl.find_opt registry name with
    | Some (Counter c) -> Some c.c_value
    | _ -> None
  in
  Mutex.unlock mu;
  r

let histogram_stats name =
  Mutex.lock mu;
  let r =
    match Hashtbl.find_opt registry name with
    | Some (Hist h) -> Some (h.h_count, h.h_sum, h.h_max)
    | _ -> None
  in
  Mutex.unlock mu;
  r

(* ---- export ---- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_json v =
  if not (Float.is_finite v) then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.1f" v
  else Printf.sprintf "%.17g" v

let to_json_string () =
  Mutex.lock mu;
  let entries =
    Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry []
  in
  Mutex.unlock mu;
  let entries =
    List.sort (fun (a, _) (b, _) -> String.compare a b) entries
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"metrics\":{";
  List.iteri
    (fun i (name, m) ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf "\"%s\":" (escape name);
      match m with
      | Counter c ->
          Printf.bprintf buf "{\"type\":\"counter\",\"value\":%d}" c.c_value
      | Hist h ->
          Printf.bprintf buf
            "{\"type\":\"histogram\",\"count\":%d,\"sum\":%s,\"max\":%s,\"buckets\":["
            h.h_count (float_json h.h_sum)
            (float_json (if h.h_count = 0 then 0.0 else h.h_max));
          let first = ref true in
          Array.iteri
            (fun b n ->
              if n > 0 then begin
                if not !first then Buffer.add_char buf ',';
                first := false;
                Printf.bprintf buf "{\"le\":%s,\"count\":%d}"
                  (if b >= nbuckets - 1 then "\"inf\""
                   else string_of_int (1 lsl b))
                  n
              end)
            h.h_buckets;
          Buffer.add_string buf "]}")
    entries;
  Buffer.add_string buf "}}";
  Buffer.contents buf

let export_json oc =
  output_string oc (to_json_string ());
  output_char oc '\n'

let _ = bucket_bound
