type t = {
  now : unit -> float;
  interval : float;
  total : int;
  t0 : float;
  mutable last_emit : float;
}

type tick = {
  hb_done : int;
  hb_detected : int;
  hb_elapsed_s : float;
  hb_rate : float;
  hb_eta_s : float;
}

let create ?(now = Unix.gettimeofday) ?(interval = 10.0) ~total () =
  let t0 = now () in
  { now; interval; total; t0; last_emit = t0 }

let update t ~done_ ~detected =
  let ts = t.now () in
  if ts -. t.last_emit < t.interval then None
  else begin
    t.last_emit <- ts;
    let elapsed = ts -. t.t0 in
    let rate = if elapsed > 0.0 then float_of_int done_ /. elapsed else 0.0 in
    let remaining = t.total - done_ in
    let eta =
      if remaining <= 0 || rate <= 0.0 then 0.0 else float_of_int remaining /. rate
    in
    Some
      {
        hb_done = done_;
        hb_detected = detected;
        hb_elapsed_s = elapsed;
        hb_rate = rate;
        hb_eta_s = eta;
      }
  end

let to_line t tick =
  let pct =
    if t.total > 0 then 100.0 *. float_of_int tick.hb_done /. float_of_int t.total
    else 0.0
  in
  let cov =
    if tick.hb_done > 0 then
      100.0 *. float_of_int tick.hb_detected /. float_of_int tick.hb_done
    else 0.0
  in
  Printf.sprintf
    "[hb] %d/%d faults (%.1f%%) | %.1f faults/s | eta %.0fs | detected %d (%.1f%% of done)"
    tick.hb_done t.total pct tick.hb_rate tick.hb_eta_s tick.hb_detected cov

let to_json t tick =
  Printf.sprintf
    "{\"type\": \"heartbeat\", \"done\": %d, \"total\": %d, \"detected\": %d, \
     \"elapsed_s\": %.3f, \"faults_per_sec\": %.2f, \"eta_s\": %.1f}"
    tick.hb_done t.total tick.hb_detected tick.hb_elapsed_s tick.hb_rate
    tick.hb_eta_s
