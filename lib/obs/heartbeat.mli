(** Campaign progress heartbeat: rate-limited "faults/sec, ETA, live
    coverage" lines for long runs. Pure bookkeeping around an injectable
    clock so tests can drive it deterministically; the caller decides where
    the line goes (stderr, journal, both). *)

type t

(** [create ?now ?interval ~total ()] — [total] is the number of faults the
    campaign will simulate; [interval] (default 10.0 s) is the minimum time
    between emitted lines; [now] (default [Unix.gettimeofday]) is the clock. *)
val create : ?now:(unit -> float) -> ?interval:float -> total:int -> unit -> t

(** Progress snapshot carried by each heartbeat. *)
type tick = {
  hb_done : int;
  hb_detected : int;
  hb_elapsed_s : float;
  hb_rate : float;  (** faults simulated per second since {!create} *)
  hb_eta_s : float;  (** seconds to finish at [hb_rate]; 0 when done *)
}

(** [update t ~done_ ~detected] returns [Some tick] when at least [interval]
    seconds have passed since the last emitted tick (or since [create], for
    the first), [None] otherwise. Monotone in [done_]. *)
val update : t -> done_:int -> detected:int -> tick option

(** Render a tick as the one-line form printed to stderr:
    ["[hb] 1200/4096 faults (29.3%) | 410.1 faults/s | eta 7s | detected 312 (26.0% of done)"]. *)
val to_line : t -> tick -> string

(** Render a tick as a JSONL journal record:
    [{"type":"heartbeat","done":..,"total":..,"detected":..,"elapsed_s":..,
    "faults_per_sec":..,"eta_s":..}]. *)
val to_json : t -> tick -> string
