type kind = Span | Counter | Instant

(* One preallocated slot of a ring. Recording mutates fields in place; the
   only per-event allocation would be the name, and names are string
   literals at every call site. *)
type event = {
  mutable e_kind : kind;
  mutable e_name : string;
  mutable e_ts : int;  (* µs since enable *)
  mutable e_dur : int;  (* µs, spans only *)
  mutable e_value : float;  (* counters only *)
}

type ring = {
  r_tid : int;
  mutable r_events : event array;
  mutable r_next : int;  (* monotone; live slots are the last [cap] *)
}

let on_flag = Atomic.make false
let on () = Atomic.get on_flag

let default_capacity = 65536
let cap_cfg = Atomic.make default_capacity
let epoch = Atomic.make 0.0

(* Registry of every domain's ring, for the exporter. The mutex guards only
   registration and enable/reset — never the recording fast path. *)
let rings : ring list ref = ref []
let rings_mu = Mutex.create ()
let next_tid = Atomic.make 0

let fresh_events cap =
  Array.init cap (fun _ ->
      { e_kind = Instant; e_name = ""; e_ts = 0; e_dur = 0; e_value = 0.0 })

let ring_key =
  Domain.DLS.new_key (fun () ->
      let r =
        {
          r_tid = Atomic.fetch_and_add next_tid 1;
          r_events = fresh_events (Atomic.get cap_cfg);
          r_next = 0;
        }
      in
      Mutex.lock rings_mu;
      rings := r :: !rings;
      Mutex.unlock rings_mu;
      r)

(* Resize and clear every registered ring. Callers hold [rings_mu]. Safe
   only during quiescence (no domain recording) — enable/reset are called
   before the instrumented run starts. *)
let resize_all cap =
  List.iter
    (fun r ->
      if Array.length r.r_events <> cap then r.r_events <- fresh_events cap;
      r.r_next <- 0)
    !rings

let enable ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Trace.enable: capacity must be >= 1";
  Mutex.lock rings_mu;
  Atomic.set cap_cfg capacity;
  resize_all capacity;
  Atomic.set epoch (Unix.gettimeofday ());
  Mutex.unlock rings_mu;
  Atomic.set on_flag true

let disable () = Atomic.set on_flag false

let reset () =
  Mutex.lock rings_mu;
  resize_all (Atomic.get cap_cfg);
  Atomic.set epoch (Unix.gettimeofday ());
  Mutex.unlock rings_mu

let now_us () =
  int_of_float ((Unix.gettimeofday () -. Atomic.get epoch) *. 1e6)

let push kind name ts dur value =
  let r = Domain.DLS.get ring_key in
  let cap = Array.length r.r_events in
  let e = r.r_events.(r.r_next mod cap) in
  e.e_kind <- kind;
  e.e_name <- name;
  e.e_ts <- ts;
  e.e_dur <- dur;
  e.e_value <- value;
  r.r_next <- r.r_next + 1

let span_begin _name = if Atomic.get on_flag then now_us () else 0

let span_end name t0 =
  if Atomic.get on_flag then begin
    let t1 = now_us () in
    push Span name t0 (t1 - t0) 0.0
  end

let with_span name f =
  if Atomic.get on_flag then begin
    let t0 = now_us () in
    match f () with
    | v ->
        push Span name t0 (now_us () - t0) 0.0;
        v
    | exception e ->
        push Span name t0 (now_us () - t0) 0.0;
        raise e
  end
  else f ()

let counter name v = if Atomic.get on_flag then push Counter name (now_us ()) 0 v

let instant name = if Atomic.get on_flag then push Instant name (now_us ()) 0 0.0

(* ---- export ---- *)

let live_events r =
  let cap = Array.length r.r_events in
  let n = min r.r_next cap in
  let start = r.r_next - n in
  List.init n (fun i ->
      let e = r.r_events.((start + i) mod cap) in
      (r.r_tid, e.e_kind, e.e_name, e.e_ts, e.e_dur, e.e_value))

let snapshot () =
  Mutex.lock rings_mu;
  let rs = !rings in
  Mutex.unlock rings_mu;
  let evs = List.concat_map live_events rs in
  List.stable_sort
    (fun (tid_a, _, _, ts_a, _, _) (tid_b, _, _, ts_b, _, _) ->
      match compare ts_a ts_b with 0 -> compare tid_a tid_b | c -> c)
    evs

let event_count () =
  Mutex.lock rings_mu;
  let rs = !rings in
  Mutex.unlock rings_mu;
  List.fold_left
    (fun acc r -> acc + min r.r_next (Array.length r.r_events))
    0 rs

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_chrome_string () =
  let pid = Unix.getpid () in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun i (tid, kind, name, ts, dur, value) ->
      if i > 0 then Buffer.add_char buf ',';
      (match kind with
      | Span ->
          Printf.bprintf buf
            "{\"name\":\"%s\",\"cat\":\"eraser\",\"ph\":\"X\",\"ts\":%d,\"dur\":%d,\"pid\":%d,\"tid\":%d}"
            (escape name) ts dur pid tid
      | Counter ->
          Printf.bprintf buf
            "{\"name\":\"%s\",\"cat\":\"eraser\",\"ph\":\"C\",\"ts\":%d,\"pid\":%d,\"tid\":%d,\"args\":{\"value\":%s}}"
            (escape name) ts pid tid
            (if not (Float.is_finite value) then "null"
             else if Float.is_integer value && Float.abs value < 1e15 then
               Printf.sprintf "%.1f" value
             else Printf.sprintf "%.17g" value)
      | Instant ->
          Printf.bprintf buf
            "{\"name\":\"%s\",\"cat\":\"eraser\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%d,\"pid\":%d,\"tid\":%d}"
            (escape name) ts pid tid))
    (snapshot ());
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents buf

let export_chrome oc =
  output_string oc (to_chrome_string ());
  output_char oc '\n'
