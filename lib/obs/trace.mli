(** Low-overhead span/counter tracer with a Chrome [trace_event] exporter.

    Every domain owns one fixed-capacity ring buffer of preallocated event
    records; recording an event mutates the next slot in place (no
    allocation, no locking — the ring is domain-local) and wraps around
    once the ring is full, so a trace always holds the {e last} [capacity]
    events per domain. {!export_chrome} merges all rings into one Chrome
    [trace_event] JSON document that loads in [chrome://tracing] and
    Perfetto, with one track (tid) per domain.

    The disabled path is a single atomic-flag load per call and performs no
    allocation whatsoever (enforced by a [Gc.minor_words] smoke test):
    instrumentation can stay compiled into the hot paths of the engine at
    <3% cost. Hot loops should additionally hoist [on ()] into a local
    [bool] and skip the calls entirely.

    Timestamps are microseconds since {!enable}, as Chrome expects. Spans
    are recorded as complete ["ph":"X"] events at {!span_end}, so an
    unfinished span simply does not appear. *)

(** [true] between {!enable} and {!disable}. *)
val on : unit -> bool

(** Start tracing. [capacity] (default 65536) is the per-domain ring size
    in events; the rings of already-registered domains are resized and
    cleared. Must not race with concurrent recording — call it before the
    instrumented run starts (the CLI enables before simulating). *)
val enable : ?capacity:int -> unit -> unit

val disable : unit -> unit

(** Drop every recorded event (rings stay allocated). *)
val reset : unit -> unit

(** [span_begin name] returns the span's start timestamp (µs), or [0] when
    disabled. The name passed here is not recorded — pass the same name to
    {!span_end}, which emits the complete event. *)
val span_begin : string -> int

val span_end : string -> int -> unit

(** [with_span name f] runs [f ()] inside a span; the span is recorded even
    if [f] raises. Convenience wrapper for cold paths ([span_begin]/[span_end]
    avoid the closure on hot ones). *)
val with_span : string -> (unit -> 'a) -> 'a

(** [counter name v] records a Chrome counter sample (["ph":"C"]). *)
val counter : string -> float -> unit

(** [instant name] records an instant event (["ph":"i"]). *)
val instant : string -> unit

(** Events currently held across all rings (≤ domains × capacity). *)
val event_count : unit -> int

(** The merged Chrome [trace_event] JSON document, events sorted by
    timestamp. Valid JSON even when no event was recorded. *)
val to_chrome_string : unit -> string

val export_chrome : out_channel -> unit
