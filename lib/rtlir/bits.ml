(* Checked, boxed compatibility layer over the unboxed Bitops payload
   kernel. All value semantics (masking, division conventions, shift
   saturation) live in Bitops; this module adds dynamic width checks and
   the record representation for call sites that carry widths per value. *)

type t = { width : int; v : int64 }

exception Width_error of string

let width_error fmt = Format.kasprintf (fun s -> raise (Width_error s)) fmt

let make w v =
  if w < 1 || w > 64 then width_error "Bits.make: width %d out of [1,64]" w;
  { width = w; v = Bitops.keep w v }

let of_int w n = make w (Int64.of_int n)
let zero w = make w 0L
let one w = make w 1L
let ones w = make w (-1L)
let of_bool b = { width = 1; v = Bitops.of_bool b }
let to_int64 b = b.v

let to_int b =
  if Int64.compare b.v (Int64.of_int max_int) > 0 || Int64.compare b.v 0L < 0
  then width_error "Bits.to_int: %Ld does not fit" b.v
  else Int64.to_int b.v

let to_signed b = Bitops.to_signed b.width b.v
let width b = b.width
let equal a b = a.width = b.width && Int64.equal a.v b.v

let compare a b =
  match Stdlib.compare a.width b.width with
  | 0 -> Int64.unsigned_compare a.v b.v
  | c -> c

let is_true b = Bitops.is_true b.v

let check_bit b i =
  if i < 0 || i >= b.width then
    width_error "Bits: bit %d out of range for width %d" i b.width

let bit b i =
  check_bit b i;
  Bitops.bit b.v i

let force_bit b i value =
  check_bit b i;
  { b with v = Bitops.force_bit b.v i value }

let same_width op a b =
  if a.width <> b.width then
    width_error "Bits.%s: width mismatch %d vs %d" op a.width b.width

let add a b = same_width "add" a b; { a with v = Bitops.add a.width a.v b.v }
let sub a b = same_width "sub" a b; { a with v = Bitops.sub a.width a.v b.v }
let mul a b = same_width "mul" a b; { a with v = Bitops.mul a.width a.v b.v }

let divu a b =
  same_width "divu" a b;
  { a with v = Bitops.divu a.width a.v b.v }

let modu a b =
  same_width "modu" a b;
  { a with v = Bitops.modu a.v b.v }

let neg a = { a with v = Bitops.neg a.width a.v }
let lognot a = { a with v = Bitops.lognot a.width a.v }
let logand a b = same_width "logand" a b; { a with v = Bitops.logand a.v b.v }
let logor a b = same_width "logor" a b; { a with v = Bitops.logor a.v b.v }
let logxor a b = same_width "logxor" a b; { a with v = Bitops.logxor a.v b.v }
let shift_left a b = { a with v = Bitops.shift_left a.width a.v b.v }
let shift_right a b = { a with v = Bitops.shift_right a.width a.v b.v }

let shift_right_arith a b =
  { a with v = Bitops.shift_right_arith a.width a.v b.v }

let bool1 v = { width = 1; v }
let eq a b = same_width "eq" a b; bool1 (Bitops.eq a.v b.v)
let neq a b = same_width "neq" a b; bool1 (Bitops.neq a.v b.v)
let ltu a b = same_width "ltu" a b; bool1 (Bitops.ltu a.v b.v)
let leu a b = same_width "leu" a b; bool1 (Bitops.leu a.v b.v)
let gtu a b = ltu b a
let geu a b = leu b a
let lts a b = same_width "lts" a b; bool1 (Bitops.lts a.width a.v b.v)
let les a b = same_width "les" a b; bool1 (Bitops.les a.width a.v b.v)
let gts a b = lts b a
let ges a b = les b a
let reduce_and a = bool1 (Bitops.reduce_and a.width a.v)
let reduce_or a = bool1 (Bitops.reduce_or a.v)
let reduce_xor a = bool1 (Bitops.reduce_xor a.v)

let concat hi lo =
  let w = hi.width + lo.width in
  if w > 64 then width_error "Bits.concat: result width %d > 64" w;
  { width = w; v = Bitops.concat ~lo_width:lo.width hi.v lo.v }

let slice b ~hi ~lo =
  if lo < 0 || hi < lo || hi >= b.width then
    width_error "Bits.slice: [%d:%d] out of range for width %d" hi lo b.width;
  { width = hi - lo + 1; v = Bitops.slice ~hi ~lo b.v }

let zext b w =
  if w < b.width then
    width_error "Bits.zext: target %d < width %d" w b.width;
  make w b.v

let sext b w =
  if w < b.width then
    width_error "Bits.sext: target %d < width %d" w b.width;
  make w (to_signed b)

let resize b w = if w <= b.width then make w b.v else zext b w
let pp ppf b = Format.fprintf ppf "%d'h%Lx" b.width b.v
let to_string b = Format.asprintf "%a" pp b
