(** Width-parametric primitives on unboxed [int64] bit-vector payloads.

    This is the representation kernel behind {!Bits}: a value is a bare
    [int64] whose bits at positions >= the (externally carried) width are
    zero — the "masked payload" invariant. Operations take the width as a
    plain [int] argument where the result depends on it, and both consume
    and produce masked payloads. Nothing here checks widths or bit ranges;
    {!Bits} layers the checked record API on top for call sites that need
    dynamic width safety.

    Because everything is [int64 -> int64] on immediates, ocamlopt keeps
    intermediates unboxed inside a compilation unit's hot loops — the
    foundation of the zero-allocation simulator paths. Callers that need
    allocation-free behaviour must keep the [int64] flow inside a single
    function body (int64 crossing a non-inlined closure boundary boxes). *)

(** [mask w] has the low [w] bits set. [w] must be in [1,64]. *)
val mask : int -> int64

(** [keep w v] masks a raw value to the payload invariant. *)
val keep : int -> int64 -> int64

(** Sign-extended value of a [w]-bit payload. *)
val to_signed : int -> int64 -> int64

val of_bool : bool -> int64
val is_true : int64 -> bool

(** [bit v i] is bit [i]; [i] must be within the payload width. *)
val bit : int64 -> int -> bool

(** [force_bit v i b] forces bit [i] to [b]; [i] must be within width. *)
val force_bit : int64 -> int -> bool -> int64

(* Modular arithmetic in the vector width. *)

val add : int -> int64 -> int64 -> int64
val sub : int -> int64 -> int64 -> int64
val mul : int -> int64 -> int64 -> int64

(** Unsigned division; division by zero yields all-ones (the 2-state
    projection of Verilog's X result). *)
val divu : int -> int64 -> int64 -> int64

(** Unsigned remainder; remainder by zero yields the dividend. *)
val modu : int64 -> int64 -> int64

val neg : int -> int64 -> int64

(* Bitwise: masked payloads are closed under these, so no width needed
   except for complement. *)

val lognot : int -> int64 -> int64
val logand : int64 -> int64 -> int64
val logor : int64 -> int64 -> int64
val logxor : int64 -> int64 -> int64

(* Shifts: the amount is itself a payload of arbitrary width; amounts
   >= [w] give zero (or all sign bits for [shift_right_arith]). *)

val shift_left : int -> int64 -> int64 -> int64
val shift_right : int -> int64 -> int64 -> int64
val shift_right_arith : int -> int64 -> int64 -> int64

(* Comparisons return 1-bit payloads (0L / 1L). Unsigned ones compare
   payloads directly; signed ones need the operand width. *)

val eq : int64 -> int64 -> int64
val neq : int64 -> int64 -> int64
val ltu : int64 -> int64 -> int64
val leu : int64 -> int64 -> int64
val gtu : int64 -> int64 -> int64
val geu : int64 -> int64 -> int64
val lts : int -> int64 -> int64 -> int64
val les : int -> int64 -> int64 -> int64
val gts : int -> int64 -> int64 -> int64
val ges : int -> int64 -> int64 -> int64

(* Reductions return 1-bit payloads. *)

val reduce_and : int -> int64 -> int64
val reduce_or : int64 -> int64
val reduce_xor : int64 -> int64

(** [concat ~lo_width hi lo]: [hi] lands in the upper bits. The combined
    width must be <= 64 (caller-checked). *)
val concat : lo_width:int -> int64 -> int64 -> int64

(** [slice ~hi ~lo v] extracts bits [hi..lo] inclusive (caller-checked). *)
val slice : hi:int -> lo:int -> int64 -> int64

(** [sext ~from w v] sign-extends a [from]-bit payload to [w] bits. *)
val sext : from:int -> int -> int64 -> int64

(** [resize w v] truncates (or keeps, zext being a no-op on payloads) to
    exactly [w] bits. *)
val resize : int -> int64 -> int64
