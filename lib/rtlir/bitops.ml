(* Unboxed int64 payload primitives. Invariant: inputs and outputs are
   masked to their width (bits >= width are zero). Widths are trusted —
   the checked layer lives in Bits. *)

let mask w =
  if w = 64 then -1L else Int64.sub (Int64.shift_left 1L w) 1L
[@@inline]

let keep w v = Int64.logand v (mask w) [@@inline]

let to_signed w v =
  if w = 64 then v
  else if Int64.logand v (Int64.shift_left 1L (w - 1)) <> 0L then
    Int64.logor v (Int64.lognot (mask w))
  else v
[@@inline]

let of_bool b = if b then 1L else 0L [@@inline]
let is_true v = v <> 0L [@@inline]

let bit v i = Int64.logand (Int64.shift_right_logical v i) 1L = 1L [@@inline]

let force_bit v i b =
  let m = Int64.shift_left 1L i in
  if b then Int64.logor v m else Int64.logand v (Int64.lognot m)
[@@inline]

let add w a b = keep w (Int64.add a b) [@@inline]
let sub w a b = keep w (Int64.sub a b) [@@inline]
let mul w a b = keep w (Int64.mul a b) [@@inline]

let divu w a b =
  if b = 0L then mask w else Int64.unsigned_div a b
[@@inline]

let modu a b = if b = 0L then a else Int64.unsigned_rem a b [@@inline]
let neg w a = keep w (Int64.neg a) [@@inline]
let lognot w a = keep w (Int64.lognot a) [@@inline]
let logand a b = Int64.logand a b [@@inline]
let logor a b = Int64.logor a b [@@inline]
let logxor a b = Int64.logxor a b [@@inline]

(* Shift amounts are small in practice; anything >= 64 saturates. *)
let shift_amount v =
  if Int64.unsigned_compare v 64L >= 0 then 64 else Int64.to_int v
[@@inline]

let shift_left w a b =
  let n = shift_amount b in
  if n >= w then 0L else keep w (Int64.shift_left a n)
[@@inline]

let shift_right w a b =
  let n = shift_amount b in
  if n >= w then 0L else Int64.shift_right_logical a n
[@@inline]

let shift_right_arith w a b =
  let n = shift_amount b in
  let signed = to_signed w a in
  if n >= 64 then keep w (Int64.shift_right signed 63)
  else keep w (Int64.shift_right signed n)
[@@inline]

let eq a b = if Int64.equal a b then 1L else 0L [@@inline]
let neq a b = if Int64.equal a b then 0L else 1L [@@inline]
let ltu a b = if Int64.unsigned_compare a b < 0 then 1L else 0L [@@inline]
let leu a b = if Int64.unsigned_compare a b <= 0 then 1L else 0L [@@inline]
let gtu a b = ltu b a [@@inline]
let geu a b = leu b a [@@inline]

let lts w a b =
  if Int64.compare (to_signed w a) (to_signed w b) < 0 then 1L else 0L
[@@inline]

let les w a b =
  if Int64.compare (to_signed w a) (to_signed w b) <= 0 then 1L else 0L
[@@inline]

let gts w a b = lts w b a [@@inline]
let ges w a b = les w b a [@@inline]
let reduce_and w a = if Int64.equal a (mask w) then 1L else 0L [@@inline]
let reduce_or a = if a <> 0L then 1L else 0L [@@inline]

let reduce_xor a =
  let rec popcount acc v =
    if v = 0L then acc
    else popcount (acc + 1) (Int64.logand v (Int64.sub v 1L))
  in
  if popcount 0 a land 1 = 1 then 1L else 0L

let concat ~lo_width hi lo =
  Int64.logor (Int64.shift_left hi lo_width) lo
[@@inline]

let slice ~hi ~lo v =
  keep (hi - lo + 1) (Int64.shift_right_logical v lo)
[@@inline]

let sext ~from w v = keep w (to_signed from v) [@@inline]
let resize w v = keep w v [@@inline]
