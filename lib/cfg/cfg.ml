open Rtlir

type decision = {
  selector : Expr.t;
  labels : Bits.t array option;
  targets : int array;
  sel_reads : int array;
  sel_read_mems : int array;
  sel_mem_sites : (int * Expr.t) array;
}

type segment = {
  stmts : Stmt.t list;
  reads : int array;
  read_mems : int array;
  mem_sites : (int * Expr.t) array;
  blocking : int array;
  succ : int;
}

type node = Decision of decision | Segment of segment | Exit

type t = {
  nodes : node array;
  entry : int;
  exit_id : int;
  n_decisions : int;
  n_segments : int;
}

let is_simple = function
  | Stmt.Assign _ | Stmt.Nonblock _ | Stmt.Mem_write _ | Stmt.Skip -> true
  | Stmt.Block _ | Stmt.If _ | Stmt.Case _ -> false

(* Flatten nested blocks and drop Skips so that segment grouping sees one
   statement list per nesting level. *)
let rec flatten stmt acc =
  match stmt with
  | Stmt.Block l -> List.fold_right flatten l acc
  | Stmt.Skip -> acc
  | s -> s :: acc

let build body =
  let rev_nodes = ref [] in
  let count = ref 0 in
  let add node =
    let id = !count in
    incr count;
    rev_nodes := node :: !rev_nodes;
    id
  in
  let exit_id = add Exit in
  let mk_segment stmts succ =
    if stmts = [] then succ
    else
      let block = Stmt.Block stmts in
      add
        (Segment
           {
             stmts;
             reads = Array.of_list (Stmt.read_signals block);
             read_mems = Array.of_list (Stmt.read_mems block);
             mem_sites = Array.of_list (Stmt.mem_read_sites block);
             blocking = Array.of_list (Stmt.blocking_writes block);
             succ;
           })
  in
  let mk_decision selector labels targets =
    add
      (Decision
         {
           selector;
           labels;
           targets;
           sel_reads = Array.of_list (Expr.read_signals selector);
           sel_read_mems = Array.of_list (Expr.read_mems selector);
           sel_mem_sites = Array.of_list (Expr.mem_read_sites selector);
         })
  in
  let rec go_list stmts succ =
    match stmts with
    | [] -> succ
    | _ ->
        let rec span_simple acc = function
          | s :: rest when is_simple s -> span_simple (s :: acc) rest
          | rest -> (List.rev acc, rest)
        in
        let simples, rest = span_simple [] stmts in
        let tail_entry =
          match rest with
          | [] -> succ
          | ctrl :: rest' -> go_ctrl ctrl (go_list rest' succ)
        in
        mk_segment simples tail_entry
  and go_ctrl ctrl succ =
    match ctrl with
    | Stmt.If (c, t, e) ->
        let t_entry = go_list (flatten t []) succ in
        let e_entry = go_list (flatten e []) succ in
        mk_decision c None [| t_entry; e_entry |]
    | Stmt.Case (scrut, arms, dflt) ->
        let arm_entries =
          List.map (fun (_, arm) -> go_list (flatten arm []) succ) arms
        in
        let dflt_entry = go_list (flatten dflt []) succ in
        let labels = Array.of_list (List.map fst arms) in
        mk_decision scrut (Some labels)
          (Array.of_list (arm_entries @ [ dflt_entry ]))
    | Stmt.Block _ | Stmt.Assign _ | Stmt.Nonblock _ | Stmt.Mem_write _
    | Stmt.Skip ->
        assert false
  in
  let entry = go_list (flatten body []) exit_id in
  let nodes = Array.of_list (List.rev !rev_nodes) in
  let n_decisions =
    Array.fold_left
      (fun acc n -> match n with Decision _ -> acc + 1 | _ -> acc)
      0 nodes
  in
  let n_segments =
    Array.fold_left
      (fun acc n -> match n with Segment _ -> acc + 1 | _ -> acc)
      0 nodes
  in
  { nodes; entry; exit_id; n_decisions; n_segments }

let choose d v =
  match d.labels with
  | None -> if Bits.is_true v then 0 else 1
  | Some labels ->
      let n = Array.length labels in
      let rec scan i =
        if i >= n then n (* default target *)
        else if Bits.equal labels.(i) v then i
        else scan (i + 1)
      in
      scan 0

(* Payload variant: labels share the scrutinee's width (design validation),
   so payload equality is full equality. *)
let choose_i d v =
  match d.labels with
  | None -> if v <> 0L then 0 else 1
  | Some labels ->
      let n = Array.length labels in
      let rec scan i =
        if i >= n then n
        else if Int64.equal (Bits.to_int64 labels.(i)) v then i
        else scan (i + 1)
      in
      scan 0

let statement_count t =
  Array.fold_left
    (fun acc n ->
      match n with Segment s -> acc + List.length s.stmts | _ -> acc)
    0 t.nodes
