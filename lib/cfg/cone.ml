open Rtlir

type t = {
  nsig : int;
  stages : int array;
  mem_stages : int array;
  state_sig : bool array;
  comb_sig : bool array;
  self_read : bool array;
  out_comb : bool array;
  clock_comb : bool array;
  nff : int;
  ff_slot : int array;
  ff_words : int;
  ff_reach : int array;
}

let bits_per_word = 63

let build (g : Elaborate.t) =
  let d = g.Elaborate.design in
  let nsig = Design.num_signals d in
  let nmem = Array.length d.Design.mems in
  let ncomb = Array.length g.comb_nodes in
  let nff = Array.length g.ff_procs in
  let nproc = Array.length d.Design.procs in
  (* ---- direct per-signal classification ---- *)
  let state_sig = Array.make nsig false in
  Array.iter
    (fun pid ->
      Array.iter (fun s -> state_sig.(s) <- true) g.proc_nb_writes.(pid))
    g.ff_procs;
  let comb_sig = Array.make nsig false in
  Array.iter
    (fun ws -> Array.iter (fun s -> comb_sig.(s) <- true) ws)
    g.comb_writes;
  (* A comb process may read a wire it also writes (defaults-first
     discipline, see {!Elaborate.build}): forcing such a signal at an
     intermediate blocking write can steer the rest of the body even when
     the final written value carries the stuck bit, so these sites are
     excluded from the sampled activation rule. *)
  let self_read = Array.make nsig false in
  Array.iteri
    (fun pos _ ->
      Array.iter
        (fun w ->
          if Array.exists (fun r -> r = w) g.comb_reads.(pos) then
            self_read.(w) <- true)
        g.comb_writes.(pos))
    g.comb_nodes;
  (* ---- backward combinational closures ----
     Combinational nodes are in topological order (readers after writers),
     so one reverse sweep propagates a flag from writes to reads until
     fixpoint. Memories never carry these closures: validation forbids
     combinational memory writes, so a comb path cannot pass through one. *)
  let backward seed =
    let flag = Array.make nsig false in
    Array.iter (fun s -> flag.(s) <- true) seed;
    for pos = ncomb - 1 downto 0 do
      if Array.exists (fun w -> flag.(w)) g.comb_writes.(pos) then
        Array.iter (fun r -> flag.(r) <- true) g.comb_reads.(pos)
    done;
    flag
  in
  let out_comb = backward g.outputs in
  let clock_comb = backward g.clocks in
  (* ---- per-ff combinational reachability (bitset rows) ---- *)
  let ff_slot = Array.make nproc (-1) in
  Array.iteri (fun k pid -> ff_slot.(pid) <- k) g.ff_procs;
  let ff_words =
    if nff = 0 then 1 else (nff + bits_per_word - 1) / bits_per_word
  in
  let ff_reach = Array.make (nsig * ff_words) 0 in
  let set_bit s k =
    let i = (s * ff_words) + (k / bits_per_word) in
    ff_reach.(i) <- ff_reach.(i) lor (1 lsl (k mod bits_per_word))
  in
  Array.iteri
    (fun k pid ->
      Array.iter (fun r -> set_bit r k) g.proc_reads.(pid);
      match d.Design.procs.(pid).Design.trigger with
      | Design.Edges es -> List.iter (fun (_, c) -> set_bit c k) es
      | Design.Comb -> ())
    g.ff_procs;
  let scratch = Array.make ff_words 0 in
  for pos = ncomb - 1 downto 0 do
    Array.fill scratch 0 ff_words 0;
    let any = ref false in
    Array.iter
      (fun w ->
        let b = w * ff_words in
        for i = 0 to ff_words - 1 do
          let v = ff_reach.(b + i) in
          if v <> 0 then begin
            any := true;
            scratch.(i) <- scratch.(i) lor v
          end
        done)
      g.comb_writes.(pos);
    if !any then
      Array.iter
        (fun r ->
          let b = r * ff_words in
          for i = 0 to ff_words - 1 do
            ff_reach.(b + i) <- ff_reach.(b + i) lor scratch.(i)
          done)
        g.comb_reads.(pos)
  done;
  (* ---- minimum register stages to the nearest output ----
     0-1 BFS backward from the outputs over a node space of signals,
     memories, combinational positions and edge-triggered processes.
     Combinational edges cost 0; crossing a register (an edge-triggered
     process to its nonblocking / memory-write targets) costs 1. Clock
     signals feed their processes at cost 0 so clock-gating paths count
     the same stage as the data they gate. *)
  let snode s = s in
  let mnode m = nsig + m in
  let pnode pos = nsig + nmem + pos in
  let fnode k = nsig + nmem + ncomb + k in
  let nnode = nsig + nmem + ncomb + nff in
  (* [radj.(x)] lists [(y, w)] for every forward edge [y -> x] of weight
     [w], i.e. the predecessors consulted when relaxing backward from x. *)
  let radj = Array.make nnode [] in
  let add_pred x y w = radj.(x) <- (y, w) :: radj.(x) in
  Array.iteri
    (fun pos _ ->
      Array.iter (fun r -> add_pred (pnode pos) (snode r) 0) g.comb_reads.(pos);
      Array.iter
        (fun m -> add_pred (pnode pos) (mnode m) 0)
        g.comb_read_mems.(pos);
      Array.iter (fun w -> add_pred (snode w) (pnode pos) 0) g.comb_writes.(pos))
    g.comb_nodes;
  Array.iteri
    (fun k pid ->
      Array.iter (fun r -> add_pred (fnode k) (snode r) 0) g.proc_reads.(pid);
      Array.iter
        (fun m -> add_pred (fnode k) (mnode m) 0)
        g.proc_read_mems.(pid);
      (match d.Design.procs.(pid).Design.trigger with
      | Design.Edges es -> List.iter (fun (_, c) -> add_pred (fnode k) (snode c) 0) es
      | Design.Comb -> ());
      Array.iter
        (fun w -> add_pred (snode w) (fnode k) 1)
        g.proc_nb_writes.(pid);
      Array.iter
        (fun m -> add_pred (mnode m) (fnode k) 1)
        g.proc_write_mems.(pid))
    g.ff_procs;
  let dist = Array.make nnode max_int in
  let next = ref [] in
  Array.iter
    (fun o ->
      if dist.(snode o) = max_int then begin
        dist.(snode o) <- 0;
        next := snode o :: !next
      end)
    g.outputs;
  let level = ref 0 in
  while !next <> [] do
    let stack = ref !next in
    next := [];
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | x :: tl ->
          stack := tl;
          (* stale deque entries: the node was reached cheaper via a
             0-weight edge at an earlier level *)
          if dist.(x) = !level then
            List.iter
              (fun (y, w) ->
                let nd = !level + w in
                if nd < dist.(y) then begin
                  dist.(y) <- nd;
                  if w = 0 then stack := y :: !stack else next := y :: !next
                end)
              radj.(x)
    done;
    incr level
  done;
  let stages =
    Array.init nsig (fun s ->
        if dist.(snode s) = max_int then -1 else dist.(snode s))
  in
  let mem_stages =
    Array.init nmem (fun m ->
        if dist.(mnode m) = max_int then -1 else dist.(mnode m))
  in
  {
    nsig;
    stages;
    mem_stages;
    state_sig;
    comb_sig;
    self_read;
    out_comb;
    clock_comb;
    nff;
    ff_slot;
    ff_words;
    ff_reach;
  }

let observable t s = t.stages.(s) >= 0

let reaches_ff t ~signal ~pid =
  let k = t.ff_slot.(pid) in
  k >= 0
  && t.ff_reach.((signal * t.ff_words) + (k / bits_per_word))
     land (1 lsl (k mod bits_per_word))
     <> 0
