(** Visibility dependency graph and the runtime redundancy walk — the
    paper's Algorithm 1 (Section IV-A).

    The VDG mirrors the CFG: {e path decision nodes} carry the selector
    expression ("Evaluate" function), {e path dependency nodes} carry the
    signals and memories a segment reads. Dependency nodes with nothing to
    check are compressed away ("simplify the visibility dependency graph by
    removing empty nodes").

    {b Soundness refinement over the paper's pseudocode.} A signal read by a
    segment or selector may have been written by a {e blocking} assignment
    earlier on the same path; its pre-execution visibility is then
    irrelevant (both executions recompute it from already-checked-equal
    inputs), and the selector cannot be re-evaluated against pre-execution
    state. The walk therefore tracks the blocking-written set along the good
    path: locally-written reads are skipped at dependency nodes, and a
    decision whose selector reads locally-written signals falls back to a
    visibility check of its external reads instead of re-evaluation. Bodies
    of edge-triggered processes contain no blocking writes, so they always
    take the fast evaluation path. *)

open Rtlir

type t = {
  cfg : Cfg.t;
  next : int array;
      (** per node id: successor with empty dependency nodes skipped
          (meaningful for segment nodes only) *)
  interesting : bool array;
      (** per node id: segments that still need a dependency check *)
}

val build : Cfg.t -> t

(** Number of dependency nodes remaining after empty-node removal. *)
val dependency_node_count : t -> int

(** [redundant vdg ~good_choice ~eval_good ~eval_fault ~visible
    ~mem_word_visible] decides whether the faulty execution of the
    behavioral node can be skipped, given the good execution's recorded
    decisions.

    - [good_choice id] is the target index the good execution took at
      decision node [id] (recorded during the good run);
    - [eval_good e] / [eval_fault e] evaluate expression [e] under the good
      / faulty network's values;
    - [visible s] is true when the fault's value of signal [s] differs from
      the good value;
    - [mem_word_visible m addr] is true when the fault's word of memory [m]
      at the (unwrapped) address [addr] differs from the good word —
      memory dependencies are checked {e per word}: the address is
      recomputed from already-checked-equal values, so good and faulty
      networks read the same location.

    Returns [true] (redundant: skip the faulty execution) only if the faulty
    execution provably follows the same path and reads only fault-invisible
    data, hence writes exactly the good values. *)
val redundant :
  t ->
  good_choice:(int -> int) ->
  eval_good:(Expr.t -> Bits.t) ->
  eval_fault:(Expr.t -> Bits.t) ->
  visible:(int -> bool) ->
  mem_word_visible:(int -> Bits.t -> bool) ->
  bool

(** Payload twin of {!redundant}: expression values are masked int64
    payloads (the flat representation), label matching via
    {!Cfg.choose_i}. Traversal and verdicts are identical. *)
val redundant_i :
  t ->
  good_choice:(int -> int) ->
  eval_good:(Expr.t -> int64) ->
  eval_fault:(Expr.t -> int64) ->
  visible:(int -> bool) ->
  mem_word_visible:(int -> int64 -> bool) ->
  bool
