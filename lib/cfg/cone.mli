(** Static cone-of-influence analysis over the elaborated RTL graph.

    Answers, per signal, two structural questions that the dynamic engines
    cannot afford to rediscover per fault:

    - can a value change on this signal ever reach an observation point
      (a design output), through any mix of combinational logic, register
      stages, memories and clock (edge-sensitivity) paths?
    - how many register stages sit between the signal and its nearest
      output (the minimum over all structural paths)?

    The analysis is purely structural: it follows read/write edges of the
    elaborated graph and never looks at values, so it is a sound
    over-approximation — [observable c s = false] proves the signal can
    never influence an output, while [true] only means a path exists.

    It additionally classifies each signal for the refined activation rule
    in {!Sim.Goodtrace}:

    - [state_sig]: target of a nonblocking write (sequential state);
    - [comb_sig]: driven by a continuous assign or combinational process;
    - [out_comb]: combinationally reaches a design output (zero stages);
    - [clock_comb]: combinationally reaches a signal used in an edge
      sensitivity list (so a diff here can create or suppress clock edges);
    - [reaches_ff]: combinationally reaches the read set of a given
      edge-triggered process (so a diff here can be latched when that
      process fires). *)

type t = {
  nsig : int;
  stages : int array;
      (** per signal: minimum register stages to the nearest design output,
          0 for combinational paths; [-1] when no path exists at all *)
  mem_stages : int array;  (** same, per memory (writes count one stage) *)
  state_sig : bool array;  (** per signal: nonblocking-write target *)
  comb_sig : bool array;  (** per signal: combinationally driven *)
  self_read : bool array;
      (** per signal: some combinational process both writes and reads it
          (defaults-first idiom), so forcing an intermediate write can
          steer the rest of that body *)
  out_comb : bool array;  (** per signal: comb path to a design output *)
  clock_comb : bool array;  (** per signal: comb path to a clock signal *)
  nff : int;  (** number of edge-triggered processes *)
  ff_slot : int array;  (** per proc id: dense ff index, or [-1] *)
  ff_words : int;  (** words per [ff_reach] row *)
  ff_reach : int array;
      (** [nsig * ff_words] bitset: signal [s] comb-reaches the read set of
          the ff with slot [k] iff bit [k] of row [s] is set *)
}

val build : Rtlir.Elaborate.t -> t

(** [observable c s] — some structural path from signal [s] reaches a
    design output. [false] proves the fault site statically undetectable. *)
val observable : t -> int -> bool

(** [reaches_ff c ~signal ~pid] — [signal] combinationally reaches the read
    set (body reads, memory-read addresses or trigger clocks) of
    edge-triggered process [pid]. *)
val reaches_ff : t -> signal:int -> pid:int -> bool
