open Rtlir

type t = { cfg : Cfg.t; next : int array; interesting : bool array }

let build (cfg : Cfg.t) =
  let n = Array.length cfg.nodes in
  let interesting = Array.make n true in
  Array.iteri
    (fun i node ->
      match node with
      | Cfg.Segment s ->
          interesting.(i) <-
            not
              (Array.length s.reads = 0
              && Array.length s.read_mems = 0
              && Array.length s.blocking = 0)
      | Cfg.Decision _ | Cfg.Exit -> ())
    cfg.nodes;
  (* Compress chains of boring segments with a memoised fixpoint over the
     acyclic graph. *)
  let next = Array.make n (-1) in
  let rec resolve i =
    match cfg.nodes.(i) with
    | Cfg.Segment s when not interesting.(i) ->
        if next.(i) >= 0 then next.(i)
        else begin
          let r = resolve s.succ in
          next.(i) <- r;
          r
        end
    | Cfg.Segment _ | Cfg.Decision _ | Cfg.Exit -> i
  in
  for i = 0 to n - 1 do
    match cfg.nodes.(i) with
    | Cfg.Segment s -> next.(i) <- resolve s.succ
    | Cfg.Decision _ | Cfg.Exit -> ()
  done;
  { cfg; next; interesting }

let dependency_node_count t =
  let count = ref 0 in
  Array.iteri
    (fun i node ->
      match node with
      | Cfg.Segment _ -> if t.interesting.(i) then incr count
      | Cfg.Decision _ | Cfg.Exit -> ())
    t.cfg.nodes;
  !count

module Iset = Set.Make (Int)

let redundant t ~good_choice ~eval_good ~eval_fault ~visible
    ~mem_word_visible =
  let nodes = t.cfg.nodes in
  (* A memory-read site is fault-invisible when its address — recomputed
     from already-checked-equal values — hits no differing word. An address
     that reads a locally-written signal cannot be re-evaluated against
     pre-execution state, so it is conservatively non-redundant. *)
  let site_clean written (m, addr_e) =
    (Iset.is_empty written
    || not
         (List.exists
            (fun s -> Iset.mem s written)
            (Expr.read_signals addr_e)))
    && not (mem_word_visible m (eval_good addr_e))
  in
  let rec walk cur written =
    match nodes.(cur) with
    | Cfg.Exit -> true
    | Cfg.Decision d ->
        let gc = good_choice cur in
        let reads_local =
          Array.exists (fun s -> Iset.mem s written) d.sel_reads
        in
        let same_path =
          if reads_local then
            (* fall back to visibility of the selector's external data *)
            (not
               (Array.exists
                  (fun s -> (not (Iset.mem s written)) && visible s)
                  d.sel_reads))
            && Array.for_all (site_clean written) d.sel_mem_sites
          else
            (* re-evaluate the selector under the faulty values (memory
               reads included — a changed word that does not flip the
               branch stays redundant) *)
            Cfg.choose d (eval_fault d.selector) = gc
        in
        if not same_path then false else walk d.targets.(gc) written
    | Cfg.Segment s ->
        if not t.interesting.(cur) then walk t.next.(cur) written
        else if
          Array.exists
            (fun r -> (not (Iset.mem r written)) && visible r)
            s.reads
          || not (Array.for_all (site_clean written) s.mem_sites)
        then false
        else
          let written =
            Array.fold_left (fun acc w -> Iset.add w acc) written s.blocking
          in
          walk t.next.(cur) written
  in
  walk t.cfg.entry Iset.empty

(* Payload twin of {!redundant}: identical traversal, expression values as
   masked int64 payloads (see {!Rtlir.Bitops}). *)
let redundant_i t ~good_choice ~eval_good ~eval_fault ~visible
    ~mem_word_visible =
  let nodes = t.cfg.nodes in
  let site_clean written (m, addr_e) =
    (Iset.is_empty written
    || not
         (List.exists
            (fun s -> Iset.mem s written)
            (Expr.read_signals addr_e)))
    && not (mem_word_visible m (eval_good addr_e))
  in
  let rec walk cur written =
    match nodes.(cur) with
    | Cfg.Exit -> true
    | Cfg.Decision d ->
        let gc = good_choice cur in
        let reads_local =
          Array.exists (fun s -> Iset.mem s written) d.sel_reads
        in
        let same_path =
          if reads_local then
            (not
               (Array.exists
                  (fun s -> (not (Iset.mem s written)) && visible s)
                  d.sel_reads))
            && Array.for_all (site_clean written) d.sel_mem_sites
          else Cfg.choose_i d (eval_fault d.selector) = gc
        in
        if not same_path then false else walk d.targets.(gc) written
    | Cfg.Segment s ->
        if not t.interesting.(cur) then walk t.next.(cur) written
        else if
          Array.exists
            (fun r -> (not (Iset.mem r written)) && visible r)
            s.reads
          || not (Array.for_all (site_clean written) s.mem_sites)
        then false
        else
          let written =
            Array.fold_left (fun acc w -> Iset.add w acc) written s.blocking
          in
          walk t.next.(cur) written
  in
  walk t.cfg.entry Iset.empty
