(** Control-flow graphs of behavioral bodies (paper Section IV-A,
    "Preprocess").

    The body of a behavioral node is partitioned into {e segments} — maximal
    straight-line runs of simple statements — linked by {e decision nodes}
    (if/case branch points). The CFG is acyclic because the statement
    language is loop-free. Node ids are dense and stable: engines index
    per-activation decision records by node id. *)

open Rtlir

type decision = {
  selector : Expr.t;
  labels : Bits.t array option;
      (** [None]: an if — truthy selector picks target 0, else target 1.
          [Some labels]: a case — label index picks the target, fall-through
          to the last target (default). *)
  targets : int array;
  sel_reads : int array;  (** signals the selector reads *)
  sel_read_mems : int array;
  sel_mem_sites : (int * Expr.t) array;
      (** memory-read sites of the selector: (memory, address expression) *)
}

type segment = {
  stmts : Stmt.t list;  (** simple statements only, in execution order *)
  reads : int array;  (** signals read by the segment *)
  read_mems : int array;  (** memories read by the segment *)
  mem_sites : (int * Expr.t) array;
      (** memory-read sites: (memory, address expression), inner-first *)
  blocking : int array;  (** blocking-write targets of the segment *)
  succ : int;
}

type node = Decision of decision | Segment of segment | Exit

type t = {
  nodes : node array;
  entry : int;
  exit_id : int;
  n_decisions : int;
  n_segments : int;
}

(** Build the CFG of a behavioral body. *)
val build : Stmt.t -> t

(** [choose d v] is the target index selected by value [v] at decision [d]. *)
val choose : decision -> Bits.t -> int

(** Payload variant of {!choose}: case labels share the scrutinee's width
    (enforced by design validation), so payload equality is full
    equality. *)
val choose_i : decision -> int64 -> int

(** Total simple statements across all segments (sanity measure). *)
val statement_count : t -> int
