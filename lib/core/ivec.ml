type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 64) () = { data = Array.make (max 1 capacity) 0; len = 0 }
let length v = v.len
let is_empty v = v.len = 0
let clear v = v.len <- 0

let push v x =
  if v.len = Array.length v.data then begin
    let d = Array.make (2 * v.len) 0 in
    Array.blit v.data 0 d 0 v.len;
    v.data <- d
  end;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then invalid_arg "Ivec.pop: empty";
  v.len <- v.len - 1;
  v.data.(v.len)

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Ivec.get: index out of bounds";
  v.data.(i)

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let to_array v = Array.sub v.data 0 v.len
