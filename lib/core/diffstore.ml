type i64a = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t
type masks = i64a

(* Slot states in [keys]: -1 empty, -2 tombstone, otherwise the key. *)
let empty_slot = -1
let tombstone = -2

let rec next_pow2 n k = if k >= n then k else next_pow2 n (k * 2)

(* Fibonacci-style multiplicative mix; stays positive via the final mask. *)
let[@inline] hash key = key * 0x2545F4914F6CDD1D

let capacity_for expect =
  (* load factor 1/2 at the expected population, 8 slots minimum *)
  next_pow2 (max 8 (2 * max 1 expect)) 8

(* A cleared table shrinks back to its expected size once its capacity has
   outgrown it by this factor, so a one-off giant batch does not pin its
   high-water footprint for the rest of a campaign. *)
let shrink_factor = 16

type t = {
  mutable keys : int array;
  mutable vals : i64a;
  mutable mask : int;  (* capacity - 1 *)
  mutable count : int;  (* live entries *)
  mutable used : int;  (* live + tombstones *)
  base_cap : int;  (* capacity_for the creation-time expectation *)
  lanes : i64a;  (* per lane group: bit [key land 63] set iff key present *)
}

let make_vals cap =
  let a = Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout cap in
  Bigarray.Array1.fill a 0L;
  a

let create ?(lane_groups = 0) ~expect () =
  let cap = capacity_for expect in
  {
    keys = Array.make cap empty_slot;
    vals = make_vals cap;
    mask = cap - 1;
    count = 0;
    used = 0;
    base_cap = cap;
    lanes = make_vals (max lane_groups 1);
  }

let capacity t = Array.length t.keys
let lane_groups t = Bigarray.Array1.dim t.lanes

let lane_mask t g =
  if g < Bigarray.Array1.dim t.lanes then Bigarray.Array1.unsafe_get t.lanes g
  else 0L

(* The engine's per-round candidate collection ORs every read signal's
   group masks into one accumulator; doing it here keeps the int64 traffic
   unboxed (OCaml boxes every [int64 array] store, a Bigarray round-trip
   does not). *)
let lane_or_into t (dst : masks) =
  let src = t.lanes in
  let n = min (Bigarray.Array1.dim src) (Bigarray.Array1.dim dst) in
  for g = 0 to n - 1 do
    Bigarray.Array1.unsafe_set dst g
      (Int64.logor
         (Bigarray.Array1.unsafe_get dst g)
         (Bigarray.Array1.unsafe_get src g))
  done

let[@inline] lane_add t key =
  let g = key lsr 6 in
  if g < Bigarray.Array1.dim t.lanes then
    Bigarray.Array1.unsafe_set t.lanes g
      (Int64.logor
         (Bigarray.Array1.unsafe_get t.lanes g)
         (Int64.shift_left 1L (key land 63)))

let[@inline] lane_del t key =
  let g = key lsr 6 in
  if g < Bigarray.Array1.dim t.lanes then
    Bigarray.Array1.unsafe_set t.lanes g
      (Int64.logand
         (Bigarray.Array1.unsafe_get t.lanes g)
         (Int64.lognot (Int64.shift_left 1L (key land 63))))

let length t = t.count
let is_empty t = t.count = 0

(* Slot holding [key], or -1 when absent. *)
let find_slot t key =
  let keys = t.keys and mask = t.mask in
  let rec probe i =
    let k = Array.unsafe_get keys i in
    if k = key then i
    else if k = empty_slot then -1
    else probe ((i + 1) land mask)
  in
  probe (hash key land mask)

let mem t key = find_slot t key >= 0

let find t key ~default =
  let i = find_slot t key in
  if i >= 0 then Bigarray.Array1.unsafe_get t.vals i else default

let rehash t cap =
  let okeys = t.keys and ovals = t.vals in
  let keys = Array.make cap empty_slot in
  let vals = make_vals cap in
  let mask = cap - 1 in
  for i = 0 to Array.length okeys - 1 do
    let k = Array.unsafe_get okeys i in
    if k >= 0 then begin
      let rec probe j =
        if Array.unsafe_get keys j = empty_slot then begin
          Array.unsafe_set keys j k;
          Bigarray.Array1.unsafe_set vals j (Bigarray.Array1.unsafe_get ovals i)
        end
        else probe ((j + 1) land mask)
      in
      probe (hash k land mask)
    end
  done;
  t.keys <- keys;
  t.vals <- vals;
  t.mask <- mask;
  t.used <- t.count

let set t key v =
  if key < 0 then invalid_arg "Diffstore.set: negative key";
  let keys = t.keys and mask = t.mask in
  (* First pass: replace in place, or remember the first reusable slot. *)
  let rec probe i reuse =
    let k = Array.unsafe_get keys i in
    if k = key then Bigarray.Array1.unsafe_set t.vals i v
    else if k = empty_slot then begin
      let target = if reuse >= 0 then reuse else i in
      Array.unsafe_set keys target key;
      Bigarray.Array1.unsafe_set t.vals target v;
      t.count <- t.count + 1;
      lane_add t key;
      if target = i then begin
        t.used <- t.used + 1;
        if 2 * t.used > mask then rehash t (2 * (mask + 1))
      end
    end
    else if k = tombstone then
      probe ((i + 1) land mask) (if reuse >= 0 then reuse else i)
    else probe ((i + 1) land mask) reuse
  in
  probe (hash key land mask) (-1)

let remove t key =
  let i = find_slot t key in
  if i >= 0 then begin
    t.keys.(i) <- tombstone;
    t.count <- t.count - 1;
    lane_del t key
  end

let clear t =
  if Array.length t.keys > shrink_factor * t.base_cap then begin
    t.keys <- Array.make t.base_cap empty_slot;
    t.vals <- make_vals t.base_cap;
    t.mask <- t.base_cap - 1
  end
  else Array.fill t.keys 0 (Array.length t.keys) empty_slot;
  t.count <- 0;
  t.used <- 0;
  Bigarray.Array1.fill t.lanes 0L

let iter t f =
  let keys = t.keys in
  for i = 0 to Array.length keys - 1 do
    let k = Array.unsafe_get keys i in
    if k >= 0 then f k (Bigarray.Array1.unsafe_get t.vals i)
  done

let iter_keys t f =
  let keys = t.keys in
  for i = 0 to Array.length keys - 1 do
    let k = Array.unsafe_get keys i in
    if k >= 0 then f k
  done

module Counts = struct
  type t = {
    mutable keys : int array;
    mutable cnts : int array;
    mutable mask : int;
    mutable count : int;
    mutable used : int;
    base_cap : int;
    lanes : i64a;
  }

  let create ?(lane_groups = 0) ~expect () =
    let cap = capacity_for expect in
    {
      keys = Array.make cap empty_slot;
      cnts = Array.make cap 0;
      mask = cap - 1;
      count = 0;
      used = 0;
      base_cap = cap;
      lanes = make_vals (max lane_groups 1);
    }

  let lane_mask t g =
    if g < Bigarray.Array1.dim t.lanes then
      Bigarray.Array1.unsafe_get t.lanes g
    else 0L

  let lane_or_into t (dst : masks) =
    let src = t.lanes in
    let n = min (Bigarray.Array1.dim src) (Bigarray.Array1.dim dst) in
    for g = 0 to n - 1 do
      Bigarray.Array1.unsafe_set dst g
        (Int64.logor
           (Bigarray.Array1.unsafe_get dst g)
           (Bigarray.Array1.unsafe_get src g))
    done

  let[@inline] lane_add t key =
    let g = key lsr 6 in
    if g < Bigarray.Array1.dim t.lanes then
      Bigarray.Array1.unsafe_set t.lanes g
        (Int64.logor
           (Bigarray.Array1.unsafe_get t.lanes g)
           (Int64.shift_left 1L (key land 63)))

  let[@inline] lane_del t key =
    let g = key lsr 6 in
    if g < Bigarray.Array1.dim t.lanes then
      Bigarray.Array1.unsafe_set t.lanes g
        (Int64.logand
           (Bigarray.Array1.unsafe_get t.lanes g)
           (Int64.lognot (Int64.shift_left 1L (key land 63))))

  let length t = t.count

  let find_slot t key =
    let keys = t.keys and mask = t.mask in
    let rec probe i =
      let k = Array.unsafe_get keys i in
      if k = key then i
      else if k = empty_slot then -1
      else probe ((i + 1) land mask)
    in
    probe (hash key land mask)

  let mem t key = find_slot t key >= 0

  let rehash t cap =
    let okeys = t.keys and ocnts = t.cnts in
    let keys = Array.make cap empty_slot in
    let cnts = Array.make cap 0 in
    let mask = cap - 1 in
    for i = 0 to Array.length okeys - 1 do
      let k = Array.unsafe_get okeys i in
      if k >= 0 then begin
        let rec probe j =
          if Array.unsafe_get keys j = empty_slot then begin
            Array.unsafe_set keys j k;
            Array.unsafe_set cnts j (Array.unsafe_get ocnts i)
          end
          else probe ((j + 1) land mask)
        in
        probe (hash k land mask)
      end
    done;
    t.keys <- keys;
    t.cnts <- cnts;
    t.mask <- mask;
    t.used <- t.count

  let bump t key delta =
    if key < 0 then invalid_arg "Diffstore.Counts.bump: negative key";
    let keys = t.keys and mask = t.mask in
    let rec probe i reuse =
      let k = Array.unsafe_get keys i in
      if k = key then begin
        let c = t.cnts.(i) + delta in
        if c <= 0 then begin
          keys.(i) <- tombstone;
          t.count <- t.count - 1;
          lane_del t key
        end
        else t.cnts.(i) <- c
      end
      else if k = empty_slot then begin
        if delta > 0 then begin
          let target = if reuse >= 0 then reuse else i in
          Array.unsafe_set keys target key;
          Array.unsafe_set t.cnts target delta;
          t.count <- t.count + 1;
          lane_add t key;
          if target = i then begin
            t.used <- t.used + 1;
            if 2 * t.used > mask then rehash t (2 * (mask + 1))
          end
        end
      end
      else if k = tombstone then
        probe ((i + 1) land mask) (if reuse >= 0 then reuse else i)
      else probe ((i + 1) land mask) reuse
    in
    probe (hash key land mask) (-1)

  let iter_keys t f =
    let keys = t.keys in
    for i = 0 to Array.length keys - 1 do
      let k = Array.unsafe_get keys i in
      if k >= 0 then f k
    done

  let clear t =
    if Array.length t.keys > shrink_factor * t.base_cap then begin
      t.keys <- Array.make t.base_cap empty_slot;
      t.cnts <- Array.make t.base_cap 0;
      t.mask <- t.base_cap - 1
    end
    else Array.fill t.keys 0 (Array.length t.keys) empty_slot;
    t.count <- 0;
    t.used <- 0;
    Bigarray.Array1.fill t.lanes 0L
end
