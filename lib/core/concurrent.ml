open Rtlir
open Flow
open Sim
open Faultsim

type mode = No_redundancy | Explicit_only | Full

let mode_name = function
  | No_redundancy -> "eraser--"
  | Explicit_only -> "eraser-"
  | Full -> "eraser"

type config = {
  mode : mode;
  defer_edge_eval : bool;
  instrument : bool;
  exact_mem_check : bool;
  corrupt_verdict : int option;
  lanes : bool;
}

let default_config =
  {
    mode = Full;
    defer_edge_eval = true;
    instrument = false;
    exact_mem_check = true;
    corrupt_verdict = None;
    lanes = false;
  }

(* Chaos seam, installed by the harness (Harness.Chaos): consulted once per
   observation point. Returning [Some f] flips the low bit of fault [f]'s
   view of the first output port — a deterministic stand-in for a corrupted
   diff-store entry, visible to the detection scan of the same cycle. The
   engine library cannot depend on the harness, so the hook lives here as a
   process-global; the disabled path costs a single [Atomic.get]. *)
let chaos_corrupt_diff :
    (cycle:int -> nfaults:int -> int option) option Atomic.t =
  Atomic.make None

(* An instance is the immutable compiled form of one elaborated design:
   every behavioral body and every continuous-assign expression, compiled
   once (in the payload-compiled form: widths resolved at compile time,
   values flow as masked int64 payloads). All per-campaign mutable state
   lives inside {!run_i}, so a single instance can be reused across any
   number of sequential runs — the parallel harness gives each worker
   domain its own instance and reuses it for every batch that worker
   executes. Instances must not be shared across domains concurrently
   (compiled closures are reentrant, but the engine state that feeds them
   is not). *)
type instance = {
  inst_graph : Elaborate.t;
  inst_procs : Compile.ti array;  (** by process id *)
  inst_assigns : Compile.compiled_expr_i array;  (** by assign index *)
}

let instance (g : Elaborate.t) =
  let d = g.Elaborate.design in
  let sig_width i = d.Design.signals.(i).Design.width in
  let mem_width m = d.Design.mems.(m).Design.data_width in
  let mem_size m = d.Design.mems.(m).Design.size in
  {
    inst_graph = g;
    inst_procs =
      Array.map
        (fun (p : Design.proc) ->
          Compile.proc_i ~sig_width ~mem_width ~mem_size p.body)
        d.procs;
    inst_assigns =
      Array.map
        (fun (a : Design.assign) ->
          Compile.expr_i ~sig_width ~mem_width ~mem_size a.expr)
        d.assigns;
  }

type comb_kind =
  | Kassign of {
      target : int;
      eval : Compile.compiled_expr_i;
      reads : int array;
      read_mems : int array;
    }
  | Kproc of {
      pid : int;
      cp : Compile.ti;
      reads : int array;
      read_mems : int array;
      writes : int array;  (* blocking targets; covered on every path *)
    }

let edge_fired edge ~old_b ~new_b =
  match edge with
  | Design.Posedge ->
      Int64.logand old_b 1L = 0L && Int64.logand new_b 1L = 1L
  | Design.Negedge ->
      Int64.logand old_b 1L = 1L && Int64.logand new_b 1L = 0L

(* How this run treats the good network: simulate it (Gcold), simulate it
   while recording every good event into a trace builder (Gcap), or skip
   simulation entirely and replay a previously captured trace (Grep). *)
type gexec =
  | Gcold
  | Gcap of Goodtrace.builder
  | Grep of Goodtrace.cursor

let run_gmode ?(config = default_config) ?probe ?goodtrace ~capture_into
    (inst : instance) (w : Workload.t) faults =
  let g = inst.inst_graph in
  let t_start = Stats.now () in
  let d = g.design in
  let nsig = Design.num_signals d in
  let w = Workload.checked ~num_signals:nsig w in
  let nmem = Array.length d.mems in
  let nproc = Array.length d.procs in
  let nfaults = Array.length faults in
  let stats = Stats.create () in
  (* ---- lane packing plan (positional: fault f = lane [f land 63] of
     group [f lsr 6]) ---- *)
  let lanes_on = config.lanes in
  let lplan = Lanes.plan (if lanes_on then faults else [||]) in
  let ngroups = if lanes_on then lplan.Lanes.groups else 0 in
  let gx, warm_start =
    match (capture_into, goodtrace) with
    | Some b, _ -> (Gcap b, 0)
    | None, Some { Goodtrace.trace; start } ->
        if trace.Goodtrace.cycles <> w.Workload.cycles then
          raise
            (Goodtrace.Trace_mismatch
               (Printf.sprintf "trace captured for %d cycles, workload has %d"
                  trace.Goodtrace.cycles w.Workload.cycles));
        if trace.Goodtrace.clock <> w.Workload.clock then
          raise
            (Goodtrace.Trace_mismatch
               (Printf.sprintf "trace clock %d, workload clock %d"
                  trace.Goodtrace.clock w.Workload.clock));
        if trace.Goodtrace.nout <> Array.length g.outputs then
          raise
            (Goodtrace.Trace_mismatch
               (Printf.sprintf "trace has %d outputs, design has %d"
                  trace.Goodtrace.nout (Array.length g.outputs)));
        (Grep (Goodtrace.cursor trace ~start), start)
    | None, None -> (Gcold, 0)
  in
  (* Observability is enabled (or not) before the run starts, so the flags
     can be hoisted into locals: the disabled hot path pays one branch on an
     already-loaded bool instead of an atomic load per event. *)
  let tracing = Obs.Trace.on () in
  let metrics_on = Obs.Metrics.on () in
  let run_t0 = Obs.Trace.span_begin "fault_sim_run" in
  let sig_width i = d.Design.signals.(i).Design.width in
  let mem_width m = d.Design.mems.(m).Design.data_width in
  let mem_size m = d.mems.(m).size in
  (* ---- good state: flat int64 arrays, shared representation with the
     serial simulator's flat backend ---- *)
  let st = State.create d in
  (* ---- fault bookkeeping ---- *)
  let live = Array.make nfaults true in
  let detected = Array.make nfaults false in
  let detection_cycle = Array.make nfaults (-1) in
  let n_live = ref nfaults in
  (* Diff stores are sized from the fault-batch width: the per-site tables
     (one per signal / memory) expect a fraction of the batch and grow on
     demand; the per-memory fault index and per-clock snapshots are bounded
     by the batch width itself. *)
  let expect_site = min nfaults 16 in
  let diffs : Diffstore.t array =
    Array.init nsig (fun _ ->
        Diffstore.create ~lane_groups:ngroups ~expect:expect_site ())
  in
  (* mem diff keys are (fault * size + word), not fault ids, so they carry
     no lane masks; per-fault memory visibility is mask-tracked in
     [mem_fault_words] instead *)
  let mem_diffs : Diffstore.t array =
    Array.init nmem (fun _ -> Diffstore.create ~expect:expect_site ())
  in
  let mem_fault_words : Diffstore.Counts.t array =
    Array.init nmem (fun _ ->
        Diffstore.Counts.create ~lane_groups:ngroups ~expect:nfaults ())
  in
  let site_faults = Array.make nsig [] in
  let transients_at : (int, Fault.t list) Hashtbl.t = Hashtbl.create 8 in
  Array.iter
    (fun (f : Fault.t) ->
      match f.stuck with
      | Fault.Stuck_at_0 | Fault.Stuck_at_1 ->
          site_faults.(f.signal) <- f.fid :: site_faults.(f.signal)
      | Fault.Flip_at c ->
          Hashtbl.replace transients_at c
            (f :: (try Hashtbl.find transients_at c with Not_found -> [])))
    faults;
  let force_if_site f id v =
    let fa = faults.(f) in
    if fa.Fault.signal = id then Fault.force_i64 fa v else v
  in
  (* ---- dirty tracking over topological comb positions ---- *)
  let ncomb = Array.length g.comb_nodes in
  let good_dirty = Array.make ncomb false in
  let fault_dirty = Array.make ncomb false in
  let dirty_hi = ref (-1) in
  let dirty_lo = ref ncomb in
  (* node being evaluated right now: no self-triggering on own writes *)
  let current_pos = ref (-1) in
  let touch pos =
    if pos > !dirty_hi then dirty_hi := pos;
    if pos < !dirty_lo then dirty_lo := pos
  in
  let mark_good_fanout id =
    let fo = g.fanout_comb.(id) in
    for i = 0 to Array.length fo - 1 do
      let pos = fo.(i) in
      if pos <> !current_pos then begin
        good_dirty.(pos) <- true;
        fault_dirty.(pos) <- true;
        touch pos
      end
    done
  in
  let mark_fault_fanout id =
    let fo = g.fanout_comb.(id) in
    for i = 0 to Array.length fo - 1 do
      let pos = fo.(i) in
      if pos <> !current_pos then begin
        fault_dirty.(pos) <- true;
        touch pos
      end
    done
  in
  let mark_mem_good_fanout m =
    let fo = g.fanout_mem.(m) in
    for i = 0 to Array.length fo - 1 do
      let pos = fo.(i) in
      good_dirty.(pos) <- true;
      fault_dirty.(pos) <- true;
      touch pos
    done
  in
  let mark_mem_fault_fanout m =
    let fo = g.fanout_mem.(m) in
    for i = 0 to Array.length fo - 1 do
      let pos = fo.(i) in
      fault_dirty.(pos) <- true;
      touch pos
    done
  in
  (* ---- lane packing state ----
     [live_lanes]: per group, the lanes whose fault is still undetected.
     [packed_lanes]: lanes eligible for packed evaluation (validity skip +
     identical-overlay execution sharing); transients fall back to strict
     per-fault processing. [lane_valid]: per comb position and group, the
     lanes whose last outcome at that node is still current — any
     fault-diff change in the node's cone clears the lane's bit, so a
     still-set bit proves the node would recompute the exact same result
     for that lane (comb bodies are pure functions of their reads). *)
  (* All mask state lives in int64 Bigarrays: an [int64 array] store boxes
     its element on every write, and these words are touched on every node
     round, so the boxed representation is the difference between lane mode
     beating and losing to the scalar path. *)
  let ba_masks n =
    let a = Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout (max n 1) in
    Bigarray.Array1.fill a 0L;
    a
  in
  let live_lanes = ba_masks ngroups in
  let packed_lanes = ba_masks ngroups in
  if lanes_on then
    for grp = 0 to ngroups - 1 do
      Bigarray.Array1.unsafe_set live_lanes grp lplan.Lanes.live.(grp);
      Bigarray.Array1.unsafe_set packed_lanes grp lplan.Lanes.packed.(grp)
    done;
  (* flattened [ncomb * ngroups]: row [pos], word [grp] *)
  let lane_valid = ba_masks (if lanes_on then ncomb * ngroups else 0) in
  let lane_is_packed f =
    Int64.logand
      (Bigarray.Array1.unsafe_get packed_lanes (Lanes.group f))
      (Lanes.bit f)
    <> 0L
  in
  let lane_inval_sig id f =
    let grp = Lanes.group f and nb = Int64.lognot (Lanes.bit f) in
    let fo = g.fanout_comb.(id) in
    for i = 0 to Array.length fo - 1 do
      let pos = fo.(i) in
      if pos <> !current_pos then begin
        let idx = (pos * ngroups) + grp in
        Bigarray.Array1.unsafe_set lane_valid idx
          (Int64.logand (Bigarray.Array1.unsafe_get lane_valid idx) nb)
      end
    done
  in
  let lane_inval_mem m f =
    let grp = Lanes.group f and nb = Int64.lognot (Lanes.bit f) in
    let fo = g.fanout_mem.(m) in
    for i = 0 to Array.length fo - 1 do
      let idx = (fo.(i) * ngroups) + grp in
      Bigarray.Array1.unsafe_set lane_valid idx
        (Int64.logand (Bigarray.Array1.unsafe_get lane_valid idx) nb)
    done
  in
  (* out-of-band diff corruption (chaos seam) bypasses the cone: drop every
     cached outcome of the fault *)
  let lane_inval_all f =
    let grp = Lanes.group f and nb = Int64.lognot (Lanes.bit f) in
    for pos = 0 to ncomb - 1 do
      let idx = (pos * ngroups) + grp in
      Bigarray.Array1.unsafe_set lane_valid idx
        (Int64.logand (Bigarray.Array1.unsafe_get lane_valid idx) nb)
    done
  in
  let lanes_shared = ref 0 in
  let lanes_skips = ref 0 in
  let lanes_fallback_execs = ref 0 in
  let lanes_packed_total = ref 0 in
  let lane_occ_sum = ref 0 in
  let lane_occ_rounds = ref 0 in
  let lane_round_account cand grp =
    let occ = Lanes.popcount cand in
    lane_occ_sum := !lane_occ_sum + occ;
    incr lane_occ_rounds;
    lanes_packed_total :=
      !lanes_packed_total
      + Lanes.popcount
          (Int64.logand cand (Bigarray.Array1.unsafe_get packed_lanes grp));
    if metrics_on then Obs.Metrics.observe "lanes.occupancy" (float_of_int occ)
  in
  (* ---- diff store ----
     Payload equality is full equality: every stored payload is masked to
     its signal's width, and a slot's good value shares that width. *)
  let set_diff id f v =
    let tbl = diffs.(id) in
    let good = State.get st id in
    if v = good then begin
      if Diffstore.mem tbl f then begin
        Diffstore.remove tbl f;
        mark_fault_fanout id;
        if lanes_on then lane_inval_sig id f
      end
    end
    else if Diffstore.find tbl f ~default:good <> v then begin
      Diffstore.set tbl f v;
      mark_fault_fanout id;
      if lanes_on then lane_inval_sig id f
    end
  in
  let fault_value f id = Diffstore.find diffs.(id) f ~default:(State.get st id) in
  let visible f id =
    let tbl = diffs.(id) in
    (not (Diffstore.is_empty tbl))
    &&
    let good = State.get st id in
    Diffstore.find tbl f ~default:good <> good
  in
  let mem_key m f a = (f * d.mems.(m).size) + a in
  let fault_mem_value f m a =
    Diffstore.find mem_diffs.(m) (mem_key m f a)
      ~default:(State.get_mem st m a)
  in
  let mem_visible f m = Diffstore.Counts.mem mem_fault_words.(m) f in
  let mem_words_bump m f delta = Diffstore.Counts.bump mem_fault_words.(m) f delta in
  let set_mem_diff m f a v =
    let key = mem_key m f a in
    let tbl = mem_diffs.(m) in
    let good = State.get_mem st m a in
    if v = good then begin
      if Diffstore.mem tbl key then begin
        Diffstore.remove tbl key;
        mem_words_bump m f (-1);
        mark_mem_fault_fanout m;
        if lanes_on then lane_inval_mem m f
      end
    end
    else if Diffstore.mem tbl key then begin
      if Diffstore.find tbl key ~default:good <> v then begin
        Diffstore.set tbl key v;
        mark_mem_fault_fanout m;
        if lanes_on then lane_inval_mem m f
      end
    end
    else begin
      Diffstore.set tbl key v;
      mem_words_bump m f 1;
      mark_mem_fault_fanout m;
      if lanes_on then lane_inval_mem m f
    end
  in
  (* ---- good writes (with fault-site injection and stale-diff sweep) ---- *)
  let scratch_dead = Ivec.create ~capacity:16 () in
  let write_good id v =
    if State.get st id <> v then begin
      State.set st id v;
      let tbl = diffs.(id) in
      if Diffstore.length tbl > 0 then begin
        Ivec.clear scratch_dead;
        Diffstore.iter tbl (fun f fv ->
            if (not live.(f)) || fv = v then Ivec.push scratch_dead f);
        Ivec.iter (fun f -> Diffstore.remove tbl f) scratch_dead
      end;
      mark_good_fanout id
    end;
    List.iter
      (fun f -> if live.(f) then set_diff id f (Fault.force_i64 faults.(f) v))
      site_faults.(id)
  in
  let write_good_mem m a v =
    if State.get_mem st m a <> v then begin
      State.set_mem st m a v;
      mark_mem_good_fanout m
    end
  in
  (* ---- readers / writers ---- *)
  let good_reader = Access.reader_of_state st in
  let cur_fault = ref (-1) in
  let fault_reader =
    {
      Access.iget = (fun id -> fault_value !cur_fault id);
      iget_mem = (fun m a -> fault_mem_value !cur_fault m a);
    }
  in
  let bad_write kind _ _ = failwith ("concurrent: unexpected " ^ kind) in
  let comb_good_writer =
    {
      Access.iset_blocking = write_good;
      iset_nonblocking = bad_write "nonblocking write in comb process";
      iwrite_mem = (fun _ -> bad_write "memory write in comb process" 0);
    }
  in
  (* Capture twin of [comb_good_writer]: same effect, plus it collects the
     write sequence so the whole execution can be recorded as one event. *)
  let cap_ws = ref [] in
  let comb_capture_writer =
    {
      Access.iset_blocking =
        (fun id v ->
          cap_ws := (id, v) :: !cap_ws;
          write_good id v);
      iset_nonblocking = bad_write "nonblocking write in comb process";
      iwrite_mem = (fun _ -> bad_write "memory write in comb process" 0);
    }
  in
  let comb_fault_writer =
    {
      Access.iset_blocking =
        (fun id v -> set_diff id !cur_fault (force_if_site !cur_fault id v));
      iset_nonblocking = bad_write "nonblocking write in comb process";
      iwrite_mem = (fun _ -> bad_write "memory write in comb process" 0);
    }
  in
  let cur_good_writes = ref [] in
  let cur_good_mem_writes = ref [] in
  let ff_good_writer =
    {
      Access.iset_blocking = bad_write "blocking write in ff process";
      iset_nonblocking =
        (fun id v -> cur_good_writes := (id, v) :: !cur_good_writes);
      iwrite_mem =
        (fun m a v ->
          cur_good_mem_writes := (m, a, v) :: !cur_good_mem_writes);
    }
  in
  let fault_nba = ref [] in
  let fault_nba_mem = ref [] in
  let cur_pid = ref (-1) in
  let ff_fault_writer =
    {
      Access.iset_blocking = bad_write "blocking write in ff process";
      iset_nonblocking =
        (fun id v -> fault_nba := (!cur_fault, id, v) :: !fault_nba);
      iwrite_mem =
        (fun m a v ->
          fault_nba_mem := (!cur_pid, !cur_fault, m, a, v) :: !fault_nba_mem);
    }
  in
  (* ---- compiled nodes (shared, immutable — see {!instance}) ---- *)
  let get_cp pid = inst.inst_procs.(pid) in
  let per_proc_exec = Array.make nproc 0 in
  let per_proc_impl = Array.make nproc 0 in
  let per_proc_expl = Array.make nproc 0 in
  let record = Array.make nproc [||] in
  let record_of pid =
    if Array.length record.(pid) = 0 then
      record.(pid) <- Array.make (Array.length (get_cp pid).Compile.icfg.nodes) 0;
    record.(pid)
  in
  (* Canonical decision-node order of a process: both capture and replay
     derive it independently from the compiled CFG, so a trace only needs
     to store the taken-branch choices, not whole record arrays. *)
  let decision_ids = Array.make nproc [||] in
  let decision_ids_set = Array.make nproc false in
  let decision_ids_of pid =
    if not decision_ids_set.(pid) then begin
      let acc = ref [] in
      Array.iteri
        (fun i n -> match n with Cfg.Decision _ -> acc := i :: !acc | _ -> ())
        (get_cp pid).Compile.icfg.nodes;
      decision_ids.(pid) <- Array.of_list (List.rev !acc);
      decision_ids_set.(pid) <- true
    end;
    decision_ids.(pid)
  in
  let choices_of pid =
    let r = record.(pid) in
    Array.map (fun i -> r.(i)) (decision_ids_of pid)
  in
  (* [record.(pid)] only reflects the good network's latest branch choices
     once the proc has executed (or been replayed) in THIS run. A warm
     start restores state from a snapshot without replaying history, so a
     comb proc can become fault-dirty before its first replayed good
     event: until then its record is unset and the implicit-redundancy
     walk must not consult it. *)
  let record_valid = Array.make nproc false in
  let restore_choices pid =
    let r = record.(pid) in
    let ids = decision_ids_of pid in
    record_valid.(pid) <- true;
    fun k c -> r.(ids.(k)) <- c
  in
  let comb_kinds =
    Array.mapi
      (fun pos node ->
        match node with
        | Elaborate.Cassign i ->
            let a = d.assigns.(i) in
            Kassign
              {
                target = a.target;
                eval = inst.inst_assigns.(i);
                reads = g.comb_reads.(pos);
                read_mems = g.comb_read_mems.(pos);
              }
        | Elaborate.Cproc pid ->
            ignore (record_of pid);
            Kproc
              {
                pid;
                cp = get_cp pid;
                reads = g.comb_reads.(pos);
                read_mems = g.comb_read_mems.(pos);
                writes = g.comb_writes.(pos);
              })
      g.comb_nodes
  in
  Array.iter (fun pid -> ignore (record_of pid)) g.ff_procs;
  (* ---- per-node fault set collection ---- *)
  let stamp = Array.make nfaults 0 in
  let gen = ref 0 in
  let fset = Ivec.create () in
  let begin_set () =
    incr gen;
    Ivec.clear fset
  in
  let add_fault f =
    if live.(f) && stamp.(f) <> !gen then begin
      stamp.(f) <- !gen;
      Ivec.push fset f
    end
  in
  let add_sig_faults id =
    let tbl = diffs.(id) in
    if Diffstore.length tbl > 0 then begin
      Ivec.clear scratch_dead;
      Diffstore.iter_keys tbl (fun f ->
          if live.(f) then add_fault f else Ivec.push scratch_dead f);
      Ivec.iter (fun f -> Diffstore.remove tbl f) scratch_dead
    end
  in
  let add_mem_faults m =
    Diffstore.Counts.iter_keys mem_fault_words.(m) (fun f ->
        if live.(f) then add_fault f)
  in
  let add_all_live () =
    for f = 0 to nfaults - 1 do
      add_fault f
    done
  in
  (* ---- Algorithm 1: the implicit-redundancy walk ---- *)
  let input_diff f reads read_mems =
    Array.exists (visible f) reads || Array.exists (mem_visible f) read_mems
  in
  (* ---- lane candidate masks + identical-overlay execution sharing ---- *)
  let lane_cand = ba_masks ngroups in
  let lane_begin () = Bigarray.Array1.fill lane_cand 0L in
  let lane_or_sig id =
    let tbl = diffs.(id) in
    if Diffstore.length tbl > 0 then Diffstore.lane_or_into tbl lane_cand
  in
  let lane_or_mem m =
    let c = mem_fault_words.(m) in
    if Diffstore.Counts.length c > 0 then
      Diffstore.Counts.lane_or_into c lane_cand
  in
  (* Static per-position mask of stuck-at faults sited on a comb process's
     write targets: such faults must execute whenever the node runs (see
     the site note in [process_comb]), so their lanes join every candidate
     set of that position. *)
  let lane_site_cand =
    if lanes_on then
      Array.map
        (function
          | Kassign _ -> ba_masks 0
          | Kproc p ->
              let m = ba_masks ngroups in
              Array.iter
                (fun t ->
                  List.iter
                    (fun f ->
                      let grp = Lanes.group f in
                      Bigarray.Array1.unsafe_set m grp
                        (Int64.logor
                           (Bigarray.Array1.unsafe_get m grp)
                           (Lanes.bit f)))
                    site_faults.(t))
                p.writes;
              m)
        comb_kinds
    else [||]
  in
  let lane_or_masks (src : Diffstore.masks) =
    let n = min ngroups (Bigarray.Array1.dim src) in
    for grp = 0 to n - 1 do
      Bigarray.Array1.unsafe_set lane_cand grp
        (Int64.logor
           (Bigarray.Array1.unsafe_get lane_cand grp)
           (Bigarray.Array1.unsafe_get src grp))
    done
  in
  (* Identical-overlay sharing: faults whose visible overlays project the
     same values onto a node's reads drive the exact same execution, so one
     representative runs the network and the rest copy its outcome. The
     overlay is fingerprinted to a plain int (FNV-style mix of the visible
     (signal, value) projections in static read order) so the share tables
     hash and compare immediates; a hit is confirmed by [lane_same_overlay]
     before anything is copied, which makes fingerprint collisions
     harmless — the collider just executes normally. A fault with any
     visible diff in a read memory never shares (word-level divergence is
     not captured by the fingerprint); [lane_overlay_hash] returns -1 for
     it. *)
  let rec lane_mems_clean f read_mems i =
    i >= Array.length read_mems
    || ((not (mem_visible f read_mems.(i)))
       && lane_mems_clean f read_mems (i + 1))
  in
  let lane_overlay_hash f reads read_mems =
    if not (lane_mems_clean f read_mems 0) then -1
    else begin
      let h = ref 17 in
      for i = 0 to Array.length reads - 1 do
        let id = reads.(i) in
        let tbl = diffs.(id) in
        if Diffstore.length tbl > 0 then begin
          let good = State.get st id in
          let v = Diffstore.find tbl f ~default:good in
          if v <> good then begin
            let hv = (!h * 0x01000193) lxor id in
            let hv = (hv * 0x01000193) lxor (Int64.to_int v land 0xFFFFFF) in
            let hv = (hv * 0x01000193) lxor (Int64.to_int (Int64.shift_right_logical v 24) land 0xFFFFFF) in
            let hv = (hv * 0x01000193) lxor Int64.to_int (Int64.shift_right_logical v 48) in
            h := hv land max_int
          end
        end
      done;
      !h
    end
  in
  let rec lane_same_overlay f rep reads i =
    i >= Array.length reads
    || (let id = reads.(i) in
        let tbl = diffs.(id) in
        (Diffstore.length tbl = 0
        ||
        let good = State.get st id in
        Diffstore.find tbl f ~default:good
        = Diffstore.find tbl rep ~default:good)
        && lane_same_overlay f rep reads (i + 1))
  in
  (* Sharing is record-free: a representative executes normally and the
     table maps overlay fingerprint -> enough of the representative's
     outcome to copy. Comb nodes store the rep's fault id (its post-exec
     diffs on the node's targets ARE the shared raw outcome); assigns store
     the rep and its raw evaluated value; ff procs store the rep plus
     physical sublist markers into [fault_nba]/[fault_nba_mem] delimiting
     the rep's own nonblocking writes (cons cells are immutable, so the
     markers stay valid for the rest of the round). *)
  let lane_comb_shared : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let lane_assign_shared : (int, int * int64) Hashtbl.t = Hashtbl.create 64 in
  let lane_ff_shared :
      ( int,
        int
        * (int * int * int64) list
        * (int * int * int64) list
        * (int * int * int * int * int64) list
        * (int * int * int * int * int64) list )
      Hashtbl.t =
    Hashtbl.create 64
  in
  (* Drive one node round from the accumulated candidate masks: finalize
     every group's candidates (mask with the live lanes, apply the node's
     validity skip), then run [do_fault] for each candidate in ascending
     fault order. Finalizing first is safe — a fault's execution only ever
     invalidates its *own* lane bits, and each fault runs at most once per
     round — and it yields the round population, which gates the
     identical-overlay machinery: a lone candidate can never share, so its
     key build would be pure waste. *)
  let lane_drive ~packing ~use_valid ~mark_valid ~account pos do_fault =
    let base = pos * ngroups in
    let total = ref 0 in
    for grp = 0 to ngroups - 1 do
      let cand =
        Int64.logand
          (Bigarray.Array1.unsafe_get lane_cand grp)
          (Bigarray.Array1.unsafe_get live_lanes grp)
      in
      let cand =
        if use_valid then begin
          let skip =
            Int64.logand cand
              (Int64.logand
                 (Bigarray.Array1.unsafe_get lane_valid (base + grp))
                 (Bigarray.Array1.unsafe_get packed_lanes grp))
          in
          if skip <> 0L then begin
            lanes_skips := !lanes_skips + Lanes.popcount skip;
            Int64.logand cand (Int64.lognot skip)
          end
          else cand
        end
        else cand
      in
      Bigarray.Array1.unsafe_set lane_cand grp cand;
      if cand <> 0L then total := !total + Lanes.popcount cand
    done;
    let dedup_round = packing && !total > 1 in
    for grp = 0 to ngroups - 1 do
      let cand = Bigarray.Array1.unsafe_get lane_cand grp in
      if cand <> 0L then begin
        if account then lane_round_account cand grp;
        let packed = Bigarray.Array1.unsafe_get packed_lanes grp in
        Lanes.iter_lanes cand (fun l ->
            do_fault
              ~dedup:
                (dedup_round
                && Int64.logand packed (Int64.shift_left 1L l) <> 0L)
              ((grp lsl 6) lor l));
        if mark_valid then begin
          let idx = base + grp in
          Bigarray.Array1.unsafe_set lane_valid idx
            (Int64.logor (Bigarray.Array1.unsafe_get lane_valid idx) cand)
        end
      end
    done
  in
  let mem_word_diff f m a =
    let good = State.get_mem st m a in
    Diffstore.find mem_diffs.(m) (mem_key m f a) ~default:good <> good
  in
  let walk_steps = ref 0 in
  let vdg_hist = Array.make Obs.Metrics.nbuckets 0 in
  let vdg_count = ref 0 in
  let vdg_sum = ref 0.0 in
  let vdg_max = ref 0.0 in
  let walk_redundant (cp : Compile.ti) rec_arr =
    (* fast path: no blocking writes in the body, so every read is external
       and selectors can be re-evaluated against pre-execution state.
       Memory dependencies are checked per word: the site's address is
       recomputed under the good values (equal to the fault's, since the
       address's signal reads were already checked invisible). Selector
       memory reads need no pre-check — the selector itself is re-evaluated
       under the fault overlay. *)
    let f = !cur_fault in
    let nodes = cp.Compile.icfg.nodes in
    let vdg = cp.Compile.ivdg in
    let site_clean (m, size, caddr) =
      if config.exact_mem_check then
        not (mem_word_diff f m (Eval.wrap_address_i (caddr good_reader) size))
      else not (mem_visible f m)
    in
    let rec walk cur =
      incr walk_steps;
      match nodes.(cur) with
      | Cfg.Exit -> true
      | Cfg.Decision dec ->
          let gc = rec_arr.(cur) in
          if Compile.fault_choice_i cp cur fault_reader <> gc then false
          else walk dec.targets.(gc)
      | Cfg.Segment s ->
          if not vdg.Vdg.interesting.(cur) then walk vdg.Vdg.next.(cur)
          else if
            Array.exists (visible f) s.reads
            || not (Array.for_all site_clean cp.Compile.iseg_sites.(cur))
          then false
          else walk vdg.Vdg.next.(cur)
    in
    let t0 = if tracing then Obs.Trace.span_begin "vdg_walk" else 0 in
    walk_steps := 0;
    let res =
      if cp.Compile.ihas_blocking then
        Vdg.redundant_i vdg
          ~good_choice:(fun id ->
            incr walk_steps;
            rec_arr.(id))
          ~eval_good:(fun e ->
            Eval.eval_i ~sig_width ~mem_width ~mem_size good_reader e)
          ~eval_fault:(fun e ->
            Eval.eval_i ~sig_width ~mem_width ~mem_size fault_reader e)
          ~visible:(visible f)
          ~mem_word_visible:(fun m addr ->
            if config.exact_mem_check then
              mem_word_diff f m (Eval.wrap_address_i addr d.mems.(m).size)
            else mem_visible f m)
      else walk cp.Compile.icfg.entry
    in
    if tracing then Obs.Trace.span_end "vdg_walk" t0;
    if metrics_on then begin
      let depth = float_of_int !walk_steps in
      vdg_hist.(Obs.Metrics.bucket_of depth) <-
        vdg_hist.(Obs.Metrics.bucket_of depth) + 1;
      incr vdg_count;
      vdg_sum := !vdg_sum +. depth;
      if depth > !vdg_max then vdg_max := depth
    end;
    res
  in
  (* ---- instrumentation ---- *)
  let bn_clock = ref 0.0 in
  let bn_trace = ref 0 in
  let bn_begin () =
    if config.instrument then bn_clock := Stats.now ();
    if tracing then bn_trace := Obs.Trace.span_begin "bn_eval"
  in
  let bn_end () =
    if config.instrument then
      stats.Stats.bn_seconds <-
        stats.Stats.bn_seconds +. (Stats.now () -. !bn_clock);
    if tracing then Obs.Trace.span_end "bn_eval" !bn_trace
  in
  (* ---- combinational settle ---- *)
  let process_comb pos =
    let gd = good_dirty.(pos) and fd = fault_dirty.(pos) in
    good_dirty.(pos) <- false;
    fault_dirty.(pos) <- false;
    match comb_kinds.(pos) with
    | Kassign a ->
        if gd then begin
          match gx with
          | Grep cur -> write_good a.target (Goodtrace.take_assign cur ~pos)
          | Gcap b ->
              stats.Stats.rtl_good_eval <- stats.Stats.rtl_good_eval + 1;
              let v = a.eval good_reader in
              Goodtrace.rec_assign b ~pos ~target:a.target v;
              write_good a.target v
          | Gcold ->
              stats.Stats.rtl_good_eval <- stats.Stats.rtl_good_eval + 1;
              write_good a.target (a.eval good_reader)
        end;
        if gd || fd then begin
          let do_fault ~dedup f =
            cur_fault := f;
            let shared =
              dedup
              &&
              let key = lane_overlay_hash f a.reads a.read_mems in
              key >= 0
              &&
              match Hashtbl.find_opt lane_assign_shared key with
              | Some (rep, v) when lane_same_overlay f rep a.reads 0 ->
                  incr lanes_shared;
                  set_diff a.target f (force_if_site f a.target v);
                  true
              | Some _ -> false
              | None ->
                  stats.Stats.rtl_fault_eval <- stats.Stats.rtl_fault_eval + 1;
                  let v = a.eval fault_reader in
                  Hashtbl.replace lane_assign_shared key (f, v);
                  set_diff a.target f (force_if_site f a.target v);
                  true
            in
            if not shared then begin
              stats.Stats.rtl_fault_eval <- stats.Stats.rtl_fault_eval + 1;
              set_diff a.target f
                (force_if_site f a.target (a.eval fault_reader))
            end
          in
          if lanes_on then begin
            lane_begin ();
            Array.iter lane_or_sig a.reads;
            Array.iter lane_or_mem a.read_mems;
            lane_or_sig a.target;
            let packing = config.mode <> No_redundancy in
            if packing && Hashtbl.length lane_assign_shared > 0 then
              Hashtbl.clear lane_assign_shared;
            lane_drive ~packing
              ~use_valid:(packing && not gd)
              ~mark_valid:true ~account:false pos do_fault
          end
          else begin
            begin_set ();
            Array.iter add_sig_faults a.reads;
            Array.iter add_mem_faults a.read_mems;
            add_sig_faults a.target;
            Ivec.iter (fun f -> do_fault ~dedup:false f) fset
          end
        end
    | Kproc p ->
        bn_begin ();
        if gd then begin
          match gx with
          | Grep cur ->
              Goodtrace.take_comb_proc cur ~pos ~pid:p.pid
                ~set_choice:(restore_choices p.pid) ~write:write_good
          | Gcap b ->
              stats.Stats.bn_good <- stats.Stats.bn_good + 1;
              let gs_t0 =
                if tracing then Obs.Trace.span_begin "good_sim" else 0
              in
              cap_ws := [];
              record_valid.(p.pid) <- true;
              Compile.exec_i p.cp ~record:record.(p.pid) good_reader
                comb_capture_writer;
              if tracing then Obs.Trace.span_end "good_sim" gs_t0;
              Goodtrace.rec_comb_proc b ~pos ~pid:p.pid
                ~writes:(List.rev !cap_ws) ~choices:(choices_of p.pid)
          | Gcold ->
              stats.Stats.bn_good <- stats.Stats.bn_good + 1;
              let gs_t0 =
                if tracing then Obs.Trace.span_begin "good_sim" else 0
              in
              record_valid.(p.pid) <- true;
              Compile.exec_i p.cp ~record:record.(p.pid) good_reader
                comb_good_writer;
              if tracing then Obs.Trace.span_end "good_sim" gs_t0
        end;
        if gd || fd then begin
          let live_at = !n_live in
          let site_on_target f =
            (not (Fault.is_transient faults.(f)))
            &&
            let fs = faults.(f).Fault.signal in
            Array.exists (fun t -> t = fs) p.writes
          in
          let executed = ref 0 and implicit = ref 0 and expl = ref 0 in
          let do_fault ~dedup f =
            cur_fault := f;
            let idiff = input_diff f p.reads p.read_mems in
            let must_exec =
              match config.mode with
              | No_redundancy -> true
              | Explicit_only -> idiff || site_on_target f
              | Full ->
                  (idiff || site_on_target f)
                  &&
                  if
                    (not (site_on_target f))
                    && record_valid.(p.pid)
                    && walk_redundant p.cp record.(p.pid)
                  then begin
                    incr implicit;
                    per_proc_impl.(p.pid) <- per_proc_impl.(p.pid) + 1;
                    false
                  end
                  else true
            in
            if must_exec then begin
              incr executed;
              per_proc_exec.(p.pid) <- per_proc_exec.(p.pid) + 1;
              let shared =
                dedup
                && (not (site_on_target f))
                &&
                let key = lane_overlay_hash f p.reads p.read_mems in
                key >= 0
                &&
                match Hashtbl.find_opt lane_comb_shared key with
                | Some rep when lane_same_overlay f rep p.reads 0 ->
                    incr lanes_shared;
                    (* comb bodies assign every target on every path, and
                       neither fault is sited on a target (sharing excludes
                       them), so the representative's post-exec values are
                       the shared raw outcome *)
                    Array.iter (fun t -> set_diff t f (fault_value rep t)) p.writes;
                    true
                | Some _ -> false
                | None ->
                    stats.Stats.bn_fault_exec <- stats.Stats.bn_fault_exec + 1;
                    Compile.exec_i p.cp fault_reader comb_fault_writer;
                    Hashtbl.replace lane_comb_shared key f;
                    true
              in
              if not shared then begin
                stats.Stats.bn_fault_exec <- stats.Stats.bn_fault_exec + 1;
                if lanes_on && not (lane_is_packed f) then
                  incr lanes_fallback_execs;
                Compile.exec_i p.cp fault_reader comb_fault_writer
              end
            end
            else if not (idiff && config.mode = Full) then incr expl;
            if not must_exec then
              (* reconcile: the faulty execution would write the good
                 values (comb bodies assign every target on every path) *)
              Array.iter
                (fun t -> set_diff t f (force_if_site f t (State.get st t)))
                p.writes
          in
          if lanes_on then begin
            lane_begin ();
            (match config.mode with
            | No_redundancy when gd ->
                Bigarray.Array1.blit live_lanes lane_cand
            | No_redundancy | Explicit_only | Full ->
                Array.iter lane_or_sig p.reads;
                Array.iter lane_or_mem p.read_mems;
                Array.iter lane_or_sig p.writes;
                lane_or_masks lane_site_cand.(pos));
            let packing = config.mode <> No_redundancy in
            if packing && Hashtbl.length lane_comb_shared > 0 then
              Hashtbl.clear lane_comb_shared;
            lane_drive ~packing
              ~use_valid:(packing && not gd)
              ~mark_valid:true ~account:true pos do_fault
          end
          else begin
            begin_set ();
            (match config.mode with
            | No_redundancy when gd -> add_all_live ()
            | No_redundancy | Explicit_only | Full ->
                Array.iter add_sig_faults p.reads;
                Array.iter add_mem_faults p.read_mems;
                Array.iter add_sig_faults p.writes);
            (* Faults sited on a blocking-write target must always execute:
               forcing the bit at an intermediate write can steer a later
               branch even when the final forced value happens to equal the
               good value (so no diff survives to flag them). *)
            Array.iter (fun t -> List.iter add_fault site_faults.(t)) p.writes;
            Ivec.iter (fun f -> do_fault ~dedup:false f) fset
          end;
          stats.Stats.bn_skipped_implicit <-
            stats.Stats.bn_skipped_implicit + !implicit;
          let expl_here =
            if gd then live_at - !executed - !implicit else !expl
          in
          stats.Stats.bn_skipped_explicit <-
            stats.Stats.bn_skipped_explicit + expl_here;
          per_proc_expl.(p.pid) <- per_proc_expl.(p.pid) + expl_here
        end;
        bn_end ()
  in
  let settle () =
    let pos = ref !dirty_lo in
    while !pos <= !dirty_hi do
      if good_dirty.(!pos) || fault_dirty.(!pos) then begin
        current_pos := !pos;
        process_comb !pos;
        current_pos := -1
      end;
      incr pos
    done;
    dirty_lo := ncomb;
    dirty_hi := -1
  in
  (* ---- clock edge tracking ---- *)
  let nclk = Array.length g.clocks in
  let prev_clock_good = Array.map (fun c -> State.get st c) g.clocks in
  let prev_clock_diff : Diffstore.t array =
    Array.init nclk (fun _ -> Diffstore.create ~expect:nfaults ())
  in
  let good_fired = Array.make nproc false in
  (* ---- the edge-triggered phase of one time slot ---- *)
  let step () =
    settle ();
    let rounds = ref 0 in
    let continue = ref true in
    while !continue do
      incr rounds;
      if !rounds > 16 then failwith "concurrent: clock cascade did not settle";
      Array.fill good_fired 0 nproc false;
      let fired_list = ref [] in
      let suppress = ref [] in
      let solo = ref [] in
      for ci = 0 to nclk - 1 do
        let c = g.clocks.(ci) in
        let old_g = prev_clock_good.(ci) and new_g = State.get st c in
        if old_g <> new_g then
          List.iter
            (fun (pid, edge) ->
              if edge_fired edge ~old_b:old_g ~new_b:new_g then begin
                if not good_fired.(pid) then begin
                  good_fired.(pid) <- true;
                  fired_list := pid :: !fired_list
                end
              end)
            g.ff_of_clock.(c);
        if config.defer_edge_eval then begin
          (* per-fault edge divergence for faults with a diff on this clock
             now or at the previous slot *)
          begin_set ();
          add_sig_faults c;
          Diffstore.iter_keys prev_clock_diff.(ci) (fun f ->
              if live.(f) then add_fault f);
          Ivec.iter
            (fun f ->
              let old_f =
                Diffstore.find prev_clock_diff.(ci) f ~default:old_g
              in
              let new_f = fault_value f c in
              List.iter
                (fun (pid, edge) ->
                  let gf = edge_fired edge ~old_b:old_g ~new_b:new_g in
                  let ff = edge_fired edge ~old_b:old_f ~new_b:new_f in
                  if gf && not ff then suppress := (pid, f) :: !suppress
                  else if (not gf) && ff then solo := (pid, f) :: !solo)
                g.ff_of_clock.(c))
            fset
        end;
        prev_clock_good.(ci) <- new_g;
        Diffstore.clear prev_clock_diff.(ci);
        Diffstore.iter diffs.(c) (fun f v ->
            if live.(f) then Diffstore.set prev_clock_diff.(ci) f v)
      done;
      let fired = List.sort compare !fired_list in
      if fired = [] && !solo = [] then continue := false
      else begin
        let good_writes_of = Hashtbl.create 8 in
        let good_mem_writes_of = Hashtbl.create 8 in
        fault_nba := [];
        fault_nba_mem := [];
        let preserved = ref [] in
        let preserved_mem = ref [] in
        let recon = ref [] in
        let executed_pairs = Hashtbl.create 16 in
        let preserve_for pid f =
          List.iter
            (fun (id, _) -> preserved := (f, id, fault_value f id) :: !preserved)
            (try Hashtbl.find good_writes_of pid with Not_found -> []);
          List.iter
            (fun (m, a, _) ->
              preserved_mem := (f, m, a, fault_mem_value f m a) :: !preserved_mem)
            (try Hashtbl.find good_mem_writes_of pid with Not_found -> [])
        in
        bn_begin ();
        List.iter
          (fun pid ->
            let cp = get_cp pid in
            cur_pid := pid;
            (match gx with
            | Grep cur ->
                let ws, mws =
                  Goodtrace.take_ff_proc cur ~pid
                    ~set_choice:(restore_choices pid)
                in
                Hashtbl.replace good_writes_of pid ws;
                Hashtbl.replace good_mem_writes_of pid mws
            | Gcap _ | Gcold ->
                cur_good_writes := [];
                cur_good_mem_writes := [];
                stats.Stats.bn_good <- stats.Stats.bn_good + 1;
                let gs_t0 =
                  if tracing then Obs.Trace.span_begin "good_sim" else 0
                in
                record_valid.(pid) <- true;
                Compile.exec_i cp ~record:record.(pid) good_reader
                  ff_good_writer;
                if tracing then Obs.Trace.span_end "good_sim" gs_t0;
                let ws = List.rev !cur_good_writes in
                let mws = List.rev !cur_good_mem_writes in
                (match gx with
                | Gcap b ->
                    Goodtrace.rec_ff_proc b ~pid ~writes:ws ~mem_writes:mws
                      ~choices:(choices_of pid)
                | _ -> ());
                Hashtbl.replace good_writes_of pid ws;
                Hashtbl.replace good_mem_writes_of pid mws);
            let reads = g.proc_reads.(pid) in
            let read_mems = g.proc_read_mems.(pid) in
            let suppressed_here =
              List.filter (fun (p, _) -> p = pid) !suppress
            in
            let is_suppressed f =
              List.exists (fun (_, sf) -> sf = f) suppressed_here
            in
            let live_at = !n_live in
            let executed = ref 0 and implicit = ref 0 and expl = ref 0 in
            let do_fault ~dedup f =
              if not (is_suppressed f) then begin
                cur_fault := f;
                let idiff = input_diff f reads read_mems in
                let must_exec =
                  match config.mode with
                  | No_redundancy -> true
                  | Explicit_only -> idiff
                  | Full ->
                      idiff
                      &&
                      if walk_redundant cp record.(pid) then begin
                        incr implicit;
                        per_proc_impl.(pid) <- per_proc_impl.(pid) + 1;
                        false
                      end
                      else true
                in
                if must_exec then begin
                  incr executed;
                  per_proc_exec.(pid) <- per_proc_exec.(pid) + 1;
                  Hashtbl.replace executed_pairs (pid, f) ();
                  preserve_for pid f;
                  let shared =
                    dedup
                    &&
                    let key = lane_overlay_hash f reads read_mems in
                    key >= 0
                    &&
                    match Hashtbl.find_opt lane_ff_shared key with
                    | Some (rep, sh, stl, mh, mtl)
                      when lane_same_overlay f rep reads 0 ->
                        incr lanes_shared;
                            (* walk the rep's (newest-first) sublist and
                               prepend on unwind, so the sharer's entries
                               land in the rep's order *)
                            let rec replay_sig l =
                              if l == stl then ()
                              else
                                match l with
                                | (_, id, v) :: tl ->
                                    replay_sig tl;
                                    fault_nba := (f, id, v) :: !fault_nba
                                | [] -> ()
                            in
                            let rec replay_mem l =
                              if l == mtl then ()
                              else
                                match l with
                                | (_, _, m, a, v) :: tl ->
                                    replay_mem tl;
                                    fault_nba_mem :=
                                      (pid, f, m, a, v) :: !fault_nba_mem
                                | [] -> ()
                            in
                            replay_sig sh;
                            replay_mem mh;
                            true
                    | Some _ -> false
                    | None ->
                        stats.Stats.bn_fault_exec <-
                          stats.Stats.bn_fault_exec + 1;
                        let nba0 = !fault_nba and nbam0 = !fault_nba_mem in
                        Compile.exec_i cp fault_reader ff_fault_writer;
                        Hashtbl.replace lane_ff_shared key
                          (f, !fault_nba, nba0, !fault_nba_mem, nbam0);
                        true
                  in
                  if not shared then begin
                    stats.Stats.bn_fault_exec <-
                      stats.Stats.bn_fault_exec + 1;
                    if lanes_on && not (lane_is_packed f) then
                      incr lanes_fallback_execs;
                    Compile.exec_i cp fault_reader ff_fault_writer
                  end
                end
                else begin
                  if not (idiff && config.mode = Full) then incr expl;
                  recon := (pid, f) :: !recon
                end
              end
            in
            if lanes_on then begin
              lane_begin ();
              (match config.mode with
              | No_redundancy -> Bigarray.Array1.blit live_lanes lane_cand
              | Explicit_only | Full ->
                  Array.iter lane_or_sig reads;
                  Array.iter lane_or_mem read_mems;
                  Array.iter lane_or_sig g.proc_nb_writes.(pid);
                  Array.iter lane_or_mem g.proc_write_mems.(pid));
              let packing = config.mode <> No_redundancy in
              if packing && Hashtbl.length lane_ff_shared > 0 then
                Hashtbl.clear lane_ff_shared;
              lane_drive ~packing ~use_valid:false ~mark_valid:false
                ~account:true 0 do_fault
            end
            else begin
              begin_set ();
              (match config.mode with
              | No_redundancy -> add_all_live ()
              | Explicit_only | Full ->
                  Array.iter add_sig_faults reads;
                  Array.iter add_mem_faults read_mems;
                  Array.iter add_sig_faults g.proc_nb_writes.(pid);
                  Array.iter add_mem_faults g.proc_write_mems.(pid));
              Ivec.iter (fun f -> do_fault ~dedup:false f) fset
            end;
            stats.Stats.bn_skipped_implicit <-
              stats.Stats.bn_skipped_implicit + !implicit;
            let expl_here =
              live_at - List.length suppressed_here - !executed - !implicit
            in
            stats.Stats.bn_skipped_explicit <-
              stats.Stats.bn_skipped_explicit + expl_here;
            per_proc_expl.(pid) <- per_proc_expl.(pid) + expl_here)
          fired;
        (* suppressed faults keep their (and the good network's) old register
           values: capture them before the commit moves the good values *)
        List.iter
          (fun (pid, f) -> if good_fired.(pid) then preserve_for pid f)
          !suppress;
        (* solo activations: the faulty network sees an edge the good one
           does not *)
        List.iter
          (fun (pid, f) ->
            if (not good_fired.(pid)) && live.(f) then begin
              cur_fault := f;
              cur_pid := pid;
              stats.Stats.bn_fault_exec <- stats.Stats.bn_fault_exec + 1;
              per_proc_exec.(pid) <- per_proc_exec.(pid) + 1;
              Hashtbl.replace executed_pairs (pid, f) ();
              Compile.exec_i (get_cp pid) fault_reader ff_fault_writer
            end)
          !solo;
        bn_end ();
        (* ---- commit ---- *)
        List.iter
          (fun pid ->
            List.iter
              (fun (id, v) -> write_good id v)
              (Hashtbl.find good_writes_of pid);
            List.iter
              (fun (m, a, v) -> write_good_mem m a v)
              (Hashtbl.find good_mem_writes_of pid))
          fired;
        List.iter (fun (f, id, v) -> if live.(f) then set_diff id f v)
          (List.rev !preserved);
        List.iter
          (fun (f, m, a, v) -> if live.(f) then set_mem_diff m f a v)
          (List.rev !preserved_mem);
        List.iter
          (fun (pid, f) ->
            if live.(f) then
              List.iter
                (fun (id, v) -> set_diff id f (force_if_site f id v))
                (Hashtbl.find good_writes_of pid))
          !recon;
        List.iter
          (fun (f, id, v) ->
            if live.(f) then set_diff id f (force_if_site f id v))
          (List.rev !fault_nba);
        (* Memory commits must respect each faulty network's program order
           across processes: the same memory may be written by several
           processes, and a fault that executed its own copy of one process
           still follows the good copies of all the others. For every fault
           touched this batch, replay its effective write sequence in
           process order: suppressed process -> no writes, executed
           process -> its own writes, otherwise -> the good writes. *)
        let fault_mem_writes = Hashtbl.create 8 in
        List.iter
          (fun (pid, f, m, a, v) ->
            if live.(f) then
              match Hashtbl.find_opt fault_mem_writes (pid, f) with
              | None -> Hashtbl.add fault_mem_writes (pid, f) (ref [ (m, a, v) ])
              | Some l -> l := (m, a, v) :: !l)
          (List.rev !fault_nba_mem);
        let any_good_mem_write =
          List.exists (fun pid -> Hashtbl.find good_mem_writes_of pid <> []) fired
        in
        let involved = Hashtbl.create 16 in
        let involve f = if live.(f) then Hashtbl.replace involved f () in
        if any_good_mem_write || Hashtbl.length fault_mem_writes > 0 then begin
          Hashtbl.iter (fun (_, f) () -> involve f) executed_pairs;
          List.iter (fun (_, f) -> involve f) !suppress;
          List.iter (fun (_, f) -> involve f) !recon
        end;
        let solo_pids_of f =
          List.filter_map
            (fun (pid, sf) ->
              if sf = f && not good_fired.(pid) then Some pid else None)
            !solo
        in
        let is_suppressed_at pid f =
          List.exists (fun (p, sf) -> p = pid && sf = f) !suppress
        in
        Hashtbl.iter
          (fun f () ->
            let pids = List.sort_uniq compare (fired @ solo_pids_of f) in
            List.iter
              (fun pid ->
                if is_suppressed_at pid f then ()
                else if Hashtbl.mem executed_pairs (pid, f) then
                  match Hashtbl.find_opt fault_mem_writes (pid, f) with
                  | Some l ->
                      List.iter
                        (fun (m, a, v) -> set_mem_diff m f a v)
                        (List.rev !l)
                  | None -> ()
                else if good_fired.(pid) then
                  List.iter
                    (fun (m, a, v) -> set_mem_diff m f a v)
                    (Hashtbl.find good_mem_writes_of pid))
              pids)
          involved;
        settle ()
      end
    done
  in
  (* ---- observation ---- *)
  let observe cycle =
    (match Atomic.get chaos_corrupt_diff with
    | None -> ()
    | Some hook -> (
        match hook ~cycle ~nfaults with
        | Some f
          when f >= 0 && f < nfaults && live.(f) && Array.length g.outputs > 0
          ->
            let o = g.outputs.(0) in
            set_diff o f (Int64.logxor (fault_value f o) 1L);
            (* out-of-band corruption invalidates every cached lane
               outcome of this fault *)
            if lanes_on then lane_inval_all f
        | Some _ | None -> ()));
    (match probe with
    | Some f ->
        f cycle
          (fun fid id -> Bits.make (State.width st id) (fault_value fid id))
          (fun fid m a ->
            Bits.make (State.mem_width st m) (fault_mem_value fid m a))
    | None -> ());
    Array.iter
      (fun o ->
        let tbl = diffs.(o) in
        if Diffstore.length tbl > 0 then begin
          Ivec.clear scratch_dead;
          let good = State.get st o in
          Diffstore.iter tbl (fun f v ->
              if live.(f) && v <> good then Ivec.push scratch_dead f);
          Ivec.iter
            (fun f ->
              detected.(f) <- true;
              detection_cycle.(f) <- cycle;
              live.(f) <- false;
              if lanes_on then begin
                let grp = Lanes.group f in
                Bigarray.Array1.unsafe_set live_lanes grp
                  (Int64.logand
                     (Bigarray.Array1.unsafe_get live_lanes grp)
                     (Int64.lognot (Lanes.bit f)))
              end;
              decr n_live)
            scratch_dead
        end)
      g.outputs;
    !n_live > 0
  in
  (* ---- initialisation ---- *)
  (if warm_start > 0 then begin
     (* Warm start: restore the good state from the snapshot and inject.
        Every fault in this batch activates at or after [warm_start].
        Under the cone-refined activation rule that no longer means the
        injections are no-ops: a combinationally recomputed site may
        legitimately carry a live diff here (its forced bit differs from
        the good value without having reached any register, memory or
        output yet). [set_diff] marks the fault fanout dirty, so the
        settle inside the first [step ()] rebuilds the downstream comb
        diffs before any edge detection, latch or observation runs. What
        MUST still be empty is every diff on a state-holding signal: a
        diff there persists by itself, so one surviving the injection
        means the caller batched a fault before its activation window.
        The transient guard below is the same invariant for [Flip_at]. *)
     (match goodtrace with
     | Some { Goodtrace.trace; start } ->
         State.blit ~src:(Goodtrace.snapshot_at trace start) ~dst:st
     | None -> assert false);
     Array.iter
       (fun (f : Fault.t) ->
         match f.stuck with
         | Fault.Flip_at c when c < warm_start ->
             raise
               (Goodtrace.Trace_mismatch
                  (Printf.sprintf
                     "transient fault %d fires at cycle %d, before warm \
                      start %d"
                     f.fid c warm_start))
         | _ ->
             set_diff f.signal f.fid
               (Fault.force_i64 f (State.get st f.signal)))
       faults;
     let is_state = Array.make (Array.length diffs) false in
     Array.iter
       (fun pid ->
         Array.iter (fun id -> is_state.(id) <- true) g.proc_nb_writes.(pid))
       g.ff_procs;
     Array.iteri
       (fun id tbl ->
         if is_state.(id) && not (Diffstore.is_empty tbl) then
           raise
             (Goodtrace.Trace_mismatch
                (Printf.sprintf
                   "state fault on signal %d active before warm-start cycle \
                    %d" id warm_start)))
       diffs
   end
   else begin
     Array.iter
       (fun (f : Fault.t) ->
         set_diff f.signal f.fid (Fault.force_i64 f (State.get st f.signal)))
       faults;
     for pos = 0 to ncomb - 1 do
       good_dirty.(pos) <- true;
       fault_dirty.(pos) <- true
     done;
     dirty_lo := 0;
     dirty_hi := ncomb - 1;
     settle ();
     match gx with Gcap b -> Goodtrace.rec_init_done b | _ -> ()
   end);
  for ci = 0 to nclk - 1 do
    let c = g.clocks.(ci) in
    prev_clock_good.(ci) <- State.get st c;
    Diffstore.clear prev_clock_diff.(ci);
    Diffstore.iter diffs.(c) (fun f v ->
        if live.(f) then Diffstore.set prev_clock_diff.(ci) f v)
  done;
  (* ---- drive the workload ---- *)
  let inject_transients cycle =
    match Hashtbl.find_opt transients_at cycle with
    | None -> ()
    | Some l ->
        List.iter
          (fun (f : Fault.t) ->
            if live.(f.fid) then begin
              let cur = fault_value f.fid f.signal in
              set_diff f.signal f.fid
                (Bitops.force_bit cur f.bit (not (Bitops.bit cur f.bit)))
            end)
          l
  in
  (match gx with
  | Gcold ->
      Workload.run ~on_cycle_start:inject_transients w
        ~set_input:(fun id v -> write_good id (Bits.to_int64 v))
        ~step ~observe
  | Gcap b ->
      (* A capture run has no faults, so [observe] would stop after the
         first cycle (nothing is live); force the full workload and record
         the output vector and snapshot boundary each cycle. *)
      Workload.run ~on_cycle_start:inject_transients w
        ~set_input:(fun id v ->
          let v64 = Bits.to_int64 v in
          Goodtrace.rec_input b id v64;
          write_good id v64)
        ~step:(fun () ->
          Goodtrace.rec_step b;
          step ())
        ~observe:(fun cycle ->
          let (_ : bool) = observe cycle in
          Goodtrace.rec_cycle_done b
            ~outputs:(Array.map (fun o -> State.get st o) g.outputs)
            ~state:st;
          true)
  | Grep cur ->
      (* Same per-cycle protocol as {!Workload.run}, but inputs and clock
         toggles come from the recorded stream. [drive] is still called
         for its side effects — budget watchdogs and drive validation
         piggyback on it — and its (identical) entries are discarded. *)
      stats.Stats.good_cycles_skipped <- warm_start;
      let continue_ = ref true in
      let cycle = ref warm_start in
      while !continue_ && !cycle < w.Workload.cycles do
        inject_transients !cycle;
        ignore (w.Workload.drive !cycle);
        for _phase = 1 to 2 do
          let rec replay_inputs () =
            match Goodtrace.take_input cur with
            | Some (id, v) ->
                write_good id v;
                replay_inputs ()
            | None -> ()
          in
          replay_inputs ();
          Goodtrace.take_step cur;
          step ()
        done;
        continue_ := observe !cycle;
        incr cycle
      done);
  stats.Stats.per_proc <-
    Array.mapi
      (fun pid (p : Design.proc) ->
        {
          Stats.pr_name = p.pname;
          pr_exec = per_proc_exec.(pid);
          pr_impl = per_proc_impl.(pid);
          pr_expl = per_proc_expl.(pid);
        })
      d.procs;
  (match Sys.getenv_opt "ERASER_PROC_STATS" with
  | Some _ ->
      Array.iter
        (fun (r : Stats.proc_row) ->
          Format.eprintf "proc %-16s exec=%d impl=%d expl=%d@." r.pr_name
            r.pr_exec r.pr_impl r.pr_expl)
        stats.Stats.per_proc
  | None -> ());
  (* debug knob: simulate an engine bug by flipping one verdict, so the
     online divergence check of the resilient runner can be exercised *)
  (match config.corrupt_verdict with
  | Some f when f >= 0 && f < nfaults ->
      detected.(f) <- not detected.(f);
      detection_cycle.(f) <- (if detected.(f) then 0 else -1)
  | Some _ | None -> ());
  let wall = Stats.now () -. t_start in
  (* One engine run is single-threaded, so its CPU time equals its wall
     time. [Stats.add] sums [cpu_seconds] across workers but not
     [total_seconds] — coordinators overwrite the latter with campaign wall
     time. *)
  stats.Stats.cpu_seconds <- wall;
  stats.Stats.total_seconds <- wall;
  if tracing then Obs.Trace.span_end "fault_sim_run" run_t0;
  if metrics_on then begin
    Obs.Metrics.add "engine.runs" 1;
    (match gx with
    | Grep _ ->
        Obs.Metrics.add "goodtrace.replays" 1;
        if warm_start > 0 then begin
          Obs.Metrics.add "goodtrace.snapshot_restores" 1;
          Obs.Metrics.add "goodtrace.cycles_skipped" warm_start
        end
    | Gcap _ | Gcold -> ());
    Obs.Metrics.add "engine.bn_good" stats.Stats.bn_good;
    Obs.Metrics.add "engine.bn_fault_exec" stats.Stats.bn_fault_exec;
    Obs.Metrics.add "engine.bn_skip_explicit" stats.Stats.bn_skipped_explicit;
    Obs.Metrics.add "engine.bn_skip_implicit" stats.Stats.bn_skipped_implicit;
    Obs.Metrics.add "engine.rtl_good_eval" stats.Stats.rtl_good_eval;
    Obs.Metrics.add "engine.rtl_fault_eval" stats.Stats.rtl_fault_eval;
    if lanes_on then begin
      Obs.Metrics.add "lanes.packed" !lanes_packed_total;
      Obs.Metrics.add "lanes.scalar_fallback" !lanes_fallback_execs;
      Obs.Metrics.add "lanes.shared_exec" !lanes_shared;
      Obs.Metrics.add "lanes.valid_skips" !lanes_skips
    end;
    Array.iter
      (fun (r : Stats.proc_row) ->
        Obs.Metrics.add ("engine.proc." ^ r.pr_name ^ ".exec") r.pr_exec;
        Obs.Metrics.add
          ("engine.proc." ^ r.pr_name ^ ".skip_implicit")
          r.pr_impl;
        Obs.Metrics.add
          ("engine.proc." ^ r.pr_name ^ ".skip_explicit")
          r.pr_expl)
      stats.Stats.per_proc;
    Obs.Metrics.merge_histogram "engine.vdg_walk_depth" vdg_hist
      ~count:!vdg_count ~sum:!vdg_sum ~max:!vdg_max;
    for f = 0 to nfaults - 1 do
      if detected.(f) then
        Obs.Metrics.observe "engine.detection_latency_cycles"
          (float_of_int detection_cycle.(f))
    done
  end;
  if lanes_on then begin
    stats.Stats.lane_groups <- lplan.Lanes.groups;
    stats.Stats.lane_occ_sum <- !lane_occ_sum;
    stats.Stats.lane_occ_rounds <- !lane_occ_rounds;
    stats.Stats.scalar_fallbacks <- lplan.Lanes.fallback_count
  end;
  Fault.make_result ~detected ~detection_cycle ~stats ~wall_time:wall ()

let run_i ?config ?probe ?goodtrace inst w faults =
  run_gmode ?config ?probe ?goodtrace ~capture_into:None inst w faults

let run ?config ?probe ?goodtrace g w faults =
  run_i ?config ?probe ?goodtrace (instance g) w faults

let run_batch ?config ?probe ?goodtrace ?instance:existing g w faults ~ids =
  let sub =
    Array.mapi (fun i id -> { faults.(id) with Fault.fid = i }) ids
  in
  let inst =
    match existing with Some inst -> inst | None -> instance g
  in
  run_i ?config ?probe ?goodtrace inst w sub

let default_snapshot_every ~cycles = max 8 (cycles / 16)

let capture ?config ?snapshot_every ?instance:existing (g : Elaborate.t)
    (w : Workload.t) =
  let inst = match existing with Some i -> i | None -> instance g in
  let k =
    match snapshot_every with
    | Some k -> max 1 k
    | None -> default_snapshot_every ~cycles:w.Workload.cycles
  in
  let b =
    Goodtrace.builder ~cycles:w.Workload.cycles ~clock:w.Workload.clock
      ~nout:(Array.length g.Elaborate.outputs) ~snapshot_every:k
  in
  let (_ : Fault.result) =
    run_gmode ?config ~capture_into:(Some b) inst w [||]
  in
  let t = Goodtrace.finish b in
  Obs.Metrics.add "goodtrace.captures" 1;
  Obs.Metrics.add "goodtrace.capture_bytes" t.Goodtrace.capture_bytes;
  t

(* Signals driven by the comb network (continuous assigns and comb-process
   blocking writes): their pristine zero values are swept during the init
   settle before any topo-later reader can observe them, which is what
   makes the conservative rule in {!Goodtrace.first_divergence} sound. *)
let comb_driven (g : Elaborate.t) =
  let driven = Array.make (Design.num_signals g.Elaborate.design) false in
  Array.iter
    (fun ws -> Array.iter (fun id -> driven.(id) <- true) ws)
    g.Elaborate.comb_writes;
  driven

let sites_of faults =
  Array.map
    (fun (f : Fault.t) ->
      {
        Goodtrace.s_signal = f.signal;
        s_bit = f.bit;
        s_kind =
          (match f.stuck with
          | Fault.Stuck_at_0 -> Goodtrace.Stuck0
          | Fault.Stuck_at_1 -> Goodtrace.Stuck1
          | Fault.Flip_at c -> Goodtrace.Transient c);
      })
    faults

let legacy_activations trace (g : Elaborate.t) faults =
  Goodtrace.first_divergence trace ~comb_driven:(comb_driven g)
    (sites_of faults)

let activations ?cone trace (g : Elaborate.t) faults =
  let cone = match cone with Some c -> c | None -> Cone.build g in
  Goodtrace.activations trace ~cone (sites_of faults)

let statically_undetectable ?cone (g : Elaborate.t) faults =
  let cone = match cone with Some c -> c | None -> Cone.build g in
  Array.map
    (fun (f : Fault.t) -> not (Cone.observable cone f.signal))
    faults
