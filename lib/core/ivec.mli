(** Growable int vector.

    The concurrent engine's per-node fault sets and the harness's
    work-stealing deques both need a compact, allocation-light stack of
    ints; this is the one shared implementation. Not thread-safe — every
    instance must be confined to one domain (or externally locked). *)

type t

(** [create ?capacity ()] — empty vector; [capacity] is the initial backing
    size (default 64, clamped to at least 1). *)
val create : ?capacity:int -> unit -> t

val length : t -> int
val is_empty : t -> bool

(** Drop every element (keeps the backing storage). *)
val clear : t -> unit

(** Append, doubling the backing array when full. *)
val push : t -> int -> unit

(** Remove and return the last element; raises [Invalid_argument] when
    empty. *)
val pop : t -> int

(** [get v i] — [i] must be within [0, length v). *)
val get : t -> int -> int

(** Iterate in insertion order. *)
val iter : (int -> unit) -> t -> unit

val to_array : t -> int array
