(** Specialized int-keyed stores for per-fault divergence bookkeeping.

    The concurrent engine keeps, for every signal (and memory), the set of
    faults whose value currently differs from the good network's — small
    maps keyed by fault id (or fault-relative word index) holding unboxed
    int64 payloads. The generic [Hashtbl] previously used here costs a
    bucket-list cell and a boxed [Bits.t] per entry plus polymorphic
    hashing on every probe; these open-addressing tables store keys in a
    plain int array and payloads in an int64 Bigarray, probe with an
    inlined integer mix, and are sized from the configured fault-batch
    width instead of magic constants.

    Iteration visits entries in slot order — deterministic for a given
    insertion history. Engine reports do not depend on this order (every
    entry is keyed by an independent fault), but determinism keeps runs
    reproducible.

    Keys must be non-negative (fault ids and word keys are). *)

type t

(** Unboxed lane-mask accumulator (one 64-bit word per lane group), shared
    with the engine's candidate collection. *)
type masks = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

(** [create ~expect ()] sizes the table for [expect] expected entries (the
    fault-batch width); the table grows as needed beyond that.
    [lane_groups] (default 0) enables lane-mask maintenance: the table
    keeps, per group [g], a 64-bit presence mask with bit [key land 63]
    set for every live key in [g*64 .. g*64+63]. Keys at or beyond
    [lane_groups * 64] are stored normally but not mask-tracked. *)
val create : ?lane_groups:int -> expect:int -> unit -> t

val length : t -> int
val is_empty : t -> bool
val mem : t -> int -> bool

(** Current slot-array capacity (exposed for the shrink-on-clear test). *)
val capacity : t -> int

(** Number of lane groups this table tracks (0 when tracking is off). *)
val lane_groups : t -> int

(** [lane_mask t g] — presence mask of lane group [g] ([0L] when out of
    range or tracking is off). *)
val lane_mask : t -> int -> int64

(** [lane_or_into t dst] ORs every tracked group mask into [dst]
    (element-wise, over the shorter of the two extents) without boxing
    the intermediate words. *)
val lane_or_into : t -> masks -> unit

(** [find t key ~default] — the stored payload, or [default] when absent. *)
val find : t -> int -> default:int64 -> int64

(** [set t key v] inserts or replaces. *)
val set : t -> int -> int64 -> unit

(** [remove t key] — no-op when absent. *)
val remove : t -> int -> unit

(** Empty the table. When the slot array has grown past [shrink_factor]
    (16) times the creation-time expectation, it is reallocated back to
    that base capacity so a one-off giant batch does not pin its
    high-water footprint. *)
val clear : t -> unit

(** Slot-order iteration. The callback must not mutate the table. *)
val iter : t -> (int -> int64 -> unit) -> unit

val iter_keys : t -> (int -> unit) -> unit

(** Open-addressing int -> int refcount table ([bump] removes entries that
    drop to zero) — the [mem_fault_words] "does fault [f] diverge anywhere
    in this memory" index. Supports the same optional lane-mask tracking
    and shrink-on-clear policy as the payload table. *)
module Counts : sig
  type t

  val create : ?lane_groups:int -> expect:int -> unit -> t
  val length : t -> int
  val mem : t -> int -> bool
  val lane_mask : t -> int -> int64
  val lane_or_into : t -> masks -> unit
  val bump : t -> int -> int -> unit
  val iter_keys : t -> (int -> unit) -> unit
  val clear : t -> unit
end
