(** Specialized int-keyed stores for per-fault divergence bookkeeping.

    The concurrent engine keeps, for every signal (and memory), the set of
    faults whose value currently differs from the good network's — small
    maps keyed by fault id (or fault-relative word index) holding unboxed
    int64 payloads. The generic [Hashtbl] previously used here costs a
    bucket-list cell and a boxed [Bits.t] per entry plus polymorphic
    hashing on every probe; these open-addressing tables store keys in a
    plain int array and payloads in an int64 Bigarray, probe with an
    inlined integer mix, and are sized from the configured fault-batch
    width instead of magic constants.

    Iteration visits entries in slot order — deterministic for a given
    insertion history. Engine reports do not depend on this order (every
    entry is keyed by an independent fault), but determinism keeps runs
    reproducible.

    Keys must be non-negative (fault ids and word keys are). *)

type t

(** [create ~expect] sizes the table for [expect] expected entries (the
    fault-batch width); the table grows as needed beyond that. *)
val create : expect:int -> t

val length : t -> int
val is_empty : t -> bool
val mem : t -> int -> bool

(** [find t key ~default] — the stored payload, or [default] when absent. *)
val find : t -> int -> default:int64 -> int64

(** [set t key v] inserts or replaces. *)
val set : t -> int -> int64 -> unit

(** [remove t key] — no-op when absent. *)
val remove : t -> int -> unit

val clear : t -> unit

(** Slot-order iteration. The callback must not mutate the table. *)
val iter : t -> (int -> int64 -> unit) -> unit

val iter_keys : t -> (int -> unit) -> unit

(** Open-addressing int -> int refcount table ([bump] removes entries that
    drop to zero) — the [mem_fault_words] "does fault [f] diverge anywhere
    in this memory" index. *)
module Counts : sig
  type t

  val create : expect:int -> t
  val length : t -> int
  val mem : t -> int -> bool
  val bump : t -> int -> int -> unit
  val iter_keys : t -> (int -> unit) -> unit
  val clear : t -> unit
end
