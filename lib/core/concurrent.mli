(** The Eraser concurrent (batched) RTL fault-simulation engine
    (paper Section IV, Fig. 4).

    One good network is simulated; each fault is carried as a sparse set of
    {e diffs} — (signal, fault) and (memory word, fault) entries holding the
    faulty network's value where it differs from the good value (the
    visible bad gates). RTL nodes are re-evaluated per fault only when the
    fault has a visible diff on the node's cone (steps 2-3). Behavioral
    nodes activated by the good network process their fault copies under one
    of three redundancy policies (steps 4-6):

    - {!No_redundancy} (Eraser--): every live fault executes its copy at
      every good activation;
    - {!Explicit_only} (Eraser-): faults whose inputs carry no diff are
      skipped (input-comparison redundancy, as in prior multi-level
      concurrent simulators);
    - {!Full} (Eraser): additionally, faults whose inputs do differ run
      Algorithm 1 over the visibility dependency graph; provably
      path-and-dependency-identical executions are skipped.

    Skipped and path-diverged fault copies are reconciled at the
    nonblocking-commit phase so the diff store stays exact. Clock-cone
    faults are tracked through per-fault edge detection; with
    [defer_edge_eval] (the paper's fake-event fix) edge evaluation is
    postponed until the combinational settle completes, and the faulty edge
    is derived from the fault's own clock view. Disabling it reproduces the
    premature-activation bug the paper describes (fault copies blindly
    follow good edges), for the regression test. *)

open Rtlir
open Faultsim

type mode = No_redundancy | Explicit_only | Full

val mode_name : mode -> string

type config = {
  mode : mode;
  defer_edge_eval : bool;
  instrument : bool;
  exact_mem_check : bool;
      (** per-word memory visibility in the Algorithm 1 walk (the default);
          [false] falls back to the conservative whole-memory rule — the
          ablation axis DESIGN.md calls out *)
  corrupt_verdict : int option;
      (** debug knob: flip the verdict of this fault id after the run,
          simulating an engine bug. Used to exercise the resilient runner's
          online divergence quarantine; ids out of range are ignored. *)
  lanes : bool;
      (** lane-packed batching: group the batch into 64-wide lane groups
          (fault id [f] = lane [f land 63] of group [f lsr 6]) and drive
          each node's per-fault round from the diff stores' lane masks
          instead of per-signal key iteration, with per-node lane validity
          skip and identical-overlay execution sharing. Transients fall
          back to the scalar path. Verdicts are bit-identical to scalar
          mode; execution counters (not verdicts) may differ. Default
          [false]. *)
}

val default_config : config

(** Chaos seam, installed (and uninstalled) by [Harness.Chaos]: consulted
    once per observation point of every run in this process. Returning
    [Some f] flips the low bit of fault [f]'s view of the first output
    port before the detection scan — a deterministic stand-in for a
    corrupted diff-store entry. Out-of-range and already-detected fault
    ids are ignored. The disabled path is a single [Atomic.get]; leave
    this at [None] except under chaos testing. *)
val chaos_corrupt_diff :
  (cycle:int -> nfaults:int -> int option) option Atomic.t

(** The immutable compiled form of one elaborated design: every behavioral
    body and continuous-assign expression, compiled once. All per-campaign
    mutable state is allocated inside each run, so one instance is reusable
    across any number of {e sequential} runs — the parallel harness builds
    one instance per worker domain and amortises compilation over that
    worker's batches. An instance must not be used by two domains at the
    same time. *)
type instance

val instance : Elaborate.t -> instance

(** Run a fault-simulation campaign. The result's detected set matches the
    serial per-fault oracle for any mode. Setting the environment variable
    [ERASER_PROC_STATS] prints per-process executed/implicit counters to
    stderr at the end of the run (a profiling aid).

    [?goodtrace] warm-starts the run from a captured good trace (see
    {!capture}): the good network is not re-simulated — its recorded
    writes are replayed through the engine's good-write seams, so
    [bn_good] and [rtl_good_eval] stay at zero — and when
    [goodtrace.start > 0] the run begins at that snapshot cycle, skipping
    the dead prefix. Every fault in the batch must activate at or after
    [goodtrace.start] (see {!activations}); the engine raises
    {!Sim.Goodtrace.Trace_mismatch} if one provably does not. Verdicts and
    detection cycles are identical to a cold run's. *)
val run :
  ?config:config ->
  ?probe:(int -> (int -> int -> Bits.t) -> (int -> int -> int -> Bits.t) -> unit) ->
  ?goodtrace:Sim.Goodtrace.warm ->
  Elaborate.t ->
  Workload.t ->
  Fault.t array ->
  Fault.result

(** [run ?probe] — when given, [probe cycle view mem_view] is called at every
    observation point; [view fault_id signal_id] reads the faulty network's
    current value (good value overlaid with the fault's diffs). Used by the
    differential tests to localise divergences. *)

(** [run_i inst w faults] — as {!run}, over a prebuilt {!instance} (skips
    recompilation; the per-batch entry point of the parallel harness). *)
val run_i :
  ?config:config ->
  ?probe:(int -> (int -> int -> Bits.t) -> (int -> int -> int -> Bits.t) -> unit) ->
  ?goodtrace:Sim.Goodtrace.warm ->
  instance ->
  Workload.t ->
  Fault.t array ->
  Fault.result

(** [run_batch g w faults ~ids] runs the subset [ids] of the campaign's
    fault list: the selected faults are renumbered to dense ids [0..n-1]
    (the engine's indexing invariant) and simulated together. The result is
    indexed by position in [ids]; because faulty networks never interact,
    each fault's verdict equals its verdict in a whole-list run — the
    property the resilient runner's batching relies on. [?instance] reuses
    a prebuilt instance instead of recompiling the design. *)
val run_batch :
  ?config:config ->
  ?probe:(int -> (int -> int -> Bits.t) -> (int -> int -> int -> Bits.t) -> unit) ->
  ?goodtrace:Sim.Goodtrace.warm ->
  ?instance:instance ->
  Elaborate.t ->
  Workload.t ->
  Fault.t array ->
  ids:int array ->
  Fault.result

(** The fixed snapshot-interval heuristic, [max 8 (cycles / 16)] — the
    default when [capture] is given no [?snapshot_every]. Exposed as the
    single source of truth so the schedule planner can size its adaptive
    snapshot budget from the same rule. *)
val default_snapshot_every : cycles:int -> int

(** [capture g w] runs the good network once — no faults — and records
    every good event (inputs, assign results, behavioral writes and branch
    choices), the per-cycle output vectors, and full {!Sim.State} snapshots
    every [?snapshot_every] cycles (default [max 8 (cycles / 16)]) plus one
    at the end of the workload. The returned trace is immutable and safe to
    share read-only across worker domains; one capture serves every
    subsequent warm-started batch of the same (design, workload). *)
val capture :
  ?config:config ->
  ?snapshot_every:int ->
  ?instance:instance ->
  Elaborate.t ->
  Workload.t ->
  Sim.Goodtrace.t

(** [activations trace g faults] is each fault's activation window start:
    the first cycle its injection can make the faulty network persistently
    or observably diverge from the good one, under the cone-refined rule
    (see {!Sim.Goodtrace.activations} and {!Flow.Cone}). A batch whose
    faults all activate at or after cycle [a] can warm-start from
    [Sim.Goodtrace.start_for trace ~activation:a] with verdicts provably
    unchanged. [?cone] reuses a prebuilt analysis instead of rebuilding
    one per call. *)
val activations :
  ?cone:Flow.Cone.t -> Sim.Goodtrace.t -> Elaborate.t -> Fault.t array ->
  int array

(** The pre-cone conservative rule ({!Sim.Goodtrace.first_divergence}):
    first cycle the forced bit differs from a recorded good value at all.
    Kept as the baseline the activation bench compares against. *)
val legacy_activations :
  Sim.Goodtrace.t -> Elaborate.t -> Fault.t array -> int array

(** [statically_undetectable g faults] flags faults whose site signal has
    no structural path to any design output ({!Flow.Cone.observable} is
    false): no input stimulus can ever expose them, so a campaign may
    skip simulating them entirely and report the verdict (undetected)
    without running a single cycle. *)
val statically_undetectable :
  ?cone:Flow.Cone.t -> Elaborate.t -> Fault.t array -> bool array
