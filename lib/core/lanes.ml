open Faultsim

let width = 64
let ngroups nfaults = (nfaults + width - 1) / width
let group f = f lsr 6
let lane f = f land 63
let bit f = Int64.shift_left 1L (f land 63)

(* Stuck-at faults pack: their divergence is a standing single-bit force
   whose diffs the lane masks index exactly. Transients ([Flip_at]) fall
   back to the scalar bookkeeping path: their injection is a cycle-stamped
   state flip whose suppress/solo edge handling stays per-fault. *)
let compatible (f : Fault.t) = not (Fault.is_transient f)

type plan = {
  nfaults : int;
  groups : int;  (** lane groups covering ids [0 .. nfaults-1], 64 wide *)
  packed : int64 array;  (** per group: lanes eligible for packed eval *)
  live : int64 array;  (** per group: lanes holding a fault at all *)
  packed_count : int;
  fallback_count : int;
}

let plan faults =
  let nfaults = Array.length faults in
  let groups = ngroups nfaults in
  let packed = Array.make (max groups 1) 0L in
  let live = Array.make (max groups 1) 0L in
  let packed_count = ref 0 in
  Array.iteri
    (fun f (fa : Fault.t) ->
      live.(group f) <- Int64.logor live.(group f) (bit f);
      if compatible fa then begin
        incr packed_count;
        packed.(group f) <- Int64.logor packed.(group f) (bit f)
      end)
    faults;
  {
    nfaults;
    groups;
    packed;
    live;
    packed_count = !packed_count;
    fallback_count = nfaults - !packed_count;
  }

let popcount x =
  let x = Int64.sub x (Int64.logand (Int64.shift_right_logical x 1) 0x5555555555555555L) in
  let x =
    Int64.add
      (Int64.logand x 0x3333333333333333L)
      (Int64.logand (Int64.shift_right_logical x 2) 0x3333333333333333L)
  in
  let x = Int64.logand (Int64.add x (Int64.shift_right_logical x 4)) 0x0F0F0F0F0F0F0F0FL in
  Int64.to_int (Int64.shift_right_logical (Int64.mul x 0x0101010101010101L) 56)

(* Index of the single set bit in a power of two (de Bruijn multiply). *)
let debruijn = 0x03F79D71B4CB0A89L

let tz_table =
  let t = Array.make 64 0 in
  for i = 0 to 63 do
    t.(Int64.to_int
         (Int64.shift_right_logical
            (Int64.mul (Int64.shift_left 1L i) debruijn)
            58))
    <- i
  done;
  t

let[@inline] bit_index b =
  tz_table.(Int64.to_int (Int64.shift_right_logical (Int64.mul b debruijn) 58))

let iter_lanes m f =
  let m = ref m in
  while !m <> 0L do
    let b = Int64.logand !m (Int64.neg !m) in
    f (bit_index b);
    m := Int64.logxor !m b
  done
