(** Lane packing for the concurrent engine: group a fault batch into
    64-wide lane groups so one behavior-network pass can advance every
    diverged lane of a group at once.

    A fault's lane assignment is positional — fault id [f] occupies lane
    [f land 63] of group [f lsr 6] — so lane-group membership never
    reorders the batch and verdict demux is the identity. The planner
    classifies each fault as {e packed} (eligible for the mask-driven
    evaluation path, with its per-lane validity skip and identical-overlay
    execution sharing) or {e scalar fallback} (transients, whose
    cycle-stamped injection and suppress/solo edge handling stay strictly
    per-fault). Every fault lands in exactly one group, and in exactly one
    of the two classes. *)

open Faultsim

(** Lanes per group (the word width of the diff masks): 64. *)
val width : int

val ngroups : int -> int

(** [group f] / [lane f] / [bit f] — positional lane assignment of fault
    id [f]. *)
val group : int -> int

val lane : int -> int
val bit : int -> int64

(** A fault packs unless it is a transient ([Flip_at]). *)
val compatible : Fault.t -> bool

type plan = {
  nfaults : int;
  groups : int;  (** lane groups covering ids [0 .. nfaults-1], 64 wide *)
  packed : int64 array;  (** per group: lanes eligible for packed eval *)
  live : int64 array;  (** per group: lanes holding a fault at all *)
  packed_count : int;
  fallback_count : int;
}

val plan : Fault.t array -> plan

(** Number of set bits. *)
val popcount : int64 -> int

(** [iter_lanes m f] calls [f] with the index of every set bit of [m], in
    ascending order. *)
val iter_lanes : int64 -> (int -> unit) -> unit
