open Rtlir
open Sim
open Faultsim

(* One golden (fault-free) simulation: the per-cycle output trace plus the
   behavioral-execution count — the single implementation behind both
   [golden_trace] and the campaign runner below. *)
let golden_run ~config g (w : Workload.t) =
  let sim = Simulator.create ~config g in
  let trace = Array.make w.cycles [||] in
  Workload.run w
    ~set_input:(Simulator.set_input sim)
    ~step:(fun () -> Simulator.step sim)
    ~observe:(fun c ->
      trace.(c) <- Simulator.outputs sim;
      true);
  (trace, Simulator.proc_executions sim)

let golden_trace ~config g w = fst (golden_run ~config g w)

let same_outputs a b =
  let n = Array.length a in
  let rec scan i = i >= n || (Bits.equal a.(i) b.(i) && scan (i + 1)) in
  Array.length b = n && scan 0

let run ~config g (w : Workload.t) faults =
  let t0 = Stats.now () in
  let w =
    Workload.checked ~num_signals:(Design.num_signals g.Elaborate.design) w
  in
  let stats = Stats.create () in
  let trace, golden_execs = golden_run ~config g w in
  stats.Stats.bn_good <- golden_execs;
  let detected = Array.make (Array.length faults) false in
  let detection_cycle = Array.make (Array.length faults) (-1) in
  Array.iter
    (fun (f : Fault.t) ->
      let force =
        match f.stuck with
        | Fault.Stuck_at_0 -> Some (f.signal, f.bit, false)
        | Fault.Stuck_at_1 -> Some (f.signal, f.bit, true)
        | Fault.Flip_at _ -> None
      in
      let sim = Simulator.create ~config ?force g in
      let on_cycle_start cyc =
        match f.stuck with
        | Fault.Flip_at at when at = cyc -> Simulator.flip_bit sim f.signal f.bit
        | _ -> ()
      in
      Workload.run ~on_cycle_start w
        ~set_input:(Simulator.set_input sim)
        ~step:(fun () -> Simulator.step sim)
        ~observe:(fun c ->
          if same_outputs (Simulator.outputs sim) trace.(c) then true
          else begin
            detected.(f.fid) <- true;
            detection_cycle.(f.fid) <- c;
            false
          end);
      stats.Stats.bn_fault_exec <-
        stats.Stats.bn_fault_exec + Simulator.proc_executions sim)
    faults;
  let wall = Stats.now () -. t0 in
  stats.Stats.cpu_seconds <- wall;
  stats.Stats.total_seconds <- wall;
  Fault.make_result ~detected ~detection_cycle ~stats ~wall_time:wall ()

(* Both baselines pin the boxed representation: they model the published
   tools' per-value cost, and the representation benchmark compares the flat
   engine against them. *)
let ifsim g w faults =
  run
    ~config:
      {
        Simulator.eval = Simulator.Bytecode;
        scheduler = Simulator.Fifo;
        repr = Simulator.Boxed;
      }
    g w faults

let vfsim g w faults =
  run
    ~config:
      {
        Simulator.eval = Simulator.Closures;
        scheduler = Simulator.Cycle_based;
        repr = Simulator.Boxed;
      }
    g w faults
