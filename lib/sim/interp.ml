open Rtlir

let exec ~mem_size (r : Access.reader) (w : Access.writer) body =
  let eval e = Eval.eval ~mem_size r e in
  let rec go = function
    | Stmt.Block l -> List.iter go l
    | Stmt.If (c, t, e) -> if Bits.is_true (eval c) then go t else go e
    | Stmt.Case (scrut, arms, dflt) ->
        let v = eval scrut in
        let rec dispatch = function
          | [] -> go dflt
          | (label, arm) :: rest ->
              if Bits.equal label v then go arm else dispatch rest
        in
        dispatch arms
    | Stmt.Assign (id, e) -> w.set_blocking id (eval e)
    | Stmt.Nonblock (id, e) -> w.set_nonblocking id (eval e)
    | Stmt.Mem_write (m, addr, data) ->
        let a = Eval.wrap_address (eval addr) (mem_size m) in
        w.write_mem m a (eval data)
    | Stmt.Skip -> ()
  in
  go body

let exec_i ~sig_width ~mem_width ~mem_size (r : Access.ireader)
    (w : Access.iwriter) body =
  let eval e = Eval.eval_i ~sig_width ~mem_width ~mem_size r e in
  let rec go = function
    | Stmt.Block l -> List.iter go l
    | Stmt.If (c, t, e) -> if Bitops.is_true (eval c) then go t else go e
    | Stmt.Case (scrut, arms, dflt) ->
        (* case labels share the scrutinee's width (design-validated), so
           payload equality is full equality *)
        let v = eval scrut in
        let rec dispatch = function
          | [] -> go dflt
          | (label, arm) :: rest ->
              if Int64.equal (Bits.to_int64 label) v then go arm
              else dispatch rest
        in
        dispatch arms
    | Stmt.Assign (id, e) -> w.iset_blocking id (eval e)
    | Stmt.Nonblock (id, e) -> w.iset_nonblocking id (eval e)
    | Stmt.Mem_write (m, addr, data) ->
        let a = Eval.wrap_address_i (eval addr) (mem_size m) in
        w.iwrite_mem m a (eval data)
    | Stmt.Skip -> ()
  in
  go body
