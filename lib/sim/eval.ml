open Rtlir

let wrap_address addr size =
  Int64.to_int (Int64.unsigned_rem (Bits.to_int64 addr) (Int64.of_int size))

let apply_unop op a =
  match op with
  | Expr.Not -> Bits.lognot a
  | Expr.Neg -> Bits.neg a
  | Expr.Red_and -> Bits.reduce_and a
  | Expr.Red_or -> Bits.reduce_or a
  | Expr.Red_xor -> Bits.reduce_xor a

let apply_binop op a b =
  match op with
  | Expr.Add -> Bits.add a b
  | Expr.Sub -> Bits.sub a b
  | Expr.Mul -> Bits.mul a b
  | Expr.Divu -> Bits.divu a b
  | Expr.Modu -> Bits.modu a b
  | Expr.And -> Bits.logand a b
  | Expr.Or -> Bits.logor a b
  | Expr.Xor -> Bits.logxor a b
  | Expr.Shl -> Bits.shift_left a b
  | Expr.Shru -> Bits.shift_right a b
  | Expr.Shra -> Bits.shift_right_arith a b
  | Expr.Eq -> Bits.eq a b
  | Expr.Neq -> Bits.neq a b
  | Expr.Ltu -> Bits.ltu a b
  | Expr.Leu -> Bits.leu a b
  | Expr.Gtu -> Bits.gtu a b
  | Expr.Geu -> Bits.geu a b
  | Expr.Lts -> Bits.lts a b
  | Expr.Les -> Bits.les a b
  | Expr.Gts -> Bits.gts a b
  | Expr.Ges -> Bits.ges a b

let wrap_address_i v size =
  Int64.to_int (Int64.unsigned_rem v (Int64.of_int size))

(* Payload-level AST walk. Widths are recomputed from the tree on every
   visit — the honest cost of an interpreting simulator, which carries no
   compiled plan to cache them in. *)
let eval_i ~sig_width ~mem_width ~mem_size (r : Access.ireader) e =
  let wd e = Expr.width ~sig_width ~mem_width e in
  let rec go e =
    match e with
    | Expr.Const b -> Bits.to_int64 b
    | Expr.Sig id -> r.iget id
    | Expr.Unop (op, a) -> (
        let va = go a in
        match op with
        | Expr.Not -> Bitops.lognot (wd a) va
        | Expr.Neg -> Bitops.neg (wd a) va
        | Expr.Red_and -> Bitops.reduce_and (wd a) va
        | Expr.Red_or -> Bitops.reduce_or va
        | Expr.Red_xor -> Bitops.reduce_xor va)
    | Expr.Binop (op, a, b) -> (
        let va = go a in
        let vb = go b in
        match op with
        | Expr.Add -> Bitops.add (wd a) va vb
        | Expr.Sub -> Bitops.sub (wd a) va vb
        | Expr.Mul -> Bitops.mul (wd a) va vb
        | Expr.Divu -> Bitops.divu (wd a) va vb
        | Expr.Modu -> Bitops.modu va vb
        | Expr.And -> Bitops.logand va vb
        | Expr.Or -> Bitops.logor va vb
        | Expr.Xor -> Bitops.logxor va vb
        | Expr.Shl -> Bitops.shift_left (wd a) va vb
        | Expr.Shru -> Bitops.shift_right (wd a) va vb
        | Expr.Shra -> Bitops.shift_right_arith (wd a) va vb
        | Expr.Eq -> Bitops.eq va vb
        | Expr.Neq -> Bitops.neq va vb
        | Expr.Ltu -> Bitops.ltu va vb
        | Expr.Leu -> Bitops.leu va vb
        | Expr.Gtu -> Bitops.gtu va vb
        | Expr.Geu -> Bitops.geu va vb
        | Expr.Lts -> Bitops.lts (wd a) va vb
        | Expr.Les -> Bitops.les (wd a) va vb
        | Expr.Gts -> Bitops.gts (wd a) va vb
        | Expr.Ges -> Bitops.ges (wd a) va vb)
    | Expr.Mux (sel, a, b) -> if Bitops.is_true (go sel) then go a else go b
    | Expr.Slice (a, hi, lo) -> Bitops.slice ~hi ~lo (go a)
    | Expr.Concat (a, b) -> Bitops.concat ~lo_width:(wd b) (go a) (go b)
    | Expr.Zext (a, _) -> go a
    | Expr.Sext (a, w) -> Bitops.sext ~from:(wd a) w (go a)
    | Expr.Mem_read (m, addr) ->
        r.iget_mem m (wrap_address_i (go addr) (mem_size m))
  in
  go e

let eval ~mem_size (r : Access.reader) e =
  let rec go = function
    | Expr.Const b -> b
    | Expr.Sig id -> r.get id
    | Expr.Unop (op, a) -> apply_unop op (go a)
    | Expr.Binop (op, a, b) -> apply_binop op (go a) (go b)
    | Expr.Mux (sel, a, b) -> if Bits.is_true (go sel) then go a else go b
    | Expr.Slice (a, hi, lo) -> Bits.slice (go a) ~hi ~lo
    | Expr.Concat (a, b) -> Bits.concat (go a) (go b)
    | Expr.Zext (a, w) -> Bits.zext (go a) w
    | Expr.Sext (a, w) -> Bits.sext (go a) w
    | Expr.Mem_read (m, addr) ->
        r.get_mem m (wrap_address (go addr) (mem_size m))
  in
  go e
