(** Closure compilation of expressions and behavioral nodes — the compiled
    ("Verilator-style") evaluation path used by VFsim and the concurrent
    engines.

    Expressions compile once into nested closures; repeated evaluation then
    skips AST dispatch. Behavioral bodies compile into their CFG form:
    segments become closure sequences, decisions become a compiled selector
    plus a branch chooser. The compiled proc doubles as the runtime carrier
    for Algorithm 1: it records the good execution's decisions and exposes
    the VDG and per-decision fault evaluation hooks. *)

open Rtlir
open Flow

type compiled_expr = Access.reader -> Bits.t

val expr : mem_size:(int -> int) -> Expr.t -> compiled_expr

type t = {
  cfg : Cfg.t;
  vdg : Vdg.t;
  segments : (Access.reader -> Access.writer -> unit) array array;
      (** per CFG node id: compiled simple statements (segments only) *)
  selectors : compiled_expr array;  (** per CFG node id (decisions only) *)
  choosers : (Bits.t -> int) array;  (** per CFG node id (decisions only) *)
  seg_sites : (int * int * compiled_expr) array array;
      (** per CFG node id (segments only): memory-read sites as (memory,
          word count, compiled address) — evaluated under the {e good}
          reader by the redundancy walk *)
  has_blocking : bool;
      (** body contains blocking writes: the redundancy walk must track the
          locally-written set *)
}

(** Compile a behavioral body. *)
val proc : mem_size:(int -> int) -> Stmt.t -> t

(** [exec t ?record reader writer] walks the CFG executing segments; when
    [record] is given, the chosen target index of every traversed decision
    node is stored at its node id (the good-path record Algorithm 1 walks
    against). *)
val exec :
  t -> ?record:int array -> Access.reader -> Access.writer -> unit

(** [fault_choice t node_id reader] evaluates the decision's selector under
    a fault reader and returns the chosen target index. *)
val fault_choice : t -> int -> Access.reader -> int

(* --- payload-compiled family: same artifacts over unboxed int64 payloads,
   with widths resolved at compile time (see {!Rtlir.Bitops}) --- *)

type compiled_expr_i = Access.ireader -> int64

val expr_i :
  sig_width:(int -> int) ->
  mem_width:(int -> int) ->
  mem_size:(int -> int) ->
  Expr.t ->
  compiled_expr_i

type ti = {
  icfg : Cfg.t;
  ivdg : Vdg.t;
  isegments : (Access.ireader -> Access.iwriter -> unit) array array;
  iselectors : compiled_expr_i array;
  ichoosers : (int64 -> int) array;
      (** label matching is payload equality: case labels share the
          scrutinee's width by design validation *)
  iseg_sites : (int * int * compiled_expr_i) array array;
  ihas_blocking : bool;
}

val proc_i :
  sig_width:(int -> int) ->
  mem_width:(int -> int) ->
  mem_size:(int -> int) ->
  Stmt.t ->
  ti

val exec_i :
  ti -> ?record:int array -> Access.ireader -> Access.iwriter -> unit

val fault_choice_i : ti -> int -> Access.ireader -> int
