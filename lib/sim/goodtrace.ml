type i64a = State.i64a

(* Event stream encoding (opcodes in [code], payloads in [vals], the two
   consumed in lockstep):

     0  input       [0; id]                                   vals: v
     1  assign      [1; pos; target]                          vals: v
     2  comb proc   [2; pos; pid; nw; nrec;
                     w_id * nw; choice * nrec]                vals: w_v * nw
     3  ff proc     [3; pid; nw; nmw; nrec;
                     w_id * nw; (mem, addr) * nmw;
                     choice * nrec]                           vals: w_v * nw;
                                                                    mw_v * nmw
     4  step        [4]

   Branch choices are stored only for decision nodes, in ascending CFG
   node id order — the canonical order both capture and replay derive
   independently from the compiled process. *)

type t = {
  cycles : int;
  clock : int;
  nout : int;
  code : int array;
  vals : i64a;
  cycle_code : int array;
  cycle_vals : int array;
  outputs : i64a;
  snapshots : (int * State.t) array;
  snapshot_every : int;
  capture_bytes : int;
  spilled : bool;
}

exception Trace_mismatch of string

let mismatch fmt = Printf.ksprintf (fun s -> raise (Trace_mismatch s)) fmt

let ba n : i64a =
  let a = Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout n in
  Bigarray.Array1.fill a 0L;
  a

(* ---- capture ---- *)

type builder = {
  b_cycles : int;
  b_clock : int;
  b_nout : int;
  b_k : int;
  mutable b_code : int array;
  mutable b_clen : int;
  mutable b_vals : int64 array;
  mutable b_vlen : int;
  b_cycle_code : int array;
  b_cycle_vals : int array;
  b_outputs : i64a;
  mutable b_snaps : (int * State.t) list;  (* descending; reversed at finish *)
  mutable b_cycle : int;
  mutable b_init_done : bool;
}

let builder ~cycles ~clock ~nout ~snapshot_every =
  if cycles < 0 then mismatch "negative cycle count %d" cycles;
  if snapshot_every < 1 then
    mismatch "snapshot interval must be positive, got %d" snapshot_every;
  {
    b_cycles = cycles;
    b_clock = clock;
    b_nout = nout;
    b_k = snapshot_every;
    b_code = Array.make 1024 0;
    b_clen = 0;
    b_vals = Array.make 256 0L;
    b_vlen = 0;
    b_cycle_code = Array.make (cycles + 1) 0;
    b_cycle_vals = Array.make (cycles + 1) 0;
    b_outputs = ba (cycles * nout);
    b_snaps = [];
    b_cycle = 0;
    b_init_done = false;
  }

let push_code b x =
  if b.b_clen = Array.length b.b_code then begin
    let a = Array.make (2 * b.b_clen) 0 in
    Array.blit b.b_code 0 a 0 b.b_clen;
    b.b_code <- a
  end;
  b.b_code.(b.b_clen) <- x;
  b.b_clen <- b.b_clen + 1

let push_val b x =
  if b.b_vlen = Array.length b.b_vals then begin
    let a = Array.make (2 * b.b_vlen) 0L in
    Array.blit b.b_vals 0 a 0 b.b_vlen;
    b.b_vals <- a
  end;
  b.b_vals.(b.b_vlen) <- x;
  b.b_vlen <- b.b_vlen + 1

let rec_input b id v =
  push_code b 0;
  push_code b id;
  push_val b v

let rec_step b = push_code b 4

let rec_assign b ~pos ~target v =
  push_code b 1;
  push_code b pos;
  push_code b target;
  push_val b v

let rec_comb_proc b ~pos ~pid ~writes ~choices =
  push_code b 2;
  push_code b pos;
  push_code b pid;
  push_code b (List.length writes);
  push_code b (Array.length choices);
  List.iter (fun (id, _) -> push_code b id) writes;
  Array.iter (fun c -> push_code b c) choices;
  List.iter (fun (_, v) -> push_val b v) writes

let rec_ff_proc b ~pid ~writes ~mem_writes ~choices =
  push_code b 3;
  push_code b pid;
  push_code b (List.length writes);
  push_code b (List.length mem_writes);
  push_code b (Array.length choices);
  List.iter (fun (id, _) -> push_code b id) writes;
  List.iter
    (fun (m, a, _) ->
      push_code b m;
      push_code b a)
    mem_writes;
  Array.iter (fun c -> push_code b c) choices;
  List.iter (fun (_, v) -> push_val b v) writes;
  List.iter (fun (_, _, v) -> push_val b v) mem_writes

let rec_init_done b =
  if b.b_init_done then mismatch "init recorded twice";
  b.b_cycle_code.(0) <- b.b_clen;
  b.b_cycle_vals.(0) <- b.b_vlen;
  b.b_init_done <- true

let rec_cycle_done b ~outputs ~state =
  if not b.b_init_done then mismatch "cycle recorded before init";
  let c = b.b_cycle in
  if c >= b.b_cycles then
    mismatch "capture ran past the declared %d cycles" b.b_cycles;
  if Array.length outputs <> b.b_nout then
    mismatch "output vector has %d ports, trace declares %d"
      (Array.length outputs) b.b_nout;
  for i = 0 to b.b_nout - 1 do
    Bigarray.Array1.set b.b_outputs ((c * b.b_nout) + i) outputs.(i)
  done;
  let c1 = c + 1 in
  b.b_cycle_code.(c1) <- b.b_clen;
  b.b_cycle_vals.(c1) <- b.b_vlen;
  if c1 = b.b_cycles || c1 mod b.b_k = 0 then
    b.b_snaps <- (c1, State.copy state) :: b.b_snaps;
  b.b_cycle <- c1

let state_bytes (s : State.t) = 8 * (s.State.nsig + State.mem_words s)

let finish b =
  if not b.b_init_done then mismatch "capture never finished initialising";
  if b.b_cycle <> b.b_cycles then
    mismatch "capture stopped after %d of %d cycles" b.b_cycle b.b_cycles;
  let code = Array.sub b.b_code 0 b.b_clen in
  let vals = ba b.b_vlen in
  for i = 0 to b.b_vlen - 1 do
    Bigarray.Array1.set vals i b.b_vals.(i)
  done;
  let snapshots = Array.of_list (List.rev b.b_snaps) in
  let capture_bytes =
    (8 * (b.b_clen + b.b_vlen + (b.b_cycles * b.b_nout)))
    + (16 * (b.b_cycles + 1))
    + Array.fold_left (fun acc (_, s) -> acc + state_bytes s) 0 snapshots
  in
  {
    cycles = b.b_cycles;
    clock = b.b_clock;
    nout = b.b_nout;
    code;
    vals;
    cycle_code = b.b_cycle_code;
    cycle_vals = b.b_cycle_vals;
    outputs = b.b_outputs;
    snapshots;
    snapshot_every = b.b_k;
    capture_bytes;
    spilled = false;
  }

(* ---- replay ---- *)

type cursor = { c_t : t; mutable c_code : int; mutable c_vals : int }

let cursor t ~start =
  if start < 0 || start > t.cycles then
    mismatch "warm start cycle %d outside [0, %d]" start t.cycles;
  if start = 0 then { c_t = t; c_code = 0; c_vals = 0 }
  else
    {
      c_t = t;
      c_code = t.cycle_code.(start);
      c_vals = t.cycle_vals.(start);
    }

let expect cu kind what =
  if cu.c_code >= Array.length cu.c_t.code then
    mismatch "trace exhausted while expecting %s" what;
  if cu.c_t.code.(cu.c_code) <> kind then
    mismatch "expected %s, found event kind %d at offset %d" what
      cu.c_t.code.(cu.c_code) cu.c_code

let take_input cu =
  let t = cu.c_t in
  if cu.c_code < Array.length t.code && t.code.(cu.c_code) = 0 then begin
    let id = t.code.(cu.c_code + 1) in
    let v = Bigarray.Array1.get t.vals cu.c_vals in
    cu.c_code <- cu.c_code + 2;
    cu.c_vals <- cu.c_vals + 1;
    Some (id, v)
  end
  else None

let take_step cu =
  expect cu 4 "a step marker";
  cu.c_code <- cu.c_code + 1

let take_assign cu ~pos =
  expect cu 1 "a continuous-assign event";
  let t = cu.c_t in
  if t.code.(cu.c_code + 1) <> pos then
    mismatch "assign event at comb position %d, replay is at %d"
      t.code.(cu.c_code + 1) pos;
  let v = Bigarray.Array1.get t.vals cu.c_vals in
  cu.c_code <- cu.c_code + 3;
  cu.c_vals <- cu.c_vals + 1;
  v

let take_comb_proc cu ~pos ~pid ~set_choice ~write =
  expect cu 2 "a comb-process event";
  let t = cu.c_t in
  let i = cu.c_code in
  if t.code.(i + 1) <> pos || t.code.(i + 2) <> pid then
    mismatch "comb-process event (pos %d, pid %d), replay is at (%d, %d)"
      t.code.(i + 1)
      t.code.(i + 2)
      pos pid;
  let nw = t.code.(i + 3) and nrec = t.code.(i + 4) in
  let wbase = i + 5 in
  let rbase = wbase + nw in
  for k = 0 to nrec - 1 do
    set_choice k t.code.(rbase + k)
  done;
  let vb = cu.c_vals in
  for j = 0 to nw - 1 do
    write t.code.(wbase + j) (Bigarray.Array1.get t.vals (vb + j))
  done;
  cu.c_code <- rbase + nrec;
  cu.c_vals <- vb + nw

let take_ff_proc cu ~pid ~set_choice =
  expect cu 3 "an ff-process event";
  let t = cu.c_t in
  let i = cu.c_code in
  if t.code.(i + 1) <> pid then
    mismatch "ff-process event for pid %d, replay fired pid %d"
      t.code.(i + 1) pid;
  let nw = t.code.(i + 2) and nmw = t.code.(i + 3) and nrec = t.code.(i + 4) in
  let wbase = i + 5 in
  let mbase = wbase + nw in
  let rbase = mbase + (2 * nmw) in
  for k = 0 to nrec - 1 do
    set_choice k t.code.(rbase + k)
  done;
  let vb = cu.c_vals in
  let writes = ref [] in
  for j = nw - 1 downto 0 do
    writes :=
      (t.code.(wbase + j), Bigarray.Array1.get t.vals (vb + j)) :: !writes
  done;
  let mem_writes = ref [] in
  for j = nmw - 1 downto 0 do
    mem_writes :=
      ( t.code.(mbase + (2 * j)),
        t.code.(mbase + (2 * j) + 1),
        Bigarray.Array1.get t.vals (vb + nw + j) )
      :: !mem_writes
  done;
  cu.c_code <- rbase + nrec;
  cu.c_vals <- vb + nw + nmw;
  (!writes, !mem_writes)

(* ---- snapshots ---- *)

let snapshot_at t c =
  let rec find i =
    if i >= Array.length t.snapshots then
      mismatch "no snapshot at cycle %d" c
    else
      let sc, s = t.snapshots.(i) in
      if sc = c then s else find (i + 1)
  in
  find 0

let start_for t ~activation =
  let best = ref 0 in
  Array.iter
    (fun (c, _) -> if c <= activation && c > !best then best := c)
    t.snapshots;
  !best

type warm = { trace : t; start : int }

(* ---- post-hoc snapshot placement ---- *)

(* Apply every recorded state update in [code[!i, upto)] onto [st] —
   signal writes AND ff memory writes. This is deliberately not
   {!scan_events}: that walk skips memory payloads (memory words carry no
   fault sites), while exact state reconstruction needs them. *)
let apply_events t st ~upto i vi =
  let code = t.code and vals = t.vals in
  while !i < upto do
    match code.(!i) with
    | 0 ->
        State.set st code.(!i + 1) (Bigarray.Array1.get vals !vi);
        i := !i + 2;
        incr vi
    | 1 ->
        State.set st code.(!i + 2) (Bigarray.Array1.get vals !vi);
        i := !i + 3;
        incr vi
    | 2 ->
        let nw = code.(!i + 3) and nrec = code.(!i + 4) in
        for j = 0 to nw - 1 do
          State.set st code.(!i + 5 + j) (Bigarray.Array1.get vals (!vi + j))
        done;
        i := !i + 5 + nw + nrec;
        vi := !vi + nw
    | 3 ->
        let nw = code.(!i + 2)
        and nmw = code.(!i + 3)
        and nrec = code.(!i + 4) in
        let wbase = !i + 5 in
        let mbase = wbase + nw in
        for j = 0 to nw - 1 do
          State.set st code.(wbase + j) (Bigarray.Array1.get vals (!vi + j))
        done;
        for j = 0 to nmw - 1 do
          State.set_mem st
            code.(mbase + (2 * j))
            code.(mbase + (2 * j) + 1)
            (Bigarray.Array1.get vals (!vi + nw + j))
        done;
        i := !i + 5 + nw + (2 * nmw) + nrec;
        vi := !vi + nw + nmw
    | 4 -> incr i
    | other -> mismatch "corrupt trace: opcode %d at offset %d" other !i
  done

let with_snapshots t ~base ~at =
  let at =
    List.sort_uniq compare (t.cycles :: at)
    |> List.filter (fun c -> c >= 1 && c <= t.cycles)
  in
  if at = [] then t
  else begin
    (* The event stream is a complete state-update log, so replaying it
       over a pristine base reconstructs the exact good state at any cycle
       boundary. The clock signal is the one exception — its toggles are
       step markers, not writes — but its boundary value is the same every
       cycle, so it is borrowed from any existing snapshot. *)
    let clock_v =
      if Array.length t.snapshots > 0 then
        Some (State.get (snd t.snapshots.(0)) t.clock)
      else None
    in
    let st = base in
    let i = ref 0 and vi = ref 0 in
    let snaps =
      List.map
        (fun sc ->
          apply_events t st ~upto:t.cycle_code.(sc) i vi;
          (match clock_v with Some v -> State.set st t.clock v | None -> ());
          (sc, State.copy st))
        at
    in
    let snapshots = Array.of_list snaps in
    let capture_bytes =
      (8
      * (Array.length t.code
        + Bigarray.Array1.dim t.vals
        + (t.cycles * t.nout)))
      + (16 * (t.cycles + 1))
      + Array.fold_left (fun acc (_, s) -> acc + state_bytes s) 0 snapshots
    in
    { t with snapshots; capture_bytes }
  end

(* ---- disk spill ---- *)

let spill t =
  if t.spilled then t
  else begin
    let vlen = Bigarray.Array1.dim t.vals in
    let olen = Bigarray.Array1.dim t.outputs in
    let snap_words =
      Array.fold_left
        (fun acc (_, s) -> acc + s.State.nsig + State.mem_words s)
        0 t.snapshots
    in
    let total = vlen + olen + snap_words in
    (* One mmap-backed slab in an unlinked temp file: the mapping keeps
       the storage alive (and shareable across domains) until the trace is
       collected, while the file itself never outlives the process. *)
    let path = Filename.temp_file "eraser_goodtrace" ".bin" in
    let fd = Unix.openfile path [ Unix.O_RDWR ] 0o600 in
    (try Sys.remove path with Sys_error _ -> ());
    let slab =
      Bigarray.array1_of_genarray
        (Unix.map_file fd Bigarray.int64 Bigarray.c_layout true
           [| max 1 total |])
    in
    Unix.close fd;
    let off = ref 0 in
    let carve n =
      let v = Bigarray.Array1.sub slab !off n in
      off := !off + n;
      v
    in
    let vals = carve vlen in
    Bigarray.Array1.blit t.vals vals;
    let outputs = carve olen in
    Bigarray.Array1.blit t.outputs outputs;
    let snapshots =
      Array.map
        (fun (c, s) ->
          let sig_v = carve s.State.nsig in
          let mem_v = carve (State.mem_words s) in
          (c, State.with_storage s ~sig_v ~mem_v))
        t.snapshots
    in
    { t with vals; outputs; snapshots; spilled = true }
  end

(* ---- activation windows ---- *)

type site_kind = Stuck0 | Stuck1 | Transient of int
type site = { s_signal : int; s_bit : int; s_kind : site_kind }

(* One linear pass over the event stream. [on_write cycle id v] fires for
   every recorded good signal write (memory writes carry no fault sites),
   [on_ff cycle pid] when an edge-triggered process fires (before its
   writes), and [on_boundary c] once cycle [c] is fully recorded — i.e. at
   the exact point [observe c] ran during capture. The init-settle prefix
   is attributed to cycle 0. *)
let scan_events t ~on_write ~on_ff ~on_boundary =
  let code = t.code and vals = t.vals in
  let n = Array.length code in
  let i = ref 0 and vi = ref 0 in
  let k = ref 0 in
  let cycle_of idx =
    while !k < t.cycles && t.cycle_code.(!k + 1) <= idx do
      on_boundary !k;
      incr k
    done;
    !k
  in
  while !i < n do
    let cyc = cycle_of !i in
    match code.(!i) with
    | 0 ->
        on_write cyc code.(!i + 1) (Bigarray.Array1.get vals !vi);
        i := !i + 2;
        incr vi
    | 1 ->
        on_write cyc code.(!i + 2) (Bigarray.Array1.get vals !vi);
        i := !i + 3;
        incr vi
    | 2 ->
        let nw = code.(!i + 3) and nrec = code.(!i + 4) in
        for j = 0 to nw - 1 do
          on_write cyc code.(!i + 5 + j) (Bigarray.Array1.get vals (!vi + j))
        done;
        i := !i + 5 + nw + nrec;
        vi := !vi + nw
    | 3 ->
        let nw = code.(!i + 2)
        and nmw = code.(!i + 3)
        and nrec = code.(!i + 4) in
        on_ff cyc code.(!i + 1);
        for j = 0 to nw - 1 do
          on_write cyc code.(!i + 5 + j) (Bigarray.Array1.get vals (!vi + j))
        done;
        i := !i + 5 + nw + (2 * nmw) + nrec;
        vi := !vi + nw + nmw
    | 4 -> incr i
    | other -> mismatch "corrupt trace: opcode %d at offset %d" other !i
  done;
  for c = !k to t.cycles - 1 do
    on_boundary c
  done

let scan_writes t f =
  scan_events t ~on_write:f ~on_ff:(fun _ _ -> ()) ~on_boundary:(fun _ -> ())

let stuck_bit_of v bit =
  Int64.to_int (Int64.logand (Int64.shift_right_logical v bit) 1L)

let first_divergence t ~comb_driven sites =
  let n = Array.length sites in
  let act = Array.make n t.cycles in
  let by_sig : (int, int list ref) Hashtbl.t = Hashtbl.create 32 in
  let unresolved = ref 0 in
  Array.iteri
    (fun i s ->
      match s.s_kind with
      | Transient c -> act.(i) <- (if c < 0 then 0 else min c t.cycles)
      | Stuck1 when not comb_driven.(s.s_signal) ->
          (* the forced 1 differs from the pristine zero state and is
             readable from the very first settle *)
          act.(i) <- 0
      | Stuck0 | Stuck1 -> (
          incr unresolved;
          match Hashtbl.find_opt by_sig s.s_signal with
          | Some l -> l := i :: !l
          | None -> Hashtbl.add by_sig s.s_signal (ref [ i ])))
    sites;
  if !unresolved > 0 then (
    try
      scan_writes t (fun cyc id v ->
          match Hashtbl.find_opt by_sig id with
          | None -> ()
          | Some l ->
              l :=
                List.filter
                  (fun i ->
                    let s = sites.(i) in
                    let bit = stuck_bit_of v s.s_bit in
                    let stuck =
                      match s.s_kind with Stuck1 -> 1 | _ -> 0
                    in
                    if bit <> stuck then begin
                      act.(i) <- cyc;
                      decr unresolved;
                      false
                    end
                    else true)
                  !l;
              if !unresolved = 0 then raise Exit)
    with Exit -> ());
  act

(* Cone-refined activation windows.

   Stuck sites fall in two regimes:

   - [Legacy] — state-holding signals (nonblocking targets), signals with
     a combinational path into an edge sensitivity list, and signals a
     comb process both writes and reads ([self_read], where forcing an
     intermediate write can steer the rest of the body). A diff there
     either persists across cycles by itself, can create/suppress clock
     edges, or can diverge sibling writes even while the site's own final
     value matches — so the only sound window is the conservative
     first-divergence rule above (first recorded write whose bit differs;
     activation 0 for a stuck-1 on a never-yet-written signal, whose
     forced bit differs from the pristine zero state from the very first
     settle).

   - [Sampled] — everything else: combinationally recomputed signals (and
     undriven inputs). A diff on such a site is memoryless — every good
     write re-applies the forcing, so before the diff is *latched* by an
     edge-triggered process that structurally reads it, or *observed* at a
     cycle boundary with a comb path to an output, the fault network's
     registers, memories and outputs are identical to the good network's.
     The activation is therefore the first cycle where the forced bit
     differs from the tracked good value at such a sampling moment: an ff
     firing with [Cone.reaches_ff], or a cycle boundary with
     [Cone.out_comb]. Sites that never hit a sampling moment keep
     [t.cycles] (the fault can never be detected). *)
let activations t ~(cone : Flow.Cone.t) sites =
  let n = Array.length sites in
  let act = Array.make n t.cycles in
  let sampled = Array.make n false in
  (* current good bit of a sampled site differs from the forced bit;
     seeded against the pristine zero state *)
  let differs = Array.make n false in
  let by_sig : (int, int list ref) Hashtbl.t = Hashtbl.create 32 in
  let pending = ref [] in
  let unresolved = ref 0 in
  let add_by_sig s i =
    match Hashtbl.find_opt by_sig s with
    | Some l -> l := i :: !l
    | None -> Hashtbl.add by_sig s (ref [ i ])
  in
  Array.iteri
    (fun i s ->
      match s.s_kind with
      | Transient c -> act.(i) <- (if c < 0 then 0 else min c t.cycles)
      | (Stuck0 | Stuck1)
        when cone.Flow.Cone.state_sig.(s.s_signal)
             || cone.Flow.Cone.clock_comb.(s.s_signal)
             || cone.Flow.Cone.self_read.(s.s_signal) ->
          if s.s_kind = Stuck1 && not cone.Flow.Cone.comb_sig.(s.s_signal)
          then act.(i) <- 0
          else begin
            incr unresolved;
            add_by_sig s.s_signal i
          end
      | Stuck0 | Stuck1 ->
          sampled.(i) <- true;
          differs.(i) <- s.s_kind = Stuck1;
          incr unresolved;
          pending := i :: !pending;
          add_by_sig s.s_signal i)
    sites;
  let stuck_of i = match sites.(i).s_kind with Stuck1 -> 1 | _ -> 0 in
  let resolve cyc keep =
    pending :=
      List.filter
        (fun i ->
          if differs.(i) && keep i then begin
            act.(i) <- cyc;
            decr unresolved;
            false
          end
          else true)
        !pending;
    if !unresolved = 0 then raise Exit
  in
  if !unresolved > 0 then (
    try
      scan_events t
        ~on_write:(fun cyc id v ->
          match Hashtbl.find_opt by_sig id with
          | None -> ()
          | Some l ->
              l :=
                List.filter
                  (fun i ->
                    let bit = stuck_bit_of v sites.(i).s_bit in
                    if sampled.(i) then begin
                      differs.(i) <- bit <> stuck_of i;
                      true
                    end
                    else if bit <> stuck_of i then begin
                      act.(i) <- cyc;
                      decr unresolved;
                      if !unresolved = 0 then raise Exit;
                      false
                    end
                    else true)
                  !l)
        ~on_ff:(fun cyc pid ->
          if !pending <> [] then
            resolve cyc (fun i ->
                Flow.Cone.reaches_ff cone ~signal:sites.(i).s_signal ~pid))
        ~on_boundary:(fun cyc ->
          if !pending <> [] then
            resolve cyc (fun i -> cone.Flow.Cone.out_comb.(sites.(i).s_signal)))
    with Exit -> ());
  act

let output_row t c =
  if c < 0 || c >= t.cycles then mismatch "output row %d out of range" c;
  Array.init t.nout (fun i -> Bigarray.Array1.get t.outputs ((c * t.nout) + i))
