open Rtlir

(* 2-state stack machine over flat int64 state. The operand stack is a
   Bigarray scratch, so every intermediate stays an unboxed int64 inside
   [run]: nothing allocates on the steady-state path (the documented
   exceptions are Divu/Modu, whose stdlib unsigned division helpers box).
   Widths are baked into instructions at compile time. All Int64 arithmetic
   below uses compiler intrinsics; stdlib Int64 *functions* (unsigned_div,
   unsigned_compare, ...) are avoided or hand-expanded because calling them
   would re-box the operands. *)

type i64a = State.i64a

exception Blocking_in_ff of int
exception Nonblocking_in_comb of int
exception Mem_write_in_comb of int

let msk w =
  if w = 64 then -1L else Int64.sub (Int64.shift_left 1L w) 1L
[@@inline]

(* unsigned a < b via bias, keeping both operands unboxed *)
let ult a b =
  Int64.add a Int64.min_int < Int64.add b Int64.min_int
[@@inline]

let shift_amount b = if ult b 64L then Int64.to_int b else 64 [@@inline]

let sgn w a =
  if w = 64 then a
  else if Int64.logand a (Int64.shift_left 1L (w - 1)) <> 0L then
    Int64.logor a (Int64.lognot (msk w))
  else a
[@@inline]

let wrap_addr a size =
  if a >= 0L then Int64.to_int (Int64.rem a (Int64.of_int size))
  else Int64.to_int (Int64.unsigned_rem a (Int64.of_int size))
[@@inline]

type instr =
  | Push of int64
  | Load of int
  | Load_mem of int * int  (* absolute word base, size *)
  | Badd of int
  | Bsub of int
  | Bmul of int
  | Bdivu of int
  | Bmodu
  | Band
  | Bor
  | Bxor
  | Bshl of int
  | Bshru of int
  | Bshra of int
  | Beq
  | Bneq
  | Bltu
  | Bleu
  | Bgtu
  | Bgeu
  | Blts of int
  | Bles of int
  | Bgts of int
  | Bges of int
  | Unot of int
  | Uneg of int
  | Urand of int
  | Uror
  | Urxor
  | Fslice of int * int  (* hi, lo *)
  | Fsext of int * int  (* from, to *)
  | Fconcat of int  (* lo width *)
  | Fmux

type prog = { code : instr array; max_stack : int }

type stmt_prog =
  | Sblock of stmt_prog array
  | Sif of prog * stmt_prog * stmt_prog
  | Scase of prog * int64 array * stmt_prog array * stmt_prog
  | Sassign of int * prog
  | Snonblock of int * prog
  | Smem_write of int * int * int * prog * prog
      (* mem id, absolute base, size, addr, data *)
  | Sskip

(* --- compilation --- *)

let rec emit ~wd ~mem_size ~mem_base acc e =
  let emit = emit ~wd ~mem_size ~mem_base in
  match e with
  | Expr.Const b -> Push (Bits.to_int64 b) :: acc
  | Expr.Sig id -> Load id :: acc
  | Expr.Unop (op, a) ->
      let i =
        match op with
        | Expr.Not -> Unot (wd a)
        | Expr.Neg -> Uneg (wd a)
        | Expr.Red_and -> Urand (wd a)
        | Expr.Red_or -> Uror
        | Expr.Red_xor -> Urxor
      in
      i :: emit acc a
  | Expr.Binop (op, a, b) ->
      let i =
        match op with
        | Expr.Add -> Badd (wd a)
        | Expr.Sub -> Bsub (wd a)
        | Expr.Mul -> Bmul (wd a)
        | Expr.Divu -> Bdivu (wd a)
        | Expr.Modu -> Bmodu
        | Expr.And -> Band
        | Expr.Or -> Bor
        | Expr.Xor -> Bxor
        | Expr.Shl -> Bshl (wd a)
        | Expr.Shru -> Bshru (wd a)
        | Expr.Shra -> Bshra (wd a)
        | Expr.Eq -> Beq
        | Expr.Neq -> Bneq
        | Expr.Ltu -> Bltu
        | Expr.Leu -> Bleu
        | Expr.Gtu -> Bgtu
        | Expr.Geu -> Bgeu
        | Expr.Lts -> Blts (wd a)
        | Expr.Les -> Bles (wd a)
        | Expr.Gts -> Bgts (wd a)
        | Expr.Ges -> Bges (wd a)
      in
      i :: emit (emit acc a) b
  | Expr.Mux (sel, a, b) -> Fmux :: emit (emit (emit acc sel) a) b
  | Expr.Slice (a, hi, lo) -> Fslice (hi, lo) :: emit acc a
  | Expr.Concat (a, b) -> Fconcat (wd b) :: emit (emit acc a) b
  | Expr.Zext (a, _) -> emit acc a  (* payloads are width-agnostic upward *)
  | Expr.Sext (a, w) -> Fsext (wd a, w) :: emit acc a
  | Expr.Mem_read (m, addr) ->
      Load_mem (mem_base m, mem_size m) :: emit acc addr

let rec depth = function
  | Expr.Const _ | Expr.Sig _ -> 1
  | Expr.Unop (_, a) | Expr.Slice (a, _, _) | Expr.Zext (a, _)
  | Expr.Sext (a, _) ->
      depth a
  | Expr.Binop (_, a, b) | Expr.Concat (a, b) ->
      max (depth a) (1 + depth b)
  | Expr.Mux (s, a, b) -> max (depth s) (max (1 + depth a) (2 + depth b))
  | Expr.Mem_read (_, a) -> depth a

let compile ~sig_width ~mem_width ~mem_size ~mem_base e =
  let wd e = Expr.width ~sig_width ~mem_width e in
  {
    code = Array.of_list (List.rev (emit ~wd ~mem_size ~mem_base [] e));
    max_stack = depth e + 1;
  }

let rec compile_stmt ~sig_width ~mem_width ~mem_size ~mem_base s =
  let compile = compile ~sig_width ~mem_width ~mem_size ~mem_base in
  let compile_stmt = compile_stmt ~sig_width ~mem_width ~mem_size ~mem_base in
  match s with
  | Stmt.Block l -> Sblock (Array.of_list (List.map compile_stmt l))
  | Stmt.If (c, a, b) -> Sif (compile c, compile_stmt a, compile_stmt b)
  | Stmt.Case (scrut, arms, dflt) ->
      Scase
        ( compile scrut,
          Array.of_list (List.map (fun (l, _) -> Bits.to_int64 l) arms),
          Array.of_list (List.map (fun (_, arm) -> compile_stmt arm) arms),
          compile_stmt dflt )
  | Stmt.Assign (id, e) -> Sassign (id, compile e)
  | Stmt.Nonblock (id, e) -> Snonblock (id, compile e)
  | Stmt.Mem_write (m, addr, data) ->
      Smem_write (m, mem_base m, mem_size m, compile addr, compile data)
  | Stmt.Skip -> Sskip

(* --- execution context --- *)

type ctx = {
  sigs : i64a;
  mems : i64a;
  mutable stack : i64a;
  force_sig : int;  (* -1 when unforced *)
  force_or : int64;
  force_and : int64;
  mutable on_change : int -> unit;
  mutable on_mem_change : int -> unit;
  mutable nba_n : int;
  mutable nba_ids : int array;
  mutable nba_vals : i64a;
  mutable nbam_n : int;
  mutable nbam_mem : int array;
  mutable nbam_idx : int array;
  mutable nbam_vals : i64a;
}

let ba n : i64a =
  let a = Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout n in
  Bigarray.Array1.fill a 0L;
  a

let create ?force (st : State.t) =
  let force_sig, force_or, force_and =
    match force with
    | None -> (-1, 0L, -1L)
    | Some (id, bit, true) -> (id, Int64.shift_left 1L bit, -1L)
    | Some (id, bit, false) ->
        (id, 0L, Int64.lognot (Int64.shift_left 1L bit))
  in
  {
    sigs = st.State.sig_v;
    mems = st.State.mem_v;
    stack = ba 64;
    force_sig;
    force_or;
    force_and;
    on_change = ignore;
    on_mem_change = ignore;
    nba_n = 0;
    nba_ids = Array.make 16 0;
    nba_vals = ba 16;
    nbam_n = 0;
    nbam_mem = Array.make 16 0;
    nbam_idx = Array.make 16 0;
    nbam_vals = ba 16;
  }

let set_on_change ctx f = ctx.on_change <- f
let set_on_mem_change ctx f = ctx.on_mem_change <- f

(* --- evaluation --- *)

let grow_stack ctx n =
  ctx.stack <- ba (2 * n);
  ctx.stack

(* Module-level loop with explicit parameters: a local recursive function
   capturing the stack/state would allocate its closure on every [run]. *)
let rec go (code : instr array) n (stack : i64a) (mems : i64a) (sigs : i64a)
    pc sp =
  if pc = n then ()
  else
    match Array.unsafe_get code pc with
      | Push v ->
          Bigarray.Array1.unsafe_set stack sp v;
          go code n stack mems sigs (pc + 1) (sp + 1)
      | Load id ->
          Bigarray.Array1.unsafe_set stack sp
            (Bigarray.Array1.unsafe_get sigs id);
          go code n stack mems sigs (pc + 1) (sp + 1)
      | Load_mem (base, size) ->
          let a = Bigarray.Array1.unsafe_get stack (sp - 1) in
          Bigarray.Array1.unsafe_set stack (sp - 1)
            (Bigarray.Array1.unsafe_get mems (base + wrap_addr a size));
          go code n stack mems sigs (pc + 1) sp
      | Badd w ->
          Bigarray.Array1.unsafe_set stack (sp - 2)
            (Int64.logand (Int64.add (Bigarray.Array1.unsafe_get stack (sp - 2)) (Bigarray.Array1.unsafe_get stack (sp - 1))) (msk w));
          go code n stack mems sigs (pc + 1) (sp - 1)
      | Bsub w ->
          Bigarray.Array1.unsafe_set stack (sp - 2)
            (Int64.logand (Int64.sub (Bigarray.Array1.unsafe_get stack (sp - 2)) (Bigarray.Array1.unsafe_get stack (sp - 1))) (msk w));
          go code n stack mems sigs (pc + 1) (sp - 1)
      | Bmul w ->
          Bigarray.Array1.unsafe_set stack (sp - 2)
            (Int64.logand (Int64.mul (Bigarray.Array1.unsafe_get stack (sp - 2)) (Bigarray.Array1.unsafe_get stack (sp - 1))) (msk w));
          go code n stack mems sigs (pc + 1) (sp - 1)
      | Bdivu w ->
          let b = Bigarray.Array1.unsafe_get stack (sp - 1) in
          let a = Bigarray.Array1.unsafe_get stack (sp - 2) in
          Bigarray.Array1.unsafe_set stack (sp - 2) (if b = 0L then msk w else Int64.unsigned_div a b);
          go code n stack mems sigs (pc + 1) (sp - 1)
      | Bmodu ->
          let b = Bigarray.Array1.unsafe_get stack (sp - 1) in
          let a = Bigarray.Array1.unsafe_get stack (sp - 2) in
          Bigarray.Array1.unsafe_set stack (sp - 2) (if b = 0L then a else Int64.unsigned_rem a b);
          go code n stack mems sigs (pc + 1) (sp - 1)
      | Band ->
          Bigarray.Array1.unsafe_set stack (sp - 2) (Int64.logand (Bigarray.Array1.unsafe_get stack (sp - 2)) (Bigarray.Array1.unsafe_get stack (sp - 1)));
          go code n stack mems sigs (pc + 1) (sp - 1)
      | Bor ->
          Bigarray.Array1.unsafe_set stack (sp - 2) (Int64.logor (Bigarray.Array1.unsafe_get stack (sp - 2)) (Bigarray.Array1.unsafe_get stack (sp - 1)));
          go code n stack mems sigs (pc + 1) (sp - 1)
      | Bxor ->
          Bigarray.Array1.unsafe_set stack (sp - 2) (Int64.logxor (Bigarray.Array1.unsafe_get stack (sp - 2)) (Bigarray.Array1.unsafe_get stack (sp - 1)));
          go code n stack mems sigs (pc + 1) (sp - 1)
      | Bshl w ->
          let amt = shift_amount (Bigarray.Array1.unsafe_get stack (sp - 1)) in
          let a = Bigarray.Array1.unsafe_get stack (sp - 2) in
          Bigarray.Array1.unsafe_set stack (sp - 2)
            (if amt >= w then 0L
             else Int64.logand (Int64.shift_left a amt) (msk w));
          go code n stack mems sigs (pc + 1) (sp - 1)
      | Bshru w ->
          let amt = shift_amount (Bigarray.Array1.unsafe_get stack (sp - 1)) in
          let a = Bigarray.Array1.unsafe_get stack (sp - 2) in
          Bigarray.Array1.unsafe_set stack (sp - 2)
            (if amt >= w then 0L else Int64.shift_right_logical a amt);
          go code n stack mems sigs (pc + 1) (sp - 1)
      | Bshra w ->
          let amt = shift_amount (Bigarray.Array1.unsafe_get stack (sp - 1)) in
          let a = sgn w (Bigarray.Array1.unsafe_get stack (sp - 2)) in
          Bigarray.Array1.unsafe_set stack (sp - 2)
            (Int64.logand
               (Int64.shift_right a (if amt >= 64 then 63 else amt))
               (msk w));
          go code n stack mems sigs (pc + 1) (sp - 1)
      | Beq ->
          Bigarray.Array1.unsafe_set stack (sp - 2) (if Bigarray.Array1.unsafe_get stack (sp - 2) = Bigarray.Array1.unsafe_get stack (sp - 1) then 1L else 0L);
          go code n stack mems sigs (pc + 1) (sp - 1)
      | Bneq ->
          Bigarray.Array1.unsafe_set stack (sp - 2) (if Bigarray.Array1.unsafe_get stack (sp - 2) = Bigarray.Array1.unsafe_get stack (sp - 1) then 0L else 1L);
          go code n stack mems sigs (pc + 1) (sp - 1)
      | Bltu ->
          Bigarray.Array1.unsafe_set stack (sp - 2) (if ult (Bigarray.Array1.unsafe_get stack (sp - 2)) (Bigarray.Array1.unsafe_get stack (sp - 1)) then 1L else 0L);
          go code n stack mems sigs (pc + 1) (sp - 1)
      | Bleu ->
          Bigarray.Array1.unsafe_set stack (sp - 2)
            (if ult (Bigarray.Array1.unsafe_get stack (sp - 1)) (Bigarray.Array1.unsafe_get stack (sp - 2)) then 0L else 1L);
          go code n stack mems sigs (pc + 1) (sp - 1)
      | Bgtu ->
          Bigarray.Array1.unsafe_set stack (sp - 2) (if ult (Bigarray.Array1.unsafe_get stack (sp - 1)) (Bigarray.Array1.unsafe_get stack (sp - 2)) then 1L else 0L);
          go code n stack mems sigs (pc + 1) (sp - 1)
      | Bgeu ->
          Bigarray.Array1.unsafe_set stack (sp - 2)
            (if ult (Bigarray.Array1.unsafe_get stack (sp - 2)) (Bigarray.Array1.unsafe_get stack (sp - 1)) then 0L else 1L);
          go code n stack mems sigs (pc + 1) (sp - 1)
      | Blts w ->
          Bigarray.Array1.unsafe_set stack (sp - 2)
            (if sgn w (Bigarray.Array1.unsafe_get stack (sp - 2)) < sgn w (Bigarray.Array1.unsafe_get stack (sp - 1)) then 1L else 0L);
          go code n stack mems sigs (pc + 1) (sp - 1)
      | Bles w ->
          Bigarray.Array1.unsafe_set stack (sp - 2)
            (if sgn w (Bigarray.Array1.unsafe_get stack (sp - 2)) <= sgn w (Bigarray.Array1.unsafe_get stack (sp - 1)) then 1L else 0L);
          go code n stack mems sigs (pc + 1) (sp - 1)
      | Bgts w ->
          Bigarray.Array1.unsafe_set stack (sp - 2)
            (if sgn w (Bigarray.Array1.unsafe_get stack (sp - 1)) < sgn w (Bigarray.Array1.unsafe_get stack (sp - 2)) then 1L else 0L);
          go code n stack mems sigs (pc + 1) (sp - 1)
      | Bges w ->
          Bigarray.Array1.unsafe_set stack (sp - 2)
            (if sgn w (Bigarray.Array1.unsafe_get stack (sp - 1)) <= sgn w (Bigarray.Array1.unsafe_get stack (sp - 2)) then 1L else 0L);
          go code n stack mems sigs (pc + 1) (sp - 1)
      | Unot w ->
          Bigarray.Array1.unsafe_set stack (sp - 1) (Int64.logand (Int64.lognot (Bigarray.Array1.unsafe_get stack (sp - 1))) (msk w));
          go code n stack mems sigs (pc + 1) sp
      | Uneg w ->
          Bigarray.Array1.unsafe_set stack (sp - 1) (Int64.logand (Int64.neg (Bigarray.Array1.unsafe_get stack (sp - 1))) (msk w));
          go code n stack mems sigs (pc + 1) sp
      | Urand w ->
          Bigarray.Array1.unsafe_set stack (sp - 1) (if Bigarray.Array1.unsafe_get stack (sp - 1) = msk w then 1L else 0L);
          go code n stack mems sigs (pc + 1) sp
      | Uror ->
          Bigarray.Array1.unsafe_set stack (sp - 1) (if Bigarray.Array1.unsafe_get stack (sp - 1) <> 0L then 1L else 0L);
          go code n stack mems sigs (pc + 1) sp
      | Urxor ->
          let rec pop acc v =
            if v = 0L then acc
            else pop (acc + 1) (Int64.logand v (Int64.sub v 1L))
          in
          Bigarray.Array1.unsafe_set stack (sp - 1) (if pop 0 (Bigarray.Array1.unsafe_get stack (sp - 1)) land 1 = 1 then 1L else 0L);
          go code n stack mems sigs (pc + 1) sp
      | Fslice (hi, lo) ->
          Bigarray.Array1.unsafe_set stack (sp - 1)
            (Int64.logand
               (Int64.shift_right_logical (Bigarray.Array1.unsafe_get stack (sp - 1)) lo)
               (msk (hi - lo + 1)));
          go code n stack mems sigs (pc + 1) sp
      | Fsext (from, w) ->
          Bigarray.Array1.unsafe_set stack (sp - 1) (Int64.logand (sgn from (Bigarray.Array1.unsafe_get stack (sp - 1))) (msk w));
          go code n stack mems sigs (pc + 1) sp
      | Fconcat lo_w ->
          Bigarray.Array1.unsafe_set stack (sp - 2)
            (Int64.logor (Int64.shift_left (Bigarray.Array1.unsafe_get stack (sp - 2)) lo_w) (Bigarray.Array1.unsafe_get stack (sp - 1)));
          go code n stack mems sigs (pc + 1) (sp - 1)
      | Fmux ->
          let e = Bigarray.Array1.unsafe_get stack (sp - 1) in
          let t = Bigarray.Array1.unsafe_get stack (sp - 2) in
          Bigarray.Array1.unsafe_set stack (sp - 3) (if Bigarray.Array1.unsafe_get stack (sp - 3) <> 0L then t else e);
          go code n stack mems sigs (pc + 1) (sp - 2)

(* Leaves the result in stack slot 0; callers read it back with an inlined
   Bigarray access so no int64 ever crosses a function boundary. *)
let run ctx p =
  let stack =
    if Bigarray.Array1.dim ctx.stack >= p.max_stack then ctx.stack
    else grow_stack ctx p.max_stack
  in
  let code = p.code in
  go code (Array.length code) stack ctx.mems ctx.sigs 0 0

let result ctx = Bigarray.Array1.unsafe_get ctx.stack 0 [@@inline]

(* --- writes --- *)

let write_sig ctx id v =
  let v =
    if id = ctx.force_sig then
      Int64.logor (Int64.logand v ctx.force_and) ctx.force_or
    else v
  in
  if Bigarray.Array1.unsafe_get ctx.sigs id <> v then begin
    Bigarray.Array1.unsafe_set ctx.sigs id v;
    ctx.on_change id
  end
[@@inline]

let grow_nba ctx =
  let n = 2 * Array.length ctx.nba_ids in
  let ids = Array.make n 0 in
  Array.blit ctx.nba_ids 0 ids 0 ctx.nba_n;
  let vals = ba n in
  Bigarray.Array1.blit ctx.nba_vals (Bigarray.Array1.sub vals 0 ctx.nba_n);
  ctx.nba_ids <- ids;
  ctx.nba_vals <- vals

let push_nba ctx id v =
  if ctx.nba_n = Array.length ctx.nba_ids then grow_nba ctx;
  Array.unsafe_set ctx.nba_ids ctx.nba_n id;
  Bigarray.Array1.unsafe_set ctx.nba_vals ctx.nba_n v;
  ctx.nba_n <- ctx.nba_n + 1
[@@inline]

let grow_nbam ctx =
  let n = 2 * Array.length ctx.nbam_mem in
  let mem = Array.make n 0 and idx = Array.make n 0 in
  Array.blit ctx.nbam_mem 0 mem 0 ctx.nbam_n;
  Array.blit ctx.nbam_idx 0 idx 0 ctx.nbam_n;
  let vals = ba n in
  Bigarray.Array1.blit ctx.nbam_vals (Bigarray.Array1.sub vals 0 ctx.nbam_n);
  ctx.nbam_mem <- mem;
  ctx.nbam_idx <- idx;
  ctx.nbam_vals <- vals

let push_nba_mem ctx m idx v =
  if ctx.nbam_n = Array.length ctx.nbam_mem then grow_nbam ctx;
  Array.unsafe_set ctx.nbam_mem ctx.nbam_n m;
  Array.unsafe_set ctx.nbam_idx ctx.nbam_n idx;
  Bigarray.Array1.unsafe_set ctx.nbam_vals ctx.nbam_n v;
  ctx.nbam_n <- ctx.nbam_n + 1
[@@inline]

let commit_nba ctx =
  let n = ctx.nba_n in
  for i = 0 to n - 1 do
    write_sig ctx
      (Array.unsafe_get ctx.nba_ids i)
      (Bigarray.Array1.unsafe_get ctx.nba_vals i)
  done;
  ctx.nba_n <- 0;
  let m = ctx.nbam_n in
  for i = 0 to m - 1 do
    let idx = Array.unsafe_get ctx.nbam_idx i in
    let v = Bigarray.Array1.unsafe_get ctx.nbam_vals i in
    if Bigarray.Array1.unsafe_get ctx.mems idx <> v then begin
      Bigarray.Array1.unsafe_set ctx.mems idx v;
      ctx.on_mem_change (Array.unsafe_get ctx.nbam_mem i)
    end
  done;
  ctx.nbam_n <- 0

let has_pending_nba ctx = ctx.nba_n > 0 || ctx.nbam_n > 0

(* --- statement execution --- *)

let run_assign ctx id p =
  run ctx p;
  write_sig ctx id (Bigarray.Array1.unsafe_get ctx.stack 0)

let rec find_key ctx (keys : int64 array) i n =
  if i >= n then n
  else if Array.unsafe_get keys i = Bigarray.Array1.unsafe_get ctx.stack 0
  then i
  else find_key ctx keys (i + 1) n

let rec exec ctx ~ff sp =
  match sp with
  | Sblock l ->
      for i = 0 to Array.length l - 1 do
        exec ctx ~ff (Array.unsafe_get l i)
      done
  | Sif (c, a, b) ->
      run ctx c;
      if Bigarray.Array1.unsafe_get ctx.stack 0 <> 0L then exec ctx ~ff a
      else exec ctx ~ff b
  | Scase (scrut, keys, arms, dflt) ->
      run ctx scrut;
      let n = Array.length keys in
      let i = find_key ctx keys 0 n in
      if i < n then exec ctx ~ff arms.(i) else exec ctx ~ff dflt
  | Sassign (id, p) ->
      if ff then raise (Blocking_in_ff id);
      run ctx p;
      write_sig ctx id (Bigarray.Array1.unsafe_get ctx.stack 0)
  | Snonblock (id, p) ->
      if not ff then raise (Nonblocking_in_comb id);
      run ctx p;
      push_nba ctx id (Bigarray.Array1.unsafe_get ctx.stack 0)
  | Smem_write (m, base, size, pa, pd) ->
      if not ff then raise (Mem_write_in_comb m);
      run ctx pa;
      let idx = base + wrap_addr (Bigarray.Array1.unsafe_get ctx.stack 0) size in
      run ctx pd;
      push_nba_mem ctx m idx (Bigarray.Array1.unsafe_get ctx.stack 0)
  | Sskip -> ()
