open Rtlir
open Flow

type compiled_expr = Access.reader -> Bits.t

let rec expr ~mem_size e : compiled_expr =
  let compile = expr ~mem_size in
  match e with
  | Expr.Const b -> fun _ -> b
  | Expr.Sig id -> fun r -> r.Access.get id
  | Expr.Unop (op, a) -> (
      let ca = compile a in
      match op with
      | Expr.Not -> fun r -> Bits.lognot (ca r)
      | Expr.Neg -> fun r -> Bits.neg (ca r)
      | Expr.Red_and -> fun r -> Bits.reduce_and (ca r)
      | Expr.Red_or -> fun r -> Bits.reduce_or (ca r)
      | Expr.Red_xor -> fun r -> Bits.reduce_xor (ca r))
  | Expr.Binop (op, a, b) -> (
      let ca = compile a and cb = compile b in
      match op with
      | Expr.Add -> fun r -> Bits.add (ca r) (cb r)
      | Expr.Sub -> fun r -> Bits.sub (ca r) (cb r)
      | Expr.Mul -> fun r -> Bits.mul (ca r) (cb r)
      | Expr.Divu -> fun r -> Bits.divu (ca r) (cb r)
      | Expr.Modu -> fun r -> Bits.modu (ca r) (cb r)
      | Expr.And -> fun r -> Bits.logand (ca r) (cb r)
      | Expr.Or -> fun r -> Bits.logor (ca r) (cb r)
      | Expr.Xor -> fun r -> Bits.logxor (ca r) (cb r)
      | Expr.Shl -> fun r -> Bits.shift_left (ca r) (cb r)
      | Expr.Shru -> fun r -> Bits.shift_right (ca r) (cb r)
      | Expr.Shra -> fun r -> Bits.shift_right_arith (ca r) (cb r)
      | Expr.Eq -> fun r -> Bits.eq (ca r) (cb r)
      | Expr.Neq -> fun r -> Bits.neq (ca r) (cb r)
      | Expr.Ltu -> fun r -> Bits.ltu (ca r) (cb r)
      | Expr.Leu -> fun r -> Bits.leu (ca r) (cb r)
      | Expr.Gtu -> fun r -> Bits.gtu (ca r) (cb r)
      | Expr.Geu -> fun r -> Bits.geu (ca r) (cb r)
      | Expr.Lts -> fun r -> Bits.lts (ca r) (cb r)
      | Expr.Les -> fun r -> Bits.les (ca r) (cb r)
      | Expr.Gts -> fun r -> Bits.gts (ca r) (cb r)
      | Expr.Ges -> fun r -> Bits.ges (ca r) (cb r))
  | Expr.Mux (sel, a, b) ->
      let cs = compile sel and ca = compile a and cb = compile b in
      fun r -> if Bits.is_true (cs r) then ca r else cb r
  | Expr.Slice (a, hi, lo) ->
      let ca = compile a in
      fun r -> Bits.slice (ca r) ~hi ~lo
  | Expr.Concat (a, b) ->
      let ca = compile a and cb = compile b in
      fun r -> Bits.concat (ca r) (cb r)
  | Expr.Zext (a, w) ->
      let ca = compile a in
      fun r -> Bits.zext (ca r) w
  | Expr.Sext (a, w) ->
      let ca = compile a in
      fun r -> Bits.sext (ca r) w
  | Expr.Mem_read (m, addr) ->
      let ca = compile addr in
      let size = mem_size m in
      fun r -> r.Access.get_mem m (Eval.wrap_address (ca r) size)

type compiled_expr_i = Access.ireader -> int64

(* Payload compilation: widths are resolved once here and baked into the
   closures, so evaluation never consults a per-value width again. *)
let expr_i ~sig_width ~mem_width ~mem_size e : compiled_expr_i =
  let rec compile e =
    let wd e = Expr.width ~sig_width ~mem_width e in
    match e with
    | Expr.Const b ->
        let v = Bits.to_int64 b in
        fun _ -> v
    | Expr.Sig id -> fun r -> r.Access.iget id
    | Expr.Unop (op, a) -> (
        let wa = wd a in
        let ca = compile a in
        match op with
        | Expr.Not -> fun r -> Bitops.lognot wa (ca r)
        | Expr.Neg -> fun r -> Bitops.neg wa (ca r)
        | Expr.Red_and -> fun r -> Bitops.reduce_and wa (ca r)
        | Expr.Red_or -> fun r -> Bitops.reduce_or (ca r)
        | Expr.Red_xor -> fun r -> Bitops.reduce_xor (ca r))
    | Expr.Binop (op, a, b) -> (
        let wa = wd a in
        let ca = compile a and cb = compile b in
        match op with
        | Expr.Add -> fun r -> Bitops.add wa (ca r) (cb r)
        | Expr.Sub -> fun r -> Bitops.sub wa (ca r) (cb r)
        | Expr.Mul -> fun r -> Bitops.mul wa (ca r) (cb r)
        | Expr.Divu -> fun r -> Bitops.divu wa (ca r) (cb r)
        | Expr.Modu -> fun r -> Bitops.modu (ca r) (cb r)
        | Expr.And -> fun r -> Bitops.logand (ca r) (cb r)
        | Expr.Or -> fun r -> Bitops.logor (ca r) (cb r)
        | Expr.Xor -> fun r -> Bitops.logxor (ca r) (cb r)
        | Expr.Shl -> fun r -> Bitops.shift_left wa (ca r) (cb r)
        | Expr.Shru -> fun r -> Bitops.shift_right wa (ca r) (cb r)
        | Expr.Shra -> fun r -> Bitops.shift_right_arith wa (ca r) (cb r)
        | Expr.Eq -> fun r -> Bitops.eq (ca r) (cb r)
        | Expr.Neq -> fun r -> Bitops.neq (ca r) (cb r)
        | Expr.Ltu -> fun r -> Bitops.ltu (ca r) (cb r)
        | Expr.Leu -> fun r -> Bitops.leu (ca r) (cb r)
        | Expr.Gtu -> fun r -> Bitops.gtu (ca r) (cb r)
        | Expr.Geu -> fun r -> Bitops.geu (ca r) (cb r)
        | Expr.Lts -> fun r -> Bitops.lts wa (ca r) (cb r)
        | Expr.Les -> fun r -> Bitops.les wa (ca r) (cb r)
        | Expr.Gts -> fun r -> Bitops.gts wa (ca r) (cb r)
        | Expr.Ges -> fun r -> Bitops.ges wa (ca r) (cb r))
    | Expr.Mux (sel, a, b) ->
        let cs = compile sel and ca = compile a and cb = compile b in
        fun r -> if Bitops.is_true (cs r) then ca r else cb r
    | Expr.Slice (a, hi, lo) ->
        let ca = compile a in
        fun r -> Bitops.slice ~hi ~lo (ca r)
    | Expr.Concat (a, b) ->
        let lo_width = wd b in
        let ca = compile a and cb = compile b in
        fun r -> Bitops.concat ~lo_width (ca r) (cb r)
    | Expr.Zext (a, _) -> compile a
    | Expr.Sext (a, w) ->
        let from = wd a in
        let ca = compile a in
        fun r -> Bitops.sext ~from w (ca r)
    | Expr.Mem_read (m, addr) ->
        let ca = compile addr in
        let size = mem_size m in
        fun r -> r.Access.iget_mem m (Eval.wrap_address_i (ca r) size)
  in
  compile e

let simple_stmt ~mem_size = function
  | Stmt.Assign (id, e) ->
      let ce = expr ~mem_size e in
      fun r (w : Access.writer) -> w.set_blocking id (ce r)
  | Stmt.Nonblock (id, e) ->
      let ce = expr ~mem_size e in
      fun r (w : Access.writer) -> w.set_nonblocking id (ce r)
  | Stmt.Mem_write (m, addr, data) ->
      let ca = expr ~mem_size addr and cd = expr ~mem_size data in
      let size = mem_size m in
      fun r (w : Access.writer) ->
        w.write_mem m (Eval.wrap_address (ca r) size) (cd r)
  | Stmt.Skip -> fun _ _ -> ()
  | Stmt.Block _ | Stmt.If _ | Stmt.Case _ ->
      invalid_arg "Compile.simple_stmt: control statement in a segment"

type t = {
  cfg : Cfg.t;
  vdg : Vdg.t;
  segments : (Access.reader -> Access.writer -> unit) array array;
  selectors : compiled_expr array;
  choosers : (Bits.t -> int) array;
  seg_sites : (int * int * compiled_expr) array array;
  has_blocking : bool;
}

let chooser (d : Cfg.decision) : Bits.t -> int =
  match d.labels with
  | None -> fun v -> if Bits.is_true v then 0 else 1
  | Some labels when Array.length labels > 8 ->
      let table = Hashtbl.create (Array.length labels * 2) in
      Array.iteri
        (fun i label ->
          let key = Bits.to_int64 label in
          if not (Hashtbl.mem table key) then Hashtbl.add table key i)
        labels;
      let default = Array.length labels in
      fun v ->
        (match Hashtbl.find_opt table (Bits.to_int64 v) with
        | Some i -> i
        | None -> default)
  | Some labels ->
      let n = Array.length labels in
      fun v ->
        let rec scan i =
          if i >= n then n else if Bits.equal labels.(i) v then i
          else scan (i + 1)
        in
        scan 0

let proc ~mem_size body =
  let cfg = Cfg.build body in
  let vdg = Vdg.build cfg in
  let n = Array.length cfg.nodes in
  let segments = Array.make n [||] in
  let selectors = Array.make n (fun _ -> Bits.of_bool false) in
  let choosers = Array.make n (fun _ -> 0) in
  let seg_sites = Array.make n [||] in
  let has_blocking = ref false in
  Array.iteri
    (fun i node ->
      match node with
      | Cfg.Segment s ->
          if Array.length s.blocking > 0 then has_blocking := true;
          segments.(i) <-
            Array.of_list (List.map (simple_stmt ~mem_size) s.stmts);
          seg_sites.(i) <-
            Array.map
              (fun (m, addr_e) -> (m, mem_size m, expr ~mem_size addr_e))
              s.mem_sites
      | Cfg.Decision d ->
          selectors.(i) <- expr ~mem_size d.selector;
          choosers.(i) <- chooser d
      | Cfg.Exit -> ())
    cfg.nodes;
  {
    cfg;
    vdg;
    segments;
    selectors;
    choosers;
    seg_sites;
    has_blocking = !has_blocking;
  }

let exec t ?record reader writer =
  let nodes = t.cfg.nodes in
  let rec walk cur =
    match nodes.(cur) with
    | Cfg.Exit -> ()
    | Cfg.Segment s ->
        let closures = t.segments.(cur) in
        for i = 0 to Array.length closures - 1 do
          closures.(i) reader writer
        done;
        walk s.succ
    | Cfg.Decision d ->
        let choice = t.choosers.(cur) (t.selectors.(cur) reader) in
        (match record with Some arr -> arr.(cur) <- choice | None -> ());
        walk d.targets.(choice)
  in
  walk t.cfg.entry

let fault_choice t node_id reader =
  t.choosers.(node_id) (t.selectors.(node_id) reader)

(* --- payload-compiled procs --- *)

let simple_stmt_i ~sig_width ~mem_width ~mem_size =
  let expr_i = expr_i ~sig_width ~mem_width ~mem_size in
  function
  | Stmt.Assign (id, e) ->
      let ce = expr_i e in
      fun r (w : Access.iwriter) -> w.iset_blocking id (ce r)
  | Stmt.Nonblock (id, e) ->
      let ce = expr_i e in
      fun r (w : Access.iwriter) -> w.iset_nonblocking id (ce r)
  | Stmt.Mem_write (m, addr, data) ->
      let ca = expr_i addr and cd = expr_i data in
      let size = mem_size m in
      fun r (w : Access.iwriter) ->
        w.iwrite_mem m (Eval.wrap_address_i (ca r) size) (cd r)
  | Stmt.Skip -> fun _ _ -> ()
  | Stmt.Block _ | Stmt.If _ | Stmt.Case _ ->
      invalid_arg "Compile.simple_stmt_i: control statement in a segment"

type ti = {
  icfg : Cfg.t;
  ivdg : Vdg.t;
  isegments : (Access.ireader -> Access.iwriter -> unit) array array;
  iselectors : compiled_expr_i array;
  ichoosers : (int64 -> int) array;
  iseg_sites : (int * int * compiled_expr_i) array array;
  ihas_blocking : bool;
}

(* Case labels share the scrutinee's width (design-validated), so payload
   equality is full equality and the chooser never needs widths. *)
let chooser_i (d : Cfg.decision) : int64 -> int =
  match d.labels with
  | None -> fun v -> if v <> 0L then 0 else 1
  | Some labels when Array.length labels > 8 ->
      let table = Hashtbl.create (Array.length labels * 2) in
      Array.iteri
        (fun i label ->
          let key = Bits.to_int64 label in
          if not (Hashtbl.mem table key) then Hashtbl.add table key i)
        labels;
      let default = Array.length labels in
      fun v ->
        (match Hashtbl.find_opt table v with
        | Some i -> i
        | None -> default)
  | Some labels ->
      let n = Array.length labels in
      let keys = Array.map Bits.to_int64 labels in
      fun v ->
        let rec scan i =
          if i >= n then n
          else if Int64.equal keys.(i) v then i
          else scan (i + 1)
        in
        scan 0

let proc_i ~sig_width ~mem_width ~mem_size body =
  let cfg = Cfg.build body in
  let vdg = Vdg.build cfg in
  let expr_i = expr_i ~sig_width ~mem_width ~mem_size in
  let n = Array.length cfg.nodes in
  let isegments = Array.make n [||] in
  let iselectors = Array.make n (fun _ -> 0L) in
  let ichoosers = Array.make n (fun _ -> 0) in
  let iseg_sites = Array.make n [||] in
  let has_blocking = ref false in
  Array.iteri
    (fun i node ->
      match node with
      | Cfg.Segment s ->
          if Array.length s.blocking > 0 then has_blocking := true;
          isegments.(i) <-
            Array.of_list
              (List.map (simple_stmt_i ~sig_width ~mem_width ~mem_size)
                 s.stmts);
          iseg_sites.(i) <-
            Array.map
              (fun (m, addr_e) -> (m, mem_size m, expr_i addr_e))
              s.mem_sites
      | Cfg.Decision d ->
          iselectors.(i) <- expr_i d.selector;
          ichoosers.(i) <- chooser_i d
      | Cfg.Exit -> ())
    cfg.nodes;
  {
    icfg = cfg;
    ivdg = vdg;
    isegments;
    iselectors;
    ichoosers;
    iseg_sites;
    ihas_blocking = !has_blocking;
  }

let exec_i t ?record reader writer =
  let nodes = t.icfg.nodes in
  let rec walk cur =
    match nodes.(cur) with
    | Cfg.Exit -> ()
    | Cfg.Segment s ->
        let closures = t.isegments.(cur) in
        for i = 0 to Array.length closures - 1 do
          closures.(i) reader writer
        done;
        walk s.succ
    | Cfg.Decision d ->
        let choice = t.ichoosers.(cur) (t.iselectors.(cur) reader) in
        (match record with Some arr -> arr.(cur) <- choice | None -> ());
        walk d.targets.(choice)
  in
  walk t.icfg.entry

let fault_choice_i t node_id reader =
  t.ichoosers.(node_id) (t.iselectors.(node_id) reader)
