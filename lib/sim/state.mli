(** Flat engine state: every signal and every memory word of a design in
    preallocated [int64] Bigarrays (struct-of-arrays), one slot per value,
    masked payloads as defined by {!Rtlir.Bitops}.

    This is the shared storage representation behind the flat simulator
    backend and the concurrent engine's good network: widths live in
    parallel [int] arrays (per signal / per memory), not per value, so a
    read or write is a single unboxed Bigarray access. The record is
    exposed so allocation-free hot loops can hit the Bigarrays directly
    with [Bigarray.Array1.unsafe_get]/[unsafe_set] instead of going through
    (possibly non-inlined) accessor calls. *)

open Rtlir

type i64a = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  nsig : int;
  sig_v : i64a;  (** signal payloads, indexed by signal id *)
  widths : int array;  (** per signal id *)
  mem_v : i64a;  (** all memories concatenated *)
  mem_base : int array;  (** per memory id: first word's index in [mem_v] *)
  mem_sizes : int array;
  mem_widths : int array;
}

(** Fresh state: signals zero, memories zero or their declared init image. *)
val create : Design.t -> t

val get : t -> int -> int64
val set : t -> int -> int64 -> unit

(** Memory access by (memory id, wrapped address). *)
val get_mem : t -> int -> int -> int64

val set_mem : t -> int -> int -> int64 -> unit
val width : t -> int -> int
val mem_width : t -> int -> int
val mem_size : t -> int -> int

(** Total memory words across all memories. *)
val mem_words : t -> int

(* Boxed-compatibility reads (allocate). *)

val get_bits : t -> int -> Bits.t
val get_mem_bits : t -> int -> int -> Bits.t

(** Deep copy (fresh Bigarrays). *)
val copy : t -> t

(** Copy all payloads from [src] into [dst] (same design). *)
val blit : src:t -> dst:t -> unit

(** [with_storage t ~sig_v ~mem_v] is a view of [t] whose payloads live in
    the caller-provided Bigarrays (e.g. slices of one mmap-backed slab):
    the current contents of [t] are blitted in and the returned state
    shares [t]'s width/memory metadata. Dimensions must match exactly. *)
val with_storage : t -> sig_v:i64a -> mem_v:i64a -> t
