(** AST-walking statement interpreter — executes a behavioral body directly
    over the statement tree (the interpreted engine's path). *)

open Rtlir

(** [exec ~mem_size reader writer body] runs [body]. Blocking assignments go
    through [writer.set_blocking] and must be immediately observable via
    [reader.get]; nonblocking and memory writes are deferred to the engine. *)
val exec :
  mem_size:(int -> int) -> Access.reader -> Access.writer -> Stmt.t -> unit

(** Payload-level variant over the unboxed access records. *)
val exec_i :
  sig_width:(int -> int) ->
  mem_width:(int -> int) ->
  mem_size:(int -> int) ->
  Access.ireader ->
  Access.iwriter ->
  Stmt.t ->
  unit
