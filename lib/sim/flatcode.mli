(** Allocation-free 2-state stack machine over flat engine state.

    The flat simulator backend's evaluation and write path: expressions
    compile to flat instruction vectors with operand widths baked in;
    execution runs on a Bigarray operand stack so intermediates never leave
    unboxed [int64] registers. The context also owns the write-through
    machinery (stuck-at force masks, change notification, preallocated
    nonblocking-assignment buffers), so a steady-state settle/step loop
    performs no minor-heap allocation — with the documented exception of
    [Divu]/[Modu], whose unsigned-division helpers box.

    Change notification is int-only: [on_change sig_id] / [on_mem_change
    mem_id] callbacks carry no values, keeping closure boundaries free of
    int64 crossings. *)

open Rtlir

type prog
type stmt_prog

(* Scheduling-discipline violations (payload: signal or memory id). The
   simulator wraps these into [Simulator.Unstable] with named signals. *)
exception Blocking_in_ff of int
exception Nonblocking_in_comb of int
exception Mem_write_in_comb of int

val compile :
  sig_width:(int -> int) ->
  mem_width:(int -> int) ->
  mem_size:(int -> int) ->
  mem_base:(int -> int) ->
  Expr.t ->
  prog

val compile_stmt :
  sig_width:(int -> int) ->
  mem_width:(int -> int) ->
  mem_size:(int -> int) ->
  mem_base:(int -> int) ->
  Stmt.t ->
  stmt_prog

type ctx

(** [create ?force st] builds an execution context writing through to
    [st]'s Bigarrays. [force] is a stuck-at site [(signal, bit, value)]
    applied to every write of that signal. *)
val create : ?force:int * int * bool -> State.t -> ctx

val set_on_change : ctx -> (int -> unit) -> unit
val set_on_mem_change : ctx -> (int -> unit) -> unit

(** Evaluate an expression; the result is left in the scratch stack and
    read back with {!result}. *)
val run : ctx -> prog -> unit

val result : ctx -> int64

(** Write a signal: apply the force mask, compare against the current
    value, store and notify on change. *)
val write_sig : ctx -> int -> int64 -> unit

(** Evaluate and write (continuous assignment body). *)
val run_assign : ctx -> int -> prog -> unit

(** Execute a behavioral body. [ff] selects the write discipline:
    edge-triggered bodies may only write nonblocking (buffered), level
    bodies only blocking (immediate). *)
val exec : ctx -> ff:bool -> stmt_prog -> unit

(** Append to the nonblocking buffers directly (used by the non-flatcode
    eval styles sharing this context). *)
val push_nba : ctx -> int -> int64 -> unit

(** [push_nba_mem ctx m abs_idx v]: absolute word index into the flat
    memory image. *)
val push_nba_mem : ctx -> int -> int -> int64 -> unit

(** Commit buffered nonblocking writes: signals in execution order, then
    memory words in execution order (matching the boxed backend). *)
val commit_nba : ctx -> unit

val has_pending_nba : ctx -> bool

(** Address wrapping onto [0..size-1] (unsigned modulo). *)
val wrap_addr : int64 -> int -> int
