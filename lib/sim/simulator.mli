(** Single-network event-driven / cycle-based simulator.

    Simulates one network (fault-free, or with one stuck-at bit forced), in
    one of three evaluation styles:

    - {e closure-compiled} ([Closures]): everything compiles once into
      nested closures — the fast path used by the golden reference and (with
      cycle-based scheduling) the VFsim baseline;
    - {e AST-walking} ([Ast]): expressions and statements are walked as
      trees on every evaluation;
    - {e bytecode} ([Bytecode]): vvp-style stack-machine execution — the
      Iverilog-fidelity path used by the IFsim baseline.

    and one of two value representations:

    - {e flat} ([Flat], the default): signal and memory state lives in
      preallocated int64 Bigarrays ({!State}); evaluation runs on unboxed
      payloads with widths resolved at compile time, and the steady-state
      step loop performs no minor-heap allocation under the [Bytecode]
      style (see {!Flatcode});
    - {e boxed} ([Boxed]): the historical one-[Bits.t]-per-value
      representation, kept as the cost-model baseline for IFsim/VFsim and
      as the reference for the representation benchmark.

    Both representations produce identical traces and verdicts: scheduling
    orders, nonblocking commit order, and arithmetic semantics are shared.

    and one of three scheduling styles:

    - {e levelized event-driven} ([Levelized]): only combinational nodes
      whose inputs changed are re-evaluated, once each, in topological
      order;
    - {e FIFO event wheel} ([Fifo]): nodes are evaluated in event arrival
      order without levelization — reconvergent fanout causes glitch
      re-evaluations, as in Iverilog's dynamic scheduler;
    - {e cycle-based} ([Cycle_based]): every combinational node is
      re-evaluated every settle, in topological order (Verilator-style
      full evaluation).

    A step models one Verilog time slot: settle combinational logic, detect
    clock edges (after the settle — event nodes are postponed past blocking
    events), run fired edge-triggered processes, commit nonblocking updates,
    settle again; repeated while derived clocks keep firing. *)

open Rtlir

type scheduler = Levelized | Fifo | Cycle_based

type eval_style = Closures | Ast | Bytecode

type repr = Boxed | Flat

type config = { eval : eval_style; scheduler : scheduler; repr : repr }

val default_config : config

type t

(** [create ?config ?force graph] builds a simulator instance. [force] is a
    stuck-at site [(signal, bit, value)]: every write to that signal has the
    bit forced, including initialisation. *)
val create : ?config:config -> ?force:int * int * bool -> Elaborate.t -> t

val graph : t -> Elaborate.t

(** Drive an input port. Takes effect at the next [step]. *)
val set_input : t -> int -> Bits.t -> unit

(** Invert one bit of a signal in place (single-event-upset injection). *)
val flip_bit : t -> int -> int -> unit

(** Advance one time slot. *)
val step : t -> unit

val peek : t -> int -> Bits.t
val peek_mem : t -> int -> int -> Bits.t

(** Current values of all output ports, in [graph.outputs] order. *)
val outputs : t -> Bits.t array

(** Number of behavioral-node body executions performed so far. *)
val proc_executions : t -> int

exception Unstable of string
