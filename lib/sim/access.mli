(** Value access interfaces shared by the evaluators and interpreters.

    Engines provide readers/writers over their own state representation:
    the good simulator reads plain arrays, the concurrent engine overlays a
    fault's diffs on the good state. Memory addresses are pre-wrapped to
    [0..size-1] by the evaluators.

    Two parallel families exist: the boxed {!reader}/{!writer} over
    {!Rtlir.Bits.t} (compatibility surface, used by the boxed simulator
    backend and external probes) and the unboxed {!ireader}/{!iwriter} over
    masked [int64] payloads (see {!Rtlir.Bitops}), used by the flat
    representation paths where widths are carried statically by the
    compiled plans. *)

open Rtlir

type reader = {
  get : int -> Bits.t;  (** current value of a signal *)
  get_mem : int -> int -> Bits.t;  (** memory id, wrapped address *)
}

type writer = {
  set_blocking : int -> Bits.t -> unit;
      (** immediate write; later reads in the same execution observe it *)
  set_nonblocking : int -> Bits.t -> unit;
      (** deferred write; committed by the engine at the NBA phase *)
  write_mem : int -> int -> Bits.t -> unit;
      (** deferred memory write (nonblocking semantics), wrapped address *)
}

(** Unboxed payload reader: same contract as {!reader}, values are masked
    [int64] payloads whose widths the caller carries statically. *)
type ireader = { iget : int -> int64; iget_mem : int -> int -> int64 }

(** Unboxed payload writer: same contract as {!writer}. *)
type iwriter = {
  iset_blocking : int -> int64 -> unit;
  iset_nonblocking : int -> int64 -> unit;
  iwrite_mem : int -> int -> int64 -> unit;
}

(** Plain overlay-free reader over flat state. *)
val reader_of_state : State.t -> ireader

(** Boxed view of an unboxed reader, materialising {!Rtlir.Bits.t} values
    from the design's width maps (for probes and compatibility layers). *)
val boxed_reader :
  width:(int -> int) -> mem_width:(int -> int) -> ireader -> reader
