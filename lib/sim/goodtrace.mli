(** Good-network trace capture and warm-start replay.

    The concurrent engine re-simulates the identical good network from
    cycle 0 for every fault batch. A [Goodtrace.t] removes that
    redundancy: one zero-fault capture run records, per cycle, every good
    write the engine performed (inputs, continuous assigns, comb-process
    blocking writes, ff-process nonblocking signal/memory writes), the
    branch decisions each behavioral execution took (so the implicit
    redundancy walk still sees the good control path), the output vector,
    and a full {!State.t} snapshot every [snapshot_every] cycles plus one
    at the end. Replay then applies the recorded writes through the
    engine's own [write_good]/[write_good_mem] seams instead of
    re-executing good procs, and a batch whose earliest fault activation
    is [a] can start from the latest snapshot [<= a], skipping the dead
    prefix entirely.

    Everything in a finished trace is immutable (plain [int]/[int64]
    arrays and Bigarrays), so one trace can be shared read-only across
    worker domains. Snapshots returned by {!snapshot_at} must only be
    used as a [State.blit] source, never mutated.

    The event stream is strictly ordered: a cursor consumes events in
    exactly the order the capture run produced them, and any structural
    disagreement (wrong event kind, wrong node, wrong cycle count) raises
    {!Trace_mismatch} — replay never silently drifts. *)

type i64a = State.i64a

type t = {
  cycles : int;  (** workload length the trace was captured for *)
  clock : int;  (** the workload's clock signal id *)
  nout : int;  (** number of output ports recorded per cycle *)
  code : int array;  (** event stream opcodes and operands *)
  vals : i64a;  (** event payloads, consumed in parallel with [code] *)
  cycle_code : int array;
      (** length [cycles + 1]: [cycle_code.(c)] is the [code] offset where
          cycle [c]'s events begin; [\[0, cycle_code.(0))] holds the
          init-settle events and [cycle_code.(cycles)] is the stream end. *)
  cycle_vals : int array;  (** same boundaries, into [vals] *)
  outputs : i64a;  (** per-cycle output vectors, [cycles × nout] row-major *)
  snapshots : (int * State.t) array;
      (** ascending [(cycle, state)] pairs: the good state at the start of
          [cycle], taken every [snapshot_every] cycles and always at
          [cycles] (so a never-activating fault can skip the whole run). *)
  snapshot_every : int;
  capture_bytes : int;  (** approximate heap footprint of the capture *)
  spilled : bool;
      (** [true] when the int64 payloads ([vals], [outputs], snapshot
          storage) live in a disk-backed mmap slab (see {!spill}). *)
}

exception Trace_mismatch of string

(** {1 Capture} *)

type builder

val builder :
  cycles:int -> clock:int -> nout:int -> snapshot_every:int -> builder

val rec_input : builder -> int -> int64 -> unit
val rec_step : builder -> unit
val rec_assign : builder -> pos:int -> target:int -> int64 -> unit

(** [writes] is the process's blocking-write sequence in program order;
    [choices] the taken-branch record at the process's decision nodes, in
    canonical (ascending CFG node id) order. *)
val rec_comb_proc :
  builder ->
  pos:int ->
  pid:int ->
  writes:(int * int64) list ->
  choices:int array ->
  unit

val rec_ff_proc :
  builder ->
  pid:int ->
  writes:(int * int64) list ->
  mem_writes:(int * int * int64) list ->
  choices:int array ->
  unit

(** Marks the end of the initialisation settle; everything recorded before
    this belongs to the pre-cycle-0 prefix. *)
val rec_init_done : builder -> unit

(** Called once per simulated cycle, after the engine observed it: records
    the output vector and (on a snapshot boundary) a deep copy of the good
    state. *)
val rec_cycle_done : builder -> outputs:int64 array -> state:State.t -> unit

(** Pack the builder into an immutable trace. Raises {!Trace_mismatch} if
    the capture did not run the declared number of cycles. *)
val finish : builder -> t

(** {1 Replay} *)

type cursor

(** [cursor t ~start] positions a fresh cursor at the first event of cycle
    [start] ([start = 0] includes the init-settle prefix). *)
val cursor : t -> start:int -> cursor

(** [Some (id, v)] if the next event is an input write, [None] otherwise
    (the caller then takes the step marker). *)
val take_input : cursor -> (int * int64) option

val take_step : cursor -> unit

(** The recorded result of the continuous assign at comb position [pos]. *)
val take_assign : cursor -> pos:int -> int64

(** Replays the comb process at position [pos]: restores the recorded
    branch choices via [set_choice k choice] (k-th decision node in
    canonical order) and applies the recorded blocking writes in order
    through [write]. *)
val take_comb_proc :
  cursor ->
  pos:int ->
  pid:int ->
  set_choice:(int -> int -> unit) ->
  write:(int -> int64 -> unit) ->
  unit

(** Replays one ff-process execution: restores branch choices and returns
    the recorded [(signal, value)] and [(mem, addr, value)] nonblocking
    write lists in program order. *)
val take_ff_proc :
  cursor ->
  pid:int ->
  set_choice:(int -> int -> unit) ->
  (int * int64) list * (int * int * int64) list

(** {1 Snapshots} *)

(** The good state at the start of [cycle]. Raises {!Trace_mismatch} if no
    snapshot was taken there. The result is shared with the trace: use it
    only as a [State.blit ~src]. *)
val snapshot_at : t -> int -> State.t

(** Largest snapshot cycle [<= activation], or [0] (cold start) if none. *)
val start_for : t -> activation:int -> int

(** A warm-start request: replay [trace] beginning at snapshot [start]. *)
type warm = { trace : t; start : int }

(** [with_snapshots t ~base ~at] is [t] with its snapshot set replaced by
    exact post-hoc snapshots at the requested cycle boundaries (clamped to
    [\[1, cycles\]], deduplicated; the final boundary [cycles] is always
    kept so never-activating faults still skip the whole run). Because the
    event stream is a complete state-update log, each snapshot is
    reconstructed by replaying all recorded signal {e and memory} writes
    over [base] — which must be a fresh [State.create] of the captured
    design and is consumed (mutated) by the call. [capture_bytes] is
    recomputed for the new snapshot set. This is the seam the schedule
    planner's adaptive policy uses to move snapshots onto batch activation
    boundaries without re-running the capture. *)
val with_snapshots : t -> base:State.t -> at:int list -> t

(** Move the trace's int64 payloads ([vals], [outputs], every snapshot's
    signal/memory storage) into one disk-backed [Unix.map_file] slab over
    an unlinked temp file, so million-cycle captures no longer hold the
    delta stream in heap memory. The [int] arrays ([code], cycle indices)
    stay on the heap — they are the smaller half and OCaml [int] arrays
    cannot be mmap-backed. Replay is unchanged (same Bigarray access
    path); idempotent on an already-spilled trace. *)
val spill : t -> t

(** {1 Activation windows} *)

type site_kind = Stuck0 | Stuck1 | Transient of int
type site = { s_signal : int; s_bit : int; s_kind : site_kind }

(** [scan_writes t f] calls [f cycle id v] for every recorded good signal
    write, in stream order. Events in the init-settle prefix are
    attributed to cycle 0; an event at [code] offset [i] belongs to cycle
    [c] iff [cycle_code.(c) <= i < cycle_code.(c + 1)], so writes landing
    on the last recorded cycle report [cycles - 1]. Exposed for tests. *)
val scan_writes : t -> (int -> int -> int64 -> unit) -> unit

(** [first_divergence t ~comb_driven sites] is the conservative activation
    rule (pre-cone): the first cycle each fault site's forced bit differs
    from a recorded good value at all, regardless of whether the diff can
    propagate anywhere:

    - [Transient c] activates at [c] (or never, i.e. [t.cycles], when [c]
      is past the end);
    - a stuck-at fault on a non-comb-driven signal whose stuck value
      differs from the pristine zero state activates at 0 (its forced bit
      is readable during the init settle);
    - otherwise a stuck-at activates at the first cycle some recorded good
      write to its signal carries a bit value different from the stuck
      value (init-settle writes count as cycle 0), or never.

    [comb_driven] is indexed by signal id. Kept as the baseline the bench
    compares the cone-refined rule against, and as the sound fallback for
    state-holding sites inside {!activations}. *)
val first_divergence : t -> comb_driven:bool array -> site array -> int array

(** [activations t ~cone sites] is the cone-refined activation window: the
    first cycle each fault site can *persistently or observably* diverge
    from the good network.

    Sites on state-holding signals (nonblocking targets), on signals with
    a combinational path into an edge sensitivity list, and on wires a
    comb process both writes and reads ([Cone.self_read]) get the
    {!first_divergence} rule — a diff there survives on its own, can
    create/suppress clock edges, or can steer sibling writes of the same
    body, so first divergence is the only sound window. Every other stuck site is combinationally recomputed (or an
    undriven input): its diff is memoryless, and the activation is the
    first cycle the forced bit differs from the tracked good value at a
    moment it can actually be captured — an edge-triggered process firing
    whose read cone contains the signal ({!Flow.Cone.reaches_ff}), or a
    cycle boundary when the signal combinationally reaches an output
    ([out_comb]). Before that cycle the fault network's registers,
    memories and outputs are provably bit-identical to the good network,
    so a warm start from any snapshot [<= activation] reproduces the cold
    verdict exactly.

    Activations are pointwise [>=] {!first_divergence} on stuck sites, so
    batch minima — and the dead prefix skipped — only grow. *)
val activations : t -> cone:Flow.Cone.t -> site array -> int array

(** The recorded output vector of one cycle (mostly for tests). *)
val output_row : t -> int -> int64 array
