open Rtlir

type i64a = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  nsig : int;
  sig_v : i64a;
  widths : int array;
  mem_v : i64a;
  mem_base : int array;
  mem_sizes : int array;
  mem_widths : int array;
}

let ba n : i64a =
  let a = Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout n in
  Bigarray.Array1.fill a 0L;
  a

let create (d : Design.t) =
  let nsig = Design.num_signals d in
  let widths = Array.map (fun (s : Design.signal) -> s.width) d.signals in
  let nmem = Array.length d.mems in
  let mem_base = Array.make nmem 0 in
  let total = ref 0 in
  Array.iteri
    (fun m (mem : Design.mem) ->
      mem_base.(m) <- !total;
      total := !total + mem.size)
    d.mems;
  let mem_v = ba !total in
  Array.iteri
    (fun m (mem : Design.mem) ->
      match mem.init with
      | None -> ()
      | Some init ->
          Array.iteri
            (fun a v ->
              Bigarray.Array1.set mem_v (mem_base.(m) + a) (Bits.to_int64 v))
            init)
    d.mems;
  {
    nsig;
    sig_v = ba nsig;
    widths;
    mem_v;
    mem_base;
    mem_sizes = Array.map (fun (m : Design.mem) -> m.size) d.mems;
    mem_widths = Array.map (fun (m : Design.mem) -> m.data_width) d.mems;
  }

let get t id = Bigarray.Array1.unsafe_get t.sig_v id [@@inline]
let set t id v = Bigarray.Array1.unsafe_set t.sig_v id v [@@inline]

let get_mem t m a =
  Bigarray.Array1.unsafe_get t.mem_v (t.mem_base.(m) + a)
[@@inline]

let set_mem t m a v =
  Bigarray.Array1.unsafe_set t.mem_v (t.mem_base.(m) + a) v
[@@inline]

let width t id = t.widths.(id) [@@inline]
let mem_width t m = t.mem_widths.(m) [@@inline]
let mem_size t m = t.mem_sizes.(m) [@@inline]
let mem_words t = Bigarray.Array1.dim t.mem_v

let get_bits t id = Bits.make t.widths.(id) (get t id)
let get_mem_bits t m a = Bits.make t.mem_widths.(m) (get_mem t m a)

let copy t =
  let sig_v = ba t.nsig in
  Bigarray.Array1.blit t.sig_v sig_v;
  let mem_v = ba (Bigarray.Array1.dim t.mem_v) in
  Bigarray.Array1.blit t.mem_v mem_v;
  { t with sig_v; mem_v }

let blit ~src ~dst =
  Bigarray.Array1.blit src.sig_v dst.sig_v;
  Bigarray.Array1.blit src.mem_v dst.mem_v

let with_storage t ~sig_v ~mem_v =
  if Bigarray.Array1.dim sig_v <> t.nsig then
    invalid_arg "State.with_storage: sig_v dimension mismatch";
  if Bigarray.Array1.dim mem_v <> Bigarray.Array1.dim t.mem_v then
    invalid_arg "State.with_storage: mem_v dimension mismatch";
  Bigarray.Array1.blit t.sig_v sig_v;
  Bigarray.Array1.blit t.mem_v mem_v;
  { t with sig_v; mem_v }
