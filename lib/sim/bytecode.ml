open Rtlir

(* vvp computes 4-state vectors (value plane + X plane). Our designs never
   produce X (2-state inputs, no tristates), so results equal the 2-state
   semantics — but the per-operation X bookkeeping is the honest cost of the
   Iverilog execution model and is carried in full. *)
type v4 = { av : int64; bx : int64; w : int }  (* bx bit set = unknown *)

let mask w = if w = 64 then -1L else Int64.sub (Int64.shift_left 1L w) 1L
let of_bits b = { av = Bits.to_int64 b; bx = 0L; w = Bits.width b }

let to_bits v =
  (* X never reaches a committed value in these designs; project X to 0 as
     a 2-state simulator would read it back. *)
  Bits.make v.w (Int64.logand v.av (Int64.lognot v.bx))

let all_x w = { av = 0L; bx = mask w; w }
let has_x v = v.bx <> 0L

let log_and a b =
  let known0_a = Int64.logand (Int64.lognot a.av) (Int64.lognot a.bx) in
  let known0_b = Int64.logand (Int64.lognot b.av) (Int64.lognot b.bx) in
  let res_x =
    Int64.logand
      (Int64.logor a.bx b.bx)
      (Int64.lognot (Int64.logor known0_a known0_b))
  in
  let res_v =
    Int64.logand (Int64.logand a.av b.av) (Int64.lognot res_x)
  in
  { av = Int64.logand res_v (mask a.w); bx = Int64.logand res_x (mask a.w); w = a.w }

let log_or a b =
  let known1_a = Int64.logand a.av (Int64.lognot a.bx) in
  let known1_b = Int64.logand b.av (Int64.lognot b.bx) in
  let res_x =
    Int64.logand
      (Int64.logor a.bx b.bx)
      (Int64.lognot (Int64.logor known1_a known1_b))
  in
  let res_v =
    Int64.logand (Int64.logor a.av b.av) (Int64.lognot res_x)
  in
  { av = Int64.logand res_v (mask a.w); bx = Int64.logand res_x (mask a.w); w = a.w }

let log_xor a b =
  let res_x = Int64.logor a.bx b.bx in
  {
    av = Int64.logand (Int64.logxor a.av b.av)
           (Int64.logand (mask a.w) (Int64.lognot res_x));
    bx = Int64.logand res_x (mask a.w);
    w = a.w;
  }

let log_not a =
  {
    av =
      Int64.logand (Int64.lognot a.av)
        (Int64.logand (mask a.w) (Int64.lognot a.bx));
    bx = a.bx;
    w = a.w;
  }

(* Arithmetic and comparisons: any X operand poisons the whole result, as
   in the IEEE 1364 semantics vvp implements. *)
let arith2 op a b =
  if has_x a || has_x b then all_x (Bits.width (op (Bits.zero a.w) (Bits.zero b.w)))
  else of_bits (op (to_bits a) (to_bits b))

let arith1 op a =
  if has_x a then all_x (Bits.width (op (Bits.zero a.w)))
  else of_bits (op (to_bits a))

let apply_bin op a b =
  match op with
  | Expr.And -> log_and a b
  | Expr.Or -> log_or a b
  | Expr.Xor -> log_xor a b
  | Expr.Add -> arith2 Bits.add a b
  | Expr.Sub -> arith2 Bits.sub a b
  | Expr.Mul -> arith2 Bits.mul a b
  | Expr.Divu -> arith2 Bits.divu a b
  | Expr.Modu -> arith2 Bits.modu a b
  | Expr.Shl -> arith2 Bits.shift_left a b
  | Expr.Shru -> arith2 Bits.shift_right a b
  | Expr.Shra -> arith2 Bits.shift_right_arith a b
  | Expr.Eq -> arith2 Bits.eq a b
  | Expr.Neq -> arith2 Bits.neq a b
  | Expr.Ltu -> arith2 Bits.ltu a b
  | Expr.Leu -> arith2 Bits.leu a b
  | Expr.Gtu -> arith2 Bits.gtu a b
  | Expr.Geu -> arith2 Bits.geu a b
  | Expr.Lts -> arith2 Bits.lts a b
  | Expr.Les -> arith2 Bits.les a b
  | Expr.Gts -> arith2 Bits.gts a b
  | Expr.Ges -> arith2 Bits.ges a b

let apply_un op a =
  match op with
  | Expr.Not -> log_not a
  | Expr.Neg -> arith1 Bits.neg a
  | Expr.Red_and ->
      if has_x a then all_x 1 else of_bits (Bits.reduce_and (to_bits a))
  | Expr.Red_or ->
      if has_x a then all_x 1 else of_bits (Bits.reduce_or (to_bits a))
  | Expr.Red_xor ->
      if has_x a then all_x 1 else of_bits (Bits.reduce_xor (to_bits a))

type instr =
  | Push of v4
  | Load of int
  | Load_mem of int * int  (* memory id, size *)
  | Bin of Expr.binop
  | Un of Expr.unop
  | Do_slice of int * int
  | Do_zext of int
  | Do_sext of int
  | Do_concat
  | Do_mux

type program = { code : instr array; max_stack : int }

let rec emit ~mem_size acc e =
  match e with
  | Expr.Const b -> Push (of_bits b) :: acc
  | Expr.Sig id -> Load id :: acc
  | Expr.Unop (op, a) -> Un op :: emit ~mem_size acc a
  | Expr.Binop (op, a, b) ->
      Bin op :: emit ~mem_size (emit ~mem_size acc a) b
  | Expr.Mux (sel, a, b) ->
      Do_mux :: emit ~mem_size (emit ~mem_size (emit ~mem_size acc sel) a) b
  | Expr.Slice (a, hi, lo) -> Do_slice (hi, lo) :: emit ~mem_size acc a
  | Expr.Concat (a, b) ->
      Do_concat :: emit ~mem_size (emit ~mem_size acc a) b
  | Expr.Zext (a, w) -> Do_zext w :: emit ~mem_size acc a
  | Expr.Sext (a, w) -> Do_sext w :: emit ~mem_size acc a
  | Expr.Mem_read (m, addr) ->
      Load_mem (m, mem_size m) :: emit ~mem_size acc addr

let rec depth = function
  | Expr.Const _ | Expr.Sig _ -> 1
  | Expr.Unop (_, a) | Expr.Slice (a, _, _) | Expr.Zext (a, _)
  | Expr.Sext (a, _) ->
      depth a
  | Expr.Binop (_, a, b) | Expr.Concat (a, b) ->
      max (depth a) (1 + depth b)
  | Expr.Mux (s, a, b) -> max (depth s) (max (1 + depth a) (2 + depth b))
  | Expr.Mem_read (_, a) -> depth a

let compile ~mem_size e =
  {
    code = Array.of_list (List.rev (emit ~mem_size [] e));
    max_stack = depth e + 1;
  }

let zero_v4 = { av = 0L; bx = 0L; w = 1 }

(* Evaluation scratch stack. Domain-local: concurrent campaigns run one
   simulator per worker domain, and a process-global buffer would be a data
   race (two domains growing and writing the same array). *)
let scratch_key = Domain.DLS.new_key (fun () -> ref (Array.make 64 zero_v4))

let eval_v4 p (r : Access.reader) =
  let scratch = Domain.DLS.get scratch_key in
  let stack =
    if Array.length !scratch >= p.max_stack then !scratch
    else begin
      scratch := Array.make (2 * p.max_stack) zero_v4;
      !scratch
    end
  in
  let sp = ref 0 in
  let push v =
    stack.(!sp) <- v;
    incr sp
  in
  let pop () =
    decr sp;
    stack.(!sp)
  in
  let code = p.code in
  for pc = 0 to Array.length code - 1 do
    match code.(pc) with
    | Push b -> push b
    | Load id -> push (of_bits (r.Access.get id))
    | Load_mem (m, size) ->
        let addr = pop () in
        if has_x addr then push (all_x 64)
        else
          push
            (of_bits
               (r.Access.get_mem m (Eval.wrap_address (to_bits addr) size)))
    | Bin op ->
        let b = pop () in
        let a = pop () in
        push (apply_bin op a b)
    | Un op -> push (apply_un op (pop ()))
    | Do_slice (hi, lo) ->
        let a = pop () in
        push
          {
            av = Int64.logand (Int64.shift_right_logical a.av lo)
                   (mask (hi - lo + 1));
            bx = Int64.logand (Int64.shift_right_logical a.bx lo)
                   (mask (hi - lo + 1));
            w = hi - lo + 1;
          }
    | Do_zext w ->
        let a = pop () in
        push { a with w }
    | Do_sext w ->
        let a = pop () in
        if has_x a then push (all_x w)
        else push (of_bits (Bits.sext (to_bits a) w))
    | Do_concat ->
        let b = pop () in
        let a = pop () in
        push
          {
            av = Int64.logor (Int64.shift_left a.av b.w) b.av;
            bx = Int64.logor (Int64.shift_left a.bx b.w) b.bx;
            w = a.w + b.w;
          }
    | Do_mux ->
        let e = pop () in
        let t = pop () in
        let s = pop () in
        if has_x s then push (all_x t.w)
        else push (if Int64.logand s.av (mask s.w) <> 0L then t else e)
  done;
  pop ()

let eval p r = to_bits (eval_v4 p r)

type stmt_program =
  | Sblock of stmt_program array
  | Sif of program * stmt_program * stmt_program
  | Scase of program * (Bits.t * stmt_program) array * stmt_program
  | Sassign of int * program
  | Snonblock of int * program
  | Smem_write of int * int * program * program
  | Sskip

let rec compile_stmt ~mem_size = function
  | Stmt.Block l ->
      Sblock (Array.of_list (List.map (compile_stmt ~mem_size) l))
  | Stmt.If (c, a, b) ->
      Sif
        (compile ~mem_size c, compile_stmt ~mem_size a, compile_stmt ~mem_size b)
  | Stmt.Case (scrut, arms, dflt) ->
      Scase
        ( compile ~mem_size scrut,
          Array.of_list
            (List.map
               (fun (label, arm) -> (label, compile_stmt ~mem_size arm))
               arms),
          compile_stmt ~mem_size dflt )
  | Stmt.Assign (id, e) -> Sassign (id, compile ~mem_size e)
  | Stmt.Nonblock (id, e) -> Snonblock (id, compile ~mem_size e)
  | Stmt.Mem_write (m, addr, data) ->
      Smem_write (m, mem_size m, compile ~mem_size addr, compile ~mem_size data)
  | Stmt.Skip -> Sskip

let rec exec sp (r : Access.reader) (w : Access.writer) =
  match sp with
  | Sblock l -> Array.iter (fun s -> exec s r w) l
  | Sif (c, a, b) -> if Bits.is_true (eval c r) then exec a r w else exec b r w
  | Scase (scrut, arms, dflt) ->
      let v = eval scrut r in
      let n = Array.length arms in
      let rec dispatch i =
        if i >= n then exec dflt r w
        else begin
          let label, arm = arms.(i) in
          if Bits.equal label v then exec arm r w else dispatch (i + 1)
        end
      in
      dispatch 0
  | Sassign (id, e) -> w.Access.set_blocking id (eval e r)
  | Snonblock (id, e) -> w.Access.set_nonblocking id (eval e r)
  | Smem_write (m, size, addr, data) ->
      let a = Eval.wrap_address (eval addr r) size in
      w.Access.write_mem m a (eval data r)
  | Sskip -> ()
