open Rtlir

type reader = { get : int -> Bits.t; get_mem : int -> int -> Bits.t }

type writer = {
  set_blocking : int -> Bits.t -> unit;
  set_nonblocking : int -> Bits.t -> unit;
  write_mem : int -> int -> Bits.t -> unit;
}

type ireader = { iget : int -> int64; iget_mem : int -> int -> int64 }

type iwriter = {
  iset_blocking : int -> int64 -> unit;
  iset_nonblocking : int -> int64 -> unit;
  iwrite_mem : int -> int -> int64 -> unit;
}

let reader_of_state st =
  { iget = State.get st; iget_mem = State.get_mem st }

let boxed_reader ~width ~mem_width (r : ireader) =
  {
    get = (fun id -> Bits.make (width id) (r.iget id));
    get_mem = (fun m a -> Bits.make (mem_width m) (r.iget_mem m a));
  }
