open Rtlir

type scheduler = Levelized | Fifo | Cycle_based

type eval_style = Closures | Ast | Bytecode

type repr = Boxed | Flat

type config = { eval : eval_style; scheduler : scheduler; repr : repr }

let default_config = { eval = Closures; scheduler = Levelized; repr = Flat }

exception Unstable of string

(* ------------------------------------------------------------------ *)
(* Boxed backend: the original per-value Bits.t representation, kept
   verbatim as the old-representation baseline (and cost model for the
   IFsim/VFsim baselines). *)
(* ------------------------------------------------------------------ *)

module Bsim = struct
  type t = {
    graph : Elaborate.t;
    config : config;
    values : Bits.t array;
    mems : Bits.t array array;
    force : (int * int * bool) option;
    (* Dirty tracking over topological positions of combinational nodes. *)
    dirty : bool array;
    mutable dirty_hi : int;  (* highest dirty position, -1 when clean *)
    mutable dirty_lo : int;
    (* FIFO event wheel (the Iverilog-style dynamic scheduler): pending node
       positions in arrival order; [dirty] doubles as the queued flag. *)
    fifo : int Queue.t;
    mutable current_pos : int;
        (* combinational node being evaluated right now: a process does not
           re-trigger on its own blocking writes (it is not waiting while it
           runs), so self-marks are suppressed *)
    (* Pending nonblocking updates, in execution order. *)
    mutable nba : (int * Bits.t) list;
    mutable nba_mem : (int * int * Bits.t) list;
    prev_clock : Bits.t array;  (* indexed like values; valid for clocks *)
    comb_eval : (unit -> unit) array;  (* per topological position *)
    ff_run : (unit -> unit) array;  (* per proc id; no-op for comb procs *)
    mutable executions : int;
  }

  let apply_force t id v =
    match t.force with
    | Some (fid, bit, value) when fid = id -> Bits.force_bit v bit value
    | Some _ | None -> v

  (* Marking must update the sweep bounds even when the flag is already set:
     a self-reading comb process leaves its own flag set after the sweep
     passes it, and a later mark must still re-arm the bounds. In FIFO mode
     the flag instead means "queued". *)
  let mark_pos t pos =
    if pos = t.current_pos then ()
    else
      match t.config.scheduler with
      | Fifo ->
          if not t.dirty.(pos) then begin
            t.dirty.(pos) <- true;
            Queue.push pos t.fifo
          end
      | Levelized | Cycle_based ->
          t.dirty.(pos) <- true;
          if pos > t.dirty_hi then t.dirty_hi <- pos;
          if pos < t.dirty_lo then t.dirty_lo <- pos

  let mark_fanout t id =
    let fanout = t.graph.fanout_comb.(id) in
    for i = 0 to Array.length fanout - 1 do
      mark_pos t fanout.(i)
    done

  let mark_mem_fanout t m =
    let fanout = t.graph.fanout_mem.(m) in
    for i = 0 to Array.length fanout - 1 do
      mark_pos t fanout.(i)
    done

  let write_signal t id v =
    let v = apply_force t id v in
    if not (Bits.equal t.values.(id) v) then begin
      t.values.(id) <- v;
      mark_fanout t id
    end

  let write_mem_now t m addr v =
    if not (Bits.equal t.mems.(m).(addr) v) then begin
      t.mems.(m).(addr) <- v;
      mark_mem_fanout t m
    end

  let create ~config ?force g =
    let d = g.Elaborate.design in
    let nsig = Design.num_signals d in
    let values =
      Array.init nsig (fun i -> Bits.zero d.Design.signals.(i).width)
    in
    let mems =
      Array.map
        (fun (m : Design.mem) ->
          match m.init with
          | Some init -> Array.copy init
          | None -> Array.make m.size (Bits.zero m.data_width))
        d.Design.mems
    in
    let ncomb = Array.length g.Elaborate.comb_nodes in
    let t =
      {
        graph = g;
        config;
        values;
        mems;
        force;
        dirty = Array.make ncomb false;
        dirty_hi = -1;
        dirty_lo = ncomb;
        fifo = Queue.create ();
        current_pos = -1;
        nba = [];
        nba_mem = [];
        prev_clock = Array.copy values;
        comb_eval = Array.make ncomb (fun () -> ());
        ff_run = Array.make (Array.length d.Design.procs) (fun () -> ());
        executions = 0;
      }
    in
    (match force with
    | Some (id, bit, value) ->
        t.values.(id) <- Bits.force_bit t.values.(id) bit value
    | None -> ());
    let mem_size m = d.Design.mems.(m).size in
    let reader =
      {
        Access.get = (fun id -> t.values.(id));
        get_mem = (fun m a -> t.mems.(m).(a));
      }
    in
    let comb_writer =
      {
        Access.set_blocking = (fun id v -> write_signal t id v);
        set_nonblocking =
          (fun id _ ->
            raise
              (Unstable
                 (Printf.sprintf "nonblocking write to %s in comb process"
                    (Design.signal_name d id))));
        write_mem =
          (fun _ _ _ -> raise (Unstable "memory write in comb process"));
      }
    in
    let ff_writer =
      {
        Access.set_blocking =
          (fun id _ ->
            raise
              (Unstable
                 (Printf.sprintf "blocking write to %s in ff process"
                    (Design.signal_name d id))));
        set_nonblocking = (fun id v -> t.nba <- (id, v) :: t.nba);
        write_mem = (fun m a v -> t.nba_mem <- (m, a, v) :: t.nba_mem);
      }
    in
    (* Evaluation closures for combinational nodes (both styles expose the
       same [unit -> unit] interface; the interpreted style walks the tree on
       each call). *)
    Array.iteri
      (fun pos node ->
        match node with
        | Elaborate.Cassign i -> (
            let a = d.Design.assigns.(i) in
            match config.eval with
            | Closures ->
                let ce = Compile.expr ~mem_size a.expr in
                t.comb_eval.(pos) <-
                  (fun () -> write_signal t a.target (ce reader))
            | Ast ->
                t.comb_eval.(pos) <-
                  (fun () ->
                    write_signal t a.target (Eval.eval ~mem_size reader a.expr))
            | Bytecode ->
                let prog = Bytecode.compile ~mem_size a.expr in
                t.comb_eval.(pos) <-
                  (fun () -> write_signal t a.target (Bytecode.eval prog reader))
            )
        | Elaborate.Cproc i -> (
            let p = d.Design.procs.(i) in
            match config.eval with
            | Closures ->
                let cp = Compile.proc ~mem_size p.body in
                t.comb_eval.(pos) <-
                  (fun () ->
                    t.executions <- t.executions + 1;
                    Compile.exec cp reader comb_writer)
            | Ast ->
                t.comb_eval.(pos) <-
                  (fun () ->
                    t.executions <- t.executions + 1;
                    Interp.exec ~mem_size reader comb_writer p.body)
            | Bytecode ->
                let sp = Bytecode.compile_stmt ~mem_size p.body in
                t.comb_eval.(pos) <-
                  (fun () ->
                    t.executions <- t.executions + 1;
                    Bytecode.exec sp reader comb_writer)))
      g.Elaborate.comb_nodes;
    Array.iter
      (fun i ->
        let p = d.Design.procs.(i) in
        match config.eval with
        | Closures ->
            let cp = Compile.proc ~mem_size p.body in
            t.ff_run.(i) <-
              (fun () ->
                t.executions <- t.executions + 1;
                Compile.exec cp reader ff_writer)
        | Ast ->
            t.ff_run.(i) <-
              (fun () ->
                t.executions <- t.executions + 1;
                Interp.exec ~mem_size reader ff_writer p.body)
        | Bytecode ->
            let sp = Bytecode.compile_stmt ~mem_size p.body in
            t.ff_run.(i) <-
              (fun () ->
                t.executions <- t.executions + 1;
                Bytecode.exec sp reader ff_writer))
      g.Elaborate.ff_procs;
    (* Initial settle: evaluate everything once. *)
    for pos = 0 to ncomb - 1 do
      t.current_pos <- pos;
      t.comb_eval.(pos) ();
      t.current_pos <- -1
    done;
    t.dirty_hi <- -1;
    t.dirty_lo <- ncomb;
    Array.fill t.dirty 0 ncomb false;
    Queue.clear t.fifo;
    Array.iter (fun c -> t.prev_clock.(c) <- t.values.(c)) g.Elaborate.clocks;
    t

  let settle t =
    let ncomb = Array.length t.comb_eval in
    match t.config.scheduler with
    | Levelized ->
        let pos = ref t.dirty_lo in
        while !pos <= t.dirty_hi do
          if t.dirty.(!pos) then begin
            t.dirty.(!pos) <- false;
            t.current_pos <- !pos;
            t.comb_eval.(!pos) ();
            t.current_pos <- -1
          end;
          incr pos
        done;
        t.dirty_hi <- -1;
        t.dirty_lo <- ncomb
    | Fifo ->
        (* Arrival-order processing without levelization: reconvergent fanout
           makes nodes re-evaluate on glitches, as in a classic event wheel.
           Terminates on acyclic logic; bounded by depth * nodes. *)
        let budget = ref (64 * (ncomb + 1) * (ncomb + 1)) in
        while not (Queue.is_empty t.fifo) do
          decr budget;
          if !budget < 0 then raise (Unstable "event wheel did not settle");
          let pos = Queue.pop t.fifo in
          t.dirty.(pos) <- false;
          t.current_pos <- pos;
          t.comb_eval.(pos) ();
          t.current_pos <- -1
        done
    | Cycle_based ->
        for pos = 0 to ncomb - 1 do
          t.current_pos <- pos;
          t.comb_eval.(pos) ();
          t.current_pos <- -1
        done;
        t.dirty_hi <- -1;
        t.dirty_lo <- ncomb;
        Array.fill t.dirty 0 ncomb false;
        Queue.clear t.fifo

  let edge_fired edge ~old_b ~new_b =
    match edge with
    | Design.Posedge -> (not (Bits.bit old_b 0)) && Bits.bit new_b 0
    | Design.Negedge -> Bits.bit old_b 0 && not (Bits.bit new_b 0)

  let commit_nba t =
    let writes = List.rev t.nba in
    t.nba <- [];
    List.iter (fun (id, v) -> write_signal t id v) writes;
    let mem_writes = List.rev t.nba_mem in
    t.nba_mem <- [];
    List.iter (fun (m, a, v) -> write_mem_now t m a v) mem_writes

  let set_input t id v = write_signal t id v

  let flip_bit t id bit =
    let cur = t.values.(id) in
    write_signal t id (Bits.force_bit cur bit (not (Bits.bit cur bit)))

  let step t =
    settle t;
    let g = t.graph in
    let rounds = ref 0 in
    let continue = ref true in
    while !continue do
      incr rounds;
      if !rounds > 16 then raise (Unstable "clock edge cascade did not settle");
      let fired = ref [] in
      Array.iter
        (fun c ->
          let old_b = t.prev_clock.(c) and new_b = t.values.(c) in
          if not (Bits.equal old_b new_b) then begin
            List.iter
              (fun (pidx, edge) ->
                if edge_fired edge ~old_b ~new_b then fired := pidx :: !fired)
              g.Elaborate.ff_of_clock.(c);
            t.prev_clock.(c) <- new_b
          end)
        g.Elaborate.clocks;
      match !fired with
      | [] -> continue := false
      | l ->
          List.iter (fun pidx -> t.ff_run.(pidx) ()) (List.sort_uniq compare l);
          commit_nba t;
          settle t
    done

  let peek t id = t.values.(id)
  let peek_mem t m a = t.mems.(m).(a)
  let outputs t = Array.map (fun id -> t.values.(id)) t.graph.Elaborate.outputs
end

(* ------------------------------------------------------------------ *)
(* Flat backend: struct-of-arrays int64 state (State.t) written through a
   Flatcode context. Identical scheduling semantics to the boxed backend;
   the steady-state loop is allocation-free under the Bytecode (flatcode)
   eval style. All loops below use recursion or for-loops with int
   accumulators rather than refs/closures, to keep the step path free of
   minor allocation. *)
(* ------------------------------------------------------------------ *)

module Fsim = struct
  type t = {
    graph : Elaborate.t;
    config : config;
    st : State.t;
    ctx : Flatcode.ctx;
    dirty : bool array;
    mutable dirty_hi : int;
    mutable dirty_lo : int;
    (* FIFO ring buffer: capacity ncomb + 1; [dirty] = queued, so at most
       ncomb entries are ever pending and the ring cannot overflow. *)
    ring : int array;
    mutable ring_head : int;
    mutable ring_tail : int;
    mutable current_pos : int;
    prev_clock : State.i64a;  (* indexed like signals; valid for clocks *)
    fired : bool array;  (* per proc id, cleared as procs run *)
    mutable any_fired : bool;
    comb_eval : (unit -> unit) array;
    ff_run : (unit -> unit) array;
    mutable executions : int;
  }

  let mark_pos t pos =
    if pos = t.current_pos then ()
    else
      match t.config.scheduler with
      | Fifo ->
          if not t.dirty.(pos) then begin
            t.dirty.(pos) <- true;
            t.ring.(t.ring_tail) <- pos;
            t.ring_tail <- (t.ring_tail + 1) mod Array.length t.ring
          end
      | Levelized | Cycle_based ->
          t.dirty.(pos) <- true;
          if pos > t.dirty_hi then t.dirty_hi <- pos;
          if pos < t.dirty_lo then t.dirty_lo <- pos

  let mark_fanout t id =
    let fanout = t.graph.fanout_comb.(id) in
    for i = 0 to Array.length fanout - 1 do
      mark_pos t fanout.(i)
    done

  let mark_mem_fanout t m =
    let fanout = t.graph.fanout_mem.(m) in
    for i = 0 to Array.length fanout - 1 do
      mark_pos t fanout.(i)
    done

  let create ~config ?force g =
    let d = g.Elaborate.design in
    let st = State.create d in
    (match force with
    | Some (id, bit, value) ->
        State.set st id (Bitops.force_bit (State.get st id) bit value)
    | None -> ());
    let ctx = Flatcode.create ?force st in
    let ncomb = Array.length g.Elaborate.comb_nodes in
    let t =
      {
        graph = g;
        config;
        st;
        ctx;
        dirty = Array.make ncomb false;
        dirty_hi = -1;
        dirty_lo = ncomb;
        ring = Array.make (ncomb + 1) 0;
        ring_head = 0;
        ring_tail = 0;
        current_pos = -1;
        prev_clock =
          (let a =
             Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout
               st.State.nsig
           in
           Bigarray.Array1.fill a 0L;
           a);
        fired = Array.make (Array.length d.Design.procs) false;
        any_fired = false;
        comb_eval = Array.make ncomb (fun () -> ());
        ff_run = Array.make (Array.length d.Design.procs) (fun () -> ());
        executions = 0;
      }
    in
    Flatcode.set_on_change ctx (mark_fanout t);
    Flatcode.set_on_mem_change ctx (mark_mem_fanout t);
    let sig_width id = State.width st id in
    let mem_width m = State.mem_width st m in
    let mem_size m = State.mem_size st m in
    let mem_base m = st.State.mem_base.(m) in
    let ir = Access.reader_of_state st in
    let comb_iwriter =
      {
        Access.iset_blocking = (fun id v -> Flatcode.write_sig ctx id v);
        iset_nonblocking =
          (fun id _ ->
            raise
              (Unstable
                 (Printf.sprintf "nonblocking write to %s in comb process"
                    (Design.signal_name d id))));
        iwrite_mem =
          (fun _ _ _ -> raise (Unstable "memory write in comb process"));
      }
    in
    let ff_iwriter =
      {
        Access.iset_blocking =
          (fun id _ ->
            raise
              (Unstable
                 (Printf.sprintf "blocking write to %s in ff process"
                    (Design.signal_name d id))));
        iset_nonblocking = (fun id v -> Flatcode.push_nba ctx id v);
        iwrite_mem =
          (fun m a v -> Flatcode.push_nba_mem ctx m (mem_base m + a) v);
      }
    in
    let fc_compile = Flatcode.compile ~sig_width ~mem_width ~mem_size ~mem_base in
    let fc_compile_stmt =
      Flatcode.compile_stmt ~sig_width ~mem_width ~mem_size ~mem_base
    in
    Array.iteri
      (fun pos node ->
        match node with
        | Elaborate.Cassign i -> (
            let a = d.Design.assigns.(i) in
            match config.eval with
            | Closures ->
                let ce =
                  Compile.expr_i ~sig_width ~mem_width ~mem_size a.expr
                in
                t.comb_eval.(pos) <-
                  (fun () -> Flatcode.write_sig ctx a.target (ce ir))
            | Ast ->
                t.comb_eval.(pos) <-
                  (fun () ->
                    Flatcode.write_sig ctx a.target
                      (Eval.eval_i ~sig_width ~mem_width ~mem_size ir a.expr))
            | Bytecode ->
                let prog = fc_compile a.expr in
                t.comb_eval.(pos) <-
                  (fun () -> Flatcode.run_assign ctx a.target prog))
        | Elaborate.Cproc i -> (
            let p = d.Design.procs.(i) in
            match config.eval with
            | Closures ->
                let cp =
                  Compile.proc_i ~sig_width ~mem_width ~mem_size p.body
                in
                t.comb_eval.(pos) <-
                  (fun () ->
                    t.executions <- t.executions + 1;
                    Compile.exec_i cp ir comb_iwriter)
            | Ast ->
                t.comb_eval.(pos) <-
                  (fun () ->
                    t.executions <- t.executions + 1;
                    Interp.exec_i ~sig_width ~mem_width ~mem_size ir
                      comb_iwriter p.body)
            | Bytecode ->
                let sp = fc_compile_stmt p.body in
                t.comb_eval.(pos) <-
                  (fun () ->
                    t.executions <- t.executions + 1;
                    try Flatcode.exec ctx ~ff:false sp with
                    | Flatcode.Nonblocking_in_comb id ->
                        raise
                          (Unstable
                             (Printf.sprintf
                                "nonblocking write to %s in comb process"
                                (Design.signal_name d id)))
                    | Flatcode.Mem_write_in_comb _ ->
                        raise (Unstable "memory write in comb process"))))
      g.Elaborate.comb_nodes;
    Array.iter
      (fun i ->
        let p = d.Design.procs.(i) in
        match config.eval with
        | Closures ->
            let cp = Compile.proc_i ~sig_width ~mem_width ~mem_size p.body in
            t.ff_run.(i) <-
              (fun () ->
                t.executions <- t.executions + 1;
                Compile.exec_i cp ir ff_iwriter)
        | Ast ->
            t.ff_run.(i) <-
              (fun () ->
                t.executions <- t.executions + 1;
                Interp.exec_i ~sig_width ~mem_width ~mem_size ir ff_iwriter
                  p.body)
        | Bytecode ->
            let sp = fc_compile_stmt p.body in
            t.ff_run.(i) <-
              (fun () ->
                t.executions <- t.executions + 1;
                try Flatcode.exec ctx ~ff:true sp with
                | Flatcode.Blocking_in_ff id ->
                    raise
                      (Unstable
                         (Printf.sprintf "blocking write to %s in ff process"
                            (Design.signal_name d id)))))
      g.Elaborate.ff_procs;
    (* Initial settle: evaluate everything once. *)
    for pos = 0 to ncomb - 1 do
      t.current_pos <- pos;
      t.comb_eval.(pos) ();
      t.current_pos <- -1
    done;
    t.dirty_hi <- -1;
    t.dirty_lo <- ncomb;
    Array.fill t.dirty 0 ncomb false;
    t.ring_head <- 0;
    t.ring_tail <- 0;
    Array.iter
      (fun c -> Bigarray.Array1.set t.prev_clock c (State.get st c))
      g.Elaborate.clocks;
    t

  let rec sweep t pos =
    (* dirty_hi can be re-armed by marks during the sweep; re-read it *)
    if pos <= t.dirty_hi then begin
      if t.dirty.(pos) then begin
        t.dirty.(pos) <- false;
        t.current_pos <- pos;
        t.comb_eval.(pos) ();
        t.current_pos <- -1
      end;
      sweep t (pos + 1)
    end

  let rec drain t budget =
    if t.ring_head <> t.ring_tail then begin
      if budget < 0 then raise (Unstable "event wheel did not settle");
      let pos = t.ring.(t.ring_head) in
      t.ring_head <- (t.ring_head + 1) mod Array.length t.ring;
      t.dirty.(pos) <- false;
      t.current_pos <- pos;
      t.comb_eval.(pos) ();
      t.current_pos <- -1;
      drain t (budget - 1)
    end

  let settle t =
    let ncomb = Array.length t.comb_eval in
    match t.config.scheduler with
    | Levelized ->
        sweep t t.dirty_lo;
        t.dirty_hi <- -1;
        t.dirty_lo <- ncomb
    | Fifo -> drain t ((64 * (ncomb + 1) * (ncomb + 1)) - 1)
    | Cycle_based ->
        for pos = 0 to ncomb - 1 do
          t.current_pos <- pos;
          t.comb_eval.(pos) ();
          t.current_pos <- -1
        done;
        t.dirty_hi <- -1;
        t.dirty_lo <- ncomb;
        Array.fill t.dirty 0 ncomb false;
        t.ring_head <- 0;
        t.ring_tail <- 0

  let set_input t id v = Flatcode.write_sig t.ctx id (Bits.to_int64 v)

  let flip_bit t id bit =
    let cur = State.get t.st id in
    Flatcode.write_sig t.ctx id
      (Bitops.force_bit cur bit (not (Bitops.bit cur bit)))

  (* Edge detection on bools so no int64 crosses the helper boundary. *)
  let rec fire_list t rising falling l =
    match l with
    | [] -> ()
    | (pidx, edge) :: rest ->
        (match edge with
        | Design.Posedge ->
            if rising then begin
              t.fired.(pidx) <- true;
              t.any_fired <- true
            end
        | Design.Negedge ->
            if falling then begin
              t.fired.(pidx) <- true;
              t.any_fired <- true
            end);
        fire_list t rising falling rest

  let scan_clocks t =
    t.any_fired <- false;
    let clocks = t.graph.Elaborate.clocks in
    let sigs = t.st.State.sig_v in
    for k = 0 to Array.length clocks - 1 do
      let c = Array.unsafe_get clocks k in
      let nb = Bigarray.Array1.unsafe_get sigs c in
      let ob = Bigarray.Array1.unsafe_get t.prev_clock c in
      if nb <> ob then begin
        let ob0 = Int64.logand ob 1L = 1L in
        let nb0 = Int64.logand nb 1L = 1L in
        fire_list t ((not ob0) && nb0) (ob0 && not nb0)
          t.graph.Elaborate.ff_of_clock.(c);
        Bigarray.Array1.unsafe_set t.prev_clock c nb
      end
    done

  let run_fired t =
    (* ascending proc id: identical order to the boxed backend's
       [List.sort_uniq] over collected ids *)
    let fired = t.fired in
    for pidx = 0 to Array.length fired - 1 do
      if Array.unsafe_get fired pidx then begin
        Array.unsafe_set fired pidx false;
        t.ff_run.(pidx) ()
      end
    done

  let rec step_rounds t rounds =
    if rounds > 16 then raise (Unstable "clock edge cascade did not settle");
    scan_clocks t;
    if t.any_fired then begin
      run_fired t;
      Flatcode.commit_nba t.ctx;
      settle t;
      step_rounds t (rounds + 1)
    end

  let step t =
    settle t;
    step_rounds t 1

  let peek t id = State.get_bits t.st id
  let peek_mem t m a = State.get_mem_bits t.st m a

  let outputs t =
    Array.map (fun id -> State.get_bits t.st id) t.graph.Elaborate.outputs
end

(* ------------------------------------------------------------------ *)
(* Dispatch *)
(* ------------------------------------------------------------------ *)

type t = B of Bsim.t | F of Fsim.t

let create ?(config = default_config) ?force g =
  match config.repr with
  | Boxed -> B (Bsim.create ~config ?force g)
  | Flat -> F (Fsim.create ~config ?force g)

(* Dispatchers are eta-expanded to full applications: [function B t ->
   Bsim.set_input t] would build a fresh partial-application closure on
   every call, breaking the allocation-free step loop. *)
let graph = function B t -> t.Bsim.graph | F t -> t.Fsim.graph

let set_input t id v =
  match t with
  | B t -> Bsim.set_input t id v
  | F t -> Fsim.set_input t id v

let flip_bit t id bit =
  match t with
  | B t -> Bsim.flip_bit t id bit
  | F t -> Fsim.flip_bit t id bit

let step = function B t -> Bsim.step t | F t -> Fsim.step t

let peek t id = match t with B t -> Bsim.peek t id | F t -> Fsim.peek t id

let peek_mem t m a =
  match t with B t -> Bsim.peek_mem t m a | F t -> Fsim.peek_mem t m a

let outputs = function B t -> Bsim.outputs t | F t -> Fsim.outputs t

let proc_executions = function
  | B t -> t.Bsim.executions
  | F t -> t.Fsim.executions
