(** AST-walking expression evaluation — the interpreted ("IFsim") path.

    Walks the expression tree on every evaluation, mirroring an interpreting
    simulator. The compiled path lives in {!Compile}. *)

open Rtlir

(** [eval ~mem_size reader e] evaluates [e]. Memory read addresses are
    wrapped modulo [mem_size mid]. *)
val eval : mem_size:(int -> int) -> Access.reader -> Expr.t -> Bits.t

(** Payload-level evaluation over an unboxed reader; widths come from the
    design's width maps (see {!Rtlir.Bitops} for the payload contract). *)
val eval_i :
  sig_width:(int -> int) ->
  mem_width:(int -> int) ->
  mem_size:(int -> int) ->
  Access.ireader ->
  Expr.t ->
  int64

(** Wrap a raw address vector onto [0 .. size-1]. *)
val wrap_address : Bits.t -> int -> int

(** Payload variant of {!wrap_address}. *)
val wrap_address_i : int64 -> int -> int

(** Single-operator application (shared with the bytecode interpreter). *)
val apply_unop : Expr.unop -> Bits.t -> Bits.t

val apply_binop : Expr.binop -> Bits.t -> Bits.t -> Bits.t
