(** Fault models.

    Stuck-at faults follow the paper (Section V-A: "stuck-at faults for
    wires and regs ... observation points at all output ports"). Transient
    faults (single-event upsets: one register bit flips at one cycle) are an
    extension — the other fault class ISO 26262 asks functional-safety
    campaigns to cover. *)

open Rtlir

type stuck =
  | Stuck_at_0
  | Stuck_at_1
  | Flip_at of int
      (** SEU: the bit flips once, at the start of the given cycle *)

type t = { fid : int; signal : int; bit : int; stuck : stuck }

val is_transient : t -> bool

(** [generate ?include_inputs ?max_faults ~seed design] enumerates single-bit
    stuck-at-0/1 sites over wires, regs and outputs (and input ports when
    [include_inputs], the default — port nets are wires too). When the site
    count exceeds [max_faults] the list is down-sampled deterministically
    with [seed]; fault ids are always dense [0..n-1]. *)
val generate :
  ?include_inputs:bool -> ?max_faults:int -> seed:int64 -> Design.t -> t array

(** Apply the fault's forced bit to a value of its signal (identity for
    transient faults — they do not force writes). *)
val force : t -> Bits.t -> Bits.t

(** Payload twin of {!force} over masked int64 payloads. *)
val force_i64 : t -> int64 -> int64

(** [generate_transients ~seed ~count ~max_cycle design] draws random SEUs:
    uniformly chosen register bits flipping at uniformly chosen cycles. *)
val generate_transients :
  seed:int64 -> count:int -> max_cycle:int -> Design.t -> t array

val describe : Design.t -> t -> string

(** Outcome of a fault-simulation campaign, shared by every engine. *)
type result = {
  detected : bool array;  (** indexed by fault id *)
  detection_cycle : int array;  (** cycle of first detection; -1 if never *)
  coverage_pct : float;
  stats : Stats.t;
  wall_time : float;  (** seconds *)
}

val count_detected : result -> int

(** [same_verdict a b] — detected sets are identical (engine equivalence). *)
val same_verdict : result -> result -> bool

val make_result :
  detected:bool array ->
  ?detection_cycle:int array ->
  stats:Stats.t ->
  wall_time:float ->
  unit ->
  result

(** Mean detection latency in cycles over detected faults; [None] when no
    fault was detected — the mean of an empty set has no value, and
    formatting one as a number is how literal [nan] ends up in JSON
    reports. *)
val mean_detection_latency_opt : result -> float option

(** [mean_detection_latency_opt] with [None] collapsed to [0.0], for
    human-readable output that wants a number. *)
val mean_detection_latency : result -> float
