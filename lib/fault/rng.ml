type t = { mutable state : int64 }

let create seed = { state = seed }

let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.unsigned_rem (next t) (Int64.of_int bound))

let bits t width = Rtlir.Bits.make width (next t)
let bool t = Int64.logand (next t) 1L = 1L

let seed t = t.state

let split t n =
  if n < 0 then invalid_arg "Rng.split: negative count";
  (* Each child is seeded with one full splitmix64 output of the parent, so
     sibling streams start from well-mixed, distinct states and the whole
     family is a pure function of the parent's state at the split point. *)
  Array.init n (fun _ -> create (next t))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
