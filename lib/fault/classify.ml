open Rtlir

type verdict =
  | Untestable_constant
  | Untestable_unobservable
  | Testable

let verdict_name = function
  | Untestable_constant -> "untestable (constant site)"
  | Untestable_unobservable -> "untestable (unobservable site)"
  | Testable -> "testable"

(* 2-state constant propagation over continuous assignments. A register no
   process writes keeps its initial zero value; combinational processes are
   treated as unknown (their branch structure is not folded). *)
let constants (g : Elaborate.t) =
  let d = g.design in
  let nsig = Design.num_signals d in
  let consts : Bits.t option array = Array.make nsig None in
  (* written registers are unknown; unwritten registers are constant zero *)
  let written = Array.make nsig false in
  Array.iter
    (fun (p : Design.proc) ->
      List.iter (fun id -> written.(id) <- true) (Stmt.write_signals p.body))
    d.procs;
  Array.iter
    (fun (s : Design.signal) ->
      if s.kind = Design.Reg && not written.(s.id) then
        consts.(s.id) <- Some (Bits.zero s.width))
    d.signals;
  let mem_size m = d.mems.(m).Design.size in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun (a : Design.assign) ->
        if consts.(a.target) = None then begin
          let known = ref true in
          let reader =
            {
              Sim.Access.get =
                (fun id ->
                  match consts.(id) with
                  | Some v -> v
                  | None ->
                      known := false;
                      Bits.zero (Design.signal_width d id));
              get_mem =
                (fun m a ->
                  (* ROM words are constants; RAM contents are not *)
                  if d.mems.(m).Design.rom then
                    match d.mems.(m).Design.init with
                    | Some init -> init.(a)
                    | None -> Bits.zero (Design.mem_width d m)
                  else begin
                    known := false;
                    Bits.zero (Design.mem_width d m)
                  end);
            }
          in
          let v = Sim.Eval.eval ~mem_size reader a.expr in
          if !known then begin
            consts.(a.target) <- Some v;
            changed := true
          end
        end)
      d.assigns
  done;
  consts

(* Reverse reachability from the outputs, delegated to the shared
   cone-of-influence analysis: a signal is observable iff some structural
   path (combinational logic, register stages, memories or clock
   sensitivity) reaches a design output. *)
let observable (g : Elaborate.t) =
  let cone = Flow.Cone.build g in
  Array.init cone.Flow.Cone.nsig (Flow.Cone.observable cone)

let classify (g : Elaborate.t) faults =
  let consts = constants g in
  let reach = observable g in
  Array.map
    (fun (f : Fault.t) ->
      let stuck_value =
        match f.stuck with
        | Fault.Stuck_at_0 -> Some false
        | Fault.Stuck_at_1 -> Some true
        | Fault.Flip_at _ -> None
      in
      match (consts.(f.signal), stuck_value) with
      | Some c, Some v when Bits.bit c f.bit = v -> Untestable_constant
      | _ ->
          if reach.(f.signal) then Testable else Untestable_unobservable)
    faults

let adjusted_coverage verdicts (r : Fault.result) =
  let testable = ref 0 and detected = ref 0 in
  Array.iteri
    (fun i v ->
      if v = Testable then begin
        incr testable;
        if r.Fault.detected.(i) then incr detected
      end)
    verdicts;
  if !testable = 0 then None
  else Some (100.0 *. float_of_int !detected /. float_of_int !testable)
