type proc_row = {
  pr_name : string;
  mutable pr_exec : int;
  mutable pr_impl : int;
  mutable pr_expl : int;
}

type t = {
  mutable bn_good : int;
  mutable bn_fault_exec : int;
  mutable bn_skipped_explicit : int;
  mutable bn_skipped_implicit : int;
  mutable rtl_good_eval : int;
  mutable rtl_fault_eval : int;
  mutable good_cycles_skipped : int;
  mutable goodtrace_captures : int;
  mutable cone_pruned : int;
  mutable plan_batches : int;
  mutable plan_snapshots : int;
  mutable lane_groups : int;
  mutable lane_occ_sum : int;
  mutable lane_occ_rounds : int;
  mutable scalar_fallbacks : int;
  mutable bn_seconds : float;
  mutable cpu_seconds : float;
  mutable total_seconds : float;
  mutable per_proc : proc_row array;
}

(* Monotonic-safe wall clock. [Unix.gettimeofday] can step backwards under
   NTP adjustment; feeding a negative delta into the accumulated timing
   counters would corrupt every percentage derived from them. The guard
   never returns a value below any previously returned one, across all
   domains (one shared high-water mark, CAS-advanced). *)
let clock_hwm = Atomic.make 0.0

let now () =
  let rec advance () =
    let last = Atomic.get clock_hwm in
    let t = Unix.gettimeofday () in
    if t <= last then last
    else if Atomic.compare_and_set clock_hwm last t then t
    else advance ()
  in
  advance ()

let create () =
  {
    bn_good = 0;
    bn_fault_exec = 0;
    bn_skipped_explicit = 0;
    bn_skipped_implicit = 0;
    rtl_good_eval = 0;
    rtl_fault_eval = 0;
    good_cycles_skipped = 0;
    goodtrace_captures = 0;
    cone_pruned = 0;
    plan_batches = 0;
    plan_snapshots = 0;
    lane_groups = 0;
    lane_occ_sum = 0;
    lane_occ_rounds = 0;
    scalar_fallbacks = 0;
    bn_seconds = 0.0;
    cpu_seconds = 0.0;
    total_seconds = 0.0;
    per_proc = [||];
  }

let total_bn_executions t =
  t.bn_fault_exec + t.bn_skipped_explicit + t.bn_skipped_implicit

let eliminated t = t.bn_skipped_explicit + t.bn_skipped_implicit

let pct part whole =
  if whole = 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int whole

let explicit_pct t = pct t.bn_skipped_explicit (total_bn_executions t)
let implicit_pct t = pct t.bn_skipped_implicit (total_bn_executions t)

(* Mean packed-lane occupancy over the behavior-network rounds of a
   lane-mode run (0.0 when lane mode never ran). *)
let lane_occupancy_mean t =
  if t.lane_occ_rounds = 0 then 0.0
  else float_of_int t.lane_occ_sum /. float_of_int t.lane_occ_rounds

let bn_time_pct t =
  let denom = if t.cpu_seconds > 0.0 then t.cpu_seconds else t.total_seconds in
  if denom <= 0.0 then 0.0 else 100.0 *. t.bn_seconds /. denom

(* Merge per_proc tables by node name. Every engine emits its rows in
   program order, so two workers over the same design produce the same name
   sequence and the common case is a positional zip; the keyed fallback
   covers heterogeneous inputs (e.g. stats merged across designs). Either
   way a node contributes exactly one row — [Array.append] here was the bug
   that gave [--jobs n] reports n copies of every row. *)
let same_names a b =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri (fun i ra -> if ra.pr_name <> b.(i).pr_name then ok := false) a;
      !ok)

let merge_per_proc a b =
  if Array.length a = 0 then Array.map (fun r -> { r with pr_name = r.pr_name }) b
  else if Array.length b = 0 then
    Array.map (fun r -> { r with pr_name = r.pr_name }) a
  else if same_names a b then
    Array.mapi
      (fun i ra ->
        let rb = b.(i) in
        {
          pr_name = ra.pr_name;
          pr_exec = ra.pr_exec + rb.pr_exec;
          pr_impl = ra.pr_impl + rb.pr_impl;
          pr_expl = ra.pr_expl + rb.pr_expl;
        })
      a
  else begin
    let tbl = Hashtbl.create (Array.length a + Array.length b) in
    let order = ref [] in
    let fold r =
      match Hashtbl.find_opt tbl r.pr_name with
      | Some acc ->
          acc.pr_exec <- acc.pr_exec + r.pr_exec;
          acc.pr_impl <- acc.pr_impl + r.pr_impl;
          acc.pr_expl <- acc.pr_expl + r.pr_expl
      | None ->
          let acc = { r with pr_name = r.pr_name } in
          Hashtbl.add tbl r.pr_name acc;
          order := acc :: !order
    in
    Array.iter fold a;
    Array.iter fold b;
    Array.of_list (List.rev !order)
  end

let add a b =
  {
    bn_good = a.bn_good + b.bn_good;
    bn_fault_exec = a.bn_fault_exec + b.bn_fault_exec;
    bn_skipped_explicit = a.bn_skipped_explicit + b.bn_skipped_explicit;
    bn_skipped_implicit = a.bn_skipped_implicit + b.bn_skipped_implicit;
    rtl_good_eval = a.rtl_good_eval + b.rtl_good_eval;
    rtl_fault_eval = a.rtl_fault_eval + b.rtl_fault_eval;
    good_cycles_skipped = a.good_cycles_skipped + b.good_cycles_skipped;
    goodtrace_captures = a.goodtrace_captures + b.goodtrace_captures;
    cone_pruned = a.cone_pruned + b.cone_pruned;
    (* plan shape is coordinator-set, never per-batch: keep the larger *)
    plan_batches = max a.plan_batches b.plan_batches;
    plan_snapshots = max a.plan_snapshots b.plan_snapshots;
    lane_groups = a.lane_groups + b.lane_groups;
    lane_occ_sum = a.lane_occ_sum + b.lane_occ_sum;
    lane_occ_rounds = a.lane_occ_rounds + b.lane_occ_rounds;
    scalar_fallbacks = a.scalar_fallbacks + b.scalar_fallbacks;
    bn_seconds = a.bn_seconds +. b.bn_seconds;
    cpu_seconds = a.cpu_seconds +. b.cpu_seconds;
    total_seconds = Float.max a.total_seconds b.total_seconds;
    per_proc = merge_per_proc a.per_proc b.per_proc;
  }

let pp ppf t =
  Format.fprintf ppf
    "bn_good=%d bn_fault_exec=%d skip_explicit=%d skip_implicit=%d \
     rtl_good=%d rtl_fault=%d bn_time=%.3fs cpu=%.3fs total=%.3fs"
    t.bn_good t.bn_fault_exec t.bn_skipped_explicit t.bn_skipped_implicit
    t.rtl_good_eval t.rtl_fault_eval t.bn_seconds t.cpu_seconds t.total_seconds
