type t = {
  mutable bn_good : int;
  mutable bn_fault_exec : int;
  mutable bn_skipped_explicit : int;
  mutable bn_skipped_implicit : int;
  mutable rtl_good_eval : int;
  mutable rtl_fault_eval : int;
  mutable bn_seconds : float;
  mutable total_seconds : float;
  mutable per_proc : (string * int * int) array;
}

(* Monotonic-safe wall clock. [Unix.gettimeofday] can step backwards under
   NTP adjustment; feeding a negative delta into the accumulated timing
   counters would corrupt every percentage derived from them. The guard
   never returns a value below any previously returned one, across all
   domains (one shared high-water mark, CAS-advanced). *)
let clock_hwm = Atomic.make 0.0

let now () =
  let rec advance () =
    let last = Atomic.get clock_hwm in
    let t = Unix.gettimeofday () in
    if t <= last then last
    else if Atomic.compare_and_set clock_hwm last t then t
    else advance ()
  in
  advance ()

let create () =
  {
    bn_good = 0;
    bn_fault_exec = 0;
    bn_skipped_explicit = 0;
    bn_skipped_implicit = 0;
    rtl_good_eval = 0;
    rtl_fault_eval = 0;
    bn_seconds = 0.0;
    total_seconds = 0.0;
    per_proc = [||];
  }

let total_bn_executions t =
  t.bn_fault_exec + t.bn_skipped_explicit + t.bn_skipped_implicit

let eliminated t = t.bn_skipped_explicit + t.bn_skipped_implicit

let pct part whole =
  if whole = 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int whole

let explicit_pct t = pct t.bn_skipped_explicit (total_bn_executions t)
let implicit_pct t = pct t.bn_skipped_implicit (total_bn_executions t)

let bn_time_pct t =
  if t.total_seconds <= 0.0 then 0.0
  else 100.0 *. t.bn_seconds /. t.total_seconds

let add a b =
  {
    bn_good = a.bn_good + b.bn_good;
    bn_fault_exec = a.bn_fault_exec + b.bn_fault_exec;
    bn_skipped_explicit = a.bn_skipped_explicit + b.bn_skipped_explicit;
    bn_skipped_implicit = a.bn_skipped_implicit + b.bn_skipped_implicit;
    rtl_good_eval = a.rtl_good_eval + b.rtl_good_eval;
    rtl_fault_eval = a.rtl_fault_eval + b.rtl_fault_eval;
    bn_seconds = a.bn_seconds +. b.bn_seconds;
    total_seconds = a.total_seconds +. b.total_seconds;
    per_proc = Array.append a.per_proc b.per_proc;
  }

let pp ppf t =
  Format.fprintf ppf
    "bn_good=%d bn_fault_exec=%d skip_explicit=%d skip_implicit=%d \
     rtl_good=%d rtl_fault=%d bn_time=%.3fs total=%.3fs"
    t.bn_good t.bn_fault_exec t.bn_skipped_explicit t.bn_skipped_implicit
    t.rtl_good_eval t.rtl_fault_eval t.bn_seconds t.total_seconds
