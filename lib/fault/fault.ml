open Rtlir

type stuck = Stuck_at_0 | Stuck_at_1 | Flip_at of int

type t = { fid : int; signal : int; bit : int; stuck : stuck }

let is_transient f = match f.stuck with Flip_at _ -> true | _ -> false

let generate ?(include_inputs = true) ?(max_faults = max_int) ~seed design =
  let sites = ref [] in
  Array.iter
    (fun (s : Design.signal) ->
      let eligible =
        match s.kind with
        | Design.Wire | Design.Reg | Design.Output -> true
        | Design.Input -> include_inputs
      in
      if eligible then
        for bit = 0 to s.width - 1 do
          sites := (s.id, bit, Stuck_at_1) :: (s.id, bit, Stuck_at_0) :: !sites
        done)
    design.Design.signals;
  let all = Array.of_list (List.rev !sites) in
  let chosen =
    if Array.length all <= max_faults then all
    else begin
      let rng = Rng.create seed in
      Rng.shuffle rng all;
      let sub = Array.sub all 0 max_faults in
      Array.sort compare sub;
      sub
    end
  in
  Array.mapi (fun fid (signal, bit, stuck) -> { fid; signal; bit; stuck }) chosen

let force f v =
  match f.stuck with
  | Stuck_at_0 -> Bits.force_bit v f.bit false
  | Stuck_at_1 -> Bits.force_bit v f.bit true
  | Flip_at _ -> v

let force_i64 f v =
  match f.stuck with
  | Stuck_at_0 -> Bitops.force_bit v f.bit false
  | Stuck_at_1 -> Bitops.force_bit v f.bit true
  | Flip_at _ -> v

let generate_transients ~seed ~count ~max_cycle design =
  let regs =
    Array.of_list
      (List.filter
         (fun (s : Design.signal) -> s.kind = Design.Reg)
         (Array.to_list design.Design.signals))
  in
  if Array.length regs = 0 then [||]
  else begin
    let rng = Rng.create seed in
    Array.init count (fun fid ->
        let s = regs.(Rng.int rng (Array.length regs)) in
        {
          fid;
          signal = s.Design.id;
          bit = Rng.int rng s.Design.width;
          stuck = Flip_at (Rng.int rng max_cycle);
        })
  end

let describe design f =
  match f.stuck with
  | Stuck_at_0 | Stuck_at_1 ->
      Printf.sprintf "%s[%d] stuck-at-%d"
        (Design.signal_name design f.signal)
        f.bit
        (match f.stuck with Stuck_at_0 -> 0 | _ -> 1)
  | Flip_at c ->
      Printf.sprintf "%s[%d] flip@%d"
        (Design.signal_name design f.signal)
        f.bit c

type result = {
  detected : bool array;
  detection_cycle : int array;
  coverage_pct : float;
  stats : Stats.t;
  wall_time : float;
}

let count_detected r =
  Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 r.detected

let same_verdict a b = a.detected = b.detected

let make_result ~detected ?detection_cycle ~stats ~wall_time () =
  let n = Array.length detected in
  let nd = Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 detected in
  {
    detected;
    detection_cycle =
      (match detection_cycle with
      | Some a -> a
      | None -> Array.make n (-1));
    coverage_pct = (if n = 0 then 0.0 else 100.0 *. float_of_int nd /. float_of_int n);
    stats;
    wall_time;
  }

let mean_detection_latency_opt r =
  let sum = ref 0 and n = ref 0 in
  Array.iter
    (fun c ->
      if c >= 0 then begin
        sum := !sum + c;
        incr n
      end)
    r.detection_cycle;
  if !n = 0 then None else Some (float_of_int !sum /. float_of_int !n)

let mean_detection_latency r =
  Option.value ~default:0.0 (mean_detection_latency_opt r)
