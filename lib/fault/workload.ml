open Rtlir

type t = {
  cycles : int;
  clock : int;
  drive : int -> (int * Bits.t) list;
}

exception Invalid_workload of string

exception Budget_exceeded of { cycle : int; reason : string }

let invalid fmt = Printf.ksprintf (fun s -> raise (Invalid_workload s)) fmt

let run ?(on_cycle_start = fun _ -> ()) w ~set_input ~step ~observe =
  if w.cycles < 0 then
    invalid "negative cycle count %d (a workload runs 0 or more cycles)"
      w.cycles;
  let continue = ref true in
  let cycle = ref 0 in
  while !continue && !cycle < w.cycles do
    on_cycle_start !cycle;
    List.iter (fun (id, v) -> set_input id v) (w.drive !cycle);
    set_input w.clock (Bits.one 1);
    step ();
    set_input w.clock (Bits.zero 1);
    step ();
    continue := observe !cycle;
    incr cycle
  done

let checked ~num_signals w =
  if w.clock < 0 || w.clock >= num_signals then
    invalid "clock signal id %d out of range (design has %d signals)" w.clock
      num_signals;
  let drive cycle =
    let entries = w.drive cycle in
    List.iter
      (fun (id, _) ->
        if id < 0 || id >= num_signals then
          invalid
            "drive entry at cycle %d targets unknown signal id %d (design \
             has %d signals)"
            cycle id num_signals;
        if id = w.clock then
          invalid
            "drive entry at cycle %d targets the clock (signal id %d); the \
             clock is driven by the protocol"
            cycle id)
      entries;
    entries
  in
  { w with drive }

let with_budget ?max_cycles ?deadline w =
  let drive cycle =
    (match max_cycles with
    | Some limit when cycle >= limit ->
        raise
          (Budget_exceeded
             {
               cycle;
               reason = Printf.sprintf "cycle budget of %d exhausted" limit;
             })
    | _ -> ());
    (match deadline with
    | Some t when Stats.now () > t ->
        raise (Budget_exceeded { cycle; reason = "wall-clock budget exhausted" })
    | _ -> ());
    w.drive cycle
  in
  { w with drive }

let random_drive ~seed ~inputs ?(directed = [||]) () =
  (* Cycle-indexed determinism: each cycle reseeds from (seed, cycle) so
     the drive function is a pure function of the cycle number, no matter
     in which order engines query it. *)
  let n_directed = Array.length directed in
  fun cycle ->
    if cycle < n_directed then directed.(cycle)
    else begin
      let rng = Rng.create (Int64.add seed (Int64.of_int (cycle * 2654435761))) in
      List.map (fun (id, width) -> (id, Rng.bits rng width)) inputs
    end
