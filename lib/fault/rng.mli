(** Deterministic splitmix64 PRNG.

    Used for fault-list sampling and stimulus generation so campaigns are
    reproducible across engines and runs. *)

type t

val create : int64 -> t

(** Next raw 64-bit value. *)
val next : t -> int64

(** [int t bound] draws uniformly from [0 .. bound-1]; [bound > 0]. *)
val int : t -> int -> int

(** [bits t width] draws a uniform bit vector of the given width. *)
val bits : t -> int -> Rtlir.Bits.t

val bool : t -> bool

(** Current state, usable as the seed of a derived generator:
    [create (seed t)] continues exactly where [t] is now. *)
val seed : t -> int64

(** [split t n] derives [n] independent child generators, each seeded with
    one splitmix64 output of [t] (advancing [t] by [n] draws). The family
    is deterministic in the parent's state at the split point, and sibling
    streams are statistically independent — the per-partition RNG
    primitive: one child per worker domain, per random-design section, or
    per workload shard. *)
val split : t -> int -> t array

(** Fisher-Yates shuffle (in place). *)
val shuffle : t -> 'a array -> unit
