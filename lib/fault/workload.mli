(** Testbench protocol shared by every engine.

    A workload drives one clock input and, per cycle, a set of data inputs.
    Every engine runs the identical protocol so that detected-fault sets are
    comparable:

    cycle k:  apply [drive k] and raise the clock, step (registers capture),
              lower the clock, step, observe the output ports. *)

open Rtlir

type t = {
  cycles : int;
  clock : int;  (** signal id of the clock input *)
  drive : int -> (int * Bits.t) list;
      (** cycle number -> input assignments (the clock must not appear) *)
}

(** A structurally bad workload: negative cycle count, drive entries
    targeting unknown signal ids or the clock. Raised with a descriptive
    message instead of letting the engine crash on an array bound. *)
exception Invalid_workload of string

(** A watchdog budget installed by {!with_budget} tripped at [cycle]. *)
exception Budget_exceeded of { cycle : int; reason : string }

(** [run w ~set_input ~step ~observe] executes the protocol against an
    engine. [observe cycle] is called once per cycle, after the falling
    edge, when outputs are stable; it returns [true] to continue and [false]
    to stop early (e.g. all faults detected). Raises {!Invalid_workload} on
    a negative cycle count. *)
val run :
  ?on_cycle_start:(int -> unit) ->
  t ->
  set_input:(int -> Bits.t -> unit) ->
  step:(unit -> unit) ->
  observe:(int -> bool) ->
  unit

(** [checked ~num_signals w] wraps [w.drive] so that every returned entry is
    validated against the design: ids outside [0, num_signals) and entries
    that target the clock raise {!Invalid_workload} with the offending cycle
    and id, instead of a deep array-bounds crash inside the engine. Engines
    install this wrapper themselves; callers need not. *)
val checked : num_signals:int -> t -> t

(** [with_budget ?max_cycles ?deadline w] installs a per-run watchdog: the
    wrapped drive raises {!Budget_exceeded} when the cycle index reaches
    [max_cycles] or when [Stats.now () > deadline] (the monotonic-safe
    wall clock, so a backwards clock step never arms or disarms the
    watchdog spuriously). The exception
    propagates out of [run] (and out of any engine), leaving the engine's
    partial state behind — callers are expected to retry with a smaller
    fault batch or report a timeout. *)
val with_budget : ?max_cycles:int -> ?deadline:float -> t -> t

(** Convenience: build a [drive] function from a per-cycle random vector
    generator over the given (signal, width) inputs, with a fixed prefix of
    directed vectors. *)
val random_drive :
  seed:int64 ->
  inputs:(int * int) list ->
  ?directed:(int * Bits.t) list array ->
  unit ->
  int -> (int * Bits.t) list
