(** Execution counters backing Fig. 1(b) and Table III.

    Counting convention: at every activation of a behavioral node in the
    good network, each live fault either executes its faulty copy, is
    skipped as explicitly redundant (its inputs equal the good inputs — it
    never even enters the node's processing set), or is skipped as
    implicitly redundant (inputs differ but Algorithm 1 proves the execution
    path and its data dependencies unaffected). Total behavioral-node
    executions without any elimination is therefore
    [bn_good + bn_fault_exec + bn_skipped_explicit + bn_skipped_implicit]
    minus the good share, matching the paper's "#Total BN Execution". *)

type t = {
  mutable bn_good : int;  (** good behavioral executions *)
  mutable bn_fault_exec : int;  (** faulty behavioral executions performed *)
  mutable bn_skipped_explicit : int;
  mutable bn_skipped_implicit : int;
  mutable rtl_good_eval : int;  (** good RTL-node evaluations *)
  mutable rtl_fault_eval : int;  (** faulty RTL-node evaluations *)
  mutable bn_seconds : float;
      (** wall time inside behavioral execution (only when instrumented) *)
  mutable total_seconds : float;
  mutable per_proc : (string * int * int) array;
      (** per behavioral node: (name, faulty executions, implicit skips) —
          filled by the concurrent engine *)
}

val create : unit -> t

(** Monotonic-safe wall clock, shared by every engine's instrumentation:
    [Unix.gettimeofday] guarded so no call ever returns less than a
    previous call (in any domain — the high-water mark is one process-wide
    atomic). Deltas between two [now] readings are therefore never
    negative, even across an NTP step. *)
val now : unit -> float

(** Faulty behavioral executions had no elimination been applied. *)
val total_bn_executions : t -> int

(** Eliminated faulty executions (explicit + implicit). *)
val eliminated : t -> int

(** Percentages of {e eliminated} executions, as Table III reports them:
    [explicit_pct] + [implicit_pct] <= 100 (the remainder executed). Both
    are relative to the total faulty executions without elimination. *)
val explicit_pct : t -> float

val implicit_pct : t -> float

(** Share of instrumented behavioral time in total time, in percent. *)
val bn_time_pct : t -> float

val add : t -> t -> t

val pp : Format.formatter -> t -> unit
