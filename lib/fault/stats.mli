(** Execution counters backing Fig. 1(b) and Table III.

    Counting convention: at every activation of a behavioral node in the
    good network, each live fault either executes its faulty copy, is
    skipped as explicitly redundant (its inputs equal the good inputs — it
    never even enters the node's processing set), or is skipped as
    implicitly redundant (inputs differ but Algorithm 1 proves the execution
    path and its data dependencies unaffected). Total behavioral-node
    executions without any elimination is therefore
    [bn_good + bn_fault_exec + bn_skipped_explicit + bn_skipped_implicit]
    minus the good share, matching the paper's "#Total BN Execution". *)

(** Per-behavioral-node counters, one row per node (keyed by [pr_name]). *)
type proc_row = {
  pr_name : string;
  mutable pr_exec : int;  (** faulty executions performed *)
  mutable pr_impl : int;  (** implicit-redundancy skips *)
  mutable pr_expl : int;  (** explicit-redundancy skips *)
}

type t = {
  mutable bn_good : int;  (** good behavioral executions *)
  mutable bn_fault_exec : int;  (** faulty behavioral executions performed *)
  mutable bn_skipped_explicit : int;
  mutable bn_skipped_implicit : int;
  mutable rtl_good_eval : int;  (** good RTL-node evaluations *)
  mutable rtl_fault_eval : int;  (** faulty RTL-node evaluations *)
  mutable good_cycles_skipped : int;
      (** cycles never simulated because a warm-started run began at a
          good-trace snapshot past them; summed across batches by {!add} *)
  mutable goodtrace_captures : int;
      (** good-trace capture runs behind this result (0 on the cold path;
          campaigns set 1 — the capture is shared by every batch) *)
  mutable cone_pruned : int;
      (** faults never simulated because the cone-of-influence analysis
          proved their site has no structural path to any output *)
  mutable plan_batches : int;
      (** batches in the schedule plan the campaign executed.
          Coordinator-set on warm planned runs (0 otherwise); {!add} keeps
          the max, never a sum *)
  mutable plan_snapshots : int;
      (** snapshots held by the plan's (possibly re-planned) good trace;
          coordinator-set like [plan_batches] *)
  mutable lane_groups : int;
      (** 64-wide lane groups the engine packed its batches into (0 when
          lane mode is off); summed across batches by {!add} *)
  mutable lane_occ_sum : int;
      (** summed lane occupancy over all lane-mode behavior-network rounds;
          divide by [lane_occ_rounds] (see {!lane_occupancy_mean}) *)
  mutable lane_occ_rounds : int;  (** lane-mode behavior-network rounds *)
  mutable scalar_fallbacks : int;
      (** faults a lane plan demoted to the scalar path (transients) *)
  mutable bn_seconds : float;
      (** CPU time inside behavioral execution, summed across workers
          (only when instrumented) *)
  mutable cpu_seconds : float;
      (** CPU time inside engine runs, summed across workers by {!add} *)
  mutable total_seconds : float;
      (** wall-clock time of the campaign. {!add} takes the max of the two
          operands (parallel workers overlap); coordinators overwrite it
          with the measured wall time. Never sum worker times into it. *)
  mutable per_proc : proc_row array;  (** filled by the concurrent engine *)
}

val create : unit -> t

(** Monotonic-safe wall clock, shared by every engine's instrumentation:
    [Unix.gettimeofday] guarded so no call ever returns less than a
    previous call (in any domain — the high-water mark is one process-wide
    atomic). Deltas between two [now] readings are therefore never
    negative, even across an NTP step. *)
val now : unit -> float

(** Faulty behavioral executions had no elimination been applied. *)
val total_bn_executions : t -> int

(** Eliminated faulty executions (explicit + implicit). *)
val eliminated : t -> int

(** Percentages of {e eliminated} executions, as Table III reports them:
    [explicit_pct] + [implicit_pct] <= 100 (the remainder executed). Both
    are relative to the total faulty executions without elimination. *)
val explicit_pct : t -> float

val implicit_pct : t -> float

(** Share of instrumented behavioral time, in percent. The denominator is
    [cpu_seconds] (comparable to [bn_seconds], which is also a CPU-time
    sum); falls back to [total_seconds] when no CPU time was recorded
    (e.g. stats reconstructed from a journal). *)
val bn_time_pct : t -> float

(** Mean lane occupancy per behavior-network round of a lane-mode run;
    [0.0] when lane mode never ran. *)
val lane_occupancy_mean : t -> float

(** Merge two workers' counters. Integer counters, [bn_seconds] and
    [cpu_seconds] are summed; [total_seconds] is the max (wall clocks of
    parallel workers overlap — summing them was the historical bug that
    corrupted [bn_time_pct] at [--jobs > 1]); [per_proc] is merged by
    [pr_name] (the historical [Array.append] duplicated every row per
    worker), preserving first-occurrence order so identically-ordered
    inputs — all engines emit rows in program order — merge positionally. *)
val add : t -> t -> t

val pp : Format.formatter -> t -> unit
