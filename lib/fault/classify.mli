(** Static fault classification, in the style of a commercial tool's fault
    classes: before simulating, prove some faults untestable so they can be
    excluded from the coverage denominator (and from the campaign).

    Two sound proofs are implemented:

    - {e constant site}: 2-state constant propagation over continuous
      assignments (registers that no process writes hold their reset value
      forever and participate); a stuck-at equal to the proven constant can
      never create a difference;
    - {e unobservable site}: reverse structural reachability from the
      output ports over signal/memory dependencies (processes
      conservatively connect all their reads and triggers to all their
      writes); a fault outside every output cone can never be detected.

    Both are conservative: [Testable] means "not proven untestable". The
    test suite checks soundness against simulation — a fault classified
    untestable is never detected by any engine. *)

open Rtlir

type verdict =
  | Untestable_constant
  | Untestable_unobservable
  | Testable

val verdict_name : verdict -> string

(** Per-signal constant values proven by the propagation (exposed for tests
    and for the CLI's describe output). *)
val constants : Elaborate.t -> Bits.t option array

val classify : Elaborate.t -> Fault.t array -> verdict array

(** [adjusted_coverage verdicts result] — detected over testable faults, in
    percent (the "fault coverage" a tool reports after classification).
    [None] when no fault is testable: the ratio is undefined, and the
    historical [100.0] answer read as a perfect campaign on designs where
    nothing could be tested at all. *)
val adjusted_coverage : verdict array -> Fault.result -> float option
