(* Smoke test wired into `dune runtest` (see test/dune): run a tiny
   journaled campaign cold, simulate a crash by truncating the journal,
   resume, and require the two JSON reports to be byte-identical and the
   verdicts to match a monolithic run. Exercises the same flow as
   `eraser_cli campaign --journal ... --resume`. *)
open Faultsim
module H = Harness
module R = Harness.Resilient

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("smoke: " ^ s); exit 1) fmt

let () =
  let dir = Filename.temp_file "eraser_smoke" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let journal = Filename.concat dir "campaign.jsonl" in
  let report n = Filename.concat dir (Printf.sprintf "report%d.json" n) in
  let c = Circuits.find "alu" in
  let design, g, w, faults = Circuits.Bench_circuit.instantiate c ~scale:0.06 in
  let verdicts = Classify.classify g faults in
  let cfg =
    {
      R.default_config with
      R.batch_size = 6;
      journal = Some journal;
      oracle_sample = 0.5;
    }
  in
  let emit path summary =
    R.write_atomic path (fun oc ->
        let ppf = Format.formatter_of_out_channel oc in
        H.Json_report.resilient ppf ~design ~engine:"Eraser" ~faults ~verdicts
          summary;
        Format.pp_print_flush ppf ())
  in
  (* cold run *)
  let cold = R.run ~config:cfg g w faults in
  emit (report 1) cold;
  (* crash: tear the journal's final record in half *)
  let s = read_file journal in
  write_file journal (String.sub s 0 (String.length s - String.length s / 8));
  (* resume *)
  let resumed = R.run ~config:{ cfg with R.resume = true } g w faults in
  emit (report 2) resumed;
  if resumed.R.batches_resumed = 0 then fail "resume replayed nothing";
  if resumed.R.batches_executed = 0 then fail "resume re-executed nothing";
  let mono = H.Campaign.run H.Campaign.Eraser g w faults in
  if not (Fault.same_verdict mono cold.R.result) then
    fail "cold verdicts differ from the monolithic run";
  if not (Fault.same_verdict cold.R.result resumed.R.result) then
    fail "resumed verdicts differ from the cold run";
  if read_file (report 1) <> read_file (report 2) then
    fail "cold and resumed JSON reports differ";
  Array.iter Sys.remove (Array.map (Filename.concat dir) (Sys.readdir dir));
  Sys.rmdir dir;
  Printf.printf
    "smoke ok: %d faults, %d batches (%d replayed on resume), reports \
     byte-identical\n"
    (Array.length faults) cold.R.batches_total resumed.R.batches_resumed
