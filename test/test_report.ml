(* JSON report well-formedness: the campaign document must stay parseable
   in the degenerate cases that used to leak bare [nan] tokens — zero
   detections (undefined mean latency) and zero testable faults (undefined
   adjusted coverage) — and must carry the per-process skip table. *)
open Rtlir
open Faultsim
module H = Harness
module J = H.Jsonl

let check = Alcotest.check
let int_t = Alcotest.int

let tiny_design () =
  let module B = Builder in
  let ctx = B.create "tiny" in
  let _clk = B.input ctx "clk" 1 in
  let a = B.input ctx "a" 3 in
  let o = B.output ctx "o" 3 in
  B.assign ctx o a;
  B.finalize ctx

let render ~verdicts ~result ~faults design =
  let buf = Buffer.create 2048 in
  let ppf = Format.formatter_of_buffer buf in
  H.Json_report.campaign ppf ~design ~engine:"Eraser" ~faults ~verdicts result;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let make ~detected ?detection_cycle ~stats () =
  Fault.make_result ~detected ?detection_cycle ~stats ~wall_time:0.5 ()

let test_no_detection_no_testable () =
  let design = tiny_design () in
  let faults = Fault.generate ~max_faults:3 ~seed:7L design in
  let n = Array.length faults in
  let verdicts = Array.make n Classify.Untestable_constant in
  let stats = Stats.create () in
  stats.Stats.per_proc <-
    [|
      { Stats.pr_name = "p0"; pr_exec = 4; pr_impl = 2; pr_expl = 1 };
      { Stats.pr_name = "p1"; pr_exec = 0; pr_impl = 0; pr_expl = 9 };
    |];
  let result = make ~detected:(Array.make n false) ~stats () in
  let text = render ~verdicts ~result ~faults design in
  (* the whole point: the degenerate document must parse as JSON *)
  let doc =
    try J.parse text
    with J.Parse_error m -> Alcotest.failf "unparseable report: %s" m
  in
  check int_t "detected" 0 (J.get_int "detected" doc);
  check Alcotest.bool "undefined mean latency is null" true
    (J.member "mean_detection_latency" doc = Some J.Null);
  check Alcotest.bool "undefined adjusted coverage is null" true
    (J.member "adjusted_coverage_pct" doc = Some J.Null);
  let per_proc = J.get_list "per_proc" doc in
  check int_t "per_proc rows" 2 (List.length per_proc);
  let row name =
    List.find (fun r -> J.get_string "name" r = name) per_proc
  in
  check int_t "p0 exec" 4 (J.get_int "exec" (row "p0"));
  check int_t "p0 skip_implicit" 2 (J.get_int "skip_implicit" (row "p0"));
  check int_t "p1 skip_explicit" 9 (J.get_int "skip_explicit" (row "p1"));
  check int_t "fault_list length" n
    (List.length (J.get_list "fault_list" doc))

let test_detection_fields_finite () =
  let design = tiny_design () in
  let faults = Fault.generate ~max_faults:2 ~seed:7L design in
  let verdicts = [| Classify.Testable; Classify.Untestable_constant |] in
  let result =
    make
      ~detected:[| true; false |]
      ~detection_cycle:[| 6; -1 |]
      ~stats:(Stats.create ()) ()
  in
  let doc = J.parse (render ~verdicts ~result ~faults design) in
  check (Alcotest.float 0.01) "mean latency" 6.0
    (J.get_float "mean_detection_latency" doc);
  (* 1 detected of 1 testable *)
  check (Alcotest.float 0.01) "adjusted coverage" 100.0
    (J.get_float "adjusted_coverage_pct" doc);
  check Alcotest.bool "cpu_seconds present" true
    (match J.member "stats" doc with
    | Some s -> J.member "cpu_seconds" s <> None
    | None -> false)

let suite =
  [
    Alcotest.test_case "degenerate campaign report parses" `Quick
      test_no_detection_no_testable;
    Alcotest.test_case "defined latency and coverage stay numeric" `Quick
      test_detection_fields_finite;
  ]
