(* Lane-packed fault batching regression suite.

   The contract under test (DESIGN.md section 16): packing a batch into
   64-wide lane groups changes how the concurrent engine enumerates and
   executes candidates, never what it reports — verdicts reports are
   byte-identical to scalar mode across engine styles, worker counts,
   cold/warm starts, and torn-journal resume. The satellites riding along:
   the Lanes planner's grouping soundness, per-lane convergence-rejoin vs
   the serial oracle, and the journal heartbeat record shape. *)

open Faultsim
module H = Harness
module J = H.Jsonl

let render_verdicts ~design ~engine ~faults r =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  H.Json_report.verdicts ppf ~design ~engine:(H.Campaign.engine_name engine)
    ~faults r;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let render_resilient ~design ~engine ~faults ~verdicts s =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  H.Json_report.resilient ppf ~design ~engine:(H.Campaign.engine_name engine)
    ~faults ~verdicts s;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

(* ---- lane-grouping soundness ---- *)

(* On randomized designs (with transients mixed in so the scalar-fallback
   class is populated): every fault occupies exactly one lane of exactly
   one group, packed lanes are live lanes, a lane is packed iff its fault
   is compatible, and the two classes partition the batch. *)
let test_grouping_soundness () =
  for seed = 1 to 25 do
    let s =
      H.Rand_design.generate ~cycles:40 ~max_faults:200
        ~seed:(Int64.of_int (77_000 + seed))
        ()
    in
    let faults =
      Array.mapi
        (fun i f ->
          if i mod 5 = 3 then { f with Fault.stuck = Fault.Flip_at (i mod 17) }
          else f)
        s.H.Rand_design.faults
    in
    let n = Array.length faults in
    let plan = Engine.Lanes.plan faults in
    Alcotest.(check int)
      "nfaults recorded" n plan.Engine.Lanes.nfaults;
    Alcotest.(check int)
      "groups cover the id range"
      ((n + Engine.Lanes.width - 1) / Engine.Lanes.width)
      plan.Engine.Lanes.groups;
    Alcotest.(check int)
      "classes partition the batch" n
      (plan.Engine.Lanes.packed_count + plan.Engine.Lanes.fallback_count);
    let live_total = ref 0 and packed_total = ref 0 in
    Array.iteri
      (fun grp live ->
        live_total := !live_total + Engine.Lanes.popcount live;
        let packed = plan.Engine.Lanes.packed.(grp) in
        packed_total := !packed_total + Engine.Lanes.popcount packed;
        if Int64.logand packed (Int64.lognot live) <> 0L then
          Alcotest.failf "seed %d: packed lane not live in group %d" seed grp)
      plan.Engine.Lanes.live;
    Alcotest.(check int) "every fault in exactly one lane" n !live_total;
    Alcotest.(check int)
      "packed lanes count the compatible class" plan.Engine.Lanes.packed_count
      !packed_total;
    Array.iteri
      (fun f (fa : Fault.t) ->
        let grp = Engine.Lanes.group f and b = Engine.Lanes.bit f in
        Alcotest.(check int)
          "positional group" (f / Engine.Lanes.width) grp;
        if Int64.logand plan.Engine.Lanes.live.(grp) b = 0L then
          Alcotest.failf "seed %d: fault %d missing from its lane" seed f;
        let packed = Int64.logand plan.Engine.Lanes.packed.(grp) b <> 0L in
        Alcotest.(check bool)
          "packed iff compatible" (Engine.Lanes.compatible fa) packed)
      faults
  done

(* ---- byte-identical verdicts: engines x jobs x cold/warm ---- *)

let test_lane_verdicts_byte_identical () =
  let c = Circuits.find "alu" in
  let d, g, w, faults = Circuits.Bench_circuit.instantiate c ~scale:0.1 in
  List.iter
    (fun engine ->
      let scalar = H.Campaign.run engine g w faults in
      let scalar_s = render_verdicts ~design:d ~engine ~faults scalar in
      List.iter
        (fun warmstart ->
          List.iter
            (fun jobs ->
              let packed =
                H.Campaign.run ~lanes:true ~jobs ~warmstart engine g w faults
              in
              let packed_s = render_verdicts ~design:d ~engine ~faults packed in
              if packed_s <> scalar_s then
                Alcotest.failf "%s -j %d %s: lane verdicts differ"
                  (H.Campaign.engine_name engine)
                  jobs
                  (if warmstart then "warm" else "cold"))
            [ 1; 2; 4 ])
        [ false; true ])
    [
      H.Campaign.Z01x_proxy; H.Campaign.Eraser_mm; H.Campaign.Eraser_m;
      H.Campaign.Eraser;
    ]

(* ---- convergence-rejoin equivalence vs the serial oracle ---- *)

(* Random designs exercise divergence that later collapses back to the
   good values (the rejoin path removes the lane's diffs and its candidate
   mask bits); the lane-packed verdict set must still match the serial
   oracle's exactly. *)
let test_lane_rejoin_matches_oracle () =
  for seed = 1 to 20 do
    let s =
      H.Rand_design.generate ~cycles:100 ~max_faults:40
        ~seed:(Int64.of_int (123_000 + seed))
        ()
    in
    let g = s.H.Rand_design.graph in
    let w = s.H.Rand_design.workload in
    let faults = s.H.Rand_design.faults in
    let oracle = Baselines.Serial.ifsim g w faults in
    List.iter
      (fun engine ->
        let packed = H.Campaign.run ~lanes:true engine g w faults in
        if not (Fault.same_verdict oracle packed) then
          Alcotest.failf "seed %d: %s lane verdicts diverge from the oracle"
            seed
            (H.Campaign.engine_name engine))
      [ H.Campaign.Eraser_mm; H.Campaign.Eraser_m; H.Campaign.Eraser ]
  done

(* ---- torn-journal resume of a lane-mode run ---- *)

let drop_last_line path =
  let ic = open_in_bin path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  let kept = List.rev (match !lines with _ :: tl -> tl | [] -> []) in
  let oc = open_out_bin path in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    kept;
  close_out oc

(* A lane-mode journal records a "lanes" header field; a torn campaign
   resumed WITHOUT the flag must adopt the journal's mode (like warmstart)
   and replay to a byte-identical resilient report. *)
let test_lane_journal_resumes () =
  let c = Circuits.find "alu" in
  let d, g, w, faults = Circuits.Bench_circuit.instantiate c ~scale:0.1 in
  let engine = H.Campaign.Eraser in
  let verdicts = Classify.classify g faults in
  let journal = Filename.temp_file "eraser_lanes" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove journal with Sys_error _ -> ())
    (fun () ->
      let cfg =
        {
          H.Resilient.default_config with
          H.Resilient.engine;
          jobs = 1;
          batch_size = 8;
          journal = Some journal;
          lanes = true;
        }
      in
      let full = H.Resilient.run ~config:cfg g w faults in
      let reference =
        render_resilient ~design:d ~engine ~faults ~verdicts full
      in
      (* the journal header carries the mode *)
      let header =
        let ic = open_in journal in
        let line = input_line ic in
        close_in ic;
        J.parse line
      in
      (match J.member "lanes" header with
      | Some (J.Bool true) -> ()
      | _ -> Alcotest.fail "lane-mode journal header lacks \"lanes\": true");
      drop_last_line journal;
      let resumed =
        H.Resilient.run
          ~config:{ cfg with H.Resilient.resume = true; jobs = 2; lanes = false }
          g w faults
      in
      if resumed.H.Resilient.batches_resumed = 0 then
        Alcotest.fail "resume replayed nothing from the journal";
      Alcotest.(check string)
        "resumed lane-mode resilient report byte-identical" reference
        (render_resilient ~design:d ~engine ~faults ~verdicts resumed))

(* ---- heartbeat record shape (satellite: faults/s progress) ---- *)

(* The journal heartbeat record shape is a stability contract: resume
   replay skips these records by field lookup, and the progress line is
   denominated in faults/s in both modes. *)
let test_heartbeat_shape_unchanged () =
  let t = ref 0.0 in
  let hb =
    Obs.Heartbeat.create ~now:(fun () -> !t) ~interval:1.0 ~total:128 ()
  in
  t := 2.0;
  match Obs.Heartbeat.update hb ~done_:64 ~detected:16 with
  | None -> Alcotest.fail "tick expected"
  | Some tick ->
      let j = J.parse (Obs.Heartbeat.to_json hb tick) in
      (match j with
      | J.Obj kvs ->
          Alcotest.(check (list string))
            "heartbeat field set and order"
            [
              "type"; "done"; "total"; "detected"; "elapsed_s";
              "faults_per_sec"; "eta_s";
            ]
            (List.map fst kvs)
      | _ -> Alcotest.fail "heartbeat record is not an object");
      Alcotest.(check string)
        "record type" "heartbeat" (J.get_string "type" j);
      Alcotest.(check int) "done" 64 (J.get_int "done" j);
      (* rate is faults per second: 64 faults over 2 s *)
      Alcotest.(check (float 1e-9))
        "faults/s" 32.0
        (J.get_float "faults_per_sec" j);
      let line = Obs.Heartbeat.to_line hb tick in
      let has_substr s sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool)
        "progress line is denominated in faults/s" true
        (has_substr line "faults/s")

let suite =
  [
    Alcotest.test_case "lane grouping soundness on random designs" `Quick
      test_grouping_soundness;
    Alcotest.test_case
      "lane verdicts byte-identical to scalar (engines x jobs x cold/warm)"
      `Slow test_lane_verdicts_byte_identical;
    Alcotest.test_case "lane convergence-rejoin matches the serial oracle"
      `Quick test_lane_rejoin_matches_oracle;
    Alcotest.test_case "torn lane-mode journal resumes byte-identically"
      `Quick test_lane_journal_resumes;
    Alcotest.test_case "journal heartbeat record shape unchanged" `Quick
      test_heartbeat_shape_unchanged;
  ]
