(* Value-representation regression suite.

   Three pillars of the flat (unboxed int64) engine representation:

   - the steady-state good-simulation cycle loop allocates no minor-heap
     words under the flat bytecode path (the representation's raison
     d'être — any boxing regression shows up as a nonzero delta);
   - the flat and boxed backends are trace- and verdict-identical on the
     real Table II circuits for every eval style (test_simulator already
     sweeps random designs; this pins the benchmark circuits themselves);
   - the open-addressing diff stores behave exactly like the Hashtbl maps
     they replaced, under randomized operation sequences. *)

open Rtlir
open Sim

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool

(* ---- zero-allocation steady state ---- *)

(* Division-free circuits: Divu/Modu are the flat machine's one documented
   boxing exception (stdlib unsigned division), so the allocation-free
   guarantee is stated over circuits that don't divide. *)
let zero_alloc_circuit name =
  let c = Circuits.find name in
  let d, g, _, _ = Circuits.Bench_circuit.instantiate c ~scale:0.1 in
  let config =
    {
      Simulator.eval = Simulator.Bytecode;
      scheduler = Simulator.Levelized;
      repr = Simulator.Flat;
    }
  in
  let sim = Simulator.create ~config g in
  let clk = Design.find_signal d "clk" in
  let one = Bits.one 1 and zero = Bits.zero 1 in
  (* Warm up: reach steady state (ring/NBA buffers at final size, stacks
     grown, code paths compiled). *)
  for _ = 1 to 50 do
    Simulator.set_input sim clk one;
    Simulator.step sim;
    Simulator.set_input sim clk zero;
    Simulator.step sim
  done;
  let before = Gc.minor_words () in
  for _ = 1 to 1000 do
    Simulator.set_input sim clk one;
    Simulator.step sim;
    Simulator.set_input sim clk zero;
    Simulator.step sim
  done;
  let after = Gc.minor_words () in
  check (Alcotest.float 0.0)
    (Printf.sprintf "%s: steady-state cycles allocate nothing" name)
    0.0 (after -. before)

let test_zero_alloc_sha256 () = zero_alloc_circuit "sha256_hv"
let test_zero_alloc_apb () = zero_alloc_circuit "apb"

(* ---- boxed/flat equivalence on Table II circuits ---- *)

let styles = [ Simulator.Closures; Simulator.Ast; Simulator.Bytecode ]

let test_trace_equivalence () =
  List.iter
    (fun name ->
      let c = Circuits.find name in
      let _, g, w, _ = Circuits.Bench_circuit.instantiate c ~scale:0.05 in
      let w = { w with Faultsim.Workload.cycles = min w.cycles 40 } in
      List.iter
        (fun eval ->
          let trace repr =
            Baselines.Serial.golden_trace
              ~config:{ Simulator.eval; scheduler = Simulator.Levelized; repr }
              g w
          in
          if trace Simulator.Boxed <> trace Simulator.Flat then
            Alcotest.failf "%s: boxed and flat traces differ" name)
        styles)
    [ "alu"; "apb"; "sha256_hv" ]

let test_verdict_equivalence () =
  let c = Circuits.find "alu" in
  let _, g, w, faults = Circuits.Bench_circuit.instantiate c ~scale:0.1 in
  List.iter
    (fun eval ->
      let run repr =
        let r =
          Baselines.Serial.run
            ~config:{ Simulator.eval; scheduler = Simulator.Levelized; repr }
            g w faults
        in
        (r.Faultsim.Fault.detected, r.Faultsim.Fault.detection_cycle)
      in
      if run Simulator.Boxed <> run Simulator.Flat then
        Alcotest.failf "verdicts differ between representations")
    styles

(* ---- State.copy / State.blit ---- *)

let state_equal (a : State.t) (b : State.t) =
  let ok = ref (a.State.nsig = b.State.nsig) in
  for i = 0 to a.State.nsig - 1 do
    if State.get a i <> State.get b i then ok := false
  done;
  let words = State.mem_words a in
  if words <> State.mem_words b then ok := false
  else
    for i = 0 to words - 1 do
      if
        Bigarray.Array1.get a.State.mem_v i
        <> Bigarray.Array1.get b.State.mem_v i
      then ok := false
    done;
  !ok

let test_state_copy_blit () =
  let c = Circuits.find "alu" in
  let d, _, _, _ = Circuits.Bench_circuit.instantiate c ~scale:0.05 in
  let st = State.create d in
  for i = 0 to st.State.nsig - 1 do
    State.set st i (Int64.of_int (i * 7))
  done;
  let snap = State.copy st in
  check bool_t "copy equals source" true (state_equal st snap);
  (* mutating the source must not leak into the copy *)
  for i = 0 to st.State.nsig - 1 do
    State.set st i 0xDEADL
  done;
  check bool_t "copy isolated from source" false (state_equal st snap);
  check int_t "copy kept its value" 7 (Int64.to_int (State.get snap 1));
  (* blit restores the source exactly *)
  State.blit ~src:snap ~dst:st;
  check bool_t "blit round-trips" true (state_equal st snap)

(* Snapshot determinism at the engine level: capture the good trace, then
   warm-restore at a mid snapshot and run to the end — verdicts and
   detection cycles must equal the straight (cold) run, and both must
   match the serial oracle under the flat AND boxed representations. *)
let snapshot_determinism name =
  let c = Circuits.find name in
  let _, g, w, _ = Circuits.Bench_circuit.instantiate c ~scale:0.05 in
  let w = { w with Faultsim.Workload.cycles = min w.cycles 60 } in
  let config =
    { Engine.Concurrent.default_config with mode = Engine.Concurrent.Full }
  in
  let trace = Engine.Concurrent.capture ~config g w in
  let d = g.Rtlir.Elaborate.design in
  let base =
    Faultsim.Fault.generate_transients ~seed:0xCAFEL ~count:6
      ~max_cycle:(w.Faultsim.Workload.cycles - 1) d
  in
  let late = w.Faultsim.Workload.cycles / 2 in
  let faults =
    Array.mapi
      (fun i f ->
        {
          f with
          Faultsim.Fault.stuck =
            Faultsim.Fault.Flip_at
              (late + (i mod (w.Faultsim.Workload.cycles - late)));
        })
      base
  in
  let acts = Engine.Concurrent.activations trace g faults in
  let earliest = Array.fold_left min max_int acts in
  let start = Sim.Goodtrace.start_for trace ~activation:earliest in
  if start <= 0 then
    Alcotest.failf "%s: expected a mid snapshot for activation %d" name
      earliest;
  let ids = Array.init (Array.length faults) (fun i -> i) in
  let cold = Engine.Concurrent.run_batch ~config g w faults ~ids in
  let warm =
    Engine.Concurrent.run_batch ~config
      ~goodtrace:{ Sim.Goodtrace.trace; start }
      g w faults ~ids
  in
  let verdicts (r : Faultsim.Fault.result) =
    (r.Faultsim.Fault.detected, r.Faultsim.Fault.detection_cycle)
  in
  if verdicts warm <> verdicts cold then
    Alcotest.failf "%s: warm restore at cycle %d diverges from straight run"
      name start;
  List.iter
    (fun repr ->
      let oracle =
        Baselines.Serial.run
          ~config:
            { Simulator.eval = Simulator.Closures;
              scheduler = Simulator.Levelized;
              repr }
          g w faults
      in
      if verdicts oracle <> verdicts warm then
        Alcotest.failf "%s: warm verdicts disagree with the %s serial oracle"
          name
          (match repr with Simulator.Flat -> "flat" | Simulator.Boxed -> "boxed"))
    [ Simulator.Flat; Simulator.Boxed ]

let test_snapshot_determinism_alu () = snapshot_determinism "alu"
let test_snapshot_determinism_sha () = snapshot_determinism "sha256_hv"

(* ---- diff store vs Hashtbl reference model ---- *)

let test_diffstore_model () =
  let rng = Random.State.make [| 0x5eed; 42 |] in
  for trial = 1 to 20 do
    let store = Engine.Diffstore.create ~expect:(1 + (trial mod 7)) () in
    let model : (int, int64) Hashtbl.t = Hashtbl.create 16 in
    for _ = 1 to 2000 do
      let key = Random.State.int rng 200 in
      match Random.State.int rng 4 with
      | 0 | 1 ->
          let v = Random.State.int64 rng 1000L in
          Engine.Diffstore.set store key v;
          Hashtbl.replace model key v
      | 2 ->
          Engine.Diffstore.remove store key;
          Hashtbl.remove model key
      | _ ->
          check bool_t "mem agrees" (Hashtbl.mem model key)
            (Engine.Diffstore.mem store key);
          let expect =
            match Hashtbl.find_opt model key with Some v -> v | None -> -1L
          in
          if Engine.Diffstore.find store key ~default:(-1L) <> expect then
            Alcotest.failf "trial %d: find mismatch on key %d" trial key
    done;
    check int_t "length agrees" (Hashtbl.length model)
      (Engine.Diffstore.length store);
    (* iteration covers exactly the live entries *)
    let seen = Hashtbl.create 16 in
    Engine.Diffstore.iter store (fun k v ->
        if Hashtbl.mem seen k then Alcotest.failf "key %d visited twice" k;
        Hashtbl.add seen k ();
        match Hashtbl.find_opt model k with
        | Some mv when mv = v -> ()
        | Some _ -> Alcotest.failf "key %d iterated with wrong value" k
        | None -> Alcotest.failf "key %d iterated but not in model" k);
    check int_t "iteration count" (Hashtbl.length model) (Hashtbl.length seen);
    Engine.Diffstore.clear store;
    check int_t "cleared" 0 (Engine.Diffstore.length store);
    check bool_t "cleared mem" false (Engine.Diffstore.mem store 0)
  done

let test_counts_model () =
  let rng = Random.State.make [| 0xc0; 7 |] in
  for trial = 1 to 20 do
    let store = Engine.Diffstore.Counts.create ~expect:(1 + (trial mod 5)) () in
    let model : (int, int) Hashtbl.t = Hashtbl.create 16 in
    let bump key delta =
      let c =
        (match Hashtbl.find_opt model key with Some c -> c | None -> 0)
        + delta
      in
      if c <= 0 then Hashtbl.remove model key else Hashtbl.replace model key c
    in
    for _ = 1 to 2000 do
      let key = Random.State.int rng 100 in
      let delta = Random.State.int rng 5 - 2 in
      Engine.Diffstore.Counts.bump store key delta;
      (* the engine only ever bumps by +-1 on existing state; the model
         mirrors the store's documented semantics for any delta *)
      if delta > 0 || Hashtbl.mem model key then bump key delta;
      if
        Engine.Diffstore.Counts.mem store key <> Hashtbl.mem model key
      then Alcotest.failf "trial %d: mem mismatch on key %d" trial key
    done;
    check int_t "length agrees" (Hashtbl.length model)
      (Engine.Diffstore.Counts.length store);
    let seen = ref 0 in
    Engine.Diffstore.Counts.iter_keys store (fun k ->
        incr seen;
        if not (Hashtbl.mem model k) then
          Alcotest.failf "key %d iterated but not in model" k);
    check int_t "iteration count" (Hashtbl.length model) !seen;
    Engine.Diffstore.Counts.clear store;
    check int_t "cleared" 0 (Engine.Diffstore.Counts.length store)
  done

(* clear releases a grown slot array back to the creation-time size, but
   only once the table has outgrown it by the documented factor (16) —
   moderate growth must keep its capacity across rounds. *)
let test_diffstore_shrink_on_clear () =
  let store = Engine.Diffstore.create ~expect:4 () in
  let base = Engine.Diffstore.capacity store in
  for key = 0 to 4095 do
    Engine.Diffstore.set store key (Int64.of_int key)
  done;
  check int_t "populated" 4096 (Engine.Diffstore.length store);
  if Engine.Diffstore.capacity store <= 16 * base then
    Alcotest.failf "giant batch did not grow past the shrink threshold (%d)"
      (Engine.Diffstore.capacity store);
  Engine.Diffstore.clear store;
  check int_t "shrunk back to base capacity" base
    (Engine.Diffstore.capacity store);
  check int_t "cleared" 0 (Engine.Diffstore.length store);
  (* still a working table after the reallocation *)
  for key = 0 to 63 do
    Engine.Diffstore.set store key (Int64.of_int (key * 3))
  done;
  check int_t "usable after shrink" 64 (Engine.Diffstore.length store);
  check bool_t "lookup after shrink" true
    (Engine.Diffstore.find store 21 ~default:(-1L) = 63L);
  (* moderate growth (<= 16x) keeps its capacity across clear *)
  Engine.Diffstore.clear store;
  for key = 0 to (4 * base) - 1 do
    Engine.Diffstore.set store key (Int64.of_int key)
  done;
  let grown = Engine.Diffstore.capacity store in
  if grown > 16 * base then
    Alcotest.failf "moderate growth unexpectedly passed the threshold (%d)"
      grown;
  Engine.Diffstore.clear store;
  check int_t "moderate growth retained across clear" grown
    (Engine.Diffstore.capacity store)

let suite =
  [
    Alcotest.test_case "flat bytecode steady state allocates nothing (sha256)"
      `Quick test_zero_alloc_sha256;
    Alcotest.test_case "flat bytecode steady state allocates nothing (apb)"
      `Quick test_zero_alloc_apb;
    Alcotest.test_case "boxed and flat traces identical on Table II circuits"
      `Quick test_trace_equivalence;
    Alcotest.test_case "boxed and flat fault verdicts identical" `Quick
      test_verdict_equivalence;
    Alcotest.test_case "State.copy and blit isolate and round-trip" `Quick
      test_state_copy_blit;
    Alcotest.test_case "snapshot restore equals straight run (alu)" `Quick
      test_snapshot_determinism_alu;
    Alcotest.test_case "snapshot restore equals straight run (sha256_hv)"
      `Quick test_snapshot_determinism_sha;
    Alcotest.test_case "diffstore matches Hashtbl model" `Quick
      test_diffstore_model;
    Alcotest.test_case "counts store matches refcount model" `Quick
      test_counts_model;
    Alcotest.test_case "diffstore clear shrinks a high-water slot array"
      `Quick test_diffstore_shrink_on_clear;
  ]
