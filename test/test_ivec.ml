(* Unit tests for the shared growable int vector (lib/core/ivec.ml), the
   backing store of the engine's per-node fault sets and the pool's
   work-stealing deques. *)
open Engine

let check = Alcotest.check
let int_t = Alcotest.int

let test_basics () =
  let v = Ivec.create () in
  check Alcotest.bool "fresh is empty" true (Ivec.is_empty v);
  check int_t "fresh length" 0 (Ivec.length v);
  Ivec.push v 7;
  Ivec.push v 11;
  check Alcotest.bool "non-empty" false (Ivec.is_empty v);
  check int_t "length" 2 (Ivec.length v);
  check int_t "get 0" 7 (Ivec.get v 0);
  check int_t "get 1" 11 (Ivec.get v 1);
  check int_t "pop returns last" 11 (Ivec.pop v);
  check int_t "length after pop" 1 (Ivec.length v);
  Ivec.clear v;
  check Alcotest.bool "cleared" true (Ivec.is_empty v)

let test_growth () =
  (* start below the default capacity and push far past it *)
  let v = Ivec.create ~capacity:1 () in
  for i = 0 to 9999 do
    Ivec.push v (i * 3)
  done;
  check int_t "length after growth" 10000 (Ivec.length v);
  for i = 0 to 9999 do
    if Ivec.get v i <> i * 3 then
      Alcotest.failf "element %d corrupted by growth" i
  done;
  for i = 9999 downto 0 do
    if Ivec.pop v <> i * 3 then Alcotest.failf "pop %d wrong" i
  done;
  check Alcotest.bool "drained" true (Ivec.is_empty v)

let test_iter_order () =
  let v = Ivec.create ~capacity:2 () in
  List.iter (Ivec.push v) [ 5; 1; 4; 1; 3 ];
  let seen = ref [] in
  Ivec.iter (fun x -> seen := x :: !seen) v;
  check (Alcotest.list int_t) "iter in insertion order" [ 5; 1; 4; 1; 3 ]
    (List.rev !seen);
  check (Alcotest.array int_t) "to_array" [| 5; 1; 4; 1; 3 |] (Ivec.to_array v)

let test_clear_reuse () =
  let v = Ivec.create ~capacity:2 () in
  List.iter (Ivec.push v) [ 1; 2; 3 ];
  Ivec.clear v;
  List.iter (Ivec.push v) [ 9; 8 ];
  check (Alcotest.array int_t) "reused after clear" [| 9; 8 |] (Ivec.to_array v)

let test_errors () =
  let v = Ivec.create () in
  (match Ivec.pop v with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "pop of empty accepted");
  Ivec.push v 1;
  (match Ivec.get v 1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-bounds get accepted");
  match Ivec.get v (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative get accepted"

let suite =
  [
    Alcotest.test_case "push/pop/get/clear" `Quick test_basics;
    Alcotest.test_case "growth keeps contents" `Quick test_growth;
    Alcotest.test_case "iteration order" `Quick test_iter_order;
    Alcotest.test_case "clear then reuse" `Quick test_clear_reuse;
    Alcotest.test_case "bounds errors" `Quick test_errors;
  ]
