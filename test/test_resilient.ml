(* Resilient-runner tests: batched == monolithic verdicts, journal
   checkpoint/resume (including torn final records), journal corruption
   detection, watchdog budgets with retry-by-splitting, online divergence
   quarantine of an injected engine bug, and workload validation. *)
open Faultsim
module H = Harness
module R = Harness.Resilient

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let scale = 0.06

let campaign name =
  let c = Circuits.find name in
  Circuits.Bench_circuit.instantiate c ~scale

let temp_journal () = Filename.temp_file "eraser_test_resilient" ".jsonl"

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let journal_lines path =
  List.filter (fun l -> l <> "") (String.split_on_char '\n' (read_file path))

(* Simulate a mid-write crash: drop the final record entirely and tear the
   one before it in half. *)
let crash_truncate path =
  match List.rev (journal_lines path) with
  | last :: prev :: rest ->
      ignore last;
      let torn = String.sub prev 0 (String.length prev / 2) in
      write_file path
        (String.concat "\n" (List.rev rest) ^ "\n" ^ torn)
  | _ -> Alcotest.fail "journal too short to truncate"

let same_result (a : Fault.result) (b : Fault.result) =
  a.Fault.detected = b.Fault.detected
  && a.Fault.detection_cycle = b.Fault.detection_cycle

let expect_error name pred f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Campaign_error" name
  | exception R.Campaign_error e ->
      if not (pred e) then
        Alcotest.failf "%s: unexpected error: %s" name (R.error_message e)

let render_report ~design ~g ~faults summary =
  let verdicts = Classify.classify g faults in
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  H.Json_report.resilient ppf ~design ~engine:"Eraser" ~faults ~verdicts
    summary;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

(* ---- batching ---- *)

let test_batched_equals_monolithic () =
  List.iter
    (fun name ->
      let _, g, w, faults = campaign name in
      let mono = H.Campaign.run H.Campaign.Eraser g w faults in
      List.iter
        (fun batch_size ->
          let s =
            R.run ~config:{ R.default_config with R.batch_size } g w faults
          in
          if not (same_result mono s.R.result) then
            Alcotest.failf "%s: batch size %d changes the verdicts" name
              batch_size;
          check int_t
            (Printf.sprintf "%s/%d batch count" name batch_size)
            ((Array.length faults + batch_size - 1) / batch_size)
            s.R.batches_total)
        [ 1; 7; Array.length faults + 5 ])
    [ "alu"; "apb" ]

let test_batched_serial_engine () =
  let _, g, w, faults = campaign "alu" in
  let mono = H.Campaign.run H.Campaign.Ifsim g w faults in
  let s =
    R.run
      ~config:
        { R.default_config with R.engine = H.Campaign.Ifsim; batch_size = 5 }
      g w faults
  in
  check bool_t "serial engine batched == monolithic" true
    (same_result mono s.R.result)

(* ---- journal / resume ---- *)

let test_resume_after_crash () =
  let design, g, w, faults = campaign "alu" in
  let mono = H.Campaign.run H.Campaign.Eraser g w faults in
  let journal = temp_journal () in
  let cfg =
    {
      R.default_config with
      R.batch_size = 7;
      journal = Some journal;
      oracle_sample = 0.3;
    }
  in
  let cold = R.run ~config:cfg g w faults in
  check bool_t "cold == monolithic" true (same_result mono cold.R.result);
  let cold_report = render_report ~design ~g ~faults cold in
  crash_truncate journal;
  let resumed = R.run ~config:{ cfg with R.resume = true } g w faults in
  Sys.remove journal;
  check bool_t "resumed verdicts identical" true
    (same_result cold.R.result resumed.R.result);
  check bool_t "some batches replayed" true (resumed.R.batches_resumed > 0);
  check bool_t "some batches re-executed" true
    (resumed.R.batches_executed >= 2);
  check int_t "all batches accounted for" cold.R.batches_total
    (resumed.R.batches_resumed + resumed.R.batches_executed);
  let resumed_report = render_report ~design ~g ~faults resumed in
  check bool_t "reports byte-identical" true (cold_report = resumed_report)

let test_resume_noop_when_complete () =
  let _, g, w, faults = campaign "apb" in
  let journal = temp_journal () in
  let cfg =
    { R.default_config with R.batch_size = 9; journal = Some journal }
  in
  let cold = R.run ~config:cfg g w faults in
  let resumed = R.run ~config:{ cfg with R.resume = true } g w faults in
  Sys.remove journal;
  check int_t "nothing re-executed" 0 resumed.R.batches_executed;
  check int_t "everything replayed" cold.R.batches_total
    resumed.R.batches_resumed;
  check bool_t "verdicts identical" true
    (same_result cold.R.result resumed.R.result)

let test_corrupt_middle_record () =
  let _, g, w, faults = campaign "alu" in
  let journal = temp_journal () in
  let cfg =
    { R.default_config with R.batch_size = 7; journal = Some journal }
  in
  ignore (R.run ~config:cfg g w faults);
  (match journal_lines journal with
  | header :: _ :: rest ->
      write_file journal
        (String.concat "\n" ((header :: [ "{garbage" ]) @ rest) ^ "\n")
  | _ -> Alcotest.fail "journal too short");
  expect_error "corrupt middle record"
    (function R.Journal_corrupt _ -> true | _ -> false)
    (fun () -> R.run ~config:{ cfg with R.resume = true } g w faults);
  Sys.remove journal

let test_parameter_mismatch () =
  let _, g, w, faults = campaign "alu" in
  let journal = temp_journal () in
  let cfg =
    { R.default_config with R.batch_size = 7; journal = Some journal }
  in
  ignore (R.run ~config:cfg g w faults);
  expect_error "batch size mismatch"
    (function R.Journal_corrupt _ -> true | _ -> false)
    (fun () ->
      R.run
        ~config:{ cfg with R.batch_size = 8; resume = true }
        g w faults);
  Sys.remove journal

let test_journal_overwritten_without_resume () =
  let _, g, w, faults = campaign "apb" in
  let journal = temp_journal () in
  let cfg =
    { R.default_config with R.batch_size = 9; journal = Some journal }
  in
  ignore (R.run ~config:cfg g w faults);
  (* without --resume a stale journal is truncated, not replayed *)
  let again = R.run ~config:cfg g w faults in
  Sys.remove journal;
  check int_t "no batches resumed" 0 again.R.batches_resumed

let test_torn_tail_double_resume () =
  (* Regression: resuming over a torn final line used to append the next
     record right after the torn bytes, corrupting the journal for the
     *second* resume. The clean-prefix truncation must make any number of
     crash/resume rounds parse. *)
  let _, g, w, faults = campaign "alu" in
  let journal = temp_journal () in
  let cfg =
    { R.default_config with R.batch_size = 7; journal = Some journal }
  in
  let cold = R.run ~config:cfg g w faults in
  (* tear the final record mid-write, without a trailing newline *)
  let lines = journal_lines journal in
  let all = String.concat "\n" lines ^ "\n" in
  write_file journal (String.sub all 0 (String.length all - 12));
  let once = R.run ~config:{ cfg with R.resume = true } g w faults in
  check int_t "one batch re-executed" 1 once.R.batches_executed;
  (* the journal is whole again: a second resume replays everything *)
  let twice = R.run ~config:{ cfg with R.resume = true } g w faults in
  Sys.remove journal;
  check int_t "second resume re-executes nothing" 0 twice.R.batches_executed;
  check bool_t "verdicts stable across resumes" true
    (same_result cold.R.result twice.R.result)

let test_read_journal_torn_tail () =
  let path = temp_journal () in
  write_file path "{\"a\":1}\n{\"b\":2}\n{\"c\":";
  let j = H.Jsonl.read_journal path in
  check
    (Alcotest.list Alcotest.string)
    "complete lines" [ "{\"a\":1}"; "{\"b\":2}" ] j.H.Jsonl.complete;
  check (Alcotest.option Alcotest.string) "torn tail" (Some "{\"c\":")
    j.H.Jsonl.torn;
  write_file path "{\"a\":1}\n";
  let j = H.Jsonl.read_journal path in
  check (Alcotest.option Alcotest.string) "no tear after newline" None
    j.H.Jsonl.torn;
  write_file path "";
  let j = H.Jsonl.read_journal path in
  Sys.remove path;
  check (Alcotest.list Alcotest.string) "empty file" [] j.H.Jsonl.complete;
  check (Alcotest.option Alcotest.string) "empty file tail" None j.H.Jsonl.torn

(* ---- warm/cold resume adoption and static pruning ---- *)

let test_resume_adopts_warm_journal () =
  (* Regression: resuming a warm journal without [warmstart] used to be a
     hard Journal_corrupt (header mismatch). The runner must read the
     journal's warmstart flag, re-capture the good trace, rebuild the
     activation-sorted decomposition, and continue warm. *)
  let _, g, w, faults = campaign "alu" in
  let journal = temp_journal () in
  let warm_cfg =
    {
      R.default_config with
      R.batch_size = 7;
      journal = Some journal;
      warmstart = true;
    }
  in
  let warm = R.run ~config:warm_cfg g w faults in
  crash_truncate journal;
  let resumed =
    R.run
      ~config:{ warm_cfg with R.warmstart = false; resume = true }
      g w faults
  in
  Sys.remove journal;
  check bool_t "verdicts identical" true
    (same_result warm.R.result resumed.R.result);
  check bool_t "some batches replayed" true (resumed.R.batches_resumed > 0);
  check bool_t "some batches re-executed" true
    (resumed.R.batches_executed >= 2);
  check int_t "all batches accounted for" warm.R.batches_total
    (resumed.R.batches_resumed + resumed.R.batches_executed);
  check bool_t "the resume re-captured the good trace" true
    (resumed.R.capture_bytes > 0)

let test_resume_adopts_cold_journal () =
  (* the opposite direction: a cold journal resumed by an invocation that
     asks for [warmstart] must run cold — contiguous batches, no capture *)
  let _, g, w, faults = campaign "alu" in
  let journal = temp_journal () in
  let cold_cfg =
    { R.default_config with R.batch_size = 7; journal = Some journal }
  in
  let cold = R.run ~config:cold_cfg g w faults in
  crash_truncate journal;
  let resumed =
    R.run
      ~config:{ cold_cfg with R.warmstart = true; resume = true }
      g w faults
  in
  Sys.remove journal;
  check bool_t "verdicts identical" true
    (same_result cold.R.result resumed.R.result);
  check bool_t "some batches replayed" true (resumed.R.batches_resumed > 0);
  check int_t "no capture on a cold resume" 0 resumed.R.capture_bytes

(* A design with a register no structural path connects to any output: its
   stuck faults are statically undetectable and a warm campaign must prune
   them — journaled as one typed record — without changing any verdict. *)
let dead_end_design () =
  let module B = Rtlir.Builder in
  let open B.Ops in
  let ctx = B.create "deadend" in
  let clk = B.input ctx "clk" 1 in
  let a = B.input ctx "a" 4 in
  let q = B.reg ctx "q" 4 in
  let dead = B.reg ctx "dead" 4 in
  (* separate processes: the cone is process-granular, so co-hosting the
     dead register with q would make it (correctly) observable *)
  B.always_ff ctx ~clock:clk [ q <-- (q +: a) ];
  B.always_ff ctx ~clock:clk [ dead <-- (dead +: B.const 4 1) ];
  let o = B.output ctx "o" 4 in
  B.assign ctx o q;
  let d = B.finalize ctx in
  let g = Rtlir.Elaborate.build d in
  let a_id = Rtlir.Design.find_signal d "a" in
  let w =
    {
      Workload.cycles = 40;
      clock = Rtlir.Design.find_signal d "clk";
      drive = (fun c -> [ (a_id, Rtlir.Bits.of_int 4 (c land 15)) ]);
    }
  in
  (d, g, w)

let test_static_pruning () =
  let d, g, w = dead_end_design () in
  let dead = Rtlir.Design.find_signal d "dead" in
  let q = Rtlir.Design.find_signal d "q" in
  let mk fid signal bit stuck = { Fault.fid; signal; bit; stuck } in
  let faults =
    [|
      mk 0 q 0 Fault.Stuck_at_0;
      mk 1 dead 0 Fault.Stuck_at_1;
      mk 2 q 1 Fault.Stuck_at_1;
      mk 3 dead 3 Fault.Stuck_at_0;
    |]
  in
  let cold =
    R.run ~config:{ R.default_config with R.batch_size = 2 } g w faults
  in
  check (Alcotest.list int_t) "cold campaign prunes nothing" []
    cold.R.pruned_faults;
  let journal = temp_journal () in
  let cfg =
    {
      R.default_config with
      R.batch_size = 2;
      journal = Some journal;
      warmstart = true;
    }
  in
  let warm = R.run ~config:cfg g w faults in
  check (Alcotest.list int_t) "dead-register faults pruned" [ 1; 3 ]
    warm.R.pruned_faults;
  check bool_t "verdicts identical to the cold run" true
    (same_result cold.R.result warm.R.result);
  check bool_t "pruned faults read undetected" true
    ((not warm.R.result.Fault.detected.(1))
    && not warm.R.result.Fault.detected.(3));
  check int_t "pruned faults excluded from batching" 1 warm.R.batches_total;
  check int_t "stats count the pruned faults" 2
    warm.R.result.Fault.stats.Stats.cone_pruned;
  let has_pruned_record =
    List.exists
      (fun l ->
        match H.Jsonl.parse l with
        | j -> (
            match H.Jsonl.member "type" j with
            | Some (H.Jsonl.String "pruned") -> true
            | _ -> false)
        | exception H.Jsonl.Parse_error _ -> false)
      (journal_lines journal)
  in
  check bool_t "journal holds the typed pruned record" true has_pruned_record;
  (* a resume revalidates the pruned record and replays everything *)
  let resumed = R.run ~config:{ cfg with R.resume = true } g w faults in
  check int_t "resume re-executes nothing" 0 resumed.R.batches_executed;
  check bool_t "resumed verdicts identical" true
    (same_result warm.R.result resumed.R.result);
  check (Alcotest.list int_t) "pruned set recomputed on resume" [ 1; 3 ]
    resumed.R.pruned_faults;
  (* a tampered pruned record is a parameter mismatch, not silently used *)
  (match journal_lines journal with
  | header :: _pruned :: rest ->
      write_file journal
        (String.concat "\n"
           ((header :: [ "{\"type\":\"pruned\",\"ids\":[0]}" ]) @ rest)
        ^ "\n")
  | _ -> Alcotest.fail "journal too short");
  expect_error "tampered pruned record"
    (function R.Journal_corrupt _ -> true | _ -> false)
    (fun () -> R.run ~config:{ cfg with R.resume = true } g w faults);
  Sys.remove journal

(* ---- divergence quarantine ---- *)

let test_divergence_quarantined () =
  let _, g, w, faults = campaign "alu" in
  let oracle = H.Campaign.run H.Campaign.Ifsim g w faults in
  let journal = temp_journal () in
  let cfg =
    {
      R.default_config with
      R.batch_size = 7;
      journal = Some journal;
      oracle_sample = 1.0;
      inject_divergence = Some 3;
    }
  in
  let s = R.run ~config:cfg g w faults in
  check int_t "one divergence" 1 (List.length s.R.divergences);
  check bool_t "fault 3 quarantined" true (s.R.quarantined = [ 3 ]);
  let d = List.hd s.R.divergences in
  check int_t "divergent fault id" 3 d.R.div_fault;
  check bool_t "engine and oracle disagree" true
    (d.R.engine_detected <> d.R.oracle_detected);
  check bool_t "final verdicts follow the serial oracle" true
    (same_result oracle s.R.result);
  (* the divergence survives a journal replay *)
  let resumed = R.run ~config:{ cfg with R.resume = true } g w faults in
  Sys.remove journal;
  check int_t "nothing re-executed on replay" 0 resumed.R.batches_executed;
  check int_t "divergence replayed from the journal" 1
    (List.length resumed.R.divergences);
  check bool_t "replayed verdicts identical" true
    (same_result s.R.result resumed.R.result)

let test_divergence_fatal_without_quarantine () =
  let _, g, w, faults = campaign "alu" in
  expect_error "no-quarantine divergence"
    (function R.Engine_divergence [ d ] -> d.R.div_fault = 3 | _ -> false)
    (fun () ->
      R.run
        ~config:
          {
            R.default_config with
            R.batch_size = 7;
            oracle_sample = 1.0;
            inject_divergence = Some 3;
            quarantine = false;
          }
        g w faults)

(* ---- watchdog ---- *)

let test_cycle_budget_timeout () =
  let _, g, w, faults = campaign "alu" in
  expect_error "cycle budget"
    (function
      | R.Batch_timeout { batch = 0; cycle; _ } -> cycle = 5
      | _ -> false)
    (fun () ->
      R.run
        ~config:
          { R.default_config with R.batch_size = 8; max_batch_cycles = Some 5 }
        g w faults)

let test_wallclock_splits_to_single_fault () =
  let _, g, w, faults = campaign "alu" in
  (* an already-expired deadline trips every attempt: the runner must split
     all the way down to single-fault batches before giving up *)
  expect_error "expired deadline"
    (function
      | R.Batch_timeout { ids; _ } -> Array.length ids = 1
      | _ -> false)
    (fun () ->
      R.run
        ~config:
          {
            R.default_config with
            R.batch_size = 8;
            max_batch_seconds = Some 0.0;
            max_retries = 99;
          }
        g w faults)

let test_generous_budget_no_trip () =
  let _, g, w, faults = campaign "apb" in
  let mono = H.Campaign.run H.Campaign.Eraser g w faults in
  let s =
    R.run
      ~config:
        {
          R.default_config with
          R.batch_size = 9;
          max_batch_cycles = Some (w.Workload.cycles + 1);
          max_batch_seconds = Some 3600.0;
        }
      g w faults
  in
  check int_t "no splits" 0 s.R.retries;
  check bool_t "verdicts unchanged" true (same_result mono s.R.result)

(* ---- supervision ---- *)

let test_supervised_quarantine_bottom () =
  (* An always-expired deadline trips every attempt, at every batch size,
     down to single faults. Unsupervised that is a fatal Batch_timeout
     (pinned above); supervised, the runner must bottom out in per-fault
     quarantine — each fault tried once more alone, then abandoned — and
     complete the campaign instead of looping or aborting. *)
  let _, g, w, faults = campaign "alu" in
  let journal = temp_journal () in
  let cfg =
    {
      R.default_config with
      R.batch_size = 8;
      max_batch_seconds = Some 0.0;
      max_retries = 99;
      supervise = true;
      journal = Some journal;
    }
  in
  let s = R.run ~config:cfg g w faults in
  check int_t "every fault abandoned" (Array.length faults)
    (List.length s.R.failed_faults);
  check
    (Alcotest.list int_t)
    "abandoned in fault order"
    (List.init (Array.length faults) Fun.id)
    s.R.failed_faults;
  check bool_t "abandoned faults read undetected" true
    (Array.for_all not s.R.result.Fault.detected);
  check bool_t "watchdog splits recorded" true (s.R.retries > 0);
  (* the journal carries the failed ids and the retry events: a resume
     reconstructs the same summary without re-executing anything *)
  let resumed = R.run ~config:{ cfg with R.resume = true } g w faults in
  Sys.remove journal;
  check int_t "resume re-executes nothing" 0 resumed.R.batches_executed;
  check
    (Alcotest.list int_t)
    "failed faults replayed from the journal" s.R.failed_faults
    resumed.R.failed_faults;
  check int_t "retry events replayed from the journal" s.R.retries
    resumed.R.retries

let test_supervise_defaults_off () =
  (* the supervised paths must not change unsupervised behaviour: the
     default config still reports Batch_timeout (pinned by the watchdog
     tests above) and carries no supervision artefacts on a clean run *)
  let _, g, w, faults = campaign "apb" in
  let s =
    R.run ~config:{ R.default_config with R.batch_size = 9 } g w faults
  in
  check int_t "no restarts" 0 s.R.restarts;
  check (Alcotest.list int_t) "no failed faults" [] s.R.failed_faults;
  check (Alcotest.list Alcotest.string) "no repros" [] s.R.repros

(* ---- workload validation ---- *)

let test_budget_exceeded_unit () =
  let w =
    { Workload.cycles = 20; clock = 0; drive = (fun _ -> []) }
  in
  let wb = Workload.with_budget ~max_cycles:5 w in
  match
    Workload.run wb
      ~set_input:(fun _ _ -> ())
      ~step:(fun () -> ())
      ~observe:(fun _ -> true)
  with
  | () -> Alcotest.fail "expected Budget_exceeded"
  | exception Workload.Budget_exceeded { cycle; _ } ->
      check int_t "tripped at the budget" 5 cycle

let test_negative_cycles_rejected () =
  let w = { Workload.cycles = -1; clock = 0; drive = (fun _ -> []) } in
  (match
     Workload.run w
       ~set_input:(fun _ _ -> ())
       ~step:(fun () -> ())
       ~observe:(fun _ -> true)
   with
  | () -> Alcotest.fail "expected Invalid_workload"
  | exception Workload.Invalid_workload _ -> ());
  let _, g, _, faults = campaign "alu" in
  expect_error "negative cycles through the runner"
    (function R.Bad_workload _ -> true | _ -> false)
    (fun () -> ignore (R.run g w faults))

let test_unknown_drive_target_rejected () =
  let _, g, w, faults = campaign "alu" in
  let bad = { w with Workload.drive = (fun _ -> [ (9999, Rtlir.Bits.one 1) ]) } in
  (match Engine.Concurrent.run g bad faults with
  | _ -> Alcotest.fail "expected Invalid_workload"
  | exception Workload.Invalid_workload msg ->
      check bool_t "message names the signal" true
        (String.length msg > 0
        && String.index_opt msg '9' <> None));
  (match Baselines.Serial.ifsim g bad faults with
  | _ -> Alcotest.fail "expected Invalid_workload (serial)"
  | exception Workload.Invalid_workload _ -> ());
  expect_error "unknown target through the runner"
    (function R.Bad_workload _ -> true | _ -> false)
    (fun () -> ignore (R.run g bad faults))

let test_clock_in_drive_rejected () =
  let _, g, w, faults = campaign "alu" in
  let bad =
    {
      w with
      Workload.drive = (fun _ -> [ (w.Workload.clock, Rtlir.Bits.one 1) ]);
    }
  in
  match Engine.Concurrent.run g bad faults with
  | _ -> Alcotest.fail "expected Invalid_workload"
  | exception Workload.Invalid_workload _ -> ()

(* ---- Jsonl ---- *)

let test_jsonl_roundtrip () =
  let v =
    H.Jsonl.Obj
      [
        ("type", H.Jsonl.String "batch");
        ("ids", H.Jsonl.List [ H.Jsonl.Int 1; H.Jsonl.Int (-2) ]);
        ("ok", H.Jsonl.Bool true);
        ("none", H.Jsonl.Null);
        ("rate", H.Jsonl.Float 0.25);
        ("text", H.Jsonl.String "a \"quoted\"\nline\twith\\escapes");
        ("nested", H.Jsonl.Obj [ ("empty", H.Jsonl.List []) ]);
      ]
  in
  check bool_t "roundtrip" true (H.Jsonl.parse (H.Jsonl.to_string v) = v);
  List.iter
    (fun s ->
      match H.Jsonl.parse s with
      | _ -> Alcotest.failf "parse %S should fail" s
      | exception H.Jsonl.Parse_error _ -> ())
    [ "{\"a\":1"; "[1,2,"; "{\"a\" 1}"; "tru"; "\"unterminated"; "1 2" ]

let suite =
  [
    Alcotest.test_case "batched == monolithic verdicts" `Quick
      test_batched_equals_monolithic;
    Alcotest.test_case "batched serial engine" `Quick
      test_batched_serial_engine;
    Alcotest.test_case "resume after torn journal" `Quick
      test_resume_after_crash;
    Alcotest.test_case "resume of a complete journal" `Quick
      test_resume_noop_when_complete;
    Alcotest.test_case "corrupt middle record rejected" `Quick
      test_corrupt_middle_record;
    Alcotest.test_case "journal parameter mismatch rejected" `Quick
      test_parameter_mismatch;
    Alcotest.test_case "stale journal overwritten without resume" `Quick
      test_journal_overwritten_without_resume;
    Alcotest.test_case "torn tail survives double resume" `Quick
      test_torn_tail_double_resume;
    Alcotest.test_case "resume adopts a warm journal" `Quick
      test_resume_adopts_warm_journal;
    Alcotest.test_case "resume adopts a cold journal" `Quick
      test_resume_adopts_cold_journal;
    Alcotest.test_case "statically undetectable faults pruned" `Quick
      test_static_pruning;
    Alcotest.test_case "read_journal torn-tail unit" `Quick
      test_read_journal_torn_tail;
    Alcotest.test_case "injected divergence quarantined" `Quick
      test_divergence_quarantined;
    Alcotest.test_case "divergence fatal without quarantine" `Quick
      test_divergence_fatal_without_quarantine;
    Alcotest.test_case "cycle-budget watchdog" `Quick
      test_cycle_budget_timeout;
    Alcotest.test_case "watchdog splits to single-fault batches" `Quick
      test_wallclock_splits_to_single_fault;
    Alcotest.test_case "generous budget never trips" `Quick
      test_generous_budget_no_trip;
    Alcotest.test_case "supervised quarantine bottoms out" `Quick
      test_supervised_quarantine_bottom;
    Alcotest.test_case "supervision defaults off" `Quick
      test_supervise_defaults_off;
    Alcotest.test_case "with_budget unit" `Quick test_budget_exceeded_unit;
    Alcotest.test_case "negative cycle count rejected" `Quick
      test_negative_cycles_rejected;
    Alcotest.test_case "unknown drive target rejected" `Quick
      test_unknown_drive_target_rejected;
    Alcotest.test_case "clock in drive rejected" `Quick
      test_clock_in_drive_rejected;
    Alcotest.test_case "jsonl roundtrip and error cases" `Quick
      test_jsonl_roundtrip;
  ]
