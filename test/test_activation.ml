(* Cone-of-influence activation analysis (DESIGN.md section 14).

   Covers the static cone's shape on a hand-built design, the good-trace
   scan's cycle-attribution boundaries (init-settle prefix, last recorded
   cycle), activation edge cases (never-written sites, transient clamps),
   and the randomized soundness property: the cone-refined activation
   window never exceeds the cycle at which a cold per-fault run first
   diverges on an output, under both value representations. *)
open Faultsim
module H = Harness
module G = Sim.Goodtrace

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* clk -> [ff q] -> o, plus a register no path connects to any output and
   an input port nothing ever drives *)
let cone_design () =
  let module B = Rtlir.Builder in
  let open B.Ops in
  let ctx = B.create "cone_shape" in
  let clk = B.input ctx "clk" 1 in
  let a = B.input ctx "a" 4 in
  let u = B.input ctx "u" 4 in
  let q = B.reg ctx "q" 4 in
  let dead = B.reg ctx "dead" 4 in
  B.always_ff ctx ~clock:clk [ q <-- (q +: a) ];
  B.always_ff ctx ~clock:clk [ dead <-- (dead +: B.const 4 1) ];
  let o = B.output ctx "o" 4 in
  B.assign ctx o (q +: u);
  let d = B.finalize ctx in
  let g = Rtlir.Elaborate.build d in
  let a_id = Rtlir.Design.find_signal d "a" in
  let w =
    {
      Workload.cycles = 40;
      clock = Rtlir.Design.find_signal d "clk";
      drive = (fun c -> [ (a_id, Rtlir.Bits.of_int 4 (c land 15)) ]);
    }
  in
  (d, g, w)

(* ---- cone shape ---- *)

let test_cone_shape () =
  let d, g, _ = cone_design () in
  let cone = Flow.Cone.build g in
  let id n = Rtlir.Design.find_signal d n in
  check bool_t "q observable" true (Flow.Cone.observable cone (id "q"));
  check bool_t "o observable" true (Flow.Cone.observable cone (id "o"));
  check bool_t "u observable" true (Flow.Cone.observable cone (id "u"));
  check bool_t "clk observable" true (Flow.Cone.observable cone (id "clk"));
  check bool_t "dead unobservable" false
    (Flow.Cone.observable cone (id "dead"));
  (* register stages: o is an output (0); q and u reach o combinationally
     (0); clk reaches o only through the q flop (1) *)
  check int_t "stages o" 0 cone.Flow.Cone.stages.(id "o");
  check int_t "stages q" 0 cone.Flow.Cone.stages.(id "q");
  check int_t "stages u" 0 cone.Flow.Cone.stages.(id "u");
  check int_t "stages clk" 1 cone.Flow.Cone.stages.(id "clk");
  check int_t "stages dead" (-1) cone.Flow.Cone.stages.(id "dead");
  (* classification flags *)
  check bool_t "q is state" true cone.Flow.Cone.state_sig.(id "q");
  check bool_t "dead is state" true cone.Flow.Cone.state_sig.(id "dead");
  check bool_t "u is not state" false cone.Flow.Cone.state_sig.(id "u");
  check bool_t "o reaches an output combinationally" true
    cone.Flow.Cone.out_comb.(id "o");
  check bool_t "u reaches an output combinationally" true
    cone.Flow.Cone.out_comb.(id "u");
  check bool_t "q reaches an output combinationally" true
    cone.Flow.Cone.out_comb.(id "q");
  check bool_t "clk has no comb path to an output" false
    cone.Flow.Cone.out_comb.(id "clk");
  check bool_t "clk is in a clock cone" true
    cone.Flow.Cone.clock_comb.(id "clk")

(* ---- scan boundaries (satellite: cycle_of cursor) ---- *)

(* Hand-build a 3-cycle trace: one assign in the init-settle prefix, one
   input write at the start of cycle 0, a silent cycle 1, and one assign
   landing on the last recorded cycle. The scan must attribute the prefix
   to cycle 0 and the final write to [cycles - 1]. *)
let test_scan_write_boundaries () =
  let _, g, _ = cone_design () in
  let st = Sim.State.create g.Rtlir.Elaborate.design in
  let outputs = [| 0L |] in
  let b = G.builder ~cycles:3 ~clock:0 ~nout:1 ~snapshot_every:2 in
  G.rec_assign b ~pos:0 ~target:5 7L;
  G.rec_init_done b;
  G.rec_input b 1 1L;
  G.rec_step b;
  G.rec_cycle_done b ~outputs ~state:st;
  G.rec_cycle_done b ~outputs ~state:st;
  G.rec_assign b ~pos:0 ~target:5 3L;
  G.rec_cycle_done b ~outputs ~state:st;
  let t = G.finish b in
  let seen = ref [] in
  G.scan_writes t (fun cyc id v -> seen := (cyc, id, v) :: !seen);
  check
    (Alcotest.list (Alcotest.triple int_t int_t Alcotest.int64))
    "write stream with cycle attribution"
    [ (0, 5, 7L); (0, 1, 1L); (2, 5, 3L) ]
    (List.rev !seen);
  (* the same boundaries drive first_divergence: a stuck-at-1 whose bit
     only ever differs on the last recorded cycle activates there, and the
     init-settle write counts as cycle 0 *)
  let comb = Array.make 8 true in
  let site sig_ bit kind = { G.s_signal = sig_; s_bit = bit; s_kind = kind } in
  let acts =
    G.first_divergence t ~comb_driven:comb
      [|
        (* signal 5 holds bit1 from the init settle (7), loses it in the
           write on cycle 2 (3 -> bit2 clears): stuck-at-1 on bit 2
           diverges exactly at the last recorded cycle *)
        site 5 2 G.Stuck1;
        (* bit 0 is set by the init-settle write: stuck-at-0 differs at 0 *)
        site 5 0 G.Stuck0;
        (* bit 3 is never set by any write: stuck-at-0 never differs *)
        site 5 3 G.Stuck0;
      |]
  in
  check int_t "last-cycle write activates at cycles - 1" 2 acts.(0);
  check int_t "init-settle write counts as cycle 0" 0 acts.(1);
  check int_t "never-differing site never activates" 3 acts.(2)

(* ---- activation edge cases (satellite: never-written sites, clamps) ---- *)

let stuck fid signal bit k = { Fault.fid; signal; bit; stuck = k }

let test_never_written_sites () =
  let d, g, w = cone_design () in
  let u = Rtlir.Design.find_signal d "u" in
  (* the workload never drives u: the good run records no write to it, so
     a stuck-at-0 site there (matching the pristine zero state) keeps
     activation t.cycles — and the campaign must still simulate it rather
     than silently skip the batch *)
  let faults =
    [|
      stuck 0 u 0 Fault.Stuck_at_0;
      stuck 1 u 3 Fault.Stuck_at_0;
      stuck 2 u 1 Fault.Stuck_at_1;
    |]
  in
  let trace = Engine.Concurrent.capture g w in
  let acts = Engine.Concurrent.activations trace g faults in
  check int_t "never-written stuck-at-0 keeps t.cycles" w.Workload.cycles
    acts.(0);
  check int_t "never-written stuck-at-0 keeps t.cycles (bit 3)"
    w.Workload.cycles acts.(1);
  check int_t "stuck-at-1 on an undriven input activates immediately" 0
    acts.(2);
  let cold = H.Campaign.run H.Campaign.Eraser g w faults in
  check bool_t "stuck-at-1 detected cold" true cold.Fault.detected.(2);
  (* batch size 1 isolates each never-activating fault in its own batch,
     warm-started from the end-of-workload snapshot: it must still produce
     a verdict identical to the cold run's, not be dropped *)
  let s =
    Harness.Resilient.run
      ~config:
        {
          Harness.Resilient.default_config with
          Harness.Resilient.batch_size = 1;
          warmstart = true;
        }
      g w faults
  in
  check int_t "every fault got its own batch" (Array.length faults)
    s.Harness.Resilient.batches_total;
  check bool_t "warm verdicts equal cold" true
    (cold.Fault.detected = s.Harness.Resilient.result.Fault.detected
    && cold.Fault.detection_cycle
       = s.Harness.Resilient.result.Fault.detection_cycle)

let test_transient_clamps () =
  let d, g, w = cone_design () in
  let q = Rtlir.Design.find_signal d "q" in
  let faults =
    [|
      { Fault.fid = 0; signal = q; bit = 0; stuck = Fault.Flip_at (-5) };
      { Fault.fid = 1; signal = q; bit = 0; stuck = Fault.Flip_at 7 };
      {
        Fault.fid = 2;
        signal = q;
        bit = 0;
        stuck = Fault.Flip_at (w.Workload.cycles + 100);
      };
    |]
  in
  let trace = Engine.Concurrent.capture g w in
  let acts = Engine.Concurrent.activations trace g faults in
  check int_t "negative flip cycle clamps to 0" 0 acts.(0);
  check int_t "in-window flip keeps its cycle" 7 acts.(1);
  check int_t "past-the-end flip clamps to t.cycles" w.Workload.cycles
    acts.(2);
  (* clamped windows stay sound end to end *)
  let cold = H.Campaign.run H.Campaign.Eraser g w faults in
  let warm = H.Campaign.run ~warmstart:true H.Campaign.Eraser g w faults in
  check bool_t "warm verdicts equal cold under clamping" true
    (cold.Fault.detected = warm.Fault.detected
    && cold.Fault.detection_cycle = warm.Fault.detection_cycle)

(* ---- randomized soundness property ---- *)

(* First cycle the faulty network's output ports differ from the good
   network's, under one serial-simulator value representation. [None] when
   they never differ over the workload. *)
let first_output_divergence ~repr g w (f : Fault.t) =
  let sconfig =
    { Sim.Simulator.eval = Sim.Simulator.Bytecode; scheduler = Sim.Simulator.Fifo; repr }
  in
  let force =
    match f.Fault.stuck with
    | Fault.Stuck_at_0 -> Some (f.Fault.signal, f.Fault.bit, false)
    | Fault.Stuck_at_1 -> Some (f.Fault.signal, f.Fault.bit, true)
    | Fault.Flip_at _ -> None
  in
  let good = Sim.Simulator.create ~config:sconfig g in
  let bad = Sim.Simulator.create ~config:sconfig ?force g in
  let on_cycle_start cyc =
    match f.Fault.stuck with
    | Fault.Flip_at at when at = cyc ->
        Sim.Simulator.flip_bit bad f.Fault.signal f.Fault.bit
    | _ -> ()
  in
  let div = ref None in
  Workload.run ~on_cycle_start w
    ~set_input:(fun id v ->
      Sim.Simulator.set_input good id v;
      Sim.Simulator.set_input bad id v)
    ~step:(fun () ->
      Sim.Simulator.step good;
      Sim.Simulator.step bad)
    ~observe:(fun c ->
      if Sim.Simulator.outputs good <> Sim.Simulator.outputs bad then begin
        div := Some c;
        false
      end
      else true);
  !div

(* The soundness contract of the refined rule, checked per scenario:
   - refined activations are pointwise >= the legacy first-divergence rule
     (the window only ever moves later);
   - a detected fault's activation never exceeds its detection cycle (a
     warm start at the activation snapshot cannot land past the event it
     must reproduce);
   - statically-unobservable sites are never detected by the oracle;
   - the warm-started concurrent campaign reproduces the cold verdicts;
   - the per-fault output-divergence oracle agrees between the Flat and
     Boxed representations, and never diverges before the activation. *)
let check_scenario name g w faults =
  let n = Array.length faults in
  if n > 0 then begin
    let cone = Flow.Cone.build g in
    let trace = Engine.Concurrent.capture g w in
    let acts = Engine.Concurrent.activations ~cone trace g faults in
    let legacy = Engine.Concurrent.legacy_activations trace g faults in
    let dead = Engine.Concurrent.statically_undetectable ~cone g faults in
    let oracle = Baselines.Serial.ifsim g w faults in
    Array.iteri
      (fun i (f : Fault.t) ->
        if acts.(i) < legacy.(i) then
          Alcotest.failf "%s: fault %d refined activation %d < legacy %d"
            name f.Fault.fid acts.(i) legacy.(i);
        if oracle.Fault.detected.(i) then begin
          if acts.(i) > oracle.Fault.detection_cycle.(i) then
            Alcotest.failf
              "%s: fault %d activates at %d after its detection cycle %d"
              name f.Fault.fid acts.(i) oracle.Fault.detection_cycle.(i);
          if dead.(i) then
            Alcotest.failf
              "%s: fault %d statically pruned but detected by the oracle"
              name f.Fault.fid
        end)
      faults;
    let cold = H.Campaign.run H.Campaign.Eraser g w faults in
    let warm = H.Campaign.run ~warmstart:true H.Campaign.Eraser g w faults in
    if
      cold.Fault.detected <> warm.Fault.detected
      || cold.Fault.detection_cycle <> warm.Fault.detection_cycle
    then Alcotest.failf "%s: warm-started verdicts differ from cold" name;
    (* sample a handful of faults for the lockstep repr oracle *)
    let step = max 1 (n / 8) in
    let i = ref 0 in
    while !i < n do
      let f = faults.(!i) in
      let flat = first_output_divergence ~repr:Sim.Simulator.Flat g w f in
      let boxed = first_output_divergence ~repr:Sim.Simulator.Boxed g w f in
      if flat <> boxed then
        Alcotest.failf "%s: fault %d repr oracles disagree" name f.Fault.fid;
      (match flat with
      | Some c when acts.(!i) > c ->
          Alcotest.failf
            "%s: fault %d outputs diverge at %d before activation %d" name
            f.Fault.fid c acts.(!i)
      | _ -> ());
      i := !i + step
    done
  end

let test_property_rand_designs () =
  for seed = 1 to 8 do
    let s =
      H.Rand_design.generate ~cycles:60
        ~seed:(Int64.of_int (77_000 + seed))
        ()
    in
    check_scenario
      (Printf.sprintf "rand seed %d" seed)
      s.H.Rand_design.graph s.H.Rand_design.workload s.H.Rand_design.faults
  done

let circuit_property_case name scale =
  Alcotest.test_case
    (Printf.sprintf "%s activation soundness" name)
    `Quick
    (fun () ->
      let c = Circuits.find name in
      let _, g, w, faults = Circuits.Bench_circuit.instantiate c ~scale in
      check_scenario name g w faults)

let suite =
  [
    Alcotest.test_case "cone shape on a hand-built design" `Quick
      test_cone_shape;
    Alcotest.test_case "scan-write cycle attribution boundaries" `Quick
      test_scan_write_boundaries;
    Alcotest.test_case "never-written sites keep full windows" `Quick
      test_never_written_sites;
    Alcotest.test_case "transient activation clamps" `Quick
      test_transient_clamps;
    Alcotest.test_case "refined activations sound on random designs" `Quick
      test_property_rand_designs;
    circuit_property_case "alu" 0.08;
    circuit_property_case "fpu" 0.08;
  ]
