(* Work-stealing domain pool and fault-partition parallelism: submission
   ordering, exception propagation, discard-on-shutdown, per-partition RNG
   splitting, and the determinism guarantee — identical verdicts and
   byte-identical resilient reports for any --jobs. *)
open Faultsim
module H = Harness
module Pool = Harness.Pool

let check = Alcotest.check
let int_t = Alcotest.int

(* --- pool mechanics --- *)

let test_ordering () =
  let results =
    Pool.with_pool ~jobs:3 (fun pool ->
        let futures =
          List.init 50 (fun i ->
              Pool.submit pool (fun (ctx : Pool.ctx) ->
                  (* stagger completions so steal order differs from
                     submission order *)
                  if i mod 7 = 0 then Unix.sleepf 0.002;
                  check Alcotest.bool "worker in range" true
                    (ctx.Pool.worker >= 0 && ctx.Pool.worker < ctx.Pool.jobs);
                  i * i))
        in
        List.map Pool.await futures)
  in
  check (Alcotest.list int_t) "futures keep submission order"
    (List.init 50 (fun i -> i * i))
    results

let test_exception_propagation () =
  match
    Pool.with_pool ~jobs:2 (fun pool ->
        let ok = Pool.submit pool (fun _ -> 1) in
        let bad = Pool.submit pool (fun _ -> failwith "boom42") in
        let _ = Pool.await ok in
        Pool.await bad)
  with
  | _ -> Alcotest.fail "task exception was swallowed"
  | exception Failure m -> check Alcotest.string "original exception" "boom42" m

let test_discard_on_shutdown () =
  let started = Atomic.make false in
  let release = Atomic.make false in
  let pool = Pool.create ~jobs:1 () in
  let running =
    Pool.submit pool (fun _ ->
        Atomic.set started true;
        while not (Atomic.get release) do
          Domain.cpu_relax ()
        done;
        42)
  in
  while not (Atomic.get started) do
    Domain.cpu_relax ()
  done;
  (* the only worker is busy, so this stays queued *)
  let queued = Pool.submit pool (fun _ -> 7) in
  let closer = Domain.spawn (fun () -> Pool.shutdown ~discard:true pool) in
  (* the discard completes the queued future with Shutdown while the
     running task is still spinning — await must wake up, not hang *)
  (match Pool.await queued with
  | exception Pool.Shutdown -> ()
  | v -> Alcotest.failf "discarded task ran anyway (returned %d)" v);
  Atomic.set release true;
  Domain.join closer;
  check int_t "running task still completed" 42 (Pool.await running);
  match Pool.submit pool (fun _ -> 0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "submit after shutdown accepted"

let test_cancel_completion_race () =
  (* Stress the cancel/worker-completion race: many short tasks, with the
     coordinator racing [cancel] against the workers finishing them. The
     future's state transition is atomic under its lock, so exactly one
     side wins: [cancel] returning true guarantees [await] raises
     [Shutdown], and returning false guarantees the task's own outcome is
     preserved. Nothing may hang either way. *)
  let rounds = 20 and per_round = 64 in
  for round = 0 to rounds - 1 do
    Pool.with_pool ~jobs:4 (fun pool ->
        let ran = Array.make per_round false in
        let futures =
          Array.init per_round (fun i ->
              Pool.submit pool (fun _ ->
                  if i land 3 = 0 then Domain.cpu_relax ();
                  ran.(i) <- true;
                  i))
        in
        let cancelled =
          (* vary the contention window across rounds *)
          Array.mapi
            (fun i fut ->
              if (i + round) land 1 = 0 then Pool.cancel fut else false)
            futures
        in
        Array.iteri
          (fun i fut ->
            match Pool.await_result fut with
            | Ok v ->
                check int_t "completed task kept its result" i v;
                if cancelled.(i) then
                  Alcotest.failf "task %d: cancel won but await returned Ok" i
            | Error (Pool.Shutdown, _) ->
                if not cancelled.(i) then
                  Alcotest.failf
                    "task %d: cancel lost but await raised Shutdown" i
            | Error (e, _) -> raise e)
          futures;
        (* a task whose cancel won before a worker claimed it never runs;
           one that lost must have run to completion *)
        Array.iteri
          (fun i c ->
            if (not c) && not ran.(i) then
              Alcotest.failf "task %d: not cancelled yet never ran" i)
          cancelled)
  done

(* --- Rng.split --- *)

let test_split_deterministic () =
  let a = Rng.create 99L and b = Rng.create 99L in
  let ca = Rng.split a 4 and cb = Rng.split b 4 in
  check int_t "family size" 4 (Array.length ca);
  check Alcotest.bool "parent advanced identically" true
    (Rng.seed a = Rng.seed b);
  Array.iteri
    (fun i c ->
      for k = 0 to 99 do
        if Rng.next c <> Rng.next cb.(i) then
          Alcotest.failf "child %d diverges at draw %d" i k
      done)
    ca;
  match Rng.split a (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative split accepted"

let test_split_statistics () =
  (* smoke test, not a PRNG certification: sibling streams must be
     pairwise distinct and individually roughly uniform *)
  let children = Rng.split (Rng.create 0xD15EA5EL) 8 in
  let firsts = Array.map Rng.next children in
  Array.iteri
    (fun i x ->
      Array.iteri
        (fun j y -> if i < j && x = y then Alcotest.fail "colliding siblings")
        firsts)
    firsts;
  Array.iter
    (fun c ->
      let buckets = Array.make 16 0 in
      let draws = 4096 in
      for _ = 1 to draws do
        let b = Rng.int c 16 in
        buckets.(b) <- buckets.(b) + 1
      done;
      let expected = draws / 16 in
      Array.iteri
        (fun b n ->
          (* ~3.9 sigma window around the expected 256 *)
          if n < expected - 60 || n > expected + 60 then
            Alcotest.failf "bucket %d has %d draws, expected ~%d" b n expected)
        buckets)
    children

(* --- parallel campaigns --- *)

let sample = lazy (H.Rand_design.generate ~seed:4242L ())

let render_report (s : H.Rand_design.t) (summary : H.Resilient.summary) =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  let verdicts = Classify.classify s.H.Rand_design.graph s.H.Rand_design.faults in
  H.Json_report.resilient ppf ~design:s.H.Rand_design.design ~engine:"Eraser"
    ~faults:s.H.Rand_design.faults ~verdicts summary;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let test_resilient_jobs_identical () =
  let s = Lazy.force sample in
  let report jobs =
    let config =
      { H.Resilient.default_config with H.Resilient.jobs; batch_size = 5 }
    in
    render_report s
      (H.Resilient.run ~config s.H.Rand_design.graph s.H.Rand_design.workload
         s.H.Rand_design.faults)
  in
  let r1 = report 1 in
  check Alcotest.string "jobs 2 report byte-identical to jobs 1" r1 (report 2);
  check Alcotest.string "jobs 4 report byte-identical to jobs 1" r1 (report 4)

let test_campaign_jobs_verdicts () =
  let s = Lazy.force sample in
  let g = s.H.Rand_design.graph
  and w = s.H.Rand_design.workload
  and faults = s.H.Rand_design.faults in
  let mono = H.Campaign.run H.Campaign.Eraser g w faults in
  let par = H.Campaign.run ~jobs:3 H.Campaign.Eraser g w faults in
  check Alcotest.bool "verdicts match the monolithic run" true
    (Fault.same_verdict mono par);
  check
    (Alcotest.array int_t)
    "detection cycles match" mono.Fault.detection_cycle
    par.Fault.detection_cycle

let test_campaign_jobs_per_proc () =
  (* regression for the parallel stats merge: the per-process table counts
     fault-network work only, so it is a pure function of the fault list —
     it must come out identical whatever the partition count (it used to be
     one concatenated copy per worker) *)
  let s = Lazy.force sample in
  let g = s.H.Rand_design.graph
  and w = s.H.Rand_design.workload
  and faults = s.H.Rand_design.faults in
  let per_proc jobs =
    let r = H.Campaign.run ~jobs H.Campaign.Eraser g w faults in
    Array.to_list r.Fault.stats.Stats.per_proc
    |> List.map (fun (row : Stats.proc_row) ->
           Printf.sprintf "%s exec=%d impl=%d expl=%d" row.Stats.pr_name
             row.pr_exec row.pr_impl row.pr_expl)
  in
  let p1 = per_proc 1 in
  check Alcotest.bool "non-trivial table" true (p1 <> []);
  check
    (Alcotest.list Alcotest.string)
    "jobs 4 per-proc table identical to jobs 1" p1 (per_proc 4)

let test_parallel_watchdog () =
  let s = Lazy.force sample in
  let config =
    {
      H.Resilient.default_config with
      H.Resilient.jobs = 2;
      batch_size = 8;
      max_batch_seconds = Some 0.0;
      max_retries = 99;
    }
  in
  (match
     H.Resilient.run ~config s.H.Rand_design.graph s.H.Rand_design.workload
       s.H.Rand_design.faults
   with
  | _ -> Alcotest.fail "zero budget did not trip the watchdog"
  | exception H.Resilient.Campaign_error (H.Resilient.Batch_timeout t) ->
      (* with unlimited retries the batch was split down to one fault *)
      check int_t "timeout reported on a single fault" 1 (Array.length t.ids)
  | exception e -> raise e);
  (* the pool shut down cleanly: the same campaign still runs afterwards *)
  let ok =
    H.Resilient.run
      ~config:
        { H.Resilient.default_config with H.Resilient.jobs = 2; batch_size = 8 }
      s.H.Rand_design.graph s.H.Rand_design.workload s.H.Rand_design.faults
  in
  check Alcotest.bool "campaign after aborted campaign" true
    (ok.H.Resilient.batches_total > 0)

let test_jobs_validation () =
  let s = Lazy.force sample in
  match
    H.Resilient.run
      ~config:{ H.Resilient.default_config with H.Resilient.jobs = 0 }
      s.H.Rand_design.graph s.H.Rand_design.workload s.H.Rand_design.faults
  with
  | _ -> Alcotest.fail "jobs = 0 accepted"
  | exception H.Resilient.Campaign_error (H.Resilient.Bad_workload _) -> ()

let suite =
  [
    Alcotest.test_case "futures keep submission order" `Quick test_ordering;
    Alcotest.test_case "exceptions propagate" `Quick test_exception_propagation;
    Alcotest.test_case "discard on shutdown" `Quick test_discard_on_shutdown;
    Alcotest.test_case "cancel vs completion race" `Quick
      test_cancel_completion_race;
    Alcotest.test_case "Rng.split is deterministic" `Quick
      test_split_deterministic;
    Alcotest.test_case "Rng.split streams look independent" `Quick
      test_split_statistics;
    Alcotest.test_case "resilient reports byte-identical across jobs" `Quick
      test_resilient_jobs_identical;
    Alcotest.test_case "partitioned campaign verdicts" `Quick
      test_campaign_jobs_verdicts;
    Alcotest.test_case "per-proc table independent of jobs" `Quick
      test_campaign_jobs_per_proc;
    Alcotest.test_case "watchdog aborts a parallel campaign cleanly" `Quick
      test_parallel_watchdog;
    Alcotest.test_case "jobs validation" `Quick test_jobs_validation;
  ]
