(* Engine integration tests: detected-set equivalence across all six
   engines on every benchmark circuit, ablation monotonicity, redundancy
   accounting invariants, and the fake-event regression. *)
open Rtlir
open Faultsim
module H = Harness

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let scale = 0.06

let campaign (c : Circuits.Bench_circuit.t) =
  let _, g, w, faults = Circuits.Bench_circuit.instantiate c ~scale in
  (g, w, faults)

let equivalence_case (c : Circuits.Bench_circuit.t) =
  Alcotest.test_case (c.name ^ " all engines agree") `Quick (fun () ->
      let g, w, faults = campaign c in
      let oracle = H.Campaign.run H.Campaign.Ifsim g w faults in
      List.iter
        (fun e ->
          let r = H.Campaign.run e g w faults in
          if not (Fault.same_verdict oracle r) then
            Alcotest.failf "%s disagrees with the oracle on %s"
              (H.Campaign.engine_name e) c.name)
        [
          H.Campaign.Vfsim; H.Campaign.Z01x_proxy; H.Campaign.Eraser_mm;
          H.Campaign.Eraser_m; H.Campaign.Eraser;
        ])

let test_ablation_monotonic () =
  List.iter
    (fun (c : Circuits.Bench_circuit.t) ->
      let g, w, faults = campaign c in
      let run mode =
        let config = { Engine.Concurrent.default_config with mode } in
        (Engine.Concurrent.run ~config g w faults).Fault.stats
      in
      let mm = run Engine.Concurrent.No_redundancy in
      let m = run Engine.Concurrent.Explicit_only in
      let full = run Engine.Concurrent.Full in
      (* executed faulty behavioral executions can only shrink *)
      if
        not
          (mm.Stats.bn_fault_exec >= m.Stats.bn_fault_exec
          && m.Stats.bn_fault_exec >= full.Stats.bn_fault_exec)
      then
        Alcotest.failf "%s: execution counts not monotone (%d, %d, %d)"
          c.name mm.Stats.bn_fault_exec m.Stats.bn_fault_exec
          full.Stats.bn_fault_exec;
      (* no elimination mode records no skips *)
      check int_t "eraser-- skips nothing" 0 (Stats.eliminated mm);
      check int_t "eraser- implicit is zero" 0 m.Stats.bn_skipped_implicit;
      (* accounting identity: total is conserved across the two
         eliminating modes *)
      check bool_t "totals comparable" true
        (Stats.total_bn_executions full > 0))
    Circuits.all

(* A fault on the clock input must suppress register updates in the faulty
   network. The deferred-edge engine (the paper's fake-event fix) matches
   the serial oracle; the premature-evaluation mode reproduces the bug. *)
let clock_fault_design () =
  let module B = Builder in
  let open B.Ops in
  let ctx = B.create "clkfault" in
  let clk = B.input ctx "clk" 1 in
  let q = B.reg ctx "q" 8 in
  B.always_ff ctx ~clock:clk [ q <-- (q +: B.const 8 1) ];
  let o = B.output ctx "o" 8 in
  B.assign ctx o q;
  B.finalize ctx

let test_fake_events () =
  let d = clock_fault_design () in
  let g = Elaborate.build d in
  let clk = Design.find_signal d "clk" in
  let w =
    {
      Workload.cycles = 20;
      clock = clk;
      drive = (fun _ -> []);
    }
  in
  (* the single fault: clock stuck at 0 *)
  let faults =
    [| { Fault.fid = 0; signal = clk; bit = 0; stuck = Fault.Stuck_at_0 } |]
  in
  let oracle = Baselines.Serial.ifsim g w faults in
  check bool_t "oracle detects the stuck clock" true oracle.Fault.detected.(0);
  let run ~defer =
    Engine.Concurrent.run
      ~config:
        {
          Engine.Concurrent.default_config with
          defer_edge_eval = defer;
        }
      g w faults
  in
  let good = run ~defer:true in
  check bool_t "deferred edge evaluation is correct" true
    (Fault.same_verdict oracle good);
  let bad = run ~defer:false in
  check bool_t "premature evaluation reproduces the fake-event bug" false
    (Fault.same_verdict oracle bad)

(* Solo activations: a stuck-at-1 clock gives the faulty network an edge
   the good network sees later; coverage must still match the oracle. *)
let test_clock_stuck_at_1 () =
  let d = clock_fault_design () in
  let g = Elaborate.build d in
  let clk = Design.find_signal d "clk" in
  let w = { Workload.cycles = 20; clock = clk; drive = (fun _ -> []) } in
  let faults =
    [| { Fault.fid = 0; signal = clk; bit = 0; stuck = Fault.Stuck_at_1 } |]
  in
  let oracle = Baselines.Serial.ifsim g w faults in
  let r = Engine.Concurrent.run g w faults in
  check bool_t "sa1 clock matches oracle" true (Fault.same_verdict oracle r)

let test_per_proc_stats () =
  List.iter
    (fun name ->
      let g, w, faults = campaign (Circuits.find name) in
      let r = H.Campaign.run H.Campaign.Eraser g w faults in
      let s = r.Fault.stats in
      let sum f = Array.fold_left (fun acc p -> acc + f p) 0 s.Stats.per_proc in
      check int_t (name ^ " per-proc exec sums") s.Stats.bn_fault_exec
        (sum (fun r -> r.Stats.pr_exec));
      check int_t (name ^ " per-proc implicit sums")
        s.Stats.bn_skipped_implicit
        (sum (fun r -> r.Stats.pr_impl));
      check int_t (name ^ " per-proc explicit sums")
        s.Stats.bn_skipped_explicit
        (sum (fun r -> r.Stats.pr_expl)))
    [ "sha256_hv"; "riscv_mini"; "apb"; "picorv32" ]

let test_mem_check_ablation () =
  (* the conservative whole-memory rule stays correct and can only skip
     fewer executions than the per-word check *)
  List.iter
    (fun name ->
      let g, w, faults = campaign (Circuits.find name) in
      let run exact =
        Engine.Concurrent.run
          ~config:
            { Engine.Concurrent.default_config with exact_mem_check = exact }
          g w faults
      in
      let exact = run true in
      let conservative = run false in
      check bool_t (name ^ " conservative verdict equal") true
        (Fault.same_verdict exact conservative);
      check bool_t (name ^ " conservative skips fewer") true
        (conservative.Fault.stats.Stats.bn_skipped_implicit
        <= exact.Fault.stats.Stats.bn_skipped_implicit))
    [ "sha256_hv"; "riscv_mini"; "apb" ]

let test_instrumentation () =
  let g, w, faults = campaign (Circuits.find "apb") in
  let r =
    H.Campaign.run ~instrument:true H.Campaign.Eraser g w faults
  in
  let s = r.Fault.stats in
  check bool_t "bn time measured" true (s.Stats.bn_seconds > 0.0);
  check bool_t "bn time below total" true
    (s.Stats.bn_seconds <= s.Stats.total_seconds);
  check bool_t "wall time recorded" true (r.Fault.wall_time > 0.0)

let test_early_stop () =
  (* all faults detected -> the campaign may stop early but coverage is
     still 100% and equal to the oracle's *)
  let module B = Builder in
  let open B.Ops in
  let ctx = B.create "allvisible" in
  let clk = B.input ctx "clk" 1 in
  let a = B.input ctx "a" 4 in
  let q = B.reg ctx "q" 4 in
  B.always_ff ctx ~clock:clk [ q <-- a ];
  let o = B.output ctx "o" 4 in
  B.assign ctx o q;
  let d = B.finalize ctx in
  let g = Elaborate.build d in
  let w =
    Circuits.Bench_circuit.random_workload ~seed:3L d ~cycles:200
  in
  let faults =
    Fault.generate ~include_inputs:false ~seed:1L d
    |> Array.to_seq
    |> Seq.filter (fun (f : Fault.t) ->
           Design.signal_name d f.signal <> "clk")
    |> Array.of_seq
    |> Array.mapi (fun i f -> { f with Fault.fid = i })
  in
  let oracle = Baselines.Serial.ifsim g w faults in
  let r = Engine.Concurrent.run g w faults in
  check bool_t "equal" true (Fault.same_verdict oracle r);
  check (Alcotest.float 0.001) "full coverage" 100.0 r.Fault.coverage_pct

let suite =
  List.map equivalence_case Circuits.all
  @ [
      Alcotest.test_case "ablation monotonicity" `Quick
        test_ablation_monotonic;
      Alcotest.test_case "fake-event regression" `Quick test_fake_events;
      Alcotest.test_case "clock stuck-at-1 (solo edges)" `Quick
        test_clock_stuck_at_1;
      Alcotest.test_case "per-proc stats consistency" `Quick
        test_per_proc_stats;
      Alcotest.test_case "mem-check ablation" `Quick test_mem_check_ablation;
      Alcotest.test_case "instrumented timing" `Quick test_instrumentation;
      Alcotest.test_case "early stop at full coverage" `Quick test_early_stop;
    ]
